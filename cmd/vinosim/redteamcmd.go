package main

// `vinosim redteam`: run the adversarial SFI escape corpus. Every
// attack image must be rejected by the verifier or contained at
// runtime with the kernel-memory and read-only-region sentinel audits
// intact; the command exits non-zero on any escape or on a case that
// slipped past its expected layer. The report is byte-identical for a
// fixed -seed at any -workers, which is what -report is for: write the
// summary to a file and cmp it across pool sizes in CI.

import (
	"flag"
	"fmt"
	"os"

	vino "vino"
)

func cmdRedTeam(args []string) int {
	fs := flag.NewFlagSet("vinosim redteam", flag.ExitOnError)
	seed := fs.Int64("seed", 7, "sentinel-pattern seed (the case set is seed-independent)")
	workers := fs.Int("workers", 1, "worker-pool size (wall-clock only; the report is identical at any value)")
	report := fs.String("report", "", "also write the summary to this file (for CI determinism cmp)")
	translate := onOffFlag(true)
	fs.Var(&translate, "translate", "run contained cases on the translated closure engine (off = interpret; the report is byte-identical either way)")
	fs.Parse(args)

	res := vino.RunRedTeam(vino.RedTeamConfig{Seed: *seed, Workers: *workers, Translate: bool(translate)})
	sum := res.Summary()
	fmt.Print(sum)
	if *report != "" {
		if err := os.WriteFile(*report, []byte(sum), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "redteam: %v\n", err)
			return 1
		}
		fmt.Printf("redteam: report written to %s\n", *report)
	}
	if !res.Clean() {
		fmt.Fprintf(os.Stderr, "redteam: %d escape(s), %d case(s) off their expected layer\n",
			res.Escapes, res.Mismatches)
		return 1
	}
	return 0
}
