package main

// `vinosim fleet`: the multi-tenant fleet driver. Shards a synthetic
// open-loop workload across N kernel instances, arms crash faults on
// each, replaces instances that die from their durable checkpoint
// rings, and walks abusive tenants up the escalation ladder. Prints the
// per-instance and per-tenant accounting tables; exits non-zero if the
// fleet audit finds a violation. The report is byte-identical for a
// fixed (-seed, -instances, -tenants) at any -workers, which is what
// -report is for: write the summary to a file and cmp it across pool
// sizes in CI.

import (
	"flag"
	"fmt"
	"os"

	vino "vino"
)

func cmdFleet(args []string) int {
	fs := flag.NewFlagSet("vinosim fleet", flag.ExitOnError)
	seed := fs.Int64("seed", 7, "fleet master seed (with -instances/-tenants, fully determines the report)")
	instances := fs.Int("instances", 2, "kernel instance count")
	tenants := fs.Int("tenants", 2, "well-behaved tenant count")
	abusive := fs.Bool("abusive", true, "add one abusive tenant (heap gobbler with a starved socket grant)")
	rounds := fs.Int("rounds", 6, "traffic rounds per instance")
	arrivals := fs.Int("arrivals", 4, "per-tenant arrivals per round (abusive tenant doubles this)")
	workers := fs.Int("workers", 1, "worker-pool size (wall-clock only; the report is identical at any value)")
	crashFlag := fs.Bool("crash", true, "arm seed-derived kernel panics on every instance")
	dir := fs.String("dir", "", "durable checkpoint-ring root (empty = a temp dir removed on exit)")
	report := fs.String("report", "", "also write the summary to this file (for CI determinism cmp)")
	fs.Parse(args)

	res, err := vino.RunFleet(vino.FleetConfig{
		Seed:        *seed,
		Instances:   *instances,
		Tenants:     *tenants,
		Abusive:     *abusive,
		Rounds:      *rounds,
		Arrivals:    *arrivals,
		Workers:     *workers,
		CrashFaults: *crashFlag,
		Dir:         *dir,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "fleet: %v\n", err)
		return 1
	}
	sum := res.Summary()
	fmt.Print(sum)
	if *report != "" {
		if err := os.WriteFile(*report, []byte(sum), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "fleet: %v\n", err)
			return 1
		}
		fmt.Printf("fleet: report written to %s\n", *report)
	}
	if !res.Clean() {
		fmt.Fprintf(os.Stderr, "fleet: audit failed with %d violation(s)\n", len(res.Violations))
		return 1
	}
	return 0
}
