// Command vinosim drives the simulated VINO kernel through its
// subcommands:
//
//	vinosim run                        # every narrated scenario from §2
//	vinosim run hoard                  # one scenario
//	vinosim run -list
//	vinosim chaos -seed=7              # scheduled fault injection + survival audit
//	vinosim chaos -seed=7 -faults=disk,lock -extended -guard
//	vinosim chaos -faultfile=p.txt     # replay a saved/edited plan
//	vinosim crash -seed=7              # chaos with the crash phase armed:
//	                                   # injected kernel panics contained & recovered
//	vinosim crash -seed=7 -checkpoint-ring=3 -checkpoint-full
//	vinosim crash -seed=7 -norecover   # first panic is fatal (reproducer mode)
//	vinosim minimize -seed=7 -out=min.faultplan
//	                                   # delta-debug a failing plan to a minimal reproducer
//	vinosim campaign -seed=1 -runs=256 -shards=8 -corpus=corpus/
//	                                   # coverage-guided chaos fuzzing campaign
//	vinosim fleet -seed=7 -instances=2 # multi-tenant fleet: traffic, crash
//	                                   # faults, instance replacement, tenant
//	                                   # escalation, fleet-level audit
//
// The pre-subcommand flat-flag form (vinosim -chaos -seed=7 ...) still
// works but is deprecated: it maps onto the subcommands above and
// prints a migration hint on stderr.
package main

import (
	"fmt"
	"os"
	"strings"
)

func main() {
	args := os.Args[1:]
	if len(args) == 0 {
		// Bare `vinosim` has always run every scenario; keep that.
		os.Exit(runScenarios(""))
	}
	switch args[0] {
	case "run":
		os.Exit(cmdRun(args[1:]))
	case "chaos":
		os.Exit(cmdChaos(args[1:]))
	case "crash":
		os.Exit(cmdCrash(args[1:]))
	case "minimize":
		os.Exit(cmdMinimize(args[1:]))
	case "campaign":
		os.Exit(cmdCampaign(args[1:]))
	case "fleet":
		os.Exit(cmdFleet(args[1:]))
	case "redteam":
		os.Exit(cmdRedTeam(args[1:]))
	case "help", "-h", "--help", "-help":
		usage(os.Stdout)
		return
	}
	if strings.HasPrefix(args[0], "-") {
		os.Exit(cmdLegacy(args))
	}
	fmt.Fprintf(os.Stderr, "vinosim: unknown command %q\n\n", args[0])
	usage(os.Stderr)
	os.Exit(2)
}

func usage(w *os.File) {
	fmt.Fprint(w, `usage: vinosim <command> [flags]

Commands:
  run        narrated misbehavior scenarios (run -list to enumerate)
  chaos      scheduled fault injection + survival audit
  crash      chaos with the crash phase armed (panic containment & recovery)
  minimize   delta-debug a failing fault plan to a minimal reproducer
  campaign   coverage-guided chaos fuzzing campaign
  fleet      multi-tenant fleet: tenant isolation, self-healing instances
  redteam    adversarial SFI escape corpus (verify-reject or contain; 0 escapes)

Run 'vinosim <command> -h' for that command's flags.
`)
}
