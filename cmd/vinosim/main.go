// Command vinosim runs narrated scenarios on the simulated VINO kernel,
// demonstrating each class of graft misbehavior from §2 of the paper and
// the kernel surviving it.
//
// Usage:
//
//	vinosim -list
//	vinosim -scenario hoard
//	vinosim            # runs every scenario
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"vino/internal/graft"
	"vino/internal/kernel"
	"vino/internal/lock"
	"vino/internal/netstk"
	"vino/internal/resource"
	"vino/internal/sched"
	"vino/internal/sfi"
)

type scenario struct {
	name  string
	brief string
	run   func() error
}

var scenarios = []scenario{
	{"spin", "infinite-loop graft (s2.2): preempted, watchdogged, removed", runSpin},
	{"hoard", "lock(resourceA); while(1) (s2.2): time-out aborts the holder's transaction", runHoard},
	{"memory", "resource gobbler (s2.2): allocation denied at the graft's limit, state undone", runMemory},
	{"scribble", "wild pointers (s2.1): SFI contains what would have corrupted the kernel", runScribble},
	{"forge", "unsigned/tampered code (s2.3): the loader refuses it", runForge},
	{"dos", "covert denial of service (s2.5): pagedaemon-style caller keeps making progress", runDoS},
	{"http", "event graft (s3.5): an HTTP server grafted into the kernel", runHTTP},
}

var showTrace bool

func main() {
	list := flag.Bool("list", false, "list scenarios")
	name := flag.String("scenario", "", "run one scenario")
	flag.BoolVar(&showTrace, "trace", false, "dump the kernel flight recorder after each scenario")
	flag.Parse()
	if *list {
		for _, s := range scenarios {
			fmt.Printf("%-10s %s\n", s.name, s.brief)
		}
		return
	}
	var failed bool
	for _, s := range scenarios {
		if *name != "" && s.name != *name {
			continue
		}
		fmt.Printf("=== %s: %s\n", s.name, s.brief)
		if err := s.run(); err != nil {
			fmt.Printf("    FAILED: %v\n\n", err)
			failed = true
			continue
		}
		fmt.Println()
	}
	if failed {
		os.Exit(1)
	}
}

func newKernel() *kernel.Kernel {
	return kernel.New(kernel.Config{TraceDepth: 1024})
}

// dumpTrace prints the kernel flight recorder when -trace is set.
func dumpTrace(k *kernel.Kernel) {
	if showTrace {
		fmt.Print(k.Trace.Dump())
	}
}

func echoPoint(k *kernel.Kernel, name string, watchdog time.Duration) *graft.Point {
	return k.Grafts.RegisterPoint(&graft.Point{
		Name:      name,
		Kind:      graft.Function,
		Privilege: graft.Local,
		Default:   func(t *sched.Thread, args []int64) (int64, error) { return -1, nil },
		Watchdog:  watchdog,
	})
}

func runSpin() error {
	k := newKernel()
	pt := echoPoint(k, "obj.fn", 80*time.Millisecond)
	bystander := 0
	done := false
	k.SpawnProcess("victim", 100, func(p *kernel.Process) {
		g, err := p.BuildAndInstall("obj.fn", ".name spinner\n.func main\nmain:\n jmp main\n", graft.InstallOptions{})
		if err != nil {
			panic(err)
		}
		fmt.Println("    installed a graft that loops forever; invoking it...")
		res, ierr := pt.Invoke(p.Thread)
		done = true
		fmt.Printf("    invoke returned default result %d after %v; abort reason: %v\n", res, k.Clock.Now(), ierr)
		fmt.Printf("    graft forcibly removed: %v; bystander ran %d times meanwhile\n", g.Removed(), bystander)
	})
	k.SpawnProcess("bystander", 101, func(p *kernel.Process) {
		for !done {
			bystander++
			p.Thread.Charge(time.Millisecond)
			p.Thread.Yield()
		}
	})
	if err := k.Run(); err != nil {
		return err
	}
	dumpTrace(k)
	if bystander == 0 {
		return errors.New("bystander starved")
	}
	return nil
}

func runHoard() error {
	k := newKernel()
	resourceA := k.Locks.NewLock("resourceA", &lock.Class{Name: "res", Timeout: 30 * time.Millisecond})
	k.Grafts.RegisterCallable("demo.lock_a", func(ctx *graft.Ctx, args [5]int64) (int64, error) {
		ctx.Txn.AcquireLock(resourceA, lock.Exclusive)
		return 0, nil
	})
	pt := echoPoint(k, "obj.fn", 10*time.Second)
	contenderGot := false
	k.SpawnProcess("hog", 100, func(p *kernel.Process) {
		if _, err := p.BuildAndInstall("obj.fn", `
.name lock-hog
.import demo.lock_a
.func main
main:
    callk demo.lock_a
spin:
    jmp spin
`, graft.InstallOptions{}); err != nil {
			panic(err)
		}
		fmt.Println("    graft takes resourceA and spins: the paper's lock(resourceA); while(1);")
		_, ierr := pt.Invoke(p.Thread)
		fmt.Printf("    holder's transaction aborted at %v: %v\n", k.Clock.Now(), ierr)
	})
	k.SpawnProcess("contender", 101, func(p *kernel.Process) {
		p.Thread.Charge(2 * time.Millisecond)
		resourceA.Acquire(p.Thread, lock.Exclusive)
		contenderGot = true
		fmt.Printf("    contender obtained resourceA at %v\n", k.Clock.Now())
		_ = resourceA.Release(p.Thread)
	})
	if err := k.Run(); err != nil {
		return err
	}
	dumpTrace(k)
	if !contenderGot {
		return errors.New("contender starved")
	}
	return nil
}

func runMemory() error {
	k := newKernel()
	pt := echoPoint(k, "obj.fn", time.Second)
	k.SpawnProcess("greedy", 100, func(p *kernel.Process) {
		g, err := p.BuildAndInstall("obj.fn", `
.name gobbler
.import vino.kheap_alloc
.func main
main:
    movi r1, 4096
loop:
    callk vino.kheap_alloc
    jmp loop
`, graft.InstallOptions{Transfer: map[resource.Kind]int64{resource.KernelHeap: 64 << 10}})
		if err != nil {
			panic(err)
		}
		fmt.Println("    graft allocates kernel heap in a loop against a 64 KiB grant...")
		_, ierr := pt.Invoke(p.Thread)
		fmt.Printf("    aborted: %v\n", ierr)
		fmt.Printf("    graft account usage after undo: %d bytes (all allocations rolled back)\n",
			g.Account.Used(resource.KernelHeap))
	})
	return k.Run()
}

func runScribble() error {
	src := `
.name scribbler
.func main
main:
    movi r1, 64
    movi r2, 0x41
    movi r3, 512
loop:
    stb [r1+0], r2
    addi r1, r1, 1
    addi r3, r3, -1
    jnz r3, loop
    movi r0, 0
    ret
`
	// First: what an unprotected graft would have done.
	raw, err := sfi.BuildUnsafe(src)
	if err != nil {
		return err
	}
	vm, err := sfi.NewVM(raw, sfi.Config{})
	if err != nil {
		return err
	}
	kmem := vm.KernelMemory()
	for i := range kmem {
		kmem[i] = 0xEE
	}
	if _, err := vm.Call("main"); err != nil {
		return err
	}
	corrupted := 0
	for _, b := range kmem {
		if b != 0xEE {
			corrupted++
		}
	}
	fmt.Printf("    UNPROTECTED: the graft overwrote %d bytes of kernel memory\n", corrupted)

	// Now through the kernel, SFI-protected.
	k := newKernel()
	pt := echoPoint(k, "obj.fn", time.Second)
	k.SpawnProcess("app", 100, func(p *kernel.Process) {
		g, err := p.BuildAndInstall("obj.fn", src, graft.InstallOptions{})
		if err != nil {
			panic(err)
		}
		km := g.VM().KernelMemory()
		for i := range km {
			km[i] = 0xEE
		}
		if _, err := pt.Invoke(p.Thread); err != nil {
			panic(err)
		}
		bad := 0
		for _, b := range km {
			if b != 0xEE {
				bad++
			}
		}
		fmt.Printf("    SFI-PROTECTED: same graft, %d bytes of kernel memory touched; writes landed in its own segment\n", bad)
		if bad != 0 {
			panic("SFI leak")
		}
	})
	return k.Run()
}

func runForge() error {
	k := newKernel()
	echoPoint(k, "obj.fn", time.Second)
	var result error
	k.SpawnProcess("forger", 100, func(p *kernel.Process) {
		forged, _, err := sfi.BuildSafe(".name evil\n.func main\nmain:\n ret", sfi.NewSigner([]byte("attacker-key")))
		if err != nil {
			result = err
			return
		}
		_, err = p.Install("obj.fn", forged, graft.InstallOptions{})
		fmt.Printf("    self-signed image: %v\n", err)
		genuine, _, err := sfi.BuildSafe(".name patched\n.func main\nmain:\n ret", k.Signer)
		if err != nil {
			result = err
			return
		}
		genuine.Code = append(genuine.Code, sfi.Instr{Op: sfi.NOP})
		_, err = p.Install("obj.fn", genuine, graft.InstallOptions{})
		fmt.Printf("    signed-then-patched image: %v\n", err)
	})
	if err := k.Run(); err != nil {
		return err
	}
	return result
}

func runDoS() error {
	k := newKernel()
	pt := echoPoint(k, "pagedaemon.pick-victim", 40*time.Millisecond)
	k.SpawnProcess("daemon", 100, func(p *kernel.Process) {
		if _, err := p.BuildAndInstall("pagedaemon.pick-victim", ".name throttle\n.func main\nmain:\n jmp main\n", graft.InstallOptions{}); err != nil {
			panic(err)
		}
		fmt.Println("    a critical caller invokes a graft that never returns, ten times:")
		for i := 0; i < 10; i++ {
			res, _ := pt.Invoke(p.Thread)
			if res != -1 {
				panic("no forward progress")
			}
		}
		fmt.Printf("    all ten calls completed with the default policy; elapsed %v\n", k.Clock.Now())
	})
	return k.Run()
}

func runHTTP() error {
	k := newKernel()
	n := netstk.New(k)
	port := n.Listen("tcp", 80)
	var resp []byte
	k.SpawnProcess("server", 100, func(p *kernel.Process) {
		if _, err := p.BuildAndInstall(port.Point().Name, `
.name http-server
.import net.read
.import net.write
.import net.close
.data "HTTP/1.0 200 OK\r\n\r\nserved from a kernel graft"
.func main
main:
    mov r6, r1
    addi r2, r10, 512
    movi r3, 256
    callk net.read
    mov r1, r6
    mov r2, r10
    movi r3, 45
    callk net.write
    mov r1, r6
    callk net.close
    ret
`, graft.InstallOptions{Transfer: map[resource.Kind]int64{resource.Memory: 4096}}); err != nil {
			panic(err)
		}
		conn, err := n.Connect(k.Sched, "tcp", 80, []byte("GET / HTTP/1.0\r\n\r\n"))
		if err != nil {
			panic(err)
		}
		for i := 0; i < 20 && !conn.Closed(); i++ {
			p.Thread.Yield()
		}
		resp = conn.Response()
	})
	if err := k.Run(); err != nil {
		return err
	}
	fmt.Printf("    response: %q\n", resp)
	return nil
}
