package main

// `vinosim campaign`: the coverage-guided chaos fuzzer. Shards seeds
// across a bounded worker pool of isolated kernels, fingerprints every
// run, evolves fault plans toward novel signatures, and distills each
// novel signature into a minimized reproducer. Deterministic for a
// fixed (-seed, -shards) at any -workers; exits non-zero if any run
// fails the survival audit or fewer than -min-novel signatures turn up.

import (
	"flag"
	"fmt"
	"os"

	vino "vino"
)

func cmdCampaign(args []string) int {
	fs := flag.NewFlagSet("vinosim campaign", flag.ExitOnError)
	seed := fs.Int64("seed", 1, "campaign master seed (with -shards, fully determines the outcome)")
	runs := fs.Int("runs", 256, "total chaos-run budget")
	shards := fs.Int("shards", 8, "population width: plans per generation (a determinism parameter)")
	workers := fs.Int("workers", 0, "worker-pool size (wall-clock only; 0 = GOMAXPROCS capped at -shards)")
	iterations := fs.Int("iterations", 16, "workload iterations per run")
	ncpu := fs.Int("ncpu", 1, "simulated CPU count per kernel instance")
	extended := fs.Bool("extended", true, "widen each run's fault surface (netio class, pager phase)")
	crashFlag := fs.Bool("crash", true, "arm each run's crash phase (most signature diversity lives here)")
	maxCorpus := fs.Int("maxcorpus", 16, "cap on minimized reproducers to distill (-1 disables minimization)")
	minNovel := fs.Int("min-novel", 1, "fail unless at least this many distinct signatures are discovered")
	corpusDir := fs.String("corpus", "", "write minimized reproducers to this directory (one faultfile per signature)")
	coverageOut := fs.String("coverage", "", "write the byte-stable coverage map to this file ('-' for stdout)")
	fs.Parse(args)

	cfg := vino.CampaignConfig{
		Seed:       *seed,
		Runs:       *runs,
		Shards:     *shards,
		Workers:    *workers,
		Iterations: *iterations,
		NCPU:       *ncpu,
		Extended:   *extended,
		Crash:      *crashFlag,
		MaxCorpus:  *maxCorpus,
	}
	rep, err := vino.RunCampaign(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "campaign: %v\n", err)
		return 1
	}
	fmt.Print(rep.Summary())
	if *coverageOut == "-" {
		fmt.Print(rep.CoverageDump())
	} else if *coverageOut != "" {
		if err := os.WriteFile(*coverageOut, []byte(rep.CoverageDump()), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "campaign: %v\n", err)
			return 1
		}
		fmt.Printf("campaign: coverage map written to %s\n", *coverageOut)
	}
	if *corpusDir != "" {
		if err := rep.WriteCorpus(*corpusDir); err != nil {
			fmt.Fprintf(os.Stderr, "campaign: %v\n", err)
			return 1
		}
		fmt.Printf("campaign: %d reproducers written to %s\n", len(rep.Corpus), *corpusDir)
	}
	if rep.DirtyRuns > 0 {
		fmt.Fprintf(os.Stderr, "campaign: FAIL: %d runs failed the survival audit\n", rep.DirtyRuns)
		return 1
	}
	if len(rep.Novel) < *minNovel {
		fmt.Fprintf(os.Stderr, "campaign: FAIL: %d distinct signatures, want >= %d\n", len(rep.Novel), *minNovel)
		return 1
	}
	return 0
}
