package main

// The chaos-family subcommands — chaos, crash, minimize — share one
// flag set and one config builder: `crash` is `chaos` with the crash
// phase armed (and its checkpoint knobs exposed), `minimize` is a
// failing crash config fed to the delta-debugger instead of printed.
// The deprecated flat-flag form (vinosim -chaos ...) maps onto the
// same builder; see legacy.go.

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	vino "vino"
)

// onOffFlag is a boolean flag that reads as on/off and also accepts
// the usual bool spellings, so both `-translate` and `-translate=off`
// parse. The default is whatever the flag is initialised to.
type onOffFlag bool

func (f *onOffFlag) Set(s string) error {
	switch s {
	case "", "on", "true", "1":
		*f = true
	case "off", "false", "0":
		*f = false
	default:
		return fmt.Errorf("want on or off, got %q", s)
	}
	return nil
}

func (f *onOffFlag) String() string {
	if f != nil && *f {
		return "on"
	}
	return "off"
}

// IsBoolFlag lets `-translate` (no value) mean on.
func (f *onOffFlag) IsBoolFlag() bool { return true }

// chaosFlags collects every chaos-family flag; register installs the
// base set, registerCrash the crash-phase set.
type chaosFlags struct {
	seed           int64
	faults         string
	quick          bool
	iterations     int
	ncpu           int
	extended       bool
	faultfile      string
	writeplan      string
	guard          bool
	guardStreak    int
	guardBackoff   time.Duration
	guardProbation int
	varyInstalls   bool
	redteam        bool
	translate      onOffFlag

	crash          bool
	checkpoint     time.Duration
	checkpointRing int
	checkpointFull bool
	checkpointDir  string
	recoverScope   string
	norecover      bool
}

func (c *chaosFlags) register(fs *flag.FlagSet) {
	fs.Int64Var(&c.seed, "seed", 0, "fault-plan seed (same seed = identical trace)")
	fs.StringVar(&c.faults, "faults", "", "comma-separated fault classes (disk,latency,pressure,net,graft,lock); empty = all")
	fs.BoolVar(&c.quick, "quick", false, "abbreviated run for CI smoke tests")
	fs.IntVar(&c.iterations, "iterations", 0, "workload iterations per phase (0 = default; overrides -quick)")
	fs.IntVar(&c.ncpu, "ncpu", 1, "simulated CPU count (same seed + same ncpu = identical trace)")
	fs.BoolVar(&c.extended, "extended", false, "widen the fault surface (netio mid-stream faults, pager phase)")
	fs.StringVar(&c.faultfile, "faultfile", "", "replay the fault plan decoded from this file instead of deriving one from -seed")
	fs.StringVar(&c.writeplan, "writeplan", "", "save the run's fault plan (text form) to this file")
	fs.BoolVar(&c.guard, "guard", false, "arm the graft supervisor (health ledger, quarantine, probation, expulsion)")
	fs.IntVar(&c.guardStreak, "guard-streak", 0, "consecutive aborts before quarantine (0 = policy default)")
	fs.DurationVar(&c.guardBackoff, "guard-backoff", 0, "first quarantine backoff in virtual time (0 = policy default)")
	fs.IntVar(&c.guardProbation, "guard-probation", 0, "clean commits required to clear probation (0 = policy default)")
	fs.BoolVar(&c.varyInstalls, "varyinstalls", false, "randomize graft install options (watchdogs, transfers, handler order) from the seed")
	fs.BoolVar(&c.redteam, "redteam", false, "arm the red-team phase (SFI escape corpus + in-kernel compartment-violation probe)")
	c.translate = true
	fs.Var(&c.translate, "translate", "run verified grafts on the translated closure engine (off = interpret; reports are byte-identical either way)")
	fs.BoolVar(&showTrace, "trace", false, "dump the kernel flight recorder after the run")
}

func (c *chaosFlags) registerCrash(fs *flag.FlagSet) {
	fs.DurationVar(&c.checkpoint, "checkpoint", 20*time.Millisecond, "checkpoint cadence in virtual time")
	fs.IntVar(&c.checkpointRing, "checkpoint-ring", 0, "keep a ring of the N newest checkpoints (0 = latest only); recovery picks the newest checkpoint predating the panic's taint")
	fs.BoolVar(&c.checkpointFull, "checkpoint-full", false, "full-copy checkpoints instead of incremental deltas (A/B baseline; identical traces, O(state) capture cost)")
	fs.BoolVar(&c.norecover, "norecover", false, "disable recovery: the first injected panic is fatal and reported (reproducer mode)")
	fs.StringVar(&c.recoverScope, "recover-scope", "kernel", "recovery scope: kernel (whole-image restore) or graft (roll back only the offender's domain, widening on cross-domain entanglement)")
	fs.StringVar(&c.checkpointDir, "checkpoint-dir", "", "persist the checkpoint ring to this directory (gob manifests, exponential-age compaction)")
}

// build is the shared config builder every chaos-family subcommand
// (and the legacy shim) funnels through.
func (c *chaosFlags) build() (vino.ChaosConfig, error) {
	classes, err := vino.ParseFaultClasses(c.faults)
	if err != nil {
		return vino.ChaosConfig{}, err
	}
	if c.faults == "" {
		// Let withDefaults pick the class set, so -extended widens it.
		classes = nil
	}
	cfg := vino.ChaosConfig{
		Seed:               c.seed,
		Classes:            classes,
		NCPU:               c.ncpu,
		Extended:           c.extended,
		VaryInstalls:       c.varyInstalls,
		Crash:              c.crash || c.norecover,
		CheckpointEvery:    c.checkpoint,
		CheckpointRing:     c.checkpointRing,
		CheckpointFullCopy: c.checkpointFull,
		CheckpointDir:      c.checkpointDir,
		NoRecover:          c.norecover,
		RedTeam:            c.redteam,
		NoTranslate:        !bool(c.translate),
	}
	switch c.recoverScope {
	case "", vino.RecoverScopeKernel:
		// Whole-kernel restore, the default; the zero value keeps
		// crash-free runs byte-identical with pre-scope builds.
	case vino.RecoverScopeGraft:
		cfg.RecoverScope = vino.RecoverScopeGraft
	default:
		return vino.ChaosConfig{}, fmt.Errorf("-recover-scope: unknown scope %q (want kernel or graft)", c.recoverScope)
	}
	if c.guard {
		pol := vino.DefaultGuardPolicy()
		if c.guardStreak > 0 {
			pol.QuarantineStreak = c.guardStreak
		}
		if c.guardBackoff > 0 {
			pol.Backoff = c.guardBackoff
		}
		if c.guardProbation > 0 {
			pol.ProbationCommits = c.guardProbation
		}
		cfg.Guard = &pol
	}
	if c.faultfile != "" {
		data, err := os.ReadFile(c.faultfile)
		if err != nil {
			return vino.ChaosConfig{}, err
		}
		plan, err := vino.DecodeFaultPlan(string(data))
		if err != nil {
			return vino.ChaosConfig{}, fmt.Errorf("%s: %w", c.faultfile, err)
		}
		cfg.Plan = plan
	}
	if c.quick {
		cfg.Iterations = 16
	}
	if c.iterations > 0 {
		cfg.Iterations = c.iterations
	}
	return cfg, nil
}

// execute runs the built config and prints the verdict.
func (c *chaosFlags) execute() error {
	cfg, err := c.build()
	if err != nil {
		return err
	}
	report, err := vino.RunChaos(cfg)
	if err != nil {
		return err
	}
	if c.writeplan != "" {
		if err := os.WriteFile(c.writeplan, []byte(report.Plan.Encode()), 0o644); err != nil {
			return err
		}
		fmt.Printf("chaos plan saved to %s\n", c.writeplan)
	}
	fmt.Printf("chaos plan (seed %d):\n%s", report.Plan.Seed, report.Plan)
	fmt.Print(report.Summary())
	fmt.Print(report.CounterSummary())
	if report.GuardHealth != nil {
		fmt.Print(report.GuardHealth.Table())
	}
	if showTrace {
		fmt.Print(report.TraceDump)
	}
	if !report.Survived() {
		if report.FatalPanic != "" {
			return fmt.Errorf("kernel panic %s was fatal (recovery disabled)", report.FatalPanic)
		}
		return errors.New("kernel did not survive the fault plan")
	}
	return nil
}

// cmdChaos is `vinosim chaos`: scheduled fault injection plus the
// survival audit, without the crash phase.
func cmdChaos(args []string) int {
	fs := flag.NewFlagSet("vinosim chaos", flag.ExitOnError)
	var c chaosFlags
	c.register(fs)
	fs.Parse(args)
	return chaosExit(c.execute())
}

// cmdCrash is `vinosim crash`: chaos with the crash phase armed —
// injected kernel panics, checkpoint/restore recovery, and the
// checkpoint knobs exposed.
func cmdCrash(args []string) int {
	fs := flag.NewFlagSet("vinosim crash", flag.ExitOnError)
	var c chaosFlags
	c.register(fs)
	c.registerCrash(fs)
	fs.Parse(args)
	c.crash = true
	return chaosExit(c.execute())
}

// cmdMinimize is `vinosim minimize`: delta-debug a failing chaos
// config's fault plan to a minimal reproducer faultfile. Recovery is
// disabled by default so the first contained panic is the failure.
func cmdMinimize(args []string) int {
	fs := flag.NewFlagSet("vinosim minimize", flag.ExitOnError)
	var c chaosFlags
	c.register(fs)
	c.registerCrash(fs)
	out := fs.String("out", "min.faultplan", "write the minimal reproducer faultfile here")
	withRecovery := fs.Bool("recover", false, "minimize with recovery enabled (needs a run that fails despite recovery)")
	fs.Parse(args)
	c.crash = true
	if !*withRecovery {
		c.norecover = true
	}
	cfg, err := c.build()
	if err != nil {
		return chaosExit(err)
	}
	return chaosExit(runMinimize(cfg, *out))
}

// runMinimize delta-debugs the failing config's fault plan and writes
// the minimal reproducer as a faultfile.
func runMinimize(cfg vino.ChaosConfig, out string) error {
	res, err := vino.MinimizeChaos(cfg)
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, []byte(res.Plan.Encode()), 0o644); err != nil {
		return err
	}
	fmt.Printf("minimize: signature %q\n", res.Signature)
	fmt.Printf("minimize: %d rules -> %d (%d removed, %d replays)\n",
		len(res.Plan.Rules)+res.Removed, len(res.Plan.Rules), res.Removed, res.Runs)
	fmt.Printf("minimize: reproducer saved to %s; replay with 'vinosim crash -norecover -faultfile=%s' plus this run's flags\n", out, out)
	return nil
}

func chaosExit(err error) int {
	if err != nil {
		fmt.Fprintf(os.Stderr, "chaos: %v\n", err)
		return 1
	}
	return 0
}
