package main

// The deprecated flat-flag interface: every pre-subcommand invocation
// (vinosim -list, vinosim -scenario hoard, vinosim -chaos -seed=7
// -crash -minimize=out.txt ...) keeps working by mapping onto the
// subcommand implementations, with a one-line migration hint on
// stderr pointing at the modern spelling.

import (
	"flag"
	"fmt"
	"os"
	"strings"
)

// cmdLegacy parses the historical flat flag set and dispatches to the
// same config builder and runners the subcommands use.
func cmdLegacy(args []string) int {
	fs := flag.NewFlagSet("vinosim", flag.ExitOnError)
	list := fs.Bool("list", false, "list scenarios")
	name := fs.String("scenario", "", "run one scenario")
	chaos := fs.Bool("chaos", false, "run the deterministic chaos harness instead of scenarios")
	minimize := fs.String("minimize", "", "chaos: delta-debug the failing run's fault plan and write the minimal faultfile reproducer here")
	var c chaosFlags
	c.register(fs)
	fs.BoolVar(&c.crash, "crash", false, "chaos: arm the crash phase (injected kernel panics, checkpoint/restore recovery)")
	c.registerCrash(fs)
	fs.Parse(args)

	switch {
	case *chaos && *minimize != "":
		hint("vinosim minimize -out=" + *minimize + " ...")
		cfg, err := c.build()
		if err != nil {
			return chaosExit(err)
		}
		return chaosExit(runMinimize(cfg, *minimize))
	case *chaos && (c.crash || c.norecover):
		hint("vinosim crash ...")
		return chaosExit(c.execute())
	case *chaos:
		hint("vinosim chaos ...")
		return chaosExit(c.execute())
	case *list:
		hint("vinosim run -list")
		listScenarios(os.Stdout)
		return 0
	default:
		if *name != "" {
			hint("vinosim run " + *name)
		} else {
			hint("vinosim run")
		}
		return runScenarios(*name)
	}
}

// hint prints the flat-flag deprecation notice once per invocation.
func hint(modern string) {
	fmt.Fprintf(os.Stderr, "vinosim: flat flags are deprecated; use '%s' (vinosim help)\n",
		strings.TrimSpace(modern))
}
