package main

// The narrated scenarios: each demonstrates one class of graft
// misbehavior from §2 of the paper and the kernel surviving it.

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	vino "vino"
)

type scenario struct {
	name  string
	brief string
	run   func() error
}

var scenarios = []scenario{
	{"spin", "infinite-loop graft (s2.2): preempted, watchdogged, removed", runSpin},
	{"hoard", "lock(resourceA); while(1) (s2.2): time-out aborts the holder's transaction", runHoard},
	{"memory", "resource gobbler (s2.2): allocation denied at the graft's limit, state undone", runMemory},
	{"scribble", "wild pointers (s2.1): SFI contains what would have corrupted the kernel", runScribble},
	{"forge", "unsigned/tampered code (s2.3): the loader refuses it", runForge},
	{"dos", "covert denial of service (s2.5): pagedaemon-style caller keeps making progress", runDoS},
	{"http", "event graft (s3.5): an HTTP server grafted into the kernel", runHTTP},
}

// showTrace dumps the kernel flight recorder after each scenario or
// chaos run; set by the -trace flag of every subcommand.
var showTrace bool

// cmdRun is the `vinosim run` subcommand: all scenarios, one scenario
// by name (positional or -scenario), or -list.
func cmdRun(args []string) int {
	fs := flag.NewFlagSet("vinosim run", flag.ExitOnError)
	list := fs.Bool("list", false, "list scenarios")
	name := fs.String("scenario", "", "run one scenario")
	fs.BoolVar(&showTrace, "trace", false, "dump the kernel flight recorder after each scenario")
	fs.Parse(args)
	if fs.NArg() > 0 && *name == "" {
		*name = fs.Arg(0)
	}
	if *list {
		listScenarios(os.Stdout)
		return 0
	}
	return runScenarios(*name)
}

func listScenarios(w *os.File) {
	for _, s := range scenarios {
		fmt.Fprintf(w, "%-10s %s\n", s.name, s.brief)
	}
}

// runScenarios runs every scenario (name == "") or one by name,
// returning a process exit code.
func runScenarios(name string) int {
	var failed bool
	matched := false
	for _, s := range scenarios {
		if name != "" && s.name != name {
			continue
		}
		matched = true
		fmt.Printf("=== %s: %s\n", s.name, s.brief)
		if err := s.run(); err != nil {
			fmt.Printf("    FAILED: %v\n\n", err)
			failed = true
			continue
		}
		fmt.Println()
	}
	if !matched {
		fmt.Fprintf(os.Stderr, "no scenario %q (use 'vinosim run -list')\n", name)
		return 1
	}
	if failed {
		return 1
	}
	return 0
}

func newKernel() *vino.Kernel {
	return vino.New(vino.WithTrace(1024))
}

// dumpTrace prints the kernel flight recorder when -trace is set.
func dumpTrace(k *vino.Kernel) {
	if showTrace {
		fmt.Print(k.Trace.Dump())
	}
}

func echoPoint(k *vino.Kernel, name string, watchdog time.Duration) *vino.GraftPoint {
	return k.Grafts.RegisterPoint(&vino.GraftPoint{
		Name:      name,
		Kind:      vino.Function,
		Privilege: vino.Local,
		Default:   func(t *vino.Thread, args []int64) (int64, error) { return -1, nil },
		Watchdog:  watchdog,
	})
}

func runSpin() error {
	k := newKernel()
	pt := echoPoint(k, "obj.fn", 80*time.Millisecond)
	bystander := 0
	done := false
	k.SpawnProcess("victim", 100, func(p *vino.Process) {
		g, err := p.BuildAndInstall("obj.fn", vino.FaultGraftSource(vino.FaultGraftLoop), vino.InstallOptions{})
		if err != nil {
			panic(err)
		}
		fmt.Println("    installed a graft that loops forever; invoking it...")
		res, ierr := pt.Invoke(p.Thread)
		done = true
		fmt.Printf("    invoke returned default result %d after %v; abort reason: %v\n", res, k.Clock.Now(), ierr)
		fmt.Printf("    graft forcibly removed: %v; bystander ran %d times meanwhile\n", g.Removed(), bystander)
	})
	k.SpawnProcess("bystander", 101, func(p *vino.Process) {
		for !done {
			bystander++
			p.Thread.Charge(time.Millisecond)
			p.Thread.Yield()
		}
	})
	if err := k.Run(); err != nil {
		return err
	}
	dumpTrace(k)
	if bystander == 0 {
		return errors.New("bystander starved")
	}
	return nil
}

func runHoard() error {
	k := newKernel()
	resourceA := k.Locks.NewLock("resourceA", &vino.LockClass{Name: "res", Timeout: 30 * time.Millisecond})
	k.Grafts.RegisterCallable("demo.lock_a", func(ctx *vino.Ctx, args [5]int64) (int64, error) {
		ctx.Txn.AcquireLock(resourceA, vino.Exclusive)
		return 0, nil
	})
	pt := echoPoint(k, "obj.fn", 10*time.Second)
	contenderGot := false
	k.SpawnProcess("hog", 100, func(p *vino.Process) {
		if _, err := p.BuildAndInstall("obj.fn", `
.name lock-hog
.import demo.lock_a
.func main
main:
    callk demo.lock_a
spin:
    jmp spin
`, vino.InstallOptions{}); err != nil {
			panic(err)
		}
		fmt.Println("    graft takes resourceA and spins: the paper's lock(resourceA); while(1);")
		_, ierr := pt.Invoke(p.Thread)
		fmt.Printf("    holder's transaction aborted at %v: %v\n", k.Clock.Now(), ierr)
	})
	k.SpawnProcess("contender", 101, func(p *vino.Process) {
		p.Thread.Charge(2 * time.Millisecond)
		resourceA.Acquire(p.Thread, vino.Exclusive)
		contenderGot = true
		fmt.Printf("    contender obtained resourceA at %v\n", k.Clock.Now())
		_ = resourceA.Release(p.Thread)
	})
	if err := k.Run(); err != nil {
		return err
	}
	dumpTrace(k)
	if !contenderGot {
		return errors.New("contender starved")
	}
	return nil
}

func runMemory() error {
	k := newKernel()
	pt := echoPoint(k, "obj.fn", time.Second)
	k.SpawnProcess("greedy", 100, func(p *vino.Process) {
		g, err := p.BuildAndInstall("obj.fn", vino.FaultGraftSource(vino.FaultGraftBlowout),
			vino.InstallOptions{Transfer: map[vino.ResourceKind]int64{vino.ResKernelHeap: 64 << 10}})
		if err != nil {
			panic(err)
		}
		fmt.Println("    graft allocates kernel heap in a loop against a 64 KiB grant...")
		_, ierr := pt.Invoke(p.Thread)
		fmt.Printf("    aborted: %v\n", ierr)
		fmt.Printf("    graft account usage after undo: %d bytes (all allocations rolled back)\n",
			g.Account.Used(vino.ResKernelHeap))
	})
	return k.Run()
}

func runScribble() error {
	src := `
.name scribbler
.func main
main:
    movi r1, 64
    movi r2, 0x41
    movi r3, 512
loop:
    stb [r1+0], r2
    addi r1, r1, 1
    addi r3, r3, -1
    jnz r3, loop
    movi r0, 0
    ret
`
	// First: what an unprotected graft would have done.
	raw, err := vino.Toolchain{}.Build(src, vino.BuildOptions{Unsafe: true})
	if err != nil {
		return err
	}
	vm, err := vino.NewGraftVM(raw)
	if err != nil {
		return err
	}
	kmem := vm.KernelMemory()
	for i := range kmem {
		kmem[i] = 0xEE
	}
	if _, err := vm.Call("main"); err != nil {
		return err
	}
	corrupted := 0
	for _, b := range kmem {
		if b != 0xEE {
			corrupted++
		}
	}
	fmt.Printf("    UNPROTECTED: the graft overwrote %d bytes of kernel memory\n", corrupted)

	// Now through the kernel, SFI-protected.
	k := newKernel()
	pt := echoPoint(k, "obj.fn", time.Second)
	k.SpawnProcess("app", 100, func(p *vino.Process) {
		g, err := p.BuildAndInstall("obj.fn", src, vino.InstallOptions{})
		if err != nil {
			panic(err)
		}
		km := g.VM().KernelMemory()
		for i := range km {
			km[i] = 0xEE
		}
		if _, err := pt.Invoke(p.Thread); err != nil {
			panic(err)
		}
		bad := 0
		for _, b := range km {
			if b != 0xEE {
				bad++
			}
		}
		fmt.Printf("    SFI-PROTECTED: same graft, %d bytes of kernel memory touched; writes landed in its own segment\n", bad)
		if bad != 0 {
			panic("SFI leak")
		}
	})
	return k.Run()
}

func runForge() error {
	k := newKernel()
	echoPoint(k, "obj.fn", time.Second)
	var result error
	k.SpawnProcess("forger", 100, func(p *vino.Process) {
		attacker := vino.Toolchain{Signer: vino.NewSigner([]byte("attacker-key"))}
		forged, err := attacker.Build(".name evil\n.func main\nmain:\n ret", vino.BuildOptions{})
		if err != nil {
			result = err
			return
		}
		_, err = p.Install("obj.fn", forged, vino.InstallOptions{})
		fmt.Printf("    self-signed image: %v\n", err)
		genuine, err := vino.ToolchainFor(k).Build(".name patched\n.func main\nmain:\n movi r0, 1\n ret", vino.BuildOptions{})
		if err != nil {
			result = err
			return
		}
		// Patch the signed image: drop its last instruction.
		genuine.Code = genuine.Code[:len(genuine.Code)-1]
		_, err = p.Install("obj.fn", genuine, vino.InstallOptions{})
		fmt.Printf("    signed-then-patched image: %v\n", err)
	})
	if err := k.Run(); err != nil {
		return err
	}
	return result
}

func runDoS() error {
	k := newKernel()
	pt := echoPoint(k, "pagedaemon.pick-victim", 40*time.Millisecond)
	k.SpawnProcess("daemon", 100, func(p *vino.Process) {
		if _, err := p.BuildAndInstall("pagedaemon.pick-victim", vino.FaultGraftSource(vino.FaultGraftLoop), vino.InstallOptions{}); err != nil {
			panic(err)
		}
		fmt.Println("    a critical caller invokes a graft that never returns, ten times:")
		for i := 0; i < 10; i++ {
			res, _ := pt.Invoke(p.Thread)
			if res != -1 {
				panic("no forward progress")
			}
		}
		fmt.Printf("    all ten calls completed with the default policy; elapsed %v\n", k.Clock.Now())
	})
	return k.Run()
}

func runHTTP() error {
	k := newKernel()
	n := vino.NewNet(k)
	port := n.Listen("tcp", 80)
	var resp []byte
	k.SpawnProcess("server", 100, func(p *vino.Process) {
		if _, err := p.BuildAndInstall(port.Point().Name, `
.name http-server
.import net.read
.import net.write
.import net.close
.data "HTTP/1.0 200 OK\r\n\r\nserved from a kernel graft"
.func main
main:
    mov r6, r1
    addi r2, r10, 512
    movi r3, 256
    callk net.read
    mov r1, r6
    mov r2, r10
    movi r3, 45
    callk net.write
    mov r1, r6
    callk net.close
    ret
`, vino.InstallOptions{Transfer: map[vino.ResourceKind]int64{vino.ResMemory: 4096}}); err != nil {
			panic(err)
		}
		conn, err := n.Connect(k.Sched, "tcp", 80, []byte("GET / HTTP/1.0\r\n\r\n"))
		if err != nil {
			panic(err)
		}
		for i := 0; i < 20 && !conn.Closed(); i++ {
			p.Thread.Yield()
		}
		resp = conn.Response()
	})
	if err := k.Run(); err != nil {
		return err
	}
	fmt.Printf("    response: %q\n", resp)
	return nil
}
