// Command vinobench regenerates every table and figure of the paper's
// evaluation (§4) on the simulated kernel and prints measured-vs-paper
// values.
//
// Usage:
//
//	vinobench -all
//	vinobench -table 3        # Tables 3..7
//	vinobench -sweep abort    # the §4.5 abort-cost model
//	vinobench -sweep readahead
//	vinobench -sweep eviction
//	vinobench -sweep smp      # multi-CPU throughput scaling
//	vinobench -sweep smp -ncpu 8   # sweep 1,2,4,8 simulated CPUs
//	vinobench -sweep checkpoint    # incremental vs full-copy capture cost
//	vinobench -sweep recovery      # whole-kernel vs per-graft domain recovery cost
//	vinobench -sweep campaign      # chaos-campaign runs/sec vs worker-pool size
//	vinobench -sweep campaign -workers 8 -runs 64
//	vinobench -sweep fleet         # fleet requests/sec vs instance and tenant count
//	vinobench -sweep fleet -instances 4 -tenants 4
//	vinobench -ablation lock  # Figures 4/5 policy-encapsulation cost
//	vinobench -ablation sfidensity
//	vinobench -check          # semantic cross-checks (SFI-rewrite equivalence)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"vino/internal/campaign"
	"vino/internal/fleet"
	"vino/internal/harness"
)

func main() {
	all := flag.Bool("all", false, "run every experiment")
	table := flag.Int("table", 0, "reproduce one paper table (3-7)")
	sweep := flag.String("sweep", "", "parameter sweep: abort | readahead | eviction | timeout | smp | checkpoint | recovery | sfi | campaign | fleet")
	ablation := flag.String("ablation", "", "design-choice ablation: lock | sfidensity | misfitopt | txn")
	check := flag.Bool("check", false, "run semantic cross-checks")
	jsonOut := flag.Bool("json", false, "sweep sfi: emit the result as JSON (for checked-in baselines)")
	ncpu := flag.Int("ncpu", 4, "smp sweep: largest simulated CPU count (sweeps powers of two up to it)")
	workers := flag.Int("workers", 8, "campaign sweep: largest worker-pool size (sweeps powers of two up to it)")
	runs := flag.Int("runs", 64, "campaign sweep: run budget per point")
	instances := flag.Int("instances", 4, "fleet sweep: largest instance count (sweeps powers of two up to it)")
	fleetTenants := flag.Int("tenants", 4, "fleet sweep: largest tenant count (sweeps powers of two up to it)")
	flag.Parse()

	smpCounts := func() []int {
		var out []int
		for n := 1; n <= *ncpu; n *= 2 {
			out = append(out, n)
		}
		if len(out) == 0 {
			out = []int{1}
		}
		return out
	}

	ran := false
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "vinobench:", err)
		os.Exit(1)
	}

	runTable := func(n int) {
		ran = true
		switch n {
		case 3:
			t, err := harness.ReadAheadTable()
			if err != nil {
				fail(err)
			}
			fmt.Println(t)
		case 4:
			t, err := harness.PageEvictionTable()
			if err != nil {
				fail(err)
			}
			fmt.Println(t)
		case 5:
			t, err := harness.SchedulingTable()
			if err != nil {
				fail(err)
			}
			fmt.Println(t)
		case 6:
			t, err := harness.EncryptionTable()
			if err != nil {
				fail(err)
			}
			fmt.Println(t)
		case 7:
			t, err := harness.BuildAbortTable()
			if err != nil {
				fail(err)
			}
			fmt.Println(t)
		default:
			fail(fmt.Errorf("no such table %d (paper evaluation tables are 3-7)", n))
		}
	}

	runSweep := func(name string) {
		ran = true
		switch name {
		case "abort":
			pts, err := harness.AbortCostSweep(8, 8)
			if err != nil {
				fail(err)
			}
			fmt.Println("Abort-cost model (s4.5): abort = 35us + 10us*L + c*G")
			fmt.Printf("%6s %6s %14s %12s\n", "locks", "undos", "measured (us)", "model (us)")
			for _, p := range pts {
				fmt.Printf("%6d %6d %14.1f %12.1f\n", p.Locks, p.Undos, p.MeasUS, p.ModelUS)
			}
			fmt.Println()
		case "readahead":
			pts, err := harness.ReadAheadWinSweep(nil)
			if err != nil {
				fail(err)
			}
			fmt.Println(harness.FormatRAWinSweep(pts))
		case "eviction":
			cb, err := harness.BuildEvictionCostBenefit()
			if err != nil {
				fail(err)
			}
			fmt.Println(cb)
		case "timeout":
			pts, err := harness.TimeoutSweep(nil)
			if err != nil {
				fail(err)
			}
			fmt.Println(harness.FormatTimeoutSweep(pts))
		case "smp":
			s, err := harness.SMPTable(smpCounts(), 32)
			if err != nil {
				fail(err)
			}
			fmt.Println(s)
		case "checkpoint":
			pts, err := harness.CheckpointCostSweep(nil, nil)
			if err != nil {
				fail(err)
			}
			fmt.Println(harness.FormatCheckpointCostSweep(pts))
		case "recovery":
			pts, err := harness.RecoveryCostSweep(nil)
			if err != nil {
				fail(err)
			}
			fmt.Println(harness.FormatRecoveryCostSweep(pts))
		case "sfi":
			res, err := harness.SFIOverheadSweep(0)
			if err != nil {
				fail(err)
			}
			if *jsonOut {
				enc := json.NewEncoder(os.Stdout)
				enc.SetIndent("", "  ")
				if err := enc.Encode(res); err != nil {
					fail(err)
				}
				return
			}
			fmt.Println(res)
			fmt.Println(res.HostSummary())
		case "campaign":
			var counts []int
			for n := 1; n <= *workers; n *= 2 {
				counts = append(counts, n)
			}
			pts, err := campaign.ThroughputSweep(1, *runs, counts)
			if err != nil {
				fail(err)
			}
			fmt.Println(campaign.FormatThroughputSweep(pts))
		case "fleet":
			pow2 := func(max int) []int {
				var out []int
				for n := 1; n <= max; n *= 2 {
					out = append(out, n)
				}
				if len(out) == 0 {
					out = []int{1}
				}
				return out
			}
			pts, err := fleet.ThroughputSweep(1, pow2(*instances), pow2(*fleetTenants))
			if err != nil {
				fail(err)
			}
			fmt.Println(fleet.FormatThroughputSweep(pts))
		default:
			fail(fmt.Errorf("unknown sweep %q", name))
		}
	}

	runAblation := func(name string) {
		ran = true
		switch name {
		case "lock":
			r, err := harness.LockManagerAblation(2000)
			if err != nil {
				fail(err)
			}
			fmt.Println(r)
		case "txn":
			r, err := harness.TxnProtectionAblation()
			if err != nil {
				fail(err)
			}
			fmt.Println(r)
		case "misfitopt":
			pts, err := harness.MisfitOptimizerAblation()
			if err != nil {
				fail(err)
			}
			fmt.Println(harness.FormatOptAblation(pts))
		case "sfidensity":
			pts, err := harness.SFIDensitySweep()
			if err != nil {
				fail(err)
			}
			fmt.Println("SFI overhead vs memory-access density (s4.4)")
			fmt.Printf("%10s %12s %12s %8s\n", "mem/iter", "unsafe (us)", "safe (us)", "ratio")
			for _, p := range pts {
				fmt.Printf("%10d %12.1f %12.1f %8.2f\n", p.MemOpsPerIteration, p.UnsafeUS, p.SafeUS, p.Ratio)
			}
			fmt.Println()
		default:
			fail(fmt.Errorf("unknown ablation %q", name))
		}
	}

	if *check || *all {
		ran = true
		if err := harness.EncryptionCorrectness(); err != nil {
			fail(err)
		}
		fmt.Println("check: SFI-rewritten and unprotected encryption grafts produce identical output — OK")
		fmt.Println()
	}
	if *all {
		for n := 3; n <= 7; n++ {
			runTable(n)
		}
		runSweep("abort")
		runSweep("readahead")
		runSweep("eviction")
		runSweep("timeout")
		runSweep("smp")
		runSweep("checkpoint")
		runSweep("recovery")
		runSweep("sfi")
		runSweep("campaign")
		runAblation("lock")
		runAblation("sfidensity")
		runAblation("misfitopt")
		runAblation("txn")
		return
	}
	if *table != 0 {
		runTable(*table)
	}
	if *sweep != "" {
		runSweep(*sweep)
	}
	if *ablation != "" {
		runAblation(*ablation)
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}
