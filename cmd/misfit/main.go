// Command misfit is the graft toolchain — the analog of the paper's
// MiSFIT tool (§3.3). It assembles GIR source, inserts the SFI
// sandboxing instructions, verifies the result, and signs it so the
// kernel loader will accept it.
//
// Usage:
//
//	misfit build -key KEY -o graft.img graft.s    # assemble + rewrite + sign
//	misfit asm -o graft.img graft.s               # assemble only (unsafe, unloadable)
//	misfit verify -key KEY graft.img              # signature + SFI invariants
//	misfit disasm graft.img                       # human-readable listing
//	misfit sign -key KEY -o out.img graft.img     # (re)sign an existing image
package main

import (
	"flag"
	"fmt"
	"os"

	"vino/internal/sfi"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	key := fs.String("key", "vino-development-toolchain-key", "signing key shared with the kernel")
	out := fs.String("o", "", "output file")
	optimize := fs.Bool("O", false, "build: statically discharge provably in-segment checks")
	if err := fs.Parse(os.Args[2:]); err != nil {
		fail(err)
	}
	args := fs.Args()

	switch cmd {
	case "build":
		requireArg(args, "source file")
		src := readFile(args[0])
		build := sfi.BuildSafe
		if *optimize {
			build = sfi.BuildSafeOptimized
		}
		img, stats, err := build(string(src), sfi.NewSigner([]byte(*key)))
		if err != nil {
			fail(err)
		}
		writeImage(outOr(out, args[0], ".img"), img)
		fmt.Fprintf(os.Stderr, "misfit: %q built: %d instructions (%d added), %d memory ops protected, %d indirect calls checked, %d checks discharged statically\n",
			img.Name, len(img.Code), stats.InstrsAdded, stats.MemOpsProtected, stats.IndirectProtected, stats.StaticallySafe)
	case "asm":
		requireArg(args, "source file")
		src := readFile(args[0])
		img, err := sfi.BuildUnsafe(string(src))
		if err != nil {
			fail(err)
		}
		writeImage(outOr(out, args[0], ".img"), img)
		fmt.Fprintf(os.Stderr, "misfit: %q assembled UNPROTECTED (%d instructions) — the kernel loader will reject it\n",
			img.Name, len(img.Code))
	case "verify":
		requireArg(args, "image file")
		img := readImage(args[0])
		if err := sfi.Verify(img); err != nil {
			fail(err)
		}
		signer := sfi.NewSigner([]byte(*key))
		switch {
		case !img.Safe:
			fmt.Println("structurally valid, NOT SFI-protected: unloadable")
		case !signer.Verify(img):
			fmt.Println("SFI invariants hold, signature INVALID under this key: unloadable")
			os.Exit(1)
		default:
			fmt.Println("OK: SFI-protected and signed; the kernel will load it")
		}
	case "disasm":
		requireArg(args, "image file")
		fmt.Print(sfi.Disassemble(readImage(args[0])))
	case "sign":
		requireArg(args, "image file")
		img := readImage(args[0])
		sfi.NewSigner([]byte(*key)).Sign(img)
		writeImage(outOr(out, args[0], ".img"), img)
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: misfit {build|asm|verify|disasm|sign} [-key K] [-o OUT] FILE")
	os.Exit(2)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "misfit:", err)
	os.Exit(1)
}

func requireArg(args []string, what string) {
	if len(args) != 1 {
		fail(fmt.Errorf("expected exactly one %s", what))
	}
}

func readFile(path string) []byte {
	data, err := os.ReadFile(path)
	if err != nil {
		fail(err)
	}
	return data
}

func readImage(path string) *sfi.Image {
	img, err := sfi.DecodeSigned(readFile(path))
	if err != nil {
		fail(fmt.Errorf("%s: %w", path, err))
	}
	return img
}

func writeImage(path string, img *sfi.Image) {
	if err := os.WriteFile(path, img.EncodeSigned(), 0o644); err != nil {
		fail(err)
	}
}

// outOr picks the -o value or derives one from the input name.
func outOr(out *string, in, ext string) string {
	if *out != "" {
		return *out
	}
	base := in
	for i := len(in) - 1; i >= 0; i-- {
		if in[i] == '.' {
			base = in[:i]
			break
		}
		if in[i] == '/' {
			break
		}
	}
	return base + ext
}
