// Package vino is a from-scratch reproduction of the system described in
// "Dealing With Disaster: Surviving Misbehaved Kernel Extensions"
// (Seltzer, Endo, Small, Smith — OSDI 1996): the VINO extensible
// kernel's grafting architecture, rebuilt as a deterministic user-space
// simulation.
//
// Two mechanisms make downloaded kernel extensions ("grafts")
// survivable:
//
//   - software fault isolation: graft code is compiled to a small
//     register IR, rewritten so every load/store is masked into the
//     graft's segment and every indirect call is checked against a hash
//     table of valid targets, then signed; the kernel loader accepts
//     only rewritten, signed images (package internal/sfi);
//   - lightweight transactions: every graft invocation runs inside a
//     nested transaction with two-phase locking and an in-memory undo
//     call stack, so the kernel can spontaneously abort a graft that
//     hoards time-constrained resources (lock time-outs), exceeds
//     quantity-constrained limits (per-graft resource accounts), or
//     simply never returns (forward-progress watchdog). An aborted
//     graft's state changes are undone and the graft is forcibly
//     removed (packages internal/txn, internal/lock,
//     internal/resource, internal/graft).
//
// Beneath the grafting machinery sits a simulated kernel: a virtual
// clock, a preemptible coroutine scheduler, a latency-modelled disk and
// file system with a graftable read-ahead policy, a paged VM system
// with two-level (graftable) eviction, and a small network stack whose
// connection events drive event grafts (packages internal/simclock,
// internal/sched, internal/fs, internal/vmm, internal/netstk).
//
// A third mechanism exercises the first two: a deterministic
// fault-injection plane (package internal/fault, surfaced as FaultPlan
// and RunChaos) that schedules disk errors, latency spikes, frame
// pressure, connection churn, and a library of misbehaving grafts from
// a single seed, so "the kernel survives misbehavior" is a replayable,
// byte-identical-trace property rather than an anecdote.
//
// # Quick start
//
//	k := vino.New(vino.WithTrace(1024))
//	fsys := vino.NewFS(k, vino.NewDisk(vino.FujitsuDisk()), 4096)
//	fsys.Create("db", 12<<20, 100, false)
//	k.SpawnProcess("app", 100, func(p *vino.Process) {
//		of, _ := fsys.Open(p.Thread, "db")
//		_, _ = p.BuildAndInstall(of.RAPoint().Name, graftSource, vino.InstallOptions{})
//		// ... reads now consult the graft for prefetch decisions.
//	})
//	_ = k.Run()
//
// To build images out-of-process, use the toolchain:
//
//	tc := vino.ToolchainFor(k)
//	img, err := tc.Build(graftSource, vino.BuildOptions{Optimize: true})
//
// To shake the kernel under deterministic faults:
//
//	report, err := vino.RunChaos(vino.ChaosConfig{Seed: 7})
//	fmt.Println(report.Summary()) // report.Survived() is the verdict
//
// See examples/ for complete programs and internal/harness for the code
// that regenerates every table in the paper's evaluation.
package vino

import (
	"vino/internal/fs"
	"vino/internal/graft"
	"vino/internal/harness"
	"vino/internal/kernel"
	"vino/internal/netstk"
	"vino/internal/sfi"
	"vino/internal/trace"
	"vino/internal/vmm"
)

// Kernel is the simulated VINO kernel: clock, scheduler, lock manager,
// transaction manager, and graft registry.
type Kernel = kernel.Kernel

// Config parameterises a kernel.
type Config = kernel.Config

// Process is a user-level process with an identity and resource limits.
type Process = kernel.Process

// NewKernel builds a kernel from an explicit Config.
//
// Deprecated: use New with functional options (WithTrace, WithSeed,
// WithFaultPlan, ...). NewKernel remains for callers that already hold
// a Config value.
func NewKernel(cfg Config) *Kernel { return kernel.New(cfg) }

// UID identifies a user; Root may graft global policy points.
type UID = graft.UID

// Root is the privileged user.
const Root = graft.Root

// InstallOptions controls graft resource binding and event ordering.
type InstallOptions = graft.InstallOptions

// GraftPoint is a named extension point in the kernel.
type GraftPoint = graft.Point

// Installed is a loaded graft.
type Installed = graft.Installed

// FS is the simulated file system with the graftable compute-ra policy.
type FS = fs.FS

// OpenFile is an open file whose read-ahead policy can be grafted.
type OpenFile = fs.OpenFile

// Disk is the latency-modelled disk.
type Disk = fs.Disk

// BlockSize is the file system block size (4 KB).
const BlockSize = fs.BlockSize

// NewFS creates a file system.
func NewFS(k *Kernel, d *Disk, cacheBlocks int) *FS { return fs.New(k, d, cacheBlocks) }

// NewDisk creates a disk with the given parameters.
func NewDisk(p fs.DiskParams) *Disk { return fs.NewDisk(p) }

// FujitsuDisk returns the paper's disk model (Fujitsu M2694ESA).
func FujitsuDisk() fs.DiskParams { return fs.FujitsuM2694ESA() }

// VMM is the paged virtual memory system with graftable eviction.
type VMM = vmm.VMM

// VAS is a virtual address space.
type VAS = vmm.VAS

// PageSize is the VM page size (4 KB).
const PageSize = vmm.PageSize

// NewVMM creates a VM system with the given number of physical frames.
func NewVMM(k *Kernel, frames int) *VMM { return vmm.New(k, frames) }

// Net is the simulated network stack driving event grafts.
type Net = netstk.Net

// NewNet creates a network stack.
func NewNet(k *Kernel) *Net { return netstk.New(k) }

// Image is a compiled graft.
type Image = sfi.Image

// BuildSafeGraft runs the full trusted toolchain (assemble, verify,
// SFI-rewrite, re-verify, sign) on GIR assembly source. Images built
// with the kernel's Signer are loadable.
//
// Deprecated: use Toolchain.Build, which also exposes the optimizer
// and unsafe builds behind one option struct.
func BuildSafeGraft(src string, signer *sfi.Signer) (*Image, error) {
	return Toolchain{Signer: signer}.Build(src, BuildOptions{})
}

// BuildOptimizedGraft is BuildSafeGraft with static discharge enabled:
// provably in-segment accesses carry no run-time sandbox checks (the
// optimizer the paper's §4.4 asks for), re-proven by the loader's
// verifier.
//
// Deprecated: use Toolchain.Build with BuildOptions{Optimize: true}.
func BuildOptimizedGraft(src string, signer *sfi.Signer) (*Image, error) {
	return Toolchain{Signer: signer}.Build(src, BuildOptions{Optimize: true})
}

// TraceBuffer is the kernel's flight recorder (Kernel.Trace).
type TraceBuffer = trace.Buffer

// TraceEvent is one recorded kernel event.
type TraceEvent = trace.Event

// Harness re-exports: the experiment tables of the paper's §4.
type (
	// Table is a reproduced overhead table (Tables 3–6).
	Table = harness.Table
	// AbortTable is the reproduced Table 7.
	AbortTable = harness.AbortTable
)

// The experiment builders, one per paper table.
var (
	ReadAheadTable    = harness.ReadAheadTable
	PageEvictionTable = harness.PageEvictionTable
	SchedulingTable   = harness.SchedulingTable
	EncryptionTable   = harness.EncryptionTable
	GraftAbortTable   = harness.BuildAbortTable
)
