module vino

go 1.22
