package vino_test

// Full-system integration: one kernel, four concurrent processes mixing
// well-behaved grafts (read-ahead, HTTP service, page eviction) with a
// rogue repeatedly installing misbehaving ones. The kernel must survive
// everything, keep serving, and keep its books balanced — the paper's
// thesis exercised end-to-end.

import (
	"strings"
	"testing"
	"time"

	vfs "vino/internal/fs"
	"vino/internal/graft"
	"vino/internal/kernel"
	"vino/internal/netstk"
	"vino/internal/resource"
	"vino/internal/trace"
	"vino/internal/vmm"
)

func TestFullSystemSurvivesMixedWorkload(t *testing.T) {
	// A deep flight recorder: hundreds of evictions would otherwise
	// push the graft lifecycle events out of the default 256-event ring.
	k := kernel.New(kernel.Config{TraceDepth: 8192})
	fsys := vfs.New(k, vfs.NewDisk(vfs.FujitsuM2694ESA()), 2048)
	v := vmm.New(k, 200) // fewer frames than the 256-page mapping: guarantees eviction pressure
	n := netstk.New(k)

	fsys.Create("db", 4<<20, 100, false)
	fsys.Create("shared", 1<<20, 100, true)
	port := n.Listen("tcp", 80)

	var (
		dbReads      int
		webResponses int
		rogueAborts  int
		vmDone       bool
	)

	// Process 1: the database-style reader with an announce-next graft.
	k.SpawnProcess("db", 100, func(p *kernel.Process) {
		of, err := fsys.Open(p.Thread, "db")
		if err != nil {
			t.Errorf("db open: %v", err)
			return
		}
		g, err := p.BuildAndInstall(of.RAPoint().Name, `
.name ra
.import fs.prefetch
.func main
main:
    ld r3, [r10+0]
    ld r4, [r10+8]
    jz r4, done
    ld r1, [r10+16]
    mov r2, r3
    mov r3, r4
    callk fs.prefetch
done:
    ret
`, graft.InstallOptions{})
		if err != nil {
			t.Errorf("db graft: %v", err)
			return
		}
		heap := g.VM().Heap()
		poke := func(off int, val int64) {
			for i := 0; i < 8; i++ {
				heap[off+i] = byte(uint64(val) >> (8 * i))
			}
		}
		poke(16, int64(of.FD()))
		buf := make([]byte, vfs.BlockSize)
		state := int64(7)
		nBlocks := of.File().Blocks()
		next := func() int64 {
			state = (state*1103515245 + 12345) & 0x7FFFFFFF
			return state % nBlocks
		}
		cur := next()
		for i := 0; i < 40; i++ {
			nb := next()
			poke(0, nb*vfs.BlockSize)
			poke(8, vfs.BlockSize)
			if _, err := of.ReadAt(p.Thread, buf, cur*vfs.BlockSize); err != nil {
				t.Errorf("db read: %v", err)
				return
			}
			dbReads++
			cur = nb
			p.Thread.Charge(200 * time.Microsecond)
		}
	})

	// Process 2: the in-kernel web server plus its own client traffic.
	k.SpawnProcess("web", 101, func(p *kernel.Process) {
		if _, err := p.BuildAndInstall(port.Point().Name, `
.name www
.import net.read
.import net.write
.import net.close
.data "HTTP/1.0 200 OK\r\n\r\nok"
.func main
main:
    mov r6, r1
    addi r2, r10, 256
    movi r3, 128
    callk net.read
    mov r1, r6
    mov r2, r10
    movi r3, 21
    callk net.write
    mov r1, r6
    callk net.close
    ret
`, graft.InstallOptions{Transfer: map[resource.Kind]int64{resource.Memory: 8 << 10}}); err != nil {
			t.Errorf("web graft: %v", err)
			return
		}
		for i := 0; i < 10; i++ {
			conn, err := n.Connect(k.Sched, "tcp", 80, []byte("GET / HTTP/1.0\r\n\r\n"))
			if err != nil {
				t.Errorf("connect: %v", err)
				return
			}
			for j := 0; j < 30 && !conn.Closed(); j++ {
				p.Thread.Yield()
			}
			if strings.HasPrefix(string(conn.Response()), "HTTP/1.0 200") {
				webResponses++
			}
			p.Thread.Sleep(3 * time.Millisecond)
		}
	})

	// Process 3: a memory-pressure app with a file-backed mapping and an
	// eviction graft protecting its hot pages.
	k.SpawnProcess("vm", 102, func(p *kernel.Process) {
		of, err := fsys.Open(p.Thread, "shared")
		if err != nil {
			t.Errorf("vm open: %v", err)
			return
		}
		vas := v.NewVAS(p.Thread)
		if err := vas.Map(0, of.File().Blocks(), of.Pager()); err != nil {
			t.Errorf("map: %v", err)
			return
		}
		for round := 0; round < 3; round++ {
			for i := int64(0); i < of.File().Blocks(); i++ {
				vas.Touch(p.Thread, i)
			}
		}
		vmDone = true
	})

	// Process 4: the rogue. Installs a different misbehaving graft on
	// its own file every round; every one must be contained.
	k.SpawnProcess("rogue", 103, func(p *kernel.Process) {
		fsys.Create("rogue-file", 1<<20, 103, false)
		of, err := fsys.Open(p.Thread, "rogue-file")
		if err != nil {
			t.Errorf("rogue open: %v", err)
			return
		}
		of.RAPoint().Watchdog = 30 * time.Millisecond
		rogues := []struct {
			src string
			// aborted: the graft fails and is removed. A contained wild
			// store is NOT a failure — SFI masks it into the graft's own
			// segment and the invocation commits harmlessly.
			aborted bool
		}{
			{".name spin\n.func main\nmain:\n jmp main\n", true},
			{".name trap\n.func main\nmain:\n movi r9, 0\n div r0, r0, r9\n ret\n", true},
			{".name wild\n.func main\nmain:\n movi r1, -99999\n st [r1+0], r1\n movi r0, 0\n ret\n", false},
			{".name greedy\n.import vino.kheap_alloc\n.func main\nmain:\n movi r1, 8192\nloop:\n callk vino.kheap_alloc\n jmp loop\n", true},
		}
		buf := make([]byte, 128)
		for _, r := range rogues {
			g, err := p.BuildAndInstall(of.RAPoint().Name, r.src, graft.InstallOptions{})
			if err != nil {
				t.Errorf("rogue install: %v", err)
				return
			}
			kmem := g.VM().KernelMemory()
			for i := range kmem {
				kmem[i] = 0x99
			}
			if _, err := of.ReadAt(p.Thread, buf, 0); err != nil {
				t.Errorf("rogue read: %v", err)
				return
			}
			for i, b := range kmem {
				if b != 0x99 {
					t.Errorf("rogue %q touched kernel memory at %d", r.src[:12], i)
					return
				}
			}
			if g.Removed() != r.aborted {
				t.Errorf("rogue graft %q: removed=%v, want %v", r.src[:12], g.Removed(), r.aborted)
				return
			}
			if !r.aborted {
				k.Grafts.Remove(g) // make room for the next rogue
			}
			rogueAborts++
		}
	})

	if err := k.Run(); err != nil {
		t.Fatalf("kernel run: %v", err)
	}

	if dbReads != 40 {
		t.Errorf("db finished %d/40 reads", dbReads)
	}
	if webResponses != 10 {
		t.Errorf("web served %d/10 responses", webResponses)
	}
	if !vmDone {
		t.Error("vm process did not finish")
	}
	if rogueAborts != 4 {
		t.Errorf("rogue containment: %d/4", rogueAborts)
	}
	// Books balanced: every transaction begun was committed or aborted,
	// every lock acquisition matched by a release.
	ts := k.Txns.Stats()
	if ts.Begins != ts.Commits+ts.Aborts {
		t.Errorf("transactions leaked: %d begun, %d committed, %d aborted", ts.Begins, ts.Commits, ts.Aborts)
	}
	ls := k.Locks.Stats()
	if ls.Releases != ls.Acquisitions {
		t.Errorf("locks leaked: %d acquired, %d released", ls.Acquisitions, ls.Releases)
	}
	// The kernel's frame pool is consistent.
	if v.FreeFrames() < 0 || v.FreeFrames() > 200 {
		t.Errorf("frame pool corrupt: %d free", v.FreeFrames())
	}
	// The flight recorder saw the rogue's aborts and removals.
	if len(k.Trace.Filter(trace.GraftAbort)) < 3 {
		t.Errorf("trace recorded %d graft aborts, want >= 3", len(k.Trace.Filter(trace.GraftAbort)))
	}
	if len(k.Trace.Filter(trace.GraftInstall)) < 6 {
		t.Errorf("trace recorded %d installs", len(k.Trace.Filter(trace.GraftInstall)))
	}
	if len(k.Trace.Filter(trace.Eviction)) == 0 {
		t.Error("trace recorded no evictions despite memory pressure")
	}
	if t.Failed() {
		for _, l := range k.Log() {
			t.Log(l)
		}
	}
}

// TestFullSystemDeterminism: two identical runs of a mixed workload
// produce identical virtual end times and statistics — the property
// that makes every experiment in this repository reproducible.
func TestFullSystemDeterminism(t *testing.T) {
	run := func() (time.Duration, int64, int64) {
		k := kernel.New(kernel.Config{})
		fsys := vfs.New(k, vfs.NewDisk(vfs.FujitsuM2694ESA()), 512)
		fsys.Create("f", 2<<20, 1, true)
		for pi := 0; pi < 3; pi++ {
			k.SpawnProcess("p", graft.UID(pi+1), func(p *kernel.Process) {
				of, err := fsys.Open(p.Thread, "f")
				if err != nil {
					t.Error(err)
					return
				}
				buf := make([]byte, 256)
				for i := int64(0); i < 30; i++ {
					off := (i*37 + int64(p.UID)*11) % (of.File().Blocks() - 1) * vfs.BlockSize
					if _, err := of.ReadAt(p.Thread, buf, off); err != nil {
						t.Error(err)
						return
					}
					p.Thread.Charge(100 * time.Microsecond)
				}
			})
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		st := fsys.Stats()
		return k.Clock.Now(), st.CacheHits, st.SyncStalls
	}
	t1, h1, s1 := run()
	t2, h2, s2 := run()
	if t1 != t2 || h1 != h2 || s1 != s2 {
		t.Fatalf("non-deterministic: (%v,%d,%d) vs (%v,%d,%d)", t1, h1, s1, t2, h2, s2)
	}
}
