package vino

import (
	"time"

	"vino/internal/campaign"
	"vino/internal/crash"
	"vino/internal/fault"
	"vino/internal/fleet"
	"vino/internal/graft"
	"vino/internal/guard"
	"vino/internal/harness"
	"vino/internal/kernel"
	"vino/internal/lock"
	"vino/internal/netstk"
	"vino/internal/redteam"
	"vino/internal/resource"
	"vino/internal/sched"
	"vino/internal/sfi"
	"vino/internal/tenant"
	"vino/internal/trace"
	"vino/internal/txn"
)

// -----------------------------------------------------------------------------
// Kernel construction: functional options.
//
// New is the front door. Options translate into kernel.Config fields, so
// the zero-option call is equivalent to NewKernel(Config{}):
//
//	k := vino.New(
//		vino.WithTrace(4096),
//		vino.WithSeed(7),
//		vino.WithFaultPlan(vino.NewFaultPlan(7, nil, 3)),
//	)
// -----------------------------------------------------------------------------

// Option configures a kernel built by New.
type Option func(*Config)

// New builds a kernel from functional options.
func New(opts ...Option) *Kernel {
	var cfg Config
	for _, o := range opts {
		o(&cfg)
	}
	return kernel.New(cfg)
}

// WithTrace sizes the kernel flight recorder to the given capacity
// (events retained; Total keeps counting past it).
func WithTrace(capacity int) Option {
	return func(c *Config) { c.TraceDepth = capacity }
}

// WithFaultPlan arms the deterministic fault-injection plane with the
// given plan. A nil plan leaves every hook inert.
func WithFaultPlan(plan *FaultPlan) Option {
	return func(c *Config) { c.FaultPlan = plan }
}

// WithSeed sets the kernel's deterministic seed, consulted by
// subsystems that make pseudo-random decisions.
func WithSeed(n int64) Option {
	return func(c *Config) { c.Seed = n }
}

// WithTimeslice overrides the 10 ms scheduling quantum.
func WithTimeslice(d time.Duration) Option {
	return func(c *Config) { c.Timeslice = d }
}

// WithSignKey sets the trust-root key shared between the kernel loader
// and the graft toolchain.
func WithSignKey(key []byte) Option {
	return func(c *Config) { c.SignKey = append([]byte(nil), key...) }
}

// WithUnsafeGrafts permits Root to install unrewritten images — for
// measurement harnesses and misbehavior demos only.
func WithUnsafeGrafts() Option {
	return func(c *Config) { c.UnsafeGrafts = true }
}

// WithCPUs sets the number of simulated CPUs (default 1). Each CPU gets
// its own run queue with a deterministic load balancer; equal seeds at
// equal CPU counts produce byte-identical traces, and one CPU is
// byte-identical to the classic single-queue kernel.
func WithCPUs(n int) Option {
	return func(c *Config) { c.NumCPUs = n }
}

// WithGuardPolicy arms the graft supervisor: every graft dispatch is
// gated through a per-graft health ledger, and repeat offenders are
// quarantined (invocations short-circuit to the base path), reinstated
// on probation after an exponential virtual-time backoff, and expelled
// permanently on relapse. Zero policy fields take DefaultGuardPolicy
// values. Kernels built without this option keep the classic
// remove-on-first-abort behaviour. Inspect the ledger with
// Kernel.Guard.Report().
func WithGuardPolicy(p GuardPolicy) Option {
	return func(c *Config) { c.GuardPolicy = &p }
}

// WithTenants arms the multi-tenant layer: the kernel carries a tenant
// registry (Kernel.Tenants) binding graft installs to tenant
// identities, each with its own resource account — swapped in on
// dispatch, so one tenant exhausting sockets or kernel heap cannot
// starve another — and an escalation ladder of its own: a tenant whose
// grafts keep getting expelled is throttled, then banned. Zero policy
// fields take the defaults (throttle on the first expulsion, ban on
// the second).
func WithTenants(p TenantPolicy) Option {
	return func(c *Config) { c.TenantPolicy = &p }
}

// WithCheckpoints arms kernel-panic containment: the kernel checkpoints
// its state (grafts, transactions, locks, resource accounts, file
// system, frame tables) every `every` of virtual time at quiescent
// points, and Kernel.RunRecovered contains classified kernel panics by
// restoring the last checkpoint and resuming at its time frontier.
// Zero (the default) disables checkpointing entirely and keeps the
// classic run path byte-identical.
func WithCheckpoints(every time.Duration) Option {
	return func(c *Config) { c.CheckpointEvery = every }
}

// WithCheckpointRing keeps a ring of the n most recent checkpoints
// instead of only the latest (default 1). Recovery from a panic whose
// corruption predates the newest checkpoint (KernelPanic.TaintedAt)
// rolls back to the newest checkpoint taken before the taint; ring
// eviction folds the oldest delta into the base, so memory stays
// bounded by n plus the delta chain.
func WithCheckpointRing(n int) Option {
	return func(c *Config) { c.CheckpointRing = n }
}

// WithFullCopyCheckpoints disables incremental (copy-on-write delta)
// capture and deep-copies the whole kernel state at every checkpoint,
// the pre-delta behaviour. Capture cost becomes O(kernel state) rather
// than O(state dirtied since the last checkpoint); traces and recovery
// results are byte-identical between the two modes. Useful as an A/B
// baseline for the checkpoint-cost sweep and for distrusting the dirty
// tracking.
func WithFullCopyCheckpoints() Option {
	return func(c *Config) { c.CheckpointFullCopy = true }
}

// Recovery scopes for WithRecoverScope.
const (
	RecoverScopeKernel = kernel.RecoverScopeKernel
	RecoverScopeGraft  = kernel.RecoverScopeGraft
)

// WithRecoverScope selects how much state a contained panic rolls back.
// RecoverScopeKernel (the default) restores the whole kernel image from
// the last good checkpoint. RecoverScopeGraft restores only the
// offending graft's rollback domain — its transaction undo stacks, held
// locks, and owner-stamped file blocks and frame-table pages — leaving
// other grafts' in-flight work live; when the crash entangles state
// outside that domain (cross-graft lock holds, writes to shared file
// blocks, evidence of pre-checkpoint corruption) recovery widens to the
// whole-kernel restore and traces the decision as TraceRecoveryWidened.
// Crash-free runs are byte-identical under either scope.
func WithRecoverScope(scope string) Option {
	return func(c *Config) { c.RecoverScope = scope }
}

// WithCheckpointDir persists the checkpoint ring to dir: every
// checkpoint writes a gob manifest (cp-<seq>.gob) of the snapshot set's
// exportable state, compacted on an exponential-age schedule so old
// images thin out while recent ones stay dense. A later process can
// rebuild the durable state with Kernel.RestoreFromDisk.
func WithCheckpointDir(dir string) Option {
	return func(c *Config) { c.CheckpointDir = dir }
}

// WithoutTranslation forces every graft onto the interpreting VM
// engine. By default the loader compiles verified images to native Go
// closures at install time (the sandbox checks are inlined into the
// closure bodies and still trap identically); the interpreter remains
// the deterministic oracle, and this option selects it outright —
// useful for differential debugging and oracle-vs-translated A/B runs.
// Same seeds produce byte-identical traces either way.
func WithoutTranslation() Option {
	return func(c *Config) { c.NoTranslate = true }
}

// -----------------------------------------------------------------------------
// Toolchain: the trusted graft build pipeline as a value.
// -----------------------------------------------------------------------------

// Signer holds the shared-secret trust root used to sign and verify
// graft images. A kernel's loader accepts only images signed by its own
// Signer (Kernel.Signer).
type Signer = sfi.Signer

// NewSigner derives a signer from a key.
func NewSigner(key []byte) *Signer { return sfi.NewSigner(key) }

// BuildOptions selects toolchain stages for one Build call.
type BuildOptions struct {
	// Optimize enables static discharge of sandbox checks: accesses the
	// rewriter can prove in-segment carry no run-time masking (§4.4).
	// The loader's verifier re-proves every discharged check.
	Optimize bool
	// Compartments splits the graft's memory view into typed regions
	// (private heap, stack, read-only kernel exports, grant-only shared
	// buffers) and lowers every access to a trapping bounds+permission
	// check instead of the flat sandbox mask. Sources without a .layout
	// directive get the default 64 KiB layout. Composes with Optimize:
	// discharged accesses are proven against their region, never across
	// a boundary.
	Compartments bool
	// Signer overrides the Toolchain's signer for this build.
	Signer *Signer
	// Unsafe skips rewriting and signing entirely, producing an image
	// only kernels with UnsafeGrafts (or a raw GraftVM) will accept.
	// Used to demonstrate what SFI prevents.
	Unsafe bool
}

// Toolchain is the trusted graft build pipeline: assemble, verify,
// SFI-rewrite, re-verify, sign. The zero value builds unsigned images;
// bind it to a kernel with Toolchain{Signer: k.Signer}.
type Toolchain struct {
	// Signer signs produced images. Build fails if neither this nor
	// BuildOptions.Signer is set (except for Unsafe builds).
	Signer *Signer
}

// ToolchainFor returns a toolchain whose images the given kernel's
// loader accepts.
func ToolchainFor(k *Kernel) Toolchain { return Toolchain{Signer: k.Signer} }

// Build compiles GIR assembly source through the toolchain.
func (tc Toolchain) Build(src string, opts BuildOptions) (*Image, error) {
	if opts.Unsafe {
		return sfi.BuildUnsafe(src)
	}
	signer := opts.Signer
	if signer == nil {
		signer = tc.Signer
	}
	if opts.Compartments {
		if opts.Optimize {
			img, _, err := sfi.BuildCompartmentedOptimized(src, signer)
			return img, err
		}
		img, _, err := sfi.BuildCompartmented(src, signer)
		return img, err
	}
	if opts.Optimize {
		img, _, err := sfi.BuildSafeOptimized(src, signer)
		return img, err
	}
	img, _, err := sfi.BuildSafe(src, signer)
	return img, err
}

// CompartmentLayout describes a compartmented image's typed memory
// regions (Image.Layout).
type CompartmentLayout = sfi.Layout

// CompartmentRegion is one typed region of a compartment layout.
type CompartmentRegion = sfi.Region

// RegionPerm is a region permission mask (read/write bits).
type RegionPerm = sfi.Perm

// DefaultCompartmentLayout returns the stock layout for the given
// segment size: 5/8 private heap, then one-eighth each of grant-only
// shared buffers, read-only kernel exports, and stack.
func DefaultCompartmentLayout(segSize int) *CompartmentLayout { return sfi.DefaultLayout(segSize) }

// GraftVM is the sandboxed interpreter a graft image runs on. Exposed
// so demos can run an Unsafe image outside any kernel and observe the
// damage SFI would have prevented.
type GraftVM = sfi.VM

// TranslatedProgram is a verified graft image compiled to native Go
// closures (the install-time translation engine). Programs are image
// constants: one program serves every VM of the same image bytes.
type TranslatedProgram = sfi.Program

// TranslateImage compiles a verified image to a TranslatedProgram. The
// loader does this automatically at install time; the explicit form
// exists for demos and for pairing with NewGraftVM via sfi.Config.
func TranslateImage(img *Image) (*TranslatedProgram, error) { return sfi.Translate(img) }

// NewGraftVM instantiates a VM over an image with default segment
// sizes and cost model.
func NewGraftVM(img *Image) (*GraftVM, error) { return sfi.NewVM(img, sfi.Config{}) }

// Instruction is one decoded GIR instruction (Image.Code element).
type Instruction = sfi.Instr

// -----------------------------------------------------------------------------
// Graft model re-exports.
// -----------------------------------------------------------------------------

// Ctx is the kernel-side context passed to graft-callable functions.
type Ctx = graft.Ctx

// Thread is a simulated kernel thread.
type Thread = sched.Thread

// Point kinds.
const (
	// Function points replace one member function; at most one graft.
	Function = graft.Function
	// Event points accumulate ordered handlers fired on a trigger.
	Event = graft.Event
)

// Point privileges.
const (
	// Local points affect only consenting applications.
	Local = graft.Local
	// Global points change whole-system policy; Root only.
	Global = graft.Global
	// Restricted points may never be grafted.
	Restricted = graft.Restricted
)

// Loader and registry error sentinels (errors.Is-able through wrapped
// install errors).
var (
	ErrUnsigned        = graft.ErrUnsigned
	ErrNotSafe         = graft.ErrNotSafe
	ErrRestrictedPoint = graft.ErrRestrictedPoint
	ErrPrivilege       = graft.ErrPrivilege
	ErrUnknownPoint    = graft.ErrUnknownPoint
	ErrNotCallable     = graft.ErrNotCallable
	ErrOccupied        = graft.ErrOccupied
	ErrWatchdog        = graft.ErrWatchdog
	ErrExpelled        = graft.ErrExpelled
)

// -----------------------------------------------------------------------------
// Graft supervisor re-exports.
// -----------------------------------------------------------------------------

// GuardPolicy is the supervisor's escalation knob set (streak and rate
// thresholds, backoff schedule, probation terms). Zero fields take the
// DefaultGuardPolicy values.
type GuardPolicy = guard.Policy

// DefaultGuardPolicy returns the stock escalation policy.
func DefaultGuardPolicy() GuardPolicy { return guard.DefaultPolicy() }

// GuardSupervisor owns the per-graft health ledger (Kernel.Guard when
// the kernel was built WithGuardPolicy).
type GuardSupervisor = guard.Supervisor

// GuardReport is a ledger snapshot; Table() renders the health table.
type GuardReport = guard.Report

// GraftHealth is one health-ledger row.
type GraftHealth = guard.GraftHealth

// GuardState is a graft's position on the escalation ladder.
type GuardState = guard.State

// Guard states.
const (
	GuardHealthy     = guard.Healthy
	GuardSuspect     = guard.Suspect
	GuardQuarantined = guard.Quarantined
	GuardProbation   = guard.Probation
	GuardExpelled    = guard.Expelled
)

// AbortCause buckets a transaction abort by the survival mechanism that
// triggered it; the health ledger accounts per cause.
type AbortCause = txn.AbortCause

// Abort causes.
const (
	CauseOther         = txn.CauseOther
	CauseWatchdog      = txn.CauseWatchdog
	CauseLockTimeout   = txn.CauseLockTimeout
	CauseResourceLimit = txn.CauseResourceLimit
	CauseSFITrap       = txn.CauseSFITrap
	CauseUndo          = txn.CauseUndo
	// CauseCrash is an abort charged to a graft whose dispatch was
	// active when a contained kernel panic struck; recovery feeds it
	// into the health ledger so repeat offenders still escalate.
	CauseCrash = txn.CauseCrash
)

// -----------------------------------------------------------------------------
// Kernel-panic containment re-exports.
// -----------------------------------------------------------------------------

// CrashClass buckets a contained kernel panic by what went wrong.
type CrashClass = crash.Class

// Panic classes.
const (
	CrashUndoEscape        = crash.UndoEscape
	CrashCommitCorruption  = crash.CommitCorruption
	CrashAbortCorruption   = crash.AbortCorruption
	CrashSFIBreach         = crash.SFIBreach
	CrashLockInvariant     = crash.LockInvariant
	CrashResourceInvariant = crash.ResourceInvariant
	CrashStall             = crash.Stall
)

// CrashClasses returns every panic class in canonical order.
func CrashClasses() []CrashClass { return crash.Classes() }

// CrashSite names a code location where a plan's panic rule can strike
// (`site=commit` in the plan text form).
type CrashSite = crash.Site

// Crash sites.
const (
	CrashSiteDispatch = crash.SiteDispatch
	CrashSiteCommit   = crash.SiteCommit
	CrashSiteAbort    = crash.SiteAbort
	CrashSiteUndo     = crash.SiteUndo
	CrashSiteLock     = crash.SiteLock
	CrashSiteResource = crash.SiteResource
	CrashSitePager    = crash.SitePager
	CrashSiteAccept   = crash.SiteAccept
)

// CrashSites returns every crash site in canonical order.
func CrashSites() []CrashSite { return crash.Sites() }

// KernelPanic is a classified kernel panic: the typed error that
// Kernel.Run returns when a crash escapes containment (match with
// errors.As) and that RunRecovered contains.
type KernelPanic = crash.Panic

// CrashManager owns the checkpoint store (Kernel.Crash on kernels built
// WithCheckpoints; nil otherwise).
type CrashManager = crash.Manager

// CrashStats counts checkpoints, contained panics and recoveries.
type CrashStats = crash.Stats

// -----------------------------------------------------------------------------
// Lock and resource re-exports.
// -----------------------------------------------------------------------------

// Lock is one two-phase lock managed by Kernel.Locks.
type Lock = lock.Lock

// LockClass groups locks sharing a contention time-out.
type LockClass = lock.Class

// LockMode is Shared or Exclusive.
type LockMode = lock.Mode

// Lock modes.
const (
	Shared    = lock.Shared
	Exclusive = lock.Exclusive
)

// LockTimeoutError is returned (via panic/abort unwinding) when a
// lock's class time-out expires; match with errors.As.
type LockTimeoutError = lock.TimeoutError

// ResourceKind names a quantity-constrained resource.
type ResourceKind = resource.Kind

// Resource kinds.
const (
	ResMemory      = resource.Memory
	ResWiredMemory = resource.WiredMemory
	ResKernelHeap  = resource.KernelHeap
	ResThreads     = resource.Threads
	ResSockets     = resource.Sockets
	ResDiskBuffers = resource.DiskBuffers
)

// Conn is a simulated network connection (see Net).
type Conn = netstk.Conn

// Port is a listening endpoint whose Point() drives event grafts.
type Port = netstk.Port

// -----------------------------------------------------------------------------
// Trace query surface.
// -----------------------------------------------------------------------------

// TraceKind classifies flight-recorder events.
type TraceKind = trace.Kind

// Flight-recorder event kinds. Query with Kernel.Trace.Filter(kind);
// render with Dump; count lifetime emissions with Total.
const (
	TraceGraftInstall  = trace.GraftInstall
	TraceGraftReject   = trace.GraftReject
	TraceGraftCommit   = trace.GraftCommit
	TraceGraftAbort    = trace.GraftAbort
	TraceGraftRemove   = trace.GraftRemove
	TraceWatchdogFire  = trace.WatchdogFire
	TraceLockTimeout   = trace.LockTimeout
	TraceEviction      = trace.Eviction
	TraceGraftOverrule = trace.GraftOverrule
	TraceFaultInject   = trace.FaultInject
	// Supervisor lifecycle kinds (emitted only on guarded kernels).
	TraceGraftQuarantine = trace.GraftQuarantine
	TraceGraftProbation  = trace.GraftProbation
	TraceGraftExpel      = trace.GraftExpel
	// Crash-containment kinds (emitted only on checkpointing kernels)
	// and the lock manager's deadlock forensics event.
	TraceKernelPanic = trace.KernelPanic
	TraceCheckpoint  = trace.Checkpoint
	TraceRecovery    = trace.Recovery
	TraceDeadlock    = trace.Deadlock
	// Domain-scoped recovery kinds (emitted only under
	// WithRecoverScope(RecoverScopeGraft)).
	TraceDomainCheckpoint = trace.DomainCheckpoint
	TraceDomainRestore    = trace.DomainRestore
	TraceRecoveryWidened  = trace.RecoveryWidened
)

// -----------------------------------------------------------------------------
// Fault injection and chaos testing.
// -----------------------------------------------------------------------------

// FaultClass names one category of injectable fault.
type FaultClass = fault.Class

// Fault classes.
const (
	FaultDisk     = fault.Disk
	FaultLatency  = fault.Latency
	FaultPressure = fault.Pressure
	FaultNet      = fault.Net
	FaultGraft    = fault.Graft
	FaultLock     = fault.Lock
)

// FaultPanic is the crash class: rules that inject a classified kernel
// panic at a crash site (`site=` in the plan form). Fires only while
// the injector's crash gate is armed.
const FaultPanic = fault.Panic

// FaultNetIO is the extended-surface class: mid-stream read/write
// failures on established connections. It is not in FaultClasses();
// select it explicitly or via FaultExtendedClasses.
const FaultNetIO = fault.NetIO

// FaultClasses returns every classic class, in canonical order. The set
// is frozen; new classes join FaultExtendedClasses instead.
func FaultClasses() []FaultClass { return fault.Classes() }

// FaultExtendedClasses returns the classic classes plus the extended
// surface (netio).
func FaultExtendedClasses() []FaultClass { return fault.ExtendedClasses() }

// ParseFaultClasses parses a comma-separated class list ("disk,graft");
// empty input selects all classic classes.
func ParseFaultClasses(s string) ([]FaultClass, error) { return fault.ParseClasses(s) }

// FaultRule schedules one injection.
type FaultRule = fault.Rule

// FaultPlan is a seed-derived injection schedule. Pass it to a kernel
// with WithFaultPlan; the same plan on the same workload reproduces an
// identical trace sequence.
type FaultPlan = fault.Plan

// NewFaultPlan derives a plan from a seed: rulesPerClass rules for each
// requested class (nil classes = all). Equal arguments yield equal
// plans.
func NewFaultPlan(seed int64, classes []FaultClass, rulesPerClass int) *FaultPlan {
	return fault.NewPlan(seed, classes, rulesPerClass)
}

// DecodeFaultPlan parses the textual plan form produced by
// FaultPlan.Encode — the interchange format behind `vinosim -faultfile`,
// letting a reproducer be saved, hand-edited (e.g. minimised) and
// replayed.
func DecodeFaultPlan(s string) (*FaultPlan, error) { return fault.Decode(s) }

// FaultInjector interprets a plan at run time (Kernel.Faults). All
// methods are nil-safe; Disarm/Rearm gate injection without discarding
// schedule state.
type FaultInjector = fault.Injector

// ErrFaultInjected is the sentinel wrapped by every injected I/O error,
// distinguishing deliberate faults from real bugs via errors.Is.
var ErrFaultInjected = fault.ErrInjected

// Misbehaving-graft library keys, usable with FaultGraftSource.
const (
	FaultGraftLoop      = fault.GraftLoop
	FaultGraftWildStore = fault.GraftWildStore
	FaultGraftHoard     = fault.GraftHoard
	FaultGraftBlowout   = fault.GraftBlowout
	FaultGraftAbortUndo = fault.GraftAbortUndo
	FaultGraftAllocFree = fault.GraftAllocFree
)

// NewCrashRules derives perSite panic rules for every crash site from a
// seed; the chaos harness appends them to its plan when the crash phase
// is requested. Equal arguments yield equal rules.
func NewCrashRules(seed int64, perSite int) []FaultRule { return fault.NewCrashRules(seed, perSite) }

// FaultGraftSource returns the GIR source of a library graft, or ""
// for an unknown key.
func FaultGraftSource(key string) string { return fault.GraftSource(key) }

// -----------------------------------------------------------------------------
// Chaos testing: run, fingerprint, minimize, campaign.
//
// One chaos run (RunChaos) injects a fault plan into a fresh kernel
// and audits the survival invariants. Its report is fingerprinted two
// ways: ChaosFailureSignature identifies a *failure* (empty for
// survivors; what the minimizer preserves), ChaosRunSignature
// fingerprints *every* run's behaviour shape (what campaign coverage
// is keyed on). MinimizeChaos delta-debugs a failing plan to a minimal
// reproducer; RunCampaign evolves whole populations of plans toward
// novel signatures and distills each discovery into a corpus entry.
// -----------------------------------------------------------------------------

// ChaosConfig parameterises a chaos run.
type ChaosConfig = harness.ChaosConfig

// ChaosReport is the outcome of a chaos run; Survived() is the verdict
// and TraceDump the determinism artifact.
type ChaosReport = harness.ChaosReport

// RunChaos builds a fault plan from the config's seed, runs read-ahead,
// page-eviction, network and scheduling workloads on a fresh kernel
// while injecting the plan, audits the survival invariants after every
// abort (no leaked locks, accounts drained, undo stacks unwound, grafts
// removed), then disarms injection and re-runs a clean workload.
func RunChaos(cfg ChaosConfig) (*ChaosReport, error) { return harness.RunChaos(cfg) }

// ChaosFailureSignature reduces a chaos report to its failure identity:
// the "kernel-panic class@site" of a NoRecover run, or the first
// invariant violation with digits normalized. "" means the run
// survived. This is the identity MinimizeChaos preserves while
// deleting rules.
func ChaosFailureSignature(r *ChaosReport) string { return harness.Signature(r) }

// ChaosRunSignature fingerprints a run's behaviour shape — verdict,
// crash sites struck, panic classes contained, with counts and
// virtual-time stamps stripped. Unlike ChaosFailureSignature it is
// never empty: surviving runs with different containment footprints
// fingerprint differently, which is what campaign coverage counts.
func ChaosRunSignature(r *ChaosReport) string { return harness.NormalizedSignature(r) }

// ChaosSignature is the old name for ChaosFailureSignature.
//
// Deprecated: use ChaosFailureSignature.
func ChaosSignature(r *ChaosReport) string { return ChaosFailureSignature(r) }

// MinimizeResult is the outcome of MinimizeChaos: the minimal plan,
// the preserved signature, and the replay counts.
type MinimizeResult = harness.MinimizeResult

// MinimizeChaos delta-debugs a failing chaos config's fault plan,
// deleting every rule whose removal preserves the failure signature.
// The result's plan replays standalone via ChaosConfig.Plan (or a
// faultfile written from its Encode form).
func MinimizeChaos(cfg ChaosConfig) (*MinimizeResult, error) { return harness.Minimize(cfg) }

// MinimizeChaosTo generalises MinimizeChaos to an arbitrary signature
// function: the plan shrinks as far as sigOf's value on the baseline
// run is preserved. Pass ChaosRunSignature to minimize a *surviving*
// run's containment footprint — how the campaign distills its corpus.
func MinimizeChaosTo(cfg ChaosConfig, sigOf func(*ChaosReport) string) (*MinimizeResult, error) {
	return harness.MinimizeTo(cfg, sigOf)
}

// CampaignConfig parameterises a coverage-guided chaos campaign; the
// zero value (plus a Seed) runs the stock 256-run, 8-shard sweep.
type CampaignConfig = campaign.Config

// CampaignReport is a campaign's outcome: the coverage map, the novel
// signatures in discovery order, and the minimized reproducer corpus.
// CoverageDump and WriteCorpus emit the byte-stable determinism
// artifacts.
type CampaignReport = campaign.Report

// CampaignEntry is one corpus reproducer: a minimized plan plus the
// chaos knobs and run signature it reproduces. Its Encode form is a
// valid faultfile (the header rides in comments).
type CampaignEntry = campaign.Entry

// RunCampaign executes a coverage-guided chaos campaign: seeds shard
// across a bounded worker pool of isolated kernels, every run is
// fingerprinted with ChaosRunSignature, plans mutate toward novel
// signatures, and each novel signature's plan is delta-debugged into a
// minimal reproducer. For a fixed (Seed, Shards) the outcome is a pure
// function of the config at any worker count.
func RunCampaign(cfg CampaignConfig) (*CampaignReport, error) { return campaign.Run(cfg) }

// LoadCampaignCorpus reads a WriteCorpus directory back as entries,
// sorted by file name — how CI replays the checked-in reproducers.
func LoadCampaignCorpus(dir string) ([]*CampaignEntry, error) { return campaign.LoadCorpus(dir) }

// -----------------------------------------------------------------------------
// Multi-tenant fleet: tenant isolation, traffic simulation, self-healing.
// -----------------------------------------------------------------------------

// TenantPolicy sets the tenant escalation thresholds and the resource
// grant every tenant account starts with.
type TenantPolicy = tenant.Policy

// DefaultTenantPolicy throttles a tenant on its first graft expulsion
// and bans it on the second.
func DefaultTenantPolicy() TenantPolicy { return tenant.DefaultPolicy() }

// TenantRegistry binds graft installs to tenant identities and walks
// the escalation ladder (Kernel.Tenants when built WithTenants).
type TenantRegistry = tenant.Registry

// Tenant is one extension author: identity, shared resource account,
// standing.
type Tenant = tenant.Tenant

// TenantState is a tenant's standing on the escalation ladder.
type TenantState = tenant.State

// Tenant escalation states.
const (
	TenantActive    = tenant.Active
	TenantThrottled = tenant.Throttled
	TenantBanned    = tenant.Banned
)

// TenantHealth is one row of the per-tenant health table.
type TenantHealth = tenant.Health

// TenantTable renders the per-tenant health table.
func TenantTable(rows []TenantHealth) string { return tenant.Table(rows) }

// FleetConfig parameterises a multi-instance fleet run: a synthetic
// open-loop HTTP-style workload sharded across independent kernel
// instances, each with its own durable checkpoint ring, tenant
// registry and (optionally) crash-fault plan.
type FleetConfig = fleet.Config

// FleetResult is the merged fleet outcome; Summary() renders the
// per-instance and per-tenant tables plus the audit verdict.
type FleetResult = fleet.Result

// FleetInstanceResult is one instance's accounting.
type FleetInstanceResult = fleet.InstanceResult

// RunFleet executes a fleet and merges per-instance results in
// instance order. The report is byte-identical at any worker-pool
// size for a fixed (seed, instances, tenants) configuration.
func RunFleet(cfg FleetConfig) (*FleetResult, error) { return fleet.Run(cfg) }

// DefaultFleetTenantLimits is the per-tenant resource grant a fleet
// run starts from when none is configured.
func DefaultFleetTenantLimits() map[ResourceKind]int64 { return fleet.DefaultTenantLimits() }

// RedTeamConfig parameterises a run of the adversarial SFI escape
// corpus: forged discharges, width confusion, out-of-bounds loads and
// stores, stack pivots, call-table forgery, revoked-grant replays.
type RedTeamConfig = redteam.Config

// RedTeamResult is the corpus outcome, verdicts in corpus order;
// Summary() renders the deterministic report (byte-identical at any
// worker count for a fixed seed).
type RedTeamResult = redteam.Result

// RedTeamVerdict is one attack case's verdict: rejected by the
// verifier, contained at runtime, or escaped (never acceptable).
type RedTeamVerdict = redteam.Verdict

// RunRedTeam executes the escape corpus. Clean() on the result means
// zero escapes and every case stopped by its expected layer.
func RunRedTeam(cfg RedTeamConfig) *RedTeamResult { return redteam.Run(cfg) }
