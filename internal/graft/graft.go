// Package graft implements the VINO grafting architecture (§3 of the
// paper): the graft namespace, function and event graft points, the
// dynamic linker with its graft-callable function list, the transaction
// wrapper interposed around every graft invocation, and the policy that
// forcibly removes a graft whose transaction aborts.
//
// The life of a graft:
//
//  1. The toolchain (package sfi / cmd/misfit) assembles, SFI-rewrites
//     and signs an image.
//  2. A process asks the Registry to install it at a graft point. The
//     loader verifies the signature (rule 6), the structural SFI
//     invariants, the point's privilege requirements (rule 5), and
//     resolves every imported symbol against the graft-callable list
//     (rules 4 and 7).
//  3. A fresh resource account with zero limits is created for the
//     graft; the installer transfers limit or directs billing (rule 2).
//  4. Each invocation runs through a wrapper that begins a transaction,
//     swaps the thread's resource account for the graft's, arms a
//     forward-progress watchdog, executes the graft in its SFI sandbox,
//     validates the returned value, and commits (Figure 3's code paths).
//  5. If the invocation fails or is aborted — lock time-out, watchdog,
//     resource denial, SFI violation — the transaction's undo stack
//     runs, the graft is removed from the kernel, and the caller falls
//     back to the default implementation (rules 1, 2, 8, 9).
package graft

import (
	"errors"
	"fmt"
	"time"

	"vino/internal/resource"
	"vino/internal/sched"
	"vino/internal/sfi"
	"vino/internal/txn"
)

// UID identifies the user on whose behalf a process or graft runs.
type UID int

// Root is the privileged user: the only one allowed to graft global
// policy points ("users who, in a conventional system, would be allowed
// to halt the system, install new drivers, build a new kernel", §2.3).
const Root UID = 0

// Thread-local keys for process identity, shared with package kernel.
const (
	localUID     = "graft.uid"
	localAccount = "graft.account"
)

// SetThreadIdentity binds a user and resource account to a thread.
func SetThreadIdentity(t *sched.Thread, uid UID, acct *resource.Account) {
	t.SetLocal(localUID, uid)
	t.SetLocal(localAccount, acct)
}

// ThreadUID returns the thread's user identity (Root if unset —
// kernel-internal threads are privileged).
func ThreadUID(t *sched.Thread) UID {
	if v, ok := t.Local(localUID).(UID); ok {
		return v
	}
	return Root
}

// ThreadAccount returns the thread's active resource account, or nil for
// kernel-internal threads (which are unaccounted).
func ThreadAccount(t *sched.Thread) *resource.Account {
	a, _ := t.Local(localAccount).(*resource.Account)
	return a
}

// Privilege classifies who may graft a point.
type Privilege int

const (
	// Local points affect only consenting applications (a file's
	// read-ahead policy, a process group's scheduler) and may be grafted
	// by any user.
	Local Privilege = iota
	// Global points change policy for the whole system (the global page
	// eviction policy) and require Root.
	Global
	// Restricted points exist in the namespace for documentation but may
	// never be grafted (security enforcement modules, shutdown).
	Restricted
)

func (p Privilege) String() string {
	switch p {
	case Local:
		return "local"
	case Global:
		return "global"
	case Restricted:
		return "restricted"
	}
	return fmt.Sprintf("privilege(%d)", int(p))
}

// Kind distinguishes the two extensibility modes (§3.4, §3.5).
type Kind int

const (
	// Function points replace the implementation of one member function
	// on one object.
	Function Kind = iota
	// Event points accumulate handlers invoked (in order) when an
	// external event fires; used to drop whole services into the kernel.
	Event
)

func (k Kind) String() string {
	if k == Function {
		return "function"
	}
	return "event"
}

// Errors returned by the loader and wrapper.
var (
	ErrUnsigned        = errors.New("graft: image signature missing or invalid")
	ErrNotSafe         = errors.New("graft: image was not processed by the SFI rewriter")
	ErrRestrictedPoint = errors.New("graft: point is restricted and may never be grafted")
	ErrPrivilege       = errors.New("graft: global point requires privileged user")
	ErrUnknownPoint    = errors.New("graft: no such graft point")
	ErrNotCallable     = errors.New("graft: symbol is not on the graft-callable list")
	ErrOccupied        = errors.New("graft: function point already grafted")
	ErrBadResult       = errors.New("graft: result failed validation")
	ErrWatchdog        = errors.New("graft: forward-progress watchdog expired")
	ErrRemoved         = errors.New("graft: graft was removed")
	ErrExpelled        = errors.New("graft: image permanently expelled by the supervisor")
)

// Ctx is the execution context a graft-callable kernel function
// receives: the invoking thread, the graft's transaction, the installed
// graft (for its account and owner identity) and the VM (for access to
// the graft heap).
type Ctx struct {
	Thread *sched.Thread
	Txn    *txn.Txn
	Graft  *Installed
	VM     *sfi.VM
}

// UID returns the identity the graft runs under: the user who installed
// it ("a graft is run with the user identity of the process that
// installs it", §3.3).
func (c *Ctx) UID() UID { return c.Graft.Owner }

// Account returns the resource account charged for the graft's
// allocations.
func (c *Ctx) Account() *resource.Account { return c.Graft.Account }

// Callable is a kernel function on the graft-callable list. Callables
// must perform the same argument checking and permission verification
// system calls do; the Ctx carries the identity to check against.
type Callable func(ctx *Ctx, args [5]int64) (int64, error)

// DefaultFunc is a graft point's built-in implementation, used when no
// graft is installed and as the fallback after an abort.
type DefaultFunc func(t *sched.Thread, args []int64) (int64, error)

// Validator checks a graft's return value before the kernel acts on it
// ("the value returned by the graft must be valid, or detectably
// invalid", §4.2). Returning an error aborts the invocation.
type Validator func(t *sched.Thread, args []int64, result int64) (int64, error)

// Point is one graft point in the kernel namespace.
type Point struct {
	// Name locates the point: "<object>.<function>", e.g.
	// "file/3.compute-ra" or "tcp/80.connection".
	Name string
	// Kind is Function (replace) or Event (add handler).
	Kind Kind
	// Privilege gates installation.
	Privilege Privilege
	// Default is the built-in implementation (Function points).
	Default DefaultFunc
	// Validate, if set, checks every grafted result.
	Validate Validator
	// PreGraft, if set, runs inside the transaction immediately before
	// the graft body: subsystems use it to snapshot shared state into
	// the graft heap and take the locks the graft's answer depends on
	// (two-phase, so they are held to commit/abort). An error aborts
	// the invocation.
	PreGraft func(t *sched.Thread, tx *txn.Txn, g *Installed, args []int64) error
	// Watchdog bounds one invocation's virtual runtime; 0 means the
	// registry default. It is the defence against covert denial of
	// service (§2.5): a graft that simply never returns.
	Watchdog time.Duration
	// IndirectionCost is charged on every invocation, grafted or not,
	// modelling the level of indirection a graftable decision point
	// introduces (the paper's Table 3 "indirection cost" row).
	IndirectionCost time.Duration
	// KeepOnAbort suppresses the forcible removal of an aborting graft.
	// It exists ONLY for the measurement harness, which must run the
	// abort path repeatedly (Table 2); production points leave it false.
	KeepOnAbort bool
	// NoTxn runs grafts at this point WITHOUT transaction protection:
	// no undo stack, no two-phase locking, no resource-account swap.
	// It exists ONLY for the "what do transactions buy" ablation — it
	// is the paper's counterfactual, where a failed graft leaves its
	// half-finished kernel-state changes behind. Never set in
	// production.
	NoTxn bool

	reg      *Registry
	grafted  *Installed
	handlers []*Installed
	stats    PointStats
}

// PointStats counts per-point events.
type PointStats struct {
	Invocations    int64
	GraftedCalls   int64
	DefaultCalls   int64
	Commits        int64
	Aborts         int64
	Removals       int64
	ValidationFail int64
}

// Stats returns a copy of the point's counters.
func (p *Point) Stats() PointStats { return p.stats }

// Grafted reports whether a function graft is currently installed.
func (p *Point) Grafted() bool { return p.grafted != nil }

// Current returns the installed function graft, or nil.
func (p *Point) Current() *Installed { return p.grafted }

// Handlers returns the installed event handlers in invocation order.
func (p *Point) Handlers() []*Installed {
	return append([]*Installed(nil), p.handlers...)
}

// Installed is one loaded graft.
type Installed struct {
	Image   *sfi.Image
	Entry   string
	Owner   UID
	Account *resource.Account
	Point   *Point
	Order   int // event-handler ordering, lower first

	vm        *sfi.VM
	curThread *sched.Thread
	removed   bool
	// grantMark remembers the last grant-audit counters reported to the
	// supervisor, per region, so each dispatch contributes only its
	// delta to the health ledger.
	grantMark map[string][2]int64
}

// VM exposes the graft's sandbox (the kernel seeds shared buffers
// through it).
func (g *Installed) VM() *sfi.VM { return g.vm }

// GuardKey identifies the graft to the supervisor: "<point>#<image>".
// Reinstalls of the same image at the same point share one ledger
// entry, so misbehavior history survives remove/reinstall cycles.
func (g *Installed) GuardKey() string { return guardKey(g.Point.Name, g.Image.Name) }

func guardKey(pointName, imageName string) string { return pointName + "#" + imageName }

// Removed reports whether the graft has been forcibly removed.
func (g *Installed) Removed() bool { return g.removed }
