package graft

import (
	"errors"
	"testing"

	"vino/internal/resource"
	"vino/internal/sched"
	"vino/internal/sfi"
	"vino/internal/txn"
)

// shareSrc writes through the share-window region of the default
// compartment layout: it only succeeds while a grant is open.
const shareSrc = `
.name sharer
.func main
main:
    movi r1, 40960
    add r1, r1, r10
    movi r2, 7
    st [r1+0], r2
    movi r0, 1
    ret
`

// roSrc stores into the read-only kernel-export region: always a trap.
const roSrc = `
.name rogue
.func main
main:
    movi r1, 49152
    add r1, r1, r10
    st [r1+0], r2
    ret
`

func (e *env) buildComp(t testing.TB, src string) *sfi.Image {
	t.Helper()
	img, _, err := sfi.BuildCompartmented(src, e.signer)
	if err != nil {
		t.Fatalf("BuildCompartmented: %v", err)
	}
	return img
}

// TestInstallTranslatesByDefault: a verified image installs onto the
// translated closure engine unless the registry opts out.
func TestInstallTranslatesByDefault(t *testing.T) {
	e := newEnv()
	p := e.reg.RegisterPoint(newFnPoint("p"))
	img := e.buildComp(t, doubleSrc)
	e.run(t, 100, func(th *sched.Thread, _ *resource.Account) {
		g, err := e.reg.Install(th, "p", img, InstallOptions{})
		if err != nil {
			t.Fatalf("Install: %v", err)
		}
		if !g.VM().Translated() {
			t.Error("default install did not translate a verified image")
		}
		if res, err := p.Invoke(th, 21); err != nil || res != 42 {
			t.Errorf("translated invoke = %d, %v; want 42, nil", res, err)
		}
	})

	e2 := newEnv()
	e2.reg.NoTranslate = true
	e2.reg.RegisterPoint(newFnPoint("p"))
	e2.run(t, 100, func(th *sched.Thread, _ *resource.Account) {
		g, err := e2.reg.Install(th, "p", e2.buildComp(t, doubleSrc), InstallOptions{})
		if err != nil {
			t.Fatalf("Install: %v", err)
		}
		if g.VM().Translated() {
			t.Error("NoTranslate registry still translated the image")
		}
	})
}

// TestTranslationCacheSharedAcrossInstalls: the registry translates a
// given image content once; later installs of the same bytes reuse the
// identical Program.
func TestTranslationCacheSharedAcrossInstalls(t *testing.T) {
	e := newEnv()
	e.reg.RegisterPoint(newFnPoint("a"))
	e.reg.RegisterPoint(newFnPoint("b"))
	img := e.buildComp(t, doubleSrc)
	e.run(t, 100, func(th *sched.Thread, _ *resource.Account) {
		ga, err := e.reg.Install(th, "a", img, InstallOptions{})
		if err != nil {
			t.Fatalf("Install a: %v", err)
		}
		gb, err := e.reg.Install(th, "b", img, InstallOptions{})
		if err != nil {
			t.Fatalf("Install b: %v", err)
		}
		if ga.VM().TranslatedProgram() != gb.VM().TranslatedProgram() {
			t.Error("same image translated twice: the cache did not share the program")
		}
	})
}

// TestDispatchRevokesGrantsOnEveryReturnPath: a grant opened by the
// PreGraft hook is dead once the dispatch returns — on commit, on an
// SFI-violation abort, and on a validation failure alike.
func TestDispatchRevokesGrantsOnEveryReturnPath(t *testing.T) {
	grantPre := func(_ *sched.Thread, _ *txn.Txn, g *Installed, _ []int64) error {
		_, err := g.VM().Grant(40960, 64, sfi.PermRW)
		return err
	}

	t.Run("commit", func(t *testing.T) {
		e := newEnv()
		pt := newFnPoint("p")
		pt.PreGraft = grantPre
		p := e.reg.RegisterPoint(pt)
		e.run(t, 100, func(th *sched.Thread, _ *resource.Account) {
			g, err := e.reg.Install(th, "p", e.buildComp(t, shareSrc), InstallOptions{})
			if err != nil {
				t.Fatalf("Install: %v", err)
			}
			if res, err := p.Invoke(th); err != nil || res != 1 {
				t.Fatalf("granted invoke = %d, %v; want 1, nil", res, err)
			}
			if n := g.VM().ActiveGrants(); n != 0 {
				t.Errorf("%d grants still open after a committed dispatch", n)
			}
		})
	})

	t.Run("violation-abort", func(t *testing.T) {
		e := newEnv()
		pt := newFnPoint("p")
		pt.PreGraft = grantPre
		p := e.reg.RegisterPoint(pt)
		e.run(t, 100, func(th *sched.Thread, _ *resource.Account) {
			g, err := e.reg.Install(th, "p", e.buildComp(t, roSrc), InstallOptions{})
			if err != nil {
				t.Fatalf("Install: %v", err)
			}
			if _, err := p.Invoke(th); err == nil {
				t.Fatal("read-only store committed")
			}
			if n := g.VM().ActiveGrants(); n != 0 {
				t.Errorf("%d grants still open after an aborted dispatch", n)
			}
		})
	})

	t.Run("validation-failure", func(t *testing.T) {
		e := newEnv()
		pt := newFnPoint("p")
		pt.PreGraft = grantPre
		pt.Validate = func(_ *sched.Thread, _ []int64, res int64) (int64, error) {
			return 0, errTestBadResult
		}
		p := e.reg.RegisterPoint(pt)
		e.run(t, 100, func(th *sched.Thread, _ *resource.Account) {
			g, err := e.reg.Install(th, "p", e.buildComp(t, shareSrc), InstallOptions{})
			if err != nil {
				t.Fatalf("Install: %v", err)
			}
			if _, err := p.Invoke(th); err == nil {
				t.Fatal("validation failure did not abort")
			}
			if n := g.VM().ActiveGrants(); n != 0 {
				t.Errorf("%d grants still open after a validation abort", n)
			}
		})
	})
}

var errTestBadResult = errors.New("result rejected")

// TestTranslatedGrantReplayTrapsLikeInterpreter: after the per-dispatch
// revocation, replaying the grant-dependent graft traps — and the
// translated engine produces byte-for-byte the interpreter's dispatch
// error.
func TestTranslatedGrantReplayTrapsLikeInterpreter(t *testing.T) {
	replayErr := func(noTranslate bool) (translated bool, first error, replay error) {
		e := newEnv()
		e.reg.NoTranslate = noTranslate
		granted := true
		pt := newFnPoint("p")
		pt.PreGraft = func(_ *sched.Thread, _ *txn.Txn, g *Installed, _ []int64) error {
			if !granted {
				return nil
			}
			_, err := g.VM().Grant(40960, 64, sfi.PermRW)
			return err
		}
		p := e.reg.RegisterPoint(pt)
		var g *Installed
		e.run(t, 100, func(th *sched.Thread, _ *resource.Account) {
			var err error
			g, err = e.reg.Install(th, "p", e.buildComp(t, shareSrc), InstallOptions{})
			if err != nil {
				t.Fatalf("Install: %v", err)
			}
			_, first = p.Invoke(th)
			granted = false
			_, replay = p.Invoke(th)
		})
		return g.VM().Translated(), first, replay
	}

	transOn, firstOn, replayOn := replayErr(false)
	transOff, firstOff, replayOff := replayErr(true)
	if !transOn || transOff {
		t.Fatalf("engine selection wrong: translate=%v noTranslate=%v", transOn, transOff)
	}
	if firstOn != nil || firstOff != nil {
		t.Fatalf("granted dispatch failed: %v / %v", firstOn, firstOff)
	}
	if replayOn == nil || replayOff == nil {
		t.Fatalf("revoked-grant replay did not trap: translated=%v interpreted=%v", replayOn, replayOff)
	}
	if replayOn.Error() != replayOff.Error() {
		t.Fatalf("engines disagree on the replay trap:\ntranslated:  %q\ninterpreted: %q", replayOn, replayOff)
	}
}
