package graft

// The full offline toolchain loop: an image built and signed out of
// process (as cmd/misfit does), serialised to the on-disk format,
// decoded by the kernel side, and installed. The bytes on the wire are
// exactly what the loader trusts — nothing about the in-process Image
// object survives the trip.

import (
	"testing"

	"vino/internal/resource"
	"vino/internal/sched"
	"vino/internal/sfi"
)

func TestSignedImageFileRoundTripInstalls(t *testing.T) {
	e := newEnv()
	p := e.reg.RegisterPoint(newFnPoint("obj.fn"))

	// Toolchain side: build, sign, serialise (what `misfit build` writes).
	img, _, err := sfi.BuildSafe(doubleSrc, e.signer)
	if err != nil {
		t.Fatal(err)
	}
	blob := img.EncodeSigned()

	// Kernel side: decode the file and install.
	e.run(t, 100, func(th *sched.Thread, _ *resource.Account) {
		loaded, err := sfi.DecodeSigned(blob)
		if err != nil {
			t.Fatalf("DecodeSigned: %v", err)
		}
		if _, err := e.reg.Install(th, "obj.fn", loaded, InstallOptions{}); err != nil {
			t.Fatalf("Install of decoded image: %v", err)
		}
		res, err := p.Invoke(th, 21)
		if err != nil || res != 42 {
			t.Fatalf("invoke = %d, %v", res, err)
		}
	})
}

func TestTamperedImageFileRejected(t *testing.T) {
	e := newEnv()
	e.reg.RegisterPoint(newFnPoint("obj.fn"))
	img, _, err := sfi.BuildSafe(doubleSrc, e.signer)
	if err != nil {
		t.Fatal(err)
	}
	blob := img.EncodeSigned()
	// Flip one code byte in the serialised image.
	blob[10] ^= 0xFF
	e.run(t, 100, func(th *sched.Thread, _ *resource.Account) {
		loaded, err := sfi.DecodeSigned(blob)
		if err != nil {
			return // rejected at decode: also fine
		}
		if _, err := e.reg.Install(th, "obj.fn", loaded, InstallOptions{}); err == nil {
			t.Fatal("tampered image file installed")
		}
	})
}

func TestOptimizedImageFileRoundTrip(t *testing.T) {
	e := newEnv()
	p := e.reg.RegisterPoint(newFnPoint("obj.fn"))
	img, stats, err := sfi.BuildSafeOptimized(`
.name static-double
.func main
main:
    st [r10+32], r1
    ld r2, [r10+32]
    add r0, r2, r2
    ret
`, e.signer)
	if err != nil {
		t.Fatal(err)
	}
	if stats.StaticallySafe != 2 {
		t.Fatalf("stats = %+v", stats)
	}
	blob := img.EncodeSigned()
	e.run(t, 100, func(th *sched.Thread, _ *resource.Account) {
		loaded, err := sfi.DecodeSigned(blob)
		if err != nil {
			t.Fatal(err)
		}
		// The loader's verifier re-proves the discharged accesses on the
		// decoded bytes.
		if _, err := e.reg.Install(th, "obj.fn", loaded, InstallOptions{}); err != nil {
			t.Fatalf("install optimized image: %v", err)
		}
		res, err := p.Invoke(th, 21)
		if err != nil || res != 42 {
			t.Fatalf("invoke = %d, %v", res, err)
		}
	})
}
