package graft

import (
	"errors"
	"testing"
	"time"

	"vino/internal/lock"
	"vino/internal/resource"
	"vino/internal/sched"
	"vino/internal/sfi"
	"vino/internal/simclock"
	"vino/internal/txn"
)

type env struct {
	s      *sched.Scheduler
	locks  *lock.Manager
	txns   *txn.Manager
	reg    *Registry
	signer *sfi.Signer
}

func newEnv() *env {
	s := sched.New(simclock.New(0))
	s.SwitchCost = 0
	locks := lock.NewManager(s.Clock())
	txns := txn.NewManager()
	txns.Costs = txn.ZeroCosts()
	locks.HolderInTxn = txns.InTxn
	signer := sfi.NewSigner([]byte("test-key"))
	reg := NewRegistry(s.Clock(), txns, signer)
	return &env{s: s, locks: locks, txns: txns, reg: reg, signer: signer}
}

func (e *env) buildSafe(t testing.TB, src string) *sfi.Image {
	t.Helper()
	img, _, err := sfi.BuildSafe(src, e.signer)
	if err != nil {
		t.Fatalf("BuildSafe: %v", err)
	}
	return img
}

// run spawns a process-like thread with identity and account, runs the
// scheduler, and fails on error.
func (e *env) run(t *testing.T, uid UID, body func(th *sched.Thread, acct *resource.Account)) {
	t.Helper()
	acct := resource.NewAccount("proc")
	acct.SetLimit(resource.KernelHeap, 1<<20)
	acct.SetLimit(resource.Memory, 1<<20)
	e.s.Spawn("proc", func(th *sched.Thread) {
		SetThreadIdentity(th, uid, acct)
		body(th, acct)
	})
	if err := e.s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func newFnPoint(name string) *Point {
	return &Point{
		Name: name,
		Kind: Function,
		Default: func(t *sched.Thread, args []int64) (int64, error) {
			return -1, nil // distinguishable default
		},
	}
}

const doubleSrc = `
.name double
.func main
main:
    add r0, r1, r1
    ret
`

func TestInstallAndInvokeFunctionGraft(t *testing.T) {
	e := newEnv()
	p := e.reg.RegisterPoint(newFnPoint("file/1.compute-ra"))
	img := e.buildSafe(t, doubleSrc)
	e.run(t, 100, func(th *sched.Thread, _ *resource.Account) {
		if res, _ := p.Invoke(th, 21); res != -1 {
			t.Errorf("ungrafted invoke = %d, want default -1", res)
		}
		g, err := e.reg.Install(th, "file/1.compute-ra", img, InstallOptions{})
		if err != nil {
			t.Fatalf("Install: %v", err)
		}
		if g.Owner != 100 {
			t.Errorf("owner = %d", g.Owner)
		}
		res, err := p.Invoke(th, 21)
		if err != nil {
			t.Fatalf("Invoke: %v", err)
		}
		if res != 42 {
			t.Errorf("grafted invoke = %d, want 42", res)
		}
	})
	st := p.Stats()
	if st.GraftedCalls != 1 || st.DefaultCalls != 1 || st.Commits != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLoaderRejectsUnsafeImage(t *testing.T) {
	e := newEnv()
	e.reg.RegisterPoint(newFnPoint("p"))
	img, err := sfi.BuildUnsafe(doubleSrc)
	if err != nil {
		t.Fatal(err)
	}
	e.run(t, 100, func(th *sched.Thread, _ *resource.Account) {
		if _, err := e.reg.Install(th, "p", img, InstallOptions{}); !errors.Is(err, ErrNotSafe) {
			t.Errorf("Install = %v, want ErrNotSafe", err)
		}
	})
}

func TestLoaderRejectsBadSignature(t *testing.T) {
	e := newEnv()
	e.reg.RegisterPoint(newFnPoint("p"))
	// Signed by an attacker's key.
	img, _, err := sfi.BuildSafe(doubleSrc, sfi.NewSigner([]byte("wrong key")))
	if err != nil {
		t.Fatal(err)
	}
	e.run(t, 100, func(th *sched.Thread, _ *resource.Account) {
		if _, err := e.reg.Install(th, "p", img, InstallOptions{}); !errors.Is(err, ErrUnsigned) {
			t.Errorf("Install = %v, want ErrUnsigned", err)
		}
	})
	if e.reg.Stats().SignatureFails != 1 {
		t.Fatalf("stats = %+v", e.reg.Stats())
	}
}

func TestLoaderRejectsTamperedImage(t *testing.T) {
	e := newEnv()
	e.reg.RegisterPoint(newFnPoint("p"))
	img := e.buildSafe(t, doubleSrc)
	img.Code[0].Imm = 7 // tamper post-signing
	e.run(t, 100, func(th *sched.Thread, _ *resource.Account) {
		if _, err := e.reg.Install(th, "p", img, InstallOptions{}); !errors.Is(err, ErrUnsigned) {
			t.Errorf("Install = %v, want ErrUnsigned", err)
		}
	})
}

func TestLinkerRejectsUncallableSymbol(t *testing.T) {
	e := newEnv()
	e.reg.RegisterPoint(newFnPoint("p"))
	img := e.buildSafe(t, `
.name sneaky
.import kernel.shutdown
.func main
main:
    callk kernel.shutdown
    ret
`)
	e.run(t, 100, func(th *sched.Thread, _ *resource.Account) {
		if _, err := e.reg.Install(th, "p", img, InstallOptions{}); !errors.Is(err, ErrNotCallable) {
			t.Errorf("Install = %v, want ErrNotCallable", err)
		}
	})
	if e.reg.Stats().LinkFails != 1 {
		t.Fatal("link failure not counted")
	}
}

func TestRestrictedPointNeverGraftable(t *testing.T) {
	e := newEnv()
	e.reg.RegisterPoint(&Point{
		Name:      "security.check-access",
		Kind:      Function,
		Privilege: Restricted,
		Default:   func(t *sched.Thread, args []int64) (int64, error) { return 0, nil },
	})
	img := e.buildSafe(t, doubleSrc)
	e.run(t, Root, func(th *sched.Thread, _ *resource.Account) {
		// Even Root cannot graft a restricted point.
		if _, err := e.reg.Install(th, "security.check-access", img, InstallOptions{}); !errors.Is(err, ErrRestrictedPoint) {
			t.Errorf("Install = %v, want ErrRestrictedPoint", err)
		}
	})
}

func TestGlobalPointRequiresRoot(t *testing.T) {
	e := newEnv()
	e.reg.RegisterPoint(&Point{
		Name:      "vm.global-eviction",
		Kind:      Function,
		Privilege: Global,
		Default:   func(t *sched.Thread, args []int64) (int64, error) { return 0, nil },
	})
	img := e.buildSafe(t, doubleSrc)
	e.run(t, 100, func(th *sched.Thread, _ *resource.Account) {
		if _, err := e.reg.Install(th, "vm.global-eviction", img, InstallOptions{}); !errors.Is(err, ErrPrivilege) {
			t.Errorf("Install = %v, want ErrPrivilege", err)
		}
	})
	if e.reg.Stats().PrivilegeFails != 1 {
		t.Fatal("privilege failure not counted")
	}
	e2 := newEnv()
	p := e2.reg.RegisterPoint(&Point{
		Name:      "vm.global-eviction",
		Kind:      Function,
		Privilege: Global,
		Default:   func(t *sched.Thread, args []int64) (int64, error) { return 0, nil },
	})
	img2 := e2.buildSafe(t, doubleSrc)
	e2.run(t, Root, func(th *sched.Thread, _ *resource.Account) {
		if _, err := e2.reg.Install(th, "vm.global-eviction", img2, InstallOptions{}); err != nil {
			t.Errorf("root install: %v", err)
		}
	})
	if !p.Grafted() {
		t.Fatal("root's graft not installed")
	}
}

func TestFunctionPointOccupied(t *testing.T) {
	e := newEnv()
	e.reg.RegisterPoint(newFnPoint("p"))
	img := e.buildSafe(t, doubleSrc)
	e.run(t, 1, func(th *sched.Thread, _ *resource.Account) {
		if _, err := e.reg.Install(th, "p", img, InstallOptions{}); err != nil {
			t.Fatal(err)
		}
		if _, err := e.reg.Install(th, "p", img, InstallOptions{}); !errors.Is(err, ErrOccupied) {
			t.Errorf("second install = %v, want ErrOccupied", err)
		}
	})
}

func TestUnknownPointAndEntry(t *testing.T) {
	e := newEnv()
	img := e.buildSafe(t, doubleSrc)
	e.run(t, 1, func(th *sched.Thread, _ *resource.Account) {
		if _, err := e.reg.Install(th, "ghost", img, InstallOptions{}); !errors.Is(err, ErrUnknownPoint) {
			t.Errorf("Install = %v, want ErrUnknownPoint", err)
		}
	})
	e2 := newEnv()
	e2.reg.RegisterPoint(newFnPoint("p"))
	img2 := e2.buildSafe(t, doubleSrc)
	e2.run(t, 1, func(th *sched.Thread, _ *resource.Account) {
		if _, err := e2.reg.Install(th, "p", img2, InstallOptions{Entry: "missing"}); err == nil {
			t.Error("missing entry accepted")
		}
	})
}

// TestAbortRemovesGraftAndFallsBack is rule 9 end-to-end: a graft that
// fails is undone, removed, and the default answer produced.
func TestAbortRemovesGraftAndFallsBack(t *testing.T) {
	e := newEnv()
	p := e.reg.RegisterPoint(newFnPoint("p"))
	// The graft divides by zero: a trap, like an errant pointer.
	img := e.buildSafe(t, `
.name crasher
.func main
main:
    movi r2, 0
    div r0, r1, r2
    ret
`)
	e.run(t, 1, func(th *sched.Thread, _ *resource.Account) {
		g, err := e.reg.Install(th, "p", img, InstallOptions{})
		if err != nil {
			t.Fatal(err)
		}
		res, ierr := p.Invoke(th, 5)
		if res != -1 {
			t.Errorf("fallback result = %d, want default -1", res)
		}
		if ierr == nil {
			t.Error("abort reason not reported")
		}
		if !g.Removed() {
			t.Error("graft not removed after abort")
		}
		if p.Grafted() {
			t.Error("point still grafted")
		}
		// Next invocation goes straight to the default.
		if res, err := p.Invoke(th, 5); err != nil || res != -1 {
			t.Errorf("post-removal invoke = %d, %v", res, err)
		}
	})
	st := p.Stats()
	if st.Aborts != 1 || st.Removals != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestWatchdogAbortsNonReturningGraft is §2.5: the covert
// denial-of-service where a graft simply never returns.
func TestWatchdogAbortsNonReturningGraft(t *testing.T) {
	e := newEnv()
	p := e.reg.RegisterPoint(newFnPoint("pagedaemon.pick"))
	p.Watchdog = 50 * time.Millisecond
	img := e.buildSafe(t, `
.name loop-forever
.func main
main:
    jmp main
`)
	e.run(t, 1, func(th *sched.Thread, _ *resource.Account) {
		if _, err := e.reg.Install(th, "pagedaemon.pick", img, InstallOptions{}); err != nil {
			t.Fatal(err)
		}
		start := e.s.Clock().Now()
		res, ierr := p.Invoke(th, 0)
		if res != -1 {
			t.Errorf("result = %d, want default after watchdog abort", res)
		}
		if !errors.Is(ierr, ErrWatchdog) {
			t.Errorf("err = %v, want ErrWatchdog", ierr)
		}
		elapsed := e.s.Clock().Now() - start
		if elapsed < 50*time.Millisecond || elapsed > 500*time.Millisecond {
			t.Errorf("watchdog latency = %v", elapsed)
		}
	})
	if e.reg.Stats().WatchdogFires != 1 {
		t.Fatal("watchdog fire not counted")
	}
}

// TestResourceLimitAbortsGreedyGraft: a graft with zero limits cannot
// allocate; one with transferred limits can, up to the transfer.
func TestResourceLimitAbortsGreedyGraft(t *testing.T) {
	e := newEnv()
	// alloc callable charging the graft's account.
	e.reg.RegisterCallable("test.alloc", func(ctx *Ctx, args [5]int64) (int64, error) {
		n := args[0]
		acct := ctx.Account()
		if err := acct.Charge(resource.KernelHeap, n); err != nil {
			return 0, err
		}
		if ctx.Txn != nil {
			ctx.Txn.PushUndo("alloc", func() { acct.Release(resource.KernelHeap, n) })
		}
		return 0, nil
	})
	p := e.reg.RegisterPoint(newFnPoint("p"))
	img := e.buildSafe(t, `
.name hog
.import test.alloc
.func main
main:
    movi r1, 4096
    callk test.alloc
    movi r0, 1
    ret
`)
	e.run(t, 1, func(th *sched.Thread, acct *resource.Account) {
		g, err := e.reg.Install(th, "p", img, InstallOptions{})
		if err != nil {
			t.Fatal(err)
		}
		// Zero limits: the allocation is denied, the graft aborts.
		res, ierr := p.Invoke(th, 0)
		if res != -1 || ierr == nil {
			t.Fatalf("zero-limit graft: res=%d err=%v", res, ierr)
		}
		var le *resource.LimitError
		if !errors.As(ierr, &le) {
			t.Fatalf("abort reason = %v, want LimitError", ierr)
		}
		if !g.Removed() {
			t.Fatal("greedy graft not removed")
		}

		// Re-install with a transfer: the same allocation succeeds, and
		// the usage lands on the graft's account, not the process's.
		g2, err := e.reg.Install(th, "p", img, InstallOptions{
			Transfer: map[resource.Kind]int64{resource.KernelHeap: 8192},
		})
		if err != nil {
			t.Fatal(err)
		}
		procUsedBefore := acct.Used(resource.KernelHeap)
		if res, err := p.Invoke(th, 0); err != nil || res != 1 {
			t.Fatalf("funded graft: res=%d err=%v", res, err)
		}
		if g2.Account.Used(resource.KernelHeap) != 4096 {
			t.Errorf("graft account used = %d", g2.Account.Used(resource.KernelHeap))
		}
		if acct.Used(resource.KernelHeap) != procUsedBefore {
			t.Error("charge leaked onto process account")
		}
	})
}

// TestBillInstaller: allocations land on the installer's account.
func TestBillInstaller(t *testing.T) {
	e := newEnv()
	e.reg.RegisterCallable("test.alloc", func(ctx *Ctx, args [5]int64) (int64, error) {
		return 0, ctx.Account().Charge(resource.KernelHeap, args[0])
	})
	p := e.reg.RegisterPoint(newFnPoint("p"))
	img := e.buildSafe(t, `
.name billed
.import test.alloc
.func main
main:
    movi r1, 100
    callk test.alloc
    movi r0, 1
    ret
`)
	e.run(t, 1, func(th *sched.Thread, acct *resource.Account) {
		if _, err := e.reg.Install(th, "p", img, InstallOptions{BillInstaller: true}); err != nil {
			t.Fatal(err)
		}
		if res, err := p.Invoke(th, 0); err != nil || res != 1 {
			t.Fatalf("res=%d err=%v", res, err)
		}
		if acct.Used(resource.KernelHeap) != 100 {
			t.Errorf("installer account used = %d, want 100", acct.Used(resource.KernelHeap))
		}
	})
}

// TestAbortUndoesKernelStateChanges: an accessor's mutation made by a
// graft is rolled back when a later step aborts the transaction.
func TestAbortUndoesKernelStateChanges(t *testing.T) {
	e := newEnv()
	kernelState := 0
	e.reg.RegisterCallable("test.set_state", func(ctx *Ctx, args [5]int64) (int64, error) {
		old := kernelState
		kernelState = int(args[0])
		if ctx.Txn != nil {
			ctx.Txn.PushUndo("set_state", func() { kernelState = old })
		}
		return 0, nil
	})
	p := e.reg.RegisterPoint(newFnPoint("p"))
	img := e.buildSafe(t, `
.name mutate-then-trap
.import test.set_state
.func main
main:
    movi r1, 99
    callk test.set_state
    movi r2, 0
    div r0, r1, r2   ; trap after mutating
    ret
`)
	e.run(t, 1, func(th *sched.Thread, _ *resource.Account) {
		if _, err := e.reg.Install(th, "p", img, InstallOptions{}); err != nil {
			t.Fatal(err)
		}
		_, _ = p.Invoke(th, 0)
	})
	if kernelState != 0 {
		t.Fatalf("kernel state = %d after abort, want 0 (undone)", kernelState)
	}
}

// TestNestedGraftAbortSparesOuter: a graft invoking a second graft point
// whose graft aborts continues with the inner default (§3.1 nested
// transactions).
func TestNestedGraftAbortSparesOuter(t *testing.T) {
	e := newEnv()
	inner := e.reg.RegisterPoint(newFnPoint("inner"))
	outer := e.reg.RegisterPoint(newFnPoint("outer"))
	// Kernel callable that invokes the inner graft point.
	e.reg.RegisterCallable("test.call_inner", func(ctx *Ctx, args [5]int64) (int64, error) {
		res, _ := inner.Invoke(ctx.Thread, args[0])
		return res, nil
	})
	badImg := e.buildSafe(t, `
.name bad-inner
.func main
main:
    movi r2, 0
    div r0, r1, r2
    ret
`)
	outerImg := e.buildSafe(t, `
.name outer
.import test.call_inner
.func main
main:
    callk test.call_inner
    ret
`)
	e.run(t, 1, func(th *sched.Thread, _ *resource.Account) {
		if _, err := e.reg.Install(th, "inner", badImg, InstallOptions{}); err != nil {
			t.Fatal(err)
		}
		if _, err := e.reg.Install(th, "outer", outerImg, InstallOptions{}); err != nil {
			t.Fatal(err)
		}
		res, err := outer.Invoke(th, 7)
		if err != nil {
			t.Fatalf("outer graft should survive inner abort: %v", err)
		}
		if res != -1 {
			t.Errorf("res = %d, want inner default -1 propagated", res)
		}
	})
	if outer.Stats().Commits != 1 {
		t.Fatalf("outer stats = %+v", outer.Stats())
	}
	if inner.Stats().Aborts != 1 || !inner.Grafted() == false {
		t.Fatalf("inner stats = %+v grafted=%v", inner.Stats(), inner.Grafted())
	}
}

func TestValidatorRejectsBadResult(t *testing.T) {
	e := newEnv()
	p := e.reg.RegisterPoint(&Point{
		Name: "p",
		Kind: Function,
		Default: func(t *sched.Thread, args []int64) (int64, error) {
			return -1, nil
		},
		Validate: func(t *sched.Thread, args []int64, res int64) (int64, error) {
			if res < 0 || res > 100 {
				return 0, errors.New("out of range")
			}
			return res, nil
		},
	})
	img := e.buildSafe(t, `
.name liar
.func main
main:
    movi r0, 5000
    ret
`)
	e.run(t, 1, func(th *sched.Thread, _ *resource.Account) {
		if _, err := e.reg.Install(th, "p", img, InstallOptions{}); err != nil {
			t.Fatal(err)
		}
		res, err := p.Invoke(th, 0)
		if res != -1 || !errors.Is(err, ErrBadResult) {
			t.Fatalf("res=%d err=%v, want default + ErrBadResult", res, err)
		}
	})
	if p.Stats().ValidationFail != 1 {
		t.Fatal("validation failure not counted")
	}
}

func TestEventGraftHandlersRunInOrder(t *testing.T) {
	e := newEnv()
	var order []int64
	e.reg.RegisterCallable("test.mark", func(ctx *Ctx, args [5]int64) (int64, error) {
		order = append(order, args[0])
		return 0, nil
	})
	p := e.reg.RegisterPoint(&Point{Name: "tcp/80.connection", Kind: Event})
	mk := func(id int64) *sfi.Image {
		return e.buildSafe(t, `
.name handler
.import test.mark
.func main
main:
    mov r2, r1   ; keep event arg
    movi r1, `+itoa(id)+`
    callk test.mark
    ret
`)
	}
	e.run(t, 1, func(th *sched.Thread, _ *resource.Account) {
		if _, err := e.reg.Install(th, "tcp/80.connection", mk(2), InstallOptions{Order: 2}); err != nil {
			t.Fatal(err)
		}
		if _, err := e.reg.Install(th, "tcp/80.connection", mk(1), InstallOptions{Order: 1}); err != nil {
			t.Fatal(err)
		}
		if n := p.Trigger(e.s, 42); n != 2 {
			t.Fatalf("Trigger spawned %d workers", n)
		}
	})
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("handler order = %v, want [1 2]", order)
	}
}

func TestEventHandlerAbortRemovesOnlyThatHandler(t *testing.T) {
	e := newEnv()
	ran := 0
	e.reg.RegisterCallable("test.mark", func(ctx *Ctx, args [5]int64) (int64, error) {
		ran++
		return 0, nil
	})
	p := e.reg.RegisterPoint(&Point{Name: "ev", Kind: Event})
	good := e.buildSafe(t, `
.name good
.import test.mark
.func main
main:
    callk test.mark
    ret
`)
	bad := e.buildSafe(t, `
.name bad
.func main
main:
    movi r2, 0
    div r0, r2, r2
    ret
`)
	e.run(t, 1, func(th *sched.Thread, _ *resource.Account) {
		gGood, err := e.reg.Install(th, "ev", good, InstallOptions{Order: 1})
		if err != nil {
			t.Fatal(err)
		}
		gBad, err := e.reg.Install(th, "ev", bad, InstallOptions{Order: 2})
		if err != nil {
			t.Fatal(err)
		}
		p.Trigger(e.s, 0)
		// Let workers run.
		for i := 0; i < 10; i++ {
			th.Yield()
		}
		if gBad.Removed() == false {
			t.Error("bad handler not removed")
		}
		if gGood.Removed() {
			t.Error("good handler removed")
		}
	})
	if ran != 1 {
		t.Fatalf("good handler ran %d times", ran)
	}
	if len(p.Handlers()) != 1 {
		t.Fatalf("handlers left = %d", len(p.Handlers()))
	}
}

func TestTriggerOnFunctionPointPanics(t *testing.T) {
	e := newEnv()
	p := e.reg.RegisterPoint(newFnPoint("p"))
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	p.Trigger(e.s)
}

func TestVoluntaryRemove(t *testing.T) {
	e := newEnv()
	p := e.reg.RegisterPoint(newFnPoint("p"))
	img := e.buildSafe(t, doubleSrc)
	e.run(t, 1, func(th *sched.Thread, _ *resource.Account) {
		g, err := e.reg.Install(th, "p", img, InstallOptions{})
		if err != nil {
			t.Fatal(err)
		}
		e.reg.Remove(g)
		if p.Grafted() {
			t.Error("still grafted after Remove")
		}
		// Point is free again.
		if _, err := e.reg.Install(th, "p", img, InstallOptions{}); err != nil {
			t.Errorf("re-install after remove: %v", err)
		}
	})
}

func TestUnregisterPointRemovesGrafts(t *testing.T) {
	e := newEnv()
	e.reg.RegisterPoint(newFnPoint("file/9.compute-ra"))
	img := e.buildSafe(t, doubleSrc)
	e.run(t, 1, func(th *sched.Thread, _ *resource.Account) {
		g, err := e.reg.Install(th, "file/9.compute-ra", img, InstallOptions{})
		if err != nil {
			t.Fatal(err)
		}
		e.reg.UnregisterPoint("file/9.compute-ra") // file closed
		if !g.Removed() {
			t.Error("graft survived point unregistration")
		}
		if _, err := e.reg.Lookup("file/9.compute-ra"); err == nil {
			t.Error("point still in namespace")
		}
	})
}

// TestGraftStatePersistsAcrossInvocations: the graft heap is the graft's
// private state, preserved between calls.
func TestGraftStatePersistsAcrossInvocations(t *testing.T) {
	e := newEnv()
	p := e.reg.RegisterPoint(newFnPoint("p"))
	img := e.buildSafe(t, `
.name counter
.func main
main:
    ld r1, [r10+0]
    addi r1, r1, 1
    st [r10+0], r1
    mov r0, r1
    ret
`)
	e.run(t, 1, func(th *sched.Thread, _ *resource.Account) {
		if _, err := e.reg.Install(th, "p", img, InstallOptions{}); err != nil {
			t.Fatal(err)
		}
		for want := int64(1); want <= 3; want++ {
			res, err := p.Invoke(th)
			if err != nil || res != want {
				t.Fatalf("invocation %d: res=%d err=%v", want, res, err)
			}
		}
	})
}

// TestUnsafeInstallGatedThreeWays: the unsafe backdoor needs the
// registry flag AND the option AND Root.
func TestUnsafeInstallGatedThreeWays(t *testing.T) {
	img, err := sfi.BuildUnsafe(doubleSrc)
	if err != nil {
		t.Fatal(err)
	}
	try := func(flag bool, opt bool, uid UID) error {
		e := newEnv()
		e.reg.UnsafeAllowed = flag
		e.reg.RegisterPoint(newFnPoint("p"))
		var got error
		e.run(t, uid, func(th *sched.Thread, _ *resource.Account) {
			_, got = e.reg.Install(th, "p", img, InstallOptions{AllowUnsafe: opt})
		})
		return got
	}
	if err := try(true, true, Root); err != nil {
		t.Errorf("fully-gated unsafe install failed: %v", err)
	}
	if err := try(false, true, Root); err == nil {
		t.Error("unsafe install without registry flag succeeded")
	}
	if err := try(true, false, Root); err == nil {
		t.Error("unsafe install without option succeeded")
	}
	if err := try(true, true, 100); err == nil {
		t.Error("unsafe install by non-root succeeded")
	}
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var d []byte
	for v > 0 {
		d = append([]byte{byte('0' + v%10)}, d...)
		v /= 10
	}
	if neg {
		return "-" + string(d)
	}
	return string(d)
}
