package graft

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"sort"
	"time"

	"vino/internal/crash"
	"vino/internal/fault"
	"vino/internal/guard"
	"vino/internal/resource"
	"vino/internal/sched"
	"vino/internal/sfi"
	"vino/internal/simclock"
	"vino/internal/trace"
	"vino/internal/txn"
)

// DefaultWatchdog bounds a graft invocation's virtual runtime when the
// point does not specify its own. The system clock tick is 10 ms; a
// watchdog of 100 ms is generous for fine-grained grafts while still
// guaranteeing the pageout daemon (or any other caller) regains control.
const DefaultWatchdog = 100 * time.Millisecond

// Stats counts registry-wide events.
type Stats struct {
	Installs       int64
	InstallRejects int64
	Removals       int64
	WatchdogFires  int64
	SignatureFails int64
	LinkFails      int64
	PrivilegeFails int64
}

// Registry is the kernel's graft machinery: namespace, loader/linker,
// graft-callable list and invocation wrappers. One per kernel.
type Registry struct {
	clock *simclock.Clock
	txns  *txn.Manager
	// signer verifies toolchain signatures (the loader side of §3.3's
	// code-signing scheme).
	signer *sfi.Signer
	// UnsafeAllowed lets Root install unrewritten, unsigned images. It
	// exists solely for the measurement harness's "unsafe path" (Table
	// 2) and the misbehavior demonstrations; production kernels leave it
	// off.
	UnsafeAllowed bool
	// SegSize is the sandbox size given to each graft.
	SegSize int
	// KernelMem is the simulated kernel memory placed below each graft's
	// segment (scribble target for unsafe experiments).
	KernelMem int
	// Costs overrides the VM cycle model (nil = sfi.DefaultCosts).
	Costs *sfi.Costs
	// NoTranslate disables install-time translation of verified images
	// to native Go closures, forcing every graft onto the interpreter
	// oracle. Translation is on by default: it is observably identical
	// (same traps, same cycle accounting, same trace events) and only
	// host wall-clock differs. Unsafe images always interpret — the
	// "unsafe path" baseline measures the raw interpreter.
	NoTranslate bool

	// Trace, when set, receives graft lifecycle events (the kernel's
	// flight recorder).
	Trace *trace.Buffer
	// Supervisor, when set, arms the graft supervisor: every dispatch is
	// gated through its health ledger (quarantined grafts short-circuit
	// to the base path), every outcome is reported back, and aborting
	// grafts are quarantined/expelled by policy instead of removed on
	// the first abort. Nil preserves the classic remove-on-abort path.
	Supervisor *guard.Supervisor
	// Faults, when set, lets the injector's crash gate plant kernel
	// panics at the graft dispatch boundary and stamp escaping panics
	// with the guard key of the graft whose dispatch was active.
	Faults *fault.Injector
	// EscalateViolations, when set, promotes compartment region-check
	// traps (sfi.Violation with Compartment set) from plain transaction
	// aborts into classified sfi-violation kernel panics after the
	// abort completes, routing the offender through checkpointed
	// recovery, the guard ledger and tenant standing. The kernel arms
	// this only when crash containment (checkpointing) is configured —
	// without a checkpoint to restore, escalation would turn a
	// contained abort into a fatal error.
	EscalateViolations bool

	// GenSource, when set, supplies the crash manager's checkpoint
	// generation so membership churn can be dirty-flagged.
	GenSource func() uint64

	callables map[string]Callable
	points    map[string]*Point
	installed map[*Installed]bool
	// pending holds durable-checkpoint graft imports whose points did
	// not exist yet at import time; RegisterPoint flushes matches as the
	// owning subsystems re-create their points.
	pending []*pendingGraft
	// meterAccounts is every resource account ever bound to an install
	// (never pruned — tenant accounts outlive individual grafts). The
	// Meters snapshotter checkpoints and rewinds these balances so a
	// whole-kernel restore cannot strand a physical charge whose undo
	// or teardown the panic destroyed.
	meterAccounts map[*resource.Account]bool
	// transCache shares translated programs across installs of the same
	// image bytes, keyed by sfi.TranslationKey (a content hash, so a
	// reinstall with different code can never be paired with a stale
	// program — sfi.NewVM re-checks the key on top of that).
	transCache map[string]*sfi.Program
	modGen     uint64 // generation of the last membership change
	stats      Stats
}

// stampMembership marks the point/install membership as modified in
// the current checkpoint generation.
func (r *Registry) stampMembership() {
	if r.GenSource != nil {
		r.modGen = r.GenSource()
	}
}

// emit records a trace event at the current virtual time.
func (r *Registry) emit(kind trace.Kind, subject, detail string) {
	r.Trace.Emit(r.clock.Now(), kind, subject, detail)
}

// NewRegistry creates a graft registry. The signer's key is the kernel's
// trust root for graft images.
func NewRegistry(clock *simclock.Clock, txns *txn.Manager, signer *sfi.Signer) *Registry {
	return &Registry{
		clock:     clock,
		txns:      txns,
		signer:    signer,
		SegSize:   64 << 10,
		KernelMem: 16 << 10,
		callables: make(map[string]Callable),
		points:    make(map[string]*Point),
		installed: make(map[*Installed]bool),
	}
}

// Stats returns a copy of the registry counters.
func (r *Registry) Stats() Stats { return r.stats }

// RegisterCallable puts a kernel function on the graft-callable list.
// "VINO kernel developers maintain a list of graft-callable functions;
// only functions on this list may be called from grafts" (§3.3).
// Functions that return private data or mutate unrecoverable state must
// simply never be registered — that is the static side of rules 4 and 5.
func (r *Registry) RegisterCallable(name string, fn Callable) {
	if _, dup := r.callables[name]; dup {
		panic(fmt.Sprintf("graft: duplicate callable %q", name))
	}
	r.callables[name] = fn
}

// Callables returns the sorted graft-callable function names.
func (r *Registry) Callables() []string {
	out := make([]string, 0, len(r.callables))
	for n := range r.callables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// RegisterPoint adds a graft point to the namespace. Subsystems call it
// for every decision they expose; "the list of functions that can be
// grafted on each class is specified by the class designer" (§3.4).
func (r *Registry) RegisterPoint(p *Point) *Point {
	if p.Name == "" {
		panic("graft: point without a name")
	}
	if _, dup := r.points[p.Name]; dup {
		panic(fmt.Sprintf("graft: duplicate point %q", p.Name))
	}
	if p.Kind == Function && p.Default == nil {
		panic(fmt.Sprintf("graft: function point %q without default", p.Name))
	}
	p.reg = r
	r.points[p.Name] = p
	r.stampMembership()
	r.flushPending(p)
	return p
}

// UnregisterPoint removes a point (e.g. when its object — an open file —
// is destroyed). Installed grafts on it are removed.
func (r *Registry) UnregisterPoint(name string) {
	p := r.points[name]
	if p == nil {
		return
	}
	if p.grafted != nil {
		r.remove(p.grafted)
	}
	for _, h := range append([]*Installed(nil), p.handlers...) {
		r.remove(h)
	}
	delete(r.points, name)
	r.stampMembership()
}

// Lookup finds a graft point by name: the handle-obtaining step of
// Figure 1.
func (r *Registry) Lookup(name string) (*Point, error) {
	p, ok := r.points[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownPoint, name)
	}
	return p, nil
}

// Points returns the sorted names in the graft namespace.
func (r *Registry) Points() []string {
	out := make([]string, 0, len(r.points))
	for n := range r.points {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// InstallOptions controls resource binding and event ordering.
type InstallOptions struct {
	// Entry is the image entry point to invoke; defaults to "main".
	Entry string
	// BillInstaller directs the graft's allocations to the installing
	// thread's account instead of the graft's own (zero-limit) account.
	BillInstaller bool
	// Transfer moves limits from the installer's account into the
	// graft's at install time.
	Transfer map[resource.Kind]int64
	// Order positions an event handler (lower runs first).
	Order int
	// AllowUnsafe requests installation of an unrewritten image; only
	// honoured for Root and only when the registry's UnsafeAllowed is
	// set. Measurement harness use only.
	AllowUnsafe bool
	// Account, when set, becomes the graft's resource account instead of
	// a fresh zero-limit one. Multi-tenant installs bind every graft a
	// tenant owns to the tenant's own account, so the dispatch-time
	// account swap charges the tenant directly and exhaustion is scoped
	// to the tenant, not the graft. Transfer still moves limits from the
	// installer into this account.
	Account *resource.Account
}

// Install loads an image at the named graft point on behalf of the
// calling thread. This is the dynamic linker and loader of §3.3–3.5: it
// verifies the signature and SFI invariants, enforces point privilege,
// resolves imports against the graft-callable list, builds the sandbox,
// and binds the resource account.
func (r *Registry) Install(t *sched.Thread, pointName string, img *sfi.Image, opts InstallOptions) (*Installed, error) {
	p, err := r.Lookup(pointName)
	if err != nil {
		r.stats.InstallRejects++
		return nil, err
	}
	if sup := r.Supervisor; sup != nil && sup.Barred(guardKey(pointName, img.Name)) {
		r.stats.InstallRejects++
		return nil, fmt.Errorf("%w: image %q at %q", ErrExpelled, img.Name, pointName)
	}
	uid := ThreadUID(t)
	if p.Privilege == Restricted {
		r.stats.InstallRejects++
		return nil, fmt.Errorf("%w: %q", ErrRestrictedPoint, pointName)
	}
	if p.Privilege == Global && uid != Root {
		r.stats.PrivilegeFails++
		r.stats.InstallRejects++
		return nil, fmt.Errorf("%w: %q (uid %d)", ErrPrivilege, pointName, uid)
	}
	unsafeOK := opts.AllowUnsafe && r.UnsafeAllowed && uid == Root
	if !unsafeOK {
		if !img.Safe {
			r.stats.InstallRejects++
			return nil, fmt.Errorf("%w: image %q", ErrNotSafe, img.Name)
		}
		if !r.signer.Verify(img) {
			r.stats.SignatureFails++
			r.stats.InstallRejects++
			return nil, fmt.Errorf("%w: image %q", ErrUnsigned, img.Name)
		}
	}
	if err := sfi.Verify(img); err != nil {
		r.stats.InstallRejects++
		return nil, fmt.Errorf("graft: image %q rejected by verifier: %w", img.Name, err)
	}
	entry := opts.Entry
	if entry == "" {
		entry = "main"
	}
	if _, err := img.Entry(entry); err != nil {
		r.stats.InstallRejects++
		return nil, err
	}
	if p.Kind == Function && p.grafted != nil {
		r.stats.InstallRejects++
		return nil, fmt.Errorf("%w: %q", ErrOccupied, pointName)
	}

	acct := opts.Account
	if acct == nil {
		acct = resource.NewAccount(fmt.Sprintf("graft:%s@%s", img.Name, pointName))
	}
	g := &Installed{
		Image:   img,
		Entry:   entry,
		Owner:   uid,
		Account: acct,
		Point:   p,
		Order:   opts.Order,
	}
	// Resource binding (§3.2): zero limits unless the installer
	// transfers or directs billing.
	installerAcct := ThreadAccount(t)
	if opts.BillInstaller {
		if installerAcct == nil {
			r.stats.InstallRejects++
			return nil, fmt.Errorf("graft: BillInstaller with no installer account")
		}
		if err := g.Account.BillTo(installerAcct); err != nil {
			r.stats.InstallRejects++
			return nil, err
		}
	}
	for kind, n := range opts.Transfer {
		if installerAcct == nil {
			r.stats.InstallRejects++
			return nil, fmt.Errorf("graft: Transfer with no installer account")
		}
		if err := installerAcct.Transfer(g.Account, kind, n); err != nil {
			r.stats.InstallRejects++
			return nil, err
		}
	}

	if err := r.link(g); err != nil {
		r.stats.InstallRejects++
		return nil, err
	}

	r.attach(g)
	r.stats.Installs++
	r.emit(trace.GraftInstall, pointName, fmt.Sprintf("image %q by uid %d", img.Name, uid))
	return g, nil
}

// link resolves the image's imports against the graft-callable list
// (rules 4 and 7 checked at link time) and builds the sandbox VM.
// Shared by Install and the durable-checkpoint importer.
func (r *Registry) link(g *Installed) error {
	img := g.Image
	kernelFns := make(map[string]sfi.KernelFunc, len(img.Symbols))
	for _, sym := range img.Symbols {
		fn, ok := r.callables[sym]
		if !ok {
			r.stats.LinkFails++
			return fmt.Errorf("%w: %q", ErrNotCallable, sym)
		}
		sym := sym
		kernelFns[sym] = func(vm *sfi.VM, args [5]int64) (int64, error) {
			ctx := &Ctx{Thread: g.curThread, Txn: r.txns.Current(g.curThread), Graft: g, VM: vm}
			res, err := fn(ctx, args)
			if err != nil {
				return 0, fmt.Errorf("%s: %w", sym, err)
			}
			return res, nil
		}
	}
	// Install-time translation: verified images are compiled to native
	// Go closures once per distinct image and shared across installs.
	// The interpreter remains the oracle (-translate=off / NoTranslate).
	var prog *sfi.Program
	if img.Safe && !r.NoTranslate {
		key := sfi.TranslationKey(img)
		if prog = r.transCache[key]; prog == nil {
			p, err := sfi.Translate(img)
			if err != nil {
				r.stats.LinkFails++
				return fmt.Errorf("graft: translate %q: %w", img.Name, err)
			}
			if r.transCache == nil {
				r.transCache = make(map[string]*sfi.Program)
			}
			r.transCache[key] = p
			prog = p
		}
	}
	vm, err := sfi.NewVM(img, sfi.Config{
		SegSize:   r.SegSize,
		KernelMem: r.KernelMem,
		Costs:     r.Costs,
		Kernel:    kernelFns,
		Program:   prog,
		Hook: func(cycles int64) {
			if g.curThread != nil {
				g.curThread.ChargeCycles(cycles)
			}
		},
	})
	if err != nil {
		return err
	}
	g.vm = vm
	return nil
}

// attach wires a linked graft into its point and the installed set.
func (r *Registry) attach(g *Installed) {
	p := g.Point
	switch p.Kind {
	case Function:
		p.grafted = g
	case Event:
		p.handlers = append(p.handlers, g)
		sort.SliceStable(p.handlers, func(i, j int) bool { return p.handlers[i].Order < p.handlers[j].Order })
	}
	r.installed[g] = true
	if r.meterAccounts == nil {
		r.meterAccounts = make(map[*resource.Account]bool)
	}
	r.meterAccounts[g.Account] = true
	r.stampMembership()
}

// Remove detaches a graft voluntarily (application teardown).
func (r *Registry) Remove(g *Installed) { r.remove(g) }

// RemoveGuardKey removes every installed graft whose guard key matches.
// Crash recovery uses it when the supervisor's verdict for the graft
// blamed for a kernel panic is expulsion: the ledger survives the
// restore, the graft does not. Returns the number of grafts removed.
func (r *Registry) RemoveGuardKey(key string) int {
	var victims []*Installed
	for g := range r.installed {
		if g.GuardKey() == key {
			victims = append(victims, g)
		}
	}
	// Map iteration order is random; removal emits trace events, so keep
	// the order deterministic.
	sort.Slice(victims, func(i, j int) bool { return victims[i].Order < victims[j].Order })
	for _, g := range victims {
		r.remove(g)
	}
	return len(victims)
}

func (r *Registry) remove(g *Installed) {
	if g.removed {
		return
	}
	g.removed = true
	delete(r.installed, g)
	r.stampMembership()
	p := g.Point
	if p.grafted == g {
		p.grafted = nil
	}
	for i, h := range p.handlers {
		if h == g {
			p.handlers = append(p.handlers[:i], p.handlers[i+1:]...)
			break
		}
	}
	p.stats.Removals++
	r.stats.Removals++
	r.emit(trace.GraftRemove, p.Name, fmt.Sprintf("image %q", g.Image.Name))
}

// Invoke runs a function graft point: the grafted implementation inside
// its transaction wrapper if present, the default otherwise. On abort
// the graft is forcibly removed and the default runs — "the kernel must
// be able to make progress even with a faulty graft in its path" (rule
// 9). The error return reports the abort reason for diagnostics even
// though a result is always produced.
//
// With a supervisor armed, the remove-on-abort policy is replaced by
// the escalation ladder: quarantined grafts are short-circuited here
// (the default serves the call without the graft running at all), and
// removal happens only on the supervisor's expel verdict.
func (p *Point) Invoke(t *sched.Thread, args ...int64) (int64, error) {
	p.stats.Invocations++
	if c := p.IndirectionCost; c > 0 {
		t.Charge(c)
	}
	g := p.grafted
	if g == nil {
		p.stats.DefaultCalls++
		return p.Default(t, args)
	}
	sup := p.reg.Supervisor
	probation := false
	if sup != nil {
		switch sup.Admit(g.GuardKey()) {
		case guard.Block:
			p.stats.DefaultCalls++
			return p.Default(t, args)
		case guard.RunProbation:
			probation = true
		}
	}
	// The dispatch crash models the graft corrupting the kernel as control
	// transfers into it, so it fires only once the supervisor has admitted
	// the call: a quarantined graft that never runs cannot panic dispatch.
	p.reg.Faults.MaybeCrash(crash.SiteDispatch, g.GuardKey())
	res, err := p.reg.invokeSupervised(t, g, probation, args)
	if err != nil {
		// Forcible removal: new invocations use normal kernel code.
		// (Supervised grafts are removed by the expel verdict instead.)
		if sup == nil && !p.KeepOnAbort {
			p.reg.remove(g)
		}
		p.stats.DefaultCalls++
		dres, derr := p.Default(t, args)
		if derr != nil {
			return dres, derr
		}
		return dres, err
	}
	return res, nil
}

// invokeSupervised wraps invokeGraft with the supervisor's outcome
// reporting: commit/abort counts, the classified abort cause, the
// abort's virtual-time cost, and removal on an expel verdict. With no
// supervisor it is invokeGraft verbatim.
func (r *Registry) invokeSupervised(t *sched.Thread, g *Installed, probation bool, args []int64) (int64, error) {
	sup := r.Supervisor
	if sup == nil {
		return r.invokeGraft(t, g, false, args)
	}
	// Harvest grant-window audit deltas into the health ledger on every
	// return path, including a panicking escalation: the ledger survives
	// crash recovery, so the audit trail of who used their grants does
	// too.
	defer r.harvestGrantAudit(g)
	undoBefore := r.txns.Stats().UndoPanics
	res, err := r.invokeGraft(t, g, probation, args)
	key := g.GuardKey()
	if err == nil {
		sup.RecordCommit(key)
		return res, nil
	}
	cause := abortCause(err, r.txns.Stats().UndoPanics > undoBefore)
	cost := r.txns.LastAbortDuration()
	if g.Point.NoTxn {
		cost = 0 // no transaction, no abort path to account
	}
	if sup.RecordAbort(key, cause, cost) == guard.VerdictExpel {
		r.remove(g)
	}
	return res, err
}

// harvestGrantAudit forwards the VM's per-region grant-window access
// counters to the supervisor as per-dispatch deltas (the VM counts for
// its whole lifetime; grantMark remembers what was already reported).
func (r *Registry) harvestGrantAudit(g *Installed) {
	sup := r.Supervisor
	if sup == nil || g.vm == nil {
		return
	}
	audits := g.vm.GrantAudits()
	if len(audits) == 0 {
		return
	}
	key := g.GuardKey()
	if g.grantMark == nil {
		g.grantMark = make(map[string][2]int64, len(audits))
	}
	for _, a := range audits {
		m := g.grantMark[a.Region]
		if dr, dw := a.Reads-m[0], a.Writes-m[1]; dr > 0 || dw > 0 {
			sup.RecordGrantAudit(key, a.Region, dr, dw)
		}
		g.grantMark[a.Region] = [2]int64{a.Reads, a.Writes}
	}
}

// abortCause buckets an abort reason. Undo panics and the watchdog are
// signals only this layer can see (the panic is absorbed by Abort, the
// sentinel lives here); everything else defers to txn.ClassifyAbort.
func abortCause(err error, undoPanicked bool) txn.AbortCause {
	if undoPanicked {
		return txn.CauseUndo
	}
	if errors.Is(err, ErrWatchdog) {
		return txn.CauseWatchdog
	}
	return txn.ClassifyAbort(err)
}

// invokeGraft is the wrapper stub of §3.1: begin transaction, swap
// resource accounts, arm the watchdog, run the sandboxed code, validate
// the result, commit. Probation invocations run under a watchdog
// tightened by the supervisor's policy.
func (r *Registry) invokeGraft(t *sched.Thread, g *Installed, probation bool, args []int64) (int64, error) {
	p := g.Point
	p.stats.GraftedCalls++
	if r.Faults.CrashArmed() {
		// A contained kernel panic escaping this dispatch (from commit,
		// abort or undo processing) is attributed to the graft whose
		// invocation was active when it struck.
		defer func() {
			if rec := recover(); rec != nil {
				if cp, ok := crash.IsPanic(rec); ok && cp.Graft == "" {
					cp.Graft = g.GuardKey()
				}
				panic(rec)
			}
		}()
	}
	if p.NoTxn {
		return r.invokeGraftUnprotected(t, g, args)
	}
	var result int64
	err := r.txns.Run(t, func(tx *txn.Txn) error {
		// The thread's limits are replaced by the graft's (§3.2).
		prevAcct := ThreadAccount(t)
		t.SetLocal(localAccount, g.Account)
		defer t.SetLocal(localAccount, prevAcct)

		// Forward-progress watchdog (§2.5).
		wd := p.Watchdog
		if wd <= 0 {
			wd = DefaultWatchdog
		}
		if probation {
			if n := r.Supervisor.Policy().WatchdogTighten; n > 1 {
				wd /= time.Duration(n)
			}
			if wd < time.Millisecond {
				wd = time.Millisecond
			}
		}
		running := true
		ev := r.clock.After(wd, func() {
			if running {
				r.stats.WatchdogFires++
				r.emit(trace.WatchdogFire, p.Name, wd.String())
				t.RequestAbort(fmt.Errorf("%w: %s after %v", ErrWatchdog, p.Name, wd))
			}
		})
		defer func() {
			running = false
			r.clock.Cancel(ev)
		}()

		prevThread := g.curThread
		g.curThread = t
		defer func() { g.curThread = prevThread }()

		// Kernel-state writes made on the graft's behalf — including the
		// PreGraft hook and accessor calls — land in its rollback domain,
		// so a scoped crash recovery can revert exactly this graft's
		// damage. Dispatch nests, hence the save/restore.
		prevOwner := crash.SetOwner(t, g.GuardKey())
		defer crash.SetOwner(t, prevOwner)

		// Shared-buffer grants are per-dispatch: whatever the PreGraft
		// hook (or a kernel callable) opened is revoked when this
		// dispatch returns, abort or commit, so a pointer the graft
		// cached in its heap is dead on the next invocation.
		defer g.vm.RevokeGrants()

		if p.PreGraft != nil {
			if err := p.PreGraft(t, tx, g, args); err != nil {
				return err
			}
		}
		res, err := g.vm.Call(g.Entry, args...)
		if err != nil {
			return err
		}
		if p.Validate != nil {
			res, err = p.Validate(t, args, res)
			if err != nil {
				p.stats.ValidationFail++
				return fmt.Errorf("%w: %v", ErrBadResult, err)
			}
		}
		result = res
		return nil
	})
	if err != nil {
		p.stats.Aborts++
		r.emit(trace.GraftAbort, p.Name, err.Error())
		if r.EscalateViolations && sfi.IsCompartmentViolation(err) {
			// The transaction has aborted (the graft's kernel-state
			// writes are already undone); what escalates is the breach
			// itself. The classified panic carries the guard key so
			// recovery scopes the rollback domain to this graft and
			// bills the ledger.
			panic(&crash.Panic{
				Class:  crash.SFIViolation,
				Site:   crash.SiteDispatch,
				Graft:  g.GuardKey(),
				Reason: err.Error(),
			})
		}
		return 0, err
	}
	p.stats.Commits++
	r.emit(trace.GraftCommit, p.Name, "")
	return result, nil
}

// invokeGraftUnprotected is the ablation counterfactual: the graft runs
// with no transaction around it. Accessor functions see no current
// transaction and push no undos; a failure reports an error but leaves
// every half-finished state change in place. It exists so the harness
// can demonstrate what the paper's mechanism prevents.
func (r *Registry) invokeGraftUnprotected(t *sched.Thread, g *Installed, args []int64) (res int64, err error) {
	p := g.Point
	defer func() {
		if rec := recover(); rec != nil {
			if sched.IsKill(rec) {
				panic(rec)
			}
			if a, ok := rec.(*sched.Abort); ok {
				err = a.Reason
			} else {
				err = fmt.Errorf("graft panic: %v", rec)
			}
			t.ClearAbort()
		}
		if err != nil {
			p.stats.Aborts++
			r.emit(trace.GraftAbort, p.Name, "UNPROTECTED: "+err.Error())
		} else {
			p.stats.Commits++
		}
	}()
	prevThread := g.curThread
	g.curThread = t
	defer func() { g.curThread = prevThread }()
	prevOwner := crash.SetOwner(t, g.GuardKey())
	defer crash.SetOwner(t, prevOwner)
	defer g.vm.RevokeGrants()
	res, err = g.vm.Call(g.Entry, args...)
	if err == nil && p.Validate != nil {
		res, err = p.Validate(t, args, res)
	}
	return res, err
}

// regSnap captures the registry's membership state: the point
// namespace and which grafts are installed where. Per-point and
// registry-wide counters are lifetime statistics and deliberately
// survive a restore (like the scheduler's), as does the supervisor's
// health ledger.
type regSnap struct {
	points    map[string]*Point
	installed []*Installed
	grafted   map[*Point]*Installed
	handlers  map[*Point][]*Installed
}

// CrashName implements crash.Snapshotter.
func (r *Registry) CrashName() string { return "grafts" }

// CrashSnapshot implements crash.Snapshotter.
func (r *Registry) CrashSnapshot() any {
	s := &regSnap{
		points:   make(map[string]*Point, len(r.points)),
		grafted:  make(map[*Point]*Installed, len(r.points)),
		handlers: make(map[*Point][]*Installed, len(r.points)),
	}
	for n, p := range r.points {
		s.points[n] = p
		s.grafted[p] = p.grafted
		s.handlers[p] = append([]*Installed(nil), p.handlers...)
	}
	for g := range r.installed {
		s.installed = append(s.installed, g)
	}
	return s
}

// CrashRestore implements crash.Snapshotter. Points registered and
// grafts installed after the checkpoint vanish (their handles fail
// closed via the removed flag); grafts removed after the checkpoint are
// reinstated — if the supervisor expelled one in the lost epoch the
// ledger still bars it at dispatch, so reinstatement cannot resurrect a
// banned graft's code path.
func (r *Registry) CrashRestore(snap any) {
	s := snap.(*regSnap)
	inSnap := make(map[*Installed]bool, len(s.installed))
	for _, g := range s.installed {
		inSnap[g] = true
	}
	for g := range r.installed {
		if !inSnap[g] {
			g.removed = true
			g.curThread = nil
		}
	}
	r.points = make(map[string]*Point, len(s.points))
	for n, p := range s.points {
		r.points[n] = p
	}
	r.installed = make(map[*Installed]bool, len(s.installed))
	for _, g := range s.installed {
		g.removed = false
		g.curThread = nil
		r.installed[g] = true
	}
	for p, g := range s.grafted {
		p.grafted = g
	}
	for p, hs := range s.handlers {
		p.handlers = append([]*Installed(nil), hs...)
	}
}

// CrashDelta implements crash.DeltaSnapshotter: membership only moves
// on point registration and graft install/remove, so a quiet registry
// reports nil and the checkpoint keeps the previous image. A changed
// registry snapshots in full — membership is interlinked (points ↔
// installed ↔ handlers) and far smaller than file or page state.
func (r *Registry) CrashDelta(sinceGen uint64) any {
	if r.GenSource != nil && r.modGen <= sinceGen {
		return nil
	}
	return r.CrashSnapshot()
}

// CrashMerge implements crash.DeltaSnapshotter: a non-nil delta is a
// full image and replaces the base.
func (r *Registry) CrashMerge(base, delta any) any { return delta }

// graftRecord is one installed graft's durable image: the signed image
// bytes, its binding (point, entry, owner, order) and its resource
// account's identity and limits. Usage is not exported — checkpoints
// persist at quiescent points where the fleet driver has reaped every
// outstanding charge, and a rebooted graft starts with a clean meter.
// A BillTo redirection is identity to a process account that died with
// the machine and is dropped.
type graftRecord struct {
	Point   string
	Image   []byte
	Unsafe  bool
	Entry   string
	Owner   int64
	Order   int
	Account string
	Limits  map[resource.Kind]int64
}

// registryExport is the graft registry's durable image.
type registryExport struct {
	Grafts []graftRecord
}

// pendingGraft is a decoded graft import waiting for its point to be
// re-registered by the owning subsystem.
type pendingGraft struct {
	point string
	img   *sfi.Image
	entry string
	owner UID
	order int
	acct  *resource.Account
}

// CrashExport implements crash.Exporter: every installed graft is
// serialised with its signed image, in deterministic (point, order,
// image) order.
func (r *Registry) CrashExport() ([]byte, error) {
	grafts := make([]*Installed, 0, len(r.installed))
	for g := range r.installed {
		grafts = append(grafts, g)
	}
	sort.Slice(grafts, func(i, j int) bool {
		a, b := grafts[i], grafts[j]
		if a.Point.Name != b.Point.Name {
			return a.Point.Name < b.Point.Name
		}
		if a.Order != b.Order {
			return a.Order < b.Order
		}
		return a.Image.Name < b.Image.Name
	})
	ex := &registryExport{}
	for _, g := range grafts {
		rec := graftRecord{
			Point:   g.Point.Name,
			Entry:   g.Entry,
			Owner:   int64(g.Owner),
			Order:   g.Order,
			Account: g.Account.Name(),
			Limits:  make(map[resource.Kind]int64),
		}
		if g.Image.Safe {
			rec.Image = g.Image.EncodeSigned()
		} else {
			rec.Image = g.Image.Encode()
			rec.Unsafe = true
		}
		for _, kind := range g.Account.Kinds() {
			if n := g.Account.Limit(kind); n != 0 {
				rec.Limits[kind] = n
			}
		}
		ex.Grafts = append(ex.Grafts, rec)
	}
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(ex)
	return buf.Bytes(), err
}

// CrashImport implements crash.Exporter. Each record's image is decoded
// and its signature re-verified exactly as at first install. Grafts
// whose points already exist (registered by subsystems that initialise
// before the import) are re-linked immediately; the rest wait on the
// pending list until RegisterPoint re-creates their point — the fs,
// vmm and netstk importers run after this one and re-register points
// through their normal creation paths, flushing the matches. Grafts
// that share a resource account (a tenant's) share it again after
// import.
func (r *Registry) CrashImport(data []byte) error {
	var ex registryExport
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&ex); err != nil {
		return err
	}
	accts := make(map[string]*resource.Account)
	for _, rec := range ex.Grafts {
		var img *sfi.Image
		var err error
		if rec.Unsafe {
			if !r.UnsafeAllowed {
				r.stats.InstallRejects++
				continue
			}
			img, err = sfi.Decode(rec.Image)
		} else {
			img, err = sfi.DecodeSigned(rec.Image)
		}
		if err != nil {
			return fmt.Errorf("graft: import %q at %q: %w", rec.Account, rec.Point, err)
		}
		if !rec.Unsafe {
			if !r.signer.Verify(img) {
				r.stats.SignatureFails++
				r.stats.InstallRejects++
				continue
			}
			if err := sfi.Verify(img); err != nil {
				r.stats.InstallRejects++
				continue
			}
		}
		acct, ok := accts[rec.Account]
		if !ok {
			acct = resource.NewAccount(rec.Account)
			for kind, n := range rec.Limits {
				acct.SetLimit(kind, n)
			}
			accts[rec.Account] = acct
		}
		pg := &pendingGraft{
			point: rec.Point,
			img:   img,
			entry: rec.Entry,
			owner: UID(rec.Owner),
			order: rec.Order,
			acct:  acct,
		}
		if p, ok := r.points[pg.point]; ok {
			r.importInstall(p, pg)
		} else {
			r.pending = append(r.pending, pg)
		}
	}
	return nil
}

// importInstall re-links one imported graft at its (re-created) point.
// A graft that no longer links — a callable absent from this kernel, or
// a supervisor bar carried over — is dropped, exactly as a reboot drops
// an extension whose kernel interface vanished.
func (r *Registry) importInstall(p *Point, pg *pendingGraft) {
	if sup := r.Supervisor; sup != nil && sup.Barred(guardKey(p.Name, pg.img.Name)) {
		r.stats.InstallRejects++
		return
	}
	if p.Kind == Function && p.grafted != nil {
		r.stats.InstallRejects++
		return
	}
	g := &Installed{
		Image:   pg.img,
		Entry:   pg.entry,
		Owner:   pg.owner,
		Account: pg.acct,
		Point:   p,
		Order:   pg.order,
	}
	if err := r.link(g); err != nil {
		r.stats.InstallRejects++
		return
	}
	r.attach(g)
	r.stats.Installs++
	r.emit(trace.GraftInstall, p.Name, fmt.Sprintf("restored image %q by uid %d", pg.img.Name, pg.owner))
}

// flushPending installs every pending graft import waiting on the
// just-registered point, preserving export order.
func (r *Registry) flushPending(p *Point) {
	if len(r.pending) == 0 {
		return
	}
	var rest []*pendingGraft
	for _, pg := range r.pending {
		if pg.point == p.Name {
			r.importInstall(p, pg)
		} else {
			rest = append(rest, pg)
		}
	}
	r.pending = rest
}

// RebindAccount points every installed graft whose resource account
// carries the given name at acct instead, returning how many grafts
// were rebound. After a durable restore the importer has given restored
// grafts fresh account objects; the tenant layer uses this to splice
// its own live account back in, so tenant-level enforcement continues
// across an instance replacement.
func (r *Registry) RebindAccount(name string, acct *resource.Account) int {
	n := 0
	for g := range r.installed {
		if g.Account.Name() == name && g.Account != acct {
			g.Account = acct
			if r.meterAccounts == nil {
				r.meterAccounts = make(map[*resource.Account]bool)
			}
			r.meterAccounts[acct] = true
			n++
		}
	}
	return n
}

// Trigger fires an event point: for each installed handler, in order, a
// worker thread is spawned that runs the handler inside a transaction
// (§3.5). Misbehaving handlers are removed exactly like function grafts.
// Trigger returns immediately; the workers run under the scheduler.
func (p *Point) Trigger(s *sched.Scheduler, args ...int64) int {
	if p.Kind != Event {
		panic(fmt.Sprintf("graft: Trigger on function point %q", p.Name))
	}
	p.stats.Invocations++
	n := 0
	for _, g := range p.Handlers() {
		g := g
		n++
		s.Spawn(fmt.Sprintf("event:%s", p.Name), func(t *sched.Thread) {
			// The worker runs with the graft owner's identity.
			SetThreadIdentity(t, g.Owner, g.Account)
			if g.removed {
				return
			}
			sup := p.reg.Supervisor
			probation := false
			if sup != nil {
				switch sup.Admit(g.GuardKey()) {
				case guard.Block:
					return
				case guard.RunProbation:
					probation = true
				}
			}
			if _, err := p.reg.invokeSupervised(t, g, probation, args); err != nil && sup == nil {
				p.reg.remove(g)
			}
		})
	}
	return n
}
