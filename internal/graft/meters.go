// Resource-meter checkpointing. Graft resource charges are physical
// events on accounts shared across grafts (tenant accounts in
// particular): a socket held from accept to teardown, kernel heap held
// from allocation to undo. A contained kernel panic can strike between
// the charge and its release — mid-accept, or inside the abort
// processing that would have run the undo log — and a whole-kernel
// restore rewinds every subsystem's state but, without this file, not
// the meters, stranding the charge forever. The Meters snapshotter
// makes the balances part of the checkpoint image: capture records
// every install-bound account's balances, restore rewinds them to the
// same instant as everything else, so a charge and its owning state
// always travel together.
package graft

import "vino/internal/resource"

// Meters checkpoints the balances of every account bound to a graft
// install. Register it with the crash manager after the Registry so
// restores rewind membership first, meters second.
type Meters struct{ reg *Registry }

// NewMeters returns the registry's meter snapshotter.
func NewMeters(r *Registry) *Meters { return &Meters{reg: r} }

// CrashName implements crash.Snapshotter.
func (m *Meters) CrashName() string { return "graft-meters" }

// CrashSnapshot implements crash.Snapshotter: a deep copy of every
// install-bound account's balances. Always a full capture — the set is
// small and balances churn every round, so delta tracking would buy
// nothing.
func (m *Meters) CrashSnapshot() any {
	snaps := make(map[*resource.Account]*resource.AccountSnap, len(m.reg.meterAccounts))
	for a := range m.reg.meterAccounts {
		snaps[a] = a.Snapshot()
	}
	return snaps
}

// CrashRestore implements crash.Snapshotter. Accounts first bound after
// the checkpoint are absent from the snapshot and keep their balances:
// the restore also removes the grafts that bound them, so the charges
// are written off with their owner (shared tenant accounts are in the
// snapshot from their first install onward).
func (m *Meters) CrashRestore(snap any) {
	for a, s := range snap.(map[*resource.Account]*resource.AccountSnap) {
		a.RestoreSnapshot(s)
	}
}
