package graft

// Edge cases of the §3.2 resource-binding machinery: several installers
// pooling grants into one shared graft account, a transfer the donor
// cannot cover, the dispatch-time account swap across nested graft
// dispatch, and the abort path refunding a charge when an injected
// fault kills the invocation after the allocation succeeded.

import (
	"errors"
	"testing"

	"vino/internal/fault"
	"vino/internal/resource"
	"vino/internal/sched"
	"vino/internal/trace"
)

// registerAlloc installs the standard transactional allocator callable:
// charge the dispatching account, refund on abort via the undo log.
func registerAlloc(e *env) {
	e.reg.RegisterCallable("test.alloc", func(ctx *Ctx, args [5]int64) (int64, error) {
		n := args[0]
		acct := ctx.Account()
		if err := acct.Charge(resource.KernelHeap, n); err != nil {
			return 0, err
		}
		if ctx.Txn != nil {
			ctx.Txn.PushUndo("alloc", func() { acct.Release(resource.KernelHeap, n) })
		}
		return 0, nil
	})
}

const alloc4kSrc = `
.name alloc4k
.import test.alloc
.func main
main:
    movi r1, 4096
    callk test.alloc
    movi r0, 1
    ret
`

// TestMultiInstallerPooling: two installers each fund the same shared
// account at install time. The pool's limit is the sum of the
// transfers, either graft's allocations draw it down, and exhaustion is
// scoped to the pool — the donors keep what they didn't give.
func TestMultiInstallerPooling(t *testing.T) {
	e := newEnv()
	registerAlloc(e)
	pa := e.reg.RegisterPoint(newFnPoint("pa"))
	pb := e.reg.RegisterPoint(newFnPoint("pb"))
	img := e.buildSafe(t, alloc4kSrc)
	pool := resource.NewAccount("tenant-pool")

	run := func(name string, uid UID, body func(th *sched.Thread, acct *resource.Account)) *resource.Account {
		acct := resource.NewAccount(name)
		acct.SetLimit(resource.KernelHeap, 8192)
		e.s.Spawn(name, func(th *sched.Thread) {
			SetThreadIdentity(th, uid, acct)
			body(th, acct)
		})
		return acct
	}
	a := run("installer-a", 100, func(th *sched.Thread, _ *resource.Account) {
		if _, err := e.reg.Install(th, "pa", img, InstallOptions{
			Account:  pool,
			Transfer: map[resource.Kind]int64{resource.KernelHeap: 6000},
		}); err != nil {
			t.Errorf("installer-a: %v", err)
		}
	})
	b := run("installer-b", 101, func(th *sched.Thread, _ *resource.Account) {
		if _, err := e.reg.Install(th, "pb", img, InstallOptions{
			Account:  pool,
			Transfer: map[resource.Kind]int64{resource.KernelHeap: 4000},
		}); err != nil {
			t.Errorf("installer-b: %v", err)
		}
	})
	if err := e.s.Run(); err != nil {
		t.Fatalf("install phase: %v", err)
	}
	if got := pool.Limit(resource.KernelHeap); got != 10000 {
		t.Fatalf("pooled limit = %d, want 6000+4000", got)
	}
	if a.Limit(resource.KernelHeap) != 2192 || b.Limit(resource.KernelHeap) != 4192 {
		t.Fatalf("donor limits = %d/%d, want 2192/4192",
			a.Limit(resource.KernelHeap), b.Limit(resource.KernelHeap))
	}

	// Both grafts draw from the pool; the third 4 KiB allocation busts
	// it (8192+4096 > 10000) and aborts only the graft that asked.
	e.run(t, 100, func(th *sched.Thread, procAcct *resource.Account) {
		if res, err := pa.Invoke(th, 0); err != nil || res != 1 {
			t.Fatalf("pa: res=%d err=%v", res, err)
		}
		if res, err := pb.Invoke(th, 0); err != nil || res != 1 {
			t.Fatalf("pb: res=%d err=%v", res, err)
		}
		if got := pool.Used(resource.KernelHeap); got != 8192 {
			t.Fatalf("pool used = %d, want 8192", got)
		}
		var le *resource.LimitError
		if res, err := pa.Invoke(th, 0); !errors.As(err, &le) {
			t.Fatalf("pool bust: res=%d err=%v, want LimitError", res, err)
		}
		// The failed charge refunded; the survivors' charges stand.
		if got := pool.Used(resource.KernelHeap); got != 8192 {
			t.Fatalf("pool used after bust = %d, want 8192", got)
		}
		if procAcct.Used(resource.KernelHeap) != 0 {
			t.Error("pool charge leaked onto the invoking process account")
		}
	})
}

// TestTransferExceedingDonorFailsInstall: an install whose Transfer
// asks for more than the donor's remaining (unused and untransferred)
// grant is rejected, and neither account is left mutated.
func TestTransferExceedingDonorFailsInstall(t *testing.T) {
	e := newEnv()
	e.reg.RegisterPoint(newFnPoint("p"))
	img := e.buildSafe(t, doubleSrc)
	pool := resource.NewAccount("pool")
	acct := resource.NewAccount("donor")
	acct.SetLimit(resource.KernelHeap, 1000)
	e.s.Spawn("donor", func(th *sched.Thread) {
		SetThreadIdentity(th, 100, acct)
		// Spend part of the grant: remaining headroom is 1000-600=400.
		if err := acct.Charge(resource.KernelHeap, 600); err != nil {
			t.Errorf("setup charge: %v", err)
		}
		_, err := e.reg.Install(th, "p", img, InstallOptions{
			Account:  pool,
			Transfer: map[resource.Kind]int64{resource.KernelHeap: 500},
		})
		var le *resource.LimitError
		if !errors.As(err, &le) {
			t.Errorf("over-transfer install err = %v, want LimitError", err)
		}
	})
	if err := e.s.Run(); err != nil {
		t.Fatal(err)
	}
	if got := acct.Limit(resource.KernelHeap); got != 1000 {
		t.Errorf("donor limit = %d after failed transfer, want 1000", got)
	}
	if got := pool.Limit(resource.KernelHeap); got != 0 {
		t.Errorf("pool limit = %d after failed transfer, want 0", got)
	}
	if e.reg.Stats().Installs != 0 {
		t.Error("install counted despite transfer failure")
	}
}

// TestAccountSwapAcrossNestedDispatch: dispatch replaces the thread's
// account with the graft's for exactly the span of that dispatch. When
// graft A's invocation triggers graft B's point, B's allocations land
// on B's account, A's continue to land on A's after B returns, and the
// process account never sees either.
func TestAccountSwapAcrossNestedDispatch(t *testing.T) {
	e := newEnv()
	registerAlloc(e)
	inner := e.reg.RegisterPoint(newFnPoint("inner"))
	outer := e.reg.RegisterPoint(newFnPoint("outer"))
	e.reg.RegisterCallable("test.call_inner", func(ctx *Ctx, args [5]int64) (int64, error) {
		return inner.Invoke(ctx.Thread, args[0])
	})
	innerImg := e.buildSafe(t, `
.name inner-alloc
.import test.alloc
.func main
main:
    movi r1, 256
    callk test.alloc
    movi r0, 1
    ret
`)
	outerImg := e.buildSafe(t, `
.name outer-alloc
.import test.alloc
.import test.call_inner
.func main
main:
    movi r1, 1024
    callk test.alloc      ; on the outer account
    callk test.call_inner ; swap to the inner account and back
    movi r1, 1024
    callk test.alloc      ; back on the outer account
    movi r0, 1
    ret
`)
	e.run(t, 1, func(th *sched.Thread, procAcct *resource.Account) {
		gi, err := e.reg.Install(th, "inner", innerImg, InstallOptions{
			Transfer: map[resource.Kind]int64{resource.KernelHeap: 512},
		})
		if err != nil {
			t.Fatal(err)
		}
		go_, err := e.reg.Install(th, "outer", outerImg, InstallOptions{
			Transfer: map[resource.Kind]int64{resource.KernelHeap: 4096},
		})
		if err != nil {
			t.Fatal(err)
		}
		procBefore := procAcct.Used(resource.KernelHeap)
		if res, err := outer.Invoke(th, 0); err != nil || res != 1 {
			t.Fatalf("outer: res=%d err=%v", res, err)
		}
		if got := gi.Account.Used(resource.KernelHeap); got != 256 {
			t.Errorf("inner account used = %d, want 256", got)
		}
		if got := go_.Account.Used(resource.KernelHeap); got != 2048 {
			t.Errorf("outer account used = %d, want 1024 before + 1024 after nest", got)
		}
		if procAcct.Used(resource.KernelHeap) != procBefore {
			t.Error("nested dispatch charged the process account")
		}
		// The swap restored correctly after the nest: the thread-local
		// account is the process's again once dispatch unwinds.
		if ThreadAccount(th) != procAcct {
			t.Error("thread account not restored after nested dispatch")
		}
	})
}

// TestRefundOnAbortUnderInjectedFault: the graft's allocation succeeds,
// then an injected mid-stream I/O fault aborts the invocation. Abort
// processing must run the undo log and refund the charge — the account
// ends the episode exactly where it started.
func TestRefundOnAbortUnderInjectedFault(t *testing.T) {
	e := newEnv()
	registerAlloc(e)
	plan := &fault.Plan{Rules: []fault.Rule{{Class: fault.NetIO, EveryN: 1}}}
	e.reg.Faults = fault.NewInjector(plan, e.s.Clock(), trace.New(64))
	e.reg.RegisterCallable("test.read", func(ctx *Ctx, args [5]int64) (int64, error) {
		return 0, e.reg.Faults.NetRead(args[0])
	})
	p := e.reg.RegisterPoint(newFnPoint("p"))
	img := e.buildSafe(t, `
.name alloc-then-read
.import test.alloc
.import test.read
.func main
main:
    movi r1, 4096
    callk test.alloc
    movi r1, 1
    callk test.read   ; injected fault fires here, after the charge
    movi r0, 1
    ret
`)
	e.run(t, 1, func(th *sched.Thread, _ *resource.Account) {
		g, err := e.reg.Install(th, "p", img, InstallOptions{
			Transfer: map[resource.Kind]int64{resource.KernelHeap: 8192},
		})
		if err != nil {
			t.Fatal(err)
		}
		res, ierr := p.Invoke(th, 0)
		if ierr == nil {
			t.Fatalf("invocation survived the injected fault: res=%d", res)
		}
		if !errors.Is(ierr, fault.ErrInjected) {
			t.Fatalf("abort reason = %v, want the injected fault", ierr)
		}
		if got := g.Account.Used(resource.KernelHeap); got != 0 {
			t.Errorf("account used = %d after abort, want 0 (charge refunded)", got)
		}
		if got := g.Account.Limit(resource.KernelHeap); got != 8192 {
			t.Errorf("account limit = %d after abort, want the transferred 8192", got)
		}
	})
	if e.reg.Faults.Fired() == 0 {
		t.Fatal("injected fault never fired")
	}
}
