package kernel

import (
	"errors"
	"strings"
	"testing"
	"time"

	"vino/internal/fault"
	"vino/internal/graft"
	"vino/internal/guard"
	"vino/internal/lock"
	"vino/internal/sched"
	"vino/internal/trace"
)

// flakySrc misbehaves on demand: a non-zero argument spins until the
// watchdog aborts the invocation, a zero argument returns 7.
const flakySrc = `
.name flaky
.func main
main:
    jz r1, good
spin:
    jmp spin
good:
    movi r0, 7
    ret
`

func newGuardedKernel(pol guard.Policy) (*Kernel, *graft.Point) {
	k := New(Config{ZeroTxnCosts: true, GuardPolicy: &pol})
	pt := k.Grafts.RegisterPoint(&graft.Point{
		Name: "obj.fn",
		Kind: graft.Function,
		Default: func(t *sched.Thread, args []int64) (int64, error) {
			return -1, nil
		},
		Watchdog: 8 * time.Millisecond,
	})
	return k, pt
}

func TestGuardLifecycleQuarantineExpel(t *testing.T) {
	k, pt := newGuardedKernel(guard.DefaultPolicy())
	pol := k.Guard.Policy()
	k.SpawnProcess("app", 7, func(proc *Process) {
		g, err := proc.BuildAndInstall("obj.fn", flakySrc, graft.InstallOptions{})
		if err != nil {
			t.Errorf("install: %v", err)
			return
		}
		key := g.GuardKey()

		// Phase 1: misbehave until the streak quarantines the graft.
		for i := 0; i < pol.QuarantineStreak; i++ {
			res, err := pt.Invoke(proc.Thread, 1)
			if err == nil || res != -1 {
				t.Errorf("abort %d: res=%d err=%v, want default -1 with error", i, res, err)
			}
		}
		if st, _ := k.Guard.StateOf(key); st != guard.Quarantined {
			t.Errorf("state after streak: %v, want quarantined", st)
		}
		h, _ := k.Guard.Health(key)
		if h.AbortsByCause[0] != 0 && h.Aborts != int64(pol.QuarantineStreak) {
			t.Errorf("ledger: %+v", h)
		}
		if g.Removed() {
			t.Error("quarantined graft was removed; supervisor should keep it installed")
		}

		// Phase 2: quarantined invocations short-circuit to the default
		// without running (or aborting) the graft.
		res, err := pt.Invoke(proc.Thread, 1)
		if err != nil || res != -1 {
			t.Errorf("blocked invoke: res=%d err=%v, want (-1, nil)", res, err)
		}
		h2, _ := k.Guard.Health(key)
		if h2.Aborts != h.Aborts {
			t.Error("blocked invocation still ran the graft")
		}
		if h2.ShortCircuits == 0 {
			t.Error("short circuit not accounted")
		}

		// Phase 3: sleep past the backoff; the graft is reinstated on
		// probation and a clean call goes through the graft again.
		if wait := h2.QuarantineEnd - k.Clock.Now(); wait > 0 {
			proc.Thread.Sleep(wait + time.Millisecond)
		}
		res, err = pt.Invoke(proc.Thread, 0)
		if err != nil || res != 7 {
			t.Errorf("probation invoke: res=%d err=%v, want (7, nil)", res, err)
		}
		if st, _ := k.Guard.StateOf(key); st != guard.Probation {
			t.Errorf("state: %v, want probation", st)
		}

		// Phase 4: probation runs under a tightened watchdog
		// (8ms / WatchdogTighten=4 → 2ms) and a relapse streak expels
		// the graft permanently.
		if _, err := pt.Invoke(proc.Thread, 1); err == nil {
			t.Error("probation misbehavior did not abort")
		}
		tightened := false
		for _, ev := range k.Trace.Filter(trace.WatchdogFire) {
			if ev.Detail == "2ms" {
				tightened = true
			}
		}
		if !tightened {
			t.Errorf("no 2ms watchdog fire in trace: %v", k.Trace.Filter(trace.WatchdogFire))
		}
		if _, err := pt.Invoke(proc.Thread, 1); err == nil {
			t.Error("relapse abort missing")
		}
		if st, _ := k.Guard.StateOf(key); st != guard.Expelled {
			t.Errorf("state: %v, want expelled", st)
		}
		if !g.Removed() {
			t.Error("expelled graft not removed")
		}

		// Phase 5: expulsion is permanent — reinstall is refused and the
		// point serves the base path.
		if _, err := proc.BuildAndInstall("obj.fn", flakySrc, graft.InstallOptions{}); !errors.Is(err, graft.ErrExpelled) {
			t.Errorf("reinstall after expulsion: %v, want ErrExpelled", err)
		}
		res, err = pt.Invoke(proc.Thread, 1)
		if err != nil || res != -1 {
			t.Errorf("post-expulsion invoke: res=%d err=%v, want (-1, nil)", res, err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for _, kind := range []trace.Kind{trace.GraftQuarantine, trace.GraftProbation, trace.GraftExpel} {
		if len(k.Trace.Filter(kind)) == 0 {
			t.Errorf("trace kind %q missing", kind)
		}
	}
}

func TestGuardProbationClears(t *testing.T) {
	k, pt := newGuardedKernel(guard.DefaultPolicy())
	pol := k.Guard.Policy()
	k.SpawnProcess("app", 7, func(proc *Process) {
		g, err := proc.BuildAndInstall("obj.fn", flakySrc, graft.InstallOptions{})
		if err != nil {
			t.Errorf("install: %v", err)
			return
		}
		key := g.GuardKey()
		for i := 0; i < pol.QuarantineStreak; i++ {
			pt.Invoke(proc.Thread, 1)
		}
		h, _ := k.Guard.Health(key)
		if wait := h.QuarantineEnd - k.Clock.Now(); wait > 0 {
			proc.Thread.Sleep(wait + time.Millisecond)
		}
		// The graft behaves on probation: after ProbationCommits clean
		// calls it is healthy again with a full abort budget.
		for i := 0; i < pol.ProbationCommits; i++ {
			if res, err := pt.Invoke(proc.Thread, 0); err != nil || res != 7 {
				t.Errorf("probation commit %d: res=%d err=%v", i, res, err)
			}
		}
		if st, _ := k.Guard.StateOf(key); st != guard.Healthy {
			t.Errorf("state after served probation: %v, want healthy", st)
		}
		if _, err := pt.Invoke(proc.Thread, 1); err == nil {
			t.Error("expected abort")
		}
		if st, _ := k.Guard.StateOf(key); st == guard.Quarantined || st == guard.Expelled {
			t.Errorf("single abort after recovery escalated to %v", st)
		}
		if g.Removed() {
			t.Error("graft removed despite recovery")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestGuardClassifiesHoardAbort(t *testing.T) {
	// A lock hoard aborts via the lock class time-out; the supervisor's
	// ledger must bucket it as lock-timeout, not watchdog.
	pol := guard.DefaultPolicy()
	k := New(Config{GuardPolicy: &pol, FaultPlan: fault.NewPlan(1, nil, 0)})
	pt := k.Grafts.RegisterPoint(&graft.Point{
		Name: "obj.fn",
		Kind: graft.Function,
		Default: func(t *sched.Thread, args []int64) (int64, error) {
			return -1, nil
		},
		Watchdog: 200 * time.Millisecond, // stay out of the lock timeout's way
	})
	var key string
	k.SpawnProcess("app", 7, func(proc *Process) {
		g, err := proc.BuildAndInstall("obj.fn", fault.GraftSource(fault.GraftHoard), graft.InstallOptions{})
		if err != nil {
			t.Errorf("install: %v", err)
			return
		}
		key = g.GuardKey()
		if _, err := pt.Invoke(proc.Thread); err == nil {
			t.Error("hoard did not abort")
		}
	})
	// A contender makes the hoarded lock's class time-out arm: the hog's
	// transaction is aborted with a lock.TimeoutError.
	k.SpawnProcess("contender", 8, func(proc *Process) {
		hoard := k.FaultHoardLock()
		for i := 0; i < 500 && hoard.HolderCount() == 0; i++ {
			proc.Thread.Sleep(time.Millisecond)
		}
		hoard.Acquire(proc.Thread, lock.Exclusive)
		_ = hoard.Release(proc.Thread)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	h, ok := k.Guard.Health(key)
	if !ok {
		t.Fatal("no ledger entry")
	}
	var lockTimeouts int64
	for cause, n := range h.AbortsByCause {
		if strings.Contains(cause.String(), "lock") {
			lockTimeouts += n
		}
	}
	if lockTimeouts != 1 {
		t.Errorf("lock-timeout bucket = %d (ledger %v)", lockTimeouts, h.AbortsByCause)
	}
	if h.AbortCost <= 0 {
		t.Errorf("abort cost not accounted: %v", h.AbortCost)
	}
}
