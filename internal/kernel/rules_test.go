package kernel

// rules_test exercises each of the paper's Table 1 "Rules for Grafting"
// end-to-end against the assembled kernel. Each test names the rule it
// certifies.

import (
	"errors"
	"strings"
	"testing"
	"time"

	"vino/internal/graft"
	"vino/internal/lock"
	"vino/internal/resource"
	"vino/internal/sched"
	"vino/internal/sfi"
)

func registerEchoPoint(k *Kernel, name string) *graft.Point {
	return k.Grafts.RegisterPoint(&graft.Point{
		Name:    name,
		Kind:    graft.Function,
		Default: func(t *sched.Thread, args []int64) (int64, error) { return -1, nil },
	})
}

// Rule 1: grafts must be preemptible. A spinning graft must not starve
// other threads: a bystander makes progress while the graft burns its
// watchdog budget.
func TestRule1GraftsPreemptible(t *testing.T) {
	k := newTestKernel()
	pt := registerEchoPoint(k, "obj.fn")
	pt.Watchdog = 200 * time.Millisecond
	bystanderTurns := 0
	graftDone := false
	k.SpawnProcess("grafter", 7, func(p *Process) {
		if _, err := p.BuildAndInstall("obj.fn", `
.name spinner
.func main
main:
    jmp main
`, graft.InstallOptions{}); err != nil {
			t.Errorf("install: %v", err)
			return
		}
		_, _ = pt.Invoke(p.Thread)
		graftDone = true
	})
	k.SpawnProcess("bystander", 8, func(p *Process) {
		for !graftDone {
			bystanderTurns++
			p.Thread.Charge(time.Millisecond)
			p.Thread.Yield()
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if bystanderTurns < 5 {
		t.Fatalf("bystander ran %d turns during graft spin; graft not preemptible", bystanderTurns)
	}
}

// Rule 2: grafts cannot hold kernel locks for excessive periods. The
// lock(resourceA); while(1) fragment from §2.2, end to end: the holder's
// transaction aborts, the lock frees, the contender proceeds.
func TestRule2NoLockHoarding(t *testing.T) {
	k := newTestKernel()
	resourceA := k.Locks.NewLock("resourceA", &lock.Class{Name: "res", Timeout: 30 * time.Millisecond})
	k.Grafts.RegisterCallable("test.lock_a", func(ctx *graft.Ctx, args [5]int64) (int64, error) {
		ctx.Txn.AcquireLock(resourceA, lock.Exclusive)
		return 0, nil
	})
	pt := registerEchoPoint(k, "obj.fn")
	pt.Watchdog = 10 * time.Second // let the lock time-out act first
	contenderGot := false
	var graftErr error
	k.SpawnProcess("hog", 7, func(p *Process) {
		if _, err := p.BuildAndInstall("obj.fn", `
.name lock-hog
.import test.lock_a
.func main
main:
    callk test.lock_a
spin:
    jmp spin
`, graft.InstallOptions{}); err != nil {
			t.Errorf("install: %v", err)
			return
		}
		_, graftErr = pt.Invoke(p.Thread)
	})
	k.SpawnProcess("contender", 8, func(p *Process) {
		p.Thread.Charge(2 * time.Millisecond)
		resourceA.Acquire(p.Thread, lock.Exclusive)
		contenderGot = true
		_ = resourceA.Release(p.Thread)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !contenderGot {
		t.Fatal("contender never got resourceA")
	}
	var te *lock.TimeoutError
	if !errors.As(graftErr, &te) {
		t.Fatalf("graft error = %v, want lock TimeoutError", graftErr)
	}
}

// Rule 2 (quantity-constrained): a graft cannot consume resources beyond
// its account.
func TestRule2QuantityLimits(t *testing.T) {
	k := newTestKernel()
	pt := registerEchoPoint(k, "obj.fn")
	k.SpawnProcess("greedy", 7, func(p *Process) {
		if _, err := p.BuildAndInstall("obj.fn", `
.name gobbler
.import vino.kheap_alloc
.func main
main:
    movi r1, 4096
loop:
    callk vino.kheap_alloc
    jmp loop
`, graft.InstallOptions{
			Transfer: map[resource.Kind]int64{resource.KernelHeap: 64 << 10},
		}); err != nil {
			t.Errorf("install: %v", err)
			return
		}
		_, err := pt.Invoke(p.Thread)
		var le *resource.LimitError
		if !errors.As(err, &le) {
			t.Errorf("err = %v, want LimitError", err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

// Rule 3: grafts cannot access memory they were not granted. The
// SFI-rewritten graft's stray writes land in its own segment; simulated
// kernel memory stays intact.
func TestRule3MemoryIsolation(t *testing.T) {
	k := newTestKernel()
	pt := registerEchoPoint(k, "obj.fn")
	var g *graft.Installed
	k.SpawnProcess("scribbler", 7, func(p *Process) {
		var err error
		g, err = p.BuildAndInstall("obj.fn", `
.name scribbler
.func main
main:
    movi r1, 0        ; kernel address 0
    movi r2, 0x41
    movi r3, 2048
loop:
    stb [r1+0], r2
    addi r1, r1, 1
    addi r3, r3, -1
    jnz r3, loop
    movi r0, 0
    ret
`, graft.InstallOptions{})
		if err != nil {
			t.Errorf("install: %v", err)
			return
		}
		kmem := g.VM().KernelMemory()
		for i := range kmem {
			kmem[i] = 0xEE
		}
		if _, err := pt.Invoke(p.Thread); err != nil {
			t.Errorf("sandboxed scribble aborted: %v", err)
		}
		for i, b := range kmem {
			if b != 0xEE {
				t.Errorf("kernel memory corrupted at %d", i)
				return
			}
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

// Rules 4 and 7: grafts can call only graft-callable functions, and the
// callable list excludes functions returning unchecked private data.
// Link-time rejection is the enforcement point.
func TestRules4And7CallableList(t *testing.T) {
	k := newTestKernel()
	registerEchoPoint(k, "obj.fn")
	k.SpawnProcess("app", 7, func(p *Process) {
		_, err := p.BuildAndInstall("obj.fn", `
.name caller
.import fs.read_raw_blocks
.func main
main:
    callk fs.read_raw_blocks
    ret
`, graft.InstallOptions{})
		if !errors.Is(err, graft.ErrNotCallable) {
			t.Errorf("err = %v, want ErrNotCallable", err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

// Rule 5: grafts cannot replace restricted kernel functions.
func TestRule5RestrictedFunctions(t *testing.T) {
	k := newTestKernel()
	k.Grafts.RegisterPoint(&graft.Point{
		Name:      "kernel.shutdown",
		Kind:      graft.Function,
		Privilege: graft.Restricted,
		Default:   func(t *sched.Thread, args []int64) (int64, error) { return 0, nil },
	})
	k.SpawnProcess("app", graft.Root, func(p *Process) {
		_, err := p.BuildAndInstall("kernel.shutdown", `
.name takeover
.func main
main:
    ret
`, graft.InstallOptions{})
		if !errors.Is(err, graft.ErrRestrictedPoint) {
			t.Errorf("err = %v, want ErrRestrictedPoint", err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

// Rule 6: the kernel must not execute grafts not known to be safe —
// unsigned, tampered, or unrewritten images never load.
func TestRule6OnlyKnownSafeCode(t *testing.T) {
	k := newTestKernel()
	registerEchoPoint(k, "obj.fn")
	k.SpawnProcess("app", 7, func(p *Process) {
		// Unrewritten.
		raw, err := sfi.BuildUnsafe(".name raw\n.func main\nmain:\n ret")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.Install("obj.fn", raw, graft.InstallOptions{}); !errors.Is(err, graft.ErrNotSafe) {
			t.Errorf("unsafe image: err = %v", err)
		}
		// Rewritten but self-signed by an attacker.
		forged, _, err := sfi.BuildSafe(".name forged\n.func main\nmain:\n ret", sfi.NewSigner([]byte("evil")))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.Install("obj.fn", forged, graft.InstallOptions{}); !errors.Is(err, graft.ErrUnsigned) {
			t.Errorf("forged image: err = %v", err)
		}
		// Properly signed, then patched: flipping Safe off after signing.
		good, _, err := sfi.BuildSafe(".name good\n.func main\nmain:\n ret", k.Signer)
		if err != nil {
			t.Fatal(err)
		}
		good.Code = append(good.Code, sfi.Instr{Op: sfi.RET})
		if _, err := p.Install("obj.fn", good, graft.InstallOptions{}); !errors.Is(err, graft.ErrUnsigned) {
			t.Errorf("patched image: err = %v", err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

// Rule 8: malicious grafts affect only applications that agreed to use
// them. A biased schedule-delegate graft penalises its own group; a
// non-participating process still gets CPU.
func TestRule8AntisocialConfined(t *testing.T) {
	k := newTestKernel()
	k.EnableScheduleDelegation()
	var victimTurns, outsiderTurns int
	stop := false
	// Two group members: one installs a graft that always picks the
	// other member (antisocial favouritism inside the group).
	favoured := k.SpawnProcess("favoured", 7, func(p *Process) {
		for !stop {
			p.Thread.Charge(time.Millisecond)
			p.Thread.Yield()
		}
	})
	k.SpawnProcess("self-denier", 7, func(p *Process) {
		pt := k.DelegatePoint(p.Thread)
		img, _, err := sfi.BuildSafe(`
.name favour-other
.func main
main:
    ld r0, [r10+0]
    ret
`, k.Signer)
		if err != nil {
			t.Errorf("build: %v", err)
			return
		}
		g, err := p.Install(pt.Name, img, graft.InstallOptions{})
		if err != nil {
			t.Errorf("install: %v", err)
			return
		}
		heap := g.VM().Heap()
		id := int64(favoured.Thread.ID())
		for i := 0; i < 8; i++ {
			heap[i] = byte(uint64(id) >> (8 * i))
		}
		for !stop {
			victimTurns++
			p.Thread.Yield()
		}
	})
	k.SpawnProcess("outsider", 9, func(p *Process) {
		for i := 0; i < 50; i++ {
			outsiderTurns++
			p.Thread.Charge(time.Millisecond)
			p.Thread.Yield()
		}
		stop = true
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if outsiderTurns != 50 {
		t.Fatalf("outsider got %d turns; antisocial graft leaked outside its group", outsiderTurns)
	}
}

// Rule 9: the kernel makes progress with a faulty graft in its path. A
// never-returning graft on a critical path is watchdogged, removed, and
// the default policy continues.
func TestRule9ForwardProgress(t *testing.T) {
	k := newTestKernel()
	pt := registerEchoPoint(k, "pagedaemon.pick-victim")
	pt.Watchdog = 40 * time.Millisecond
	k.SpawnProcess("daemon-user", 7, func(p *Process) {
		g, err := p.BuildAndInstall("pagedaemon.pick-victim", `
.name throttler
.func main
main:
    jmp main
`, graft.InstallOptions{})
		if err != nil {
			t.Errorf("install: %v", err)
			return
		}
		// Critical loop: must complete all iterations despite the graft.
		for i := 0; i < 10; i++ {
			res, _ := pt.Invoke(p.Thread)
			if res != -1 {
				t.Errorf("iteration %d: res=%d, want default", i, res)
			}
		}
		if !g.Removed() {
			t.Error("throttling graft still installed")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got := pt.Stats().DefaultCalls; got != 10 {
		t.Fatalf("default calls = %d, want 10 (forward progress)", got)
	}
}

// Misbehavior class §2.1 (illegal data access via interface): even Root
// cannot sneak private data out — callables check ranges, the linker
// checks names. Summarised by the namespace listing restricted points.
func TestNamespaceListsPoints(t *testing.T) {
	k := newTestKernel()
	registerEchoPoint(k, "b.fn")
	registerEchoPoint(k, "a.fn")
	pts := k.Grafts.Points()
	if len(pts) != 2 || pts[0] != "a.fn" {
		t.Fatalf("points = %v", pts)
	}
	if !strings.Contains(strings.Join(k.Grafts.Callables(), ","), "vino.log") {
		t.Fatal("base callables missing")
	}
}
