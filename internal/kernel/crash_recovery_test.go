package kernel

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"vino/internal/crash"
	"vino/internal/fault"
	"vino/internal/graft"
	"vino/internal/guard"
	"vino/internal/sched"
	"vino/internal/trace"
	"vino/internal/txn"
)

// okSrc is a well-behaved graft: returns 7 immediately.
const okSrc = `
.name ok
.func main
main:
    movi r0, 7
    ret
`

func dispatchPanicPlan(everyN int64) *fault.Plan {
	return &fault.Plan{Seed: 1, Rules: []fault.Rule{
		{Class: fault.Panic, Site: crash.SiteDispatch, EveryN: everyN},
	}}
}

func newCrashKernel(t *testing.T, cfg Config) (*Kernel, *graft.Point) {
	t.Helper()
	k := New(cfg)
	pt := k.Grafts.RegisterPoint(&graft.Point{
		Name: "obj.fn",
		Kind: graft.Function,
		Default: func(th *sched.Thread, args []int64) (int64, error) {
			return -1, nil
		},
		Watchdog: 8 * time.Millisecond,
	})
	return k, pt
}

func TestPanicContainedAndRecovered(t *testing.T) {
	k, pt := newCrashKernel(t, Config{
		ZeroTxnCosts:    true,
		CheckpointEvery: 50 * time.Millisecond,
		FaultPlan:       dispatchPanicPlan(2),
	})
	k.Checkpoint()
	k.Faults.EnableCrash()
	invoked := 0
	k.SpawnProcess("app", 7, func(p *Process) {
		if _, err := p.BuildAndInstall("obj.fn", okSrc, graft.InstallOptions{}); err != nil {
			t.Errorf("install: %v", err)
			return
		}
		for i := 0; i < 3; i++ {
			pt.Invoke(p.Thread)
			invoked++
		}
	})
	recovered, err := k.RunRecovered()
	if err != nil {
		t.Fatalf("RunRecovered: %v", err)
	}
	if recovered != 1 {
		t.Fatalf("recovered = %d, want 1", recovered)
	}
	// The second dispatch panicked; the third invoke never ran because
	// the restore rewinds the whole process away.
	if invoked != 1 {
		t.Errorf("invocations surviving = %d, want 1", invoked)
	}
	if at := k.Clock.Now(); at != 0 {
		t.Errorf("clock after recovery = %v, want rewind to checkpoint at 0", at)
	}
	st := k.Crash.Stats()
	if st.Panics != 1 || st.Recoveries != 1 || st.ByClass[crash.SFIBreach] != 1 {
		t.Errorf("crash stats = %+v", st)
	}
	pevs := k.Trace.Filter(trace.KernelPanic)
	if len(pevs) != 1 || pevs[0].Subject != "sfi-breach@dispatch" {
		t.Errorf("kernel-panic events = %v", pevs)
	}
	revs := k.Trace.Filter(trace.Recovery)
	if len(revs) != 1 || revs[0].At != 0 || !strings.Contains(revs[0].Detail, "rewound") {
		t.Errorf("recovery events = %v", revs)
	}
	if len(k.Trace.Filter(trace.Checkpoint)) != 1 {
		t.Errorf("checkpoint events = %v", k.Trace.Filter(trace.Checkpoint))
	}
}

func TestPanicFatalWithoutCheckpoint(t *testing.T) {
	// CheckpointEvery unset: no crash manager, the panic propagates.
	k, pt := newCrashKernel(t, Config{ZeroTxnCosts: true, FaultPlan: dispatchPanicPlan(1)})
	k.Faults.EnableCrash()
	k.SpawnProcess("app", 7, func(p *Process) {
		if _, err := p.BuildAndInstall("obj.fn", okSrc, graft.InstallOptions{}); err != nil {
			t.Errorf("install: %v", err)
			return
		}
		pt.Invoke(p.Thread)
	})
	recovered, err := k.RunRecovered()
	if recovered != 0 {
		t.Errorf("recovered = %d, want 0", recovered)
	}
	var cp *crash.Panic
	if !errors.As(err, &cp) || cp.Class != crash.SFIBreach {
		t.Fatalf("RunRecovered err = %v, want sfi-breach kernel panic", err)
	}
	k.Sched.TakePanic()
	k.Shutdown()
}

func TestStallContainedAsPanic(t *testing.T) {
	// A thread that blocks with nothing to wake it stalls the event
	// loop; RunRecovered classifies that as a stall panic and recovers.
	k := New(Config{ZeroTxnCosts: true, CheckpointEvery: time.Millisecond})
	k.Checkpoint()
	k.SpawnProcess("wedged", 7, func(p *Process) {
		p.Thread.Block("nothing will wake me")
	})
	recovered, err := k.RunRecovered()
	if err != nil || recovered != 1 {
		t.Fatalf("RunRecovered = %d, %v, want 1 recovery", recovered, err)
	}
	if st := k.Crash.Stats(); st.ByClass[crash.Stall] != 1 {
		t.Errorf("crash stats = %+v, want one stall", st)
	}
	pevs := k.Trace.Filter(trace.KernelPanic)
	if len(pevs) != 1 || pevs[0].Subject != "stall@dispatch" {
		t.Errorf("kernel-panic events = %v", pevs)
	}
}

func TestRingRecoveryRollsPastTaint(t *testing.T) {
	// A checkpoint ring plus a delayed-detection panic: the corruption
	// predates the two newest checkpoints, so recovery must skip them
	// and restore the newest checkpoint older than the taint.
	k := New(Config{ZeroTxnCosts: true, CheckpointEvery: time.Hour, CheckpointRing: 3})
	for i := 0; i < 3; i++ {
		k.SpawnProcess("worker", 7, func(p *Process) { p.Thread.Charge(10 * time.Millisecond) })
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		k.Checkpoint() // checkpoints at 10 ms, 20 ms, 30 ms
	}
	if n := k.Crash.Checkpoints(); n != 3 {
		t.Fatalf("ring holds %d checkpoints, want 3", n)
	}
	k.SpawnProcess("bad", 7, func(p *Process) {
		p.Thread.Charge(10 * time.Millisecond)
		panic(&crash.Panic{
			Class: crash.SFIBreach, Site: crash.SiteDispatch,
			Reason:    "late-detected corruption",
			TaintedAt: 15 * time.Millisecond,
		})
	})
	recovered, err := k.RunRecovered()
	if err != nil || recovered != 1 {
		t.Fatalf("RunRecovered = %d, %v, want 1 recovery", recovered, err)
	}
	if at := k.Clock.Now(); at != 10*time.Millisecond {
		t.Errorf("clock after tainted recovery = %v, want the 10ms checkpoint", at)
	}
	if n := k.Crash.Checkpoints(); n != 1 {
		t.Errorf("ring holds %d checkpoints after restore, want 1 (younger ones discarded)", n)
	}
	revs := k.Trace.Filter(trace.Recovery)
	if len(revs) != 1 || !strings.Contains(revs[0].Detail, "rewound 30ms") {
		t.Errorf("recovery events = %v, want one rewinding 30ms", revs)
	}

	// Restore after restore: checkpoint again on the survivor state and
	// contain an immediate-detection panic, which takes the newest.
	k.SpawnProcess("worker", 7, func(p *Process) { p.Thread.Charge(5 * time.Millisecond) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	k.Checkpoint() // at 15 ms
	k.SpawnProcess("bad", 7, func(p *Process) {
		p.Thread.Charge(5 * time.Millisecond)
		panic(&crash.Panic{Class: crash.SFIBreach, Site: crash.SiteDispatch, Reason: "immediate"})
	})
	if recovered, err := k.RunRecovered(); err != nil || recovered != 1 {
		t.Fatalf("second RunRecovered = %d, %v, want 1 recovery", recovered, err)
	}
	if at := k.Clock.Now(); at != 15*time.Millisecond {
		t.Errorf("clock after second recovery = %v, want the 15ms checkpoint", at)
	}
	if st := k.Crash.Stats(); st.Panics != 2 || st.Recoveries != 2 {
		t.Errorf("crash stats = %+v, want 2 panics / 2 recoveries", st)
	}
}

func TestGuardLedgerSurvivesRecovery(t *testing.T) {
	// The guard health ledger is deliberately NOT restored by recovery:
	// a graft that keeps crashing the kernel must escalate through the
	// supervisor ladder even though each crash rewinds everything else.
	pol := guard.DefaultPolicy()
	k, pt := newCrashKernel(t, Config{
		ZeroTxnCosts:    true,
		GuardPolicy:     &pol,
		CheckpointEvery: 50 * time.Millisecond,
		FaultPlan:       dispatchPanicPlan(1),
	})
	var key string
	k.SpawnProcess("installer", 7, func(p *Process) {
		g, err := p.BuildAndInstall("obj.fn", okSrc, graft.InstallOptions{})
		if err != nil {
			t.Errorf("install: %v", err)
			return
		}
		key = g.GuardKey()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// Checkpoint with the graft installed, then arm the crash gate: every
	// dispatch from here panics the kernel.
	k.Checkpoint()
	k.Faults.EnableCrash()
	for i := 0; i < pol.QuarantineStreak; i++ {
		k.SpawnProcess(fmt.Sprintf("driver%d", i), 7, func(p *Process) {
			pt.Invoke(p.Thread)
		})
		recovered, err := k.RunRecovered()
		if err != nil || recovered != 1 {
			t.Fatalf("round %d: RunRecovered = %d, %v", i, recovered, err)
		}
		h, ok := k.Guard.Health(key)
		if !ok || h.Aborts != int64(i+1) {
			t.Fatalf("round %d: ledger aborts = %+v, want %d", i, h, i+1)
		}
	}
	h, _ := k.Guard.Health(key)
	if h.AbortsByCause[txn.CauseCrash] != int64(pol.QuarantineStreak) {
		t.Errorf("AbortsByCause = %v, want %d crash aborts", h.AbortsByCause, pol.QuarantineStreak)
	}
	if st, _ := k.Guard.StateOf(key); st != guard.Quarantined {
		t.Fatalf("state = %v, want quarantined", st)
	}
	// Quarantine holds: the next invocation short-circuits to the default
	// instead of dispatching into the crashing graft, so the run survives.
	k.SpawnProcess("after", 7, func(p *Process) {
		res, err := pt.Invoke(p.Thread)
		if err != nil || res != -1 {
			t.Errorf("quarantined invoke: res=%d err=%v, want (-1, nil)", res, err)
		}
	})
	recovered, err := k.RunRecovered()
	if err != nil || recovered != 0 {
		t.Fatalf("post-quarantine run: recovered=%d err=%v, want clean run", recovered, err)
	}
	if h2, _ := k.Guard.Health(key); h2.ShortCircuits == 0 {
		t.Error("quarantined dispatch did not short-circuit")
	}
}
