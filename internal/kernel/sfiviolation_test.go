package kernel_test

// Compartment-violation containment: a region-check trap raised inside
// a compartmented graft flows through the whole survival stack — the
// transaction aborts, the registry escalates the breach to a classified
// kernel panic (class sfi-violation), recovery scopes the rollback to
// the offender's domain, the guard ledger bills the abort under the
// SFI-trap cause, and repeat offenders climb the quarantine→expulsion
// ladder across reinstalls. External test package, like the domain
// recovery tests, so the full kernel.New wiring is exercised.

import (
	"errors"
	"testing"
	"time"

	"vino/internal/crash"
	"vino/internal/graft"
	"vino/internal/guard"
	"vino/internal/kernel"
	"vino/internal/sched"
	"vino/internal/sfi"
	"vino/internal/trace"
	"vino/internal/txn"
)

// vioSrc stores into the read-only kernel-export region of the default
// compartment layout (offset 49152 in a 64 KiB segment): the rewriter
// lowers the store to CHKW, which traps at runtime with a compartment
// violation.
const vioSrc = `
.name breach
.func main
main:
    movi r1, 49152
    add r1, r1, r10
    st [r1+0], r2
    ret
`

func vioPoint(k *kernel.Kernel, name string) *graft.Point {
	return k.Grafts.RegisterPoint(&graft.Point{
		Name: name,
		Kind: graft.Function,
		Default: func(th *sched.Thread, args []int64) (int64, error) {
			return -1, nil
		},
		Watchdog: 8 * time.Millisecond,
	})
}

func vioInstall(t *testing.T, p *kernel.Process, point string) *graft.Installed {
	t.Helper()
	img, _, err := sfi.BuildCompartmented(vioSrc, p.Kernel().Signer)
	if err != nil {
		t.Fatalf("build violator: %v", err)
	}
	g, err := p.Install(point, img, graft.InstallOptions{})
	if err != nil {
		t.Fatalf("install violator: %v", err)
	}
	return g
}

// TestCompartmentViolationScopedContainment: one violation, contained
// end to end. The dispatch aborts, escalates to an sfi-violation panic,
// recovery scopes to the graft's domain (no clock rewind, no widening),
// the crash taxonomy and the guard ledger both record the breach, and
// the offender is removed while the kernel keeps running.
func TestCompartmentViolationScopedContainment(t *testing.T) {
	pol := guard.DefaultPolicy()
	k := kernel.New(kernel.Config{
		ZeroTxnCosts:    true,
		CheckpointEvery: time.Hour,
		RecoverScope:    kernel.RecoverScopeGraft,
		GuardPolicy:     &pol,
	})
	pt := vioPoint(k, "vio.fn")
	k.SpawnProcess("prefill", graft.Root, func(p *kernel.Process) {})
	if err := k.Run(); err != nil {
		t.Fatalf("prefill: %v", err)
	}
	k.Checkpoint()

	var key string
	reached := false
	k.SpawnProcess("app", graft.Root, func(p *kernel.Process) {
		g := vioInstall(t, p, "vio.fn")
		key = g.GuardKey()
		pt.Invoke(p.Thread) // traps mid-dispatch: never returns
		reached = true
	})
	recovered, err := k.RunRecovered()
	if err != nil {
		t.Fatalf("RunRecovered: %v", err)
	}
	if recovered != 1 {
		t.Fatalf("recovered = %d, want 1", recovered)
	}
	if reached {
		t.Error("code after the violating dispatch ran")
	}
	if at := k.Clock.Now(); at == 0 {
		t.Error("clock rewound to 0: scoped recovery must not rewind virtual time")
	}
	st := k.Crash.Stats()
	if st.ByClass[crash.SFIViolation] != 1 {
		t.Errorf("ByClass[sfi-violation] = %d, want 1 (stats %+v)", st.ByClass[crash.SFIViolation], st)
	}
	if st.ScopedRecoveries != 1 || st.WidenedRecoveries != 0 {
		t.Errorf("crash stats = %+v, want 1 scoped recovery, 0 widened", st)
	}
	h, ok := k.Guard.Health(key)
	if !ok {
		t.Fatalf("no guard ledger row for %s", key)
	}
	if h.AbortsByCause[txn.CauseSFITrap] != 1 {
		t.Errorf("AbortsByCause[sfi-trap] = %d, want 1 (%+v)", h.AbortsByCause[txn.CauseSFITrap], h)
	}
	if h.Recoveries != 1 {
		t.Errorf("Recoveries = %d, want 1", h.Recoveries)
	}
	revs := k.Trace.Filter(trace.DomainRestore)
	if len(revs) != 1 || revs[0].Subject != key {
		t.Errorf("domain-restore events = %v, want one for %s", revs, key)
	}

	// The offender died with its dispatch: the point falls back to the
	// base path, and the kernel is healthy enough to run it.
	var after int64
	k.SpawnProcess("after", graft.Root, func(p *kernel.Process) {
		after, _ = pt.Invoke(p.Thread)
	})
	if err := k.Run(); err != nil {
		t.Fatalf("post-recovery run: %v", err)
	}
	if after != -1 {
		t.Errorf("post-recovery invoke = %d, want the base-path -1", after)
	}
}

// TestCompartmentViolationPlainAbortWithoutCheckpointing: on a kernel
// without crash containment armed, a compartment trap must stay an
// ordinary dispatch abort — billed as an SFI trap, falling back to the
// base path — not a kernel panic nothing would recover.
func TestCompartmentViolationPlainAbortWithoutCheckpointing(t *testing.T) {
	pol := guard.DefaultPolicy()
	k := kernel.New(kernel.Config{
		ZeroTxnCosts: true,
		GuardPolicy:  &pol,
	})
	pt := vioPoint(k, "vio.fn")
	var key string
	var res int64
	k.SpawnProcess("app", graft.Root, func(p *kernel.Process) {
		g := vioInstall(t, p, "vio.fn")
		key = g.GuardKey()
		res, _ = pt.Invoke(p.Thread)
	})
	if err := k.Run(); err != nil {
		t.Fatalf("Run = %v, want the violation absorbed as an abort", err)
	}
	if res != -1 {
		t.Errorf("invoke = %d, want the base-path -1 after the abort", res)
	}
	h, ok := k.Guard.Health(key)
	if !ok {
		t.Fatalf("no guard ledger row for %s", key)
	}
	if h.AbortsByCause[txn.CauseSFITrap] != 1 {
		t.Errorf("AbortsByCause[sfi-trap] = %d, want 1 (%+v)", h.AbortsByCause[txn.CauseSFITrap], h)
	}
	if h.Recoveries != 0 {
		t.Errorf("Recoveries = %d, want 0 without containment", h.Recoveries)
	}
}

// TestRepeatViolatorClimbsLadder: the guard ledger is keyed by
// point#image and survives removal, so a violator that is reinstalled
// after every scoped recovery still climbs the escalation ladder —
// quarantine (dispatch short-circuits to the base path) and, on a
// probation relapse, permanent expulsion that bars reinstall.
func TestRepeatViolatorClimbsLadder(t *testing.T) {
	pol := guard.Policy{
		QuarantineStreak: 2,
		ProbationStreak:  1,
		Backoff:          time.Nanosecond, // expire by the next dispatch
		QuarantinePct:    101,             // streak trigger only
	}
	k := kernel.New(kernel.Config{
		ZeroTxnCosts:    true,
		CheckpointEvery: time.Hour,
		RecoverScope:    kernel.RecoverScopeGraft,
		GuardPolicy:     &pol,
	})
	pt := vioPoint(k, "vio.fn")
	k.SpawnProcess("prefill", graft.Root, func(p *kernel.Process) {})
	if err := k.Run(); err != nil {
		t.Fatalf("prefill: %v", err)
	}
	k.Checkpoint()

	var key string
	violate := func(round int) {
		t.Helper()
		k.SpawnProcess("app", graft.Root, func(p *kernel.Process) {
			g := vioInstall(t, p, "vio.fn")
			key = g.GuardKey()
			p.Thread.Sleep(time.Millisecond) // let any quarantine backoff expire
			pt.Invoke(p.Thread)
		})
		recovered, err := k.RunRecovered()
		if err != nil {
			t.Fatalf("round %d: RunRecovered: %v", round, err)
		}
		if recovered != 1 {
			t.Fatalf("round %d: recovered = %d, want 1", round, recovered)
		}
	}

	violate(1) // streak 1: kept, but removed by the scoped recovery
	if st, _ := k.Guard.StateOf(key); st == guard.Quarantined || st == guard.Expelled {
		t.Fatalf("state after one violation = %s, too eager", st)
	}
	violate(2) // streak 2: quarantined
	if st, _ := k.Guard.StateOf(key); st != guard.Quarantined {
		t.Fatalf("state after two violations = %s, want quarantined", st)
	}

	// While quarantined the image still installs (the ledger survives,
	// the bar is expulsion-only). After the backoff expires the next
	// dispatch is reinstated on probation, runs, traps — a probation
	// relapse, which expels permanently.
	violate(3)
	if st, _ := k.Guard.StateOf(key); st != guard.Expelled {
		t.Fatalf("state after probation relapse = %s, want expelled", st)
	}
	if !k.Guard.Barred(key) {
		t.Error("expelled key not barred")
	}
	k.SpawnProcess("retry", graft.Root, func(p *kernel.Process) {
		img, _, err := sfi.BuildCompartmented(vioSrc, p.Kernel().Signer)
		if err != nil {
			t.Errorf("build: %v", err)
			return
		}
		if _, err := p.Install("vio.fn", img, graft.InstallOptions{}); !errors.Is(err, graft.ErrExpelled) {
			t.Errorf("reinstall of expelled image: err = %v, want ErrExpelled", err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatalf("retry: %v", err)
	}
}
