package kernel_test

// Domain-scoped recovery: the per-graft rollback path (RecoverScope
// "graft") and its widening conditions, exercised end-to-end with the
// real file system attached — which is why this file is an external
// test package (fs imports kernel). The in-package crash_recovery_test
// covers the classic whole-kernel path these tests must not disturb.

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"vino/internal/crash"
	"vino/internal/fault"
	vfs "vino/internal/fs"
	"vino/internal/graft"
	"vino/internal/kernel"
	"vino/internal/lock"
	"vino/internal/sched"
	"vino/internal/trace"
)

const domOkSrc = `
.name ok
.func main
main:
    movi r0, 7
    ret
`

func domPanicPlan(everyN int64) *fault.Plan {
	return &fault.Plan{Seed: 1, Rules: []fault.Rule{
		{Class: fault.Panic, Site: crash.SiteDispatch, EveryN: everyN},
	}}
}

func domPoint(k *kernel.Kernel, name string) *graft.Point {
	return k.Grafts.RegisterPoint(&graft.Point{
		Name: name,
		Kind: graft.Function,
		Default: func(th *sched.Thread, args []int64) (int64, error) {
			return -1, nil
		},
		Watchdog: 8 * time.Millisecond,
	})
}

// writeByte fills the first block of name with pattern b through the
// real write path (so owner stamps and dirty generations fire).
func writeByte(t *testing.T, fsys *vfs.FS, th *sched.Thread, name string, b byte) {
	t.Helper()
	of, err := fsys.Open(th, name)
	if err != nil {
		t.Errorf("open %s: %v", name, err)
		return
	}
	defer of.Close()
	buf := make([]byte, vfs.BlockSize)
	for i := range buf {
		buf[i] = b
	}
	if _, err := of.WriteAt(th, buf, 0); err != nil {
		t.Errorf("write %s: %v", name, err)
	}
}

// readByte returns the first byte of name's first block.
func readByte(t *testing.T, fsys *vfs.FS, th *sched.Thread, name string) byte {
	t.Helper()
	of, err := fsys.Open(th, name)
	if err != nil {
		t.Errorf("open %s: %v", name, err)
		return 0
	}
	defer of.Close()
	buf := make([]byte, 1)
	if _, err := of.ReadAt(th, buf, 0); err != nil {
		t.Errorf("read %s: %v", name, err)
	}
	return buf[0]
}

// TestScopedRecoveryLeavesSurvivorsLive is the tentpole's core claim:
// a panic inside one graft's dispatch rolls back only that graft's
// domain. A committed non-offender invocation, a base-domain file
// write, and virtual time all survive; the offender's owner-stamped
// block reverts to the checkpoint image.
func TestScopedRecoveryLeavesSurvivorsLive(t *testing.T) {
	k := kernel.New(kernel.Config{
		ZeroTxnCosts:    true,
		CheckpointEvery: time.Hour,
		RecoverScope:    kernel.RecoverScopeGraft,
		FaultPlan:       domPanicPlan(2),
	})
	survPt := domPoint(k, "surv.fn")
	offPt := domPoint(k, "off.fn")
	fsys := vfs.New(k, vfs.NewDisk(vfs.FujitsuM2694ESA()), 256)
	fsys.Create("surv-data", 4*vfs.BlockSize, graft.Root, false)
	fsys.Create("off-data", 4*vfs.BlockSize, graft.Root, false)
	k.SpawnProcess("prefill", graft.Root, func(p *kernel.Process) {
		writeByte(t, fsys, p.Thread, "surv-data", 0x11)
		writeByte(t, fsys, p.Thread, "off-data", 0x22)
	})
	if err := k.Run(); err != nil {
		t.Fatalf("prefill: %v", err)
	}
	k.Checkpoint()
	k.Faults.EnableCrash()

	var offKey string
	reached := false
	k.SpawnProcess("app", graft.Root, func(p *kernel.Process) {
		th := p.Thread
		if _, err := p.BuildAndInstall("surv.fn", domOkSrc, graft.InstallOptions{}); err != nil {
			t.Errorf("install surv: %v", err)
			return
		}
		g, err := p.BuildAndInstall("off.fn", domOkSrc, graft.InstallOptions{})
		if err != nil {
			t.Errorf("install off: %v", err)
			return
		}
		offKey = g.GuardKey()
		survPt.Invoke(th) // dispatch 1: commits, a survivor transaction
		writeByte(t, fsys, th, "surv-data", 0x5A)
		// The offender's footprint: a write made while its dispatch owner
		// is active, exactly as fs stamps writes issued from graft code.
		prev := crash.SetOwner(th, offKey)
		writeByte(t, fsys, th, "off-data", 0xA5)
		crash.SetOwner(th, prev)
		offPt.Invoke(th) // dispatch 2: injected panic mid-dispatch
		reached = true
	})
	recovered, err := k.RunRecovered()
	if err != nil {
		t.Fatalf("RunRecovered: %v", err)
	}
	if recovered != 1 {
		t.Fatalf("recovered = %d, want 1", recovered)
	}
	if reached {
		t.Error("code after the panicking dispatch ran")
	}
	if at := k.Clock.Now(); at == 0 {
		t.Error("clock rewound to 0: scoped recovery must not rewind virtual time")
	}
	st := k.Crash.Stats()
	if st.Recoveries != 1 || st.ScopedRecoveries != 1 || st.WidenedRecoveries != 0 {
		t.Errorf("crash stats = %+v, want 1 scoped recovery", st)
	}
	ts := k.Txns.Stats()
	if ts.Commits < 1 {
		t.Errorf("commits = %d: survivor transaction rolled back", ts.Commits)
	}
	if ts.Begins != ts.Commits+ts.Aborts {
		t.Errorf("unbalanced books: %d begun, %d committed, %d aborted", ts.Begins, ts.Commits, ts.Aborts)
	}
	if out := k.Locks.Outstanding(); len(out) > 0 {
		t.Errorf("leaked locks %v", out)
	}
	revs := k.Trace.Filter(trace.DomainRestore)
	if len(revs) != 1 || revs[0].Subject != offKey {
		t.Errorf("domain-restore events = %v, want one for %s", revs, offKey)
	}
	if wevs := k.Trace.Filter(trace.RecoveryWidened); len(wevs) != 0 {
		t.Errorf("recovery widened: %v", wevs)
	}
	if len(k.Trace.Filter(trace.DomainCheckpoint)) != 1 {
		t.Errorf("domain-checkpoint events = %v", k.Trace.Filter(trace.DomainCheckpoint))
	}

	k.Faults.DisableCrash()
	k.SpawnProcess("reader", graft.Root, func(p *kernel.Process) {
		if b := readByte(t, fsys, p.Thread, "surv-data"); b != 0x5A {
			t.Errorf("surv-data = %#x, want survivor write 0x5a", b)
		}
		if b := readByte(t, fsys, p.Thread, "off-data"); b != 0x22 {
			t.Errorf("off-data = %#x, want checkpoint image 0x22", b)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatalf("reader: %v", err)
	}
	for _, bad := range fsys.Fsck() {
		t.Errorf("fsck: %s", bad)
	}
}

// TestScopedRecoveryWidensOnSharedWrite: when the offender and the base
// domain both wrote the same file block since the checkpoint, a scoped
// revert would clobber the other party's data — recovery must widen to
// the whole-kernel restore and rewind the clock.
func TestScopedRecoveryWidensOnSharedWrite(t *testing.T) {
	k := kernel.New(kernel.Config{
		ZeroTxnCosts:    true,
		CheckpointEvery: time.Hour,
		RecoverScope:    kernel.RecoverScopeGraft,
		FaultPlan:       domPanicPlan(1),
	})
	offPt := domPoint(k, "off.fn")
	fsys := vfs.New(k, vfs.NewDisk(vfs.FujitsuM2694ESA()), 256)
	fsys.Create("shared", 4*vfs.BlockSize, graft.Root, false)
	k.SpawnProcess("prefill", graft.Root, func(p *kernel.Process) {
		writeByte(t, fsys, p.Thread, "shared", 0x11)
	})
	if err := k.Run(); err != nil {
		t.Fatalf("prefill: %v", err)
	}
	k.Checkpoint()
	cpAt := k.Clock.Now()
	k.Faults.EnableCrash()

	k.SpawnProcess("app", graft.Root, func(p *kernel.Process) {
		th := p.Thread
		g, err := p.BuildAndInstall("off.fn", domOkSrc, graft.InstallOptions{})
		if err != nil {
			t.Errorf("install: %v", err)
			return
		}
		writeByte(t, fsys, th, "shared", 0x22) // base domain writes first
		prev := crash.SetOwner(th, g.GuardKey())
		writeByte(t, fsys, th, "shared", 0xA5) // offender overwrites: cross-domain
		crash.SetOwner(th, prev)
		offPt.Invoke(th) // injected panic
	})
	recovered, err := k.RunRecovered()
	if err != nil {
		t.Fatalf("RunRecovered: %v", err)
	}
	if recovered != 1 {
		t.Fatalf("recovered = %d, want 1", recovered)
	}
	st := k.Crash.Stats()
	if st.ScopedRecoveries != 0 || st.WidenedRecoveries != 1 {
		t.Errorf("crash stats = %+v, want 1 widened recovery", st)
	}
	wevs := k.Trace.Filter(trace.RecoveryWidened)
	if len(wevs) != 1 || !strings.Contains(wevs[0].Detail, "cross-domain writes") {
		t.Errorf("widened events = %v, want cross-domain writes reason", wevs)
	}
	if at := k.Clock.Now(); at != cpAt {
		t.Errorf("clock = %v, want rewind to checkpoint at %v", at, cpAt)
	}
	k.Faults.DisableCrash()
	k.SpawnProcess("reader", graft.Root, func(p *kernel.Process) {
		if b := readByte(t, fsys, p.Thread, "shared"); b != 0x11 {
			t.Errorf("shared = %#x, want checkpoint image 0x11", b)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatalf("reader: %v", err)
	}
}

// TestScopedRecoveryWidensOnEntangledLock: the dead offender holds a
// lock another thread also holds — releasing it out from under the
// other party crosses domain boundaries, so recovery widens.
func TestScopedRecoveryWidensOnEntangledLock(t *testing.T) {
	k := kernel.New(kernel.Config{
		ZeroTxnCosts:    true,
		CheckpointEvery: time.Hour,
		RecoverScope:    kernel.RecoverScopeGraft,
		FaultPlan:       domPanicPlan(1),
	})
	offPt := domPoint(k, "off.fn")
	cls := &lock.Class{Name: "dom-test", Timeout: time.Second}
	shared := k.Locks.NewLock("dom-shared", cls)
	k.Checkpoint()
	k.Faults.EnableCrash()

	k.SpawnProcess("holder", graft.Root, func(p *kernel.Process) {
		shared.Acquire(p.Thread, lock.Shared) // held across the crash
	})
	k.SpawnProcess("app", graft.Root, func(p *kernel.Process) {
		th := p.Thread
		if _, err := p.BuildAndInstall("off.fn", domOkSrc, graft.InstallOptions{}); err != nil {
			t.Errorf("install: %v", err)
			return
		}
		shared.Acquire(th, lock.Shared) // entangled with holder's hold
		offPt.Invoke(th)                // injected panic
	})
	recovered, err := k.RunRecovered()
	if err != nil {
		t.Fatalf("RunRecovered: %v", err)
	}
	if recovered != 1 {
		t.Fatalf("recovered = %d, want 1", recovered)
	}
	st := k.Crash.Stats()
	if st.ScopedRecoveries != 0 || st.WidenedRecoveries != 1 {
		t.Errorf("crash stats = %+v, want 1 widened recovery", st)
	}
	wevs := k.Trace.Filter(trace.RecoveryWidened)
	if len(wevs) != 1 || !strings.Contains(wevs[0].Detail, "cross-graft lock held") {
		t.Errorf("widened events = %v, want cross-graft lock reason", wevs)
	}
	// The whole-kernel restore rewound both post-checkpoint holds away.
	if out := k.Locks.Outstanding(); len(out) > 0 {
		t.Errorf("locks outstanding after widened recovery: %v", out)
	}
}

// TestScopedRecoveryChain: two scoped recoveries back to back across
// different domains, restoring against the same consolidated base.
// Each offender's stamped block reverts; the survivor's write and the
// other domain's history are untouched by either restore.
func TestScopedRecoveryChain(t *testing.T) {
	k := kernel.New(kernel.Config{
		ZeroTxnCosts:    true,
		CheckpointEvery: time.Hour,
		RecoverScope:    kernel.RecoverScopeGraft,
		FaultPlan:       domPanicPlan(2),
	})
	survPt := domPoint(k, "surv.fn")
	offAPt := domPoint(k, "offa.fn")
	offBPt := domPoint(k, "offb.fn")
	fsys := vfs.New(k, vfs.NewDisk(vfs.FujitsuM2694ESA()), 256)
	for _, n := range []string{"surv-data", "offa-data", "offb-data"} {
		fsys.Create(n, 4*vfs.BlockSize, graft.Root, false)
	}
	k.SpawnProcess("prefill", graft.Root, func(p *kernel.Process) {
		writeByte(t, fsys, p.Thread, "surv-data", 0x11)
		writeByte(t, fsys, p.Thread, "offa-data", 0x22)
		writeByte(t, fsys, p.Thread, "offb-data", 0x33)
	})
	if err := k.Run(); err != nil {
		t.Fatalf("prefill: %v", err)
	}
	k.Checkpoint()
	k.Faults.EnableCrash()

	// Phase 1: the survivor commits (dispatch 1) and writes its data.
	k.SpawnProcess("surv", graft.Root, func(p *kernel.Process) {
		if _, err := p.BuildAndInstall("surv.fn", domOkSrc, graft.InstallOptions{}); err != nil {
			t.Errorf("install surv: %v", err)
			return
		}
		survPt.Invoke(p.Thread)
		writeByte(t, fsys, p.Thread, "surv-data", 0x5A)
	})
	if n, err := k.RunRecovered(); err != nil || n != 0 {
		t.Fatalf("phase 1: recovered %d, err %v", n, err)
	}

	// Phase 2: offender A dirties its domain and panics (dispatch 2).
	k.SpawnProcess("offa", graft.Root, func(p *kernel.Process) {
		th := p.Thread
		g, err := p.BuildAndInstall("offa.fn", domOkSrc, graft.InstallOptions{})
		if err != nil {
			t.Errorf("install offa: %v", err)
			return
		}
		prev := crash.SetOwner(th, g.GuardKey())
		writeByte(t, fsys, th, "offa-data", 0xAA)
		crash.SetOwner(th, prev)
		offAPt.Invoke(th)
	})
	if n, err := k.RunRecovered(); err != nil || n != 1 {
		t.Fatalf("phase 2: recovered %d, err %v", n, err)
	}

	// Phase 3: offender B dirties its domain, commits once (dispatch 3)
	// and panics on the next dispatch (4) — a restore after a restore.
	k.SpawnProcess("offb", graft.Root, func(p *kernel.Process) {
		th := p.Thread
		g, err := p.BuildAndInstall("offb.fn", domOkSrc, graft.InstallOptions{})
		if err != nil {
			t.Errorf("install offb: %v", err)
			return
		}
		prev := crash.SetOwner(th, g.GuardKey())
		writeByte(t, fsys, th, "offb-data", 0xBB)
		crash.SetOwner(th, prev)
		offBPt.Invoke(th)
		offBPt.Invoke(th)
	})
	if n, err := k.RunRecovered(); err != nil || n != 1 {
		t.Fatalf("phase 3: recovered %d, err %v", n, err)
	}

	st := k.Crash.Stats()
	if st.Recoveries != 2 || st.ScopedRecoveries != 2 || st.WidenedRecoveries != 0 {
		t.Errorf("crash stats = %+v, want 2 scoped recoveries", st)
	}
	if revs := k.Trace.Filter(trace.DomainRestore); len(revs) != 2 {
		t.Errorf("domain-restore events = %v, want 2", revs)
	}
	ts := k.Txns.Stats()
	if ts.Begins != ts.Commits+ts.Aborts {
		t.Errorf("unbalanced books: %d begun, %d committed, %d aborted", ts.Begins, ts.Commits, ts.Aborts)
	}
	k.Faults.DisableCrash()
	k.SpawnProcess("reader", graft.Root, func(p *kernel.Process) {
		th := p.Thread
		if b := readByte(t, fsys, th, "surv-data"); b != 0x5A {
			t.Errorf("surv-data = %#x, want survivor write 0x5a", b)
		}
		if b := readByte(t, fsys, th, "offa-data"); b != 0x22 {
			t.Errorf("offa-data = %#x, want checkpoint image 0x22", b)
		}
		if b := readByte(t, fsys, th, "offb-data"); b != 0x33 {
			t.Errorf("offb-data = %#x, want checkpoint image 0x33", b)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatalf("reader: %v", err)
	}
	for _, bad := range fsys.Fsck() {
		t.Errorf("fsck: %s", bad)
	}
}

// fakeAudited is a registered subsystem whose capture-time audit can be
// made to report corruption, tainting the checkpoint it is captured in.
type fakeAudited struct{ bad bool }

func (f *fakeAudited) CrashName() string     { return "fake-audited" }
func (f *fakeAudited) CrashSnapshot() any    { return struct{}{} }
func (f *fakeAudited) CrashRestore(snap any) {}
func (f *fakeAudited) CrashAudit() []string {
	if f.bad {
		return []string{"invariant violated"}
	}
	return nil
}

// TestAuditTaintWidensAndRollsBack: a checkpoint whose capture-time
// audit found corrupt state marks the damage as predating it. The next
// panic derives TaintedAt from that evidence (no synthetic schedule),
// scoped recovery refuses to excise it, and the classic path rolls back
// past the tainted image to the older clean one.
func TestAuditTaintWidensAndRollsBack(t *testing.T) {
	k := kernel.New(kernel.Config{
		ZeroTxnCosts:    true,
		CheckpointEvery: time.Hour,
		CheckpointRing:  2,
		RecoverScope:    kernel.RecoverScopeGraft,
		FaultPlan:       domPanicPlan(1),
	})
	offPt := domPoint(k, "off.fn")
	fsys := vfs.New(k, vfs.NewDisk(vfs.FujitsuM2694ESA()), 256)
	fsys.Create("db", 4*vfs.BlockSize, graft.Root, false)
	fake := &fakeAudited{}
	k.Crash.Register(fake)

	k.SpawnProcess("w1", graft.Root, func(p *kernel.Process) {
		writeByte(t, fsys, p.Thread, "db", 0x11)
	})
	if err := k.Run(); err != nil {
		t.Fatalf("w1: %v", err)
	}
	// TaintedAt == 0 means "no taint" everywhere, so the tainted capture
	// must land at a non-zero instant: advance the quiescent clock
	// between checkpoints.
	k.Clock.Advance(10 * time.Millisecond)
	k.Checkpoint() // clean image at t1
	cleanAt := k.Clock.Now()

	fake.bad = true // corruption creeps in before the next capture
	k.SpawnProcess("w2", graft.Root, func(p *kernel.Process) {
		writeByte(t, fsys, p.Thread, "db", 0x22)
	})
	if err := k.Run(); err != nil {
		t.Fatalf("w2: %v", err)
	}
	k.Clock.Advance(10 * time.Millisecond)
	k.Checkpoint() // audited capture at t2: tainted
	taintAt := k.Clock.Now()
	if at, ok := k.Crash.EvidenceTaint(); !ok || at != taintAt {
		t.Fatalf("EvidenceTaint = %v, %v; want %v, true", at, ok, taintAt)
	}

	k.Faults.EnableCrash()
	k.SpawnProcess("app", graft.Root, func(p *kernel.Process) {
		if _, err := p.BuildAndInstall("off.fn", domOkSrc, graft.InstallOptions{}); err != nil {
			t.Errorf("install: %v", err)
			return
		}
		offPt.Invoke(p.Thread)
	})
	recovered, err := k.RunRecovered()
	if err != nil {
		t.Fatalf("RunRecovered: %v", err)
	}
	if recovered != 1 {
		t.Fatalf("recovered = %d, want 1", recovered)
	}
	wevs := k.Trace.Filter(trace.RecoveryWidened)
	if len(wevs) != 1 || !strings.Contains(wevs[0].Detail, "predates checkpoint") {
		t.Errorf("widened events = %v, want taint reason", wevs)
	}
	if at := k.Clock.Now(); at != cleanAt {
		t.Errorf("clock = %v, want rollback past the tainted image to %v", at, cleanAt)
	}
	revs := k.Trace.Filter(trace.Recovery)
	if len(revs) != 1 || revs[0].At != cleanAt {
		t.Errorf("recovery events = %v, want restore at %v", revs, cleanAt)
	}
}

// TestCheckpointPersistRoundTrip: with a checkpoint directory
// configured, the ring reaches stable storage — a fresh kernel in a
// fresh process restores the exported state (file contents, transaction
// counters, clock frontier) from the newest manifest.
func TestCheckpointPersistRoundTrip(t *testing.T) {
	dir := t.TempDir()
	mk := func() (*kernel.Kernel, *vfs.FS) {
		k := kernel.New(kernel.Config{
			ZeroTxnCosts:    true,
			CheckpointEvery: time.Hour,
			CheckpointDir:   dir,
		})
		return k, vfs.New(k, vfs.NewDisk(vfs.FujitsuM2694ESA()), 256)
	}
	k1, fs1 := mk()
	fs1.Create("db", 8*vfs.BlockSize, graft.Root, false)
	k1.SpawnProcess("writer", graft.Root, func(p *kernel.Process) {
		writeByte(t, fs1, p.Thread, "db", 0x5A)
	})
	if err := k1.Run(); err != nil {
		t.Fatalf("writer: %v", err)
	}
	k1.Checkpoint()
	if err := k1.Crash.PersistErr(); err != nil {
		t.Fatalf("persist: %v", err)
	}
	cpAt := k1.Clock.Now()
	txnStats := k1.Txns.Stats()
	manifests, err := filepath.Glob(filepath.Join(dir, "cp-*.gob"))
	if err != nil || len(manifests) == 0 {
		t.Fatalf("manifests = %v (err %v), want at least one", manifests, err)
	}

	// "Reboot": a fresh kernel with freshly initialised subsystems
	// imports the durable state.
	k2, fs2 := mk()
	at, err := k2.RestoreFromDisk()
	if err != nil {
		t.Fatalf("RestoreFromDisk: %v", err)
	}
	if at != cpAt {
		t.Errorf("restored frontier = %v, want %v", at, cpAt)
	}
	if now := k2.Clock.Now(); now != cpAt {
		t.Errorf("clock = %v, want %v", now, cpAt)
	}
	if got := k2.Txns.Stats(); got != txnStats {
		t.Errorf("txn stats = %+v, want %+v", got, txnStats)
	}
	k2.SpawnProcess("reader", graft.Root, func(p *kernel.Process) {
		if b := readByte(t, fs2, p.Thread, "db"); b != 0x5A {
			t.Errorf("db = %#x, want persisted write 0x5a", b)
		}
	})
	if err := k2.Run(); err != nil {
		t.Fatalf("reader: %v", err)
	}
	for _, bad := range fs2.Fsck() {
		t.Errorf("fsck: %s", bad)
	}
}

// TestCheckpointDirCompaction: the exponential-age policy thins old
// manifests — N checkpoints leave O(log N) files, with the newest
// always kept.
func TestCheckpointDirCompaction(t *testing.T) {
	dir := t.TempDir()
	k := kernel.New(kernel.Config{
		ZeroTxnCosts:    true,
		CheckpointEvery: time.Hour,
		CheckpointDir:   dir,
	})
	const n = 40
	for i := 0; i < n; i++ {
		k.Checkpoint()
	}
	if err := k.Crash.PersistErr(); err != nil {
		t.Fatalf("persist: %v", err)
	}
	manifests, err := filepath.Glob(filepath.Join(dir, "cp-*.gob"))
	if err != nil {
		t.Fatal(err)
	}
	if len(manifests) < 2 || len(manifests) > 10 {
		t.Errorf("compaction kept %d manifests of %d checkpoints, want 2..10 (O(log N))", len(manifests), n)
	}
	// The newest manifest must be among the survivors.
	var names []string
	for _, m := range manifests {
		names = append(names, filepath.Base(m))
	}
	if _, err := os.Stat(filepath.Join(dir, "cp-40.gob")); err != nil {
		t.Errorf("newest manifest missing (kept %v): %v", names, err)
	}
}
