package kernel

import (
	"fmt"
	"time"

	"vino/internal/graft"
	"vino/internal/lock"
	"vino/internal/sched"
)

// Schedule delegation (§4.3 of the paper): each user-level process has a
// kernel thread with a schedule-delegate function. When the thread is
// chosen to run, the function runs and returns the identity of the
// thread that should actually receive the timeslice — itself by default,
// or e.g. the database server a client is blocked on. The function is a
// per-process (Local privilege) graft point.

// delegationState lives on the kernel once EnableScheduleDelegation has
// run.
type delegationState struct {
	points   map[sched.ThreadID]*graft.Point
	procLock *lock.Lock
	procIDs  []int64 // the "process list" the example graft scans
	// alwaysConsult invokes the delegate point (its default) even when
	// no graft is installed — the harness's Table 5 "VINO path".
	alwaysConsult bool
}

// SetDelegationAlwaysConsult toggles the measurement-only mode in which
// every dispatch consults the delegate point even when ungrafted.
func (k *Kernel) SetDelegationAlwaysConsult(v bool) {
	k.mustDelegation().alwaysConsult = v
}

const delegationKey = "kernel.delegation"

var procListClass = &lock.Class{
	Name: "proclist",
	// The process list is consulted at every delegated dispatch; it is a
	// short-hold resource ("a few hundreds of instructions"), so its
	// contention time-out is one clock tick.
	Timeout:     10 * time.Millisecond,
	AcquireCost: 33 * time.Microsecond, // paper's measured lock overhead
}

// EnableScheduleDelegation wires the scheduler's dispatch hook to the
// per-process schedule-delegate graft points and registers the
// graft-callable process-list accessors.
func (k *Kernel) EnableScheduleDelegation() {
	if k.delegation != nil {
		return
	}
	d := &delegationState{
		points:   make(map[sched.ThreadID]*graft.Point),
		procLock: k.Locks.NewLock("proclist", procListClass),
	}
	k.delegation = d

	// sched.proc_count(): number of entries in the process list.
	k.Grafts.RegisterCallable("sched.proc_count", func(ctx *graft.Ctx, args [5]int64) (int64, error) {
		return int64(len(d.procIDs)), nil
	})
	// sched.proc_id(i): the i-th process-list entry. The first call in a
	// transaction takes the process-list lock (held to commit — the
	// §4.3 lock overhead).
	k.Grafts.RegisterCallable("sched.proc_id", func(ctx *graft.Ctx, args [5]int64) (int64, error) {
		if ctx.Txn != nil && !d.procLock.HeldBy(ctx.Thread) {
			ctx.Txn.AcquireLock(d.procLock, lock.Shared)
		}
		i := args[0]
		if i < 0 || i >= int64(len(d.procIDs)) {
			return 0, fmt.Errorf("proc_id: index %d out of range", i)
		}
		return d.procIDs[i], nil
	})

	k.Sched.DispatchHook = func(t *sched.Thread) *sched.Thread {
		p := d.points[t.ID()]
		if p == nil {
			return nil
		}
		if !p.Grafted() {
			if d.alwaysConsult {
				_, _ = p.Invoke(t, int64(t.ID()))
			}
			return nil
		}
		res, err := p.Invoke(t, int64(t.ID()))
		if err != nil {
			return nil // graft aborted and was removed; default applies
		}
		if res == int64(t.ID()) {
			return nil
		}
		return k.Sched.Lookup(sched.ThreadID(res))
	}
}

// SetProcessList publishes the identifiers the example scheduling graft
// scans (the paper uses a 64-entry list).
func (k *Kernel) SetProcessList(ids []int64) {
	k.mustDelegation().procIDs = append([]int64(nil), ids...)
}

func (k *Kernel) mustDelegation() *delegationState {
	if k.delegation == nil {
		panic("kernel: EnableScheduleDelegation not called")
	}
	return k.delegation
}

// DelegatePoint returns (registering on first use) the schedule-delegate
// graft point for a thread. The point is Local: a biased delegate only
// affects threads that agreed to participate (rule 8).
func (k *Kernel) DelegatePoint(t *sched.Thread) *graft.Point {
	d := k.mustDelegation()
	if p, ok := d.points[t.ID()]; ok {
		return p
	}
	p := k.Grafts.RegisterPoint(&graft.Point{
		Name:      fmt.Sprintf("proc/%d.schedule-delegate", t.ID()),
		Kind:      graft.Function,
		Privilege: graft.Local,
		// Default: run the chosen thread itself.
		Default: func(cur *sched.Thread, args []int64) (int64, error) {
			return args[0], nil
		},
		// The returned ID must name a live thread ("which is
		// accomplished by probing a hash table containing the valid
		// thread IDs", §4.3). An invalid ID falls back to the default
		// choice rather than aborting the dispatch.
		Validate: func(cur *sched.Thread, args []int64, res int64) (int64, error) {
			cur.ChargeCycles(15) // hash-probe cost
			if k.Sched.Lookup(sched.ThreadID(res)) == nil {
				return args[0], nil
			}
			return res, nil
		},
		IndirectionCost: time.Microsecond, // Table 5 indirection row
	})
	d.points[t.ID()] = p
	return p
}
