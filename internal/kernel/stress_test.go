package kernel

// Stress: random transactional lock workloads. Whatever interleavings
// and deadlocks random lock orders produce, the contention time-outs
// must keep the system live (no scheduler deadlock), and when the dust
// settles every lock must be free and every transaction accounted for.

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"vino/internal/graft"
	"vino/internal/lock"
	"vino/internal/sched"
	"vino/internal/txn"
)

func TestPropertyRandomLockWorkloadsStayLive(t *testing.T) {
	f := func(seed int64, nThreadsRaw, nLocksRaw uint8) bool {
		nThreads := int(nThreadsRaw%4) + 2
		nLocks := int(nLocksRaw%3) + 2
		k := New(Config{ZeroTxnCosts: true})
		cls := &lock.Class{Name: "stress", Timeout: 20 * time.Millisecond}
		locks := make([]*lock.Lock, nLocks)
		for i := range locks {
			locks[i] = k.Locks.NewLock("L", cls)
		}
		rng := rand.New(rand.NewSource(seed))
		type plan struct {
			order []int
			hold  time.Duration
			abort bool
		}
		plans := make([][]plan, nThreads)
		for i := range plans {
			rounds := rng.Intn(4) + 1
			for r := 0; r < rounds; r++ {
				p := plan{
					hold:  time.Duration(rng.Intn(10)+1) * time.Millisecond,
					abort: rng.Intn(4) == 0,
				}
				perm := rng.Perm(nLocks)
				p.order = perm[:rng.Intn(nLocks)+1]
				plans[i] = append(plans[i], p)
			}
		}
		completed := 0
		for i := 0; i < nThreads; i++ {
			myPlans := plans[i]
			k.SpawnProcess("stress", graft.UID(i+1), func(proc *Process) {
				th := proc.Thread
				for _, p := range myPlans {
					err := k.Txns.Run(th, func(tx *txn.Txn) error {
						for _, li := range p.order {
							tx.AcquireLock(locks[li], lock.Exclusive)
							th.Charge(p.hold / time.Duration(len(p.order)))
						}
						if p.abort {
							return errors.New("voluntary abort")
						}
						return nil
					})
					_ = err // timeouts and voluntary aborts are both fine
				}
				completed++
			})
		}
		if err := k.Run(); err != nil {
			t.Logf("Run: %v", err)
			return false // deadlock not broken, or a thread crashed
		}
		if completed != nThreads {
			return false
		}
		// Quiescent invariants.
		for _, l := range locks {
			if l.HolderCount() != 0 || l.WaiterCount() != 0 {
				t.Logf("lock left held/waited: holders=%d waiters=%d", l.HolderCount(), l.WaiterCount())
				return false
			}
		}
		ts := k.Txns.Stats()
		if ts.Begins != ts.Commits+ts.Aborts {
			t.Logf("txn books: begins=%d commits=%d aborts=%d", ts.Begins, ts.Commits, ts.Aborts)
			return false
		}
		ls := k.Locks.Stats()
		if ls.Releases != ls.Acquisitions {
			t.Logf("lock books: acq=%d rel=%d", ls.Acquisitions, ls.Releases)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyRandomGraftWorkloadsSurvive: random mixes of benign and
// misbehaving grafts invoked back to back; the kernel finishes, every
// failing graft is removed, and the books balance.
func TestPropertyRandomGraftWorkloadsSurvive(t *testing.T) {
	sources := []struct {
		src     string
		failing bool
	}{
		{".name ok\n.func main\nmain:\n add r0, r1, r1\n ret\n", false},
		{".name okmem\n.func main\nmain:\n st [r10+32], r1\n ld r0, [r10+32]\n ret\n", false},
		{".name trap\n.func main\nmain:\n movi r9, 0\n div r0, r0, r9\n ret\n", true},
		{".name spin\n.func main\nmain:\n jmp main\n", true},
	}
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%6) + 2
		k := New(Config{ZeroTxnCosts: true})
		ok := true
		k.SpawnProcess("grafter", 5, func(p *Process) {
			for i := 0; i < n; i++ {
				c := sources[rng.Intn(len(sources))]
				pt := k.Grafts.RegisterPoint(&graft.Point{
					Name:     pointName(i),
					Kind:     graft.Function,
					Default:  func(t2 *sched.Thread, args []int64) (int64, error) { return -1, nil },
					Watchdog: 30 * time.Millisecond,
				})
				g, err := p.BuildAndInstall(pt.Name, c.src, graft.InstallOptions{})
				if err != nil {
					ok = false
					return
				}
				res, ierr := pt.Invoke(p.Thread, 21)
				if c.failing {
					if ierr == nil || !g.Removed() || res != -1 {
						ok = false
						return
					}
				} else {
					if ierr != nil || g.Removed() {
						ok = false
						return
					}
				}
			}
		})
		if err := k.Run(); err != nil {
			return false
		}
		ts := k.Txns.Stats()
		return ok && ts.Begins == ts.Commits+ts.Aborts
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func pointName(i int) string {
	return "stress/" + string(rune('a'+i)) + ".fn"
}
