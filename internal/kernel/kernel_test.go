package kernel

import (
	"strings"
	"testing"
	"time"

	"vino/internal/graft"
	"vino/internal/resource"
	"vino/internal/sched"
	"vino/internal/sfi"
)

func newTestKernel() *Kernel {
	return New(Config{ZeroTxnCosts: true})
}

func TestSpawnProcessIdentity(t *testing.T) {
	k := newTestKernel()
	k.SpawnProcess("app", 42, func(p *Process) {
		if graft.ThreadUID(p.Thread) != 42 {
			t.Error("uid not bound")
		}
		if graft.ThreadAccount(p.Thread) != p.Account {
			t.Error("account not bound")
		}
		if p.Account.Limit(resource.Memory) != ProcessLimits[resource.Memory] {
			t.Error("default limits not applied")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildAndInstallRoundTrip(t *testing.T) {
	k := newTestKernel()
	p := k.Grafts.RegisterPoint(&graft.Point{
		Name: "obj.fn",
		Kind: graft.Function,
		Default: func(t *sched.Thread, args []int64) (int64, error) {
			return 0, nil
		},
	})
	k.SpawnProcess("app", 7, func(proc *Process) {
		if _, err := proc.BuildAndInstall("obj.fn", `
.name inc
.func main
main:
    addi r0, r1, 1
    ret
`, graft.InstallOptions{}); err != nil {
			t.Errorf("BuildAndInstall: %v", err)
			return
		}
		res, err := p.Invoke(proc.Thread, 41)
		if err != nil || res != 42 {
			t.Errorf("res=%d err=%v", res, err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestVinoLogCallable(t *testing.T) {
	k := newTestKernel()
	p := k.Grafts.RegisterPoint(&graft.Point{
		Name:    "obj.fn",
		Kind:    graft.Function,
		Default: func(t *sched.Thread, args []int64) (int64, error) { return 0, nil },
	})
	k.SpawnProcess("app", 7, func(proc *Process) {
		if _, err := proc.BuildAndInstall("obj.fn", `
.name logger
.import vino.log
.data "hello kernel"
.func main
main:
    mov r1, r10     ; ptr = heap base
    movi r2, 12     ; len
    callk vino.log
    ret
`, graft.InstallOptions{}); err != nil {
			t.Errorf("install: %v", err)
			return
		}
		if _, err := p.Invoke(proc.Thread); err != nil {
			t.Errorf("invoke: %v", err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, line := range k.Log() {
		if strings.Contains(line, "hello kernel") {
			found = true
		}
	}
	if !found {
		t.Fatalf("log = %v", k.Log())
	}
}

func TestVinoLogRejectsOutOfSegmentPointer(t *testing.T) {
	k := newTestKernel()
	p := k.Grafts.RegisterPoint(&graft.Point{
		Name:    "obj.fn",
		Kind:    graft.Function,
		Default: func(t *sched.Thread, args []int64) (int64, error) { return -1, nil },
	})
	k.SpawnProcess("app", 7, func(proc *Process) {
		// The graft passes a kernel address to vino.log, trying to
		// exfiltrate kernel memory through a checked interface.
		if _, err := proc.BuildAndInstall("obj.fn", `
.name exfil
.import vino.log
.func main
main:
    movi r1, 0      ; kernel address
    movi r2, 64
    callk vino.log
    ret
`, graft.InstallOptions{}); err != nil {
			t.Errorf("install: %v", err)
			return
		}
		res, err := p.Invoke(proc.Thread)
		if err == nil || res != -1 {
			t.Errorf("res=%d err=%v, want abort + default", res, err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestKheapAllocUndoneOnAbort(t *testing.T) {
	k := newTestKernel()
	p := k.Grafts.RegisterPoint(&graft.Point{
		Name:    "obj.fn",
		Kind:    graft.Function,
		Default: func(t *sched.Thread, args []int64) (int64, error) { return -1, nil },
	})
	var g *graft.Installed
	k.SpawnProcess("app", 7, func(proc *Process) {
		var err error
		g, err = proc.BuildAndInstall("obj.fn", `
.name alloc-then-trap
.import vino.kheap_alloc
.func main
main:
    movi r1, 1024
    callk vino.kheap_alloc
    movi r2, 0
    div r0, r1, r2
    ret
`, graft.InstallOptions{
			Transfer: map[resource.Kind]int64{resource.KernelHeap: 4096},
		})
		if err != nil {
			t.Errorf("install: %v", err)
			return
		}
		_, _ = p.Invoke(proc.Thread)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if used := g.Account.Used(resource.KernelHeap); used != 0 {
		t.Fatalf("graft account used = %d after abort, want 0", used)
	}
}

// TestScheduleDelegation wires a GIR delegate graft that always returns
// the server's thread ID, and checks the server gets the client's
// timeslices (the paper's database client/server scenario, §4.3).
func TestScheduleDelegation(t *testing.T) {
	k := newTestKernel()
	k.EnableScheduleDelegation()
	var order []string
	server := k.SpawnProcess("server", 7, func(p *Process) {
		for i := 0; i < 3; i++ {
			order = append(order, "server")
			p.Thread.Yield()
		}
	})
	client := k.SpawnProcess("client", 7, func(p *Process) {
		pt := k.DelegatePoint(p.Thread)
		// Delegate graft: always return the server's ID. The ID is baked
		// into the image via .dataword.
		src := `
.name delegate
.func main
main:
    ld r0, [r10+0]   ; server thread id from heap
    ret
`
		img, _, err := sfi.BuildSafe(src, k.Signer)
		if err != nil {
			t.Errorf("build: %v", err)
			return
		}
		g, err := p.Install(pt.Name, img, graft.InstallOptions{})
		if err != nil {
			t.Errorf("install: %v", err)
			return
		}
		// Seed the server ID into the graft heap (the shared-buffer
		// pattern).
		heap := g.VM().Heap()
		id := int64(server.Thread.ID())
		for i := 0; i < 8; i++ {
			heap[i] = byte(uint64(id) >> (8 * i))
		}
		for i := 0; i < 3; i++ {
			order = append(order, "client")
			p.Thread.Yield()
		}
	})
	_ = client
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// After the graft installs, every client dispatch donates to the
	// server until the server exits; the server's remaining turns come
	// before the client's.
	joined := strings.Join(order, ",")
	if !strings.Contains(joined, "server,server") {
		t.Fatalf("no evidence of donated slices: %v", order)
	}
}

// TestDelegationInvalidIDFallsBack: a delegate returning garbage keeps
// the default choice (validated by the thread-table probe).
func TestDelegationInvalidIDFallsBack(t *testing.T) {
	k := newTestKernel()
	k.EnableScheduleDelegation()
	ran := false
	k.SpawnProcess("client", 7, func(p *Process) {
		pt := k.DelegatePoint(p.Thread)
		if _, err := p.BuildAndInstall(pt.Name, `
.name bogus
.func main
main:
    movi r0, 99999
    ret
`, graft.InstallOptions{}); err != nil {
			t.Errorf("install: %v", err)
			return
		}
		p.Thread.Yield() // dispatch hook runs the graft
		ran = true
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("client never resumed")
	}
}

// TestDelegationGraftScansProcList: the paper's example graft locks and
// scans a 64-entry process list, then returns its own ID.
func TestDelegationGraftScansProcList(t *testing.T) {
	k := newTestKernel()
	k.EnableScheduleDelegation()
	ids := make([]int64, 64)
	for i := range ids {
		ids[i] = int64(i + 1000)
	}
	k.SetProcessList(ids)
	completed := false
	k.SpawnProcess("scanner", 7, func(p *Process) {
		pt := k.DelegatePoint(p.Thread)
		if _, err := p.BuildAndInstall(pt.Name, `
.name scan-delegate
.import sched.proc_count
.import sched.proc_id
.func main
main:
    mov r6, r1          ; own id
    callk sched.proc_count
    mov r7, r0          ; n
    movi r8, 0          ; i
loop:
    cmplt r9, r8, r7
    jz r9, done
    mov r1, r8
    callk sched.proc_id ; examine entry
    addi r8, r8, 1
    jmp loop
done:
    mov r0, r6          ; return own id
    ret
`, graft.InstallOptions{}); err != nil {
			t.Errorf("install: %v", err)
			return
		}
		p.Thread.Yield()
		completed = true
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !completed {
		t.Fatal("scanner never resumed after delegate scan")
	}
	if k.Locks.Stats().Acquisitions == 0 {
		t.Fatal("proc-list lock never taken")
	}
}

func TestKernelLogTimestamped(t *testing.T) {
	k := newTestKernel()
	k.Clock.Advance(12345 * time.Microsecond)
	k.Logf("hello %d", 42)
	logs := k.Log()
	if len(logs) != 1 || !strings.Contains(logs[0], "hello 42") || !strings.Contains(logs[0], "ms]") {
		t.Fatalf("log = %v", logs)
	}
}

func TestReadWriteGraftBytesBounds(t *testing.T) {
	img, _, err := sfi.BuildSafe(".name b\n.func main\nmain:\n ret", sfi.NewSigner([]byte("k")))
	if err != nil {
		t.Fatal(err)
	}
	vm, err := sfi.NewVM(img, sfi.Config{})
	if err != nil {
		t.Fatal(err)
	}
	base := int64(vm.HeapBase())
	if err := WriteGraftBytes(vm, base+10, []byte("abc")); err != nil {
		t.Fatal(err)
	}
	got, err := ReadGraftBytes(vm, base+10, 3)
	if err != nil || string(got) != "abc" {
		t.Fatalf("got %q err %v", got, err)
	}
	if _, err := ReadGraftBytes(vm, base-1, 3); err == nil {
		t.Fatal("read below segment allowed")
	}
	if _, err := ReadGraftBytes(vm, base+int64(vm.HeapSize())-1, 3); err == nil {
		t.Fatal("read past segment end allowed")
	}
	if err := WriteGraftBytes(vm, 0, []byte("x")); err == nil {
		t.Fatal("write into kernel memory allowed")
	}
}
