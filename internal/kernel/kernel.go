// Package kernel is the composition root of the simulated VINO kernel:
// it wires the virtual clock, the preemptible scheduler, the lock
// manager, the transaction manager and the graft registry together,
// provides the process model (threads with user identities and resource
// accounts), and registers the base graft-callable functions every
// subsystem shares.
package kernel

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"strings"
	"time"

	"vino/internal/crash"
	"vino/internal/fault"
	"vino/internal/graft"
	"vino/internal/guard"
	"vino/internal/lock"
	"vino/internal/resource"
	"vino/internal/sched"
	"vino/internal/sfi"
	"vino/internal/simclock"
	"vino/internal/tenant"
	"vino/internal/trace"
	"vino/internal/txn"
)

// Config parameterises a kernel instance. The zero value is usable.
type Config struct {
	// Hz is the simulated CPU frequency (default: the paper's 120 MHz).
	Hz int64
	// NumCPUs is the simulated CPU count (default 1, the paper's single
	// Pentium). With more CPUs the scheduler keeps one run queue and one
	// virtual-time frontier per CPU; execution stays deterministic.
	NumCPUs int
	// SignKey is the trust-root key shared with the graft toolchain.
	// Empty uses a fixed development key.
	SignKey []byte
	// Timeslice overrides the 10 ms scheduling quantum.
	Timeslice time.Duration
	// SwitchCost overrides the per-dispatch CPU charge.
	SwitchCost time.Duration
	// ZeroTxnCosts disables the paper-calibrated virtual-time costs for
	// transaction operations (useful in logic-only tests).
	ZeroTxnCosts bool
	// UnsafeGrafts permits Root to install unrewritten images — for the
	// measurement harness and misbehavior demos only.
	UnsafeGrafts bool
	// VMCosts overrides the graft VM cycle model.
	VMCosts *sfi.Costs
	// NoTranslate forces every graft onto the interpreting VM engine.
	// By default verified images are compiled to native Go closures at
	// install time — observably identical (same traps, same virtual-time
	// cycle accounting, same traces), only host wall-clock differs.
	NoTranslate bool
	// TraceDepth sizes the kernel flight recorder (default 256 events).
	TraceDepth int
	// Seed drives deterministic pseudo-random decisions (fault plans,
	// chaos workloads). Zero is a valid seed.
	Seed int64
	// FaultPlan, when non-nil, arms the fault-injection plane: the
	// kernel builds an Injector over the plan and every hooked
	// subsystem (disk I/O, frame allocator, connection dispatch)
	// consults it. Nil keeps all hooks inert.
	FaultPlan *fault.Plan
	// GuardPolicy, when non-nil, arms the graft supervisor: dispatch is
	// gated through a per-graft health ledger, repeat offenders are
	// quarantined and eventually expelled by the policy instead of being
	// removed on the first abort. Nil keeps the classic remove-on-abort
	// behaviour (and byte-identical traces for existing seeds).
	GuardPolicy *guard.Policy
	// TenantPolicy, when non-nil, arms the multi-tenant layer: the
	// kernel carries a tenant.Registry binding graft installs to tenant
	// identities, each with its own resource account and escalation
	// standing. Nil keeps the kernel tenant-free (and byte-identical).
	TenantPolicy *tenant.Policy
	// CheckpointEvery, when positive, arms crash containment: the kernel
	// checkpoints its recoverable state at this virtual-time cadence and
	// RunRecovered restores the last checkpoint instead of dying when a
	// contained kernel panic strikes. Zero (the default) disables
	// checkpointing, keeping the classic path byte-identical.
	CheckpointEvery time.Duration
	// CheckpointRing bounds the checkpoint ring: recovery can rewind to
	// any of the last N checkpoints, and delayed-detection panics (a
	// non-zero Panic.TaintedAt) restore the newest checkpoint predating
	// the taint. Zero or one keeps only the newest checkpoint.
	CheckpointRing int
	// CheckpointFullCopy disables incremental (base + delta chain)
	// checkpoint capture and deep-copies every subsystem on every
	// checkpoint. Restored state and traces are byte-identical either
	// way; the switch exists for cost comparison and regression A/Bs.
	CheckpointFullCopy bool
	// RecoverScope selects what a contained kernel panic rolls back:
	// RecoverScopeKernel (the default, and the zero value) restores the
	// whole checkpoint image and rewinds virtual time; RecoverScopeGraft
	// reverts only the offending graft's rollback domain — its
	// transactions, locks and owner-stamped fs/vmm state — leaving other
	// grafts' in-flight work live, widening back to a whole-kernel
	// restore when cross-domain entanglement is detected. Crash-free
	// runs are byte-identical under either scope.
	RecoverScope string
	// CheckpointDir, when non-empty, persists the checkpoint ring to
	// disk (one gob-encoded manifest per checkpoint, exponential-age
	// compacted) so a crashed run can be restored across process
	// restarts.
	CheckpointDir string
}

// RecoverScope values for Config.RecoverScope.
const (
	RecoverScopeKernel = "kernel" // whole-kernel restore (default)
	RecoverScopeGraft  = "graft"  // per-graft rollback domains
)

// Kernel is one simulated machine.
type Kernel struct {
	Clock  *simclock.Clock
	Sched  *sched.Scheduler
	Locks  *lock.Manager
	Txns   *txn.Manager
	Grafts *graft.Registry
	// Signer is the toolchain signer matching the kernel's trust root;
	// examples and tests use it to build loadable images in-process.
	Signer *sfi.Signer
	// Trace is the kernel's flight recorder: graft lifecycle events,
	// lock time-outs, evictions and fault injections land here.
	Trace *trace.Buffer
	// Faults interprets the configured fault plan. Nil when no plan is
	// configured; every hook method is nil-safe, so subsystems consult
	// it unconditionally.
	Faults *fault.Injector
	// Guard is the graft supervisor (nil unless GuardPolicy was set);
	// Guard.Report() snapshots the health ledger.
	Guard *guard.Supervisor
	// Tenants is the multi-tenant registry (nil unless TenantPolicy was
	// set). A fleet driver replacing a dead instance reassigns the old
	// registry here so tenant standing survives the reboot.
	Tenants *tenant.Registry
	// Crash is the checkpoint/restore manager (nil unless CheckpointEvery
	// was set). Crash.Stats() counts checkpoints, panics and recoveries.
	Crash *crash.Manager
	// Seed echoes Config.Seed for subsystems that derive their own
	// deterministic decisions from it.
	Seed int64

	log          []string
	processes    map[string]*Process
	nextPID      int
	capLogLen    map[uint64]int // checkpoint generation -> log length at capture
	delegation   *delegationState
	hoardLock    *lock.Lock
	recoverScope string
}

// New builds a kernel.
func New(cfg Config) *Kernel {
	clock := simclock.New(cfg.Hz)
	s := sched.New(clock)
	if cfg.NumCPUs > 1 {
		s.SetNumCPUs(cfg.NumCPUs)
	}
	if cfg.Timeslice > 0 {
		s.SetTimeslice(cfg.Timeslice)
	}
	if cfg.SwitchCost >= 0 {
		s.SwitchCost = cfg.SwitchCost
	}
	locks := lock.NewManager(clock)
	txns := txn.NewManager()
	if cfg.ZeroTxnCosts {
		txns.Costs = txn.ZeroCosts()
	}
	locks.HolderInTxn = txns.InTxn
	key := cfg.SignKey
	if len(key) == 0 {
		key = []byte("vino-development-toolchain-key")
	}
	signer := sfi.NewSigner(key)
	reg := graft.NewRegistry(clock, txns, signer)
	reg.UnsafeAllowed = cfg.UnsafeGrafts
	reg.Costs = cfg.VMCosts
	reg.NoTranslate = cfg.NoTranslate
	tr := trace.New(cfg.TraceDepth)
	reg.Trace = tr
	locks.Trace = tr
	k := &Kernel{
		Clock:     clock,
		Sched:     s,
		Locks:     locks,
		Txns:      txns,
		Grafts:    reg,
		Signer:    signer,
		Trace:     tr,
		Seed:      cfg.Seed,
		processes: make(map[string]*Process),
	}
	if cfg.FaultPlan != nil {
		k.Faults = fault.NewInjector(cfg.FaultPlan, clock, tr)
		txns.Faults = k.Faults
		locks.Faults = k.Faults
		reg.Faults = k.Faults
	}
	if cfg.GuardPolicy != nil {
		k.Guard = guard.New(clock, tr, *cfg.GuardPolicy)
		reg.Supervisor = k.Guard
	}
	if cfg.TenantPolicy != nil {
		k.Tenants = tenant.New(clock, tr, *cfg.TenantPolicy)
	}
	k.recoverScope = cfg.RecoverScope
	if cfg.CheckpointEvery > 0 {
		// With a checkpoint to restore, compartment region-check traps
		// escalate from plain transaction aborts into classified
		// sfi-violation panics contained by RunRecovered.
		reg.EscalateViolations = true
		k.Crash = crash.NewManager(clock, tr, cfg.CheckpointEvery)
		k.Crash.SetRing(cfg.CheckpointRing)
		k.Crash.SetIncremental(!cfg.CheckpointFullCopy)
		if cfg.CheckpointDir != "" {
			k.Crash.SetPersistDir(cfg.CheckpointDir)
		}
		// Dirty stamps for incremental capture.
		locks.GenSource = k.Crash.Gen
		reg.GenSource = k.Crash.Gen
		// Registration order is restore order: raw kernel state first,
		// then the subsystems layered on it.
		k.Crash.Register(k)
		k.Crash.Register(txns)
		k.Crash.Register(locks)
		k.Crash.Register(reg)
		// Meters after the registry: a restore rewinds graft membership
		// first, then the balances of every install-bound account, so
		// physical charges (sockets, kernel heap) whose release a panic
		// destroyed rewind with the state that made them.
		k.Crash.Register(graft.NewMeters(reg))
	}
	k.registerBaseCallables()
	if cfg.FaultPlan != nil {
		k.registerFaultCallables()
	}
	return k
}

// Logf appends a timestamped line to the kernel log.
func (k *Kernel) Logf(format string, args ...any) {
	k.log = append(k.log, fmt.Sprintf("[%8.3fms] %s",
		float64(k.Clock.Now())/float64(time.Millisecond), fmt.Sprintf(format, args...)))
}

// Log returns the kernel log lines.
func (k *Kernel) Log() []string { return append([]string(nil), k.log...) }

// NumCPUs returns the simulated CPU count.
func (k *Kernel) NumCPUs() int { return k.Sched.NumCPUs() }

// Run drives the scheduler until all threads finish.
func (k *Kernel) Run() error { return k.Sched.Run() }

// Shutdown kills all remaining threads.
func (k *Kernel) Shutdown() { k.Sched.Shutdown() }

// kernelSnap captures the kernel's own recoverable state: the log, the
// process table and every process's resource balances. Thread handles
// are not snapshotted — threads die with the crash epoch and the
// workload respawns them.
type kernelSnap struct {
	log      []string
	procs    map[string]*Process
	accounts map[string]*resource.AccountSnap
	nextPID  int
}

// CrashName implements crash.Snapshotter.
func (k *Kernel) CrashName() string { return "kernel" }

// noteLogLen records the log length at the current checkpoint
// generation, so a later CrashDelta can ship only the appended tail.
func (k *Kernel) noteLogLen() {
	if k.Crash == nil {
		return
	}
	if k.capLogLen == nil {
		k.capLogLen = make(map[uint64]int)
	}
	k.capLogLen[k.Crash.Gen()] = len(k.log)
}

// CrashSnapshot implements crash.Snapshotter.
func (k *Kernel) CrashSnapshot() any {
	k.noteLogLen()
	s := &kernelSnap{
		log:      append([]string(nil), k.log...),
		procs:    make(map[string]*Process, len(k.processes)),
		accounts: make(map[string]*resource.AccountSnap, len(k.processes)),
		nextPID:  k.nextPID,
	}
	for n, p := range k.processes {
		s.procs[n] = p
		s.accounts[n] = p.Account.Snapshot()
	}
	return s
}

// kernelDelta is the incremental capture: the log lines appended since
// the predecessor checkpoint plus the (small) process table. The log
// is the kernel's only unbounded structure; the table is copied whole.
type kernelDelta struct {
	fromLen  int // log length at the predecessor capture
	logTail  []string
	procs    map[string]*Process
	accounts map[string]*resource.AccountSnap
	nextPID  int
}

// CrashDelta implements crash.DeltaSnapshotter.
func (k *Kernel) CrashDelta(sinceGen uint64) any {
	from, ok := k.capLogLen[sinceGen]
	if !ok || from > len(k.log) {
		// No record of the predecessor capture (or an impossible one):
		// fall back to a full image, which CrashMerge replaces with.
		return k.CrashSnapshot()
	}
	// Deltas are only ever asked against the newest entry's generation,
	// so older memos are dead; prune them to keep the map bounded.
	for g := range k.capLogLen {
		if g < sinceGen {
			delete(k.capLogLen, g)
		}
	}
	k.noteLogLen()
	d := &kernelDelta{
		fromLen:  from,
		logTail:  append([]string(nil), k.log[from:]...),
		procs:    make(map[string]*Process, len(k.processes)),
		accounts: make(map[string]*resource.AccountSnap, len(k.processes)),
		nextPID:  k.nextPID,
	}
	for n, p := range k.processes {
		d.procs[n] = p
		d.accounts[n] = p.Account.Snapshot()
	}
	return d
}

// CrashMerge implements crash.DeltaSnapshotter.
func (k *Kernel) CrashMerge(base, delta any) any {
	if full, ok := delta.(*kernelSnap); ok {
		return full
	}
	d := delta.(*kernelDelta)
	if base == nil {
		base = &kernelSnap{}
	}
	s := base.(*kernelSnap)
	if d.fromLen <= len(s.log) {
		s.log = append(s.log[:d.fromLen], d.logTail...)
	} else {
		s.log = append(s.log, d.logTail...)
	}
	s.procs = d.procs
	s.accounts = d.accounts
	s.nextPID = d.nextPID
	return s
}

// CrashRestore implements crash.Snapshotter.
func (k *Kernel) CrashRestore(snap any) {
	s := snap.(*kernelSnap)
	k.log = append([]string(nil), s.log...)
	k.nextPID = s.nextPID
	k.processes = make(map[string]*Process, len(s.procs))
	for n, p := range s.procs {
		k.processes[n] = p
		p.Account.RestoreSnapshot(s.accounts[n])
		p.Thread = nil // died with the crash epoch
	}
}

// kernelExport is the kernel's durable (on-disk) checkpoint image: the
// log and the pid counter. Processes and their resource accounts hold
// live thread handles and are rebuilt by the workload after an import,
// as after a reboot.
type kernelExport struct {
	Log     []string
	NextPID int
}

// CrashExport implements crash.Exporter.
func (k *Kernel) CrashExport() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(&kernelExport{Log: k.log, NextPID: k.nextPID})
	return buf.Bytes(), err
}

// CrashImport implements crash.Exporter.
func (k *Kernel) CrashImport(data []byte) error {
	var e kernelExport
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&e); err != nil {
		return err
	}
	k.log = e.Log
	k.nextPID = e.NextPID
	return nil
}

// RestoreFromDisk imports the newest persisted checkpoint (see
// Config.CheckpointDir) into every exporting subsystem, rewinds the
// clock to its virtual time, and seeds the in-memory ring with a fresh
// capture of the imported state. Meant for a freshly built kernel: the
// disk image stands in for the machine that crashed.
func (k *Kernel) RestoreFromDisk() (time.Duration, error) {
	if k.Crash == nil {
		return 0, errors.New("kernel: checkpointing not configured")
	}
	at, err := k.Crash.RestoreFromDisk()
	if err != nil {
		return 0, err
	}
	k.Clock.Reset(at)
	k.Crash.TakeCheckpoint()
	return at, nil
}

// CheckpointIfDue takes a checkpoint when the configured cadence says
// one is due. Call it at quiescent points (between Run rounds): the
// simulated kernel cannot snapshot live goroutine stacks, so checkpoints
// are only consistent when no thread is running. No-op without
// CheckpointEvery.
func (k *Kernel) CheckpointIfDue() bool {
	if k.Crash == nil {
		return false
	}
	return k.Crash.CheckpointIfDue()
}

// Checkpoint forces a checkpoint now regardless of cadence.
func (k *Kernel) Checkpoint() {
	if k.Crash != nil {
		k.Crash.TakeCheckpoint()
	}
}

// RunRecovered drives the scheduler like Run, but contains kernel
// panics: a classified crash (or an event-loop stall) is caught at the
// dispatcher boundary, the last checkpoint is restored, the offending
// graft's abort is fed into the guard health ledger — which survives
// the restore, so repeat offenders still escalate — and the simulation
// resumes at the restored virtual-time frontier. It returns how many
// panics were recovered. Without a checkpoint to restore (CheckpointEvery
// unset, or a panic before the first checkpoint) the panic is fatal and
// returned as the error.
func (k *Kernel) RunRecovered() (recovered int, err error) {
	for {
		err := k.Sched.Run()
		if err == nil {
			return recovered, nil
		}
		var cp *crash.Panic
		switch {
		case errors.As(err, &cp):
			// A planted or escaped kernel panic, already classified.
		case errors.Is(err, sched.ErrDeadlock):
			// The event loop stalled: every thread blocked with no
			// pending event. Contained as a panic of class stall.
			cp = &crash.Panic{Class: crash.Stall, Site: crash.SiteDispatch, Reason: "event loop stalled"}
		default:
			// A genuine bug in the simulator; never mask those.
			return recovered, err
		}
		if k.Crash == nil || !k.Crash.HasCheckpoint() {
			return recovered, err
		}
		k.recoverFromPanic(cp)
		recovered++
	}
}

// recoverFromPanic is the contained-panic path: quiesce, restore the
// last checkpoint, attribute blame, rewind virtual time.
func (k *Kernel) recoverFromPanic(cp *crash.Panic) {
	crashedAt := k.Clock.Now()
	// The crash gate closes during recovery: deferred lock releases on
	// dying threads run through the same hooks that planted the panic,
	// and a panic inside recovery would be fatal for real.
	wasArmed := k.Faults.CrashArmed()
	if k.Faults != nil {
		k.Faults.DisableCrash()
	}
	k.Crash.RecordPanic(cp.Class)
	k.Trace.Emit(crashedAt, trace.KernelPanic, fmt.Sprintf("%s@%s", cp.Class, cp.Site), cp.Error())
	// Audit evidence: when the panic carries no taint of its own but a
	// ring entry captured an already-inconsistent image, the corruption
	// predates that checkpoint and restore must roll past it.
	if cp.TaintedAt == 0 {
		if at, ok := k.Crash.EvidenceTaint(); ok {
			cp.TaintedAt = at
		}
	}
	// The offending thread must be read before TakePanic clears it.
	dead := k.Sched.PanicThread()
	// Run returns immediately while the panic is latched; clear it
	// before Shutdown (which drives Run to drain the kill signals).
	k.Sched.TakePanic()
	if k.recoverScope == RecoverScopeGraft && k.recoverDomain(cp, dead, crashedAt) {
		if wasArmed {
			k.Faults.EnableCrash()
		}
		return
	}
	k.Sched.Shutdown()
	// Delayed detection (non-zero TaintedAt) means checkpoints taken
	// after the taint may already carry corrupt state: restore the
	// newest one predating it. Immediate detection takes the newest.
	var at time.Duration
	if cp.TaintedAt > 0 {
		at, _ = k.Crash.RestoreBefore(cp.TaintedAt)
	} else {
		at, _ = k.Crash.Restore()
	}
	// Blame lands after the restore so an expel verdict is not undone
	// by the snapshot reinstating the graft. The virtual time the crash
	// destroyed — work since the checkpoint — is billed to the graft as
	// recovery cost, on its own ledger axis apart from abort costs.
	if cp.Graft != "" && k.Guard != nil {
		if k.Guard.RecordAbort(cp.Graft, txn.ClassifyPanicCause(cp.Class), 0) == guard.VerdictExpel {
			k.Grafts.RemoveGuardKey(cp.Graft)
		}
		k.Guard.RecordRecovery(cp.Graft, crashedAt-at)
	}
	k.Clock.Reset(at)
	k.Sched.CrashReset(at)
	k.Crash.RecordRecovery()
	k.Trace.Emit(at, trace.Recovery, fmt.Sprintf("%s@%s", cp.Class, cp.Site),
		fmt.Sprintf("restored checkpoint, rewound %v", crashedAt-at))
	if wasArmed {
		k.Faults.EnableCrash()
	}
}

// recoverDomain attempts a domain-scoped recovery: roll back only the
// offending graft's rollback domain — its in-flight transactions, held
// locks and owner-stamped fs/vmm state — leaving every other thread's
// work live and virtual time unrewound. It returns false (after tracing
// recovery-widened) when a scoped rollback would be unsound, sending
// the caller down the classic whole-kernel path. The widening checks
// run before any state is touched, so widening composes with the
// whole-kernel restore exactly as if scoping had never been attempted.
func (k *Kernel) recoverDomain(cp *crash.Panic, dead *sched.Thread, crashedAt time.Duration) bool {
	widen := func(reason string) bool {
		k.Trace.Emit(crashedAt, trace.RecoveryWidened, fmt.Sprintf("%s@%s", cp.Class, cp.Site), reason)
		k.Crash.RecordWidened()
		return false
	}
	if cp.Graft == "" {
		// A stall or a panic outside any graft dispatch has no domain to
		// scope to.
		return widen("no offending graft")
	}
	if cp.TaintedAt > 0 {
		// Delayed detection: the damage predates the checkpoint a scoped
		// restore would revert to, so scoping cannot excise it.
		return widen(fmt.Sprintf("corruption predates checkpoint (tainted at %v)", cp.TaintedAt))
	}
	if dead == nil {
		return widen("no offending thread")
	}
	if locks := k.Locks.Entangled(dead); len(locks) > 0 {
		return widen("cross-graft lock held: " + strings.Join(locks, ", "))
	}
	if conflicts := k.Crash.DomainConflicts(cp.Graft); len(conflicts) > 0 {
		return widen("cross-domain writes: " + strings.Join(conflicts, "; "))
	}
	// Sound to scope: unwind the offender's transaction stack (undo
	// records run, its locks release), purge any remaining lock state of
	// the dead thread, then revert its owner-stamped fs/vmm writes to
	// the consolidated checkpoint image.
	aborted := k.Txns.AbortOrphan(dead)
	k.Locks.PurgeThread(dead)
	at, bytes, ok := k.Crash.RestoreDomain(cp.Graft)
	if !ok {
		// Unreachable in practice: RunRecovered only recovers with a
		// checkpoint in hand.
		return widen("no checkpoint image")
	}
	// Blame: the same ledger axes as a whole-kernel recovery, plus the
	// reverted payload. The offender is always removed — its heap died
	// mid-dispatch and is not restored by a scoped rollback — but the
	// guard ledger survives, so repeat offenders escalate across
	// reinstalls exactly as before.
	if k.Guard != nil {
		k.Guard.RecordAbort(cp.Graft, txn.ClassifyPanicCause(cp.Class), 0)
		k.Guard.RecordDomainRecovery(cp.Graft, crashedAt-at, bytes)
	}
	k.Grafts.RemoveGuardKey(cp.Graft)
	k.Crash.RecordScopedRecovery(bytes)
	k.Trace.Emit(at, trace.DomainCheckpoint, "crash",
		fmt.Sprintf("consolidated base for %s", cp.Graft))
	k.Trace.Emit(crashedAt, trace.DomainRestore, cp.Graft,
		fmt.Sprintf("reverted %d bytes, %d txn levels, base %v behind", bytes, aborted, crashedAt-at))
	return true
}

// Process is a user-level process: one kernel thread plus identity and
// resource limits.
type Process struct {
	Name    string
	UID     graft.UID
	Account *resource.Account
	Thread  *sched.Thread
	kernel  *Kernel
}

// ProcessLimits are the default resource limits granted to a new
// process.
var ProcessLimits = map[resource.Kind]int64{
	resource.Memory:      8 << 20,
	resource.WiredMemory: 1 << 20,
	resource.KernelHeap:  256 << 10,
	resource.Threads:     16,
	resource.Sockets:     32,
	resource.DiskBuffers: 64,
}

// SpawnProcess creates a process whose body runs on a fresh thread with
// the given identity and default limits.
func (k *Kernel) SpawnProcess(name string, uid graft.UID, body func(p *Process)) *Process {
	k.nextPID++
	acct := resource.NewAccount(fmt.Sprintf("proc:%s/%d", name, k.nextPID))
	for kind, n := range ProcessLimits {
		acct.SetLimit(kind, n)
	}
	p := &Process{Name: name, UID: uid, Account: acct, kernel: k}
	p.Thread = k.Sched.Spawn(name, func(t *sched.Thread) {
		graft.SetThreadIdentity(t, uid, acct)
		body(p)
	})
	k.processes[name] = p
	return p
}

// Kernel returns the owning kernel.
func (p *Process) Kernel() *Kernel { return p.kernel }

// Install is the process-facing graft installation call (Figure 1's
// handle.replace): look up the point, load the image.
func (p *Process) Install(pointName string, img *sfi.Image, opts graft.InstallOptions) (*graft.Installed, error) {
	return p.kernel.Grafts.Install(p.Thread, pointName, img, opts)
}

// BuildAndInstall runs the full toolchain on source and installs the
// result — the common path in examples and tests.
func (p *Process) BuildAndInstall(pointName, src string, opts graft.InstallOptions) (*graft.Installed, error) {
	img, _, err := sfi.BuildSafe(src, p.kernel.Signer)
	if err != nil {
		return nil, err
	}
	return p.Install(pointName, img, opts)
}

// registerBaseCallables installs the kernel functions available to every
// graft regardless of subsystem.
func (k *Kernel) registerBaseCallables() {
	// vino.log(ptr, len): append a message from the graft heap to the
	// kernel log. Demonstrates checked pointer arguments: the callable
	// validates the range against the graft's own segment, exactly the
	// argument checking the paper demands of graft-callable functions.
	k.Grafts.RegisterCallable("vino.log", func(ctx *graft.Ctx, args [5]int64) (int64, error) {
		data, err := readGraftBytes(ctx.VM, args[0], args[1])
		if err != nil {
			return 0, err
		}
		k.Logf("graft %s: %s", ctx.Graft.Image.Name, string(data))
		return 0, nil
	})
	// vino.now(): current virtual time in cycles. Meta-data, safe to
	// expose.
	k.Grafts.RegisterCallable("vino.now", func(ctx *graft.Ctx, args [5]int64) (int64, error) {
		return k.Clock.Cycles(k.Clock.Now()), nil
	})
	// vino.kheap_alloc(n): allocate n bytes of kernel heap against the
	// graft's resource account, with transactional undo. The allocation
	// is symbolic (the simulator tracks quantity, not placement); it is
	// the quantity-constrained-resource enforcement path of §3.2.
	k.Grafts.RegisterCallable("vino.kheap_alloc", func(ctx *graft.Ctx, args [5]int64) (int64, error) {
		n := args[0]
		if n <= 0 {
			return 0, fmt.Errorf("kheap_alloc: bad size %d", n)
		}
		acct := ctx.Account()
		if err := acct.Charge(resource.KernelHeap, n); err != nil {
			return 0, err
		}
		if ctx.Txn != nil {
			ctx.Txn.PushUndo("kheap_alloc", func() { acct.Release(resource.KernelHeap, n) })
		}
		return acct.Used(resource.KernelHeap), nil
	})
	// vino.kheap_free(n): return kernel heap.
	k.Grafts.RegisterCallable("vino.kheap_free", func(ctx *graft.Ctx, args [5]int64) (int64, error) {
		n := args[0]
		if n <= 0 {
			return 0, fmt.Errorf("kheap_free: bad size %d", n)
		}
		acct := ctx.Account()
		// Crash site: a kernel panic between validation and the balance
		// update models resource-bookkeeping corruption.
		k.Faults.MaybeCrash(crash.SiteResource, "")
		acct.Release(resource.KernelHeap, n)
		if ctx.Txn != nil {
			ctx.Txn.PushUndo("kheap_free", func() {
				// Best-effort: re-charge what was freed. A failure here
				// means the limit shrank mid-transaction; usage clamps.
				_ = acct.Charge(resource.KernelHeap, n)
			})
		}
		return acct.Used(resource.KernelHeap), nil
	})
	// vino.yield(): voluntarily give up the CPU.
	k.Grafts.RegisterCallable("vino.yield", func(ctx *graft.Ctx, args [5]int64) (int64, error) {
		ctx.Thread.Yield()
		return 0, nil
	})
}

// registerFaultCallables installs the kernel functions the graft fault
// library imports. They exist only on kernels configured with a fault
// plan — production configurations never expose them.
func (k *Kernel) registerFaultCallables() {
	k.hoardLock = k.Locks.NewLock("fault/hoard", &lock.Class{
		Name:    "fault",
		Timeout: 20 * time.Millisecond,
	})
	// fault.lock_hoard(): acquire the kernel-owned hoard lock under the
	// graft's transaction — the first half of the paper's
	// lock(resourceA); while(1) misbehavior.
	k.Grafts.RegisterCallable("fault.lock_hoard", func(ctx *graft.Ctx, args [5]int64) (int64, error) {
		if ctx.Txn != nil {
			ctx.Txn.AcquireLock(k.hoardLock, lock.Exclusive)
		} else {
			k.hoardLock.Acquire(ctx.Thread, lock.Exclusive)
		}
		return 0, nil
	})
	// fault.poison_undo(): push an undo record that blows up when the
	// abort path runs it. Exercises the guarantee that a fault inside
	// an undo handler cannot wedge the lock manager.
	k.Grafts.RegisterCallable("fault.poison_undo", func(ctx *graft.Ctx, args [5]int64) (int64, error) {
		if ctx.Txn != nil {
			ctx.Txn.PushUndo("fault.poison", func() {
				panic("fault: poisoned undo handler")
			})
		}
		return 0, nil
	})
}

// FaultHoardLock returns the kernel-owned lock the fault library's
// hoard grafts contend on (nil when no fault plan is configured).
func (k *Kernel) FaultHoardLock() *lock.Lock { return k.hoardLock }

// readGraftBytes validates that [addr, addr+n) lies inside the graft's
// segment and returns a copy.
func readGraftBytes(vm *sfi.VM, addr, n int64) ([]byte, error) {
	base, size := int64(vm.HeapBase()), int64(vm.HeapSize())
	if n < 0 || n > size || addr < base || addr+n > base+size {
		return nil, fmt.Errorf("kernel: graft pointer [%d,%d) outside its segment [%d,%d)", addr, addr+n, base, base+size)
	}
	off := addr - base
	return append([]byte(nil), vm.Heap()[off:off+n]...), nil
}

// ReadGraftBytes is the exported checked accessor for subsystems.
func ReadGraftBytes(vm *sfi.VM, addr, n int64) ([]byte, error) { return readGraftBytes(vm, addr, n) }

// WriteGraftBytes copies data into the graft segment at addr after the
// same range check.
func WriteGraftBytes(vm *sfi.VM, addr int64, data []byte) error {
	base, size := int64(vm.HeapBase()), int64(vm.HeapSize())
	n := int64(len(data))
	if addr < base || addr+n > base+size {
		return fmt.Errorf("kernel: graft pointer [%d,%d) outside its segment [%d,%d)", addr, addr+n, base, base+size)
	}
	copy(vm.Heap()[addr-base:], data)
	return nil
}
