package fs

// Name resolution: the third Black Box graft of the paper's taxonomy
// ("file system read-ahead, access control checking, and name
// resolution are examples of Black Box grafts", §4). The file system
// gets a hierarchical namespace, and each user may graft a
// path-translation function consulted on every lookup *by that user* —
// per-process namespaces, alias maps, chroot-style confinement — a
// Local graft point, so a malicious translator only affects the user
// who installed it (rule 8). Access-control checking, the taxonomy's
// other example, is registered as a Restricted point: per rule 5,
// security enforcement modules are never graftable.

import (
	"fmt"
	"strings"
	"time"

	"vino/internal/graft"
	"vino/internal/sched"
)

// CleanPath canonicalises a path: slash-separated, no leading slash, no
// empty or dot components.
func CleanPath(p string) (string, error) {
	parts := strings.Split(p, "/")
	out := parts[:0]
	for _, c := range parts {
		switch c {
		case "", ".":
			continue
		case "..":
			return "", fmt.Errorf("fs: %q: parent references not supported", p)
		}
		out = append(out, c)
	}
	if len(out) == 0 {
		return "", fmt.Errorf("fs: empty path")
	}
	return strings.Join(out, "/"), nil
}

// Mkdir creates a directory. Parents must exist; the root exists
// implicitly.
func (fs *FS) Mkdir(path string, owner graft.UID) error {
	p, err := CleanPath(path)
	if err != nil {
		return err
	}
	if fs.dirs[p] {
		return fmt.Errorf("fs: %q exists", p)
	}
	if _, ok := fs.files[p]; ok {
		return fmt.Errorf("fs: %q exists as a file", p)
	}
	if err := fs.checkParent(p); err != nil {
		return err
	}
	fs.dirs[p] = true
	return nil
}

func (fs *FS) checkParent(p string) error {
	i := strings.LastIndex(p, "/")
	if i < 0 {
		return nil // root
	}
	parent := p[:i]
	if !fs.dirs[parent] {
		return fmt.Errorf("%w: directory %q", ErrNotFound, parent)
	}
	return nil
}

// ReadDir lists the immediate children of a directory.
func (fs *FS) ReadDir(path string) ([]string, error) {
	prefix := ""
	if path != "" && path != "/" {
		p, err := CleanPath(path)
		if err != nil {
			return nil, err
		}
		if !fs.dirs[p] {
			return nil, fmt.Errorf("%w: directory %q", ErrNotFound, p)
		}
		prefix = p + "/"
	}
	seen := make(map[string]bool)
	var out []string
	add := func(full string) {
		if !strings.HasPrefix(full, prefix) {
			return
		}
		rest := full[len(prefix):]
		if i := strings.Index(rest, "/"); i >= 0 {
			rest = rest[:i]
		}
		if rest != "" && !seen[rest] {
			seen[rest] = true
			out = append(out, rest)
		}
	}
	for name := range fs.files {
		add(name)
	}
	for d := range fs.dirs {
		add(d)
	}
	return out, nil
}

// resolvePointName is the per-user translation point.
func resolvePointName(uid graft.UID) string {
	return fmt.Sprintf("fs/uid-%d.resolve", uid)
}

// Heap layout for the resolve graft: the kernel writes the request path
// length at ResolveInLen and its bytes at ResolveIn; the graft writes
// the translated path at ResolveOut and returns its length (0 = keep
// the original).
const (
	ResolveInLen  = 504
	ResolveIn     = 512
	ResolveOut    = 1024
	ResolveMaxLen = 255
)

// ResolvePoint returns (registering on first use) the calling user's
// name-resolution graft point.
func (fs *FS) ResolvePoint(t *sched.Thread) *graft.Point {
	uid := graft.ThreadUID(t)
	name := resolvePointName(uid)
	if p, err := fs.k.Grafts.Lookup(name); err == nil {
		return p
	}
	return fs.k.Grafts.RegisterPoint(&graft.Point{
		Name:      name,
		Kind:      graft.Function,
		Privilege: graft.Local,
		// Default: identity — the path resolves as given.
		Default: func(t *sched.Thread, args []int64) (int64, error) {
			return 0, nil
		},
		// The graft returns the translated length; bounded or it is
		// detectably invalid.
		Validate: func(t *sched.Thread, args []int64, res int64) (int64, error) {
			if res < 0 || res > ResolveMaxLen {
				return 0, fmt.Errorf("resolve returned length %d", res)
			}
			return res, nil
		},
		IndirectionCost: 500 * time.Nanosecond,
		Watchdog:        30 * time.Millisecond,
	})
}

// Resolve maps a user-visible path to a canonical one, consulting the
// user's translation graft if installed. Lookup costs one small charge
// per component, the simulator's stand-in for directory traversal.
func (fs *FS) Resolve(t *sched.Thread, path string) (string, error) {
	p, err := CleanPath(path)
	if err != nil {
		return "", err
	}
	point := fs.ResolvePoint(t)
	if point.Grafted() {
		g := point.Current()
		heap := g.VM().Heap()
		if len(p) > ResolveMaxLen {
			return "", fmt.Errorf("fs: path too long for translation: %d", len(p))
		}
		poke64Heap(heap, ResolveInLen, int64(len(p)))
		copy(heap[ResolveIn:ResolveIn+ResolveMaxLen], make([]byte, ResolveMaxLen))
		copy(heap[ResolveIn:], p)
		n, err := point.Invoke(t, int64(len(p)))
		if err == nil && n > 0 {
			translated := string(heap[ResolveOut : ResolveOut+n])
			p2, cerr := CleanPath(translated)
			if cerr != nil {
				return "", fmt.Errorf("fs: translator produced bad path %q: %w", translated, cerr)
			}
			p = p2
		}
		// On abort the default (identity) result applies and the graft
		// is already removed.
	}
	t.Charge(time.Duration(1+strings.Count(p, "/")) * 200 * time.Nanosecond)
	return p, nil
}

// OpenPath opens a file by hierarchical path through Resolve. Open (by
// exact name) remains for flat-namespace users and tests.
func (fs *FS) OpenPath(t *sched.Thread, path string) (*OpenFile, error) {
	p, err := fs.Resolve(t, path)
	if err != nil {
		return nil, err
	}
	return fs.Open(t, p)
}

// CreateAt creates a file at a hierarchical path, requiring the parent
// directory to exist.
func (fs *FS) CreateAt(path string, size int64, owner graft.UID, public bool) (*File, error) {
	p, err := CleanPath(path)
	if err != nil {
		return nil, err
	}
	if fs.dirs[p] {
		return nil, fmt.Errorf("fs: %q is a directory", p)
	}
	if _, ok := fs.files[p]; ok {
		return nil, fmt.Errorf("fs: %q exists", p)
	}
	if err := fs.checkParent(p); err != nil {
		return nil, err
	}
	return fs.Create(p, size, owner, public), nil
}

// poke64Heap is the little-endian store used for graft protocol fields.
func poke64Heap(heap []byte, off int, v int64) {
	for i := 0; i < 8; i++ {
		heap[off+i] = byte(uint64(v) >> (8 * i))
	}
}

// RegisterAccessControlPoint registers the taxonomy's access-control
// example as a Restricted point: it appears in the namespace (so tools
// can see the decision exists) but can never be grafted, per rule 5.
func (fs *FS) RegisterAccessControlPoint() *graft.Point {
	if p, err := fs.k.Grafts.Lookup("fs.check-access"); err == nil {
		return p
	}
	return fs.k.Grafts.RegisterPoint(&graft.Point{
		Name:      "fs.check-access",
		Kind:      graft.Function,
		Privilege: graft.Restricted,
		Default: func(t *sched.Thread, args []int64) (int64, error) {
			return 1, nil
		},
	})
}
