package fs

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"vino/internal/graft"
	"vino/internal/kernel"
)

func newTestFS(cacheBlocks int) (*kernel.Kernel, *FS) {
	k := kernel.New(kernel.Config{ZeroTxnCosts: true})
	f := New(k, NewDisk(FujitsuM2694ESA()), cacheBlocks)
	return k, f
}

// runProc runs body as a process and drives the scheduler to completion.
func runProc(t *testing.T, k *kernel.Kernel, uid graft.UID, body func(p *kernel.Process)) {
	t.Helper()
	k.SpawnProcess("app", uid, body)
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestDiskLatencyModel(t *testing.T) {
	d := NewDisk(FujitsuM2694ESA())
	random := d.ReadLatency(100)
	seq := d.ReadLatency(101)
	random2 := d.ReadLatency(500)
	if seq >= random {
		t.Fatalf("sequential %v >= random %v", seq, random)
	}
	if random != random2 {
		t.Fatalf("random latencies differ: %v %v", random, random2)
	}
	// ~16 ms for a random 4 KB read, consistent with the paper's 18 ms
	// page-fault cost.
	if random < 10*time.Millisecond || random > 25*time.Millisecond {
		t.Fatalf("random read latency %v outside the plausible range", random)
	}
	if d.Reads != 3 || d.SeqReads != 1 {
		t.Fatalf("stats: %+v", *d)
	}
}

func TestReadReturnsStableContent(t *testing.T) {
	k, fsys := newTestFS(128)
	fsys.Create("data", 8*BlockSize, 7, false)
	runProc(t, k, 7, func(p *kernel.Process) {
		of, err := fsys.Open(p.Thread, "data")
		if err != nil {
			t.Errorf("Open: %v", err)
			return
		}
		defer of.Close()
		a := make([]byte, 100)
		b := make([]byte, 100)
		if _, err := of.ReadAt(p.Thread, a, 4000); err != nil {
			t.Errorf("ReadAt: %v", err)
			return
		}
		if _, err := of.ReadAt(p.Thread, b, 4000); err != nil {
			t.Errorf("ReadAt: %v", err)
			return
		}
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("content unstable at %d", i)
				return
			}
		}
	})
}

func TestReadCrossesBlockBoundary(t *testing.T) {
	k, fsys := newTestFS(128)
	f := fsys.Create("data", 4*BlockSize, 7, false)
	runProc(t, k, 7, func(p *kernel.Process) {
		of, err := fsys.Open(p.Thread, "data")
		if err != nil {
			t.Errorf("Open: %v", err)
			return
		}
		buf := make([]byte, BlockSize)
		n, err := of.ReadAt(p.Thread, buf, BlockSize/2)
		if err != nil || n != BlockSize {
			t.Errorf("n=%d err=%v", n, err)
			return
		}
		b0 := f.blockContent(0)
		b1 := f.blockContent(1)
		if buf[0] != b0[BlockSize/2] || buf[BlockSize-1] != b1[BlockSize/2-1] {
			t.Error("cross-boundary read returned wrong bytes")
		}
	})
}

func TestReadBeyondEOFTruncatedAndErrors(t *testing.T) {
	k, fsys := newTestFS(16)
	fsys.Create("data", BlockSize+100, 7, false)
	runProc(t, k, 7, func(p *kernel.Process) {
		of, _ := fsys.Open(p.Thread, "data")
		buf := make([]byte, 500)
		n, err := of.ReadAt(p.Thread, buf, BlockSize)
		if err != nil || n != 100 {
			t.Errorf("short read: n=%d err=%v", n, err)
		}
		if _, err := of.ReadAt(p.Thread, buf, BlockSize+200); err == nil {
			t.Error("read past EOF succeeded")
		}
	})
}

func TestPermissionChecks(t *testing.T) {
	k, fsys := newTestFS(16)
	fsys.Create("private", BlockSize, 7, false)
	fsys.Create("public", BlockSize, 7, true)
	runProc(t, k, 8, func(p *kernel.Process) {
		if _, err := fsys.Open(p.Thread, "private"); !errors.Is(err, ErrPermission) {
			t.Errorf("foreign open = %v, want ErrPermission", err)
		}
		if _, err := fsys.Open(p.Thread, "public"); err != nil {
			t.Errorf("public open: %v", err)
		}
		if _, err := fsys.Open(p.Thread, "missing"); !errors.Is(err, ErrNotFound) {
			t.Errorf("missing open = %v", err)
		}
	})
	// Root reads anything.
	k2, fsys2 := newTestFS(16)
	fsys2.Create("private", BlockSize, 7, false)
	runProc(t, k2, graft.Root, func(p *kernel.Process) {
		if _, err := fsys2.Open(p.Thread, "private"); err != nil {
			t.Errorf("root open: %v", err)
		}
	})
}

func TestCacheHitsAvoidStall(t *testing.T) {
	k, fsys := newTestFS(128)
	fsys.Create("data", 4*BlockSize, 7, false)
	runProc(t, k, 7, func(p *kernel.Process) {
		of, _ := fsys.Open(p.Thread, "data")
		buf := make([]byte, 10)
		if _, err := of.ReadAt(p.Thread, buf, 0); err != nil {
			t.Error(err)
			return
		}
		before := k.Clock.Now()
		if _, err := of.ReadAt(p.Thread, buf, 100); err != nil {
			t.Error(err)
			return
		}
		// Same block: no disk time, only CPU-scale costs.
		if gap := k.Clock.Now() - before; gap > time.Millisecond {
			t.Errorf("cache hit took %v", gap)
		}
		if of.CacheHits != 1 || of.SyncStalls != 1 {
			t.Errorf("hits=%d stalls=%d", of.CacheHits, of.SyncStalls)
		}
	})
}

// TestDefaultSequentialReadAhead: the built-in policy prefetches on
// sequential access, so the second sequential block stalls less (or not
// at all).
func TestDefaultSequentialReadAhead(t *testing.T) {
	k, fsys := newTestFS(128)
	fsys.Create("data", 16*BlockSize, 7, false)
	runProc(t, k, 7, func(p *kernel.Process) {
		of, _ := fsys.Open(p.Thread, "data")
		of.RAWindow = 2
		buf := make([]byte, BlockSize)
		// Two sequential reads trigger prefetch of blocks 2,3.
		if _, err := of.ReadAt(p.Thread, buf, 0); err != nil {
			t.Error(err)
			return
		}
		if _, err := of.ReadAt(p.Thread, buf, BlockSize); err != nil {
			t.Error(err)
			return
		}
		// Give the prefetch time to land.
		p.Thread.Sleep(40 * time.Millisecond)
		stallsBefore := of.SyncStalls
		if _, err := of.ReadAt(p.Thread, buf, 2*BlockSize); err != nil {
			t.Error(err)
			return
		}
		if of.SyncStalls != stallsBefore {
			t.Error("sequential read stalled despite read-ahead")
		}
		if of.PrefetchUsed == 0 {
			t.Error("prefetch never used")
		}
	})
	if fsys.Stats().PrefetchIssued == 0 {
		t.Fatal("no prefetch issued")
	}
}

func TestDefaultReadAheadSkipsRandomAccess(t *testing.T) {
	k, fsys := newTestFS(128)
	fsys.Create("data", 64*BlockSize, 7, false)
	runProc(t, k, 7, func(p *kernel.Process) {
		of, _ := fsys.Open(p.Thread, "data")
		buf := make([]byte, 100)
		for _, off := range []int64{0, 10 * BlockSize, 3 * BlockSize, 40 * BlockSize} {
			if _, err := of.ReadAt(p.Thread, buf, off); err != nil {
				t.Error(err)
				return
			}
		}
	})
	if got := fsys.Stats().PrefetchQueued; got != 0 {
		t.Fatalf("random access queued %d prefetches", got)
	}
}

// readAheadGraftSrc is the §4.1.2 graft: the application deposits its
// next (offset, size) in the shared buffer (the graft heap); the graft
// reads it and issues fs.prefetch.
const readAheadGraftSrc = `
.name compute-ra
.import fs.prefetch
.func main
main:
    ; r1 = current offset, r2 = current size (ignored)
    ld r3, [r10+0]    ; next offset from shared buffer
    ld r4, [r10+8]    ; next size
    jz r4, done       ; nothing to prefetch
    ld r1, [r10+16]   ; fd
    mov r2, r3
    mov r3, r4
    callk fs.prefetch
    ret
done:
    movi r0, 0
    ret
`

// installRAGraft installs the read-ahead graft and returns it; the test
// writes the pattern into the shared buffer via the heap.
func installRAGraft(t *testing.T, p *kernel.Process, of *OpenFile) *graft.Installed {
	t.Helper()
	g, err := p.BuildAndInstall(of.RAPoint().Name, readAheadGraftSrc, graft.InstallOptions{})
	if err != nil {
		t.Fatalf("install RA graft: %v", err)
	}
	// Stash the fd at heap+16 once.
	poke64(g.VM().Heap(), 16, int64(of.FD()))
	return g
}

func poke64(heap []byte, off int, v int64) {
	for i := 0; i < 8; i++ {
		heap[off+i] = byte(uint64(v) >> (8 * i))
	}
}

// TestReadAheadGraftHidesRandomStalls is the paper's §4.1 experiment in
// miniature: a random reader that announces its next read prefetches it
// and stalls less than an ungrafted reader.
func TestReadAheadGraftHidesRandomStalls(t *testing.T) {
	// Pseudo-random but fixed access pattern over a 12 MB file.
	pattern := make([]int64, 40)
	state := int64(12345)
	nBlocks := int64(12 << 20 / BlockSize)
	for i := range pattern {
		state = (state*1103515245 + 12345) & 0x7FFFFFFF
		pattern[i] = state % nBlocks
	}
	run := func(useGraft bool) (stall time.Duration, compute time.Duration) {
		k, fsys := newTestFS(4096)
		fsys.Create("db", 12<<20, 7, false)
		runProc(t, k, 7, func(p *kernel.Process) {
			of, _ := fsys.Open(p.Thread, "db")
			var g *graft.Installed
			if useGraft {
				g = installRAGraft(t, p, of)
			}
			buf := make([]byte, BlockSize)
			computePer := 2 * time.Millisecond
			for i, b := range pattern {
				if useGraft {
					// Announce the NEXT read before this one, so the
					// prefetch overlaps the compute phase.
					if i+1 < len(pattern) {
						poke64(g.VM().Heap(), 0, pattern[i+1]*BlockSize)
						poke64(g.VM().Heap(), 8, BlockSize)
					} else {
						poke64(g.VM().Heap(), 8, 0)
					}
				}
				if _, err := of.ReadAt(p.Thread, buf, b*BlockSize); err != nil {
					t.Error(err)
					return
				}
				// "performs some computation on it"
				p.Thread.Charge(computePer)
				compute += computePer
			}
			stall = of.StallTime
		})
		return stall, compute
	}
	stallGraft, _ := run(true)
	stallPlain, _ := run(false)
	if stallGraft >= stallPlain {
		t.Fatalf("graft did not help: stall with graft %v, without %v", stallGraft, stallPlain)
	}
	// With 2 ms of compute between reads and ~16 ms random reads, the
	// graft hides only part of the latency; it must hide at least the
	// compute period per read.
	if stallPlain-stallGraft < 30*time.Millisecond {
		t.Fatalf("benefit too small: %v", stallPlain-stallGraft)
	}
}

// TestReadAheadGraftAbortUndoesQueue: a graft that queues prefetches and
// then traps leaves no queue residue.
func TestReadAheadGraftAbortUndoesQueue(t *testing.T) {
	k, fsys := newTestFS(64)
	fsys.Create("db", 4<<20, 7, false)
	runProc(t, k, 7, func(p *kernel.Process) {
		of, _ := fsys.Open(p.Thread, "db")
		g, err := p.BuildAndInstall(of.RAPoint().Name, `
.name bad-ra
.import fs.prefetch
.func main
main:
    ld r1, [r10+16]
    movi r2, 0
    movi r3, 40960     ; ten blocks
    callk fs.prefetch
    movi r4, 0
    div r0, r3, r4     ; trap after queuing
    ret
`, graft.InstallOptions{})
		if err != nil {
			t.Errorf("install: %v", err)
			return
		}
		poke64(g.VM().Heap(), 16, int64(of.FD()))
		buf := make([]byte, 10)
		if _, err := of.ReadAt(p.Thread, buf, 500*BlockSize); err != nil {
			t.Error(err)
			return
		}
		if len(of.queue) != 0 {
			t.Errorf("queue has %d residual entries after abort", len(of.queue))
		}
		if !g.Removed() {
			t.Error("trapping graft not removed")
		}
	})
	if fsys.Stats().PrefetchIssued != 0 {
		t.Fatalf("aborted prefetches were issued: %d", fsys.Stats().PrefetchIssued)
	}
}

// TestGreedyGraftBoundedByGlobalPolicy: a graft requesting an enormous
// prefetch cannot monopolise memory — the global read-ahead reservation
// drains the queue gradually (§4.1.2's 100 MB example).
func TestGreedyGraftBoundedByGlobalPolicy(t *testing.T) {
	k, fsys := newTestFS(8192)
	fsys.MaxReadAhead = 4
	fsys.Create("db", 8<<20, 7, false)
	runProc(t, k, 7, func(p *kernel.Process) {
		of, _ := fsys.Open(p.Thread, "db")
		g, err := p.BuildAndInstall(of.RAPoint().Name, `
.name greedy-ra
.import fs.prefetch
.func main
main:
    ld r1, [r10+16]
    movi r2, 0
    movi r3, 4194304   ; ask for 4 MB at once
    callk fs.prefetch
    ret
`, graft.InstallOptions{})
		if err != nil {
			t.Errorf("install: %v", err)
			return
		}
		poke64(g.VM().Heap(), 16, int64(of.FD()))
		buf := make([]byte, 10)
		if _, err := of.ReadAt(p.Thread, buf, 7<<20); err != nil {
			t.Error(err)
			return
		}
		// Immediately after the read, at most MaxReadAhead fetches are
		// outstanding even though ~1024 were requested.
		if fsys.raOutstanding > fsys.MaxReadAhead {
			t.Errorf("outstanding = %d > reservation %d", fsys.raOutstanding, fsys.MaxReadAhead)
		}
		if of.PrefetchQueued < 1000 {
			t.Errorf("queued = %d, want ~1024", of.PrefetchQueued)
		}
	})
}

// TestGraftCannotPrefetchForeignFile: the graft-callable checks the
// owner's permission (rule 4's dynamic half).
func TestGraftCannotPrefetchForeignFile(t *testing.T) {
	k, fsys := newTestFS(64)
	fsys.Create("mine", 1<<20, 7, false)
	fsys.Create("theirs", 1<<20, 9, false)
	var foreignFD int
	k.SpawnProcess("victim", 9, func(p *kernel.Process) {
		of, err := fsys.Open(p.Thread, "theirs")
		if err != nil {
			t.Errorf("Open: %v", err)
			return
		}
		foreignFD = of.FD()
		for i := 0; i < 30; i++ {
			p.Thread.Yield()
		}
	})
	k.SpawnProcess("attacker", 7, func(p *kernel.Process) {
		p.Thread.Yield() // let victim open first
		of, _ := fsys.Open(p.Thread, "mine")
		g, err := p.BuildAndInstall(of.RAPoint().Name, readAheadGraftSrc, graft.InstallOptions{})
		if err != nil {
			t.Errorf("install: %v", err)
			return
		}
		// Point the graft at the victim's descriptor.
		poke64(g.VM().Heap(), 16, int64(foreignFD))
		poke64(g.VM().Heap(), 0, 0)
		poke64(g.VM().Heap(), 8, BlockSize)
		buf := make([]byte, 10)
		if _, err := of.ReadAt(p.Thread, buf, 0); err != nil {
			t.Error(err)
			return
		}
		if !g.Removed() {
			t.Error("cross-file prefetch graft survived")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fsys.Stats().PrefetchIssued != 0 {
		t.Fatal("foreign prefetch was issued")
	}
}

func TestWriteReadBack(t *testing.T) {
	k, fsys := newTestFS(64)
	fsys.Create("data", 4*BlockSize, 7, false)
	runProc(t, k, 7, func(p *kernel.Process) {
		of, _ := fsys.Open(p.Thread, "data")
		msg := []byte("surviving misbehaved kernel extensions")
		if _, err := of.WriteAt(p.Thread, msg, 100); err != nil {
			t.Error(err)
			return
		}
		buf := make([]byte, len(msg))
		if _, err := of.ReadAt(p.Thread, buf, 100); err != nil {
			t.Error(err)
			return
		}
		if string(buf) != string(msg) {
			t.Errorf("read back %q", buf)
		}
	})
}

func TestWritePermission(t *testing.T) {
	k, fsys := newTestFS(64)
	fsys.Create("public", BlockSize, 7, true)
	runProc(t, k, 8, func(p *kernel.Process) {
		of, err := fsys.Open(p.Thread, "public")
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := of.WriteAt(p.Thread, []byte("x"), 0); !errors.Is(err, ErrPermission) {
			t.Errorf("foreign write = %v", err)
		}
	})
}

func TestClosedFileRejectsIO(t *testing.T) {
	k, fsys := newTestFS(64)
	fsys.Create("data", BlockSize, 7, false)
	runProc(t, k, 7, func(p *kernel.Process) {
		of, _ := fsys.Open(p.Thread, "data")
		of.Close()
		if _, err := of.ReadAt(p.Thread, make([]byte, 1), 0); !errors.Is(err, ErrClosed) {
			t.Errorf("read after close = %v", err)
		}
		// The graft point is gone from the namespace.
		if _, err := k.Grafts.Lookup(of.RAPoint().Name); err == nil {
			t.Error("compute-ra point survived close")
		}
	})
}

func TestCacheLRUEviction(t *testing.T) {
	c := newCache(2)
	c.put(1, []byte{1}, false)
	c.put(2, []byte{2}, false)
	c.get(1) // make 2 the LRU
	c.put(3, []byte{3}, false)
	if c.contains(2) {
		t.Fatal("LRU entry not evicted")
	}
	if !c.contains(1) || !c.contains(3) {
		t.Fatal("wrong entry evicted")
	}
	if c.len() != 2 {
		t.Fatalf("len = %d", c.len())
	}
}

// Property: any sequence of reads through the cache returns exactly the
// file's deterministic content.
func TestPropertyReadsSeeTrueContent(t *testing.T) {
	f := func(offsets []uint32) bool {
		k, fsys := newTestFS(8) // tiny cache forces eviction traffic
		file := fsys.Create("data", 64*BlockSize, 7, false)
		ok := true
		k.SpawnProcess("app", 7, func(p *kernel.Process) {
			of, _ := fsys.Open(p.Thread, "data")
			buf := make([]byte, 16)
			for _, o := range offsets {
				off := int64(o) % (file.Size - 16)
				if _, err := of.ReadAt(p.Thread, buf, off); err != nil {
					ok = false
					return
				}
				b := off / BlockSize
				bo := off % BlockSize
				content := file.blockContent(b)
				for i := 0; i < 16 && bo+int64(i) < BlockSize; i++ {
					if buf[i] != content[bo+int64(i)] {
						ok = false
						return
					}
				}
			}
		})
		if err := k.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
