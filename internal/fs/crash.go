package fs

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"
	"time"

	"vino/internal/graft"
)

// Crash checkpoint/restore for the file system. The durable image —
// the namespace, file contents (dirty blocks), descriptor table and
// counters — is restored exactly; the volatile buffer cache and
// read-ahead machinery come back empty, as after a reboot. Files
// created and descriptors opened after the checkpoint vanish; their
// stale handles fail closed.

type fileSnap struct {
	file  *File
	dirty map[int64][]byte
}

type ofSnap struct {
	of       *OpenFile
	raWindow int64
	queue    []int64
	lastOff  int64
	lastLen  int64
	haveLast bool

	reads, cacheHits, syncStalls int64
	prefetchUsed, prefetchQueued int64
	stallTime                    time.Duration
}

type fsSnap struct {
	files   map[string]*fileSnap
	dirs    map[string]bool
	fds     map[int]*ofSnap
	nextFD  int
	nextLBA int64
	stats   Stats
}

func copyDirty(m map[int64][]byte) map[int64][]byte {
	out := make(map[int64][]byte, len(m))
	for b, d := range m {
		out[b] = append([]byte(nil), d...)
	}
	return out
}

// fsDelta is the incremental capture: files created or written since a
// generation (with only their freshly dirtied blocks), plus the small
// volatile scalars — directory set, descriptor table, counters — which
// mutate on nearly every operation and are cheaper to copy than to
// track per-field.
type fsDelta struct {
	files   map[string]*fileSnap
	dirs    map[string]bool
	fds     map[int]*ofSnap
	nextFD  int
	nextLBA int64
	stats   Stats
}

// CrashName implements crash.Snapshotter.
func (fs *FS) CrashName() string { return "fs" }

// snapFDs deep-copies the descriptor table (shared by full and delta
// captures; the table is bounded by open descriptors, not file data).
func (fs *FS) snapFDs() map[int]*ofSnap {
	fds := make(map[int]*ofSnap, len(fs.fdTable))
	for fd, of := range fs.fdTable {
		fds[fd] = &ofSnap{
			of:             of,
			raWindow:       of.RAWindow,
			queue:          append([]int64(nil), of.queue...),
			lastOff:        of.lastOff,
			lastLen:        of.lastLen,
			haveLast:       of.haveLast,
			reads:          of.Reads,
			cacheHits:      of.CacheHits,
			syncStalls:     of.SyncStalls,
			prefetchUsed:   of.PrefetchUsed,
			prefetchQueued: of.PrefetchQueued,
			stallTime:      of.StallTime,
		}
	}
	return fds
}

func (fs *FS) snapDirs() map[string]bool {
	dirs := make(map[string]bool, len(fs.dirs))
	for d := range fs.dirs {
		dirs[d] = true
	}
	return dirs
}

// CrashSnapshot implements crash.Snapshotter.
func (fs *FS) CrashSnapshot() any {
	s := &fsSnap{
		files:   make(map[string]*fileSnap, len(fs.files)),
		dirs:    fs.snapDirs(),
		fds:     fs.snapFDs(),
		nextFD:  fs.nextFD,
		nextLBA: fs.nextLBA,
		stats:   fs.stats,
	}
	for n, f := range fs.files {
		s.files[n] = &fileSnap{file: f, dirty: copyDirty(f.dirty)}
	}
	return s
}

// CrashDelta implements crash.DeltaSnapshotter: only blocks written
// (and files created) in generations after sinceGen are copied, so the
// capture costs O(state changed) rather than O(file data).
func (fs *FS) CrashDelta(sinceGen uint64) any {
	d := &fsDelta{
		files:   make(map[string]*fileSnap),
		dirs:    fs.snapDirs(),
		fds:     fs.snapFDs(),
		nextFD:  fs.nextFD,
		nextLBA: fs.nextLBA,
		stats:   fs.stats,
	}
	for n, f := range fs.files {
		if f.genCreated > sinceGen {
			// New file: its whole dirty set rides the delta.
			d.files[n] = &fileSnap{file: f, dirty: copyDirty(f.dirty)}
			continue
		}
		if f.maxDirtyGen <= sinceGen {
			continue
		}
		fsn := &fileSnap{file: f, dirty: make(map[int64][]byte)}
		for b, g := range f.dirtyGen {
			if g <= sinceGen {
				continue
			}
			if blk, ok := f.dirty[b]; ok {
				fsn.dirty[b] = append([]byte(nil), blk...)
			}
		}
		d.files[n] = fsn
	}
	return d
}

// CrashMerge implements crash.DeltaSnapshotter. The base is mutated in
// place and returned, so folding costs O(delta): the delta's blocks
// are grafted onto the base's per-file maps, and the wholesale-copied
// scalars simply replace the base's.
func (fs *FS) CrashMerge(base, delta any) any {
	d := delta.(*fsDelta)
	if base == nil {
		s := &fsSnap{files: d.files, dirs: d.dirs, fds: d.fds, nextFD: d.nextFD, nextLBA: d.nextLBA, stats: d.stats}
		return s
	}
	s := base.(*fsSnap)
	for n, fsn := range d.files {
		if bs, ok := s.files[n]; ok && bs.file == fsn.file {
			for b, blk := range fsn.dirty {
				bs.dirty[b] = blk
			}
		} else {
			s.files[n] = fsn
		}
	}
	s.dirs = d.dirs
	s.fds = d.fds
	s.nextFD = d.nextFD
	s.nextLBA = d.nextLBA
	s.stats = d.stats
	return s
}

// SnapshotBytes sizes a capture — a CrashSnapshot or CrashDelta result —
// by the block payload it carries, the dominant term of a file-system
// checkpoint. The checkpoint-cost sweep and benchmark use it to show
// that incremental captures carry O(dirty) bytes.
func SnapshotBytes(snap any) int64 {
	var files map[string]*fileSnap
	switch s := snap.(type) {
	case *fsSnap:
		files = s.files
	case *fsDelta:
		files = s.files
	default:
		return 0
	}
	var n int64
	for _, f := range files {
		for _, blk := range f.dirty {
			n += int64(len(blk))
		}
	}
	return n
}

// CrashRestore implements crash.Snapshotter.
func (fs *FS) CrashRestore(snap any) {
	s := snap.(*fsSnap)
	// Descriptors opened after the checkpoint fail closed.
	for fd, of := range fs.fdTable {
		if _, ok := s.fds[fd]; !ok {
			of.closed = true
		}
	}
	fs.files = make(map[string]*File, len(s.files))
	for n, fsn := range s.files {
		fsn.file.dirty = copyDirty(fsn.dirty)
		// Restored blocks match the consolidated checkpoint image
		// exactly, so their dirty stamps rewind to zero: the next
		// incremental capture copies only post-restore writes. Stale
		// stamps for blocks written after the checkpoint die here too.
		fsn.file.dirtyGen = nil
		fsn.file.dirtyOwner = nil
		fsn.file.maxDirtyGen = 0
		fs.files[n] = fsn.file
	}
	// A whole-kernel restore rewinds every domain at once, so recorded
	// cross-owner conflicts are moot.
	fs.ownerConflicts = nil
	fs.dirs = make(map[string]bool, len(s.dirs))
	for d := range s.dirs {
		fs.dirs[d] = true
	}
	fs.fdTable = make(map[int]*OpenFile, len(s.fds))
	for fd, osn := range s.fds {
		of := osn.of
		of.closed = false
		of.RAWindow = osn.raWindow
		of.queue = append([]int64(nil), osn.queue...)
		of.lastOff, of.lastLen, of.haveLast = osn.lastOff, osn.lastLen, osn.haveLast
		of.Reads, of.CacheHits, of.SyncStalls = osn.reads, osn.cacheHits, osn.syncStalls
		of.PrefetchUsed, of.PrefetchQueued = osn.prefetchUsed, osn.prefetchQueued
		of.StallTime = osn.stallTime
		fs.fdTable[fd] = of
	}
	fs.nextFD = s.nextFD
	fs.nextLBA = s.nextLBA
	fs.stats = s.stats
	// The buffer cache and read-ahead reservations are volatile: they
	// come back empty, like RAM after a reboot. Pending fetch callbacks
	// died with the clock reset.
	fs.cache = newCache(fs.cache.capacity)
	fs.raOutstanding = 0
}

// fileExport is one file's durable (on-disk) image: identity, size and
// the dirty blocks that differ from the deterministic pristine pattern.
type fileExport struct {
	Name   string
	Size   int64
	Owner  int64
	Public bool
	Dirty  map[int64][]byte
}

// fsExport is the file system's durable image. Directories ride along;
// descriptors, the cache and read-ahead state are volatile and rebuilt
// empty after import.
type fsExport struct {
	Files []fileExport
	Dirs  []string
}

// CrashExport implements crash.Exporter.
func (fs *FS) CrashExport() ([]byte, error) {
	ex := &fsExport{}
	names := make([]string, 0, len(fs.files))
	for n := range fs.files {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		f := fs.files[n]
		ex.Files = append(ex.Files, fileExport{
			Name: f.Name, Size: f.Size, Owner: int64(f.Owner), Public: f.Public,
			Dirty: copyDirty(f.dirty),
		})
	}
	for d := range fs.dirs {
		ex.Dirs = append(ex.Dirs, d)
	}
	sort.Strings(ex.Dirs)
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(ex)
	return buf.Bytes(), err
}

// CrashImport implements crash.Exporter: files are recreated through
// the normal namespace path and their block contents injected. Meant
// for a freshly built file system (the disk image stands in for the
// machine that crashed).
func (fs *FS) CrashImport(data []byte) error {
	var ex fsExport
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&ex); err != nil {
		return err
	}
	for _, d := range ex.Dirs {
		fs.dirs[d] = true
	}
	for _, fe := range ex.Files {
		f := fs.Create(fe.Name, fe.Size, graft.UID(fe.Owner), fe.Public)
		f.dirty = copyDirty(fe.Dirty)
	}
	return nil
}

func ownerName(o string) string {
	if o == "" {
		return "kernel"
	}
	return o
}

// CrashOwnerConflicts implements crash.DomainScoper: it reports blocks
// where owner and another domain both wrote after sinceGen. Reverting
// the offender's copy of such a block would also rewind the other
// domain's completed write, so recovery must widen. Conflicts where
// either write predates the checkpoint are moot — the older write is
// already durable in the checkpoint image. The conflict log is
// append-only between whole-kernel restores; at simulator scale the
// unbounded growth is acceptable.
func (fs *FS) CrashOwnerConflicts(sinceGen uint64, owner string) []string {
	var out []string
	for _, c := range fs.ownerConflicts {
		if c.gen <= sinceGen || c.prevGen <= sinceGen {
			continue
		}
		if c.owner != owner && c.prevOwner != owner {
			continue
		}
		out = append(out, fmt.Sprintf("file %q block %d: %s overwrote %s",
			c.file, c.block, ownerName(c.owner), ownerName(c.prevOwner)))
	}
	return out
}

// CrashRestoreDomain implements crash.DomainScoper: it reverts only the
// blocks owner dirtied after sinceGen back to their content in snap (a
// full consolidated image at that generation), and removes files owner
// created after the checkpoint. Everything else — other owners' writes,
// the shared descriptor table, counters, the untouched cache entries —
// stays live.
func (fs *FS) CrashRestoreDomain(owner string, snap any, sinceGen uint64) int64 {
	s := snap.(*fsSnap)
	var bytes int64
	names := make([]string, 0, len(fs.files))
	for n := range fs.files {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		f := fs.files[n]
		if f.crashOwner == owner && owner != "" && f.genCreated > sinceGen {
			// The offender created this file after the checkpoint: it
			// vanishes wholesale, along with any descriptors onto it
			// (which fail closed, as after a whole-kernel restore).
			for _, blk := range f.dirty {
				bytes += int64(len(blk))
			}
			for fd, of := range fs.fdTable {
				if of.file == f {
					of.closed = true
					delete(fs.fdTable, fd)
				}
			}
			for b := int64(0); b < f.Blocks(); b++ {
				fs.cache.drop(f.start + b)
			}
			delete(fs.files, n)
			continue
		}
		if len(f.dirtyOwner) == 0 {
			continue
		}
		fsn := s.files[n]
		blocks := make([]int64, 0, len(f.dirtyOwner))
		for b, own := range f.dirtyOwner {
			if own == owner && f.dirtyGen[b] > sinceGen {
				blocks = append(blocks, b)
			}
		}
		sort.Slice(blocks, func(i, j int) bool { return blocks[i] < blocks[j] })
		for _, b := range blocks {
			if fsn != nil {
				if blk, ok := fsn.dirty[b]; ok {
					f.dirty[b] = append([]byte(nil), blk...)
				} else {
					delete(f.dirty, b)
				}
			} else {
				// File absent from the checkpoint image (created after it
				// by another domain): the offender's block reverts to
				// pristine content.
				delete(f.dirty, b)
			}
			delete(f.dirtyOwner, b)
			delete(f.dirtyGen, b)
			fs.cache.drop(f.start + b)
			bytes += BlockSize
		}
	}
	return bytes
}

// CrashAudit implements crash.Auditor: a read-only structural check
// restricted to invariants that hold at any instant (Fsck's quiescence
// checks — no read-ahead or fetches in flight — are deliberately
// excluded, since checkpoints fire on a cadence with I/O logically
// outstanding).
func (fs *FS) CrashAudit() []string {
	var bad []string
	names := make([]string, 0, len(fs.files))
	for n := range fs.files {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		f := fs.files[n]
		for b, d := range f.dirty {
			if b < 0 || b >= f.Blocks() {
				bad = append(bad, fmt.Sprintf("file %q: dirty block %d outside file", n, b))
			}
			if len(d) != BlockSize {
				bad = append(bad, fmt.Sprintf("file %q: dirty block %d has %d bytes", n, b, len(d)))
			}
		}
	}
	if fs.cache.lru.Len() != len(fs.cache.byLBA) {
		bad = append(bad, fmt.Sprintf("cache: lru holds %d blocks, index %d", fs.cache.lru.Len(), len(fs.cache.byLBA)))
	}
	if fs.cache.lru.Len() > fs.cache.capacity {
		bad = append(bad, fmt.Sprintf("cache: %d blocks resident, capacity %d", fs.cache.lru.Len(), fs.cache.capacity))
	}
	return bad
}

// Fsck audits the file system's structural invariants. It is meant to
// run at quiescent points (after a Run round, or after crash recovery);
// the returned slice is empty when the image is consistent.
func (fs *FS) Fsck() []string {
	var bad []string
	fds := make([]int, 0, len(fs.fdTable))
	for fd := range fs.fdTable {
		fds = append(fds, fd)
	}
	sort.Ints(fds)
	for _, fd := range fds {
		of := fs.fdTable[fd]
		switch {
		case of == nil:
			bad = append(bad, fmt.Sprintf("fd %d: nil entry", fd))
			continue
		case of.closed:
			bad = append(bad, fmt.Sprintf("fd %d: closed but still in table", fd))
		case of.fd != fd:
			bad = append(bad, fmt.Sprintf("fd %d: entry claims fd %d", fd, of.fd))
		}
		if got, ok := fs.files[of.file.Name]; !ok || got != of.file {
			bad = append(bad, fmt.Sprintf("fd %d: file %q not in namespace", fd, of.file.Name))
		}
		seen := make(map[int64]bool)
		for _, b := range of.queue {
			if b < 0 || b >= of.file.Blocks() {
				bad = append(bad, fmt.Sprintf("fd %d: queued block %d outside file (%d blocks)", fd, b, of.file.Blocks()))
			}
			if seen[b] {
				bad = append(bad, fmt.Sprintf("fd %d: block %d queued twice", fd, b))
			}
			seen[b] = true
		}
	}
	names := make([]string, 0, len(fs.files))
	for n := range fs.files {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		f := fs.files[n]
		for b, d := range f.dirty {
			if b < 0 || b >= f.Blocks() {
				bad = append(bad, fmt.Sprintf("file %q: dirty block %d outside file", n, b))
			}
			if len(d) != BlockSize {
				bad = append(bad, fmt.Sprintf("file %q: dirty block %d has %d bytes", n, b, len(d)))
			}
		}
	}
	if fs.cache.lru.Len() != len(fs.cache.byLBA) {
		bad = append(bad, fmt.Sprintf("cache: lru holds %d blocks, index %d", fs.cache.lru.Len(), len(fs.cache.byLBA)))
	}
	if fs.cache.lru.Len() > fs.cache.capacity {
		bad = append(bad, fmt.Sprintf("cache: %d blocks resident, capacity %d", fs.cache.lru.Len(), fs.cache.capacity))
	}
	for e := fs.cache.lru.Front(); e != nil; e = e.Next() {
		ent := e.Value.(*cacheEntry)
		if got, ok := fs.cache.byLBA[ent.lba]; !ok || got != e {
			bad = append(bad, fmt.Sprintf("cache: lba %d not indexed consistently", ent.lba))
		}
	}
	if fs.raOutstanding != 0 {
		bad = append(bad, fmt.Sprintf("%d read-ahead I/Os outstanding at quiescence", fs.raOutstanding))
	}
	if n := len(fs.cache.fetching); n != 0 {
		bad = append(bad, fmt.Sprintf("%d fetches in flight at quiescence", n))
	}
	return bad
}
