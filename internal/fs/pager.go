package fs

import (
	"fmt"

	"vino/internal/sched"
	"vino/internal/vmm"
)

// filePager backs a VM mapping with an open file: page faults read the
// corresponding file block through the buffer cache, so a cached block
// faults in for CPU cost only while a cold one pays the disk. This is
// the paper's Mach-style memory object ("read a file from disk") wired
// to the simulated file system.
type filePager struct {
	of *OpenFile
}

// Pager returns a vmm.Pager that materialises pages from this file,
// page i from block i. Use with VAS.Map:
//
//	vas.Map(baseVPN, of.File().Blocks(), of.Pager())
func (of *OpenFile) Pager() vmm.Pager { return filePager{of: of} }

// FaultIn implements vmm.Pager.
func (p filePager) FaultIn(t *sched.Thread, rel int64) error {
	if p.of.closed {
		return ErrClosed
	}
	if rel < 0 || rel >= p.of.file.Blocks() {
		return fmt.Errorf("fs: fault beyond mapped file %q: page %d of %d", p.of.file.Name, rel, p.of.file.Blocks())
	}
	// A failed block read (including an injected disk error) must
	// surface as a pager failure: the fault does not materialise the
	// page and the process sees the error, exactly as a real memory
	// object would deliver it.
	_, err := p.of.readBlock(t, rel)
	return err
}

// Name implements vmm.Pager.
func (p filePager) Name() string { return "file:" + p.of.file.Name }
