package fs

import (
	"errors"
	"fmt"
	"time"

	"vino/internal/crash"
	"vino/internal/graft"
	"vino/internal/kernel"
	"vino/internal/lock"
	"vino/internal/sched"
)

// Errors returned by the file system.
var (
	ErrNotFound   = errors.New("fs: no such file")
	ErrPermission = errors.New("fs: permission denied")
	ErrClosed     = errors.New("fs: file closed")
	ErrQueueFull  = errors.New("fs: prefetch queue full")
)

// FS is the simulated file system: one disk, one block cache, a flat
// namespace.
type FS struct {
	k     *kernel.Kernel
	disk  *Disk
	cache *cache
	files map[string]*File
	dirs  map[string]bool

	// MaxReadAhead bounds prefetched-but-unconsumed blocks system-wide:
	// "the allocation of memory buffers to satisfy read-ahead requests
	// is determined by a global policy that cannot be grafted by users
	// with normal privileges" (§4.1.2).
	MaxReadAhead int
	// MaxQueue bounds each file's prefetch queue.
	MaxQueue int

	raOutstanding int
	nextFD        int
	nextLBA       int64
	fdTable       map[int]*OpenFile

	openFileLockClass *lock.Class
	stats             Stats

	// ownerConflicts records cross-owner block overwrites for the
	// rollback-domain widening check (see CrashOwnerConflicts). Cleared
	// on whole-kernel restore; entries older than the surviving
	// checkpoint are filtered at query time.
	ownerConflicts []ownerConflict
}

// ownerConflict is one cross-owner overwrite of a dirty block: owner
// wrote at gen over prevOwner's write at prevGen.
type ownerConflict struct {
	file             string
	block            int64
	prevGen, gen     uint64
	prevOwner, owner string
}

// Stats aggregates file-system counters.
type Stats struct {
	Opens           int64
	Reads           int64
	BlocksRead      int64
	CacheHits       int64
	SyncStalls      int64
	StallTime       time.Duration
	PrefetchQueued  int64
	PrefetchIssued  int64
	PrefetchUsed    int64
	PrefetchDropped int64
	// ReadErrors and WriteErrors count injected I/O failures surfaced
	// to callers (fault plane; zero on unconfigured kernels).
	ReadErrors  int64
	WriteErrors int64
}

// New creates a file system on k with the given disk and a cache of
// cacheBlocks blocks, and registers the fs graft-callable functions.
func New(k *kernel.Kernel, disk *Disk, cacheBlocks int) *FS {
	fs := &FS{
		k:            k,
		disk:         disk,
		cache:        newCache(cacheBlocks),
		files:        make(map[string]*File),
		dirs:         make(map[string]bool),
		fdTable:      make(map[int]*OpenFile),
		MaxReadAhead: 32,
		MaxQueue:     1024,
		openFileLockClass: &lock.Class{
			Name: "openfile",
			// The shared pattern buffer is consulted per read; holding
			// its lock across an I/O would stall the application, so its
			// contention budget is short.
			Timeout: 20 * time.Millisecond,
			// Table 3 measures 33 us of lock overhead on the grafted
			// read-ahead path. The 10 us release cost is charged by the
			// transaction manager at commit/abort (two-phase release).
			AcquireCost: 33 * time.Microsecond,
		},
	}
	fs.registerCallables()
	if k.Crash != nil {
		k.Crash.Register(fs)
	}
	return fs
}

// Disk returns the underlying disk model.
func (fs *FS) Disk() *Disk { return fs.disk }

// Stats returns a copy of the counters.
func (fs *FS) Stats() Stats { return fs.stats }

// File is an on-disk file: a contiguous run of blocks.
type File struct {
	Name   string
	Size   int64
	Owner  graft.UID
	Public bool
	start  int64 // first LBA
	fs     *FS
	dirty  map[int64][]byte // overwritten blocks (block number -> data)

	// Checkpoint dirty tracking: the crash-manager generation at which
	// the file was created and each dirty block last written, so an
	// incremental checkpoint copies only blocks touched since the last
	// capture. Zero stamps (no crash manager, or state just restored)
	// are never newer than a capture.
	genCreated  uint64
	dirtyGen    map[int64]uint64
	maxDirtyGen uint64

	// Rollback-domain owner stamps: the domain that created the file and
	// the domain whose write last dirtied each block ("" is the shared
	// base domain). A domain-scoped restore reverts only the offender's
	// stamped blocks.
	crashOwner string
	dirtyOwner map[int64]string
}

// crashGen returns the crash manager's current generation for dirty
// stamping, or zero when checkpoints are off.
func (fs *FS) crashGen() uint64 {
	if fs.k != nil && fs.k.Crash != nil {
		return fs.k.Crash.Gen()
	}
	return 0
}

// curOwner returns the rollback-domain owner stamped on the running
// thread ("" outside graft dispatch, and outside Run).
func (fs *FS) curOwner() string {
	if fs.k == nil || fs.k.Sched == nil {
		return ""
	}
	return crash.Owner(fs.k.Sched.Current())
}

// Create makes a file of the given size owned by owner. Content is
// deterministic: byte i of block b is a function of (lba, i), so tests
// can verify reads without storing the data.
func (fs *FS) Create(name string, size int64, owner graft.UID, public bool) *File {
	f := &File{Name: name, Size: size, Owner: owner, Public: public, start: fs.nextLBA, fs: fs, dirty: make(map[int64][]byte), genCreated: fs.crashGen(), crashOwner: fs.curOwner()}
	fs.nextLBA += (size+BlockSize-1)/BlockSize + 16 // gap between files
	fs.files[name] = f
	return f
}

// Blocks returns the number of blocks in the file.
func (f *File) Blocks() int64 { return (f.Size + BlockSize - 1) / BlockSize }

// blockContent materialises block b's bytes.
func (f *File) blockContent(b int64) []byte {
	if d, ok := f.dirty[b]; ok {
		return d
	}
	buf := make([]byte, BlockSize)
	lba := f.start + b
	for i := range buf {
		buf[i] = byte(int64(i) ^ (lba * 131) ^ (int64(i) >> 6))
	}
	return buf
}

// OpenFile is the kernel object behind a file descriptor. Its compute-ra
// member function is the graft point of §4.1.
type OpenFile struct {
	fd   int
	file *File
	fs   *FS
	uid  graft.UID

	// RAWindow is the default policy's sequential read-ahead depth.
	RAWindow int64

	raPoint     *graft.Point
	filterPoint *graft.Point
	lock        *lock.Lock
	queue       []int64 // block numbers awaiting prefetch
	closed      bool

	lastOff, lastLen int64
	haveLast         bool

	// Per-file stats.
	Reads          int64
	CacheHits      int64
	SyncStalls     int64
	StallTime      time.Duration
	PrefetchUsed   int64
	PrefetchQueued int64
}

// Open returns an open-file object for the named file, checking that
// the calling thread's user may read it.
func (fs *FS) Open(t *sched.Thread, name string) (*OpenFile, error) {
	f, ok := fs.files[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	uid := graft.ThreadUID(t)
	if !f.Public && uid != f.Owner && uid != graft.Root {
		return nil, fmt.Errorf("%w: %q for uid %d", ErrPermission, name, uid)
	}
	fs.nextFD++
	of := &OpenFile{
		fd:       fs.nextFD,
		file:     f,
		fs:       fs,
		uid:      uid,
		RAWindow: 1,
		lock:     fs.k.Locks.NewLock(fmt.Sprintf("file/%d", fs.nextFD), fs.openFileLockClass),
	}
	of.raPoint = fs.k.Grafts.RegisterPoint(&graft.Point{
		Name:      fmt.Sprintf("file/%d.compute-ra", of.fd),
		Kind:      graft.Function,
		Privilege: graft.Local,
		Default: func(t *sched.Thread, args []int64) (int64, error) {
			return of.ComputeRABase(t, args[0], args[1]), nil
		},
		// compute-ra returns the number of extents queued; anything
		// negative is detectably invalid.
		Validate: func(t *sched.Thread, args []int64, res int64) (int64, error) {
			if res < 0 {
				return 0, fmt.Errorf("compute-ra returned %d", res)
			}
			return res, nil
		},
		IndirectionCost: time.Microsecond, // Table 3 indirection row
		Watchdog:        50 * time.Millisecond,
	})
	// The stream graft point of §4.4: a filter applied to data "as it is
	// copied to user level" (encryption, compression, logging...). The
	// graft receives the byte count; the data round-trips through its
	// heap: input at offset 0, transformed output at FilterOutOffset.
	of.filterPoint = fs.k.Grafts.RegisterPoint(&graft.Point{
		Name:      fmt.Sprintf("file/%d.read-filter", of.fd),
		Kind:      graft.Function,
		Privilege: graft.Local,
		// Default: identity — the data passes through untransformed.
		Default: func(t *sched.Thread, args []int64) (int64, error) {
			return args[0], nil
		},
		// The filter must account for every byte: anything else is
		// detectably invalid.
		Validate: func(t *sched.Thread, args []int64, res int64) (int64, error) {
			if res != args[0] {
				return 0, fmt.Errorf("read-filter transformed %d of %d bytes", res, args[0])
			}
			return res, nil
		},
		Watchdog: 100 * time.Millisecond,
	})
	fs.fdTable[of.fd] = of
	fs.stats.Opens++
	return of, nil
}

// FilterOutOffset is where a read-filter graft writes its output within
// its heap; input arrives at offset 0. Chunks are at most
// FilterChunk bytes, so both fit any segment.
const (
	FilterOutOffset = 8192
	FilterChunk     = 8192
)

// FilterPoint returns the stream-filter graft point for this file's
// read path.
func (of *OpenFile) FilterPoint() *graft.Point { return of.filterPoint }

// applyReadFilter runs the stream graft over the just-read data in
// chunks. An aborted filter leaves the data untransformed (and the
// graft removed) — the read itself still succeeds, as with any graft
// fallback.
func (of *OpenFile) applyReadFilter(t *sched.Thread, buf []byte) {
	g := of.filterPoint.Current()
	if g == nil {
		return
	}
	heap := g.VM().Heap()
	for done := 0; done < len(buf); done += FilterChunk {
		end := done + FilterChunk
		if end > len(buf) {
			end = len(buf)
		}
		chunk := buf[done:end]
		copy(heap[:len(chunk)], chunk)
		n, err := of.filterPoint.Invoke(t, int64(len(chunk)))
		if err != nil || n != int64(len(chunk)) {
			return // graft aborted and was removed; data stays plain
		}
		copy(chunk, heap[FilterOutOffset:FilterOutOffset+len(chunk)])
	}
}

// FD returns the descriptor number.
func (of *OpenFile) FD() int { return of.fd }

// File returns the underlying file.
func (of *OpenFile) File() *File { return of.file }

// RAPoint returns the compute-ra graft point (Figure 1's graft handle).
func (of *OpenFile) RAPoint() *graft.Point { return of.raPoint }

// Close releases the descriptor, its graft point, and any grafts on it.
func (of *OpenFile) Close() {
	if of.closed {
		return
	}
	of.closed = true
	delete(of.fs.fdTable, of.fd)
	of.fs.k.Grafts.UnregisterPoint(of.raPoint.Name)
	of.fs.k.Grafts.UnregisterPoint(of.filterPoint.Name)
}

// BaseComputeRACost is the CPU charged for the un-instrumented default
// read-ahead decision — the paper's 0.5 us Table 3 base path.
const BaseComputeRACost = 500 * time.Nanosecond

// ComputeRABase runs the default policy at its modelled base cost: the
// Table 2 "base path" with all graft-support indirection removed.
func (of *OpenFile) ComputeRABase(t *sched.Thread, off, size int64) int64 {
	t.Charge(BaseComputeRACost)
	return of.DefaultComputeRA(off, size)
}

// DefaultComputeRA is VINO's built-in policy: prefetch only on
// sequential access.
func (of *OpenFile) DefaultComputeRA(off, size int64) int64 {
	if !of.haveLast || off != of.lastOff+of.lastLen {
		return 0
	}
	first := (off + size + BlockSize - 1) / BlockSize
	n := int64(0)
	for b := first; b < first+of.RAWindow && b < of.file.Blocks(); b++ {
		if of.enqueuePrefetch(b, nil) {
			n++
		}
	}
	return n
}

// enqueuePrefetch adds block b to the per-file prefetch queue. When tx
// is non-nil (a graft is running) the enqueue is transactional: abort
// removes it. Returns false if the block is already resident, queued or
// the queue is full.
func (of *OpenFile) enqueuePrefetch(b int64, undo func(fn func())) bool {
	if b < 0 || b >= of.file.Blocks() {
		return false
	}
	lba := of.file.start + b
	if of.fs.cache.contains(lba) || of.fs.cache.inFlight(lba) {
		return false
	}
	for _, q := range of.queue {
		if q == b {
			return false
		}
	}
	if len(of.queue) >= of.fs.MaxQueue {
		of.fs.stats.PrefetchDropped++
		return false
	}
	of.queue = append(of.queue, b)
	of.fs.stats.PrefetchQueued++
	of.PrefetchQueued++
	if undo != nil {
		undo(func() {
			for i, q := range of.queue {
				if q == b {
					of.queue = append(of.queue[:i], of.queue[i+1:]...)
					break
				}
			}
		})
	}
	return true
}

// ResetPrefetchQueue discards queued prefetches. Measurement-harness
// use: repeated policy invocations would otherwise saturate the queue
// and change per-call cost.
func (of *OpenFile) ResetPrefetchQueue() { of.queue = of.queue[:0] }

// drainPrefetch issues queued prefetches while the global read-ahead
// reservation has room. It runs outside any graft transaction.
func (of *OpenFile) drainPrefetch() {
	for len(of.queue) > 0 && of.fs.raOutstanding < of.fs.MaxReadAhead {
		b := of.queue[0]
		of.queue = of.queue[1:]
		lba := of.file.start + b
		if of.fs.cache.contains(lba) || of.fs.cache.inFlight(lba) {
			continue
		}
		of.fs.raOutstanding++
		of.fs.stats.PrefetchIssued++
		seek, xfer := of.fs.disk.ReadLatencyParts(lba)
		seekScale, xferScale, ferr := of.fs.k.Faults.DiskRead(lba)
		lat := seek*time.Duration(seekScale) + xfer*time.Duration(xferScale)
		content := of.file.blockContent(b)
		of.fs.cache.startFetch(lba)
		of.fs.k.Clock.After(lat, func() {
			if ferr != nil {
				// The prefetch failed: drop it and wake any demand
				// reader waiting on it, which will retry synchronously.
				of.fs.stats.ReadErrors++
				of.fs.cache.failFetch(lba)
			} else {
				of.fs.cache.completeFetch(lba, content, true)
			}
			of.fs.raOutstanding--
			// Memory freed up: keep draining.
			of.drainPrefetch()
		})
	}
}

// ReadAt reads len(buf) bytes at offset off on thread t, blocking for
// simulated disk latency on misses. After the data is returned the
// compute-ra point is consulted (grafted or default) and resulting
// prefetches are issued.
func (of *OpenFile) ReadAt(t *sched.Thread, buf []byte, off int64) (int, error) {
	if of.closed {
		return 0, ErrClosed
	}
	if off < 0 || off >= of.file.Size {
		return 0, fmt.Errorf("fs: read at %d beyond size %d", off, of.file.Size)
	}
	n := int64(len(buf))
	if off+n > of.file.Size {
		n = of.file.Size - off
	}
	of.fs.stats.Reads++
	of.Reads++
	read, err := of.readRaw(t, buf[:n], off)
	if err != nil {
		return read, err
	}
	// Stream filter (§4.4): transform the data on its way to the user.
	of.applyReadFilter(t, buf[:read])
	// Policy consultation: the measured VINO path of Table 3.
	if _, err := of.raPoint.Invoke(t, off, n); err != nil {
		// The graft aborted (and was removed); reads still succeed.
		of.fs.k.Logf("compute-ra graft aborted on fd %d: %v", of.fd, err)
	}
	of.lastOff, of.lastLen, of.haveLast = off, n, true
	of.drainPrefetch()
	return read, nil
}

// readRaw copies file bytes through the block cache without consulting
// any graft point: the primitive beneath both ReadAt and the fs.read
// graft-callable (which must not re-enter the very graft it serves).
func (of *OpenFile) readRaw(t *sched.Thread, buf []byte, off int64) (int, error) {
	n := int64(len(buf))
	read := int64(0)
	for read < n {
		pos := off + read
		b := pos / BlockSize
		blockOff := pos % BlockSize
		chunk := BlockSize - blockOff
		if chunk > n-read {
			chunk = n - read
		}
		data, err := of.readBlock(t, b)
		if err != nil {
			return int(read), err
		}
		copy(buf[read:read+chunk], data[blockOff:blockOff+chunk])
		read += chunk
		of.fs.stats.BlocksRead++
	}
	return int(read), nil
}

// readBlock returns block b's bytes, sleeping for disk latency on a
// miss and waiting for in-flight prefetches. The error return is an
// injected disk failure (fault plane); real misses always succeed in
// the simulator.
func (of *OpenFile) readBlock(t *sched.Thread, b int64) ([]byte, error) {
	lba := of.file.start + b
	c := of.fs.cache
	if data, prefetched := c.get(lba); data != nil {
		of.fs.stats.CacheHits++
		of.CacheHits++
		if prefetched {
			of.fs.stats.PrefetchUsed++
			of.PrefetchUsed++
		}
		return data, nil
	}
	if c.inFlight(lba) {
		// Partial win: the prefetch was issued but has not landed.
		start := of.fs.k.Clock.Now()
		c.waitFetch(lba, t)
		of.StallTime += of.fs.k.Clock.Now() - start
		data, prefetched := c.get(lba)
		if data != nil {
			if prefetched {
				of.fs.stats.PrefetchUsed++
				of.PrefetchUsed++
			}
			return data, nil
		}
	}
	// Synchronous miss: the full stall the graft is trying to hide. The
	// fault plane may degrade the access (latency multiplier) or fail
	// it outright — the platter time is spent either way.
	seek, xfer := of.fs.disk.ReadLatencyParts(lba)
	seekScale, xferScale, ferr := of.fs.k.Faults.DiskRead(lba)
	lat := seek*time.Duration(seekScale) + xfer*time.Duration(xferScale)
	of.fs.stats.SyncStalls++
	of.SyncStalls++
	of.fs.stats.StallTime += lat
	of.StallTime += lat
	t.Sleep(lat)
	if ferr != nil {
		of.fs.stats.ReadErrors++
		return nil, ferr
	}
	data := of.file.blockContent(b)
	c.put(lba, data, false)
	return data, nil
}

// WriteAt overwrites bytes at off (write-through to the cache; the
// simulator does not model write-back latency separately).
func (of *OpenFile) WriteAt(t *sched.Thread, data []byte, off int64) (int, error) {
	if of.closed {
		return 0, ErrClosed
	}
	if of.uid != of.file.Owner && of.uid != graft.Root {
		return 0, fmt.Errorf("%w: write %q", ErrPermission, of.file.Name)
	}
	written := int64(0)
	n := int64(len(data))
	for written < n && off+written < of.file.Size {
		pos := off + written
		b := pos / BlockSize
		blockOff := pos % BlockSize
		chunk := BlockSize - blockOff
		if chunk > n-written {
			chunk = n - written
		}
		if err := of.fs.k.Faults.DiskWrite(of.file.start + b); err != nil {
			of.fs.stats.WriteErrors++
			return int(written), err
		}
		blk := append([]byte(nil), of.file.blockContent(b)...)
		copy(blk[blockOff:], data[written:written+chunk])
		of.file.dirty[b] = blk
		if g := of.fs.crashGen(); g != 0 {
			if of.file.dirtyGen == nil {
				of.file.dirtyGen = make(map[int64]uint64)
			}
			owner := of.fs.curOwner()
			if prev, stamped := of.file.dirtyOwner[b]; stamped && prev != owner {
				of.fs.ownerConflicts = append(of.fs.ownerConflicts, ownerConflict{
					file: of.file.Name, block: b,
					prevGen: of.file.dirtyGen[b], gen: g,
					prevOwner: prev, owner: owner,
				})
			}
			if of.file.dirtyOwner == nil {
				of.file.dirtyOwner = make(map[int64]string)
			}
			of.file.dirtyOwner[b] = owner
			of.file.dirtyGen[b] = g
			if g > of.file.maxDirtyGen {
				of.file.maxDirtyGen = g
			}
		}
		of.fs.cache.put(of.file.start+b, blk, false)
		written += chunk
	}
	return int(written), nil
}

// registerCallables exposes the graft-callable file system interface.
func (fs *FS) registerCallables() {
	// fs.prefetch(fd, offset, size): queue the extent for read-ahead.
	// This is how a compute-ra graft expresses its answer. The callable
	// checks that the graft's owner may read the file, takes the
	// open-file lock under the transaction (the shared-buffer lock whose
	// 33 us shows up in Table 3), and queues transactionally.
	fs.k.Grafts.RegisterCallable("fs.prefetch", func(ctx *graft.Ctx, args [5]int64) (int64, error) {
		of, err := fs.lookupFD(int(args[0]))
		if err != nil {
			return 0, err
		}
		if !of.file.Public && ctx.UID() != of.file.Owner && ctx.UID() != graft.Root {
			return 0, fmt.Errorf("%w: prefetch %q", ErrPermission, of.file.Name)
		}
		if ctx.Txn != nil && !of.lock.HeldBy(ctx.Thread) {
			ctx.Txn.AcquireLock(of.lock, lock.Exclusive)
		}
		off, size := args[1], args[2]
		if size <= 0 {
			return 0, fmt.Errorf("fs.prefetch: bad size %d", size)
		}
		first := off / BlockSize
		last := (off + size - 1) / BlockSize
		queued := int64(0)
		for b := first; b <= last; b++ {
			undo := func(fn func()) {
				if ctx.Txn != nil {
					ctx.Txn.PushUndo("fs.prefetch", fn)
				}
			}
			if of.enqueuePrefetch(b, undo) {
				queued++
			}
		}
		return queued, nil
	})
	// fs.read(fd, offset, heapPtr, len): copy file data into the graft
	// heap. This is the canonical "graft-callable functions are
	// responsible for checking that the user has been granted access to
	// files" interface (§3.3): the graft runs with its installer's
	// identity, and the check is against that identity — a graft can
	// never read data its installer could not. The copy pays the same
	// cache/disk costs as a process read.
	fs.k.Grafts.RegisterCallable("fs.read", func(ctx *graft.Ctx, args [5]int64) (int64, error) {
		of, err := fs.lookupFD(int(args[0]))
		if err != nil {
			return 0, err
		}
		if !of.file.Public && ctx.UID() != of.file.Owner && ctx.UID() != graft.Root {
			return 0, fmt.Errorf("%w: read %q as uid %d", ErrPermission, of.file.Name, ctx.UID())
		}
		off, ptr, n := args[1], args[2], args[3]
		if n <= 0 || n > FilterChunk {
			return 0, fmt.Errorf("fs.read: bad length %d", n)
		}
		if off < 0 || off >= of.file.Size {
			return 0, nil // EOF
		}
		if off+n > of.file.Size {
			n = of.file.Size - off
		}
		buf := make([]byte, n)
		got, err := of.readRaw(ctx.Thread, buf, off)
		if err != nil {
			return 0, err
		}
		if err := kernel.WriteGraftBytes(ctx.VM, ptr, buf[:got]); err != nil {
			return 0, err
		}
		return int64(got), nil
	})
	// fs.file_blocks(fd): file length in blocks (meta-data, safe).
	fs.k.Grafts.RegisterCallable("fs.file_blocks", func(ctx *graft.Ctx, args [5]int64) (int64, error) {
		of, err := fs.lookupFD(int(args[0]))
		if err != nil {
			return 0, err
		}
		return of.file.Blocks(), nil
	})
}

// lookupFD finds an open file by descriptor.
func (fs *FS) lookupFD(fd int) (*OpenFile, error) {
	of, ok := fs.fdTable[fd]
	if !ok || of.closed {
		return nil, fmt.Errorf("fs: bad descriptor %d", fd)
	}
	return of, nil
}
