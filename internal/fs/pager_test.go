package fs

import (
	"testing"
	"time"

	"vino/internal/kernel"
	"vino/internal/vmm"
)

func TestFileBackedMapping(t *testing.T) {
	k, fsys := newTestFS(256)
	v := vmm.New(k, 64)
	fsys.Create("db", 16*BlockSize, 7, false)
	runProc(t, k, 7, func(p *kernel.Process) {
		of, err := fsys.Open(p.Thread, "db")
		if err != nil {
			t.Fatal(err)
		}
		vas := v.NewVAS(p.Thread)
		if err := vas.Map(100, of.File().Blocks(), of.Pager()); err != nil {
			t.Fatalf("Map: %v", err)
		}
		// Cold fault pays the disk.
		before := k.Clock.Now()
		vas.Touch(p.Thread, 100)
		coldCost := k.Clock.Now() - before
		if coldCost < 10*time.Millisecond {
			t.Errorf("cold file fault cost %v, want disk-scale", coldCost)
		}
		// A block already in the buffer cache faults in for ~nothing:
		// the fs and the VM share the cache.
		buf := make([]byte, 10)
		if _, err := of.ReadAt(p.Thread, buf, 5*BlockSize); err != nil {
			t.Fatal(err)
		}
		before = k.Clock.Now()
		vas.Touch(p.Thread, 105)
		warmCost := k.Clock.Now() - before
		if warmCost >= coldCost/10 {
			t.Errorf("warm fault %v not much cheaper than cold %v", warmCost, coldCost)
		}
		// Unmapped pages keep anonymous backing at the flat latency.
		before = k.Clock.Now()
		vas.Touch(p.Thread, 5000)
		if got := k.Clock.Now() - before; got != v.FaultLatency {
			t.Errorf("anonymous fault cost %v, want %v", got, v.FaultLatency)
		}
	})
}

func TestFileMappingFaultBeyondEOF(t *testing.T) {
	k, fsys := newTestFS(64)
	v := vmm.New(k, 64)
	fsys.Create("small", 2*BlockSize, 7, false)
	runProc(t, k, 7, func(p *kernel.Process) {
		of, _ := fsys.Open(p.Thread, "small")
		// A mapping larger than the file: faults past EOF fail cleanly.
		if err := vas2Map(v, p, of, 0, 8); err != nil {
			t.Fatal(err)
		}
	})
}

// vas2Map maps and probes a too-large file mapping.
func vas2Map(v *vmm.VMM, p *kernel.Process, of *OpenFile, base, count int64) error {
	vas := v.NewVAS(p.Thread)
	if err := vas.Map(base, count, of.Pager()); err != nil {
		return err
	}
	if err := vas.TouchErr(p.Thread, base); err != nil {
		return err
	}
	if err := vas.TouchErr(p.Thread, base+5); err == nil {
		return errBeyondEOFAccepted
	}
	if vas.Page(base + 5).Resident() {
		return errBeyondEOFResident
	}
	free := v.FreeFrames()
	_ = free
	return nil
}

var (
	errBeyondEOFAccepted = fsError("fault beyond EOF accepted")
	errBeyondEOFResident = fsError("failed fault left the page resident")
)

type fsError string

func (e fsError) Error() string { return string(e) }

func TestOverlappingMappingsRejected(t *testing.T) {
	k, fsys := newTestFS(64)
	v := vmm.New(k, 64)
	fsys.Create("a", 4*BlockSize, 7, false)
	fsys.Create("b", 4*BlockSize, 7, false)
	runProc(t, k, 7, func(p *kernel.Process) {
		ofA, _ := fsys.Open(p.Thread, "a")
		ofB, _ := fsys.Open(p.Thread, "b")
		vas := v.NewVAS(p.Thread)
		if err := vas.Map(10, 4, ofA.Pager()); err != nil {
			t.Fatal(err)
		}
		if err := vas.Map(12, 4, ofB.Pager()); err == nil {
			t.Error("overlapping mapping accepted")
		}
		if err := vas.Map(14, 4, ofB.Pager()); err != nil {
			t.Errorf("adjacent mapping rejected: %v", err)
		}
		if vas.MappingCount() != 2 {
			t.Errorf("mappings = %d", vas.MappingCount())
		}
	})
}

func TestUnmapReleasesFrames(t *testing.T) {
	k, fsys := newTestFS(64)
	v := vmm.New(k, 64)
	fsys.Create("a", 8*BlockSize, 7, false)
	runProc(t, k, 7, func(p *kernel.Process) {
		of, _ := fsys.Open(p.Thread, "a")
		vas := v.NewVAS(p.Thread)
		if err := vas.Map(0, 8, of.Pager()); err != nil {
			t.Fatal(err)
		}
		for i := int64(0); i < 8; i++ {
			vas.Touch(p.Thread, i)
		}
		if v.FreeFrames() != 64-8 {
			t.Fatalf("free = %d", v.FreeFrames())
		}
		vas.Unmap(0)
		if v.FreeFrames() != 64 {
			t.Errorf("free = %d after unmap, want 64", v.FreeFrames())
		}
		if vas.MappingCount() != 0 {
			t.Error("mapping survived unmap")
		}
	})
}

// TestFileMappingUnderEvictionPressure: file-backed pages evict and
// re-fault through the cache like any others.
func TestFileMappingUnderEvictionPressure(t *testing.T) {
	k, fsys := newTestFS(512)
	v := vmm.New(k, 8)
	fsys.Create("big", 32*BlockSize, 7, false)
	runProc(t, k, 7, func(p *kernel.Process) {
		of, _ := fsys.Open(p.Thread, "big")
		vas := v.NewVAS(p.Thread)
		if err := vas.Map(0, 32, of.Pager()); err != nil {
			t.Fatal(err)
		}
		for i := int64(0); i < 32; i++ {
			vas.Touch(p.Thread, i)
		}
		if vas.Resident() > 8 {
			t.Fatalf("resident = %d > frames", vas.Resident())
		}
		// Re-fault an evicted page: it comes from the (large) buffer
		// cache, not the disk.
		d := fsys.Disk().Reads
		vas.Touch(p.Thread, 0)
		if fsys.Disk().Reads != d {
			t.Error("re-fault of cached block went to disk")
		}
	})
}
