package fs

import (
	"testing"

	"vino/internal/graft"
	"vino/internal/kernel"
)

// xorFilterSrc is the §4.4 stream graft on the read path: XOR-decrypt
// each chunk from heap[0:n) into heap[8192:8192+n).
const xorFilterSrc = `
.name xor-filter
.func main
main:
    ; r1 = byte count (chunks are 8-aligned reads; handle the tail
    ; bytewise for correctness on arbitrary lengths)
    mov r7, r1          ; remaining
    mov r2, r10         ; src
    addi r3, r10, 8192  ; dst
    movi r5, 0x5A
loop:
    jz r7, done
    ldb r6, [r2+0]
    xor r6, r6, r5
    stb [r3+0], r6
    addi r2, r2, 1
    addi r3, r3, 1
    addi r7, r7, -1
    jmp loop
done:
    mov r0, r1
    ret
`

func TestReadFilterTransformsData(t *testing.T) {
	k, fsys := newTestFS(64)
	f := fsys.Create("secret", 4*BlockSize, 7, false)
	runProc(t, k, 7, func(p *kernel.Process) {
		of, _ := fsys.Open(p.Thread, "secret")
		// Plain read first.
		plain := make([]byte, 100)
		if _, err := of.ReadAt(p.Thread, plain, 50); err != nil {
			t.Fatal(err)
		}
		if _, err := p.BuildAndInstall(of.FilterPoint().Name, xorFilterSrc, graft.InstallOptions{}); err != nil {
			t.Fatalf("install filter: %v", err)
		}
		filtered := make([]byte, 100)
		if _, err := of.ReadAt(p.Thread, filtered, 50); err != nil {
			t.Fatal(err)
		}
		for i := range plain {
			if filtered[i] != plain[i]^0x5A {
				t.Fatalf("byte %d: got %#x, want %#x ^ 0x5A", i, filtered[i], plain[i])
			}
		}
		_ = f
	})
}

func TestReadFilterLargeReadChunks(t *testing.T) {
	k, fsys := newTestFS(64)
	fsys.Create("big", 8*BlockSize, 7, false)
	runProc(t, k, 7, func(p *kernel.Process) {
		of, _ := fsys.Open(p.Thread, "big")
		plain := make([]byte, 5*BlockSize)
		if _, err := of.ReadAt(p.Thread, plain, 0); err != nil {
			t.Fatal(err)
		}
		if _, err := p.BuildAndInstall(of.FilterPoint().Name, xorFilterSrc, graft.InstallOptions{}); err != nil {
			t.Fatal(err)
		}
		filtered := make([]byte, 5*BlockSize)
		if _, err := of.ReadAt(p.Thread, filtered, 0); err != nil {
			t.Fatal(err)
		}
		// 5 blocks = 20 KB crosses multiple 8 KB filter chunks.
		for i := range plain {
			if filtered[i] != plain[i]^0x5A {
				t.Fatalf("chunked filter wrong at byte %d", i)
			}
		}
		if got := of.FilterPoint().Stats().GraftedCalls; got != 3 {
			t.Errorf("filter invocations = %d, want 3 chunks", got)
		}
	})
}

func TestReadFilterAbortLeavesPlainData(t *testing.T) {
	k, fsys := newTestFS(64)
	fsys.Create("data", 2*BlockSize, 7, false)
	runProc(t, k, 7, func(p *kernel.Process) {
		of, _ := fsys.Open(p.Thread, "data")
		plain := make([]byte, 64)
		if _, err := of.ReadAt(p.Thread, plain, 0); err != nil {
			t.Fatal(err)
		}
		g, err := p.BuildAndInstall(of.FilterPoint().Name, `
.name broken-filter
.func main
main:
    movi r9, 0
    div r0, r1, r9
    ret
`, graft.InstallOptions{})
		if err != nil {
			t.Fatal(err)
		}
		got := make([]byte, 64)
		if _, err := of.ReadAt(p.Thread, got, 0); err != nil {
			t.Fatal(err)
		}
		for i := range plain {
			if got[i] != plain[i] {
				t.Fatalf("aborted filter corrupted byte %d", i)
			}
		}
		if !g.Removed() {
			t.Error("broken filter not removed")
		}
	})
}

func TestReadFilterLyingAboutCountRejected(t *testing.T) {
	k, fsys := newTestFS(64)
	fsys.Create("data", BlockSize, 7, false)
	runProc(t, k, 7, func(p *kernel.Process) {
		of, _ := fsys.Open(p.Thread, "data")
		g, err := p.BuildAndInstall(of.FilterPoint().Name, `
.name liar-filter
.func main
main:
    movi r0, 3   ; claims 3 bytes regardless of input
    ret
`, graft.InstallOptions{})
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 64)
		if _, err := of.ReadAt(p.Thread, buf, 0); err != nil {
			t.Fatal(err)
		}
		if !g.Removed() {
			t.Error("lying filter survived validation")
		}
		if of.FilterPoint().Stats().ValidationFail != 1 {
			t.Errorf("validation failures = %d", of.FilterPoint().Stats().ValidationFail)
		}
	})
}
