package fs

import (
	"errors"
	"sort"
	"testing"

	"vino/internal/graft"
	"vino/internal/kernel"
)

func TestCleanPath(t *testing.T) {
	cases := []struct {
		in, want string
		bad      bool
	}{
		{"a/b/c", "a/b/c", false},
		{"/a/b/", "a/b", false},
		{"a//b", "a/b", false},
		{"./a/./b", "a/b", false},
		{"", "", true},
		{"/", "", true},
		{"a/../b", "", true},
	}
	for _, c := range cases {
		got, err := CleanPath(c.in)
		if c.bad {
			if err == nil {
				t.Errorf("CleanPath(%q) accepted", c.in)
			}
			continue
		}
		if err != nil || got != c.want {
			t.Errorf("CleanPath(%q) = %q, %v; want %q", c.in, got, err, c.want)
		}
	}
}

func TestMkdirAndCreateAt(t *testing.T) {
	_, fsys := newTestFS(16)
	if err := fsys.Mkdir("home", 7); err != nil {
		t.Fatal(err)
	}
	if err := fsys.Mkdir("home/alice", 7); err != nil {
		t.Fatal(err)
	}
	if err := fsys.Mkdir("ghost/sub", 7); err == nil {
		t.Error("mkdir without parent accepted")
	}
	if err := fsys.Mkdir("home", 7); err == nil {
		t.Error("duplicate mkdir accepted")
	}
	if _, err := fsys.CreateAt("home/alice/notes", BlockSize, 7, false); err != nil {
		t.Fatal(err)
	}
	if _, err := fsys.CreateAt("home/alice/notes", BlockSize, 7, false); err == nil {
		t.Error("duplicate create accepted")
	}
	if _, err := fsys.CreateAt("nodir/file", BlockSize, 7, false); err == nil {
		t.Error("create without parent accepted")
	}
	if _, err := fsys.CreateAt("home", BlockSize, 7, false); err == nil {
		t.Error("create over directory accepted")
	}
}

func TestReadDir(t *testing.T) {
	_, fsys := newTestFS(16)
	if err := fsys.Mkdir("etc", 7); err != nil {
		t.Fatal(err)
	}
	if err := fsys.Mkdir("etc/init", 7); err != nil {
		t.Fatal(err)
	}
	if _, err := fsys.CreateAt("etc/passwd", BlockSize, 7, false); err != nil {
		t.Fatal(err)
	}
	if _, err := fsys.CreateAt("etc/init/rc", BlockSize, 7, false); err != nil {
		t.Fatal(err)
	}
	ls, err := fsys.ReadDir("etc")
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(ls)
	if len(ls) != 2 || ls[0] != "init" || ls[1] != "passwd" {
		t.Fatalf("ReadDir(etc) = %v", ls)
	}
	root, err := fsys.ReadDir("/")
	if err != nil {
		t.Fatal(err)
	}
	if len(root) != 1 || root[0] != "etc" {
		t.Fatalf("ReadDir(/) = %v", root)
	}
	if _, err := fsys.ReadDir("ghost"); !errors.Is(err, ErrNotFound) {
		t.Errorf("ReadDir(ghost) = %v", err)
	}
}

func TestOpenPathWithoutGraft(t *testing.T) {
	k, fsys := newTestFS(16)
	if err := fsys.Mkdir("data", 7); err != nil {
		t.Fatal(err)
	}
	if _, err := fsys.CreateAt("data/file", BlockSize, 7, false); err != nil {
		t.Fatal(err)
	}
	runProc(t, k, 7, func(p *kernel.Process) {
		of, err := fsys.OpenPath(p.Thread, "/data//file")
		if err != nil {
			t.Fatalf("OpenPath: %v", err)
		}
		if of.File().Name != "data/file" {
			t.Errorf("opened %q", of.File().Name)
		}
	})
}

// chrootGraftSrc prefixes every lookup with "jail/": copy "jail/" then
// the original path into the output buffer, returning the new length.
const chrootGraftSrc = `
.name chroot
.data "jail/"
.func main
main:
    ; r1 = input length
    ; copy the 5-byte prefix from our data section
    mov r2, r10          ; src: "jail/"
    addi r3, r10, 1024   ; dst: ResolveOut
    movi r4, 5
pfx:
    ldb r5, [r2+0]
    stb [r3+0], r5
    addi r2, r2, 1
    addi r3, r3, 1
    addi r4, r4, -1
    jnz r4, pfx
    ; copy the input path
    addi r2, r10, 512    ; ResolveIn
    mov r4, r1
cp:
    jz r4, done
    ldb r5, [r2+0]
    stb [r3+0], r5
    addi r2, r2, 1
    addi r3, r3, 1
    addi r4, r4, -1
    jmp cp
done:
    addi r0, r1, 5
    ret
`

// TestResolveGraftConfinesUser: the user's own lookups are translated
// into the jail; another user's are untouched.
func TestResolveGraftConfinesUser(t *testing.T) {
	k, fsys := newTestFS(64)
	if err := fsys.Mkdir("jail", graft.Root); err != nil {
		t.Fatal(err)
	}
	fsys.Create("secret", BlockSize, 9, true)      // outside the jail
	fsys.Create("jail/secret", BlockSize, 9, true) // the jailed view
	k.SpawnProcess("jailed", 7, func(p *kernel.Process) {
		if _, err := p.BuildAndInstall(fsys.ResolvePoint(p.Thread).Name, chrootGraftSrc, graft.InstallOptions{}); err != nil {
			t.Errorf("install: %v", err)
			return
		}
		of, err := fsys.OpenPath(p.Thread, "secret")
		if err != nil {
			t.Errorf("jailed open: %v", err)
			return
		}
		if of.File().Name != "jail/secret" {
			t.Errorf("jailed user opened %q, want jail/secret", of.File().Name)
		}
	})
	k.SpawnProcess("free", 8, func(p *kernel.Process) {
		of, err := fsys.OpenPath(p.Thread, "secret")
		if err != nil {
			t.Errorf("free open: %v", err)
			return
		}
		if of.File().Name != "secret" {
			t.Errorf("free user opened %q, want secret (rule 8: grafts affect only consenting users)", of.File().Name)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestResolveGraftAbortFallsBackToIdentity: a trapping translator is
// removed and the original path used.
func TestResolveGraftAbortFallsBackToIdentity(t *testing.T) {
	k, fsys := newTestFS(16)
	fsys.Create("plain", BlockSize, 7, false)
	runProc(t, k, 7, func(p *kernel.Process) {
		g, err := p.BuildAndInstall(fsys.ResolvePoint(p.Thread).Name, `
.name bad-resolver
.func main
main:
    movi r9, 0
    div r0, r0, r9
    ret
`, graft.InstallOptions{})
		if err != nil {
			t.Fatal(err)
		}
		of, err := fsys.OpenPath(p.Thread, "plain")
		if err != nil {
			t.Fatalf("open after resolver abort: %v", err)
		}
		if of.File().Name != "plain" {
			t.Errorf("opened %q", of.File().Name)
		}
		if !g.Removed() {
			t.Error("trapping resolver survived")
		}
	})
}

// TestResolveGraftLyingLengthRejected: a translator claiming an absurd
// length is caught by validation and the identity result used.
func TestResolveGraftLyingLengthRejected(t *testing.T) {
	k, fsys := newTestFS(16)
	fsys.Create("plain", BlockSize, 7, false)
	runProc(t, k, 7, func(p *kernel.Process) {
		g, err := p.BuildAndInstall(fsys.ResolvePoint(p.Thread).Name, `
.name liar-resolver
.func main
main:
    movi r0, 5000
    ret
`, graft.InstallOptions{})
		if err != nil {
			t.Fatal(err)
		}
		of, err := fsys.OpenPath(p.Thread, "plain")
		if err != nil || of.File().Name != "plain" {
			t.Fatalf("open = %v, %v", of, err)
		}
		if !g.Removed() {
			t.Error("lying resolver survived")
		}
	})
}

// TestAccessControlPointRestricted: the taxonomy's access-control
// example exists in the namespace but can never be grafted (rule 5).
func TestAccessControlPointRestricted(t *testing.T) {
	k, fsys := newTestFS(16)
	pt := fsys.RegisterAccessControlPoint()
	runProc(t, k, graft.Root, func(p *kernel.Process) {
		_, err := p.BuildAndInstall(pt.Name, ".name takeover\n.func main\nmain:\n movi r0, 1\n ret", graft.InstallOptions{})
		if !errors.Is(err, graft.ErrRestrictedPoint) {
			t.Errorf("install on access-control point = %v", err)
		}
	})
}
