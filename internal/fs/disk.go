// Package fs is the simulated file system beneath the read-ahead
// experiments (§4.1 of the paper): a latency-modelled disk, a block
// cache with a bounded read-ahead reservation, open-file objects whose
// compute-ra policy is a graft point, and the per-file prefetch queue
// that keeps a greedy graft from stealing the system's memory.
package fs

import (
	"time"
)

// BlockSize is the file system block size: 4 KB, as in the paper ("4KB
// is our file system block size").
const BlockSize = 4096

// DiskParams models rotating storage. The defaults approximate the
// paper's Fujitsu M2694ESA (5400 RPM, ~9.5 ms average seek, 1080 MB).
type DiskParams struct {
	// SeekAvg is the average seek time for a random access.
	SeekAvg time.Duration
	// RotAvg is the average rotational delay (half a revolution).
	RotAvg time.Duration
	// Transfer is the media transfer time for one block.
	Transfer time.Duration
}

// FujitsuM2694ESA returns the paper's disk. 5400 RPM is 11.1 ms per
// revolution, so 5.6 ms average rotational delay; one 4 KB block at
// ~3.5 MB/s media rate is ~1.1 ms. A random 4 KB read therefore costs
// ~16 ms, consistent with the paper's "the benefit of avoiding a page
// fault is approximately 18 ms in our system".
func FujitsuM2694ESA() DiskParams {
	return DiskParams{
		SeekAvg:  9500 * time.Microsecond,
		RotAvg:   5600 * time.Microsecond,
		Transfer: 1100 * time.Microsecond,
	}
}

// Disk simulates one spindle. Latency depends on whether the access is
// sequential with respect to the previous one.
type Disk struct {
	params  DiskParams
	lastLBA int64
	primed  bool

	// Stats
	Reads      int64
	SeqReads   int64
	TotalDelay time.Duration
}

// NewDisk creates a disk with the given geometry.
func NewDisk(p DiskParams) *Disk { return &Disk{params: p} }

// Params returns the disk's latency model.
func (d *Disk) Params() DiskParams { return d.params }

// ReadLatency returns the simulated service time for reading the block
// at logical block address lba and advances the head model.
func (d *Disk) ReadLatency(lba int64) time.Duration {
	seek, transfer := d.ReadLatencyParts(lba)
	return seek + transfer
}

// ReadLatencyParts is ReadLatency with the positioning cost (seek plus
// rotational delay; zero for a sequential access) and the media
// transfer cost reported separately, so the fault plane can degrade the
// two components independently. It advances the head model.
func (d *Disk) ReadLatencyParts(lba int64) (seek, transfer time.Duration) {
	d.Reads++
	transfer = d.params.Transfer
	if d.primed && lba == d.lastLBA+1 {
		// Sequential: media transfer only.
		d.SeqReads++
	} else {
		seek = d.params.SeekAvg + d.params.RotAvg
	}
	d.lastLBA = lba
	d.primed = true
	d.TotalDelay += seek + transfer
	return seek, transfer
}

// RandomReadLatency reports the cost of an isolated random block read
// without moving the head model (for cost-benefit arithmetic).
func (d *Disk) RandomReadLatency() time.Duration {
	return d.params.SeekAvg + d.params.RotAvg + d.params.Transfer
}
