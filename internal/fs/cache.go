package fs

import (
	"container/list"

	"vino/internal/sched"
)

// cache is the block cache: an LRU over disk blocks keyed by LBA, plus
// tracking for in-flight asynchronous fetches so a demand read of a
// block whose prefetch is outstanding waits instead of re-reading.
type cache struct {
	capacity int
	lru      *list.List // front = most recent; values are *cacheEntry
	byLBA    map[int64]*list.Element
	fetching map[int64]*fetch
}

type cacheEntry struct {
	lba        int64
	data       []byte
	prefetched bool // true until first demand hit, for stats
}

type fetch struct {
	waiters []*sched.Thread
}

func newCache(capacity int) *cache {
	if capacity <= 0 {
		capacity = 1
	}
	return &cache{
		capacity: capacity,
		lru:      list.New(),
		byLBA:    make(map[int64]*list.Element),
		fetching: make(map[int64]*fetch),
	}
}

func (c *cache) contains(lba int64) bool {
	_, ok := c.byLBA[lba]
	return ok
}

// get returns the cached block and whether this is the first demand hit
// on a prefetched block. Missing blocks return nil.
func (c *cache) get(lba int64) (data []byte, prefetchedFirstUse bool) {
	e, ok := c.byLBA[lba]
	if !ok {
		return nil, false
	}
	c.lru.MoveToFront(e)
	ent := e.Value.(*cacheEntry)
	first := ent.prefetched
	ent.prefetched = false
	return ent.data, first
}

// put inserts a block, evicting the least recently used if full.
func (c *cache) put(lba int64, data []byte, prefetched bool) {
	if e, ok := c.byLBA[lba]; ok {
		ent := e.Value.(*cacheEntry)
		ent.data = data
		c.lru.MoveToFront(e)
		return
	}
	for c.lru.Len() >= c.capacity {
		tail := c.lru.Back()
		if tail == nil {
			break
		}
		c.lru.Remove(tail)
		delete(c.byLBA, tail.Value.(*cacheEntry).lba)
	}
	c.byLBA[lba] = c.lru.PushFront(&cacheEntry{lba: lba, data: data, prefetched: prefetched})
}

// drop evicts lba if resident, without touching the LRU order of the
// remaining entries. Domain-scoped restores use it to shed cached
// copies of reverted blocks.
func (c *cache) drop(lba int64) {
	if e, ok := c.byLBA[lba]; ok {
		c.lru.Remove(e)
		delete(c.byLBA, lba)
	}
}

// inFlight reports whether an asynchronous fetch of lba is outstanding.
func (c *cache) inFlight(lba int64) bool {
	_, ok := c.fetching[lba]
	return ok
}

// startFetch marks lba as being read asynchronously.
func (c *cache) startFetch(lba int64) {
	if _, ok := c.fetching[lba]; !ok {
		c.fetching[lba] = &fetch{}
	}
}

// waitFetch blocks t until the outstanding fetch of lba completes.
func (c *cache) waitFetch(lba int64, t *sched.Thread) {
	f, ok := c.fetching[lba]
	if !ok {
		return
	}
	f.waiters = append(f.waiters, t)
	t.Block("fetch lba")
}

// completeFetch lands an asynchronous read and wakes waiters.
func (c *cache) completeFetch(lba int64, data []byte, prefetched bool) {
	c.put(lba, data, prefetched)
	if f, ok := c.fetching[lba]; ok {
		delete(c.fetching, lba)
		for _, t := range f.waiters {
			t.Wake()
		}
	}
}

// failFetch abandons an asynchronous read without inserting data,
// waking waiters so they retry synchronously (injected-fault path).
func (c *cache) failFetch(lba int64) {
	if f, ok := c.fetching[lba]; ok {
		delete(c.fetching, lba)
		for _, t := range f.waiters {
			t.Wake()
		}
	}
}

// len reports resident blocks (for tests).
func (c *cache) len() int { return c.lru.Len() }
