package fs

// An in-kernel file server: the paper's §3.5 motivation was dropping
// whole services (HTTP, NFS) into the kernel as event grafts. This test
// composes two subsystems through the graft-callable interface: a
// connection-event graft on a UDP port serves file contents read via
// fs.read — with the permission checks riding on the *installer's*
// identity, not the requester's.

import (
	"testing"
	"time"

	"vino/internal/graft"
	"vino/internal/kernel"
	"vino/internal/netstk"
	"vino/internal/resource"
)

// fileServerSrc: on each connection (request = anything), read the
// first 32 bytes of the file whose descriptor is parked at heap+0 and
// send them back.
const fileServerSrc = `
.name nfs-lite
.import fs.read
.import net.write
.import net.close
.func main
main:
    mov r6, r1          ; connection id
    ; fs.read(fd, off, ptr, len)
    ld r1, [r10+0]      ; fd
    movi r2, 0          ; offset
    addi r3, r10, 64    ; destination in our heap
    movi r4, 32         ; length
    callk fs.read
    ; r0 = bytes read; send them
    mov r4, r0
    mov r1, r6
    addi r2, r10, 64
    mov r3, r4
    callk net.write
    mov r1, r6
    callk net.close
    ret
`

func TestInKernelFileServer(t *testing.T) {
	k, fsys := newTestFS(256)
	n := netstk.New(k)
	f := fsys.Create("export", 4*BlockSize, 50, false) // owned by uid 50
	port := n.Listen("udp", 2049)

	var served []byte
	k.SpawnProcess("nfsd", 50, func(p *kernel.Process) {
		g, err := p.BuildAndInstall(port.Point().Name, fileServerSrc, graft.InstallOptions{
			Transfer: map[resource.Kind]int64{resource.Memory: 8 << 10},
		})
		if err != nil {
			t.Errorf("install: %v", err)
			return
		}
		of, err := fsys.Open(p.Thread, "export")
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		poke64(g.VM().Heap(), 0, int64(of.FD()))
		conn, err := n.Connect(k.Sched, "udp", 2049, []byte("READ export"))
		if err != nil {
			t.Errorf("connect: %v", err)
			return
		}
		for i := 0; i < 60 && !conn.Closed(); i++ {
			p.Thread.Sleep(time.Millisecond) // the worker pays disk latency
		}
		served = conn.Response()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(served) != 32 {
		t.Fatalf("served %d bytes, want 32", len(served))
	}
	want := f.blockContent(0)[:32]
	for i := range want {
		if served[i] != want[i] {
			t.Fatalf("served wrong data at byte %d", i)
		}
	}
}

// TestFileServerPermissionRidesOnInstaller: the same server installed by
// a user who cannot read the file aborts on fs.read — the graft runs
// "with the user identity of the process that installs it" (§3.3).
func TestFileServerPermissionRidesOnInstaller(t *testing.T) {
	k, fsys := newTestFS(256)
	n := netstk.New(k)
	fsys.Create("secret", 4*BlockSize, 50, false) // owned by 50
	port := n.Listen("udp", 2049)

	var fd int
	k.SpawnProcess("owner", 50, func(p *kernel.Process) {
		of, err := fsys.Open(p.Thread, "secret")
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		fd = of.FD()
		for i := 0; i < 60; i++ {
			p.Thread.Yield()
		}
	})
	var conn *netstk.Conn
	var g *graft.Installed
	k.SpawnProcess("imposter", 66, func(p *kernel.Process) {
		p.Thread.Yield() // let the owner open first
		var err error
		g, err = p.BuildAndInstall(port.Point().Name, fileServerSrc, graft.InstallOptions{
			Transfer: map[resource.Kind]int64{resource.Memory: 8 << 10},
		})
		if err != nil {
			t.Errorf("install: %v", err)
			return
		}
		poke64(g.VM().Heap(), 0, int64(fd))
		conn, err = n.Connect(k.Sched, "udp", 2049, []byte("READ secret"))
		if err != nil {
			t.Errorf("connect: %v", err)
			return
		}
		for i := 0; i < 40; i++ {
			p.Thread.Sleep(time.Millisecond)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(conn.Response()) != 0 {
		t.Fatalf("imposter's server leaked %d bytes of a foreign file", len(conn.Response()))
	}
	if !g.Removed() {
		t.Fatal("imposter's handler survived the permission failure")
	}
}

// TestFSReadCallableBounds: bad lengths and out-of-segment pointers are
// rejected without leaking.
func TestFSReadCallableBounds(t *testing.T) {
	k, fsys := newTestFS(64)
	fsys.Create("data", 2*BlockSize, 7, false)
	runProc(t, k, 7, func(p *kernel.Process) {
		of, _ := fsys.Open(p.Thread, "data")
		// A graft passing a kernel address as the destination.
		g, err := p.BuildAndInstall(of.RAPoint().Name, `
.name exfil
.import fs.read
.func main
main:
    ld r1, [r10+0]
    movi r2, 0
    movi r3, 0     ; kernel address!
    movi r4, 32
    callk fs.read
    ret
`, graft.InstallOptions{})
		if err != nil {
			t.Fatal(err)
		}
		poke64(g.VM().Heap(), 0, int64(of.FD()))
		buf := make([]byte, 8)
		if _, err := of.ReadAt(p.Thread, buf, 0); err != nil {
			t.Fatal(err)
		}
		if !g.Removed() {
			t.Error("exfiltrating graft survived")
		}
	})
}
