package harness

import (
	"strings"
	"testing"

	"vino/internal/guard"
	"vino/internal/trace"
)

// TestChaosGuardDeterminism extends the headline determinism claim to
// the supervised configuration: with the guard armed and install
// options randomized, two same-seed runs are still byte-identical and
// the full escalation ladder (quarantine, probation, expulsion) shows
// up in the trace.
func TestChaosGuardDeterminism(t *testing.T) {
	pol := guard.DefaultPolicy()
	cfg := ChaosConfig{Seed: 7, Iterations: 32, Guard: &pol, VaryInstalls: true}
	a, err := RunChaos(cfg)
	if err != nil {
		t.Fatalf("run A: %v", err)
	}
	b, err := RunChaos(cfg)
	if err != nil {
		t.Fatalf("run B: %v", err)
	}
	if a.TraceDump != b.TraceDump {
		t.Fatalf("same seed produced different traces:\n--- A ---\n%s\n--- B ---\n%s", a.TraceDump, b.TraceDump)
	}
	if !a.Survived() {
		t.Fatalf("kernel did not survive: %v (follow-up ok: %v)", a.Violations, a.FollowupOK)
	}
	for _, kind := range []trace.Kind{trace.GraftQuarantine, trace.GraftProbation, trace.GraftExpel} {
		if !strings.Contains(a.TraceDump, string(kind)) {
			t.Errorf("trace kind %q missing from supervised chaos dump", kind)
		}
	}
	if a.GuardHealth == nil {
		t.Fatal("GuardHealth not attached to the report")
	}
	if a.GuardHealth.Expulsions() == 0 {
		t.Error("no graft was expelled despite persistent misbehavior")
	}
	if a.GuardHealth.Quarantines() == 0 {
		t.Error("no quarantine recorded")
	}
	if !strings.Contains(a.Summary(), "guard") {
		t.Errorf("summary missing the guard line:\n%s", a.Summary())
	}
	if !strings.Contains(a.GuardHealth.Table(), "expelled") {
		t.Errorf("health table missing expelled row:\n%s", a.GuardHealth.Table())
	}
}

// TestChaosGuardCounters checks the per-run counter surface: watchdog
// fires and per-class injection counts reach the report and the
// CounterSummary text.
func TestChaosGuardCounters(t *testing.T) {
	r, err := RunChaos(ChaosConfig{Seed: 1, Iterations: 32})
	if err != nil {
		t.Fatal(err)
	}
	if r.WatchdogFires == 0 {
		t.Error("no watchdog fires surfaced")
	}
	if len(r.InjectedByClass) == 0 {
		t.Error("no per-class injection counts surfaced")
	}
	var total int64
	for _, n := range r.InjectedByClass {
		total += n
	}
	if total != r.Injected {
		t.Errorf("per-class counts sum to %d, report says %d injections", total, r.Injected)
	}
	cs := r.CounterSummary()
	if !strings.Contains(cs, "watchdog fires") || !strings.Contains(cs, "injections by class") {
		t.Errorf("CounterSummary incomplete:\n%s", cs)
	}
	// The unsupervised report must not grow a guard section: the default
	// configuration's Summary stays byte-compatible with the goldens.
	if r.GuardHealth != nil {
		t.Error("GuardHealth attached without a guard policy")
	}
	if strings.Contains(r.Summary(), "guard") {
		t.Errorf("unsupervised summary mentions guard:\n%s", r.Summary())
	}
}

// TestChaosVaryInstallsDeterminism pins the satellite invariant on its
// own: randomized install options without the guard still replay
// byte-identically, and actually change the schedule versus the classic
// fixed options.
func TestChaosVaryInstallsDeterminism(t *testing.T) {
	cfg := ChaosConfig{Seed: 3, Iterations: 24, VaryInstalls: true}
	a, err := RunChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.TraceDump != b.TraceDump {
		t.Fatal("VaryInstalls broke same-seed replay")
	}
	if !a.Survived() {
		t.Fatalf("did not survive varied installs: %v", a.Violations)
	}
	classic, err := RunChaos(ChaosConfig{Seed: 3, Iterations: 24})
	if err != nil {
		t.Fatal(err)
	}
	if classic.TraceDump == a.TraceDump {
		t.Fatal("VaryInstalls had no effect on the schedule")
	}
}
