package harness

import (
	"strings"
	"testing"

	"vino/internal/crash"
	"vino/internal/fault"
	"vino/internal/kernel"
)

// Acceptance tests for the crash phase: kernel panics injected across
// every crash site — including inside commit, abort and undo processing —
// must all be contained and recovered, with the post-recovery audit
// clean and the whole run byte-identical for equal seed and config.

func crashCfg() ChaosConfig {
	return ChaosConfig{Seed: 7, Extended: true, Crash: true}
}

func TestCrashPhaseContainsPanics(t *testing.T) {
	r, err := RunChaos(crashCfg())
	if err != nil {
		t.Fatal(err)
	}
	if !r.Survived() {
		t.Fatalf("crash run did not survive: %v", r.Violations)
	}
	if r.Panics < 20 {
		t.Errorf("panics = %d, want >= 20", r.Panics)
	}
	if r.Recoveries != r.Panics {
		t.Errorf("recoveries = %d, panics = %d: every panic must be recovered", r.Recoveries, r.Panics)
	}
	if r.Checkpoints < 2 {
		t.Errorf("checkpoints = %d, want >= 2", r.Checkpoints)
	}
	// The hard classes: crashes striking *inside* transaction cleanup.
	for _, c := range []crash.Class{crash.CommitCorruption, crash.AbortCorruption, crash.UndoEscape} {
		if r.PanicsByClass[c] == 0 {
			t.Errorf("no %s panics fired; by class: %v", c, r.PanicsByClass)
		}
	}
	// The extended taxonomy: mid-eviction and mid-accept crashes must
	// strike (and be recovered) too.
	for _, s := range []crash.Site{crash.SitePager, crash.SiteAccept} {
		if r.CrashedSites[s] == 0 {
			t.Errorf("no %s-site panics fired; by site: %v", s, r.CrashedSites)
		}
	}
	var total int64
	for _, n := range r.PanicsByClass {
		total += n
	}
	if total != r.Panics {
		t.Errorf("ByClass sums to %d, Panics = %d", total, r.Panics)
	}
	if r.FatalPanic != "" {
		t.Errorf("FatalPanic = %q on a recovered run", r.FatalPanic)
	}
	sum := r.Summary()
	if !strings.Contains(sum, "kernel panics contained") || !strings.Contains(sum, "panics by class") {
		t.Errorf("summary missing crash lines:\n%s", sum)
	}
}

// TestCrashPhaseGraftScope is the rollback-domain acceptance run: the
// same seed-7 campaign under RecoverScope "graft" must contain every
// panic with a clean post-recovery audit, scope at least some
// recoveries to the offender's domain (widening the rest), and leave
// at least one non-offender transaction alive through a recovery.
func TestCrashPhaseGraftScope(t *testing.T) {
	cfg := crashCfg()
	cfg.NCPU = 4
	cfg.RecoverScope = kernel.RecoverScopeGraft
	r, err := RunChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Survived() {
		t.Fatalf("graft-scope crash run did not survive: %v", r.Violations)
	}
	if r.Panics < 20 {
		t.Errorf("panics = %d, want >= 20", r.Panics)
	}
	if r.Recoveries != r.Panics {
		t.Errorf("recoveries = %d, panics = %d: every panic must be recovered", r.Recoveries, r.Panics)
	}
	if r.ScopedRecoveries == 0 {
		t.Error("no recovery was domain-scoped")
	}
	if r.ScopedRecoveries+r.WidenedRecoveries != r.Recoveries {
		t.Errorf("scoped %d + widened %d != recoveries %d",
			r.ScopedRecoveries, r.WidenedRecoveries, r.Recoveries)
	}
	if r.NonOffenderSurvivals == 0 {
		t.Error("no non-offender work survived any scoped recovery")
	}
	if s := r.CounterSummary(); !strings.Contains(s, "recoveries scoped") {
		t.Errorf("counter summary missing the scoped-recovery line:\n%s", s)
	}
}

// TestRecoverScopeCrashFreeByteIdentical: with an explicit plan and no
// injected panics, the recovery scope is dead code — the two scopes
// must produce byte-identical traces and summaries.
func TestRecoverScopeCrashFreeByteIdentical(t *testing.T) {
	base, err := RunChaos(ChaosConfig{Seed: 3, Iterations: 12})
	if err != nil {
		t.Fatal(err)
	}
	run := func(scope string) *ChaosReport {
		r, err := RunChaos(ChaosConfig{
			Seed: 3, Iterations: 12, Crash: true,
			Plan: base.Plan, RecoverScope: scope,
		})
		if err != nil {
			t.Fatal(err)
		}
		if r.Panics != 0 {
			t.Fatalf("scope %s: %d panics on a crash-free plan", scope, r.Panics)
		}
		return r
	}
	a := run(kernel.RecoverScopeKernel)
	b := run(kernel.RecoverScopeGraft)
	if a.TraceDump != b.TraceDump {
		t.Error("crash-free trace dumps differ between recovery scopes")
	}
	if a.Summary() != b.Summary() || a.CounterSummary() != b.CounterSummary() {
		t.Errorf("crash-free summaries differ between recovery scopes:\n%s%s\n---\n%s%s",
			a.Summary(), a.CounterSummary(), b.Summary(), b.CounterSummary())
	}
}

func TestCrashPhaseDeterministic(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  ChaosConfig
	}{
		{"ncpu1", crashCfg()},
		{"ncpu4", func() ChaosConfig { c := crashCfg(); c.NCPU = 4; return c }()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			a, err := RunChaos(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			b, err := RunChaos(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			if a.TraceDump != b.TraceDump {
				t.Error("same seed and config produced different trace dumps")
			}
			if a.Summary() != b.Summary() {
				t.Errorf("summaries differ:\n%s\n---\n%s", a.Summary(), b.Summary())
			}
			if a.Panics == 0 {
				t.Error("no panics injected")
			}
		})
	}
}

func TestCrashPhaseOffLeavesClassicRunIdentical(t *testing.T) {
	// With the crash phase off (the default), the report must not grow
	// crash artifacts: the classic path stays byte-compatible with the
	// golden dumps, which TestGoldenChaosDump pins separately.
	r, err := RunChaos(ChaosConfig{Seed: 1, Iterations: 12})
	if err != nil {
		t.Fatal(err)
	}
	if r.Panics != 0 || r.Recoveries != 0 || r.Checkpoints != 0 || r.FatalPanic != "" {
		t.Errorf("classic run has crash artifacts: %+v", r)
	}
	if s := r.Summary(); strings.Contains(s, "kernel panics") {
		t.Errorf("classic summary mentions panics:\n%s", s)
	}
}

func TestNoRecoverFatalDeterministic(t *testing.T) {
	cfg := crashCfg()
	cfg.NoRecover = true
	a, err := RunChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.FatalPanic == "" {
		t.Fatal("NoRecover run survived; expected the first panic to be fatal")
	}
	if a.Recoveries != 0 {
		t.Errorf("recoveries = %d with recovery disabled", a.Recoveries)
	}
	if got, want := Signature(a), "kernel-panic "+a.FatalPanic; got != want {
		t.Errorf("Signature = %q, want %q", got, want)
	}
	b, err := RunChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if b.FatalPanic != a.FatalPanic {
		t.Errorf("fatal panic differs across reruns: %q vs %q", a.FatalPanic, b.FatalPanic)
	}
}

// TestMinimizeChunkedFewerRuns pits the halving passes against the
// plain granularity-one reduction on the full crash plan (30+ rules):
// both must land on the identical minimal reproducer, and the chunked
// engine must get there in strictly fewer replays.
func TestMinimizeChunkedFewerRuns(t *testing.T) {
	cfg := ChaosConfig{Seed: 7, Crash: true, NoRecover: true, Iterations: 10}
	chunked, err := minimize(cfg, true)
	if err != nil {
		t.Fatal(err)
	}
	linear, err := minimize(cfg, false)
	if err != nil {
		t.Fatal(err)
	}
	if orig := chunked.Removed + len(chunked.Plan.Rules); orig < 30 {
		t.Fatalf("baseline plan has %d rules; the comparison needs a 30+ rule plan", orig)
	}
	if chunked.Signature != linear.Signature {
		t.Fatalf("signatures differ: chunked %q, linear %q", chunked.Signature, linear.Signature)
	}
	if chunked.Plan.Encode() != linear.Plan.Encode() {
		t.Errorf("minimal plans differ:\n%s---\n%s", chunked.Plan.Encode(), linear.Plan.Encode())
	}
	if chunked.Runs >= linear.Runs {
		t.Errorf("chunked ddmin used %d replays, linear %d: halving passes saved nothing",
			chunked.Runs, linear.Runs)
	}
	t.Logf("replays: chunked %d vs linear %d (plan %d -> %d rules)",
		chunked.Runs, linear.Runs, chunked.Removed+len(chunked.Plan.Rules), len(chunked.Plan.Rules))
}

func TestSignatureNormalizesDigits(t *testing.T) {
	r := &ChaosReport{Violations: []string{"lock db-37 still held after 1204ms"}, FollowupOK: true}
	if got := Signature(r); got != "lock db-# still held after #ms" {
		t.Errorf("Signature = %q", got)
	}
	if got := Signature(&ChaosReport{FollowupOK: true}); got != "" {
		t.Errorf("surviving signature = %q, want empty", got)
	}
}

func TestMinimizeRoundTrip(t *testing.T) {
	cfg := ChaosConfig{Seed: 7, Crash: true, NoRecover: true, Iterations: 10}
	res, err := Minimize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	base, err := RunChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Signature != Signature(base) {
		t.Errorf("minimized signature %q, baseline %q", res.Signature, Signature(base))
	}
	if len(res.Plan.Rules) >= len(base.Plan.Rules) {
		t.Errorf("minimized plan has %d rules, baseline %d: not strictly smaller",
			len(res.Plan.Rules), len(base.Plan.Rules))
	}
	if res.Removed != len(base.Plan.Rules)-len(res.Plan.Rules) {
		t.Errorf("Removed = %d, rules went %d -> %d", res.Removed, len(base.Plan.Rules), len(res.Plan.Rules))
	}
	if res.Runs < len(res.Plan.Rules)+1 {
		t.Errorf("Runs = %d, impossibly few for %d surviving rules", res.Runs, len(res.Plan.Rules))
	}

	// The reproducer round-trips through the -faultfile text format and
	// still fails with the same signature.
	decoded, err := fault.Decode(res.Plan.Encode())
	if err != nil {
		t.Fatalf("decode minimized plan: %v", err)
	}
	rcfg := cfg
	rcfg.Plan = decoded
	rep, err := RunChaos(rcfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := Signature(rep); got != res.Signature {
		t.Errorf("replayed reproducer signature %q, want %q", got, res.Signature)
	}

	// Every surviving rule is load-bearing: deleting any one loses the
	// failure. (That is the minimizer's postcondition; spot-check rule 0.)
	if len(res.Plan.Rules) > 1 {
		t.Skipf("minimal plan kept %d rules; load-bearing spot check assumes 1", len(res.Plan.Rules))
	}
	ecfg := cfg
	ecfg.Plan = &fault.Plan{Seed: res.Plan.Seed}
	rep2, err := RunChaos(ecfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := Signature(rep2); got == res.Signature {
		t.Error("empty plan reproduces the signature; minimizer result is vacuous")
	}
}
