package harness

// The red-team phase: the adversarial SFI escape corpus plus an
// in-kernel compartment-violation probe. The corpus proves every attack
// image is stopped at its expected layer (verifier or VM) with intact
// sentinel audits; the probe proves an sfi-violation raised inside a
// real dispatch is absorbed by the chaos kernel — as a plain abort when
// crash containment is off, as a contained, recovered kernel panic when
// it is on.

import (
	"fmt"
	"time"

	"vino/internal/crash"
	"vino/internal/graft"
	"vino/internal/kernel"
	"vino/internal/redteam"
	"vino/internal/sched"
	"vino/internal/sfi"
)

// redteamProbeSrc stores into the read-only kernel-export region of the
// default compartment layout: the dispatch must trap, never corrupt.
const redteamProbeSrc = `
.name rtprobe
.func main
main:
    movi r1, 49152
    add r1, r1, r10
    st [r1+0], r2
    ret
`

const redteamProbeRounds = 3

func (c *chaosRun) phaseRedTeam() error {
	// Layer 1: the standalone corpus. Every case must land exactly on
	// its expected layer; an escape or a downgraded rejection is an
	// invariant violation like any other.
	res := redteam.Run(redteam.Config{Seed: c.cfg.Seed, Translate: !c.cfg.NoTranslate})
	c.report.RedTeam = res
	for _, v := range res.Verdicts {
		if !v.OK() {
			c.violate("redteam: case %s: got %s, want %s (%s)", v.Case, v.Got, v.Want, v.Detail)
		}
	}

	// Layer 2: the in-kernel probe. With checkpointing armed the
	// violation escalates to a classified kernel panic RunRecovered
	// must contain; without, it stays an ordinary abort and the base
	// path answers.
	k := c.k
	pt := k.Grafts.RegisterPoint(&graft.Point{
		Name: "redteam.probe",
		Kind: graft.Function,
		Default: func(th *sched.Thread, args []int64) (int64, error) {
			return -1, nil
		},
		Watchdog: 8 * time.Millisecond,
	})
	contained := k.Crash != nil
	if contained {
		k.Checkpoint() // a restore point even if the cadence never elapsed
	}
	panicsBefore := int64(0)
	if contained {
		panicsBefore = k.Crash.Stats().ByClass[crash.SFIViolation]
	}
	for i := 0; i < redteamProbeRounds; i++ {
		k.SpawnProcess(fmt.Sprintf("redteam-probe-%d", i), graft.Root, func(p *kernel.Process) {
			img, _, err := sfi.BuildCompartmented(redteamProbeSrc, k.Signer)
			if err != nil {
				c.violate("redteam: probe build: %v", err)
				return
			}
			if _, err := p.Install("redteam.probe", img, graft.InstallOptions{}); err != nil {
				// A guard ladder may have expelled the probe's key on an
				// earlier round; the bar holding is containment working.
				return
			}
			pt.Invoke(p.Thread)
		})
		if contained {
			if _, err := k.RunRecovered(); err != nil {
				return fmt.Errorf("probe round %d: %w", i, err)
			}
		} else if err := k.Run(); err != nil {
			return fmt.Errorf("probe round %d: %w", i, err)
		}
	}
	if contained {
		if got := k.Crash.Stats().ByClass[crash.SFIViolation] - panicsBefore; got == 0 {
			c.violate("redteam: probe dispatched %d violating rounds but no sfi-violation panic was contained", redteamProbeRounds)
		}
	}
	return nil
}
