package harness

import (
	"fmt"
	"strings"
	"time"

	vfs "vino/internal/fs"
	"vino/internal/graft"
	"vino/internal/sched"
	"vino/internal/vmm"
)

// RAWinPoint is one point of the §4.1.1 read-ahead cost-benefit sweep.
type RAWinPoint struct {
	ComputeUS float64 // application think time between reads
	PlainUS   float64 // mean per-read elapsed without the graft
	GraftUS   float64 // mean per-read elapsed with the graft
	GainUS    float64 // PlainUS - GraftUS
}

// ReadAheadWinSweep reproduces the §4.1.1 analysis: "the application
// will win if the cost of the read-ahead graft is less than the time the
// application spends between read requests." A random reader announces
// its next block; the sweep varies the compute time between reads and
// reports the per-read gain. The zero crossing should sit near the
// graft's safe-path cost (~110 us here, 107 us in the paper).
func ReadAheadWinSweep(computesUS []float64) ([]RAWinPoint, error) {
	if len(computesUS) == 0 {
		computesUS = []float64{0, 25, 50, 75, 100, 150, 200, 300}
	}
	// Fixed pseudo-random block sequence over a 12 MB file.
	const reads = 50
	nBlocks := int64(12 << 20 / vfs.BlockSize)
	pattern := make([]int64, reads)
	state := int64(987654321)
	for i := range pattern {
		state = (state*1103515245 + 12345) & 0x7FFFFFFF
		pattern[i] = state % nBlocks
	}

	run := func(computeUS float64, useGraft bool) (float64, error) {
		e := newEnv()
		fsys := vfs.New(e.K, vfs.NewDisk(vfs.FujitsuM2694ESA()), 8192)
		fsys.Create("db", 12<<20, graft.Root, false)
		total, err := e.measureOn(func(t *sched.Thread) time.Duration {
			of, err := fsys.Open(t, "db")
			if err != nil {
				panic(err)
			}
			var g *graft.Installed
			if useGraft {
				img, err := e.buildVariant(raGraftBody, true)
				if err != nil {
					panic(err)
				}
				g, err = e.install(t, of.RAPoint().Name, img, graft.InstallOptions{})
				if err != nil {
					panic(err)
				}
				poke64(g.VM().Heap(), 16, int64(of.FD()))
			}
			buf := make([]byte, vfs.BlockSize)
			compute := time.Duration(computeUS * float64(time.Microsecond))
			start := e.K.Clock.Now()
			for i, b := range pattern {
				if g != nil {
					if i+1 < len(pattern) {
						poke64(g.VM().Heap(), 0, pattern[i+1]*vfs.BlockSize)
						poke64(g.VM().Heap(), 8, vfs.BlockSize)
					} else {
						poke64(g.VM().Heap(), 8, 0)
					}
				}
				if _, err := of.ReadAt(t, buf, b*vfs.BlockSize); err != nil {
					panic(err)
				}
				if compute > 0 {
					t.Charge(compute)
				}
			}
			return e.K.Clock.Now() - start
		})
		if err != nil {
			return 0, err
		}
		return usPerOp(total, reads), nil
	}

	var out []RAWinPoint
	for _, c := range computesUS {
		plain, err := run(c, false)
		if err != nil {
			return nil, err
		}
		grafted, err := run(c, true)
		if err != nil {
			return nil, err
		}
		out = append(out, RAWinPoint{ComputeUS: c, PlainUS: plain, GraftUS: grafted, GainUS: plain - grafted})
	}
	return out, nil
}

// FormatRAWinSweep renders the sweep.
func FormatRAWinSweep(pts []RAWinPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Read-ahead cost-benefit (s4.1.1): win iff compute time >= graft cost\n")
	fmt.Fprintf(&b, "%12s %14s %14s %12s\n", "compute (us)", "no graft (us)", "graft (us)", "gain (us)")
	for _, p := range pts {
		fmt.Fprintf(&b, "%12.0f %14.1f %14.1f %+12.1f\n", p.ComputeUS, p.PlainUS, p.GraftUS, p.GainUS)
	}
	return b.String()
}

// EvictionCostBenefit reproduces the §4.2.2 arithmetic: the graft may
// disagree with the default victim selection N times for every page
// fault it avoids before it costs more than it saves.
type EvictionCostBenefit struct {
	OverruleCostUS float64 // safe path minus base path (the added cost per disagreement)
	AgreeCostUS    float64 // cost when the graft agrees with the victim
	FaultCostUS    float64 // the benefit of each avoided fault
	BreakEven      float64 // FaultCostUS / OverruleCostUS
}

// String renders the analysis.
func (e *EvictionCostBenefit) String() string {
	return fmt.Sprintf(
		"Eviction cost-benefit (s4.2.2): overrule costs %.0f us, an avoided fault saves %.0f us\n"+
			"  -> the graft may disagree %.0f times per avoided I/O (paper: 57)\n"+
			"  agreement path costs %.0f us (paper: 159 us)\n",
		e.OverruleCostUS, e.FaultCostUS, e.BreakEven, e.AgreeCostUS)
}

// BuildEvictionCostBenefit derives the analysis from the Table 4
// measurements plus an agreement-path measurement.
func BuildEvictionCostBenefit() (*EvictionCostBenefit, error) {
	tbl, err := PageEvictionTable()
	if err != nil {
		return nil, err
	}
	agree, err := measureEvictionAgreement()
	if err != nil {
		return nil, err
	}
	overrule := tbl.Elapsed(PathSafe) - tbl.Elapsed(PathBase)
	fault := 18000.0 // the paper's 18 ms fault cost; vmm.DefaultFaultLatency
	return &EvictionCostBenefit{
		OverruleCostUS: overrule,
		AgreeCostUS:    agree,
		FaultCostUS:    fault,
		BreakEven:      fault / overrule,
	}, nil
}

// measureEvictionAgreement times the safe path when the global victim is
// already cold, so the graft agrees (the paper's cheaper 159 us case:
// the victim check fails fast and no scan runs).
func measureEvictionAgreement() (float64, error) {
	e := newEnv()
	const pages = 512
	v := vmm.New(e.K, pages+128)
	iters := 60
	total, err := e.measureOn(func(t *sched.Thread) time.Duration {
		vas := v.NewVAS(t)
		point := vas.EvictPoint()
		img, err := e.buildVariant(evictGraftBody, true)
		if err != nil {
			panic(err)
		}
		g, err := e.install(t, point.Name, img, graft.InstallOptions{})
		if err != nil {
			panic(err)
		}
		heap := g.VM().Heap()
		hot := []int64{0, 1, 2}
		poke64(heap, 0, int64(len(hot)))
		for i, h := range hot {
			poke64(heap, 8+8*i, h)
		}
		for i := int64(0); i < pages; i++ {
			vas.Touch(t, i)
		}
		setup := func(i int) {
			// A cold page is the victim: the graft agrees immediately.
			cold := int64(100 + i)
			vas.Touch(t, cold)
			v.MakeVictimNext(vas, cold)
		}
		return timed(e.K, iters, setup, func() {
			v.EvictOne(t)
		})
	})
	if err != nil {
		return 0, err
	}
	return usPerOp(total, iters), nil
}
