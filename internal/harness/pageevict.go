package harness

import (
	"fmt"
	"time"

	"vino/internal/graft"
	"vino/internal/sched"
	"vino/internal/vmm"
)

// Paper values for Table 4 (Page Eviction Graft Overhead), elapsed us.
var paperTable4 = map[string]float64{
	PathBase: 39, PathVINO: 40, PathNull: 130, PathUnsafe: 329, PathSafe: 355, PathAbort: 348,
}

// evictGraftBody is the §4.2.2 graft: hot pages at heap offset 0
// (count, then vpns), eviction candidates published by the kernel at
// offset 1024. If the victim is hot, the graft examines the whole
// candidate list and returns the last cold page it sees — the paper's
// graft likewise examines the full list of pages it is allowed to evict
// (its measured scan is ~160 us over 512 candidates).
const evictGraftBody = `
.name pick-eviction
.func main
main:
    mov r5, r1
    mov r14, r1
    call is_hot
    jz r0, keep
    movi r8, 0
    addi r6, r10, 1024
    ld r7, [r6+0]
    movi r9, -1
scan:
    cmplt r1, r8, r7
    jz r1, done
    movi r1, 3
    shl r1, r8, r1
    add r1, r1, r6
    ld r5, [r1+8]
    call is_hot
    jnz r0, next
    mov r9, r5
next:
    addi r8, r8, 1
    jmp scan
done:
    movi r1, -1
    cmpeq r1, r9, r1
    jnz r1, keep
    mov r0, r9
    ret
keep:
    mov r0, r14
    ret

is_hot:
    ld r2, [r10+0]
    movi r3, 0
ih_loop:
    cmplt r4, r3, r2
    jz r4, ih_no
    movi r0, 3
    shl r0, r3, r0
    add r0, r0, r10
    ld r0, [r0+8]
    cmpeq r0, r0, r5
    jnz r0, ih_yes
    addi r3, r3, 1
    jmp ih_loop
ih_no:
    movi r0, 0
    ret
ih_yes:
    movi r0, 1
    ret
`

// evictGraftAbortBody does the full selection and then traps.
const evictGraftAbortBody = `
.name pick-eviction-abort
.func main
main:
    mov r5, r1
    mov r14, r1
    call is_hot
    jz r0, keep
    movi r8, 0
    addi r6, r10, 1024
    ld r7, [r6+0]
    movi r9, -1
scan:
    cmplt r1, r8, r7
    jz r1, done
    movi r1, 3
    shl r1, r8, r1
    add r1, r1, r6
    ld r5, [r1+8]
    call is_hot
    jnz r0, next
    mov r9, r5
next:
    addi r8, r8, 1
    jmp scan
done:
    movi r1, -1
    cmpeq r1, r9, r1
    jnz r1, keep
    mov r0, r9
    jmp trap
keep:
    mov r0, r14
trap:
` + trapTail + `
is_hot:
    ld r2, [r10+0]
    movi r3, 0
ih_loop:
    cmplt r4, r3, r2
    jz r4, ih_no
    movi r0, 3
    shl r0, r3, r0
    add r0, r0, r10
    ld r0, [r0+8]
    cmpeq r0, r0, r5
    jnz r0, ih_yes
    addi r3, r3, 1
    jmp ih_loop
ih_no:
    movi r0, 0
    ret
ih_yes:
    movi r0, 1
    ret
`

// PageEvictionTable reproduces Table 4: the cost of the two-level page
// eviction decision when the application's graft overrules the global
// victim. The workload is the paper's: a 2 MB (512-page) footprint with
// a few performance-critical pages.
func PageEvictionTable() (*Table, error) {
	tbl := &Table{Number: 4, Title: "Page Eviction Graft Overhead (us per eviction decision)"}
	variants := []struct {
		path  string
		graft string
		safe  bool
	}{
		{PathBase, "", false},
		{PathVINO, "", false},
		{PathNull, nullGraftSrc, true},
		{PathUnsafe, evictGraftBody, false},
		{PathSafe, evictGraftBody, true},
		{PathAbort, evictGraftAbortBody, true},
	}
	for _, v := range variants {
		us, err := measureEvictionPath(v.path, v.graft, v.safe)
		if err != nil {
			return nil, fmt.Errorf("table 4 %s: %w", v.path, err)
		}
		tbl.Rows = append(tbl.Rows, Row{Path: v.path, ElapsedUS: us, PaperUS: paperTable4[v.path]})
	}
	tbl.Notes = append(tbl.Notes,
		"workload: 512-page (2 MB) footprint, 3 hot pages; unsafe/safe paths overrule the default victim",
		"paper's abort path lands below its safe path (results checking and list manipulation are skipped); ours lands slightly above because the default-fallback invocation is part of the measured decision")
	return tbl, nil
}

func measureEvictionPath(path, graftSrc string, safe bool) (float64, error) {
	e := newEnv()
	const pages = 512
	v := vmm.New(e.K, pages+64)
	v.AlwaysConsultPoint = path == PathVINO
	hot := []int64{0, 1, 2}
	iters := 60 // each iteration pays an 18 ms re-fault outside the timed region
	total, err := e.measureOn(func(t *sched.Thread) time.Duration {
		vas := v.NewVAS(t)
		var g *graft.Installed
		point := vas.EvictPoint()
		if graftSrc != "" {
			img, err := e.buildVariant(graftSrc, safe)
			if err != nil {
				panic(err)
			}
			point.KeepOnAbort = true
			var ierr error
			g, ierr = e.install(t, point.Name, img, graft.InstallOptions{})
			if ierr != nil {
				panic(ierr)
			}
			heap := g.VM().Heap()
			poke64(heap, 0, int64(len(hot)))
			for i, h := range hot {
				poke64(heap, 8+8*i, h)
			}
		}
		for i := int64(0); i < pages; i++ {
			vas.Touch(t, i)
		}
		setup := func(i int) {
			// Force the global victim to be a hot page so the graft
			// disagrees (the measured case in Table 4). On the abort
			// path the fallback default evicts the hot page, so
			// re-fault it first (outside the timed region).
			h := hot[i%len(hot)]
			vas.Touch(t, h)
			v.MakeVictimNext(vas, h)
		}
		// 60 evictions against a 512-page footprint with 64 spare frames:
		// no re-faulting needed, and the candidate list stays near the
		// paper's 512 throughout.
		return timed(e.K, iters, setup, func() {
			v.EvictOne(t)
		})
	})
	if err != nil {
		return 0, err
	}
	return usPerOp(total, iters), nil
}
