package harness

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The golden files under testdata/ were captured from the single-CPU
// implementation that predates the SMP refactor. These tests pin the
// ncpu=1 configuration to that output byte-for-byte: the multi-CPU
// machinery must be invisible unless more than one CPU is configured.
//
// Regenerate (only when intentionally changing default behaviour) with:
//
//	go test ./internal/harness -run Golden -update
var updateGolden = flag.Bool("update", false, "rewrite golden files under testdata/")

func goldenCompare(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run with -update to create): %v", path, err)
	}
	if got != string(want) {
		t.Errorf("%s: output diverged from pre-refactor golden (%d bytes got, %d want)",
			name, len(got), len(want))
		reportFirstDiff(t, got, string(want))
	}
}

func reportFirstDiff(t *testing.T, got, want string) {
	t.Helper()
	gl := strings.Split(got, "\n")
	wl := strings.Split(want, "\n")
	n := len(gl)
	if len(wl) < n {
		n = len(wl)
	}
	for i := 0; i < n; i++ {
		if gl[i] != wl[i] {
			t.Errorf("first difference at line %d:\n  got:  %q\n  want: %q", i+1, gl[i], wl[i])
			return
		}
	}
	t.Errorf("outputs agree for %d lines, then lengths differ (got %d lines, want %d)",
		n, len(gl), len(wl))
}

// goldenChaosConfig keeps runs short enough for CI while exercising
// every phase and every fault class.
func goldenChaosConfig(seed int64) ChaosConfig {
	return ChaosConfig{Seed: seed, Iterations: 12}
}

func TestGoldenChaosDump(t *testing.T) {
	for _, seed := range []int64{1, 7} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rep, err := RunChaos(goldenChaosConfig(seed))
			if err != nil {
				t.Fatalf("RunChaos: %v", err)
			}
			if !rep.Survived() {
				t.Fatalf("chaos run did not survive:\n%s", rep.Summary())
			}
			goldenCompare(t, fmt.Sprintf("chaos-seed%d.summary", seed), rep.Summary())
			goldenCompare(t, fmt.Sprintf("chaos-seed%d.dump", seed), rep.TraceDump)
		})
	}
}

// TestGoldenCrashDump pins the crash phase's determinism artifact and
// proves the incremental-checkpoint engine is invisible in it: a run
// with full-copy captures (the pre-delta behaviour) must reproduce the
// incremental golden byte for byte — only capture cost may differ
// between the modes, never a trace or a summary.
func TestGoldenCrashDump(t *testing.T) {
	cfg := ChaosConfig{Seed: 7, Extended: true, Crash: true}
	incr, err := RunChaos(cfg)
	if err != nil {
		t.Fatalf("RunChaos: %v", err)
	}
	if !incr.Survived() {
		t.Fatalf("crash run did not survive:\n%s", incr.Summary())
	}
	goldenCompare(t, "crash-seed7.summary", incr.Summary())
	goldenCompare(t, "crash-seed7.dump", incr.TraceDump)

	fcfg := cfg
	fcfg.CheckpointFullCopy = true
	full, err := RunChaos(fcfg)
	if err != nil {
		t.Fatalf("RunChaos (full copy): %v", err)
	}
	if full.TraceDump != incr.TraceDump {
		t.Error("full-copy trace dump diverged from incremental")
		reportFirstDiff(t, full.TraceDump, incr.TraceDump)
	}
	if full.Summary() != incr.Summary() {
		t.Errorf("full-copy summary diverged from incremental:\n%s\n---\n%s",
			full.Summary(), incr.Summary())
	}
}

func TestGoldenTables(t *testing.T) {
	var b strings.Builder
	if tab, err := ReadAheadTable(); err != nil {
		t.Fatalf("ReadAheadTable: %v", err)
	} else {
		b.WriteString(tab.String())
		b.WriteString("\n")
	}
	if tab, err := PageEvictionTable(); err != nil {
		t.Fatalf("PageEvictionTable: %v", err)
	} else {
		b.WriteString(tab.String())
		b.WriteString("\n")
	}
	if tab, err := SchedulingTable(); err != nil {
		t.Fatalf("SchedulingTable: %v", err)
	} else {
		b.WriteString(tab.String())
		b.WriteString("\n")
	}
	if tab, err := EncryptionTable(); err != nil {
		t.Fatalf("EncryptionTable: %v", err)
	} else {
		b.WriteString(tab.String())
		b.WriteString("\n")
	}
	if tab, err := BuildAbortTable(); err != nil {
		t.Fatalf("BuildAbortTable: %v", err)
	} else {
		b.WriteString(tab.String())
	}
	goldenCompare(t, "tables.txt", b.String())
}
