package harness

import (
	"fmt"
	"strings"
	"time"

	vfs "vino/internal/fs"
	"vino/internal/graft"
	"vino/internal/kernel"
	"vino/internal/lock"
	"vino/internal/sched"
	"vino/internal/vmm"
)

// AbortRow is one line of Table 7: the cost of aborting the null path
// versus the fully grafted path for one sample graft.
type AbortRow struct {
	Graft       string
	NullAbortUS float64
	FullAbortUS float64
	PaperNullUS float64
	PaperFullUS float64
}

// AbortTable reproduces Table 7 (Graft Abort Costs). The abort cost is
// measured directly: the transaction manager reports the virtual time
// each Abort consumed (fixed overhead + lock releases + undo
// processing).
type AbortTable struct {
	Rows  []AbortRow
	Notes []string
}

// String renders the table in the paper's layout.
func (t *AbortTable) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 7. Graft Abort Costs\n")
	fmt.Fprintf(&b, "%-14s %12s %12s %12s %12s\n", "Graft", "null (us)", "full (us)", "paper null", "paper full")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-14s %12.1f %12.1f %12.1f %12.1f\n", r.Graft, r.NullAbortUS, r.FullAbortUS, r.PaperNullUS, r.PaperFullUS)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	return b.String()
}

// paperTable7 holds the paper's (null, full) abort costs in us.
var paperTable7 = map[string][2]float64{
	"Read-Ahead":    {32, 45},
	"Page Eviction": {38, 50},
	"Scheduling":    {33, 45},
	"Encryption":    {36, 36},
}

// BuildAbortTable measures Table 7 by running, for each sample graft,
// the null-abort variant (trap before any work) and the full-abort
// variant (trap after the complete graft body) and reading the
// transaction manager's abort duration.
func BuildAbortTable() (*AbortTable, error) {
	tbl := &AbortTable{}
	type exp struct {
		name      string
		nullAbort func() (time.Duration, error)
		fullAbort func() (time.Duration, error)
	}
	exps := []exp{
		{"Read-Ahead",
			func() (time.Duration, error) { return abortCostReadAhead(nullAbortSrc) },
			func() (time.Duration, error) { return abortCostReadAhead(raGraftAbortBody) }},
		{"Page Eviction",
			func() (time.Duration, error) { return abortCostEviction(nullAbortSrc) },
			func() (time.Duration, error) { return abortCostEviction(evictGraftAbortBody) }},
		{"Scheduling",
			func() (time.Duration, error) { return abortCostScheduling(nullAbortSrc) },
			func() (time.Duration, error) { return abortCostScheduling(schedGraftAbortBody) }},
		{"Encryption",
			func() (time.Duration, error) { return abortCostEncryption(nullAbortSrc) },
			func() (time.Duration, error) { return abortCostEncryption(encryptGraftAbortBody) }},
	}
	for _, x := range exps {
		nd, err := x.nullAbort()
		if err != nil {
			return nil, fmt.Errorf("table 7 %s null: %w", x.name, err)
		}
		fd, err := x.fullAbort()
		if err != nil {
			return nil, fmt.Errorf("table 7 %s full: %w", x.name, err)
		}
		p := paperTable7[x.name]
		tbl.Rows = append(tbl.Rows, AbortRow{
			Graft:       x.name,
			NullAbortUS: float64(nd) / float64(time.Microsecond),
			FullAbortUS: float64(fd) / float64(time.Microsecond),
			PaperNullUS: p[0],
			PaperFullUS: p[1],
		})
	}
	tbl.Notes = append(tbl.Notes,
		"abort cost = fixed abort overhead + 10 us per lock released + undo processing (§4.5)",
		"encryption holds no locks and pushes no undos, so null and full aborts cost the same (as in the paper)")
	return tbl, nil
}

// abortCostReadAhead installs the given trapping graft on a compute-ra
// point, invokes it once, and returns the measured abort duration.
func abortCostReadAhead(src string) (time.Duration, error) {
	e := newEnv()
	fsys := vfs.New(e.K, vfs.NewDisk(vfs.FujitsuM2694ESA()), 256)
	fsys.Create("db", 12<<20, graft.Root, false)
	var dur time.Duration
	_, err := e.measureOn(func(t *sched.Thread) time.Duration {
		of, err := fsys.Open(t, "db")
		if err != nil {
			panic(err)
		}
		point := of.RAPoint()
		point.KeepOnAbort = true
		img, err := e.buildVariant(src, true)
		if err != nil {
			panic(err)
		}
		g, err := e.install(t, point.Name, img, graft.InstallOptions{})
		if err != nil {
			panic(err)
		}
		poke64(g.VM().Heap(), 0, 8*vfs.BlockSize)
		poke64(g.VM().Heap(), 8, vfs.BlockSize)
		poke64(g.VM().Heap(), 16, int64(of.FD()))
		_, _ = point.Invoke(t, 0, vfs.BlockSize)
		dur = e.K.Txns.LastAbortDuration()
		return 0
	})
	return dur, err
}

func abortCostEviction(src string) (time.Duration, error) {
	e := newEnv()
	v := vmm.New(e.K, 600)
	var dur time.Duration
	_, err := e.measureOn(func(t *sched.Thread) time.Duration {
		vas := v.NewVAS(t)
		point := vas.EvictPoint()
		point.KeepOnAbort = true
		img, err := e.buildVariant(src, true)
		if err != nil {
			panic(err)
		}
		g, err := e.install(t, point.Name, img, graft.InstallOptions{})
		if err != nil {
			panic(err)
		}
		heap := g.VM().Heap()
		poke64(heap, 0, 3)
		for i := int64(0); i < 3; i++ {
			poke64(heap, 8+8*int(i), i)
		}
		for i := int64(0); i < 512; i++ {
			vas.Touch(t, i)
		}
		v.MakeVictimNext(vas, 0)
		v.EvictOne(t)
		dur = e.K.Txns.LastAbortDuration()
		return 0
	})
	return dur, err
}

func abortCostScheduling(src string) (time.Duration, error) {
	k := kernel.New(kernel.Config{Timeslice: time.Hour, UnsafeGrafts: true})
	e := &env{K: k}
	k.EnableScheduleDelegation()
	ids := make([]int64, 64)
	for i := range ids {
		ids[i] = int64(1000 + i)
	}
	k.SetProcessList(ids)
	var dur time.Duration
	var fail error
	k.SpawnProcess("client", graft.Root, func(p *kernel.Process) {
		t := p.Thread
		point := k.DelegatePoint(t)
		point.KeepOnAbort = true
		img, err := e.buildVariant(src, true)
		if err != nil {
			fail = err
			return
		}
		if _, err := e.install(t, point.Name, img, graft.InstallOptions{}); err != nil {
			fail = err
			return
		}
		_, _ = point.Invoke(t, int64(t.ID()))
		dur = k.Txns.LastAbortDuration()
	})
	if err := k.Run(); err != nil {
		return 0, err
	}
	return dur, fail
}

func abortCostEncryption(src string) (time.Duration, error) {
	e := newEnv()
	point := e.K.Grafts.RegisterPoint(&graft.Point{
		Name:      "stream/0.filter",
		Kind:      graft.Function,
		Privilege: graft.Local,
		Default:   func(t *sched.Thread, args []int64) (int64, error) { return 0, nil },
		Watchdog:  100 * time.Millisecond,
	})
	point.KeepOnAbort = true
	var dur time.Duration
	_, err := e.measureOn(func(t *sched.Thread) time.Duration {
		img, err := e.buildVariant(src, true)
		if err != nil {
			panic(err)
		}
		if _, err := e.install(t, point.Name, img, graft.InstallOptions{}); err != nil {
			panic(err)
		}
		_, _ = point.Invoke(t, 8192)
		dur = e.K.Txns.LastAbortDuration()
		return 0
	})
	return dur, err
}

// SweepPoint is one point of the §4.5 abort-cost sweep.
type SweepPoint struct {
	Locks   int
	Undos   int
	MeasUS  float64
	ModelUS float64 // 35 + 10L + 2U, the paper's equation with c·G as undo work
}

// AbortCostSweep reproduces the §4.5 abort-cost model
// "35 us + 10L + cG": abort a transaction holding L locks with U undo
// records and compare against the closed form.
func AbortCostSweep(maxLocks, maxUndos int) ([]SweepPoint, error) {
	k := kernel.New(kernel.Config{Timeslice: time.Hour})
	lm := k.Locks
	cls := &lock.Class{Name: "sweep", Timeout: time.Second}
	locks := make([]*lock.Lock, maxLocks)
	for i := range locks {
		locks[i] = lm.NewLock(fmt.Sprintf("l%d", i), cls)
	}
	var out []SweepPoint
	var fail error
	k.SpawnProcess("sweep", graft.Root, func(p *kernel.Process) {
		t := p.Thread
		for L := 0; L <= maxLocks; L += 2 {
			for U := 0; U <= maxUndos; U += 4 {
				tx := k.Txns.Begin(t)
				for i := 0; i < L; i++ {
					tx.AcquireLock(locks[i], lock.Exclusive)
				}
				for i := 0; i < U; i++ {
					tx.PushUndo("sweep", func() { t.Charge(2 * time.Microsecond) })
				}
				tx.Abort()
				meas := k.Txns.LastAbortDuration()
				model := 35.0 + 10.0*float64(L) + 2.0*float64(U)
				out = append(out, SweepPoint{
					Locks:   L,
					Undos:   U,
					MeasUS:  float64(meas) / float64(time.Microsecond),
					ModelUS: model,
				})
			}
		}
	})
	if err := k.Run(); err != nil {
		return nil, err
	}
	return out, fail
}
