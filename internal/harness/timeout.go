package harness

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"vino/internal/graft"
	"vino/internal/kernel"
	"vino/internal/lock"
	"vino/internal/txn"
)

// TimeoutPoint is one configuration of the §4.5 tuning experiment.
type TimeoutPoint struct {
	TimeoutMS    int
	WorkerOps    int // completed short transactions in the run window
	WorkerAborts int // innocent casualties: short holders aborted
	HogAborts    int // the misbehaving long holder, correctly aborted
	HogCompleted int // hog transactions that ran to completion
}

// TimeoutSweep reproduces the experiment the paper defers ("reasonable
// time-out intervals must be determined (experimentally) on a
// per-resource-type basis... we expect to experimentally determine a
// more appropriate timing as the system matures", §3.2/§4.5): several
// well-behaved transactions hold a contested lock for ~15 ms each,
// while a hog periodically grabs it for 300 ms. The contention time-out
// is swept. Too short and the innocent 15 ms holders are aborted; too
// long and the hog monopolises the resource, collapsing throughput.
func TimeoutSweep(timeoutsMS []int) ([]TimeoutPoint, error) {
	if len(timeoutsMS) == 0 {
		timeoutsMS = []int{10, 20, 40, 80, 160, 320}
	}
	var out []TimeoutPoint
	for _, to := range timeoutsMS {
		p, err := runTimeoutConfig(time.Duration(to) * time.Millisecond)
		if err != nil {
			return nil, fmt.Errorf("timeout sweep %dms: %w", to, err)
		}
		p.TimeoutMS = to
		out = append(out, p)
	}
	return out, nil
}

const (
	twWindow   = 3 * time.Second
	twWorkHold = 15 * time.Millisecond
	twHogHold  = 300 * time.Millisecond
	twWorkers  = 3
)

func runTimeoutConfig(timeout time.Duration) (TimeoutPoint, error) {
	k := kernel.New(kernel.Config{ZeroTxnCosts: true})
	cls := &lock.Class{Name: "contested", Timeout: timeout}
	l := k.Locks.NewLock("resource", cls)
	var p TimeoutPoint
	stop := false
	k.Clock.After(twWindow, func() { stop = true })

	for w := 0; w < twWorkers; w++ {
		k.SpawnProcess(fmt.Sprintf("worker%d", w), graft.UID(10+w), func(proc *kernel.Process) {
			t := proc.Thread
			for !stop {
				err := k.Txns.Run(t, func(tx *txn.Txn) error {
					tx.AcquireLock(l, lock.Exclusive)
					// A short, legitimate hold (work done under the lock).
					deadline := k.Clock.Now() + twWorkHold
					for k.Clock.Now() < deadline {
						t.Charge(time.Millisecond)
					}
					return nil
				})
				var ae *txn.AbortedError
				if errors.As(err, &ae) {
					p.WorkerAborts++
				} else if err == nil {
					p.WorkerOps++
				}
			}
		})
	}
	k.SpawnProcess("hog", 99, func(proc *kernel.Process) {
		t := proc.Thread
		for !stop {
			err := k.Txns.Run(t, func(tx *txn.Txn) error {
				tx.AcquireLock(l, lock.Exclusive)
				deadline := k.Clock.Now() + twHogHold
				for k.Clock.Now() < deadline {
					t.Charge(time.Millisecond)
				}
				return nil
			})
			var ae *txn.AbortedError
			if errors.As(err, &ae) {
				p.HogAborts++
			} else if err == nil {
				p.HogCompleted++
			}
			t.Sleep(20 * time.Millisecond) // back off before re-offending
		}
	})
	if err := k.Run(); err != nil {
		return p, err
	}
	return p, nil
}

// FormatTimeoutSweep renders the sweep.
func FormatTimeoutSweep(pts []TimeoutPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Lock time-out tuning (s4.5): 15 ms legitimate holds vs a 300 ms hog\n")
	fmt.Fprintf(&b, "%12s %12s %14s %12s %14s\n", "timeout(ms)", "worker ops", "worker aborts", "hog aborts", "hog completed")
	for _, p := range pts {
		fmt.Fprintf(&b, "%12d %12d %14d %12d %14d\n", p.TimeoutMS, p.WorkerOps, p.WorkerAborts, p.HogAborts, p.HogCompleted)
	}
	return b.String()
}
