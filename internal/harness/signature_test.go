package harness

import (
	"testing"
	"time"

	"vino/internal/crash"
	"vino/internal/fault"
)

// The normalized signature is the campaign's coverage key, so it must
// be stable across everything that is not the failure's identity:
// CPU count, absolute virtual-time offsets, and event counts.

// ncpuStablePlan builds a plan whose fingerprint should not depend on
// the simulated CPU count: cadences are kept above the starvation
// floor of the churn classes so the workload itself completes at any
// ncpu.
func ncpuStablePlan() *fault.Plan {
	p := &fault.Plan{Seed: 41}
	p.Rules = []fault.Rule{
		{Class: fault.Disk, EveryN: 5},
		{Class: fault.Disk, EveryN: 7, Write: true},
		{Class: fault.Latency, EveryN: 3, Factor: 6},
		{Class: fault.Pressure, At: 40 * time.Millisecond, Window: 30 * time.Millisecond, Factor: 24},
		{Class: fault.Graft, EveryN: 4, Graft: fault.GraftKeys[0]},
		{Class: fault.Lock, EveryN: 5, Graft: fault.GraftKeys[2]},
	}
	p.Rules = append(p.Rules, fault.NewCrashRules(41, 2)...)
	return p
}

func TestNormalizedSignatureStableAcrossNCPU(t *testing.T) {
	plan := ncpuStablePlan()
	var sigs []string
	for _, ncpu := range []int{1, 4} {
		rep, err := RunChaos(ChaosConfig{
			Plan: plan, Iterations: 16, NCPU: ncpu, Extended: true, Crash: true,
		})
		if err != nil {
			t.Fatalf("ncpu=%d: %v", ncpu, err)
		}
		if !rep.Survived() {
			t.Fatalf("ncpu=%d: run did not survive: %v", ncpu, rep.Violations)
		}
		sigs = append(sigs, NormalizedSignature(rep))
	}
	if sigs[0] != sigs[1] {
		t.Errorf("same plan fingerprints differently across CPU counts:\n ncpu=1 %s\n ncpu=4 %s", sigs[0], sigs[1])
	}
}

// Go's duration rendering changes shape with magnitude (998.5ms vs
// 1.0005s), so digit folding alone is not enough: the whole duration
// token must collapse, or one failure at two offsets becomes two
// coverage keys.
func TestNormalizeShapeFoldsDurations(t *testing.T) {
	a := NormalizeShape("lock watchdog: held 998.5ms at t=59.9715s")
	b := NormalizeShape("lock watchdog: held 1.0005s at t=1m2.75s")
	if a != b {
		t.Errorf("duration magnitudes split the shape:\n %q\n %q", a, b)
	}
	if want := "lock watchdog: held <t> at t=<t>"; a != want {
		t.Errorf("NormalizeShape = %q, want %q", a, want)
	}
	if got := NormalizeShape("undo log replayed 37 of 37 records"); got != "undo log replayed # of # records" {
		t.Errorf("digit folding broke: %q", got)
	}
}

// Verdict precedence and footprint rendering, on hand-built reports.
func TestNormalizedSignatureVerdicts(t *testing.T) {
	cases := []struct {
		name string
		rep  *ChaosReport
		want string
	}{
		{"nil report", nil, "error no-report"},
		{"clean survivor", &ChaosReport{FollowupOK: true},
			"ok sites=- panics=-"},
		{"survivor with footprint", &ChaosReport{
			FollowupOK:   true,
			CrashedSites: map[crash.Site]int64{crash.SiteCommit: 3, crash.SiteDispatch: 1},
			PanicsByClass: map[crash.Class]int64{
				crash.CommitCorruption: 3, crash.UndoEscape: 1,
			},
		}, "ok sites=dispatch,commit panics=undo-escape,commit-corruption"},
		{"fatal beats violation", &ChaosReport{
			FatalPanic: "undo-escape@undo",
			Violations: []string{"ledger mismatch"},
		}, "fatal undo-escape@undo sites=- panics=-"},
		{"violation beats follow-up", &ChaosReport{
			Violations: []string{"ledger mismatch at t=1.5s after 12 commits"},
		}, "violated ledger mismatch at t=<t> after # commits sites=- panics=-"},
		{"follow-up failure", &ChaosReport{FollowupOK: false},
			"follow-up-failed sites=- panics=-"},
	}
	for _, c := range cases {
		if got := NormalizedSignature(c.rep); got != c.want {
			t.Errorf("%s:\n got  %s\n want %s", c.name, got, c.want)
		}
	}
}

// Counts are presence-folded: 1 panic and 100 panics at the same site
// fingerprint identically.
func TestNormalizedSignatureFoldsCounts(t *testing.T) {
	one := &ChaosReport{FollowupOK: true,
		CrashedSites:  map[crash.Site]int64{crash.SiteLock: 1},
		PanicsByClass: map[crash.Class]int64{crash.LockInvariant: 1}}
	many := &ChaosReport{FollowupOK: true,
		CrashedSites:  map[crash.Site]int64{crash.SiteLock: 100},
		PanicsByClass: map[crash.Class]int64{crash.LockInvariant: 100}}
	if a, b := NormalizedSignature(one), NormalizedSignature(many); a != b {
		t.Errorf("counts leak into the fingerprint: %q vs %q", a, b)
	}
}

// The failure-only Signature keeps its historical contract: empty for
// survivors, so the minimizer's "baseline must fail" check still holds.
func TestSignatureEmptyForSurvivors(t *testing.T) {
	if got := Signature(&ChaosReport{FollowupOK: true}); got != "" {
		t.Errorf("surviving report has non-empty failure signature %q", got)
	}
	if got := Signature(&ChaosReport{FatalPanic: "sfi-breach@dispatch"}); got != "kernel-panic sfi-breach@dispatch" {
		t.Errorf("fatal signature = %q", got)
	}
}
