package harness

import (
	"fmt"
	"time"

	"vino/internal/fs"
	"vino/internal/graft"
	"vino/internal/sched"
)

// Paper values for Table 3 (Read-ahead Graft Overhead), elapsed us.
var paperTable3 = map[string]float64{
	PathBase: 0.5, PathVINO: 1.5, PathNull: 67, PathUnsafe: 104, PathSafe: 107, PathAbort: 108,
}

// raGraftBody is the §4.1.2 read-ahead graft: read the application's
// announced next extent from the shared buffer (graft heap: offset 0 =
// next offset, 8 = next size, 16 = fd) and pass it to fs.prefetch. The
// ret at the end is main's single exit.
const raGraftBody = `
.name compute-ra
.import fs.prefetch
.func main
main:
    ld r3, [r10+0]
    ld r4, [r10+8]
    jz r4, nothing
    ld r1, [r10+16]
    mov r2, r3
    mov r3, r4
    callk fs.prefetch
    ret
nothing:
    movi r0, 0
    ret
`

// raGraftAbortBody is the same graft trapping after its work.
const raGraftAbortBody = `
.name compute-ra-abort
.import fs.prefetch
.func main
main:
    ld r3, [r10+0]
    ld r4, [r10+8]
    ld r1, [r10+16]
    mov r2, r3
    mov r3, r4
    callk fs.prefetch
` + trapTail

// ReadAheadTable reproduces Table 3: the cost decomposition of the
// read-ahead graft, measured per compute-ra decision (3000 random 4 KB
// reads of a 12 MB file is the enclosing workload; the table isolates
// the per-read policy cost).
func ReadAheadTable() (*Table, error) {
	tbl := &Table{Number: 3, Title: "Read-ahead Graft Overhead (us per compute-ra decision)"}
	type variant struct {
		path  string
		graft string // "" = no graft
		safe  bool
	}
	variants := []variant{
		{PathBase, "", false},
		{PathVINO, "", false},
		{PathNull, nullGraftSrc, true},
		{PathUnsafe, raGraftBody, false},
		{PathSafe, raGraftBody, true},
		{PathAbort, raGraftAbortBody, true},
	}
	for _, v := range variants {
		us, err := measureReadAheadPath(v.path, v.graft, v.safe)
		if err != nil {
			return nil, fmt.Errorf("table 3 %s: %w", v.path, err)
		}
		tbl.Rows = append(tbl.Rows, Row{Path: v.path, ElapsedUS: us, PaperUS: paperTable3[v.path]})
	}
	tbl.Notes = append(tbl.Notes,
		"workload: announce-next-read pattern over a 12 MB file, per paper §4.1.3",
		"lock overhead appears between Null and Unsafe: fs.prefetch takes the shared-buffer lock under the transaction")
	return tbl, nil
}

func measureReadAheadPath(path, graftSrc string, safe bool) (float64, error) {
	e := newEnv()
	fsys := fs.New(e.K, fs.NewDisk(fs.FujitsuM2694ESA()), 4096)
	fsys.Create("db", 12<<20, graft.Root, false)
	iters := defaultIters
	total, err := e.measureOn(func(t *sched.Thread) time.Duration {
		of, err := fsys.Open(t, "db")
		if err != nil {
			panic(err)
		}
		point := of.RAPoint()
		var g *graft.Installed
		if graftSrc != "" {
			img, err := e.buildVariant(graftSrc, safe)
			if err != nil {
				panic(err)
			}
			point.KeepOnAbort = true
			g, err = e.install(t, point.Name, img, graft.InstallOptions{})
			if err != nil {
				panic(err)
			}
		}
		// The application announces a different next extent each
		// iteration (host-side pokes cost no virtual time).
		blocks := of.File().Blocks()
		setup := func(i int) {
			of.ResetPrefetchQueue()
			if g != nil {
				heap := g.VM().Heap()
				poke64(heap, 0, (int64(i*37)%blocks)*fs.BlockSize)
				poke64(heap, 8, fs.BlockSize)
				poke64(heap, 16, int64(of.FD()))
			}
		}
		off, size := int64(0), int64(fs.BlockSize)
		switch path {
		case PathBase:
			return timed(e.K, iters, setup, func() {
				of.ComputeRABase(t, off, size)
			})
		default:
			return timed(e.K, iters, setup, func() {
				_, _ = point.Invoke(t, off, size)
			})
		}
	})
	if err != nil {
		return 0, err
	}
	return usPerOp(total, iters), nil
}

func poke64(heap []byte, off int, v int64) {
	for i := 0; i < 8; i++ {
		heap[off+i] = byte(uint64(v) >> (8 * i))
	}
}
