package harness

import (
	"testing"

	"vino/internal/crash"
	"vino/internal/kernel"
)

// TestChaosRedTeamPhasePlainAbort: with crash containment off, the
// red-team phase runs the corpus clean and the in-kernel probe's
// violations are absorbed as ordinary aborts.
func TestChaosRedTeamPhasePlainAbort(t *testing.T) {
	r, err := RunChaos(ChaosConfig{Seed: 11, Iterations: 16, RedTeam: true})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Survived() {
		t.Fatalf("did not survive: %v", r.Violations)
	}
	if r.RedTeam == nil {
		t.Fatal("report carries no red-team result")
	}
	if !r.RedTeam.Clean() {
		t.Fatalf("corpus not clean:\n%s", r.RedTeam.Summary())
	}
	if r.Panics != 0 {
		t.Errorf("panics = %d without crash containment, want 0", r.Panics)
	}
}

// TestChaosRedTeamPhaseContained: with the crash phase armed and
// graft-scoped recovery, the probe's violations escalate to contained
// sfi-violation panics and the run still survives.
func TestChaosRedTeamPhaseContained(t *testing.T) {
	r, err := RunChaos(ChaosConfig{
		Seed:         11,
		Iterations:   16,
		Crash:        true,
		RecoverScope: kernel.RecoverScopeGraft,
		RedTeam:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Survived() {
		t.Fatalf("did not survive: %v", r.Violations)
	}
	if r.RedTeam == nil || !r.RedTeam.Clean() {
		t.Fatalf("red-team result missing or dirty: %+v", r.RedTeam)
	}
	if n := r.PanicsByClass[crash.SFIViolation]; n == 0 {
		t.Errorf("no sfi-violation panics contained (by class: %v)", r.PanicsByClass)
	}
}

// TestChaosRedTeamOffKeepsReportShape: the phase is strictly opt-in —
// without the flag the report carries no red-team result (golden dumps
// of existing configurations stay byte-identical).
func TestChaosRedTeamOffKeepsReportShape(t *testing.T) {
	r, err := RunChaos(ChaosConfig{Seed: 11, Iterations: 16})
	if err != nil {
		t.Fatal(err)
	}
	if r.RedTeam != nil {
		t.Error("red-team result present without the flag")
	}
}
