package harness

import (
	"fmt"
	"strings"
	"time"

	"vino/internal/graft"
	"vino/internal/kernel"
	"vino/internal/lock"
	"vino/internal/sched"
	"vino/internal/sfi"
)

// LockAblationResult compares the hard-coded get_lock of the paper's
// Figure 4 against the policy-encapsulated Figure 5 version, measuring
// the cost of routing every decision point through an interface (the §6
// lesson: "function calls typically cost approximately 35 cycles; these
// add up remarkably quickly").
type LockAblationResult struct {
	FastPathUS   float64 // Figure 4: decisions inline
	PolicyPathUS float64 // Figure 5: decisions behind Policy calls
	PolicyCalls  int64
}

// String renders the ablation.
func (r *LockAblationResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figures 4/5 ablation: get_lock policy encapsulation\n")
	fmt.Fprintf(&b, "  hard-coded (Fig 4):    %8.3f us per acquire/release\n", r.FastPathUS)
	fmt.Fprintf(&b, "  encapsulated (Fig 5):  %8.3f us per acquire/release\n", r.PolicyPathUS)
	fmt.Fprintf(&b, "  indirection penalty:   %8.3f us (%d policy calls; 35 cycles each at 120 MHz = 0.292 us)\n",
		r.PolicyPathUS-r.FastPathUS, r.PolicyCalls)
	return b.String()
}

// LockManagerAblation measures uncontended acquire/release pairs through
// both lock-manager implementations.
func LockManagerAblation(iters int) (*LockAblationResult, error) {
	if iters <= 0 {
		iters = 1000
	}
	measure := func(policy lock.Policy) (float64, int64, error) {
		k := kernel.New(kernel.Config{Timeslice: time.Hour})
		cls := &lock.Class{Name: "ablate", Timeout: time.Second, Policy: policy}
		l := k.Locks.NewLock("obj", cls)
		var per float64
		k.SpawnProcess("ablate", graft.Root, func(p *kernel.Process) {
			t := p.Thread
			total := timed(k, iters, nil, func() {
				l.Acquire(t, lock.Exclusive)
				_ = l.Release(t)
			})
			per = usPerOp(total, iters)
		})
		if err := k.Run(); err != nil {
			return 0, 0, err
		}
		return per, k.Locks.Stats().PolicyCalls, nil
	}
	fast, _, err := measure(nil)
	if err != nil {
		return nil, err
	}
	slow, calls, err := measure(lock.ReaderPriority{})
	if err != nil {
		return nil, err
	}
	return &LockAblationResult{FastPathUS: fast, PolicyPathUS: slow, PolicyCalls: calls}, nil
}

// DensityPoint is one point of the SFI overhead-vs-density sweep.
type DensityPoint struct {
	MemOpsPerIteration int
	UnsafeUS           float64
	SafeUS             float64
	Ratio              float64
}

// SFIDensitySweep quantifies the paper's claim that SFI overhead is
// proportional to the graft's load/store density ("the higher the ratio
// of memory accesses to other instructions, the higher the SFI
// overhead", §4.4): a family of grafts doing fixed ALU work with 0..8
// memory operations per loop iteration.
func SFIDensitySweep() ([]DensityPoint, error) {
	var out []DensityPoint
	for mem := 0; mem <= 8; mem += 2 {
		var body strings.Builder
		body.WriteString(".name density\n.func main\nmain:\n    movi r4, 256\nloop:\n")
		// Fixed ALU ballast.
		for i := 0; i < 4; i++ {
			body.WriteString("    add r5, r4, r4\n")
		}
		for i := 0; i < mem; i++ {
			fmt.Fprintf(&body, "    addi r6, r10, %d\n    st [r6+0], r5\n", 64+8*i)
		}
		body.WriteString("    addi r4, r4, -1\n    jnz r4, loop\n    ret\n")
		src := body.String()

		run := func(safe bool) (float64, error) {
			img, err := buildDensity(src, safe)
			if err != nil {
				return 0, err
			}
			vm, err := sfi.NewVM(img, sfi.Config{})
			if err != nil {
				return 0, err
			}
			if _, err := vm.Call("main"); err != nil {
				return 0, err
			}
			// Convert cycles at 120 MHz to us.
			return float64(vm.TotalCycles()) / 120.0, nil
		}
		u, err := run(false)
		if err != nil {
			return nil, err
		}
		s, err := run(true)
		if err != nil {
			return nil, err
		}
		out = append(out, DensityPoint{MemOpsPerIteration: mem, UnsafeUS: u, SafeUS: s, Ratio: s / u})
	}
	return out, nil
}

func buildDensity(src string, safe bool) (*sfi.Image, error) {
	if safe {
		img, _, err := sfi.BuildSafe(src, nil)
		return img, err
	}
	return sfi.BuildUnsafe(src)
}

// OptPoint is one row of the MiSFIT-optimizer ablation.
type OptPoint struct {
	Graft      string
	UnsafeUS   float64
	NaiveUS    float64 // mask every access (the paper's unoptimized tool)
	OptUS      float64 // static discharge enabled
	Discharged int     // accesses proven safe at rewrite time
}

// MisfitOptimizerAblation quantifies the extension the paper asks for
// in §4.4 ("this overhead is not surprising, given the lack of
// optimization in our software fault isolation tool"): the
// static-discharge optimizer removes the entire SFI overhead from
// control-light grafts whose accesses are constant offsets from the
// segment base (the read-ahead graft), while pointer-chasing grafts
// (encryption's moving cursors) keep their masks.
func MisfitOptimizerAblation() ([]OptPoint, error) {
	cases := []struct {
		name string
		src  string
	}{
		// The read-ahead graft's memory traffic, without the kernel
		// call (isolating SFI cost).
		{"read-ahead-style", `
.name ra-style
.func main
main:
    movi r9, 200
loop:
    ld r3, [r10+0]
    ld r4, [r10+8]
    ld r1, [r10+16]
    st [r10+24], r3
    addi r9, r9, -1
    jnz r9, loop
    ret
`},
		{"encryption", encryptGraftBody},
	}
	var out []OptPoint
	for _, c := range cases {
		us := func(build func() (*sfi.Image, sfi.RewriteStats, error)) (float64, int, error) {
			img, stats, err := build()
			if err != nil {
				return 0, 0, err
			}
			vm, err := sfi.NewVM(img, sfi.Config{})
			if err != nil {
				return 0, 0, err
			}
			if _, err := vm.Call("main"); err != nil {
				return 0, 0, err
			}
			return float64(vm.TotalCycles()) / 120.0, stats.StaticallySafe, nil
		}
		unsafeUS, _, err := us(func() (*sfi.Image, sfi.RewriteStats, error) {
			img, e := sfi.BuildUnsafe(c.src)
			return img, sfi.RewriteStats{}, e
		})
		if err != nil {
			return nil, err
		}
		naiveUS, _, err := us(func() (*sfi.Image, sfi.RewriteStats, error) {
			return sfi.BuildSafe(c.src, nil)
		})
		if err != nil {
			return nil, err
		}
		optUS, discharged, err := us(func() (*sfi.Image, sfi.RewriteStats, error) {
			return sfi.BuildSafeOptimized(c.src, nil)
		})
		if err != nil {
			return nil, err
		}
		out = append(out, OptPoint{
			Graft: c.name, UnsafeUS: unsafeUS, NaiveUS: naiveUS, OptUS: optUS, Discharged: discharged,
		})
	}
	return out, nil
}

// FormatOptAblation renders the optimizer ablation.
func FormatOptAblation(pts []OptPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "MiSFIT optimizer ablation: static discharge of sandbox checks\n")
	fmt.Fprintf(&b, "%-18s %12s %12s %12s %12s\n", "graft", "unsafe (us)", "naive (us)", "optimized", "discharged")
	for _, p := range pts {
		fmt.Fprintf(&b, "%-18s %12.1f %12.1f %12.1f %12d\n", p.Graft, p.UnsafeUS, p.NaiveUS, p.OptUS, p.Discharged)
	}
	return b.String()
}

// TxnAblationResult is the thesis counterfactual: the same failing graft
// with and without transaction protection.
type TxnAblationResult struct {
	// ProtectedCorrupted: kernel state damaged despite the transaction
	// (must be false).
	ProtectedCorrupted bool
	// UnprotectedCorrupted: kernel state damaged without it (will be
	// true — this is the disaster the paper's title promises to survive).
	UnprotectedCorrupted bool
	// ProtectedLockFreed / UnprotectedLockFreed: whether the kernel lock
	// the graft took was released after the failure.
	ProtectedLockFreed   bool
	UnprotectedLockFreed bool
}

// String renders the ablation.
func (r *TxnAblationResult) String() string {
	row := func(label string, corrupted, freed bool) string {
		state := "intact"
		if corrupted {
			state = "CORRUPTED"
		}
		locks := "released"
		if !freed {
			locks = "STILL HELD"
		}
		return fmt.Sprintf("  %-22s kernel state %-10s  lock %s\n", label, state, locks)
	}
	return "Transaction ablation: a graft mutates kernel state, takes a lock, then traps\n" +
		row("with transactions:", r.ProtectedCorrupted, r.ProtectedLockFreed) +
		row("without (ablated):", r.UnprotectedCorrupted, r.UnprotectedLockFreed)
}

// TxnProtectionAblation runs a graft that (1) mutates kernel state
// through an undo-logging accessor, (2) acquires a kernel lock, and (3)
// traps — once under the transaction wrapper and once with the wrapper
// ablated away (Point.NoTxn). The difference is the paper's entire
// second mechanism.
func TxnProtectionAblation() (*TxnAblationResult, error) {
	run := func(noTxn bool) (corrupted, lockFreed bool, err error) {
		e := newEnv()
		kernelState := 0
		l := e.K.Locks.NewLock("kernel-resource", &lock.Class{Name: "res", Timeout: time.Second})
		e.K.Grafts.RegisterCallable("ablate.mutate_and_lock", func(ctx *graft.Ctx, args [5]int64) (int64, error) {
			old := kernelState
			kernelState = int(args[0])
			if ctx.Txn != nil {
				ctx.Txn.PushUndo("mutate", func() { kernelState = old })
				ctx.Txn.AcquireLock(l, lock.Exclusive)
			} else {
				l.Acquire(ctx.Thread, lock.Exclusive)
			}
			return 0, nil
		})
		point := e.K.Grafts.RegisterPoint(&graft.Point{
			Name:      "obj.fn",
			Kind:      graft.Function,
			Privilege: graft.Local,
			Default:   func(t *sched.Thread, args []int64) (int64, error) { return -1, nil },
			NoTxn:     noTxn,
			Watchdog:  time.Second,
		})
		var holderFreed bool
		_, err = e.measureOn(func(t *sched.Thread) time.Duration {
			img, berr := e.buildVariant(`
.name wrecker
.import ablate.mutate_and_lock
.func main
main:
    movi r1, 666
    callk ablate.mutate_and_lock
    movi r9, 0
    div r0, r0, r9
    ret
`, true)
			if berr != nil {
				panic(berr)
			}
			if _, ierr := e.install(t, point.Name, img, graft.InstallOptions{}); ierr != nil {
				panic(ierr)
			}
			_, _ = point.Invoke(t, 0)
			holderFreed = l.HolderCount() == 0
			return 0
		})
		if err != nil {
			return false, false, err
		}
		return kernelState == 666, holderFreed, nil
	}
	var out TxnAblationResult
	var err error
	out.ProtectedCorrupted, out.ProtectedLockFreed, err = run(false)
	if err != nil {
		return nil, err
	}
	out.UnprotectedCorrupted, out.UnprotectedLockFreed, err = run(true)
	if err != nil {
		return nil, err
	}
	return &out, nil
}
