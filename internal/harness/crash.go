package harness

import (
	"errors"
	"fmt"

	"vino/internal/crash"
	"vino/internal/fault"
	vfs "vino/internal/fs"
	"vino/internal/graft"
	"vino/internal/kernel"
	"vino/internal/lock"
	"vino/internal/netstk"
	"vino/internal/resource"
	"vino/internal/sched"
	"vino/internal/vmm"
)

// phaseCrash drives the kernel-panic containment machinery: the
// injector's crash gate opens, and every round runs a well-behaved
// worker (file I/O, a committing allocate/free graft, direct lock
// traffic — the dispatch, commit, resource and lock crash sites) next
// to a misbehaving graft whose abort exercises the abort and undo
// sites. Injected panics strike per the plan's Panic rules — including
// inside commit, abort and undo processing — and each one must be
// contained: the kernel restores the last checkpoint, the run resumes,
// and the post-recovery audit proves no lock leaked, the transaction
// books balance, the file system and frame tables are consistent, and
// surviving graft accounts are drained.
//
// Under NoRecover the first panic is fatal instead: the phase records
// its "class@site" signature and stops, which is what the plan
// minimizer replays against.
func (c *chaosRun) phaseCrash() error {
	k := c.k
	fsys := c.fsys
	fsys.Create("crash-db", 1<<20, graft.Root, false)

	// Eviction and accept traffic for the pager and accept crash sites:
	// a small frame pool the per-round working sets overflow, and a
	// listener the rounds connect to. Created before the baseline
	// checkpoint so both subsystems are in the snapshot set from the
	// phase's first image.
	c.crashVM = vmm.New(k, 24)
	c.vm = c.crashVM
	if c.net == nil {
		c.net = netstk.New(k)
	}
	c.crashNet = c.net
	c.crashNet.Listen("tcp", 9)

	// Baseline image: the first panic needs a restore point even if it
	// strikes before the cadence first elapses.
	k.Checkpoint()
	k.Faults.EnableCrash()
	defer k.Faults.DisableCrash()

	rounds := c.cfg.Iterations
	for i := 1; i <= rounds; i++ {
		// The bad graft joins every other round, spawned first so its
		// abort and undo processing is reached before the worker's
		// hotter commit-path counters can end the round. Skipping it on
		// odd rounds keeps some rounds clean, so checkpoints advance and
		// recoveries restore recent images instead of the phase baseline.
		if i%2 == 0 {
			c.spawnCrashBad(i)
		}
		c.spawnCrashWork(i)
		// Commits on the books before the round: under a whole-kernel
		// restore the counter rewinds with the checkpoint, but a
		// domain-scoped recovery leaves non-offender work live — commits
		// still standing after a recovery round are survivors.
		commitsBefore := k.Txns.Stats().Commits
		if c.cfg.NoRecover {
			done, err := c.runToFatal()
			if done || err != nil {
				return err
			}
		} else {
			recovered, err := k.RunRecovered()
			if err != nil {
				return err
			}
			if recovered > 0 {
				if c.cfg.RecoverScope == kernel.RecoverScopeGraft && k.Txns.Stats().Commits > commitsBefore {
					c.report.NonOffenderSurvivals++
				}
				c.auditRecovery(fmt.Sprintf("crash round %d", i))
			} else {
				// A clean round is a quiescent point with fresh state:
				// checkpoint it so the next panic rewinds one round at
				// most, not back to the phase baseline. (The cadence
				// alone rarely elapses here — panicking rounds rewind
				// virtual time below it.)
				k.Checkpoint()
			}
		}
		k.CheckpointIfDue()
	}
	c.auditRecovery("crash phase end")
	return nil
}

// runToFatal runs one round with recovery disabled. The first injected
// panic ends the whole run: its signature is recorded, the scheduler is
// drained, and the phase reports done.
func (c *chaosRun) runToFatal() (done bool, err error) {
	k := c.k
	runErr := k.Run()
	if runErr == nil {
		return false, nil
	}
	var cp *crash.Panic
	switch {
	case errors.As(runErr, &cp):
	case errors.Is(runErr, sched.ErrDeadlock):
		cp = &crash.Panic{Class: crash.Stall, Site: crash.SiteDispatch, Reason: "event loop stalled"}
	default:
		return false, runErr
	}
	c.report.FatalPanic = fmt.Sprintf("%s@%s", cp.Class, cp.Site)
	k.Faults.DisableCrash()
	k.Sched.TakePanic()
	k.Shutdown()
	return true, nil
}

// spawnCrashWork spawns the round's well-behaved worker: three
// invocations of the committing allocate/free graft (dispatch, commit
// and kheap-free resource sites), a read/write through the crash-db
// file (durable state for the post-recovery fsck), and one direct
// hoard-lock acquire/release (the lock-manager release site).
func (c *chaosRun) spawnCrashWork(i int) {
	fsys := c.fsys
	k := c.k
	c.k.SpawnProcess(fmt.Sprintf("crash-work/%d", i), graft.Root, func(p *kernel.Process) {
		t := p.Thread
		// File and lock traffic first: the graft invocations below are
		// where most rounds end, and the durable state the fsck audits
		// must keep changing between checkpoints.
		of, err := fsys.Open(t, "crash-db")
		if err != nil {
			c.violate("crash work %d: open: %v", i, err)
			return
		}
		buf := make([]byte, vfs.BlockSize)
		off := int64(i%16) * vfs.BlockSize
		if _, err := of.ReadAt(t, buf, off); err != nil && !errors.Is(err, fault.ErrInjected) {
			c.violate("crash work %d: read: %v", i, err)
		}
		if _, err := of.WriteAt(t, buf[:256], off); err != nil && !errors.Is(err, fault.ErrInjected) {
			c.violate("crash work %d: write: %v", i, err)
		}
		of.Close()

		hoard := k.FaultHoardLock()
		hoard.Acquire(t, lock.Exclusive)
		_ = hoard.Release(t)

		c.nCrash++
		ptName := fmt.Sprintf("crash/%d.fn", c.nCrash)
		pt := c.chaosEchoPoint(ptName)
		g, err := p.BuildAndInstall(ptName, fault.GraftSource(fault.GraftAllocFree), graft.InstallOptions{
			Transfer: map[resource.Kind]int64{resource.KernelHeap: 8 << 10},
		})
		if err != nil {
			c.violate("crash work %d: install %s: %v", i, fault.GraftAllocFree, err)
			return
		}
		c.crashGrafts = append(c.crashGrafts, g)
		pt.Invoke(t) // commits normally; aborts fall back to the default

		// The pager and accept crash sites, driven on the rounds without
		// a misbehaving graft and after the transactional work above, so
		// the deep transaction sites keep firing too. Eviction pressure:
		// a working set wider than the crash pool, torn down so a clean
		// round never strands the pool's frames.
		if i%2 == 1 {
			// Accept traffic: no handler on the port, so the accept site
			// strikes between connection registration and handler
			// dispatch — the window the restore must reconcile.
			if _, err := c.crashNet.Connect(k.Sched, "tcp", 9, []byte("syn")); err != nil {
				c.violate("crash work %d: connect: %v", i, err)
			}
			vas := c.crashVM.NewVAS(t)
			for j := int64(0); j < 16; j++ {
				vpn := (int64(i)*5 + j) % 28
				if j%4 == 0 {
					vas.TouchWrite(t, vpn)
				} else {
					vas.Touch(t, vpn)
				}
			}
			vas.Destroy()
		}
	})
}

// spawnCrashBad spawns the round's misbehaving graft: a resource
// blowout whose denial aborts and unwinds its allocations (abort and
// undo crash sites), or — every third round — the poisoned-undo graft,
// so crashes also strike while an undo handler is itself panicking.
func (c *chaosRun) spawnCrashBad(i int) {
	key := fault.GraftBlowout
	if i%6 == 0 {
		key = fault.GraftAbortUndo
	}
	c.k.SpawnProcess(fmt.Sprintf("crash-bad/%d", i), graft.Root, func(p *kernel.Process) {
		c.nCrash++
		ptName := fmt.Sprintf("crash/%d.fn", c.nCrash)
		pt := c.chaosEchoPoint(ptName)
		opts := graft.InstallOptions{}
		if key == fault.GraftBlowout {
			opts.Transfer = map[resource.Kind]int64{resource.KernelHeap: 16 << 10}
		}
		g, err := p.BuildAndInstall(ptName, fault.GraftSource(key), opts)
		if err != nil {
			if errors.Is(err, graft.ErrExpelled) {
				return // the supervisor banned the image: its policy, not a bug
			}
			c.violate("crash bad %d: install %s: %v", i, key, err)
			return
		}
		c.crashGrafts = append(c.crashGrafts, g)
		pt.Invoke(p.Thread) // aborts; a crash may strike mid-abort or mid-undo
	})
}

// auditRecovery checks the restored kernel at a quiescent point after a
// recovery (and once at phase end): no lock outlives the rewind, the
// transaction books balance at the restored frontier, the file system
// and frame tables pass their consistency checks, and every surviving
// crash-phase graft account is drained. Grafts installed after the
// restored checkpoint were rolled out of existence by the rewind —
// their accounts die with them, so they leave the tracked set.
func (c *chaosRun) auditRecovery(stage string) {
	kept := c.crashGrafts[:0]
	for _, g := range c.crashGrafts {
		if !g.Removed() {
			kept = append(kept, g)
		}
	}
	c.crashGrafts = kept

	if out := c.k.Locks.Outstanding(); len(out) > 0 {
		c.violate("%s: leaked locks %v", stage, out)
	}
	st := c.k.Txns.Stats()
	if st.Begins != st.Commits+st.Aborts {
		c.violate("%s: unbalanced transactions: %d begun, %d committed, %d aborted",
			stage, st.Begins, st.Commits, st.Aborts)
	}
	if c.fsys != nil {
		for _, bad := range c.fsys.Fsck() {
			c.violate("%s: fsck: %s", stage, bad)
		}
	}
	if c.vm != nil {
		for _, bad := range c.vm.Check() {
			c.violate("%s: vmm: %s", stage, bad)
		}
	}
	for _, g := range c.crashGrafts {
		for _, kind := range g.Account.Kinds() {
			if used := g.Account.Used(kind); used != 0 {
				c.violate("%s: graft account %s not drained: %s=%d", stage, g.GuardKey(), kind, used)
			}
		}
	}
}
