package harness

import "testing"

// TestReadAheadWinCrossover checks the §4.1.1 claim: with little compute
// between reads the graft loses (its overhead is pure cost); with ample
// compute the prefetch overlap wins. The crossover sits near the safe
// path cost.
func TestReadAheadWinCrossover(t *testing.T) {
	pts, err := ReadAheadWinSweep([]float64{25, 400})
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + FormatRAWinSweep(pts))
	low, high := pts[0], pts[1]
	if low.GainUS > 30 {
		t.Errorf("at %0.f us compute the graft should not win big: gain %.1f", low.ComputeUS, low.GainUS)
	}
	if high.GainUS < 100 {
		t.Errorf("at %0.f us compute the graft should win clearly: gain %.1f", high.ComputeUS, high.GainUS)
	}
	if high.GainUS <= low.GainUS {
		t.Errorf("gain not increasing with compute: %.1f -> %.1f", low.GainUS, high.GainUS)
	}
}

// TestEvictionCostBenefit checks the §4.2.2 arithmetic: tens of
// disagreements per avoided fault, and agreement cheaper than overrule.
func TestEvictionCostBenefit(t *testing.T) {
	cb, err := BuildEvictionCostBenefit()
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + cb.String())
	if cb.BreakEven < 10 || cb.BreakEven > 200 {
		t.Errorf("break-even = %.0f disagreements/I/O, paper has 57", cb.BreakEven)
	}
	if cb.AgreeCostUS >= cb.OverruleCostUS+float64(39) {
		t.Errorf("agreement path (%.0f us) should be cheaper than overrule total (%.0f + base)", cb.AgreeCostUS, cb.OverruleCostUS)
	}
	if cb.AgreeCostUS < 100 {
		t.Errorf("agreement path %.0f us implausibly cheap (still pays txn + victim check)", cb.AgreeCostUS)
	}
}
