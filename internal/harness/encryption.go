package harness

import (
	"fmt"
	"time"

	"vino/internal/graft"
	"vino/internal/kernel"
	"vino/internal/sched"
)

// Paper values for Table 6 (Encryption Graft Overhead), elapsed us.
var paperTable6 = map[string]float64{
	PathBase: 105, PathVINO: 105, PathNull: 193, PathUnsafe: 359, PathSafe: 546, PathAbort: 550,
}

// bcopyCycles is the modelled in-kernel copy of an 8 KB buffer: the
// paper notes bcopy "is implemented using a hardware copy instruction
// that has a cost of only one cycle per word copied" — 1024 words plus
// call/setup overhead. (The paper's measured 105 us additionally
// includes L1 miss time, which it reports separately; we model the
// idealised copy and let the instruction cost model provide the rest.)
const bcopyCycles = 1100

// encryptGraftBody is the §4.4 stream graft: XOR-encrypt 8 KB from the
// input buffer (heap offset 0) into the output buffer (offset 8192). It
// is almost entirely loads and stores — the worst case for SFI.
const encryptGraftBody = `
.name encrypt
.func main
main:
    mov r2, r10
    addi r3, r10, 8192
    movi r4, 1024
    movi r5, 0x5A5A5A5A
loop:
    ld r6, [r2+0]
    xor r6, r6, r5
    st [r3+0], r6
    addi r2, r2, 8
    addi r3, r3, 8
    addi r4, r4, -1
    jnz r4, loop
    movi r0, 0
    ret
`

// encryptGraftAbortBody encrypts, then traps.
const encryptGraftAbortBody = `
.name encrypt-abort
.func main
main:
    mov r2, r10
    addi r3, r10, 8192
    movi r4, 1024
    movi r5, 0x5A5A5A5A
loop:
    ld r6, [r2+0]
    xor r6, r6, r5
    st [r3+0], r6
    addi r2, r2, 8
    addi r3, r3, 8
    addi r4, r4, -1
    jnz r4, loop
` + trapTail

// EncryptionTable reproduces Table 6: the stream graft encrypting an
// 8 KB buffer on its way to user level. The base path is the in-kernel
// bcopy the graft replaces.
func EncryptionTable() (*Table, error) {
	tbl := &Table{Number: 6, Title: "Encryption Graft Overhead (us per 8 KB buffer)"}
	variants := []struct {
		path  string
		graft string
		safe  bool
	}{
		{PathBase, "", false},
		{PathVINO, "", false},
		{PathNull, nullGraftSrc, true},
		{PathUnsafe, encryptGraftBody, false},
		{PathSafe, encryptGraftBody, true},
		{PathAbort, encryptGraftAbortBody, true},
	}
	for _, v := range variants {
		us, err := measureEncryptionPath(v.path, v.graft, v.safe)
		if err != nil {
			return nil, fmt.Errorf("table 6 %s: %w", v.path, err)
		}
		tbl.Rows = append(tbl.Rows, Row{Path: v.path, ElapsedUS: us, PaperUS: paperTable6[v.path]})
	}
	tbl.Notes = append(tbl.Notes,
		"base models the 1-cycle-per-word hardware copy the paper describes; its measured 105 us includes cache effects our model reports within the graft paths instead",
		"safe/unsafe ratio is the headline SFI worst case: every word costs two sandboxed accesses")
	return tbl, nil
}

func measureEncryptionPath(path, graftSrc string, safe bool) (float64, error) {
	e := newEnv()
	bcopyCost := e.K.Clock.CycleDuration(bcopyCycles)
	// The stream filter point: its default is the plain kernel copy.
	point := e.K.Grafts.RegisterPoint(&graft.Point{
		Name:      "stream/0.filter",
		Kind:      graft.Function,
		Privilege: graft.Local,
		Default: func(t *sched.Thread, args []int64) (int64, error) {
			t.Charge(bcopyCost)
			return 0, nil
		},
		Watchdog: 100 * time.Millisecond,
	})
	point.KeepOnAbort = true
	iters := defaultIters
	total, err := e.measureOn(func(t *sched.Thread) time.Duration {
		var g *graft.Installed
		if graftSrc != "" {
			img, err := e.buildVariant(graftSrc, safe)
			if err != nil {
				panic(err)
			}
			var ierr error
			g, ierr = e.install(t, point.Name, img, graft.InstallOptions{})
			if ierr != nil {
				panic(ierr)
			}
			// Seed the 8 KB input buffer.
			heap := g.VM().Heap()
			for i := 0; i < 8192; i++ {
				heap[i] = byte(i * 7)
			}
		}
		switch path {
		case PathBase:
			// The copy with all graft support removed.
			return timed(e.K, iters, nil, func() {
				t.Charge(bcopyCost)
			})
		case PathNull:
			// The null graft is transaction-wrapped but the kernel still
			// performs the copy (the data must move regardless).
			return timed(e.K, iters, nil, func() {
				_, _ = point.Invoke(t, 8192)
				t.Charge(bcopyCost)
			})
		default:
			// VINO: ungrafted invoke runs the default (the copy).
			// Unsafe/safe/abort: the graft itself moves (and encrypts)
			// the data, replacing the copy.
			return timed(e.K, iters, nil, func() {
				_, _ = point.Invoke(t, 8192)
			})
		}
	})
	if err != nil {
		return 0, err
	}
	return usPerOp(total, iters), nil
}

// EncryptionCorrectness verifies (outside timing) that the safe and
// unsafe encryption grafts compute identical output — the SFI rewrite
// must preserve semantics. Used by tests and vinobench -check.
func EncryptionCorrectness() error {
	outputs := make([][]byte, 0, 2)
	for _, safe := range []bool{false, true} {
		e := newEnv()
		point := e.K.Grafts.RegisterPoint(&graft.Point{
			Name:      "stream/0.filter",
			Kind:      graft.Function,
			Privilege: graft.Local,
			Default:   func(t *sched.Thread, args []int64) (int64, error) { return 0, nil },
		})
		img, err := e.buildVariant(encryptGraftBody, safe)
		if err != nil {
			return err
		}
		var out []byte
		var fail error
		e.K.SpawnProcess("check", graft.Root, func(p *kernel.Process) {
			g, err := e.install(p.Thread, point.Name, img, graft.InstallOptions{})
			if err != nil {
				fail = err
				return
			}
			heap := g.VM().Heap()
			for i := 0; i < 8192; i++ {
				heap[i] = byte(i * 7)
			}
			if _, err := point.Invoke(p.Thread, 8192); err != nil {
				fail = err
				return
			}
			out = append([]byte(nil), heap[8192:16384]...)
		})
		if err := e.K.Run(); err != nil {
			return err
		}
		if fail != nil {
			return fail
		}
		// Spot-check the cipher actually transformed the data.
		if out[1] == byte(7) {
			return fmt.Errorf("harness: encryption graft did not transform byte 1")
		}
		outputs = append(outputs, out)
	}
	for i := range outputs[0] {
		if outputs[0][i] != outputs[1][i] {
			return fmt.Errorf("harness: safe/unsafe encryption outputs diverge at byte %d", i)
		}
	}
	return nil
}
