package harness

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"vino/internal/crash"
	"vino/internal/fault"
	vfs "vino/internal/fs"
	"vino/internal/graft"
	"vino/internal/guard"
	"vino/internal/kernel"
	"vino/internal/lock"
	"vino/internal/netstk"
	"vino/internal/redteam"
	"vino/internal/resource"
	"vino/internal/sched"
	"vino/internal/vmm"
)

// ChaosConfig parameterises one chaos run: a seeded fault plan executed
// against the paper's workloads, with survival invariants audited after
// every abort.
type ChaosConfig struct {
	// Seed drives the fault plan and everything derived from it. Two
	// runs with equal configs produce byte-identical trace dumps.
	Seed int64
	// Classes selects which fault classes to inject (nil = all).
	Classes []fault.Class
	// RulesPerClass is K, the number of injections scheduled per class
	// (default 3).
	RulesPerClass int
	// Iterations sizes each workload phase (default 48; -quick uses
	// less).
	Iterations int
	// TraceDepth sizes the flight recorder (default 8192 so no events
	// drop and dumps compare exactly).
	TraceDepth int
	// NCPU is the simulated CPU count (default 1, the classic
	// configuration). Larger values run the same survival audit with
	// per-CPU run queues; equal seeds still produce byte-identical
	// trace dumps.
	NCPU int
	// Extended widens the fault surface beyond the frozen classic set:
	// the netio class (mid-stream connection failures) joins the
	// default plan, and a pager phase drives file-backed memory
	// objects under injection.
	Extended bool
	// Plan, when non-nil, is used verbatim instead of deriving one from
	// Seed/Classes/RulesPerClass — the replay path for saved or
	// hand-minimised plans (fault.Decode). Seed should match Plan.Seed
	// so seed-keyed workload decisions replay too; RunChaos copies it
	// over when it does not.
	Plan *fault.Plan
	// Guard, when non-nil, arms the graft supervisor with this policy.
	// Misbehaving grafts are then tracked by the health ledger instead
	// of being removed on the first abort, and the survival invariant
	// upgrades: every persistently misbehaving graft must be quarantined
	// within the policy's abort budget (with the base path keeping the
	// workload completing), reinstated on probation after backoff, and
	// permanently expelled on relapse. Nil keeps classic behaviour and
	// byte-identical golden dumps.
	Guard *guard.Policy
	// VaryInstalls randomizes graft install options — the chaos echo
	// points' watchdog durations, resource transfer grants, and event
	// handler ordering — from a stream derived from Seed, so policies
	// are exercised against varied installs deterministically.
	VaryInstalls bool
	// Crash arms the crash phase: Panic rules join the plan, the kernel
	// checkpoints its state at CheckpointEvery, and injected kernel
	// panics — including ones striking inside commit, abort and undo
	// processing — are contained and recovered from the last checkpoint.
	// The classic phases run first, unchanged: the injector's crash gate
	// opens only for the crash phase, so traces of non-crash runs stay
	// byte-identical.
	Crash bool
	// CheckpointEvery overrides the virtual-time checkpoint cadence
	// (default 20 ms) when Crash is set.
	CheckpointEvery time.Duration
	// CheckpointRing bounds the checkpoint ring (default 1: only the
	// newest image is a restore target). With a deeper ring, recovery
	// from a delayed-detection panic can rewind past the newest
	// checkpoint to one predating the taint.
	CheckpointRing int
	// CheckpointFullCopy disables incremental (base + delta chain)
	// capture and deep-copies every subsystem at every checkpoint.
	// Restored state and trace dumps are byte-identical either way;
	// the switch exists for cost comparison and regression A/Bs.
	CheckpointFullCopy bool
	// CrashRulesPerSite is how many Panic rules are derived per crash
	// site (default 2) when Crash is set and no explicit Plan is given.
	CrashRulesPerSite int
	// NoRecover disables checkpointing and recovery: the first injected
	// panic of the crash phase is fatal and reported as FatalPanic. The
	// minimizer replays candidate plans under NoRecover to check that a
	// shrunken plan still reproduces the same failure signature.
	NoRecover bool
	// RecoverScope selects what a contained panic rolls back:
	// kernel.RecoverScopeKernel (default) restores the whole checkpoint;
	// kernel.RecoverScopeGraft reverts only the offending graft's
	// rollback domain, leaving other grafts' in-flight work live, and
	// widens to a whole-kernel restore on cross-domain entanglement.
	// Crash-free runs are byte-identical under either scope.
	RecoverScope string
	// CheckpointDir, when non-empty, persists the checkpoint ring to
	// disk (see kernel.Config.CheckpointDir).
	CheckpointDir string
	// RedTeam arms the red-team phase: the adversarial SFI escape
	// corpus runs (every attack image must be verifier-rejected or
	// contained with intact sentinel audits — an escape is an invariant
	// violation), and a compartment-violating graft is dispatched
	// inside the chaos kernel to prove sfi-violation containment under
	// load. Off by default, keeping existing golden dumps byte-identical.
	RedTeam bool
	// NoTranslate runs every graft on the interpreting VM engine
	// instead of the install-time native-Go translation. Reports and
	// trace dumps are byte-identical either way — that equivalence is a
	// CI invariant — so the switch exists for oracle A/B runs and
	// wall-clock comparisons.
	NoTranslate bool
}

func (cfg ChaosConfig) withDefaults() ChaosConfig {
	if len(cfg.Classes) == 0 {
		if cfg.Extended {
			cfg.Classes = fault.ExtendedClasses()
		} else {
			cfg.Classes = fault.Classes()
		}
	}
	if cfg.NCPU <= 0 {
		cfg.NCPU = 1
	}
	if cfg.RulesPerClass <= 0 {
		cfg.RulesPerClass = 3
	}
	if cfg.Iterations <= 0 {
		cfg.Iterations = 48
	}
	if cfg.TraceDepth <= 0 {
		cfg.TraceDepth = 8192
	}
	if cfg.Crash {
		if cfg.CheckpointEvery <= 0 {
			cfg.CheckpointEvery = 20 * time.Millisecond
		}
		if cfg.CrashRulesPerSite <= 0 {
			cfg.CrashRulesPerSite = 2
		}
	}
	return cfg
}

// ChaosReport is the outcome of a chaos run.
type ChaosReport struct {
	Plan *fault.Plan
	// Injected counts fault-plane firings (environment + graft notes).
	Injected int64
	// GraftFaults lists every misbehaving graft installed, as
	// "key@point".
	GraftFaults []string
	// Aborts, Commits and UndoPanics echo the transaction manager.
	Aborts, Commits, UndoPanics int64
	// ReadErrors/WriteErrors/Churned/Evictions echo the subsystems.
	ReadErrors, WriteErrors, Churned, Evictions int64
	// Midstream counts connections torn down by injected mid-stream
	// read/write failures (netio class; zero under the classic set).
	Midstream int64
	// PagerErrors counts injected faults surfaced through file-backed
	// memory objects (extended pager phase only).
	PagerErrors int64
	// Violations lists every survival-invariant failure; empty means
	// the kernel survived.
	Violations []string
	// FollowupOK reports that the clean post-fault workload succeeded.
	FollowupOK bool
	// Elapsed is the virtual time the whole run consumed.
	Elapsed time.Duration
	// TraceDump is the full flight-recorder dump (the determinism
	// artifact: equal seeds produce equal dumps).
	TraceDump string
	// TraceTotal is the number of events ever emitted.
	TraceTotal int64
	// WatchdogFires echoes the graft registry's watchdog counter.
	WatchdogFires int64
	// Panics, Recoveries and Checkpoints count the crash phase's
	// contained kernel panics, completed recoveries and checkpoints
	// taken (all zero unless the run was configured with Crash).
	Panics, Recoveries, Checkpoints int64
	// ScopedRecoveries and WidenedRecoveries break down recoveries under
	// RecoverScope graft: domain-scoped restores completed, and scoped
	// attempts that widened to a whole-kernel restore. RolledBackBytes
	// is the state payload the scoped restores reverted.
	ScopedRecoveries, WidenedRecoveries, RolledBackBytes int64
	// NonOffenderSurvivals counts recovery rounds of the crash phase in
	// which transactions committed after the round began were still on
	// the books once recovery completed — work a whole-kernel rewind
	// would have destroyed (always zero under kernel scope, where the
	// counters rewind with the checkpoint).
	NonOffenderSurvivals int64
	// PanicsByClass buckets the contained panics by crash class.
	PanicsByClass map[crash.Class]int64
	// CrashedSites buckets fired panic injections by crash site.
	CrashedSites map[crash.Site]int64
	// FatalPanic is the "class@site" of the panic that ended a NoRecover
	// run, "" otherwise.
	FatalPanic string
	// InjectedByClass buckets fault-plane firings by class.
	InjectedByClass map[fault.Class]int64
	// GuardHealth snapshots the supervisor's ledger (nil unless the run
	// was configured with a guard policy).
	GuardHealth *guard.Report
	// RedTeam is the escape-corpus result (nil unless the run was
	// configured with RedTeam). Escapes also appear in Violations.
	RedTeam *redteam.Result
}

// Survived reports whether every invariant held and the follow-up
// workload passed.
func (r *ChaosReport) Survived() bool { return len(r.Violations) == 0 && r.FollowupOK }

// Summary renders a short human-readable result.
func (r *ChaosReport) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos: seed %d, %d rules, %d injections fired, %d graft faults\n",
		r.Plan.Seed, len(r.Plan.Rules), r.Injected, len(r.GraftFaults))
	fmt.Fprintf(&b, "chaos: txns %d committed / %d aborted, %d undo panics contained\n",
		r.Commits, r.Aborts, r.UndoPanics)
	fmt.Fprintf(&b, "chaos: io errors %d read / %d write, %d conns churned, %d evictions\n",
		r.ReadErrors, r.WriteErrors, r.Churned, r.Evictions)
	if r.Midstream > 0 || r.PagerErrors > 0 {
		fmt.Fprintf(&b, "chaos: %d mid-stream conn faults, %d pager errors\n",
			r.Midstream, r.PagerErrors)
	}
	for _, g := range r.GraftFaults {
		fmt.Fprintf(&b, "chaos: graft fault %s\n", g)
	}
	if len(r.Violations) > 0 {
		for _, v := range r.Violations {
			fmt.Fprintf(&b, "chaos: INVARIANT VIOLATED: %s\n", v)
		}
	}
	if r.GuardHealth != nil {
		fmt.Fprintf(&b, "chaos: guard tracked %d grafts, %d quarantines, %d expelled\n",
			len(r.GuardHealth.Grafts), r.GuardHealth.Quarantines(), r.GuardHealth.Expulsions())
	}
	if r.Panics > 0 || r.Recoveries > 0 {
		fmt.Fprintf(&b, "chaos: %d kernel panics contained, %d recoveries, %d checkpoints\n",
			r.Panics, r.Recoveries, r.Checkpoints)
		classes := make([]string, 0, len(r.PanicsByClass))
		for cl := range r.PanicsByClass {
			classes = append(classes, string(cl))
		}
		sort.Strings(classes)
		parts := make([]string, 0, len(classes))
		for _, cl := range classes {
			parts = append(parts, fmt.Sprintf("%s=%d", cl, r.PanicsByClass[crash.Class(cl)]))
		}
		fmt.Fprintf(&b, "chaos: panics by class: %s\n", strings.Join(parts, " "))
	}
	if r.FatalPanic != "" {
		fmt.Fprintf(&b, "chaos: FATAL kernel panic %s (recovery disabled)\n", r.FatalPanic)
	}
	if r.RedTeam != nil {
		fmt.Fprintf(&b, "chaos: red-team corpus %d cases: %d rejected, %d contained, %d escaped\n",
			len(r.RedTeam.Verdicts), r.RedTeam.Rejected, r.RedTeam.Contained, r.RedTeam.Escapes)
	}
	fmt.Fprintf(&b, "chaos: follow-up workload ok: %v; survived: %v (virtual %v, %d trace events)\n",
		r.FollowupOK, r.Survived(), r.Elapsed, r.TraceTotal)
	return b.String()
}

// CounterSummary renders the registry and injector counters Summary
// leaves out (Summary's exact byte form is pinned by golden dumps):
// watchdog fires and per-class fault-injection counts.
func (r *ChaosReport) CounterSummary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos: watchdog fires %d\n", r.WatchdogFires)
	classes := make([]string, 0, len(r.InjectedByClass))
	for c := range r.InjectedByClass {
		classes = append(classes, string(c))
	}
	sort.Strings(classes)
	parts := make([]string, 0, len(classes))
	for _, c := range classes {
		parts = append(parts, fmt.Sprintf("%s=%d", c, r.InjectedByClass[fault.Class(c)]))
	}
	if len(parts) == 0 {
		parts = append(parts, "none")
	}
	fmt.Fprintf(&b, "chaos: injections by class: %s\n", strings.Join(parts, " "))
	// Rendered only when domain-scoped recovery actually ran, so
	// crash-free runs stay byte-identical across recovery scopes.
	if r.ScopedRecoveries > 0 || r.WidenedRecoveries > 0 || r.NonOffenderSurvivals > 0 {
		fmt.Fprintf(&b, "chaos: recoveries scoped %d (%d bytes rolled back) / widened %d, survivor rounds %d\n",
			r.ScopedRecoveries, r.RolledBackBytes, r.WidenedRecoveries, r.NonOffenderSurvivals)
	}
	return b.String()
}

// chaosRun is the mutable state of one run.
type chaosRun struct {
	cfg    ChaosConfig
	k      *kernel.Kernel
	fsys   *vfs.FS // shared: fs callables register once per kernel
	report *ChaosReport
	// vm is the most recent vmm instance (eviction/pager phase), kept so
	// the post-recovery audit can check frame-table consistency.
	vm *vmm.VMM
	// net is the kernel's network stack (created once: its callables
	// register per kernel), shared by the net and crash phases.
	net *netstk.Net
	// injected tracks every misbehaving graft for post-abort audits.
	injected []*injectedGraft
	nInject  int
	// crashGrafts tracks the crash phase's graft installs for the
	// post-recovery account audit; nCrash numbers their points.
	crashGrafts []*graft.Installed
	nCrash      int
	// crashVM and crashNet are the crash phase's eviction and accept
	// traffic targets (the pager and accept crash sites).
	crashVM  *vmm.VMM
	crashNet *netstk.Net
	// instRng, when non-nil (VaryInstalls), draws randomized install
	// options. It is seeded from cfg.Seed on a stream separate from the
	// plan's, and every draw happens at a deterministic point in the
	// scheduler order, so varied runs stay byte-identical per seed.
	instRng *rand.Rand
}

// drawWatchdog returns the chaos echo points' watchdog: the classic
// fixed 15 ms, or a seed-derived 10–30 ms when install options vary.
func (c *chaosRun) drawWatchdog() time.Duration {
	if c.instRng == nil {
		return 15 * time.Millisecond
	}
	return time.Duration(10+c.instRng.Intn(21)) * time.Millisecond
}

// drawTransfer returns a resource grant for a graft install: base, or a
// seed-derived value in [base/2, 3*base/2) when install options vary.
func (c *chaosRun) drawTransfer(base int64) int64 {
	if c.instRng == nil {
		return base
	}
	return base/2 + c.instRng.Int63n(base)
}

// drawOrder returns an event-handler order value (0 classic, 0–3 when
// install options vary).
func (c *chaosRun) drawOrder() int {
	if c.instRng == nil {
		return 0
	}
	return c.instRng.Intn(4)
}

type injectedGraft struct {
	key          string
	point        string
	g            *graft.Installed
	expectRemove bool
}

// RunChaos executes the full chaos schedule: the read-ahead, page
// eviction, connection and scheduling workloads run under the plan's
// injections, survival invariants are audited after every phase (and
// after every graft fault), the injector is disarmed, and a clean
// follow-up workload proves the kernel is still serviceable.
func RunChaos(cfg ChaosConfig) (*ChaosReport, error) {
	cfg = cfg.withDefaults()
	plan := cfg.Plan
	if plan == nil {
		plan = fault.NewPlan(cfg.Seed, cfg.Classes, cfg.RulesPerClass)
		if cfg.Crash {
			plan.Rules = append(plan.Rules, fault.NewCrashRules(cfg.Seed, cfg.CrashRulesPerSite)...)
		}
	} else {
		cfg.Seed = plan.Seed
	}
	kcfg := kernel.Config{
		TraceDepth:  cfg.TraceDepth,
		Seed:        cfg.Seed,
		NumCPUs:     cfg.NCPU,
		FaultPlan:   plan,
		GuardPolicy: cfg.Guard,
		NoTranslate: cfg.NoTranslate,
	}
	if cfg.Crash && !cfg.NoRecover {
		kcfg.CheckpointEvery = cfg.CheckpointEvery
		kcfg.CheckpointRing = cfg.CheckpointRing
		kcfg.CheckpointFullCopy = cfg.CheckpointFullCopy
		kcfg.RecoverScope = cfg.RecoverScope
		kcfg.CheckpointDir = cfg.CheckpointDir
	}
	k := kernel.New(kcfg)
	c := &chaosRun{cfg: cfg, k: k, report: &ChaosReport{Plan: plan}}
	if cfg.VaryInstalls {
		c.instRng = rand.New(rand.NewSource(cfg.Seed ^ 0x5EED_1057A11))
	}

	phases := []struct {
		name string
		run  func() error
	}{
		{"readahead", c.phaseReadAhead},
		{"eviction", c.phaseEviction},
		{"net", c.phaseNet},
		{"scheduling", c.phaseScheduling},
	}
	if cfg.Extended {
		phases = append(phases, struct {
			name string
			run  func() error
		}{"pager", c.phasePager})
	}
	if cfg.Crash {
		phases = append(phases, struct {
			name string
			run  func() error
		}{"crash", c.phaseCrash})
	}
	if cfg.RedTeam {
		phases = append(phases, struct {
			name string
			run  func() error
		}{"redteam", c.phaseRedTeam})
	}
	for _, ph := range phases {
		if err := ph.run(); err != nil {
			return nil, fmt.Errorf("chaos %s phase: %w", ph.name, err)
		}
		if c.report.FatalPanic != "" {
			// A NoRecover run ends at its first panic: the kernel state is
			// deliberately left un-recovered, so neither the invariant
			// audit nor the follow-up workload applies.
			c.finishReport()
			return c.report, nil
		}
		c.checkInvariants("after " + ph.name + " phase")
	}

	// The plan is spent: silence the injector and prove the kernel
	// still does clean work.
	k.Faults.Disarm()
	ok, err := c.followup()
	if err != nil {
		return nil, fmt.Errorf("chaos follow-up: %w", err)
	}
	c.report.FollowupOK = ok
	c.checkInvariants("after follow-up")

	c.finishReport()
	return c.report, nil
}

func (c *chaosRun) finishReport() {
	r := c.report
	st := c.k.Txns.Stats()
	r.Aborts, r.Commits, r.UndoPanics = st.Aborts, st.Commits, st.UndoPanics
	r.Injected = c.k.Faults.Fired()
	r.InjectedByClass = c.k.Faults.FiredByClass()
	r.WatchdogFires = c.k.Grafts.Stats().WatchdogFires
	if c.k.Guard != nil {
		gr := c.k.Guard.Report()
		r.GuardHealth = &gr
	}
	if c.k.Crash != nil {
		cs := c.k.Crash.Stats()
		r.Panics, r.Recoveries, r.Checkpoints = cs.Panics, cs.Recoveries, cs.Checkpoints
		r.ScopedRecoveries, r.WidenedRecoveries = cs.ScopedRecoveries, cs.WidenedRecoveries
		r.RolledBackBytes = cs.RolledBackBytes
		r.PanicsByClass = cs.ByClass
	}
	r.CrashedSites = c.k.Faults.CrashedBySite()
	r.Elapsed = c.k.Clock.Now()
	r.TraceDump = c.k.Trace.Dump()
	r.TraceTotal = c.k.Trace.Total()
}

// violate records an invariant violation.
func (c *chaosRun) violate(format string, args ...any) {
	c.report.Violations = append(c.report.Violations, fmt.Sprintf(format, args...))
}

// checkInvariants audits the survival guarantees the paper's abort path
// promises: no lock outlives its transaction, the transaction books
// balance, every misbehaving graft that aborted was forcibly removed,
// and its resource account was drained by undo.
func (c *chaosRun) checkInvariants(stage string) {
	if out := c.k.Locks.Outstanding(); len(out) > 0 {
		c.violate("%s: leaked locks %v", stage, out)
	}
	st := c.k.Txns.Stats()
	if st.Begins != st.Commits+st.Aborts {
		c.violate("%s: unbalanced transactions: %d begun, %d committed, %d aborted",
			stage, st.Begins, st.Commits, st.Aborts)
	}
	for _, ig := range c.injected {
		if ig.expectRemove && !ig.g.Removed() {
			if sup := c.k.Guard; sup != nil {
				// Supervisor semantics: removal is replaced by the
				// escalation ladder. The graft may legitimately still be
				// installed, but once its aborts reach the policy's
				// budget it must be at least quarantined.
				key := ig.g.GuardKey()
				h, _ := sup.Health(key)
				st, _ := sup.StateOf(key)
				if h.Aborts >= int64(sup.Policy().QuarantineStreak) && st < guard.Quarantined {
					c.violate("%s: graft fault %s@%s has %d aborts but is only %v",
						stage, ig.key, ig.point, h.Aborts, st)
				}
			} else {
				c.violate("%s: graft fault %s@%s not removed", stage, ig.key, ig.point)
			}
		}
		for _, kind := range ig.g.Account.Kinds() {
			if used := ig.g.Account.Used(kind); used != 0 {
				c.violate("%s: graft fault %s@%s account not drained: %s=%d",
					stage, ig.key, ig.point, kind, used)
			}
		}
	}
}

// chaosEchoPoint registers a disposable function point for graft-fault
// installations: default result -1, tight watchdog so loop grafts are
// cut down quickly.
func (c *chaosRun) chaosEchoPoint(name string) *graft.Point {
	return c.k.Grafts.RegisterPoint(&graft.Point{
		Name:      name,
		Kind:      graft.Function,
		Privilege: graft.Local,
		Default:   func(t *sched.Thread, args []int64) (int64, error) { return -1, nil },
		Watchdog:  c.drawWatchdog(),
	})
}

// injectGraftFault installs one library graft at a fresh point, invokes
// it, and audits the abort machinery behind it. Wild stores are special:
// they *succeed* under SFI (that is their invariant — containment, not
// abort), so they are verified and then removed by hand.
func (c *chaosRun) injectGraftFault(p *kernel.Process, key string) error {
	c.nInject++
	ptName := fmt.Sprintf("chaos/%d.fn", c.nInject)
	pt := c.chaosEchoPoint(ptName)
	c.k.Faults.Note(fault.Graft, ptName, "install "+key)

	opts := graft.InstallOptions{}
	if key == fault.GraftBlowout {
		opts.Transfer = map[resource.Kind]int64{resource.KernelHeap: c.drawTransfer(32 << 10)}
	}
	g, err := p.BuildAndInstall(ptName, fault.GraftSource(key), opts)
	if err != nil {
		return fmt.Errorf("install %s: %w", key, err)
	}
	ig := &injectedGraft{key: key, point: ptName, g: g, expectRemove: true}
	c.injected = append(c.injected, ig)
	c.report.GraftFaults = append(c.report.GraftFaults, key+"@"+ptName)

	if key == fault.GraftWildStore {
		// Containment, not abort: pre-fill the kernel memory the VM
		// exposes, run the scribbler, verify not one byte moved.
		km := g.VM().KernelMemory()
		for i := range km {
			km[i] = 0xEE
		}
		res, ierr := pt.Invoke(p.Thread)
		for i, b := range km {
			if b != 0xEE {
				c.violate("wildstore %s: kernel memory corrupted at +%d", ptName, i)
				break
			}
		}
		if ierr != nil || res != 0 {
			c.violate("wildstore %s: expected contained success, got res=%d err=%v", ptName, res, ierr)
		}
		c.k.Grafts.Remove(g)
		c.checkInvariants("after graft fault " + key)
		return nil
	}

	if c.cfg.Guard != nil {
		c.driveGuardedFault(p, pt, ig)
		c.checkInvariants("after graft fault " + key)
		return nil
	}

	res, ierr := pt.Invoke(p.Thread)
	if ierr == nil {
		c.violate("graft fault %s@%s: expected an abort, got clean result %d", key, ptName, res)
	}
	if res != -1 {
		c.violate("graft fault %s@%s: fallback default not used (res=%d)", key, ptName, res)
	}
	if key == fault.GraftAbortUndo && c.k.Txns.Stats().UndoPanics == 0 {
		c.violate("graft fault %s@%s: poisoned undo did not run", key, ptName)
	}
	c.checkInvariants("after graft fault " + key)
	return nil
}

// driveGuardedFault drives a persistently misbehaving graft through the
// supervisor's full lifecycle and audits each stage: quarantine within
// the policy's abort budget, base-path fallback keeping invocations
// completing (throughput recovery), probation reinstatement after the
// virtual-time backoff, permanent expulsion on relapse, and refusal of
// a reinstall afterwards.
func (c *chaosRun) driveGuardedFault(p *kernel.Process, pt *graft.Point, ig *injectedGraft) {
	sup := c.k.Guard
	pol := sup.Policy()
	key := ig.g.GuardKey()

	// Escalation: the graft aborts every invocation, so the quarantine
	// budget is exactly QuarantineStreak aborts.
	for i := 0; i < pol.QuarantineStreak; i++ {
		if res, _ := pt.Invoke(p.Thread); res != -1 {
			c.violate("guard %s: fallback not used during escalation (res=%d)", key, res)
		}
	}
	if st, _ := sup.StateOf(key); st != guard.Quarantined {
		c.violate("guard %s: not quarantined after %d aborts (state %v)", key, pol.QuarantineStreak, st)
		return
	}
	h, _ := sup.Health(key)
	if h.Aborts > int64(pol.QuarantineStreak) {
		c.violate("guard %s: %d aborts before quarantine, budget %d", key, h.Aborts, pol.QuarantineStreak)
	}

	// Throughput recovery: quarantined invocations short-circuit to the
	// base path — served cleanly, no graft run, no new aborts.
	abortsAtQ := h.Aborts
	for i := 0; i < 4; i++ {
		if res, err := pt.Invoke(p.Thread); err != nil || res != -1 {
			c.violate("guard %s: quarantined invocation not short-circuited (res=%d err=%v)", key, res, err)
		}
	}
	if h2, _ := sup.Health(key); h2.Aborts != abortsAtQ || h2.ShortCircuits == 0 {
		c.violate("guard %s: quarantine did not stop aborts (%d -> %d aborts, %d blocked)",
			key, abortsAtQ, h2.Aborts, h2.ShortCircuits)
	}

	// Probation after backoff, then relapse: the graft still misbehaves,
	// so probation must end in permanent expulsion within its streak.
	h3, _ := sup.Health(key)
	if wait := h3.QuarantineEnd - c.k.Clock.Now(); wait > 0 {
		p.Thread.Sleep(wait + time.Millisecond)
	}
	for i := 0; i < pol.ProbationStreak+1; i++ {
		if st, _ := sup.StateOf(key); st == guard.Expelled {
			break
		}
		if res, _ := pt.Invoke(p.Thread); res != -1 {
			c.violate("guard %s: fallback not used on probation (res=%d)", key, res)
		}
	}
	if st, _ := sup.StateOf(key); st != guard.Expelled {
		c.violate("guard %s: not expelled after probation relapse (state %v)", key, st)
		return
	}
	if !ig.g.Removed() {
		c.violate("guard %s: expelled graft still installed", key)
	}
	// Permanent: reinstalling the expelled image is refused.
	if _, err := p.BuildAndInstall(ig.point, fault.GraftSource(ig.key), graft.InstallOptions{}); !errors.Is(err, graft.ErrExpelled) {
		c.violate("guard %s: reinstall after expulsion not refused (err=%v)", key, err)
	}
}

// graftFaultsDue returns the library keys scheduled for workload
// iteration i (1-based): a Graft/Lock rule with EveryN == i fires once.
func (c *chaosRun) graftFaultsDue(i int) []string {
	var keys []string
	for _, r := range c.report.Plan.Rules {
		if (r.Class == fault.Graft || r.Class == fault.Lock) && r.EveryN == int64(i) {
			keys = append(keys, r.Graft)
		}
	}
	return keys
}

// phaseReadAhead drives the §4.1 read-ahead workload — announced
// sequential reads through a grafted compute-ra policy — under disk
// error/latency injections, firing scheduled graft faults between
// reads. Injected read failures must surface as errors, never corrupt
// state.
func (c *chaosRun) phaseReadAhead() error {
	c.fsys = vfs.New(c.k, vfs.NewDisk(vfs.FujitsuM2694ESA()), 64)
	fsys := c.fsys
	file := fsys.Create("chaos-db", 4<<20, graft.Root, false)
	var fail error
	p := c.k.SpawnProcess("chaos-ra", graft.Root, func(p *kernel.Process) {
		t := p.Thread
		of, err := fsys.Open(t, "chaos-db")
		if err != nil {
			fail = err
			return
		}
		point := of.RAPoint()
		g, err := p.BuildAndInstall(point.Name, raGraftBody, graft.InstallOptions{})
		if err != nil {
			fail = err
			return
		}
		buf := make([]byte, vfs.BlockSize)
		blocks := file.Blocks()
		for i := 1; i <= c.cfg.Iterations; i++ {
			off := (int64(i) % blocks) * vfs.BlockSize
			next := (off + vfs.BlockSize) % (blocks * vfs.BlockSize)
			if !g.Removed() {
				heap := g.VM().Heap()
				poke64(heap, 0, next)
				poke64(heap, 8, vfs.BlockSize)
				poke64(heap, 16, int64(of.FD()))
			}
			if _, err := of.ReadAt(t, buf, off); err != nil {
				if !errors.Is(err, fault.ErrInjected) {
					fail = fmt.Errorf("read %d: %w", i, err)
					return
				}
			}
			if i%8 == 0 {
				if _, err := of.WriteAt(t, buf[:512], off); err != nil && !errors.Is(err, fault.ErrInjected) {
					fail = fmt.Errorf("write %d: %w", i, err)
					return
				}
			}
			for _, key := range c.graftFaultsDue(i) {
				if err := c.injectGraftFault(p, key); err != nil {
					fail = err
					return
				}
			}
		}
		of.Close()
	})
	_ = p
	if err := c.k.Run(); err != nil {
		return err
	}
	st := fsys.Stats()
	c.report.ReadErrors += st.ReadErrors
	c.report.WriteErrors += st.WriteErrors
	return fail
}

// phaseEviction drives the §4.2 paging workload — a working set larger
// than physical memory — while pressure spikes steal frames, with a
// loop graft dropped onto the eviction point mid-run when graft faults
// are in the plan.
func (c *chaosRun) phaseEviction() error {
	v := vmm.New(c.k, 96)
	c.vm = v
	wantGraft := len(c.report.Plan.RulesFor(fault.Graft)) > 0
	var fail error
	c.k.SpawnProcess("chaos-vm", graft.Root, func(p *kernel.Process) {
		t := p.Thread
		vas := v.NewVAS(t)
		defer vas.Destroy()
		working := int64(160) // > 96 frames: constant eviction
		for i := 1; i <= c.cfg.Iterations; i++ {
			for j := int64(0); j < 8; j++ {
				vpn := (int64(i)*7 + j*13) % working
				if j%3 == 0 {
					vas.TouchWrite(t, vpn)
				} else {
					vas.Touch(t, vpn)
				}
			}
			if wantGraft && i == c.cfg.Iterations/2 {
				// A policy graft that never answers: the eviction
				// watchdog must cut it down and fall back to the
				// global algorithm.
				pt := vas.EvictPoint()
				c.k.Faults.Note(fault.Graft, pt.Name, "install "+fault.GraftLoop)
				g, err := p.BuildAndInstall(pt.Name, fault.GraftSource(fault.GraftLoop), graft.InstallOptions{})
				if err != nil {
					fail = err
					return
				}
				c.injected = append(c.injected, &injectedGraft{
					key: fault.GraftLoop, point: pt.Name, g: g, expectRemove: true,
				})
				c.report.GraftFaults = append(c.report.GraftFaults, fault.GraftLoop+"@"+pt.Name)
			}
		}
	})
	if err := c.k.Run(); err != nil {
		return err
	}
	c.report.Evictions += v.Stats().Evictions
	return fail
}

// phaseNet drives the §3.5 event-graft workload — an in-kernel echo
// server — through connection churn: reset connections abort their
// handler's transaction, the dead handler is removed, and the server
// process reinstalls it and keeps serving.
func (c *chaosRun) phaseNet() error {
	n := netstk.New(c.k)
	c.net = n
	port := n.Listen("tcp", 7)
	const echoSrc = `
.name chaos-echo
.import net.read
.import net.write
.import net.close
.func main
main:
    mov r6, r1
    addi r2, r10, 512
    movi r3, 128
    callk net.read
    jz r0, out
    mov r4, r0
    mov r1, r6
    addi r2, r10, 512
    mov r3, r4
    callk net.write
out:
    mov r1, r6
    callk net.close
    ret
`
	var fail error
	c.k.SpawnProcess("chaos-net", graft.Root, func(p *kernel.Process) {
		install := func() error {
			_, err := p.BuildAndInstall(port.Point().Name, echoSrc, graft.InstallOptions{
				Transfer: map[resource.Kind]int64{resource.Memory: c.drawTransfer(4096)},
				Order:    c.drawOrder(),
			})
			return err
		}
		if err := install(); err != nil {
			fail = err
			return
		}
		served, churned := 0, 0
		for i := 1; i <= c.cfg.Iterations/2; i++ {
			conn, err := n.Connect(c.k.Sched, "tcp", 7, []byte("ping"))
			if err != nil {
				fail = err
				return
			}
			for w := 0; w < 30 && !conn.Closed(); w++ {
				p.Thread.Yield()
			}
			if len(conn.Response()) > 0 {
				served++
			} else {
				churned++
			}
			// A churned connection kills the handler (its transaction
			// aborts on the dead socket); the server notices and
			// re-grafts — the recovery loop a real in-kernel server
			// would run.
			if len(port.Point().Handlers()) == 0 {
				if err := install(); err != nil {
					if c.cfg.Guard != nil && errors.Is(err, graft.ErrExpelled) {
						// The supervisor expelled the handler for good;
						// the server cannot re-graft, which is exactly
						// the policy's promise. Stop serving.
						break
					}
					fail = err
					return
				}
			}
		}
		if served == 0 {
			fail = fmt.Errorf("echo server never served (%d churned)", churned)
		}
	})
	if err := c.k.Run(); err != nil {
		return err
	}
	c.report.Churned += n.Stats().Churned
	c.report.Midstream += n.Stats().MidstreamFaults
	return fail
}

// phasePager drives file-backed memory objects — the paper's Mach-style
// external pagers — under injection: a mapped file larger than the frame
// pool faults pages in through the buffer cache while disk errors,
// latency degradation and pressure spikes fire. An injected read error
// must surface as a pager failure on that access (the page stays
// non-resident, the frame is not consumed) and never corrupt state.
func (c *chaosRun) phasePager() error {
	fsys := c.fsys
	v := vmm.New(c.k, 48)
	c.vm = v
	file := fsys.Create("chaos-mapped", 64*vfs.BlockSize, graft.Root, false)
	var fail error
	var hardFaults int64
	c.k.SpawnProcess("chaos-pager", graft.Root, func(p *kernel.Process) {
		t := p.Thread
		of, err := fsys.Open(t, "chaos-mapped")
		if err != nil {
			fail = err
			return
		}
		defer of.Close()
		vas := v.NewVAS(t)
		defer vas.Destroy()
		blocks := file.Blocks()
		if err := vas.Map(0, blocks, of.Pager()); err != nil {
			fail = err
			return
		}
		// A working set wider than the 48-frame pool: constant
		// eviction and re-fault through the buffer cache.
		for i := 1; i <= c.cfg.Iterations; i++ {
			for j := int64(0); j < 6; j++ {
				vpn := (int64(i)*11 + j*5) % blocks
				if err := vas.TouchErr(t, vpn); err != nil {
					if !errors.Is(err, fault.ErrInjected) {
						fail = fmt.Errorf("pager fault vpn %d: %w", vpn, err)
						return
					}
					c.report.PagerErrors++
				}
			}
		}
		// Teardown under load: unmapping returns the resident pages.
		vas.Unmap(0)
		if got := vas.Resident(); got != 0 {
			c.violate("pager: %d pages resident after unmap", got)
		}
	})
	if err := c.k.Run(); err != nil {
		return err
	}
	hardFaults = v.Stats().Faults
	if fail == nil && hardFaults == 0 {
		c.violate("pager: workload completed without a single hard fault")
	}
	c.report.Evictions += v.Stats().Evictions
	return fail
}

// phaseScheduling runs bystander spinners while a hog graft takes the
// kernel hoard lock and spins; a contender's blocked acquisition starts
// the contention clock, the class time-out aborts the hog's
// transaction, and the contender must obtain the lock.
func (c *chaosRun) phaseScheduling() error {
	iters := c.cfg.Iterations
	spun := make([]int, 2)
	for s := 0; s < 2; s++ {
		s := s
		c.k.SpawnProcess(fmt.Sprintf("chaos-spin%d", s), graft.Root, func(p *kernel.Process) {
			for i := 0; i < iters; i++ {
				p.Thread.Charge(200 * time.Microsecond)
				p.Thread.Yield()
				spun[s]++
			}
		})
	}
	wantHoard := len(c.report.Plan.RulesFor(fault.Lock)) > 0 || len(c.report.Plan.RulesFor(fault.Graft)) > 0
	var fail error
	contenderGot := false
	if wantHoard {
		c.k.SpawnProcess("chaos-hog", graft.Root, func(p *kernel.Process) {
			c.nInject++
			ptName := fmt.Sprintf("chaos/%d.fn", c.nInject)
			// Loose watchdog: this injection should abort via the lock
			// time-out path (~20-40 ms); the watchdog is only a backstop.
			pt := c.k.Grafts.RegisterPoint(&graft.Point{
				Name:      ptName,
				Kind:      graft.Function,
				Privilege: graft.Local,
				Default:   func(t *sched.Thread, args []int64) (int64, error) { return -1, nil },
				Watchdog:  200 * time.Millisecond,
			})
			c.k.Faults.Note(fault.Lock, ptName, "install "+fault.GraftHoard)
			g, err := p.BuildAndInstall(ptName, fault.GraftSource(fault.GraftHoard), graft.InstallOptions{})
			if err != nil {
				fail = err
				return
			}
			c.injected = append(c.injected, &injectedGraft{
				key: fault.GraftHoard, point: ptName, g: g, expectRemove: true,
			})
			c.report.GraftFaults = append(c.report.GraftFaults, fault.GraftHoard+"@"+ptName)
			res, ierr := pt.Invoke(p.Thread)
			if ierr == nil || res != -1 {
				c.violate("hoard graft: expected lock-timeout abort, got res=%d err=%v", res, ierr)
			}
		})
		c.k.SpawnProcess("chaos-contender", graft.Root, func(p *kernel.Process) {
			hoard := c.k.FaultHoardLock()
			// Wait until the hog actually holds the lock so the
			// acquisition below genuinely contends and arms the
			// class time-out.
			for i := 0; i < 500 && hoard.HolderCount() == 0; i++ {
				p.Thread.Sleep(time.Millisecond)
			}
			hoard.Acquire(p.Thread, lock.Exclusive)
			contenderGot = true
			_ = hoard.Release(p.Thread)
		})
	}
	if err := c.k.Run(); err != nil {
		return err
	}
	if fail != nil {
		return fail
	}
	if spun[0] < iters || spun[1] < iters {
		c.violate("scheduling: bystander starved (%d/%d of %d)", spun[0], spun[1], iters)
	}
	if wantHoard && !contenderGot {
		c.violate("scheduling: contender never obtained the hoarded lock")
	}
	return nil
}

// followup proves the kernel is still serviceable after the storm: a
// disarmed injector, a fresh file read with a null policy graft that
// commits, and clean lock books.
func (c *chaosRun) followup() (bool, error) {
	fsys := c.fsys
	fsys.Create("chaos-followup", 1<<20, graft.Root, false)
	before := fsys.Stats()
	ok := true
	var fail error
	c.k.SpawnProcess("chaos-followup", graft.Root, func(p *kernel.Process) {
		t := p.Thread
		of, err := fsys.Open(t, "chaos-followup")
		if err != nil {
			fail = err
			return
		}
		defer of.Close()
		point := of.RAPoint()
		if _, err := p.BuildAndInstall(point.Name, nullGraftSrc, graft.InstallOptions{}); err != nil {
			fail = err
			return
		}
		buf := make([]byte, vfs.BlockSize)
		for i := int64(0); i < 16; i++ {
			if _, err := of.ReadAt(t, buf, i*vfs.BlockSize); err != nil {
				ok = false
				return
			}
		}
	})
	if err := c.k.Run(); err != nil {
		return false, err
	}
	if fail != nil {
		return false, fail
	}
	if st := fsys.Stats(); st.ReadErrors != before.ReadErrors || st.WriteErrors != before.WriteErrors {
		ok = false // the disarmed injector must not fire
	}
	return ok, nil
}
