package harness

import (
	"errors"
	"strings"
	"testing"
	"time"

	"vino/internal/fault"
	"vino/internal/graft"
	"vino/internal/kernel"
	"vino/internal/sched"
)

// TestChaosDeterminism is the headline determinism claim: two runs with
// the same seed produce byte-identical flight-recorder dumps.
func TestChaosDeterminism(t *testing.T) {
	cfg := ChaosConfig{Seed: 7, Iterations: 32}
	a, err := RunChaos(cfg)
	if err != nil {
		t.Fatalf("run A: %v", err)
	}
	b, err := RunChaos(cfg)
	if err != nil {
		t.Fatalf("run B: %v", err)
	}
	if a.TraceDump != b.TraceDump {
		t.Fatalf("same seed produced different traces:\n--- A ---\n%s\n--- B ---\n%s", a.TraceDump, b.TraceDump)
	}
	if a.TraceTotal == 0 {
		t.Fatal("no trace events recorded")
	}
	if !a.Survived() {
		t.Fatalf("kernel did not survive: %v (follow-up ok: %v)", a.Violations, a.FollowupOK)
	}
}

// TestChaosSeedsDiffer sanity-checks that the seed matters: different
// seeds give different schedules.
func TestChaosSeedsDiffer(t *testing.T) {
	a, err := RunChaos(ChaosConfig{Seed: 1, Iterations: 24})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunChaos(ChaosConfig{Seed: 2, Iterations: 24})
	if err != nil {
		t.Fatal(err)
	}
	if a.TraceDump == b.TraceDump {
		t.Fatal("seeds 1 and 2 produced identical traces")
	}
}

// TestChaosPerClass runs the harness one fault class at a time and
// asserts both survival and evidence that the class actually injected.
func TestChaosPerClass(t *testing.T) {
	cases := []struct {
		class    fault.Class
		evidence func(r *ChaosReport) bool
		desc     string
	}{
		{fault.Disk, func(r *ChaosReport) bool { return r.ReadErrors+r.WriteErrors > 0 },
			"injected I/O errors surfaced"},
		{fault.Latency, func(r *ChaosReport) bool { return r.Injected > 0 },
			"latency injections fired"},
		{fault.Pressure, func(r *ChaosReport) bool { return r.Injected > 0 && r.Evictions > 0 },
			"pressure windows fired and forced evictions"},
		{fault.Net, func(r *ChaosReport) bool { return r.Churned > 0 },
			"connections were churned"},
		{fault.Graft, func(r *ChaosReport) bool { return len(r.GraftFaults) > 0 && r.Aborts > 0 },
			"misbehaving grafts installed and aborted"},
		{fault.Lock, func(r *ChaosReport) bool {
			return len(r.GraftFaults) > 0 && r.Aborts > 0
		}, "lock hoards installed and broken by time-out"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(string(tc.class), func(t *testing.T) {
			r, err := RunChaos(ChaosConfig{Seed: 11, Classes: []fault.Class{tc.class}, Iterations: 32})
			if err != nil {
				t.Fatal(err)
			}
			if !r.Survived() {
				t.Fatalf("did not survive %s faults: %v (follow-up ok: %v)", tc.class, r.Violations, r.FollowupOK)
			}
			if !tc.evidence(r) {
				t.Fatalf("no evidence of %s injection (%s):\n%s", tc.class, tc.desc, r.Summary())
			}
		})
	}
}

// TestChaosAllClassesSurvive is the acceptance bar: one run injecting
// every class, all post-abort invariants holding, clean follow-up.
func TestChaosAllClassesSurvive(t *testing.T) {
	r, err := RunChaos(ChaosConfig{Seed: 3, Iterations: 40})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Survived() {
		t.Fatalf("did not survive: %v (follow-up ok: %v)", r.Violations, r.FollowupOK)
	}
	if got := len(r.Plan.Classes()); got != len(fault.Classes()) {
		t.Fatalf("plan covers %d classes, want %d", got, len(fault.Classes()))
	}
	if r.Injected == 0 {
		t.Fatal("nothing injected")
	}
}

// TestChaosAbortUndoRegression installs the abort-in-undo graft — take
// a lock, poison the undo stack, trap — and proves the regression the
// hardened abort path fixes: the poisoned undo handler fires during
// abort, yet the lock manager ends the invocation idle and a contender
// can take the lock.
func TestChaosAbortUndoRegression(t *testing.T) {
	plan := &fault.Plan{Seed: 0} // arm the fault callables; no scheduled rules
	k := kernel.New(kernel.Config{FaultPlan: plan, TraceDepth: 512})
	pt := k.Grafts.RegisterPoint(&graft.Point{
		Name:      "chaos/undo.fn",
		Kind:      graft.Function,
		Privilege: graft.Local,
		Default:   func(t *sched.Thread, args []int64) (int64, error) { return -1, nil },
		Watchdog:  50 * time.Millisecond,
	})
	var res int64
	var ierr error
	k.SpawnProcess("undo-regress", graft.Root, func(p *kernel.Process) {
		g, err := p.BuildAndInstall(pt.Name, fault.GraftSource(fault.GraftAbortUndo), graft.InstallOptions{})
		if err != nil {
			t.Errorf("install: %v", err)
			return
		}
		res, ierr = pt.Invoke(p.Thread)
		if !g.Removed() {
			t.Error("aborting graft not removed")
		}
		// The wedge test: the hoard lock must be free again despite the
		// poisoned undo, so a plain acquisition succeeds immediately.
		hoard := k.FaultHoardLock()
		if !hoard.TryAcquire(p.Thread, 1) {
			t.Error("hoard lock still held after abort with poisoned undo")
		} else {
			_ = hoard.Release(p.Thread)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if ierr == nil {
		t.Fatalf("expected abort, got clean result %d", res)
	}
	if res != -1 {
		t.Fatalf("fallback default not used: %d", res)
	}
	if st := k.Txns.Stats(); st.UndoPanics != 1 {
		t.Fatalf("UndoPanics = %d, want 1", st.UndoPanics)
	}
	if !k.Locks.Idle() {
		t.Fatalf("lock manager not idle: %v", k.Locks.Outstanding())
	}
}

// TestChaosWildStoreContainment runs the out-of-segment store graft on
// a fault-armed kernel and verifies SFI containment byte-for-byte.
func TestChaosWildStoreContainment(t *testing.T) {
	k := kernel.New(kernel.Config{FaultPlan: &fault.Plan{Seed: 0}})
	pt := k.Grafts.RegisterPoint(&graft.Point{
		Name:      "chaos/wild.fn",
		Kind:      graft.Function,
		Privilege: graft.Local,
		Default:   func(t *sched.Thread, args []int64) (int64, error) { return -1, nil },
		Watchdog:  50 * time.Millisecond,
	})
	k.SpawnProcess("wild", graft.Root, func(p *kernel.Process) {
		g, err := p.BuildAndInstall(pt.Name, fault.GraftSource(fault.GraftWildStore), graft.InstallOptions{})
		if err != nil {
			t.Errorf("install: %v", err)
			return
		}
		km := g.VM().KernelMemory()
		for i := range km {
			km[i] = 0xEE
		}
		if _, err := pt.Invoke(p.Thread); err != nil {
			t.Errorf("wild store aborted under SFI: %v", err)
		}
		for i, b := range km {
			if b != 0xEE {
				t.Errorf("kernel memory corrupted at +%d", i)
				return
			}
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestChaosInjectedErrorsAreSentinel verifies injected I/O failures are
// distinguishable from real bugs via errors.Is.
func TestChaosInjectedErrorsAreSentinel(t *testing.T) {
	r, err := RunChaos(ChaosConfig{Seed: 5, Classes: []fault.Class{fault.Disk}, Iterations: 32})
	if err != nil {
		t.Fatal(err)
	}
	if r.ReadErrors+r.WriteErrors == 0 {
		t.Fatal("no I/O errors injected")
	}
	if !errors.Is(fault.ErrInjected, fault.ErrInjected) {
		t.Fatal("sentinel identity broken")
	}
	if !strings.Contains(r.TraceDump, string(fault.Disk)+":") {
		t.Fatalf("disk injections missing from trace:\n%s", r.TraceDump)
	}
}
