package harness

import (
	"regexp"
	"strings"

	"vino/internal/crash"
)

// Signatures reduce a chaos report to a stable identity usable as a
// fingerprint: the minimizer preserves one while deleting rules, and
// the campaign driver keys its coverage map on one. Two forms exist:
//
//   - Signature is the failure identity: non-empty only when the run
//     failed (fatal panic, invariant violation, failed follow-up). It is
//     what the minimizer has always preserved.
//   - NormalizedSignature fingerprints every run, surviving or not, by
//     its observable behaviour shape — verdict, crash sites struck,
//     panic classes contained — with counts and virtual-time stamps
//     stripped, so semantically identical runs at different offsets or
//     CPU counts collapse to one coverage-map key.

// Signature reduces a chaos report to the identity of its failure: the
// contained "kernel-panic class@site" of a NoRecover run, or the first
// invariant violation with digits normalized (counts and virtual times
// shift as the plan shrinks; the *shape* of the violation must not).
// A surviving report has signature "".
func Signature(r *ChaosReport) string {
	if r.FatalPanic != "" {
		return "kernel-panic " + r.FatalPanic
	}
	if len(r.Violations) > 0 {
		return normalizeDigits(r.Violations[0])
	}
	if !r.FollowupOK {
		return "follow-up failed"
	}
	return ""
}

// NormalizedSignature fingerprints a run's behaviour for campaign
// coverage. Unlike Signature it is never empty: a surviving run
// fingerprints as its crash-site/panic-class footprint, so a campaign
// distinguishes "survived without a single panic" from "survived twelve
// panics across five sites". The form is one line:
//
//	<verdict> sites=<struck crash sites> panics=<contained classes>
//
// where verdict is "ok", "fatal <class>@<site>", "violated <shape>" or
// "follow-up-failed"; sites and panics list presence only (no counts),
// in the taxonomy's canonical order, "-" when empty. Violation shapes
// pass through NormalizeShape, so absolute virtual-time stamps — whose
// rendered form changes shape with magnitude ("998.5ms" vs "1.0005s")
// — never split one failure into many fingerprints.
func NormalizedSignature(r *ChaosReport) string {
	var b strings.Builder
	switch {
	case r == nil:
		return "error no-report"
	case r.FatalPanic != "":
		b.WriteString("fatal " + r.FatalPanic)
	case len(r.Violations) > 0:
		b.WriteString("violated " + NormalizeShape(r.Violations[0]))
	case !r.FollowupOK:
		b.WriteString("follow-up-failed")
	default:
		b.WriteString("ok")
	}
	var sites []string
	for _, s := range crash.Sites() {
		if r.CrashedSites[s] > 0 {
			sites = append(sites, string(s))
		}
	}
	b.WriteString(" sites=" + joinOrDash(sites))
	var classes []string
	for _, c := range crash.Classes() {
		if r.PanicsByClass[c] > 0 {
			classes = append(classes, string(c))
		}
	}
	b.WriteString(" panics=" + joinOrDash(classes))
	return b.String()
}

func joinOrDash(parts []string) string {
	if len(parts) == 0 {
		return "-"
	}
	return strings.Join(parts, ",")
}

// normalizeDigits replaces every digit run with '#'.
func normalizeDigits(s string) string {
	var b strings.Builder
	inRun := false
	for _, r := range s {
		if r >= '0' && r <= '9' {
			if !inRun {
				b.WriteByte('#')
				inRun = true
			}
			continue
		}
		inRun = false
		b.WriteRune(r)
	}
	return b.String()
}

// durationToken matches a digit-normalized time.Duration rendering:
// "#.#ms", "#µs", "#h#m#.#s", optionally signed. Go's duration String
// changes *shape* with magnitude (999.8ms ticks over to 1.0002s), so
// digit folding alone still tells two offsets of the same failure
// apart; the whole token collapses to one marker instead.
var durationToken = regexp.MustCompile(`-?(?:#(?:\.#)?(?:ns|µs|us|ms|h|m|s))+`)

// NormalizeShape normalizes one report line for fingerprinting: digit
// runs fold to '#', then absolute virtual-time stamps fold to "<t>".
func NormalizeShape(s string) string {
	return durationToken.ReplaceAllString(normalizeDigits(s), "<t>")
}
