package harness

import (
	"math"
	"testing"
)

// requireOrder asserts the fundamental Table 2 ordering: each richer
// path costs at least as much as the previous (abort may undercut safe,
// as the paper itself observes for Table 4).
func requireOrder(t *testing.T, tbl *Table) {
	t.Helper()
	get := tbl.Elapsed
	if !(get(PathBase) <= get(PathVINO)) {
		t.Errorf("base %0.1f > vino %0.1f", get(PathBase), get(PathVINO))
	}
	if !(get(PathVINO) < get(PathNull)) {
		t.Errorf("vino %0.1f >= null %0.1f (transaction cost missing)", get(PathVINO), get(PathNull))
	}
	if !(get(PathNull) < get(PathUnsafe)) {
		t.Errorf("null %0.1f >= unsafe %0.1f (graft function cost missing)", get(PathNull), get(PathUnsafe))
	}
	if !(get(PathUnsafe) <= get(PathSafe)) {
		t.Errorf("unsafe %0.1f > safe %0.1f (SFI made code faster?)", get(PathUnsafe), get(PathSafe))
	}
}

func TestTable3ReadAheadShape(t *testing.T) {
	tbl, err := ReadAheadTable()
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tbl.String())
	requireOrder(t, tbl)
	// Base ~0.5 us, VINO ~1.5 us: indirection ~1 us.
	if b := tbl.Elapsed(PathBase); b < 0.3 || b > 1.0 {
		t.Errorf("base = %.2f us, want ~0.5", b)
	}
	if ind := tbl.Elapsed(PathVINO) - tbl.Elapsed(PathBase); ind < 0.5 || ind > 2 {
		t.Errorf("indirection = %.2f us, want ~1", ind)
	}
	// Transaction begin+commit dominates the null path (paper: 64 of
	// 65.5 us incremental).
	txnInc := tbl.Elapsed(PathNull) - tbl.Elapsed(PathVINO)
	if txnInc < 50 || txnInc > 85 {
		t.Errorf("transaction increment = %.1f us, want ~64", txnInc)
	}
	// Lock + graft function between null and unsafe (paper: 37 us,
	// mostly the 33 us lock).
	lockInc := tbl.Elapsed(PathUnsafe) - tbl.Elapsed(PathNull)
	if lockInc < 30 || lockInc > 70 {
		t.Errorf("lock+graft increment = %.1f us, want ~37-55", lockInc)
	}
	// MiSFIT overhead on this control-light graft is small (paper: 3 us).
	sfiInc := tbl.Elapsed(PathSafe) - tbl.Elapsed(PathUnsafe)
	if sfiInc < 0 || sfiInc > 10 {
		t.Errorf("SFI increment = %.1f us, want small (~3)", sfiInc)
	}
	// The headline: total graft overhead is large relative to the 0.5 us
	// base decision but bounded (~2 orders of magnitude, as the paper's
	// 107/0.5).
	ratio := tbl.Elapsed(PathSafe) / tbl.Elapsed(PathBase)
	if ratio < 50 || ratio > 500 {
		t.Errorf("safe/base = %.0fx, paper has ~214x", ratio)
	}
}

func TestTable4PageEvictionShape(t *testing.T) {
	tbl, err := PageEvictionTable()
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tbl.String())
	requireOrder(t, tbl)
	// Base ~39 us by construction of the cost model.
	if b := tbl.Elapsed(PathBase); math.Abs(b-39) > 3 {
		t.Errorf("base = %.1f us, want ~39", b)
	}
	// The graft function (candidate scan) is the dominant increment
	// between null and unsafe, an order of magnitude over base (paper:
	// 199 us increment, 329 total vs 39 base).
	scanInc := tbl.Elapsed(PathUnsafe) - tbl.Elapsed(PathNull)
	if scanInc < 100 {
		t.Errorf("graft-scan increment = %.1f us, want >100 (paper 199)", scanInc)
	}
	if tbl.Elapsed(PathUnsafe) < 5*tbl.Elapsed(PathBase) {
		t.Errorf("unsafe %.1f not an order of magnitude over base %.1f", tbl.Elapsed(PathUnsafe), tbl.Elapsed(PathBase))
	}
	// MiSFIT overhead noticeable but not dominant (paper: 26 us on 329).
	sfiInc := tbl.Elapsed(PathSafe) - tbl.Elapsed(PathUnsafe)
	if sfiInc <= 0 || sfiInc > 0.8*tbl.Elapsed(PathUnsafe) {
		t.Errorf("SFI increment = %.1f us out of line", sfiInc)
	}
}

func TestTable5SchedulingShape(t *testing.T) {
	tbl, err := SchedulingTable()
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tbl.String())
	requireOrder(t, tbl)
	// Base = two 27 us switches.
	if b := tbl.Elapsed(PathBase); math.Abs(b-54) > 2 {
		t.Errorf("base = %.1f us, want ~54", b)
	}
	// Paper's headline: the fixed transaction+lock costs sum to roughly
	// twice the process-switch cost.
	txnPlusLock := (tbl.Elapsed(PathNull) - tbl.Elapsed(PathVINO)) +
		33 // lock acquire inside the scan graft
	if txnPlusLock < 1.2*54 || txnPlusLock > 2.8*54 {
		t.Errorf("txn+lock = %.1f us, want ~2x the 54 us switch pair", txnPlusLock)
	}
	// Safe path is a small multiple of a timeslice: ~2%% of 10 ms.
	if s := tbl.Elapsed(PathSafe); s/10000 > 0.05 {
		t.Errorf("safe path = %.1f us, more than 5%% of a 10 ms timeslice", s)
	}
}

func TestTable6EncryptionShape(t *testing.T) {
	tbl, err := EncryptionTable()
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tbl.String())
	requireOrder(t, tbl)
	// VINO == base (indirection undetectable on a 8 KB copy).
	if d := tbl.Elapsed(PathVINO) - tbl.Elapsed(PathBase); d > 2 {
		t.Errorf("indirection on stream path = %.2f us, want ~0", d)
	}
	// The SFI worst case: MiSFIT multiplies the graft function cost.
	// Paper: unsafe graft fn 166 us -> safe 353 us (2.1x). Isolate the
	// graft function by subtracting the null path's fixed costs (null
	// includes the kernel copy the graft replaces, so compare against
	// the txn-only baseline: null - bcopy).
	txnOnly := tbl.Elapsed(PathNull) - tbl.Elapsed(PathBase)
	unsafeFn := tbl.Elapsed(PathUnsafe) - txnOnly
	safeFn := tbl.Elapsed(PathSafe) - txnOnly
	ratio := safeFn / unsafeFn
	if ratio < 1.5 || ratio > 3.0 {
		t.Errorf("SFI ratio on store-dense graft = %.2f, want ~2 (paper 2.1)", ratio)
	}
	// And this graft's SFI overhead exceeds 50%% of the whole safe path —
	// the "worst case" claim.
	if sfiInc := tbl.Elapsed(PathSafe) - tbl.Elapsed(PathUnsafe); sfiInc < 0.3*tbl.Elapsed(PathUnsafe) {
		t.Errorf("SFI increment %.1f us too small for the worst case", sfiInc)
	}
}

func TestTable7AbortShape(t *testing.T) {
	tbl, err := BuildAbortTable()
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tbl.String())
	for _, r := range tbl.Rows {
		// Abort overheads in the paper's 32-38 us band for the null
		// case (ours is the fixed 35 us plus undo/lock remnants).
		if r.NullAbortUS < 30 || r.NullAbortUS > 45 {
			t.Errorf("%s null abort = %.1f us, want 30-45", r.Graft, r.NullAbortUS)
		}
		if r.FullAbortUS < r.NullAbortUS-1 {
			t.Errorf("%s full abort %.1f < null abort %.1f", r.Graft, r.FullAbortUS, r.NullAbortUS)
		}
		// "the full abort cost is only 0%% to 40%% more than the null
		// abort cost" — allow a little headroom.
		if r.FullAbortUS > 1.6*r.NullAbortUS {
			t.Errorf("%s full abort %.1f more than 60%% over null %.1f", r.Graft, r.FullAbortUS, r.NullAbortUS)
		}
	}
	// Encryption's aborts are equal: no locks, no undo.
	for _, r := range tbl.Rows {
		if r.Graft == "Encryption" && math.Abs(r.FullAbortUS-r.NullAbortUS) > 1 {
			t.Errorf("encryption aborts differ: %.1f vs %.1f", r.NullAbortUS, r.FullAbortUS)
		}
	}
}

func TestAbortCostSweepMatchesModel(t *testing.T) {
	pts, err := AbortCostSweep(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) < 9 {
		t.Fatalf("sweep produced %d points", len(pts))
	}
	for _, p := range pts {
		if math.Abs(p.MeasUS-p.ModelUS) > 0.15*p.ModelUS+1 {
			t.Errorf("L=%d U=%d: measured %.1f us vs model %.1f us", p.Locks, p.Undos, p.MeasUS, p.ModelUS)
		}
	}
	// The per-lock slope: compare L=8 against L=0 at U=0.
	var l0, l8 float64
	for _, p := range pts {
		if p.Undos == 0 && p.Locks == 0 {
			l0 = p.MeasUS
		}
		if p.Undos == 0 && p.Locks == 8 {
			l8 = p.MeasUS
		}
	}
	slope := (l8 - l0) / 8
	if math.Abs(slope-10) > 1.5 {
		t.Errorf("per-lock abort slope = %.2f us, want ~10 (paper §4.5)", slope)
	}
}

func TestLockManagerAblation(t *testing.T) {
	r, err := LockManagerAblation(500)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + r.String())
	penalty := r.PolicyPathUS - r.FastPathUS
	// One policy call (grantable) per uncontended acquire at 35 cycles =
	// 0.292 us at 120 MHz.
	if penalty < 0.15 || penalty > 0.8 {
		t.Errorf("indirection penalty = %.3f us, want ~0.3", penalty)
	}
	if r.PolicyCalls == 0 {
		t.Error("policy path made no policy calls")
	}
}

func TestSFIDensitySweepMonotonic(t *testing.T) {
	pts, err := SFIDensitySweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) < 4 {
		t.Fatalf("sweep produced %d points", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Ratio < pts[i-1].Ratio-0.01 {
			t.Errorf("SFI overhead ratio not monotonic in density: %+v", pts)
			break
		}
	}
	if pts[0].Ratio > 1.1 {
		t.Errorf("zero-memory graft pays %.2fx SFI overhead", pts[0].Ratio)
	}
	last := pts[len(pts)-1]
	if last.Ratio < 1.3 {
		t.Errorf("dense graft pays only %.2fx SFI overhead", last.Ratio)
	}
}

func TestEncryptionCorrectness(t *testing.T) {
	if err := EncryptionCorrectness(); err != nil {
		t.Fatal(err)
	}
}

// TestMisfitOptimizerAblation: static discharge eliminates SFI overhead
// on constant-base grafts and leaves dynamic-address grafts protected.
func TestMisfitOptimizerAblation(t *testing.T) {
	pts, err := MisfitOptimizerAblation()
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + FormatOptAblation(pts))
	for _, p := range pts {
		switch p.Graft {
		case "read-ahead-style":
			if p.Discharged == 0 {
				t.Error("constant-base graft had nothing discharged")
			}
			if p.OptUS > p.UnsafeUS*1.01 {
				t.Errorf("optimized %0.1f us should match unsafe %0.1f us", p.OptUS, p.UnsafeUS)
			}
			if p.NaiveUS <= p.OptUS {
				t.Errorf("naive %0.1f us not slower than optimized %0.1f us", p.NaiveUS, p.OptUS)
			}
		case "encryption":
			if p.Discharged != 0 {
				t.Errorf("pointer-chasing graft discharged %d accesses", p.Discharged)
			}
			if p.OptUS < p.NaiveUS*0.99 {
				t.Errorf("encryption optimized %0.1f us below naive %0.1f us without discharges", p.OptUS, p.NaiveUS)
			}
		}
	}
}

// TestTimeoutSweepShape: the §4.5 tuning trade-off. Short time-outs
// abort innocent holders; long time-outs let the hog complete its
// monopolising holds and depress worker throughput.
func TestTimeoutSweepShape(t *testing.T) {
	// Note the long point: a time-out must exceed the hog's hold PLUS
	// worst-case queueing (300 + ~30 ms) to never fire — a waiter's
	// time-out aborts whoever holds the lock when it expires, even an
	// innocent holder who inherited the queue (the paper: "we abort the
	// transaction even if the lock was acquired before the graft was
	// invoked"). This is exactly why the paper says intervals must be
	// determined experimentally per resource type.
	pts, err := TimeoutSweep([]int{10, 40, 640})
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + FormatTimeoutSweep(pts))
	short, mid, long := pts[0], pts[1], pts[2]
	if short.WorkerAborts == 0 {
		t.Error("10 ms timeout (below the 15 ms hold) aborted no innocent workers")
	}
	if mid.WorkerAborts > short.WorkerAborts {
		t.Errorf("worker aborts did not fall with a longer timeout: %d -> %d", short.WorkerAborts, mid.WorkerAborts)
	}
	if long.WorkerAborts != 0 {
		t.Errorf("640 ms timeout aborted %d innocent workers", long.WorkerAborts)
	}
	if mid.HogAborts == 0 {
		t.Error("40 ms timeout never aborted the 300 ms hog")
	}
	if long.HogCompleted == 0 {
		t.Error("640 ms timeout should let the hog complete")
	}
	if mid.WorkerOps <= long.WorkerOps {
		t.Errorf("worker throughput should fall when the hog survives: mid %d <= long %d", mid.WorkerOps, long.WorkerOps)
	}
	if short.WorkerOps >= mid.WorkerOps {
		t.Errorf("throughput should peak at the interior point: short %d >= mid %d", short.WorkerOps, mid.WorkerOps)
	}
}

// TestTxnProtectionAblation is the thesis in one assertion: without the
// transaction wrapper a failing graft leaves corrupted state and a held
// lock behind; with it, neither survives.
func TestTxnProtectionAblation(t *testing.T) {
	r, err := TxnProtectionAblation()
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + r.String())
	if r.ProtectedCorrupted {
		t.Error("transaction failed to undo the graft's mutation")
	}
	if !r.ProtectedLockFreed {
		t.Error("transaction failed to release the graft's lock")
	}
	if !r.UnprotectedCorrupted {
		t.Error("ablated run should demonstrate the corruption")
	}
	if r.UnprotectedLockFreed {
		t.Error("ablated run should leak the lock")
	}
}
