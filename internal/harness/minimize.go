package harness

import (
	"fmt"
	"strings"

	"vino/internal/fault"
)

// The fault-plan minimizer: delta-debugging for chaos failures. A
// failing seed's plan often carries dozens of rules of which only a few
// matter; Minimize replays the run with rules deleted one at a time and
// keeps every deletion that preserves the failure signature, producing
// a minimal standalone reproducer for vinosim -faultfile.

// Signature reduces a chaos report to the identity of its failure: the
// contained "kernel-panic class@site" of a NoRecover run, or the first
// invariant violation with digits normalized (counts and virtual times
// shift as the plan shrinks; the *shape* of the violation must not).
// A surviving report has signature "".
func Signature(r *ChaosReport) string {
	if r.FatalPanic != "" {
		return "kernel-panic " + r.FatalPanic
	}
	if len(r.Violations) > 0 {
		return normalizeDigits(r.Violations[0])
	}
	if !r.FollowupOK {
		return "follow-up failed"
	}
	return ""
}

// normalizeDigits replaces every digit run with '#'.
func normalizeDigits(s string) string {
	var b strings.Builder
	inRun := false
	for _, r := range s {
		if r >= '0' && r <= '9' {
			if !inRun {
				b.WriteByte('#')
				inRun = true
			}
			continue
		}
		inRun = false
		b.WriteRune(r)
	}
	return b.String()
}

// MinimizeResult is the outcome of a minimization.
type MinimizeResult struct {
	// Plan is the minimal plan: every remaining rule is necessary (its
	// lone deletion loses the signature).
	Plan *fault.Plan
	// Signature is the failure identity every kept candidate reproduced.
	Signature string
	// Runs counts chaos replays performed (including the baseline).
	Runs int
	// Removed counts rules deleted from the original plan.
	Removed int
}

// Minimize delta-debugs the failing run's fault plan. The config must
// fail as given (non-empty Signature) — typically a crash run replayed
// under NoRecover so the first contained panic is the failure — and the
// result's plan is strictly smaller unless every rule is load-bearing.
//
// The reduction is greedy ddmin at granularity one: each pass tries
// deleting every rule in turn against the current best plan, keeps the
// first deletion that preserves the signature, and restarts; it stops
// when a full pass removes nothing. Every replay is a full deterministic
// chaos run, so the minimal plan is exact, not probabilistic.
func Minimize(cfg ChaosConfig) (*MinimizeResult, error) {
	cfg = cfg.withDefaults()
	base, err := RunChaos(cfg)
	if err != nil {
		return nil, fmt.Errorf("minimize baseline: %w", err)
	}
	sig := Signature(base)
	if sig == "" {
		return nil, fmt.Errorf("minimize: run with seed %d does not fail", base.Plan.Seed)
	}

	best := base.Plan
	res := &MinimizeResult{Signature: sig, Runs: 1}
	for {
		shrunk := false
		for i := range best.Rules {
			cand := &fault.Plan{Seed: best.Seed, Rules: make([]fault.Rule, 0, len(best.Rules)-1)}
			cand.Rules = append(cand.Rules, best.Rules[:i]...)
			cand.Rules = append(cand.Rules, best.Rules[i+1:]...)
			ccfg := cfg
			ccfg.Plan = cand
			rep, err := RunChaos(ccfg)
			res.Runs++
			if err != nil {
				// A candidate that breaks the harness itself (not the
				// kernel) is simply not a reproducer; keep the rule.
				continue
			}
			if Signature(rep) == sig {
				best = cand
				res.Removed++
				shrunk = true
				break
			}
		}
		if !shrunk {
			break
		}
	}
	res.Plan = best
	return res, nil
}
