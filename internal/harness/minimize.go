package harness

import (
	"fmt"

	"vino/internal/fault"
)

// The fault-plan minimizer: delta-debugging for chaos failures. A
// failing seed's plan often carries dozens of rules of which only a few
// matter; Minimize replays the run with rules deleted one at a time and
// keeps every deletion that preserves the failure signature, producing
// a minimal standalone reproducer for vinosim -faultfile.

// MinimizeResult is the outcome of a minimization.
type MinimizeResult struct {
	// Plan is the minimal plan: every remaining rule is necessary (its
	// lone deletion loses the signature).
	Plan *fault.Plan
	// Signature is the failure identity every kept candidate reproduced.
	Signature string
	// Runs counts chaos replays performed (including the baseline).
	Runs int
	// Removed counts rules deleted from the original plan.
	Removed int
}

// Minimize delta-debugs the failing run's fault plan. The config must
// fail as given (non-empty Signature) — typically a crash run replayed
// under NoRecover so the first contained panic is the failure — and the
// result's plan is strictly smaller unless every rule is load-bearing.
//
// The reduction is ddmin: halving passes first delete whole chunks of
// rules (size n/2, then n/4, ... down to pairs), so a plan whose failure
// needs only a few rules sheds most of its bulk in O(log n) replays;
// a final greedy pass at granularity one then tries each remaining rule
// in turn until a full pass removes nothing, which makes the result
// exact — every surviving rule's lone deletion loses the signature.
// Every replay is a full deterministic chaos run, so the minimal plan
// is exact, not probabilistic.
func Minimize(cfg ChaosConfig) (*MinimizeResult, error) {
	return minimizeWith(cfg, true, Signature, true)
}

// MinimizeTo runs the same ddmin reduction preserving an arbitrary
// signature function instead of the failure signature — the campaign
// driver's shrinker, which distills every novel-NormalizedSignature
// plan whether or not the run failed. sigOf must be deterministic; the
// baseline signature it yields (which may describe a surviving run) is
// what every kept deletion must reproduce.
func MinimizeTo(cfg ChaosConfig, sigOf func(*ChaosReport) string) (*MinimizeResult, error) {
	return minimizeWith(cfg, true, sigOf, false)
}

// deleteRange returns plan with n rules removed starting at start.
func deleteRange(p *fault.Plan, start, n int) *fault.Plan {
	cand := &fault.Plan{Seed: p.Seed, Rules: make([]fault.Rule, 0, len(p.Rules)-n)}
	cand.Rules = append(cand.Rules, p.Rules[:start]...)
	cand.Rules = append(cand.Rules, p.Rules[start+n:]...)
	return cand
}

// minimize is the engine behind Minimize at the historical signature,
// kept so tests can compare chunked vs plain replay counts.
func minimize(cfg ChaosConfig, chunked bool) (*MinimizeResult, error) {
	return minimizeWith(cfg, chunked, Signature, true)
}

// minimizeWith is the ddmin engine. chunked enables the halving passes;
// false replays the plain granularity-one reduction (kept so a test can
// compare replay counts — both modes reach the same fixpoint because
// the one-rule pass always runs last). sigOf defines the identity to
// preserve; requireFailure additionally rejects baselines whose
// Signature is empty (the classic reproducer-minimizer contract).
func minimizeWith(cfg ChaosConfig, chunked bool, sigOf func(*ChaosReport) string, requireFailure bool) (*MinimizeResult, error) {
	cfg = cfg.withDefaults()
	base, err := RunChaos(cfg)
	if err != nil {
		return nil, fmt.Errorf("minimize baseline: %w", err)
	}
	sig := sigOf(base)
	if requireFailure && Signature(base) == "" {
		return nil, fmt.Errorf("minimize: run with seed %d does not fail", base.Plan.Seed)
	}

	best := base.Plan
	res := &MinimizeResult{Signature: sig, Runs: 1}
	// reproduces replays a candidate plan and reports whether the
	// failure signature survives. A candidate that breaks the harness
	// itself (not the kernel) is simply not a reproducer.
	reproduces := func(cand *fault.Plan) bool {
		ccfg := cfg
		ccfg.Plan = cand
		rep, err := RunChaos(ccfg)
		res.Runs++
		return err == nil && sigOf(rep) == sig
	}

	if chunked {
		for size := len(best.Rules) / 2; size >= 2; size /= 2 {
			for start := 0; start < len(best.Rules); {
				n := size
				if start+n > len(best.Rules) {
					n = len(best.Rules) - start
				}
				if cand := deleteRange(best, start, n); reproduces(cand) {
					best = cand // retry the same offset against the shrunk plan
				} else {
					start += n
				}
			}
		}
	}

	for {
		shrunk := false
		for i := range best.Rules {
			if cand := deleteRange(best, i, 1); reproduces(cand) {
				best = cand
				shrunk = true
				break
			}
		}
		if !shrunk {
			break
		}
	}
	res.Plan = best
	res.Removed = len(base.Plan.Rules) - len(best.Rules)
	return res, nil
}
