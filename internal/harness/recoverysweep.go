package harness

import (
	"fmt"
	"strings"
	"time"

	"vino/internal/crash"
	vfs "vino/internal/fs"
	"vino/internal/graft"
	"vino/internal/kernel"
)

// The recovery-cost sweep: does scoping recovery to the offending
// graft's rollback domain actually make recovery cost proportional to
// the offender's footprint, not the kernel population? Each grid point
// builds a kernel hosting N graft domains — N owner keys, each with its
// own file, every block owner-stamped through the real write path —
// checkpoints the lot, re-dirties every domain, and measures one
// recovery under each scope: the whole-kernel restore (every domain's
// dirt rewinds) against the domain restore of a single offender (only
// its stamped blocks revert). Whole-kernel cost should track the
// population; domain cost should track one domain.

// RecoveryCostPoint is one grid point of the sweep.
type RecoveryCostPoint struct {
	// Grafts is the number of installed graft domains, each dirtying
	// BlocksPerGraft blocks of its own file between checkpoints.
	Grafts         int
	BlocksPerGraft int
	// KernelUS and GraftUS are mean wall-clock recovery times
	// (microseconds) for one whole-kernel restore and one domain-scoped
	// restore of a single offender.
	KernelUS, GraftUS float64
	// KernelBytes is the file-system payload the whole-kernel restore
	// rewinds (the full image); GraftBytes is the payload the domain
	// restore reverts (the offender's stamped blocks).
	KernelBytes, GraftBytes int64
	// Speedup is KernelUS / GraftUS.
	Speedup float64
}

// recoveryCostEnv is one measurement kernel: ngrafts owner domains,
// each owning one file of nblocks blocks, all written once under the
// owner's stamp, checkpointed, ready for re-dirty rounds.
type recoveryCostEnv struct {
	k       *kernel.Kernel
	fsys    *vfs.FS
	ngrafts int
	nblocks int
}

func newRecoveryCostEnv(ngrafts, nblocks int) (*recoveryCostEnv, error) {
	k := kernel.New(kernel.Config{
		Timeslice:       time.Hour,
		CheckpointEvery: time.Hour, // explicit Checkpoint() only
	})
	e := &recoveryCostEnv{k: k, ngrafts: ngrafts, nblocks: nblocks}
	e.fsys = vfs.New(k, vfs.NewDisk(vfs.FujitsuM2694ESA()), ngrafts*nblocks+64)
	for i := 0; i < ngrafts; i++ {
		e.fsys.Create(e.fileName(i), int64(nblocks)*vfs.BlockSize, graft.Root, false)
	}
	if err := e.dirtyDomains(ngrafts); err != nil {
		return nil, err
	}
	e.k.Checkpoint() // the base image holds every domain's state
	return e, nil
}

func (e *recoveryCostEnv) fileName(i int) string { return fmt.Sprintf("dom-%d", i) }
func (e *recoveryCostEnv) ownerKey(i int) string { return fmt.Sprintf("g%d", i) }

// dirtyDomains rewrites every block of the first n domains' files, each
// under its domain's owner stamp, through the real write path — so the
// dirty generations and owner stamps fire exactly as they do when a
// graft dispatch wraps the write.
func (e *recoveryCostEnv) dirtyDomains(n int) error {
	var fail error
	for i := 0; i < n; i++ {
		i := i
		e.k.SpawnProcess(fmt.Sprintf("rec-writer/%d", i), graft.Root, func(p *kernel.Process) {
			t := p.Thread
			prev := crash.SetOwner(t, e.ownerKey(i))
			defer crash.SetOwner(t, prev)
			of, err := e.fsys.Open(t, e.fileName(i))
			if err != nil {
				fail = err
				return
			}
			defer of.Close()
			buf := make([]byte, vfs.BlockSize)
			for b := 0; b < e.nblocks; b++ {
				if _, err := of.WriteAt(t, buf, int64(b)*vfs.BlockSize); err != nil {
					fail = err
					return
				}
			}
		})
	}
	if err := e.k.Run(); err != nil {
		return err
	}
	return fail
}

// measureRecoveryCost runs `rounds` re-dirty+recover rounds at one
// grid point and returns the mean recovery times and rewound payloads
// for both scopes. Each round dirties every domain, then restores the
// whole kernel (every domain rewinds) and, on a freshly re-dirtied
// image, domain-restores offender g0 alone.
func measureRecoveryCost(ngrafts, nblocks int) (p RecoveryCostPoint, err error) {
	p = RecoveryCostPoint{Grafts: ngrafts, BlocksPerGraft: nblocks}

	// Whole-kernel scope: Restore() rebuilds every registered subsystem
	// from the checkpoint image, so the payload is the full snapshot.
	e, err := newRecoveryCostEnv(ngrafts, nblocks)
	if err != nil {
		return p, err
	}
	p.KernelBytes = vfs.SnapshotBytes(e.fsys.CrashSnapshot())
	const rounds = 5
	var total time.Duration
	for r := 0; r < rounds; r++ {
		if err := e.dirtyDomains(ngrafts); err != nil {
			return p, err
		}
		start := time.Now()
		if _, ok := e.k.Crash.Restore(); !ok {
			return p, fmt.Errorf("recovery sweep: no checkpoint to restore (grafts=%d)", ngrafts)
		}
		total += time.Since(start)
	}
	p.KernelUS = float64(total) / rounds / float64(time.Microsecond)

	// Domain scope: a fresh environment (the whole-kernel restores above
	// reset the scheduler), same dirt, restore only offender g0.
	e, err = newRecoveryCostEnv(ngrafts, nblocks)
	if err != nil {
		return p, err
	}
	total = 0
	for r := 0; r < rounds; r++ {
		if err := e.dirtyDomains(ngrafts); err != nil {
			return p, err
		}
		start := time.Now()
		_, bytes, ok := e.k.Crash.RestoreDomain(e.ownerKey(0))
		if !ok {
			return p, fmt.Errorf("recovery sweep: no checkpoint for domain restore (grafts=%d)", ngrafts)
		}
		total += time.Since(start)
		p.GraftBytes = bytes
	}
	p.GraftUS = float64(total) / rounds / float64(time.Microsecond)
	if p.GraftUS > 0 {
		p.Speedup = p.KernelUS / p.GraftUS
	}
	return p, nil
}

// RecoveryCostSweep measures recovery cost across graft populations
// under both scopes. Nil takes the default population grid; each domain
// dirties 128 blocks between checkpoints.
func RecoveryCostSweep(grafts []int) ([]RecoveryCostPoint, error) {
	if len(grafts) == 0 {
		grafts = []int{1, 4, 16}
	}
	const blocksPerGraft = 128
	var out []RecoveryCostPoint
	for _, n := range grafts {
		p, err := measureRecoveryCost(n, blocksPerGraft)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// FormatRecoveryCostSweep renders the grid. Recovery times are host
// wall-clock (this is a cost measurement, like a benchmark — not part
// of the deterministic virtual-time artifact).
func FormatRecoveryCostSweep(pts []RecoveryCostPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Recovery cost: whole-kernel restore vs per-graft rollback domain\n")
	fmt.Fprintf(&b, "%8s %10s %12s %12s %14s %14s %9s\n",
		"grafts", "blk/graft", "kernel (us)", "graft (us)", "kernel (bytes)", "graft (bytes)", "speedup")
	for _, p := range pts {
		fmt.Fprintf(&b, "%8d %10d %12.1f %12.1f %14d %14d %8.1fx\n",
			p.Grafts, p.BlocksPerGraft, p.KernelUS, p.GraftUS, p.KernelBytes, p.GraftBytes, p.Speedup)
	}
	return b.String()
}
