package harness

import (
	"testing"

	"vino/internal/fault"
	"vino/internal/graft"
	"vino/internal/kernel"
	"vino/internal/netstk"
)

// TestChaosSMPReplay extends the headline determinism claim to
// multi-CPU runs: at every CPU count, equal seeds produce byte-identical
// flight-recorder dumps and the full survival audit passes.
func TestChaosSMPReplay(t *testing.T) {
	for _, ncpu := range []int{1, 4} {
		cfg := ChaosConfig{Seed: 5, Iterations: 24, NCPU: ncpu}
		a, err := RunChaos(cfg)
		if err != nil {
			t.Fatalf("ncpu=%d run A: %v", ncpu, err)
		}
		b, err := RunChaos(cfg)
		if err != nil {
			t.Fatalf("ncpu=%d run B: %v", ncpu, err)
		}
		if a.TraceDump != b.TraceDump {
			t.Fatalf("ncpu=%d: same seed produced different traces", ncpu)
		}
		if a.Summary() != b.Summary() {
			t.Fatalf("ncpu=%d: same seed produced different summaries", ncpu)
		}
		if !a.Survived() {
			t.Fatalf("ncpu=%d: kernel did not survive: %v (follow-up ok: %v)",
				ncpu, a.Violations, a.FollowupOK)
		}
		if a.TraceTotal == 0 {
			t.Fatalf("ncpu=%d: no trace events recorded", ncpu)
		}
	}
}

// TestChaosSMPSchedulesDiffer sanity-checks that NCPU actually changes
// the schedule: the same seed at 1 and 4 CPUs produces different traces
// (if it did not, the refactor would be a no-op).
func TestChaosSMPSchedulesDiffer(t *testing.T) {
	one, err := RunChaos(ChaosConfig{Seed: 5, Iterations: 24, NCPU: 1})
	if err != nil {
		t.Fatal(err)
	}
	four, err := RunChaos(ChaosConfig{Seed: 5, Iterations: 24, NCPU: 4})
	if err != nil {
		t.Fatal(err)
	}
	if one.TraceDump == four.TraceDump {
		t.Fatal("ncpu=1 and ncpu=4 produced identical traces")
	}
}

// TestChaosExtended runs the widened fault surface: the netio class
// joins the plan and the pager phase drives file-backed memory objects
// under injection. The kernel must survive at 1 and 4 CPUs, and the
// extended schedule must actually differ from the classic one.
func TestChaosExtended(t *testing.T) {
	for _, ncpu := range []int{1, 4} {
		r, err := RunChaos(ChaosConfig{Seed: 3, Iterations: 24, NCPU: ncpu, Extended: true})
		if err != nil {
			t.Fatalf("ncpu=%d: %v", ncpu, err)
		}
		if !r.Survived() {
			t.Fatalf("ncpu=%d extended: kernel did not survive: %v (follow-up ok: %v)",
				ncpu, r.Violations, r.FollowupOK)
		}
	}
	classic, err := RunChaos(ChaosConfig{Seed: 3, Iterations: 24})
	if err != nil {
		t.Fatal(err)
	}
	extended, err := RunChaos(ChaosConfig{Seed: 3, Iterations: 24, Extended: true})
	if err != nil {
		t.Fatal(err)
	}
	if classic.TraceDump == extended.TraceDump {
		t.Fatal("extended run produced the classic trace: widened surface is inert")
	}
}

// TestChaosExtendedMidstreamFires proves the netio class reaches the
// wire under the extended surface: across a handful of seeds, at least
// one run must tear a connection down mid-stream and survive it.
func TestChaosExtendedMidstreamFires(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		r, err := RunChaos(ChaosConfig{Seed: seed, Iterations: 24, Extended: true})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !r.Survived() {
			t.Fatalf("seed %d: did not survive: %v", seed, r.Violations)
		}
		if r.Midstream > 0 {
			return
		}
	}
	t.Fatal("no seed in 1..8 produced a mid-stream connection fault")
}

// TestMidstreamTeardownAudit is the targeted unit test behind the
// chaos-level claim: a hand-built plan that fails every network read
// must tear the connection down on the handler's first read, abort the
// handler's transaction, leave an empty response, and balance the
// books — the teardown itself (a physical event) survives the abort.
func TestMidstreamTeardownAudit(t *testing.T) {
	plan := &fault.Plan{Seed: 1, Rules: []fault.Rule{
		{Class: fault.NetIO, EveryN: 1},
	}}
	k := kernel.New(kernel.Config{FaultPlan: plan})
	n := netstk.New(k)
	port := n.Listen("tcp", 7)
	const echoSrc = `
.name midstream-echo
.import net.read
.import net.write
.func main
main:
    addi r2, r10, 512
    movi r3, 128
    callk net.read
    jz r0, out
    mov r3, r0
    addi r2, r10, 512
    callk net.write
out:
    ret
`
	var conn *netstk.Conn
	var fail error
	k.SpawnProcess("midstream", graft.Root, func(p *kernel.Process) {
		if _, err := p.BuildAndInstall(port.Point().Name, echoSrc, graft.InstallOptions{}); err != nil {
			fail = err
			return
		}
		c, err := n.Connect(k.Sched, "tcp", 7, []byte("ping"))
		if err != nil {
			fail = err
			return
		}
		conn = c
		for w := 0; w < 30; w++ {
			p.Thread.Yield()
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fail != nil {
		t.Fatal(fail)
	}
	if !conn.Closed() {
		t.Fatal("mid-stream read fault did not tear the connection down")
	}
	if got := conn.Response(); len(got) != 0 {
		t.Fatalf("aborted handler left a partial response: %q", got)
	}
	st := n.Stats()
	if st.MidstreamFaults != 1 {
		t.Fatalf("MidstreamFaults = %d, want 1", st.MidstreamFaults)
	}
	if st.BytesOut != 0 {
		t.Fatalf("BytesOut = %d after abort, want 0", st.BytesOut)
	}
	tx := k.Txns.Stats()
	if tx.Aborts == 0 {
		t.Fatal("handler transaction did not abort")
	}
	if tx.Begins != tx.Commits+tx.Aborts {
		t.Fatalf("unbalanced transactions: %d begun, %d committed, %d aborted",
			tx.Begins, tx.Commits, tx.Aborts)
	}
	if out := k.Locks.Outstanding(); len(out) > 0 {
		t.Fatalf("leaked locks after teardown: %v", out)
	}
}

// TestSMPThroughputContention is the scaling claim behind
// BenchmarkSMPThroughput: independent compute scales near-linearly with
// CPUs while the lock-bound workload barely moves and reports real
// contended acquisitions.
func TestSMPThroughputContention(t *testing.T) {
	light1, err := SMPThroughput(1, 32, false)
	if err != nil {
		t.Fatal(err)
	}
	light4, err := SMPThroughput(4, 32, false)
	if err != nil {
		t.Fatal(err)
	}
	heavy1, err := SMPThroughput(1, 32, true)
	if err != nil {
		t.Fatal(err)
	}
	heavy4, err := SMPThroughput(4, 32, true)
	if err != nil {
		t.Fatal(err)
	}
	if light4.Throughput < 2.5*light1.Throughput {
		t.Fatalf("light workload did not scale: %f -> %f ops/s",
			light1.Throughput, light4.Throughput)
	}
	if heavy4.Throughput > 1.6*heavy1.Throughput {
		t.Fatalf("heavy workload scaled past the lock: %f -> %f ops/s",
			heavy1.Throughput, heavy4.Throughput)
	}
	if heavy4.LockWaits == 0 {
		t.Fatal("heavy workload reported no contended acquisitions")
	}
	// Replay: the throughput run is part of the deterministic surface.
	again, err := SMPThroughput(4, 32, true)
	if err != nil {
		t.Fatal(err)
	}
	if *again != *heavy4 {
		t.Fatalf("heavy ncpu=4 replay diverged: %+v != %+v", again, heavy4)
	}
}
