// Package harness implements the paper's measurement methodology
// (Table 2 / Figure 3): for each sample graft it constructs the six code
// paths —
//
//	Base    kernel path with all graft-support indirection removed
//	VINO    normal kernel path: indirection + return-value verification
//	Null    graft stubs + transaction begin/commit around a null graft
//	Unsafe  the full graft code, unprotected, plus lock overhead
//	Safe    the same graft processed by the SFI rewriter
//	Abort   the safe path ending in transaction abort instead of commit
//
// — and measures each in deterministic virtual time on the simulated
// 120 MHz kernel. Results are reported alongside the paper's measured
// values; the reproduction claim is about *shape* (ordering, which
// increments dominate, ratios), not absolute microseconds, since the
// substrate is a simulator calibrated to the paper's cost constants
// where the paper states them (transaction begin/commit, lock costs,
// function-call cost, disk latency) and derives the rest from its own
// instruction cost model.
package harness

import (
	"fmt"
	"strings"
	"time"

	"vino/internal/graft"
	"vino/internal/kernel"
	"vino/internal/sched"
	"vino/internal/sfi"
)

// Path names, in measurement order.
const (
	PathBase   = "Base path"
	PathVINO   = "VINO path"
	PathNull   = "Null path"
	PathUnsafe = "Unsafe path"
	PathSafe   = "Safe path"
	PathAbort  = "Abort path"
)

// PathOrder is the canonical row order of every table.
var PathOrder = []string{PathBase, PathVINO, PathNull, PathUnsafe, PathSafe, PathAbort}

// Row is one measured path.
type Row struct {
	Path      string
	ElapsedUS float64 // measured, virtual microseconds per operation
	PaperUS   float64 // the paper's reported elapsed time (0 if n/a)
}

// Table is one reproduced experiment table.
type Table struct {
	Number int
	Title  string
	Rows   []Row
	Notes  []string
}

// Incremental returns the measured overhead of row i over row i-1.
func (t *Table) Incremental(i int) float64 {
	if i == 0 {
		return 0
	}
	return t.Rows[i].ElapsedUS - t.Rows[i-1].ElapsedUS
}

// Elapsed returns the measured value for a named path.
func (t *Table) Elapsed(path string) float64 {
	for _, r := range t.Rows {
		if r.Path == path {
			return r.ElapsedUS
		}
	}
	return 0
}

// String renders the table in the paper's layout.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table %d. %s\n", t.Number, t.Title)
	fmt.Fprintf(&b, "%-14s %14s %14s %12s\n", "Path", "measured (us)", "increment", "paper (us)")
	for i, r := range t.Rows {
		inc := ""
		if i > 0 {
			inc = fmt.Sprintf("%+.1f", t.Incremental(i))
		}
		paper := ""
		if r.PaperUS != 0 {
			paper = fmt.Sprintf("%.1f", r.PaperUS)
		}
		fmt.Fprintf(&b, "%-14s %14.1f %14s %12s\n", r.Path, r.ElapsedUS, inc, paper)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	return b.String()
}

// Iterations per measured path. The paper ran each test 300–3000 times;
// virtual time is deterministic so fewer suffice, but we keep a healthy
// count to amortise warm-up effects (cold caches, queue growth).
const defaultIters = 200

// env is one measurement kernel.
type env struct {
	K *kernel.Kernel
}

// newEnv builds a kernel configured for measurement: paper-calibrated
// transaction costs, no context-switch charge (switches are measured
// explicitly where a table calls for them), a long timeslice so
// preemption does not perturb path timing, and the unsafe-graft backdoor
// enabled for the Unsafe path.
func newEnv() *env {
	k := kernel.New(kernel.Config{
		Timeslice:    time.Hour,
		UnsafeGrafts: true,
	})
	return &env{K: k}
}

// usPerOp converts a virtual duration for n ops to microseconds per op.
func usPerOp(d time.Duration, n int) float64 {
	return float64(d) / float64(n) / float64(time.Microsecond)
}

// measureOn runs body on a Root process thread and returns its result.
// body receives the thread and reports total virtual duration of the
// timed region.
func (e *env) measureOn(body func(t *sched.Thread) time.Duration) (time.Duration, error) {
	var out time.Duration
	e.K.SpawnProcess("harness", graft.Root, func(p *kernel.Process) {
		out = body(p.Thread)
	})
	if err := e.K.Run(); err != nil {
		return 0, err
	}
	return out, nil
}

// buildVariant compiles graft source according to the path being
// measured: rewritten+signed for Safe/Abort, raw for Unsafe.
func (e *env) buildVariant(src string, safe bool) (*sfi.Image, error) {
	if safe {
		img, _, err := sfi.BuildSafe(src, e.K.Signer)
		return img, err
	}
	return sfi.BuildUnsafe(src)
}

// install places a graft variant at a point, using the unsafe backdoor
// when the image is unprotected.
func (e *env) install(t *sched.Thread, point string, img *sfi.Image, opts graft.InstallOptions) (*graft.Installed, error) {
	if !img.Safe {
		opts.AllowUnsafe = true
	}
	return e.K.Grafts.Install(t, point, img, opts)
}

// timed accumulates the virtual time of op over iters iterations,
// allowing per-iteration setup outside the timed region.
func timed(k *kernel.Kernel, iters int, setup func(i int), op func()) time.Duration {
	var total time.Duration
	for i := 0; i < iters; i++ {
		if setup != nil {
			setup(i)
		}
		t0 := k.Clock.Now()
		op()
		total += k.Clock.Now() - t0
	}
	return total
}

// nullGraftSrc is the minimal graft: accept the argument, do nothing.
const nullGraftSrc = `
.name null
.func main
main:
    mov r0, r1
    ret
`

// nullAbortSrc is the null graft that traps immediately: the Table 7
// "null abort" case.
const nullAbortSrc = `
.name null-abort
.func main
main:
    movi r2, 0
    div r0, r2, r2
    ret
`

// trapTail is the instruction sequence each experiment's Abort-path
// graft variant executes after doing its full work: a division trap,
// standing in for the paper's forced abort "at the end of the graft
// execution in the safe path".
const trapTail = `
    movi r9, 0
    div r0, r0, r9
    ret
`
