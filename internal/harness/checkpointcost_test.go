package harness

import (
	"strings"
	"testing"

	vfs "vino/internal/fs"
)

// The sweep's byte columns are deterministic (they count captured block
// payload); the time columns are host wall-clock and only sanity-checked
// loosely here — BenchmarkCheckpoint is the precise timing artifact.
func TestCheckpointCostSweepScalesWithDirtyFraction(t *testing.T) {
	pts, err := CheckpointCostSweep([]int{1024}, []int{1, 10, 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("got %d points, want 3", len(pts))
	}
	byPct := map[int]CheckpointCostPoint{}
	for _, p := range pts {
		byPct[p.DirtyPct] = p
	}
	full := int64(1024) * vfs.BlockSize
	for pct, p := range byPct {
		if p.FullBytes != full {
			t.Errorf("%d%% dirty: full capture carries %d bytes, want the whole state %d", pct, p.FullBytes, full)
		}
		stride := dirtyStride(pct)
		want := int64((1024+stride-1)/stride) * vfs.BlockSize
		if p.IncrBytes != want {
			t.Errorf("%d%% dirty: incremental capture carries %d bytes, want %d", pct, p.IncrBytes, want)
		}
	}
	// O(dirty), not O(state): the 1% capture must be far smaller than
	// the 100% capture, and 10% at least 5x smaller than full.
	if 5*byPct[10].IncrBytes > byPct[10].FullBytes {
		t.Errorf("10%% dirty: incremental bytes %d not 5x below full %d",
			byPct[10].IncrBytes, byPct[10].FullBytes)
	}
	if byPct[1].IncrUS >= byPct[100].IncrUS && byPct[100].IncrUS > 0 {
		t.Logf("note: 1%% capture (%.1fus) not cheaper than 100%% (%.1fus) on this host",
			byPct[1].IncrUS, byPct[100].IncrUS)
	}
	out := FormatCheckpointCostSweep(pts)
	for _, col := range []string{"blocks", "dirty%", "full (us)", "incr (bytes)", "speedup"} {
		if !strings.Contains(out, col) {
			t.Errorf("sweep table missing column %q:\n%s", col, out)
		}
	}
}
