package harness

import (
	"strings"
	"testing"
)

// TestSFIOverheadSweep pins the sweep's ordering claims: checks cost
// cycles (every sandboxed variant is dearer than unsafe), compartment
// region checks cost more than the flat mask (they prove bounds and
// permissions, not just masking), and static discharge recovers cost
// for both pipelines — all the way back to the unsafe baseline for this
// fully provable workload.
func TestSFIOverheadSweep(t *testing.T) {
	res, err := SFIOverheadSweep(500)
	if err != nil {
		t.Fatal(err)
	}
	pt := map[string]SFISweepPoint{}
	for _, p := range res.Points {
		pt[p.Variant] = p
	}
	if len(pt) != 5 {
		t.Fatalf("points = %d, want 5 variants", len(res.Points))
	}
	unsafe, sandbox, sandboxOpt := pt["unsafe"], pt["sandbox"], pt["sandbox+discharge"]
	comp, compOpt := pt["compartment"], pt["compartment+discharge"]
	if !(unsafe.Cycles < sandbox.Cycles) {
		t.Errorf("unsafe (%d) not cheaper than sandbox (%d)", unsafe.Cycles, sandbox.Cycles)
	}
	if !(sandbox.Cycles < comp.Cycles) {
		t.Errorf("sandbox (%d) not cheaper than compartment (%d): region checks must cost more than masking", sandbox.Cycles, comp.Cycles)
	}
	if !(sandboxOpt.Cycles < sandbox.Cycles) {
		t.Errorf("discharge did not pay for sandbox: %d vs %d", sandboxOpt.Cycles, sandbox.Cycles)
	}
	if !(compOpt.Cycles < comp.Cycles) {
		t.Errorf("discharge did not pay for compartment: %d vs %d", compOpt.Cycles, comp.Cycles)
	}
	if unsafe.Checks != 0 {
		t.Errorf("unsafe image carries %d checks", unsafe.Checks)
	}
	if sandbox.Checks == 0 || comp.Checks == 0 {
		t.Error("unoptimized sandboxed images carry no checks")
	}
	// The heap accesses are statically provable (the stack pointer is
	// not, across the loop join): both optimizers must discharge the
	// four heap checks and keep the push/pop pair.
	if !(sandboxOpt.Checks < sandbox.Checks) || !(compOpt.Checks < comp.Checks) {
		t.Errorf("discharge removed no checks: sandbox %d->%d, compartment %d->%d",
			sandbox.Checks, sandboxOpt.Checks, comp.Checks, compOpt.Checks)
	}
	// Every variant carries both engines' host timings and translated
	// with certified fusions where checks exist. No wall-clock ordering
	// is asserted here — that's the vinobench gate, not a unit test —
	// only that the measurements happened and cycles agreed (the sweep
	// errors out internally on any cross-engine cycle divergence).
	for _, p := range res.Points {
		if p.InterpNS <= 0 || p.TransNS <= 0 {
			t.Errorf("%s: missing host timings: interp=%v trans=%v", p.Variant, p.InterpNS, p.TransNS)
		}
	}
	if comp.Fusions == 0 || compOpt.Fusions == 0 {
		t.Errorf("translator certified no fusions for compartment images: %d / %d", comp.Fusions, compOpt.Fusions)
	}
	if !strings.Contains(res.HostSummary(), "gate (translated overhead <= half interpreted):") {
		t.Error("HostSummary missing the gate verdict line")
	}
	// Determinism: the cycles table is pure virtual time; rerunning must
	// give identical numbers (host timings stay out of String()).
	again, err := SFIOverheadSweep(500)
	if err != nil {
		t.Fatal(err)
	}
	if res.String() != again.String() {
		t.Error("sweep is not deterministic across runs")
	}
}
