package harness

import (
	"fmt"
	"time"

	"vino/internal/graft"
	"vino/internal/kernel"
)

// Paper values for Table 5 (Scheduling Graft Overhead), elapsed us.
var paperTable5 = map[string]float64{
	PathBase: 54, PathVINO: 55, PathNull: 131, PathUnsafe: 203, PathSafe: 208, PathAbort: 211,
}

// schedGraftBody is the §4.3 example schedule-delegate: lock and scan a
// 64-entry process list, examine each entry, return own ID.
const schedGraftBody = `
.name schedule-delegate
.import sched.proc_count
.import sched.proc_id
.func main
main:
    mov r6, r1
    callk sched.proc_count
    mov r7, r0
    movi r8, 0
loop:
    cmplt r2, r8, r7
    jz r2, done
    mov r1, r8
    callk sched.proc_id
    addi r2, r10, 128
    st [r2+0], r0      ; examine the entry (through memory, as the paper's collection class does)
    addi r8, r8, 1
    jmp loop
done:
    mov r0, r6
    ret
`

// schedGraftAbortBody scans, then traps.
const schedGraftAbortBody = `
.name schedule-delegate-abort
.import sched.proc_count
.import sched.proc_id
.func main
main:
    mov r6, r1
    callk sched.proc_count
    mov r7, r0
    movi r8, 0
loop:
    cmplt r2, r8, r7
    jz r2, done
    mov r1, r8
    callk sched.proc_id
    addi r2, r10, 128
    st [r2+0], r0      ; examine the entry (through memory, as the paper's collection class does)
    addi r8, r8, 1
    jmp loop
done:
    mov r0, r6
` + trapTail

// SchedulingTable reproduces Table 5: the base path is two process
// switches (a yield round trip between two threads); each richer path
// adds the schedule-delegate machinery run at dispatch.
func SchedulingTable() (*Table, error) {
	tbl := &Table{Number: 5, Title: "Scheduling Graft Overhead (us per two-switch round trip)"}
	variants := []struct {
		path  string
		graft string
		safe  bool
	}{
		{PathBase, "", false},
		{PathVINO, "", false},
		{PathNull, nullGraftSrc, true},
		{PathUnsafe, schedGraftBody, false},
		{PathSafe, schedGraftBody, true},
		{PathAbort, schedGraftAbortBody, true},
	}
	for _, v := range variants {
		us, err := measureSchedulingPath(v.path, v.graft, v.safe)
		if err != nil {
			return nil, fmt.Errorf("table 5 %s: %w", v.path, err)
		}
		tbl.Rows = append(tbl.Rows, Row{Path: v.path, ElapsedUS: us, PaperUS: paperTable5[v.path]})
	}
	tbl.Notes = append(tbl.Notes,
		"base: two context switches at 27 us each, matching the paper's 54 us two-switch base",
		"unsafe/safe: delegate locks and scans a 64-entry process list, then returns its own ID")
	return tbl, nil
}

func measureSchedulingPath(path, graftSrc string, safe bool) (float64, error) {
	k := kernel.New(kernel.Config{
		Timeslice:    time.Hour,
		SwitchCost:   27 * time.Microsecond, // two per round trip = paper's 54 us base
		UnsafeGrafts: true,
	})
	e := &env{K: k}
	k.EnableScheduleDelegation()
	ids := make([]int64, 64)
	for i := range ids {
		ids[i] = int64(1000 + i)
	}
	k.SetProcessList(ids)

	iters := defaultIters
	stop := false
	k.SpawnProcess("peer", graft.Root, func(p *kernel.Process) {
		for !stop {
			p.Thread.Yield()
		}
	})
	var total time.Duration
	var measureErr error
	k.SpawnProcess("client", graft.Root, func(p *kernel.Process) {
		t := p.Thread
		defer func() { stop = true }()
		switch path {
		case PathBase:
			// No delegate point at all: the pure two-switch round trip.
		case PathVINO:
			k.DelegatePoint(t)
			k.SetDelegationAlwaysConsult(true)
		default:
			point := k.DelegatePoint(t)
			point.KeepOnAbort = true
			img, err := e.buildVariant(graftSrc, safe)
			if err != nil {
				measureErr = err
				return
			}
			if _, err := e.install(t, point.Name, img, graft.InstallOptions{}); err != nil {
				measureErr = err
				return
			}
		}
		total = timed(k, iters, nil, func() {
			t.Yield() // park; peer runs and yields; we are re-dispatched
		})
	})
	if err := k.Run(); err != nil {
		return 0, err
	}
	if measureErr != nil {
		return 0, measureErr
	}
	return usPerOp(total, iters), nil
}
