package harness

import (
	"fmt"
	"strings"
	"time"

	"vino/internal/kernel"
	"vino/internal/lock"
	"vino/internal/sched"
)

// smpWorkers is the fixed worker count of the SMP throughput workload:
// the total work is identical at every CPU count, so aggregate
// throughput differences are purely scheduling.
const smpWorkers = 8

// smpLockClass guards the shared resource of the contention-heavy
// variant. The generous time-out never fires (workers hold the lock for
// microseconds); it exists so a wedged run surfaces as a time-out
// instead of a hang.
var smpLockClass = &lock.Class{Name: "smp", Timeout: time.Second}

// SMPResult summarises one multi-CPU throughput run.
type SMPResult struct {
	NCPU    int
	Workers int
	// Ops counts completed work items across all workers.
	Ops int64
	// Horizon is the virtual makespan: the furthest CPU frontier when
	// the last worker finished.
	Horizon time.Duration
	// Busy and Idle are summed across CPUs.
	Busy, Idle time.Duration
	// Throughput is aggregate ops per virtual second.
	Throughput float64
	// LockWaits counts contended acquisitions (contention-heavy only).
	LockWaits int64
}

// Utilization is the fraction of CPU-seconds spent running threads.
func (r *SMPResult) Utilization() float64 {
	total := r.Busy + r.Idle
	if total == 0 {
		return 0
	}
	return float64(r.Busy) / float64(total)
}

// SMPThroughput runs a fixed batch of work — smpWorkers threads, each
// completing iters items — on an ncpu kernel and measures aggregate
// throughput against virtual time. With contended false the items are
// independent compute, the embarrassingly parallel best case; with
// contended true every item holds one shared exclusive lock for most of
// its cycle, the §3.4 worst case, and adding CPUs buys (almost) nothing
// but lock waiting.
func SMPThroughput(ncpu, iters int, contended bool) (*SMPResult, error) {
	if ncpu <= 0 {
		ncpu = 1
	}
	if iters <= 0 {
		iters = 64
	}
	// The timeslice is shorter than one work item, so a worker is
	// preempted mid-item — in the contended variant, while holding the
	// lock. That is what makes the shared lock genuinely contended:
	// with the default 10 ms quantum every critical section would run
	// to completion unpreempted and no waiter would ever queue.
	k := kernel.New(kernel.Config{NumCPUs: ncpu, Timeslice: 150 * time.Microsecond})
	var shared *lock.Lock
	if contended {
		shared = k.Locks.NewLock("smp/shared", smpLockClass)
	}
	var ops int64
	for w := 0; w < smpWorkers; w++ {
		k.Sched.Spawn(fmt.Sprintf("smp-w%d", w), func(t *sched.Thread) {
			for i := 0; i < iters; i++ {
				if shared != nil {
					shared.Acquire(t, lock.Exclusive)
					t.Charge(200 * time.Microsecond) // critical section
					if err := shared.Release(t); err != nil {
						panic(err)
					}
					t.Charge(100 * time.Microsecond) // private epilogue
				} else {
					t.Charge(300 * time.Microsecond)
				}
				ops++
			}
		})
	}
	if err := k.Run(); err != nil {
		return nil, err
	}
	res := &SMPResult{NCPU: ncpu, Workers: smpWorkers, Ops: ops}
	for _, c := range k.Sched.CPUStats() {
		res.Busy += c.Busy
		res.Idle += c.Idle
		if f := c.Busy + c.Idle; f > res.Horizon {
			res.Horizon = f
		}
	}
	if res.Horizon > 0 {
		res.Throughput = float64(res.Ops) / res.Horizon.Seconds()
	}
	res.LockWaits = k.Locks.Stats().Contentions
	return res, nil
}

// SMPTable renders the throughput workload at each CPU count, the
// scaling half of the SMP story: the contention-light column should
// grow near-linearly while the contention-heavy column stays flat.
func SMPTable(ncpus []int, iters int) (string, error) {
	if len(ncpus) == 0 {
		ncpus = []int{1, 2, 4, 8}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "SMP throughput: %d workers, %d ops each (300 us/op)\n", smpWorkers, iters)
	fmt.Fprintf(&b, "%-6s %14s %9s %14s %9s %11s\n",
		"ncpu", "light (ops/s)", "speedup", "heavy (ops/s)", "speedup", "lock waits")
	var baseLight, baseHeavy float64
	for _, n := range ncpus {
		light, err := SMPThroughput(n, iters, false)
		if err != nil {
			return "", fmt.Errorf("smp ncpu=%d light: %w", n, err)
		}
		heavy, err := SMPThroughput(n, iters, true)
		if err != nil {
			return "", fmt.Errorf("smp ncpu=%d heavy: %w", n, err)
		}
		if baseLight == 0 {
			baseLight, baseHeavy = light.Throughput, heavy.Throughput
		}
		fmt.Fprintf(&b, "%-6d %14.0f %8.2fx %14.0f %8.2fx %11d\n",
			n, light.Throughput, light.Throughput/baseLight,
			heavy.Throughput, heavy.Throughput/baseHeavy, heavy.LockWaits)
	}
	return b.String(), nil
}
