package harness

// The SFI overhead sweep: one memory-heavy workload built through every
// sandbox pipeline — unsafe (no checks), the flat SANDBOX mask, flat
// with static discharge, per-region compartment checks, and compartment
// with static discharge — run on identical VMs and compared by executed
// cycles. This is the cost side of the compartment tentpole: what the
// typed memory views charge per access over the flat mask, and how much
// of it the region-aware optimizer claws back.

import (
	"fmt"
	"strings"

	"vino/internal/sfi"
)

// sfiSweepSrc is the measured workload: per iteration two stores, two
// loads, a push and a pop — six checked accesses — plus loop control.
// The four heap accesses are provably in-region, so the optimized
// pipelines discharge them; the push/pop pair keeps its run-time check
// (SP is not statically provable across the loop join), so the sweep
// shows both the discharged and the residual cost.
func sfiSweepSrc(iters int) string {
	return fmt.Sprintf(`
.name sfisweep
.func main
main:
    movi r3, 0
    movi r4, %d
loop:
    cmplt r5, r3, r4
    jz r5, done
    st [r10+0], r3
    ld r6, [r10+0]
    st [r10+8], r6
    ld r7, [r10+8]
    push r7
    pop r8
    addi r3, r3, 1
    jmp loop
done:
    halt
`, iters)
}

// accessesPerIter is the checked-access count of one sfiSweepSrc loop
// iteration.
const accessesPerIter = 6

// SFISweepPoint is one pipeline variant's measurement.
type SFISweepPoint struct {
	Variant string
	// Cycles is the VM's total executed-cycle count for the workload.
	Cycles int64
	// PerAccess is Cycles normalised per checked memory access, the
	// comparable overhead number.
	PerAccess float64
	// Checks counts run-time check instructions (SANDBOX or CHK*) left
	// in the image after the pipeline ran — the static-discharge
	// scoreboard.
	Checks int
	// Code is the image length in instructions.
	Code int
}

// SFISweepResult is the full sweep.
type SFISweepResult struct {
	Iters  int
	Points []SFISweepPoint
}

// String renders the sweep as a table with overhead relative to the
// unsafe baseline.
func (r *SFISweepResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "SFI per-access overhead (%d iterations, %d accesses/iteration)\n", r.Iters, accessesPerIter)
	fmt.Fprintf(&b, "  %-24s %12s %12s %8s %6s %10s\n", "variant", "cycles", "cyc/access", "checks", "code", "overhead")
	var base float64
	for _, p := range r.Points {
		if p.Variant == "unsafe" {
			base = p.PerAccess
		}
	}
	for _, p := range r.Points {
		over := "-"
		if base > 0 && p.Variant != "unsafe" {
			over = fmt.Sprintf("%+.1f%%", (p.PerAccess-base)/base*100)
		}
		fmt.Fprintf(&b, "  %-24s %12d %12.2f %8d %6d %10s\n",
			p.Variant, p.Cycles, p.PerAccess, p.Checks, p.Code, over)
	}
	return b.String()
}

// countChecks tallies run-time check instructions left in an image.
func countChecks(img *sfi.Image) int {
	n := 0
	for _, ins := range img.Code {
		switch ins.Op {
		case sfi.SANDBOX, sfi.CHKR, sfi.CHKW, sfi.CHKS:
			n++
		}
	}
	return n
}

// SFIOverheadSweep builds the workload through all five pipelines and
// measures executed cycles on identical VM configurations.
func SFIOverheadSweep(iters int) (*SFISweepResult, error) {
	if iters <= 0 {
		iters = 2000
	}
	src := sfiSweepSrc(iters)
	signer := sfi.NewSigner([]byte("sfi-sweep"))
	variants := []struct {
		name  string
		build func() (*sfi.Image, error)
	}{
		{"unsafe", func() (*sfi.Image, error) {
			return sfi.BuildUnsafe(src)
		}},
		{"sandbox", func() (*sfi.Image, error) {
			img, _, err := sfi.BuildSafe(src, signer)
			return img, err
		}},
		{"sandbox+discharge", func() (*sfi.Image, error) {
			img, _, err := sfi.BuildSafeOptimized(src, signer)
			return img, err
		}},
		{"compartment", func() (*sfi.Image, error) {
			img, _, err := sfi.BuildCompartmented(src, signer)
			return img, err
		}},
		{"compartment+discharge", func() (*sfi.Image, error) {
			img, _, err := sfi.BuildCompartmentedOptimized(src, signer)
			return img, err
		}},
	}
	res := &SFISweepResult{Iters: iters}
	for _, v := range variants {
		img, err := v.build()
		if err != nil {
			return nil, fmt.Errorf("sfi sweep: build %s: %w", v.name, err)
		}
		vm, err := sfi.NewVM(img, sfi.Config{})
		if err != nil {
			return nil, fmt.Errorf("sfi sweep: vm %s: %w", v.name, err)
		}
		if _, err := vm.Call("main"); err != nil {
			return nil, fmt.Errorf("sfi sweep: run %s: %w", v.name, err)
		}
		cycles := vm.TotalCycles()
		res.Points = append(res.Points, SFISweepPoint{
			Variant:   v.name,
			Cycles:    cycles,
			PerAccess: float64(cycles) / float64(iters*accessesPerIter),
			Checks:    countChecks(img),
			Code:      len(img.Code),
		})
	}
	return res, nil
}
