package harness

// The SFI overhead sweep: one memory-heavy workload built through every
// sandbox pipeline — unsafe (no checks), the flat SANDBOX mask, flat
// with static discharge, per-region compartment checks, and compartment
// with static discharge — run on identical VMs and compared by executed
// cycles. This is the cost side of the compartment tentpole: what the
// typed memory views charge per access over the flat mask, and how much
// of it the region-aware optimizer claws back.
//
// Each variant is additionally timed in host nanoseconds on both VM
// engines — the interpreter and the install-time translated closures.
// Executed cycles are asserted identical across engines (translation
// must not change the accounting); host time is where translation pays.
// Wall-clock numbers never enter String(), so goldens stay
// deterministic; HostSummary() renders them with the perf gate.

import (
	"fmt"
	"strings"
	"time"

	"vino/internal/sfi"
)

// sfiSweepSrc is the measured workload: per iteration two stores, two
// loads, a push and a pop — six checked accesses — plus loop control.
// The four heap accesses are provably in-region, so the optimized
// pipelines discharge them; the push/pop pair keeps its run-time check
// (SP is not statically provable across the loop join), so the sweep
// shows both the discharged and the residual cost.
func sfiSweepSrc(iters int) string {
	return fmt.Sprintf(`
.name sfisweep
.func main
main:
    movi r3, 0
    movi r4, %d
loop:
    cmplt r5, r3, r4
    jz r5, done
    st [r10+0], r3
    ld r6, [r10+0]
    st [r10+8], r6
    ld r7, [r10+8]
    push r7
    pop r8
    addi r3, r3, 1
    jmp loop
done:
    halt
`, iters)
}

// accessesPerIter is the checked-access count of one sfiSweepSrc loop
// iteration.
const accessesPerIter = 6

// SFISweepPoint is one pipeline variant's measurement.
type SFISweepPoint struct {
	Variant string `json:"variant"`
	// Cycles is the VM's total executed-cycle count for one workload
	// call — asserted identical on both engines.
	Cycles int64 `json:"cycles"`
	// PerAccess is Cycles normalised per checked memory access, the
	// comparable overhead number.
	PerAccess float64 `json:"cyc_per_access"`
	// Checks counts run-time check instructions (SANDBOX or CHK*) left
	// in the image after the pipeline ran — the static-discharge
	// scoreboard.
	Checks int `json:"checks"`
	// Code is the image length in instructions.
	Code int `json:"code"`
	// Fusions is how many multi-instruction closures the translator
	// certified for this image.
	Fusions int `json:"fusions"`
	// InterpNS and TransNS are host nanoseconds per checked access on
	// the interpreter and on the translated closure engine (best of
	// several reps). Wall-clock: kept out of String().
	InterpNS float64 `json:"interp_ns_per_access"`
	TransNS  float64 `json:"trans_ns_per_access"`
}

// SFISweepResult is the full sweep.
type SFISweepResult struct {
	Iters  int             `json:"iters"`
	Points []SFISweepPoint `json:"points"`
}

// String renders the sweep as a table with overhead relative to the
// unsafe baseline.
func (r *SFISweepResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "SFI per-access overhead (%d iterations, %d accesses/iteration)\n", r.Iters, accessesPerIter)
	fmt.Fprintf(&b, "  %-24s %12s %12s %8s %6s %10s\n", "variant", "cycles", "cyc/access", "checks", "code", "overhead")
	var base float64
	for _, p := range r.Points {
		if p.Variant == "unsafe" {
			base = p.PerAccess
		}
	}
	for _, p := range r.Points {
		over := "-"
		if base > 0 && p.Variant != "unsafe" {
			over = fmt.Sprintf("%+.1f%%", (p.PerAccess-base)/base*100)
		}
		fmt.Fprintf(&b, "  %-24s %12d %12.2f %8d %6d %10s\n",
			p.Variant, p.Cycles, p.PerAccess, p.Checks, p.Code, over)
	}
	return b.String()
}

// Overhead reports the compartment pipeline's per-access check cost in
// host nanoseconds over the unsafe baseline, per engine, and whether
// the translation perf gate holds: the translated compartment overhead
// must be at most half the interpreted one.
func (r *SFISweepResult) Overhead() (interpNS, transNS float64, gateOK bool) {
	pt := map[string]SFISweepPoint{}
	for _, p := range r.Points {
		pt[p.Variant] = p
	}
	u, c := pt["unsafe"], pt["compartment"]
	interpNS = c.InterpNS - u.InterpNS
	transNS = c.TransNS - u.TransNS
	gateOK = interpNS > 0 && transNS > 0 && transNS <= interpNS/2
	return interpNS, transNS, gateOK
}

// HostSummary renders the wall-clock side of the sweep: ns/access per
// engine, per-variant speedup, and the gate verdict. Non-deterministic
// by nature — never part of a golden.
func (r *SFISweepResult) HostSummary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "SFI host time per access: interpreter vs translated closures (%d iterations)\n", r.Iters)
	fmt.Fprintf(&b, "  %-24s %14s %14s %9s %8s\n", "variant", "interp ns/acc", "trans ns/acc", "speedup", "fusions")
	for _, p := range r.Points {
		speed := "-"
		if p.TransNS > 0 {
			speed = fmt.Sprintf("%.2fx", p.InterpNS/p.TransNS)
		}
		fmt.Fprintf(&b, "  %-24s %14.1f %14.1f %9s %8d\n", p.Variant, p.InterpNS, p.TransNS, speed, p.Fusions)
	}
	oi, ot, ok := r.Overhead()
	fmt.Fprintf(&b, "  compartment check overhead vs unsafe: interpreted %.1f ns/access, translated %.1f ns/access", oi, ot)
	if ot > 0 {
		fmt.Fprintf(&b, " (%.2fx cut)", oi/ot)
	}
	b.WriteByte('\n')
	verdict := "PASS"
	if !ok {
		verdict = "FAIL"
	}
	fmt.Fprintf(&b, "  gate (translated overhead <= half interpreted): %s\n", verdict)
	return b.String()
}

// countChecks tallies run-time check instructions left in an image.
func countChecks(img *sfi.Image) int {
	n := 0
	for _, ins := range img.Code {
		switch ins.Op {
		case sfi.SANDBOX, sfi.CHKR, sfi.CHKW, sfi.CHKS:
			n++
		}
	}
	return n
}

// SFIOverheadSweep builds the workload through all five pipelines and
// measures executed cycles on identical VM configurations.
func SFIOverheadSweep(iters int) (*SFISweepResult, error) {
	if iters <= 0 {
		iters = 2000
	}
	src := sfiSweepSrc(iters)
	signer := sfi.NewSigner([]byte("sfi-sweep"))
	variants := []struct {
		name  string
		build func() (*sfi.Image, error)
	}{
		{"unsafe", func() (*sfi.Image, error) {
			return sfi.BuildUnsafe(src)
		}},
		{"sandbox", func() (*sfi.Image, error) {
			img, _, err := sfi.BuildSafe(src, signer)
			return img, err
		}},
		{"sandbox+discharge", func() (*sfi.Image, error) {
			img, _, err := sfi.BuildSafeOptimized(src, signer)
			return img, err
		}},
		{"compartment", func() (*sfi.Image, error) {
			img, _, err := sfi.BuildCompartmented(src, signer)
			return img, err
		}},
		{"compartment+discharge", func() (*sfi.Image, error) {
			img, _, err := sfi.BuildCompartmentedOptimized(src, signer)
			return img, err
		}},
	}
	res := &SFISweepResult{Iters: iters}
	for _, v := range variants {
		img, err := v.build()
		if err != nil {
			return nil, fmt.Errorf("sfi sweep: build %s: %w", v.name, err)
		}
		prog, err := sfi.Translate(img)
		if err != nil {
			return nil, fmt.Errorf("sfi sweep: translate %s: %w", v.name, err)
		}
		interpNS, interpCyc, err := hostNSPerAccess(img, sfi.Config{}, iters)
		if err != nil {
			return nil, fmt.Errorf("sfi sweep: run %s interpreted: %w", v.name, err)
		}
		transNS, transCyc, err := hostNSPerAccess(img, sfi.Config{Program: prog}, iters)
		if err != nil {
			return nil, fmt.Errorf("sfi sweep: run %s translated: %w", v.name, err)
		}
		if interpCyc != transCyc {
			return nil, fmt.Errorf("sfi sweep: %s cycle accounting diverges across engines: interpreted %d, translated %d", v.name, interpCyc, transCyc)
		}
		res.Points = append(res.Points, SFISweepPoint{
			Variant:   v.name,
			Cycles:    interpCyc,
			PerAccess: float64(interpCyc) / float64(iters*accessesPerIter),
			Checks:    countChecks(img),
			Code:      len(img.Code),
			Fusions:   prog.Fusions(),
			InterpNS:  interpNS,
			TransNS:   transNS,
		})
	}
	return res, nil
}

// hostNSPerAccess times one workload call in host nanoseconds per
// checked access: one warmup call (also the cycle measurement), then
// the best of several timed reps on the same VM — min, not mean, is
// the right estimator for a noisy shared host.
func hostNSPerAccess(img *sfi.Image, cfg sfi.Config, iters int) (float64, int64, error) {
	vm, err := sfi.NewVM(img, cfg)
	if err != nil {
		return 0, 0, err
	}
	if _, err := vm.Call("main"); err != nil {
		return 0, 0, err
	}
	cycles := vm.TotalCycles()
	best := time.Duration(1<<63 - 1)
	for rep := 0; rep < 5; rep++ {
		start := time.Now()
		if _, err := vm.Call("main"); err != nil {
			return 0, 0, err
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return float64(best.Nanoseconds()) / float64(iters*accessesPerIter), cycles, nil
}
