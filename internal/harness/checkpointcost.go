package harness

import (
	"fmt"
	"strings"
	"time"

	vfs "vino/internal/fs"
	"vino/internal/graft"
	"vino/internal/kernel"
)

// The checkpoint-cost sweep: does incremental capture actually make
// checkpoint cost proportional to the dirty state, not the kernel size?
// Each grid point builds a kernel whose file system holds a given state
// size (every block written once), re-dirties a given fraction of it,
// and measures one checkpoint capture under full-copy and incremental
// modes — wall-clock capture time plus the block payload the capture
// carries. Full-copy cost should track state size; incremental cost
// should track the dirty fraction.

// CheckpointCostPoint is one grid point of the sweep.
type CheckpointCostPoint struct {
	// Blocks is the state size: file blocks all written once.
	Blocks int
	// DirtyPct is the fraction of blocks re-dirtied before the capture.
	DirtyPct int
	// FullUS and IncrUS are mean wall-clock capture times (microseconds)
	// for one checkpoint in full-copy and incremental mode.
	FullUS, IncrUS float64
	// FullBytes and IncrBytes are the block payloads the two captures
	// carry.
	FullBytes, IncrBytes int64
	// Speedup is FullUS / IncrUS.
	Speedup float64
}

// checkpointCostEnv is one measurement kernel: a file of nblocks blocks,
// all written once, checkpointed, ready for re-dirty rounds.
type checkpointCostEnv struct {
	k    *kernel.Kernel
	fsys *vfs.FS
	file string
}

func newCheckpointCostEnv(nblocks int, fullCopy bool) (*checkpointCostEnv, error) {
	k := kernel.New(kernel.Config{
		Timeslice:          time.Hour,
		CheckpointEvery:    time.Hour, // explicit Checkpoint() only
		CheckpointFullCopy: fullCopy,
	})
	e := &checkpointCostEnv{k: k, file: "ckpt-db"}
	e.fsys = vfs.New(k, vfs.NewDisk(vfs.FujitsuM2694ESA()), nblocks+64)
	e.fsys.Create(e.file, int64(nblocks)*vfs.BlockSize, graft.Root, false)
	if err := e.writeBlocks(nblocks, 1, 0); err != nil {
		return nil, err
	}
	e.k.Checkpoint() // the base image holds the full state
	return e, nil
}

// writeBlocks writes every stride-th block of the first nblocks,
// starting at block phase, through the real write path (so dirty
// tracking stamps fire exactly as in a chaos run).
func (e *checkpointCostEnv) writeBlocks(nblocks, stride, phase int) error {
	var fail error
	e.k.SpawnProcess("ckpt-writer", graft.Root, func(p *kernel.Process) {
		t := p.Thread
		of, err := e.fsys.Open(t, e.file)
		if err != nil {
			fail = err
			return
		}
		defer of.Close()
		buf := make([]byte, vfs.BlockSize)
		for b := phase % stride; b < nblocks; b += stride {
			if _, err := of.WriteAt(t, buf, int64(b)*vfs.BlockSize); err != nil {
				fail = err
				return
			}
		}
	})
	if err := e.k.Run(); err != nil {
		return err
	}
	return fail
}

// dirtyStride converts a percentage to a write stride (100% -> every
// block, 10% -> every 10th, 1% -> every 100th).
func dirtyStride(pct int) int {
	if pct <= 0 {
		return 0
	}
	if pct >= 100 {
		return 1
	}
	return 100 / pct
}

// measureCheckpointCost runs `rounds` re-dirty+capture rounds in one
// mode and returns the mean capture time and the capture payload.
func measureCheckpointCost(nblocks, pct int, fullCopy bool) (us float64, bytes int64, err error) {
	e, err := newCheckpointCostEnv(nblocks, fullCopy)
	if err != nil {
		return 0, 0, err
	}
	stride := dirtyStride(pct)

	// Size the capture this grid point produces: the delta the manager
	// would ask for (incremental), or the whole image (full copy).
	if stride > 0 {
		if err := e.writeBlocks(nblocks, stride, 0); err != nil {
			return 0, 0, err
		}
	}
	if fullCopy {
		bytes = vfs.SnapshotBytes(e.fsys.CrashSnapshot())
	} else {
		bytes = vfs.SnapshotBytes(e.fsys.CrashDelta(e.k.Crash.Gen() - 1))
	}

	const rounds = 5
	var total time.Duration
	for r := 0; r < rounds; r++ {
		if r > 0 && stride > 0 {
			// Fresh dirt each round, phase-shifted so the same blocks
			// are not rewritten every time.
			if err := e.writeBlocks(nblocks, stride, r); err != nil {
				return 0, 0, err
			}
		}
		start := time.Now()
		e.k.Checkpoint()
		total += time.Since(start)
	}
	return float64(total) / rounds / float64(time.Microsecond), bytes, nil
}

// CheckpointCostSweep measures the dirty-fraction × state-size grid.
// Nil arguments take the default grid.
func CheckpointCostSweep(blocks []int, dirtyPcts []int) ([]CheckpointCostPoint, error) {
	if len(blocks) == 0 {
		blocks = []int{256, 1024, 4096}
	}
	if len(dirtyPcts) == 0 {
		dirtyPcts = []int{1, 10, 50, 100}
	}
	var out []CheckpointCostPoint
	for _, nb := range blocks {
		for _, pct := range dirtyPcts {
			fullUS, fullBytes, err := measureCheckpointCost(nb, pct, true)
			if err != nil {
				return nil, err
			}
			incrUS, incrBytes, err := measureCheckpointCost(nb, pct, false)
			if err != nil {
				return nil, err
			}
			p := CheckpointCostPoint{
				Blocks: nb, DirtyPct: pct,
				FullUS: fullUS, IncrUS: incrUS,
				FullBytes: fullBytes, IncrBytes: incrBytes,
			}
			if incrUS > 0 {
				p.Speedup = fullUS / incrUS
			}
			out = append(out, p)
		}
	}
	return out, nil
}

// FormatCheckpointCostSweep renders the grid. Capture times are host
// wall-clock (this is a cost measurement, like a benchmark — not part
// of the deterministic virtual-time artifact).
func FormatCheckpointCostSweep(pts []CheckpointCostPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Checkpoint cost: capture cost vs dirty fraction (full copy / incremental)\n")
	fmt.Fprintf(&b, "%8s %7s %11s %11s %13s %13s %9s\n",
		"blocks", "dirty%", "full (us)", "incr (us)", "full (bytes)", "incr (bytes)", "speedup")
	for _, p := range pts {
		fmt.Fprintf(&b, "%8d %7d %11.1f %11.1f %13d %13d %8.1fx\n",
			p.Blocks, p.DirtyPct, p.FullUS, p.IncrUS, p.FullBytes, p.IncrBytes, p.Speedup)
	}
	return b.String()
}
