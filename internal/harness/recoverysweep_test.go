package harness

import "testing"

// TestRecoveryCostSweepScales pins the sweep's load-bearing claim on
// the payload axis (wall-clock times are measured but too noisy to
// assert): the whole-kernel restore rewinds the full image, growing
// with the graft population, while the domain restore reverts only the
// offender's stamped blocks — constant as the population grows.
func TestRecoveryCostSweepScales(t *testing.T) {
	pts, err := RecoveryCostSweep([]int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d, want 2", len(pts))
	}
	one, four := pts[0], pts[1]
	if four.GraftBytes >= four.KernelBytes {
		t.Errorf("at 4 grafts: domain payload %d >= whole-kernel payload %d",
			four.GraftBytes, four.KernelBytes)
	}
	if one.GraftBytes != four.GraftBytes {
		t.Errorf("domain payload grew with the population: %d at 1 graft, %d at 4",
			one.GraftBytes, four.GraftBytes)
	}
	if four.KernelBytes <= one.KernelBytes {
		t.Errorf("whole-kernel payload did not grow with the population: %d at 1 graft, %d at 4",
			one.KernelBytes, four.KernelBytes)
	}
	if one.GraftBytes == 0 {
		t.Error("domain restore reverted zero bytes; owner stamping is not reaching the sweep's writes")
	}
}
