package netstk

import (
	"errors"
	"strings"
	"testing"

	"vino/internal/graft"
	"vino/internal/kernel"
	"vino/internal/resource"
)

func newTestNet() (*kernel.Kernel, *Net) {
	k := kernel.New(kernel.Config{ZeroTxnCosts: true})
	return k, New(k)
}

// httpGraftSrc is a tiny in-kernel HTTP server (Figure 2): read the
// request into the heap at +512, then write the canned response stored
// in the image's data section.
const httpGraftSrc = `
.name http-server
.import net.read
.import net.write
.import net.close
.data "HTTP/1.0 200 OK\r\n\r\nVINO grafted server"
.func main
main:
    mov r6, r1          ; connection id
    ; read the request (discarded, but consumes the stream)
    addi r2, r10, 512
    movi r3, 256
    callk net.read
    ; write the canned 38-byte response from the data section
    mov r1, r6
    mov r2, r10
    movi r3, 38
    callk net.write
    mov r1, r6
    callk net.close
    ret
`

func TestListenConnectServe(t *testing.T) {
	k, n := newTestNet()
	port := n.Listen("tcp", 80)
	var conn *Conn
	k.SpawnProcess("server", 7, func(p *kernel.Process) {
		if _, err := p.BuildAndInstall(port.Point().Name, httpGraftSrc, graft.InstallOptions{
			Transfer: map[resource.Kind]int64{resource.Memory: 4096},
		}); err != nil {
			t.Errorf("install: %v", err)
			return
		}
		var err error
		conn, err = n.Connect(k.Sched, "tcp", 80, []byte("GET / HTTP/1.0\r\n\r\n"))
		if err != nil {
			t.Errorf("Connect: %v", err)
			return
		}
		// Let the worker run.
		for i := 0; i < 20 && !conn.Closed(); i++ {
			p.Thread.Yield()
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	resp := string(conn.Response())
	if !strings.HasPrefix(resp, "HTTP/1.0 200 OK") || !strings.Contains(resp, "VINO grafted server") {
		t.Fatalf("response = %q", resp)
	}
	if !conn.Closed() {
		t.Fatal("connection not closed by handler")
	}
	st := n.Stats()
	if st.Connections != 1 || st.BytesOut == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestConnectWithoutListener(t *testing.T) {
	k, n := newTestNet()
	k.SpawnProcess("client", 7, func(p *kernel.Process) {
		if _, err := n.Connect(k.Sched, "tcp", 9999, []byte("x")); !errors.Is(err, ErrNoListener) {
			t.Errorf("Connect = %v, want ErrNoListener", err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestListenIdempotent(t *testing.T) {
	_, n := newTestNet()
	a := n.Listen("tcp", 80)
	b := n.Listen("tcp", 80)
	if a != b {
		t.Fatal("double listen created two ports")
	}
	if a.Point().Kind != graft.Event {
		t.Fatal("connection point is not an event point")
	}
}

// TestAbortedHandlerLeavesNoPartialResponse: a handler that writes half
// a response and traps is undone completely.
func TestAbortedHandlerLeavesNoPartialResponse(t *testing.T) {
	k, n := newTestNet()
	port := n.Listen("tcp", 81)
	var conn *Conn
	var g *graft.Installed
	k.SpawnProcess("server", 7, func(p *kernel.Process) {
		var err error
		g, err = p.BuildAndInstall(port.Point().Name, `
.name half-writer
.import net.write
.data "PARTIAL"
.func main
main:
    mov r6, r1
    mov r2, r10
    movi r3, 7
    callk net.write
    movi r4, 0
    div r0, r3, r4    ; trap after writing
    ret
`, graft.InstallOptions{Transfer: map[resource.Kind]int64{resource.Memory: 4096}})
		if err != nil {
			t.Errorf("install: %v", err)
			return
		}
		conn, err = n.Connect(k.Sched, "tcp", 81, []byte("req"))
		if err != nil {
			t.Errorf("Connect: %v", err)
			return
		}
		for i := 0; i < 20; i++ {
			p.Thread.Yield()
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got := conn.Response(); len(got) != 0 {
		t.Fatalf("partial response leaked: %q", got)
	}
	if !g.Removed() {
		t.Fatal("trapping handler not removed")
	}
	// The undone write released its memory charge.
	if used := g.Account.Used(resource.Memory); used != 0 {
		t.Fatalf("graft account used = %d after abort", used)
	}
}

// TestMultipleHandlersShareConnection: two handlers run in install
// order; both contribute to the response.
func TestMultipleHandlersShareConnection(t *testing.T) {
	k, n := newTestNet()
	port := n.Listen("udp", 53)
	mk := func(tag string, order int) string {
		return `
.name h` + tag + `
.import net.write
.data "` + tag + `"
.func main
main:
    mov r2, r10
    movi r3, 1
    callk net.write
    ret
`
	}
	var conn *Conn
	k.SpawnProcess("server", 7, func(p *kernel.Process) {
		opts := func(order int) graft.InstallOptions {
			return graft.InstallOptions{
				Order:    order,
				Transfer: map[resource.Kind]int64{resource.Memory: 64},
			}
		}
		if _, err := p.BuildAndInstall(port.Point().Name, mk("B", 2), opts(2)); err != nil {
			t.Errorf("install B: %v", err)
			return
		}
		if _, err := p.BuildAndInstall(port.Point().Name, mk("A", 1), opts(1)); err != nil {
			t.Errorf("install A: %v", err)
			return
		}
		var err error
		conn, err = n.Connect(k.Sched, "udp", 53, []byte("q"))
		if err != nil {
			t.Errorf("Connect: %v", err)
			return
		}
		for i := 0; i < 20; i++ {
			p.Thread.Yield()
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got := string(conn.Response()); got != "AB" {
		t.Fatalf("response = %q, want handlers in order AB", got)
	}
}

// TestHandlerCannotWriteBeyondQuota: a response larger than the graft's
// memory grant aborts cleanly.
func TestHandlerCannotWriteBeyondQuota(t *testing.T) {
	k, n := newTestNet()
	port := n.Listen("tcp", 82)
	var conn *Conn
	k.SpawnProcess("server", 7, func(p *kernel.Process) {
		if _, err := p.BuildAndInstall(port.Point().Name, `
.name flooder
.import net.write
.data "XXXXXXXXXXXXXXXX"
.func main
main:
    mov r6, r1
loop:
    mov r1, r6
    mov r2, r10
    movi r3, 16
    callk net.write
    jmp loop
`, graft.InstallOptions{Transfer: map[resource.Kind]int64{resource.Memory: 256}}); err != nil {
			t.Errorf("install: %v", err)
			return
		}
		var err error
		conn, err = n.Connect(k.Sched, "tcp", 82, []byte("q"))
		if err != nil {
			t.Errorf("Connect: %v", err)
			return
		}
		for i := 0; i < 30; i++ {
			p.Thread.Yield()
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// The flood aborted; the transactional undo removed every byte.
	if got := len(conn.Response()); got != 0 {
		t.Fatalf("flooded %d bytes past quota", got)
	}
}

func TestReadConsumesStream(t *testing.T) {
	k, n := newTestNet()
	port := n.Listen("tcp", 83)
	var conn *Conn
	k.SpawnProcess("server", 7, func(p *kernel.Process) {
		// Echo server: read up to 8 bytes, write them back, repeat until
		// empty.
		if _, err := p.BuildAndInstall(port.Point().Name, `
.name echo
.import net.read
.import net.write
.func main
main:
    mov r6, r1
loop:
    mov r1, r6
    addi r2, r10, 0
    movi r3, 8
    callk net.read
    jz r0, done
    mov r1, r6
    addi r2, r10, 0
    mov r3, r0
    callk net.write
    jmp loop
done:
    ret
`, graft.InstallOptions{Transfer: map[resource.Kind]int64{resource.Memory: 4096}}); err != nil {
			t.Errorf("install: %v", err)
			return
		}
		var err error
		conn, err = n.Connect(k.Sched, "tcp", 83, []byte("hello grafted world"))
		if err != nil {
			t.Errorf("Connect: %v", err)
			return
		}
		for i := 0; i < 30; i++ {
			p.Thread.Yield()
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got := string(conn.Response()); got != "hello grafted world" {
		t.Fatalf("echo = %q", got)
	}
}
