package netstk

import (
	"strings"
	"testing"
	"time"

	"vino/internal/graft"
	"vino/internal/kernel"
	"vino/internal/resource"
)

// TestDurableRestoreListenersAndGrafts is the full-instance reboot the
// fleet driver depends on: a kernel serves traffic through a grafted
// listener, checkpoints to disk, and a freshly built kernel imports the
// manifest. The listener set, the installed graft (re-linked through
// the pending-import path, since the graft importer runs before the
// network stack re-creates its points), its account limits and the
// network counters must all come back — and the restored graft must
// still serve.
func TestDurableRestoreListenersAndGrafts(t *testing.T) {
	dir := t.TempDir()
	mk := func() (*kernel.Kernel, *Net) {
		k := kernel.New(kernel.Config{
			ZeroTxnCosts:    true,
			CheckpointEvery: time.Hour,
			CheckpointDir:   dir,
		})
		return k, New(k)
	}
	k1, n1 := mk()
	port := n1.Listen("tcp", 80)
	k1.SpawnProcess("server", 7, func(p *kernel.Process) {
		if _, err := p.BuildAndInstall(port.Point().Name, httpGraftSrc, graft.InstallOptions{
			Transfer: map[resource.Kind]int64{resource.Memory: 4096},
		}); err != nil {
			t.Errorf("install: %v", err)
			return
		}
		c, err := n1.Connect(k1.Sched, "tcp", 80, []byte("GET / HTTP/1.0\r\n\r\n"))
		if err != nil {
			t.Errorf("Connect: %v", err)
			return
		}
		for i := 0; i < 20 && !c.Closed(); i++ {
			p.Thread.Yield()
		}
	})
	if err := k1.Run(); err != nil {
		t.Fatal(err)
	}
	k1.Checkpoint()
	if err := k1.Crash.PersistErr(); err != nil {
		t.Fatalf("persist: %v", err)
	}
	connsBefore := n1.Stats().Connections
	lockStats := k1.Locks.Stats()

	// "Reboot": fresh kernel, fresh subsystems, import the manifest.
	k2, n2 := mk()
	if _, err := k2.RestoreFromDisk(); err != nil {
		t.Fatalf("RestoreFromDisk: %v", err)
	}
	if _, err := k2.Grafts.Lookup("tcp/80.connection"); err != nil {
		t.Fatalf("restored listener point: %v", err)
	}
	p2 := n2.Listen("tcp", 80) // must return the restored port, not a new one
	hs := p2.Point().Handlers()
	if len(hs) != 1 {
		t.Fatalf("restored handlers = %d, want 1", len(hs))
	}
	g := hs[0]
	if g.Image.Name != "http-server" || g.Owner != 7 {
		t.Errorf("restored graft = %s owner %d", g.Image.Name, g.Owner)
	}
	if lim := g.Account.Limit(resource.Memory); lim != 4096 {
		t.Errorf("restored account memory limit = %d, want 4096", lim)
	}
	if got := n2.Stats().Connections; got != connsBefore {
		t.Errorf("restored connection count = %d, want %d", got, connsBefore)
	}
	if got := k2.Locks.Stats(); got.Acquisitions != lockStats.Acquisitions {
		t.Errorf("restored lock acquisitions = %d, want %d", got.Acquisitions, lockStats.Acquisitions)
	}

	// The re-linked graft still serves traffic on the rebooted instance.
	var conn *Conn
	k2.SpawnProcess("client", 7, func(p *kernel.Process) {
		var err error
		conn, err = n2.Connect(k2.Sched, "tcp", 80, []byte("GET / HTTP/1.0\r\n\r\n"))
		if err != nil {
			t.Errorf("Connect after restore: %v", err)
			return
		}
		for i := 0; i < 20 && !conn.Closed(); i++ {
			p.Thread.Yield()
		}
	})
	if err := k2.Run(); err != nil {
		t.Fatal(err)
	}
	if resp := string(conn.Response()); !strings.Contains(resp, "VINO grafted server") {
		t.Fatalf("response after restore = %q", resp)
	}
}
