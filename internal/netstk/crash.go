package netstk

// Crash checkpoint/restore for the network stack. Connections (with
// their stream positions), listeners and counters rewind exactly, so a
// mid-accept crash cannot leak a half-accepted connection past the
// restore. The state is small — bounded by live connections — so the
// full copy doubles as the incremental delta, the sanctioned fallback
// for subsystems whose snapshot is already O(dirty).

type connSnap struct {
	conn    *Conn
	in      []byte
	readPos int
	out     []byte
	closed  bool
}

type netSnap struct {
	ports    map[string]*Port
	conns    map[int64]*connSnap
	nextConn int64
	stats    Stats
}

// CrashName implements crash.Snapshotter.
func (n *Net) CrashName() string { return "netstk" }

// CrashSnapshot implements crash.Snapshotter.
func (n *Net) CrashSnapshot() any {
	s := &netSnap{
		ports:    make(map[string]*Port, len(n.ports)),
		conns:    make(map[int64]*connSnap, len(n.conns)),
		nextConn: n.nextConn,
		stats:    n.stats,
	}
	for k, p := range n.ports {
		s.ports[k] = p
	}
	for id, c := range n.conns {
		s.conns[id] = &connSnap{
			conn:    c,
			in:      append([]byte(nil), c.in...),
			readPos: c.readPos,
			out:     append([]byte(nil), c.out...),
			closed:  c.closed,
		}
	}
	return s
}

// CrashDelta implements crash.DeltaSnapshotter via the full-copy
// fallback: live-connection state is tiny next to fs and vmm.
func (n *Net) CrashDelta(sinceGen uint64) any { return n.CrashSnapshot() }

// CrashMerge implements crash.DeltaSnapshotter: the delta is a full
// image, so it simply replaces the base.
func (n *Net) CrashMerge(base, delta any) any { return delta }

// CrashRestore implements crash.Snapshotter.
func (n *Net) CrashRestore(snap any) {
	s := snap.(*netSnap)
	n.ports = make(map[string]*Port, len(s.ports))
	for k, p := range s.ports {
		n.ports[k] = p
	}
	n.conns = make(map[int64]*Conn, len(s.conns))
	for id, cs := range s.conns {
		c := cs.conn
		c.in = append([]byte(nil), cs.in...)
		c.readPos = cs.readPos
		c.out = append([]byte(nil), cs.out...)
		c.closed = cs.closed
		n.conns[id] = c
	}
	n.nextConn = s.nextConn
	n.stats = s.stats
}
