package netstk

import (
	"bytes"
	"encoding/gob"
	"sort"
)

// Crash checkpoint/restore for the network stack. Connections (with
// their stream positions), listeners and counters rewind exactly, so a
// mid-accept crash cannot leak a half-accepted connection past the
// restore. The state is small — bounded by live connections — so the
// full copy doubles as the incremental delta, the sanctioned fallback
// for subsystems whose snapshot is already O(dirty).

type connSnap struct {
	conn    *Conn
	in      []byte
	readPos int
	out     []byte
	closed  bool
}

type netSnap struct {
	ports    map[string]*Port
	conns    map[int64]*connSnap
	nextConn int64
	stats    Stats
}

// CrashName implements crash.Snapshotter.
func (n *Net) CrashName() string { return "netstk" }

// CrashSnapshot implements crash.Snapshotter.
func (n *Net) CrashSnapshot() any {
	s := &netSnap{
		ports:    make(map[string]*Port, len(n.ports)),
		conns:    make(map[int64]*connSnap, len(n.conns)),
		nextConn: n.nextConn,
		stats:    n.stats,
	}
	for k, p := range n.ports {
		s.ports[k] = p
	}
	for id, c := range n.conns {
		s.conns[id] = &connSnap{
			conn:    c,
			in:      append([]byte(nil), c.in...),
			readPos: c.readPos,
			out:     append([]byte(nil), c.out...),
			closed:  c.closed,
		}
	}
	return s
}

// CrashDelta implements crash.DeltaSnapshotter via the full-copy
// fallback: live-connection state is tiny next to fs and vmm.
func (n *Net) CrashDelta(sinceGen uint64) any { return n.CrashSnapshot() }

// CrashMerge implements crash.DeltaSnapshotter: the delta is a full
// image, so it simply replaces the base.
func (n *Net) CrashMerge(base, delta any) any { return delta }

// portExport identifies one listener in the durable image.
type portExport struct {
	Proto  string
	Number int
}

// netExport is the network stack's durable image: the listener set, the
// connection id frontier and the lifetime counters. Live connections
// are in-flight requests; they die with the machine (their peers see a
// reset) and the fleet driver accounts them as failed. Importing
// re-Listens every port through the normal path, which re-registers
// each port's connection graft point — and thereby flushes any pending
// graft imports waiting on those points.
type netExport struct {
	Ports    []portExport
	NextConn int64
	Stats    Stats
}

// CrashExport implements crash.Exporter.
func (n *Net) CrashExport() ([]byte, error) {
	ex := &netExport{NextConn: n.nextConn, Stats: n.stats}
	for _, p := range n.ports {
		ex.Ports = append(ex.Ports, portExport{Proto: p.Proto, Number: p.Number})
	}
	sort.Slice(ex.Ports, func(i, j int) bool {
		if ex.Ports[i].Proto != ex.Ports[j].Proto {
			return ex.Ports[i].Proto < ex.Ports[j].Proto
		}
		return ex.Ports[i].Number < ex.Ports[j].Number
	})
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(ex)
	return buf.Bytes(), err
}

// CrashImport implements crash.Exporter.
func (n *Net) CrashImport(data []byte) error {
	var ex netExport
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&ex); err != nil {
		return err
	}
	for _, pe := range ex.Ports {
		n.Listen(pe.Proto, pe.Number)
	}
	if ex.NextConn > n.nextConn {
		n.nextConn = ex.NextConn
	}
	n.stats = ex.Stats
	return nil
}

// CrashRestore implements crash.Snapshotter.
func (n *Net) CrashRestore(snap any) {
	s := snap.(*netSnap)
	n.ports = make(map[string]*Port, len(s.ports))
	for k, p := range s.ports {
		n.ports[k] = p
	}
	n.conns = make(map[int64]*Conn, len(s.conns))
	for id, cs := range s.conns {
		c := cs.conn
		c.in = append([]byte(nil), cs.in...)
		c.readPos = cs.readPos
		c.out = append([]byte(nil), cs.out...)
		c.closed = cs.closed
		n.conns[id] = c
	}
	n.nextConn = s.nextConn
	n.stats = s.stats
}
