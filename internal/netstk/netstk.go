// Package netstk is the minimal in-simulator network beneath the event
// graft experiments (§3.5 of the paper): ports with listeners,
// connections carrying byte streams, and an event graft point per port.
// When a connection arrives, the kernel spawns a worker thread per
// installed handler and runs it inside a transaction, exactly as VINO
// does for its in-kernel HTTP and NFS servers (Figure 2).
package netstk

import (
	"errors"
	"fmt"

	"vino/internal/crash"
	"vino/internal/graft"
	"vino/internal/kernel"
	"vino/internal/resource"
	"vino/internal/sched"
)

// Errors returned by the network layer.
var (
	ErrNoListener = errors.New("netstk: no listener on port")
	ErrBadConn    = errors.New("netstk: no such connection")
	ErrConnClosed = errors.New("netstk: connection closed")
)

// Net is the simulated network stack.
type Net struct {
	k *kernel.Kernel
	// BillSockets arms resource accounting at the accept edge: each
	// accepted connection charges one Sockets unit per dispatched
	// handler to that handler's account, and a handler whose account
	// lacks budget fails the accept with a LimitError (§3.2 denial).
	// Off by default: accounts are zero-limit unless granted, so billing
	// is armed only by workloads that hand their endpoints a Sockets
	// budget (the fleet driver does).
	BillSockets bool
	ports       map[string]*Port
	conns       map[int64]*Conn
	nextConn    int64
	stats       Stats
}

// Stats counts network events.
type Stats struct {
	Connections int64
	BytesIn     int64
	BytesOut    int64
	Rejected    int64
	// SocketDenials counts accepts refused because a handler's resource
	// account was out of Sockets budget — the paper's §3.2 denial path
	// applied to the network edge.
	SocketDenials int64
	// Churned counts connections reset by the fault plane before any
	// handler ran (connection-churn injection).
	Churned int64
	// MidstreamFaults counts reads/writes failed by the fault plane on
	// established connections, inside running handlers. Each one tears
	// the connection down; the handler's transaction aborts and its
	// partial response is undone.
	MidstreamFaults int64
}

// New creates a network stack and registers its graft-callable
// functions.
func New(k *kernel.Kernel) *Net {
	n := &Net{
		k:     k,
		ports: make(map[string]*Port),
		conns: make(map[int64]*Conn),
	}
	n.registerCallables()
	if k.Crash != nil {
		k.Crash.Register(n)
	}
	return n
}

// Stats returns a copy of the counters.
func (n *Net) Stats() Stats { return n.stats }

// Port is a listening endpoint whose connection event is a graft point.
type Port struct {
	Proto  string
	Number int
	point  *graft.Point
	net    *Net
}

// Point returns the port's connection event graft point.
func (p *Port) Point() *graft.Point { return p.point }

func portKey(proto string, num int) string { return fmt.Sprintf("%s/%d", proto, num) }

// Listen creates (or returns) the listener for proto/port. The event
// graft point is named e.g. "tcp/80.connection".
func (n *Net) Listen(proto string, num int) *Port {
	key := portKey(proto, num)
	if p, ok := n.ports[key]; ok {
		return p
	}
	p := &Port{Proto: proto, Number: num, net: n}
	p.point = n.k.Grafts.RegisterPoint(&graft.Point{
		Name:      key + ".connection",
		Kind:      graft.Event,
		Privilege: graft.Local,
	})
	n.ports[key] = p
	return p
}

// Conn is one simulated connection: a request byte stream in, a response
// byte stream out.
type Conn struct {
	ID      int64
	Port    int
	in      []byte
	readPos int
	out     []byte
	closed  bool

	// billed holds the accounts charged one Sockets unit at accept time
	// (one per handler dispatched on the connection); released exactly
	// once, when the connection is torn down. Billing is a physical
	// event: an aborting handler whose undo reopens the stream does not
	// resurrect the socket charge.
	billed []*resource.Account
	// memBilled tracks outstanding response-buffer Memory charges per
	// account, so teardown can return the buffer to the owning account.
	memBilled map[*resource.Account]int64
}

func (c *Conn) billMem(a *resource.Account, n int64) {
	if c.memBilled == nil {
		c.memBilled = make(map[*resource.Account]int64)
	}
	c.memBilled[a] += n
}

// Response returns the bytes written by handlers so far.
func (c *Conn) Response() []byte { return append([]byte(nil), c.out...) }

// Closed reports whether a handler closed the connection.
func (c *Conn) Closed() bool { return c.closed }

// Connect delivers a request to proto/port: a connection is created and
// the port's event point triggered, spawning one transactional worker
// per installed handler. The caller should drive the scheduler (yield or
// run) before inspecting the response.
func (n *Net) Connect(s *sched.Scheduler, proto string, num int, request []byte) (*Conn, error) {
	p, ok := n.ports[portKey(proto, num)]
	if !ok {
		n.stats.Rejected++
		return nil, fmt.Errorf("%w: %s/%d", ErrNoListener, proto, num)
	}
	// Resource binding at the accept edge (§3.2): each handler that will
	// be dispatched holds one socket on its own account for the life of
	// the connection. A handler whose account is out of Sockets budget
	// fails the accept with the account's LimitError — denial, not
	// degradation, exactly like any other quantity-constrained resource.
	var billed []*resource.Account
	if n.BillSockets {
		for _, g := range p.point.Handlers() {
			if err := g.Account.Charge(resource.Sockets, 1); err != nil {
				for _, a := range billed {
					a.Release(resource.Sockets, 1)
				}
				n.stats.SocketDenials++
				return nil, fmt.Errorf("accept %s/%d: %w", proto, num, err)
			}
			billed = append(billed, g.Account)
		}
	}
	n.nextConn++
	c := &Conn{ID: n.nextConn, Port: num, in: append([]byte(nil), request...), billed: billed}
	n.conns[c.ID] = c
	n.stats.Connections++
	n.stats.BytesIn += int64(len(request))
	// Mid-accept crash site: the connection is registered and counted
	// but no handler has been triggered — restore must not leave a
	// half-accepted connection behind.
	n.k.Faults.MaybeCrash(crash.SiteAccept, "")
	if n.k.Faults.DropConnection(c.ID) {
		// Connection churn: the peer resets before any handler runs.
		// Handlers are still triggered — they must survive finding a
		// dead socket (their net.read aborts their transaction).
		c.closed = true
		n.stats.Churned++
		n.releaseSockets(c)
	}
	p.point.Trigger(s, c.ID)
	return c, nil
}

// releaseSockets returns the connection's accept-time socket charges to
// their accounts, exactly once. Like the mid-stream teardown, socket
// release is a physical event outside any transaction: an aborting
// handler cannot resurrect a freed socket.
func (n *Net) releaseSockets(c *Conn) {
	for _, a := range c.billed {
		a.Release(resource.Sockets, 1)
	}
	c.billed = nil
}

// Teardown closes a connection from the kernel side (a driver reaping a
// finished or abandoned request) and releases every outstanding charge:
// the accept-time sockets and the committed response-buffer Memory.
// Memory is released only here, never on the in-handler close paths —
// a close inside a transaction that later aborts would otherwise race
// the net.write undo into a double release. Idempotent; must be called
// outside any transaction.
func (n *Net) Teardown(c *Conn) {
	c.closed = true
	n.releaseSockets(c)
	for a, m := range c.memBilled {
		if m > 0 {
			a.Release(resource.Memory, m)
		}
	}
	c.memBilled = nil
}

func (n *Net) lookupConn(id int64) (*Conn, error) {
	c, ok := n.conns[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrBadConn, id)
	}
	return c, nil
}

// registerCallables exposes the graft-callable socket interface. All
// byte transfers are range-checked against the graft's segment, and all
// state changes are transactional: an aborted handler leaves no partial
// response behind.
func (n *Net) registerCallables() {
	// net.read(conn, bufAddr, maxLen) -> bytes copied into the graft
	// heap; 0 at end of request.
	n.k.Grafts.RegisterCallable("net.read", func(ctx *graft.Ctx, args [5]int64) (int64, error) {
		c, err := n.lookupConn(args[0])
		if err != nil {
			return 0, err
		}
		if c.closed {
			return 0, ErrConnClosed
		}
		if ferr := n.k.Faults.NetRead(c.ID); ferr != nil {
			// Mid-stream failure: the peer vanished. The teardown is a
			// physical event, deliberately outside the transaction — an
			// aborting handler must not resurrect the connection.
			c.closed = true
			n.stats.MidstreamFaults++
			n.releaseSockets(c)
			return 0, ferr
		}
		maxLen := args[2]
		if maxLen <= 0 {
			return 0, fmt.Errorf("net.read: bad length %d", maxLen)
		}
		avail := int64(len(c.in) - c.readPos)
		if avail == 0 {
			return 0, nil
		}
		if maxLen > avail {
			maxLen = avail
		}
		data := c.in[c.readPos : c.readPos+int(maxLen)]
		if err := kernel.WriteGraftBytes(ctx.VM, args[1], data); err != nil {
			return 0, err
		}
		prev := c.readPos
		c.readPos += int(maxLen)
		if ctx.Txn != nil {
			ctx.Txn.PushUndo("net.read", func() { c.readPos = prev })
		}
		return maxLen, nil
	})
	// net.write(conn, bufAddr, len): append response bytes.
	n.k.Grafts.RegisterCallable("net.write", func(ctx *graft.Ctx, args [5]int64) (int64, error) {
		c, err := n.lookupConn(args[0])
		if err != nil {
			return 0, err
		}
		if c.closed {
			return 0, ErrConnClosed
		}
		if ferr := n.k.Faults.NetWrite(c.ID); ferr != nil {
			c.closed = true
			n.stats.MidstreamFaults++
			n.releaseSockets(c)
			return 0, ferr
		}
		data, err := kernel.ReadGraftBytes(ctx.VM, args[1], args[2])
		if err != nil {
			return 0, err
		}
		if err := ctx.Account().Charge(resource.Memory, int64(len(data))); err != nil {
			return 0, err
		}
		prevLen := len(c.out)
		c.out = append(c.out, data...)
		n.stats.BytesOut += int64(len(data))
		acct := ctx.Account()
		nBytes := int64(len(data))
		c.billMem(acct, nBytes)
		if ctx.Txn != nil {
			ctx.Txn.PushUndo("net.write", func() {
				c.out = c.out[:prevLen]
				n.stats.BytesOut -= nBytes
				acct.Release(resource.Memory, nBytes)
				c.billMem(acct, -nBytes)
			})
		}
		return int64(len(data)), nil
	})
	// net.close(conn): end the connection.
	n.k.Grafts.RegisterCallable("net.close", func(ctx *graft.Ctx, args [5]int64) (int64, error) {
		c, err := n.lookupConn(args[0])
		if err != nil {
			return 0, err
		}
		if c.closed {
			return 0, nil
		}
		c.closed = true
		// The socket itself is freed on close regardless of the
		// transaction's fate: an abort that reopens the stream models a
		// half-finished response, not a resurrected kernel socket.
		n.releaseSockets(c)
		if ctx.Txn != nil {
			ctx.Txn.PushUndo("net.close", func() { c.closed = false })
		}
		return 0, nil
	})
}
