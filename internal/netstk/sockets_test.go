package netstk

import (
	"errors"
	"testing"

	"vino/internal/graft"
	"vino/internal/kernel"
	"vino/internal/resource"
)

// holdGraftSrc reads the request and returns without closing, so the
// accept-time socket charge stays outstanding until the driver reaps
// the connection.
const holdGraftSrc = `
.name hold-server
.import net.read
.func main
main:
    mov r6, r1
    addi r2, r10, 512
    movi r3, 64
    callk net.read
    ret
`

// TestAcceptSocketDenial exercises the §3.2 denial path at the network
// edge: a handler whose account runs out of Sockets budget fails the
// accept with a LimitError, and reaping a held connection returns the
// budget.
func TestAcceptSocketDenial(t *testing.T) {
	k, n := newTestNet()
	n.BillSockets = true
	port := n.Listen("tcp", 80)
	var g *graft.Installed
	var conns []*Conn
	var denied error
	k.SpawnProcess("server", 7, func(p *kernel.Process) {
		var err error
		g, err = p.BuildAndInstall(port.Point().Name, holdGraftSrc, graft.InstallOptions{
			Transfer: map[resource.Kind]int64{resource.Sockets: 2},
		})
		if err != nil {
			t.Errorf("install: %v", err)
			return
		}
		for i := 0; i < 2; i++ {
			c, err := n.Connect(k.Sched, "tcp", 80, []byte("req"))
			if err != nil {
				t.Errorf("Connect %d: %v", i, err)
				return
			}
			conns = append(conns, c)
			p.Thread.Yield()
		}
		// Both sockets held: the third accept must be denied.
		if _, err := n.Connect(k.Sched, "tcp", 80, []byte("req")); err == nil {
			t.Error("third accept succeeded past the Sockets limit")
		} else {
			denied = err
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	var le *resource.LimitError
	if !errors.As(denied, &le) || le.Kind != resource.Sockets {
		t.Fatalf("denial = %v, want Sockets LimitError", denied)
	}
	if got := n.Stats().SocketDenials; got != 1 {
		t.Fatalf("SocketDenials = %d, want 1", got)
	}
	if used := g.Account.Used(resource.Sockets); used != 2 {
		t.Fatalf("held sockets = %d, want 2", used)
	}
	// Reaping the connections returns the budget.
	for _, c := range conns {
		n.Teardown(c)
	}
	if used := g.Account.Used(resource.Sockets); used != 0 {
		t.Fatalf("sockets after teardown = %d, want 0", used)
	}
}

// TestCloseReleasesSocket verifies a handler that closes its connection
// gives the socket back, so a serving loop never exhausts its budget.
func TestCloseReleasesSocket(t *testing.T) {
	k, n := newTestNet()
	n.BillSockets = true
	port := n.Listen("tcp", 80)
	var g *graft.Installed
	k.SpawnProcess("server", 7, func(p *kernel.Process) {
		var err error
		g, err = p.BuildAndInstall(port.Point().Name, httpGraftSrc, graft.InstallOptions{
			Transfer: map[resource.Kind]int64{
				resource.Sockets: 1,
				resource.Memory:  4096,
			},
		})
		if err != nil {
			t.Errorf("install: %v", err)
			return
		}
		for i := 0; i < 5; i++ {
			c, err := n.Connect(k.Sched, "tcp", 80, []byte("GET /\r\n\r\n"))
			if err != nil {
				t.Errorf("Connect %d: %v", i, err)
				return
			}
			for w := 0; w < 20 && !c.Closed(); w++ {
				p.Thread.Yield()
			}
			if !c.Closed() {
				t.Errorf("conn %d never closed", i)
				return
			}
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if used := g.Account.Used(resource.Sockets); used != 0 {
		t.Fatalf("sockets after serving = %d, want 0", used)
	}
	if got := n.Stats().SocketDenials; got != 0 {
		t.Fatalf("SocketDenials = %d, want 0", got)
	}
}
