package txn

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"vino/internal/lock"
	"vino/internal/sched"
	"vino/internal/simclock"
)

func newEnv() (*sched.Scheduler, *lock.Manager, *Manager) {
	s := sched.New(simclock.New(0))
	s.SwitchCost = 0
	lm := lock.NewManager(s.Clock())
	tm := NewManager()
	tm.Costs = ZeroCosts()
	lm.HolderInTxn = tm.InTxn
	return s, lm, tm
}

// run executes body on a fresh thread and fails the test on scheduler
// error.
func run(t *testing.T, s *sched.Scheduler, body func(th *sched.Thread)) {
	t.Helper()
	s.Spawn("test", body)
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestCommitKeepsChanges(t *testing.T) {
	s, _, tm := newEnv()
	x := 0
	run(t, s, func(th *sched.Thread) {
		tx := tm.Begin(th)
		x = 1
		tx.PushUndo("x=0", func() { x = 0 })
		tx.Commit()
	})
	if x != 1 {
		t.Fatalf("x = %d after commit, want 1", x)
	}
	if st := tm.Stats(); st.Begins != 1 || st.Commits != 1 || st.Aborts != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestAbortRunsUndoLIFO(t *testing.T) {
	s, _, tm := newEnv()
	var undone []string
	run(t, s, func(th *sched.Thread) {
		tx := tm.Begin(th)
		tx.PushUndo("a", func() { undone = append(undone, "a") })
		tx.PushUndo("b", func() { undone = append(undone, "b") })
		tx.PushUndo("c", func() { undone = append(undone, "c") })
		tx.Abort()
	})
	want := []string{"c", "b", "a"}
	if len(undone) != 3 {
		t.Fatalf("undone = %v", undone)
	}
	for i := range want {
		if undone[i] != want[i] {
			t.Fatalf("undo order = %v, want %v (LIFO)", undone, want)
		}
	}
}

func TestTwoPhaseLockingHoldsUntilCommit(t *testing.T) {
	s, lm, tm := newEnv()
	l := lm.NewLock("obj", &lock.Class{Name: "obj", Timeout: time.Second})
	var committed bool
	var sawHeldDuringTxn, sawFreeAfter bool
	holder := s.Spawn("holder", func(th *sched.Thread) {
		tx := tm.Begin(th)
		tx.AcquireLock(l, lock.Exclusive)
		// Simulate "thread done manipulating the resource": in the
		// non-transaction case the lock would drop here. Instead it must
		// persist until commit.
		th.Yield()
		th.Yield()
		committed = true
		tx.Commit()
	})
	s.Spawn("observer", func(th *sched.Thread) {
		th.Yield()
		sawHeldDuringTxn = l.HeldBy(holder) && !committed
		for !committed {
			th.Yield()
		}
		sawFreeAfter = !l.HeldBy(holder)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !sawHeldDuringTxn {
		t.Fatal("lock not held for the duration of the transaction")
	}
	if !sawFreeAfter {
		t.Fatal("lock not released at commit")
	}
}

func TestAbortReleasesLocks(t *testing.T) {
	s, lm, tm := newEnv()
	l := lm.NewLock("obj", &lock.Class{Name: "obj", Timeout: time.Second})
	run(t, s, func(th *sched.Thread) {
		tx := tm.Begin(th)
		tx.AcquireLock(l, lock.Exclusive)
		tx.Abort()
		if l.HeldBy(th) {
			t.Error("lock still held after abort")
		}
	})
}

func TestNestedCommitMergesIntoParent(t *testing.T) {
	s, lm, tm := newEnv()
	l := lm.NewLock("obj", &lock.Class{Name: "obj", Timeout: time.Second})
	var undone []string
	run(t, s, func(th *sched.Thread) {
		outer := tm.Begin(th)
		outer.PushUndo("outer", func() { undone = append(undone, "outer") })

		inner := tm.Begin(th)
		inner.PushUndo("inner", func() { undone = append(undone, "inner") })
		inner.AcquireLock(l, lock.Exclusive)
		inner.Commit()

		// Nested commit: lock still held (merged into parent, 2PL), undo
		// stack merged.
		if !l.HeldBy(th) {
			t.Error("nested commit released the lock early")
		}
		if outer.UndoDepth() != 2 {
			t.Errorf("parent undo depth = %d, want 2", outer.UndoDepth())
		}
		outer.Abort()
		if l.HeldBy(th) {
			t.Error("lock survived parent abort")
		}
	})
	// Parent abort must undo the child's merged work too, child-first.
	if len(undone) != 2 || undone[0] != "inner" || undone[1] != "outer" {
		t.Fatalf("undone = %v, want [inner outer]", undone)
	}
}

func TestNestedAbortSparesParent(t *testing.T) {
	s, _, tm := newEnv()
	x, y := 0, 0
	run(t, s, func(th *sched.Thread) {
		outer := tm.Begin(th)
		x = 1
		outer.PushUndo("x", func() { x = 0 })

		inner := tm.Begin(th)
		y = 1
		inner.PushUndo("y", func() { y = 0 })
		inner.Abort()

		if tm.Current(th) != outer {
			t.Error("current txn not restored to parent after nested abort")
		}
		outer.Commit()
	})
	if x != 1 {
		t.Fatal("parent's change lost to nested abort")
	}
	if y != 0 {
		t.Fatal("nested abort did not undo child's change")
	}
}

func TestRunCommitsOnSuccess(t *testing.T) {
	s, _, tm := newEnv()
	x := 0
	run(t, s, func(th *sched.Thread) {
		err := tm.Run(th, func(tx *Txn) error {
			x = 1
			tx.PushUndo("x", func() { x = 0 })
			return nil
		})
		if err != nil {
			t.Errorf("Run: %v", err)
		}
	})
	if x != 1 {
		t.Fatal("committed change lost")
	}
}

func TestRunAbortsOnError(t *testing.T) {
	s, _, tm := newEnv()
	x := 0
	boom := errors.New("bad result")
	run(t, s, func(th *sched.Thread) {
		err := tm.Run(th, func(tx *Txn) error {
			x = 1
			tx.PushUndo("x", func() { x = 0 })
			return boom
		})
		var ae *AbortedError
		if !errors.As(err, &ae) || !errors.Is(err, boom) {
			t.Errorf("Run = %v, want AbortedError wrapping boom", err)
		}
	})
	if x != 0 {
		t.Fatal("aborted change persisted")
	}
}

func TestRunAbortsOnGraftPanic(t *testing.T) {
	s, _, tm := newEnv()
	x := 0
	run(t, s, func(th *sched.Thread) {
		err := tm.Run(th, func(tx *Txn) error {
			x = 1
			tx.PushUndo("x", func() { x = 0 })
			panic("sfi violation")
		})
		var ae *AbortedError
		if !errors.As(err, &ae) {
			t.Errorf("Run = %v, want AbortedError", err)
		}
	})
	if x != 0 {
		t.Fatal("panicked graft's change persisted")
	}
}

// TestLockTimeoutAbortsTransaction is the full §3.2 pipeline: a graft
// transaction holds a contested lock too long; the waiter's time-out
// requests an abort; the abort lands at the next charge point; Run undoes
// the graft's work and releases the lock; the waiter proceeds.
func TestLockTimeoutAbortsTransaction(t *testing.T) {
	s, lm, tm := newEnv()
	l := lm.NewLock("resourceA", &lock.Class{Name: "res", Timeout: 30 * time.Millisecond})
	x := 0
	var hogErr error
	waiterGot := false
	s.Spawn("hog", func(th *sched.Thread) {
		hogErr = tm.Run(th, func(tx *Txn) error {
			tx.AcquireLock(l, lock.Exclusive)
			x = 1
			tx.PushUndo("x", func() { x = 0 })
			for { // while(1)
				th.Charge(time.Millisecond)
			}
		})
	})
	s.Spawn("waiter", func(th *sched.Thread) {
		th.Charge(time.Millisecond)
		l.Acquire(th, lock.Exclusive)
		waiterGot = true
		_ = l.Release(th)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	var ae *AbortedError
	if !errors.As(hogErr, &ae) {
		t.Fatalf("hog result = %v, want AbortedError", hogErr)
	}
	var te *lock.TimeoutError
	if !errors.As(hogErr, &te) {
		t.Fatalf("abort reason = %v, want lock.TimeoutError", hogErr)
	}
	if x != 0 {
		t.Fatal("aborted graft's state change persisted")
	}
	if !waiterGot {
		t.Fatal("waiter never obtained the lock")
	}
}

// TestAbortCleanupImmuneToFurtherTimeouts: an abort request arriving
// while undo processing runs must not unwind the cleanup.
func TestAbortCleanupImmuneToFurtherTimeouts(t *testing.T) {
	s, _, tm := newEnv()
	undone := 0
	run(t, s, func(th *sched.Thread) {
		err := tm.Run(th, func(tx *Txn) error {
			for i := 0; i < 5; i++ {
				tx.PushUndo("n", func() {
					// A second abort request lands mid-cleanup.
					th.RequestAbort(errors.New("second timeout"))
					undone++
				})
			}
			return errors.New("fail")
		})
		if err == nil {
			t.Error("expected abort")
		}
	})
	if undone != 5 {
		t.Fatalf("undos run = %d, want all 5 despite mid-cleanup abort request", undone)
	}
}

func TestCommitHonoursPendingAbort(t *testing.T) {
	s, _, tm := newEnv()
	x := 0
	reason := errors.New("too late")
	run(t, s, func(th *sched.Thread) {
		err := tm.Run(th, func(tx *Txn) error {
			x = 1
			tx.PushUndo("x", func() { x = 0 })
			// The abort request arrives after the graft's last charge
			// point but before commit.
			th.RequestAbort(reason)
			return nil
		})
		if !errors.Is(err, reason) {
			t.Errorf("Run = %v, want pending abort honoured at commit", err)
		}
	})
	if x != 0 {
		t.Fatal("changes committed despite pending abort")
	}
}

func TestCostsCharged(t *testing.T) {
	s, _, tm := newEnv()
	tm.Costs = DefaultCosts()
	run(t, s, func(th *sched.Thread) {
		before := th.CPUTime()
		err := tm.Run(th, func(tx *Txn) error { return nil })
		if err != nil {
			t.Fatal(err)
		}
		got := th.CPUTime() - before
		want := DefaultBeginCost + DefaultCommitCost
		if got != want {
			t.Errorf("null txn cost = %v, want %v", got, want)
		}
	})
}

func TestAbortCostGrowsWithLocks(t *testing.T) {
	// §4.5: abort time = abort overhead + 10us per lock + undo cost.
	s, lm, tm := newEnv()
	tm.Costs = DefaultCosts()
	cls := &lock.Class{Name: "res", Timeout: time.Second}
	locks := make([]*lock.Lock, 8)
	for i := range locks {
		locks[i] = lm.NewLock("l", cls)
	}
	var cost0, cost8 time.Duration
	run(t, s, func(th *sched.Thread) {
		measure := func(n int) time.Duration {
			tx := tm.Begin(th)
			for i := 0; i < n; i++ {
				tx.AcquireLock(locks[i], lock.Exclusive)
			}
			before := th.CPUTime()
			tx.Abort()
			return th.CPUTime() - before
		}
		cost0 = measure(0)
		cost8 = measure(8)
	})
	want := 8 * DefaultPerLockUnlock
	if got := cost8 - cost0; got != want {
		t.Fatalf("marginal cost of 8 locks = %v, want %v", got, want)
	}
}

func TestCurrentTracksNesting(t *testing.T) {
	s, _, tm := newEnv()
	run(t, s, func(th *sched.Thread) {
		if tm.Current(th) != nil || tm.InTxn(th) {
			t.Error("spurious current txn")
		}
		a := tm.Begin(th)
		b := tm.Begin(th)
		if tm.Current(th) != b {
			t.Error("current != innermost")
		}
		b.Commit()
		if tm.Current(th) != a {
			t.Error("current not restored after nested commit")
		}
		a.Commit()
		if tm.InTxn(th) {
			t.Error("InTxn after top-level commit")
		}
	})
}

func TestDoubleCommitPanics(t *testing.T) {
	s, _, tm := newEnv()
	run(t, s, func(th *sched.Thread) {
		tx := tm.Begin(th)
		tx.Commit()
		defer func() {
			if recover() == nil {
				t.Error("double commit did not panic")
			}
		}()
		tx.Commit()
	})
}

func TestOutOfOrderCommitPanics(t *testing.T) {
	s, _, tm := newEnv()
	run(t, s, func(th *sched.Thread) {
		outer := tm.Begin(th)
		_ = tm.Begin(th)
		defer func() {
			if recover() == nil {
				t.Error("committing outer before inner did not panic")
			}
		}()
		outer.Commit()
	})
}

// Property: for a random mix of accessor calls, abort restores exactly
// the initial state, no matter the nesting structure.
func TestPropertyAbortRestoresState(t *testing.T) {
	f := func(ops []uint8) bool {
		s, _, tm := newEnv()
		state := make(map[int]int)
		for i := 0; i < 8; i++ {
			state[i] = i * 100
		}
		snapshot := func() map[int]int {
			c := make(map[int]int, len(state))
			for k, v := range state {
				c[k] = v
			}
			return c
		}
		initial := snapshot()
		okc := make(chan bool, 1)
		s.Spawn("t", func(th *sched.Thread) {
			tx := tm.Begin(th)
			stack := []*Txn{tx}
			for _, op := range ops {
				cur := stack[len(stack)-1]
				switch op % 4 {
				case 0: // mutate via accessor
					k := int(op) % 8
					old := state[k]
					state[k] = old + 1
					cur.PushUndo("set", func() { state[k] = old })
				case 1: // nest
					if len(stack) < 5 {
						stack = append(stack, tm.Begin(th))
					}
				case 2: // nested commit (merges into parent)
					if len(stack) > 1 {
						cur.Commit()
						stack = stack[:len(stack)-1]
					}
				case 3: // mutate twice
					k := int(op/4) % 8
					old := state[k]
					state[k] = -old
					cur.PushUndo("neg", func() { state[k] = old })
				}
			}
			// Abort everything inner-to-outer.
			for i := len(stack) - 1; i >= 0; i-- {
				stack[i].Abort()
			}
			after := snapshot()
			for k, v := range initial {
				if after[k] != v {
					okc <- false
					return
				}
			}
			okc <- true
		})
		if err := s.Run(); err != nil {
			return false
		}
		return <-okc
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBeginCommit(b *testing.B) {
	s := sched.New(simclock.New(0))
	s.SwitchCost = 0
	tm := NewManager()
	tm.Costs = ZeroCosts()
	s.Spawn("t", func(th *sched.Thread) {
		for i := 0; i < b.N; i++ {
			tx := tm.Begin(th)
			tx.Commit()
		}
	})
	b.ResetTimer()
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkBeginAbortWithUndo(b *testing.B) {
	s := sched.New(simclock.New(0))
	s.SwitchCost = 0
	tm := NewManager()
	tm.Costs = ZeroCosts()
	x := 0
	s.Spawn("t", func(th *sched.Thread) {
		for i := 0; i < b.N; i++ {
			tx := tm.Begin(th)
			for j := 0; j < 4; j++ {
				tx.PushUndo("x", func() { x = 0 })
			}
			tx.Abort()
		}
	})
	b.ResetTimer()
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
	_ = x
}

func TestOnCommitRunsAtTopLevelCommit(t *testing.T) {
	s, _, tm := newEnv()
	var deleted []string
	run(t, s, func(th *sched.Thread) {
		outer := tm.Begin(th)
		inner := tm.Begin(th)
		inner.OnCommit("delete-obj", func() { deleted = append(deleted, "inner") })
		inner.Commit()
		if len(deleted) != 0 {
			t.Error("deferred delete ran at nested commit")
		}
		outer.OnCommit("delete-other", func() { deleted = append(deleted, "outer") })
		outer.Commit()
	})
	if len(deleted) != 2 {
		t.Fatalf("deleted = %v, want both deferred actions at top-level commit", deleted)
	}
}

func TestOnCommitDiscardedOnAbort(t *testing.T) {
	s, _, tm := newEnv()
	ran := false
	run(t, s, func(th *sched.Thread) {
		tx := tm.Begin(th)
		tx.OnCommit("delete-obj", func() { ran = true })
		tx.Abort()
	})
	if ran {
		t.Fatal("deferred delete ran despite abort")
	}
}

func TestOnCommitNestedDiscardedByParentAbort(t *testing.T) {
	s, _, tm := newEnv()
	ran := false
	run(t, s, func(th *sched.Thread) {
		outer := tm.Begin(th)
		inner := tm.Begin(th)
		inner.OnCommit("delete-obj", func() { ran = true })
		inner.Commit() // merged into parent
		outer.Abort()  // parent dies; the delete must die with it
	})
	if ran {
		t.Fatal("deferred delete survived parent abort")
	}
}

func TestOnCommitOnFinishedTxnPanics(t *testing.T) {
	s, _, tm := newEnv()
	run(t, s, func(th *sched.Thread) {
		tx := tm.Begin(th)
		tx.Commit()
		defer func() {
			if recover() == nil {
				t.Error("OnCommit on committed txn did not panic")
			}
		}()
		tx.OnCommit("late", func() {})
	})
}
