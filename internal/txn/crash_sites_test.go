package txn

import (
	"errors"
	"testing"
	"time"

	"vino/internal/crash"
	"vino/internal/fault"
	"vino/internal/lock"
	"vino/internal/sched"
)

// Crash-site tests: the panic fault class striking inside transaction
// machinery — commit, abort entry, and between undo records mid-abort.
// These are the hard cases for crash containment: the fault fires while
// the kernel is already cleaning up.

func crashEnv(t *testing.T, site crash.Site, everyN int64) (*sched.Scheduler, *lock.Manager, *Manager) {
	t.Helper()
	s, lm, tm := newEnv()
	plan := &fault.Plan{Seed: 1, Rules: []fault.Rule{{Class: fault.Panic, Site: site, EveryN: everyN}}}
	tm.Faults = fault.NewInjector(plan, s.Clock(), nil)
	tm.Faults.EnableCrash()
	return s, lm, tm
}

// wantPanic runs the scheduler and asserts it surfaced a kernel panic of
// the given class.
func wantPanic(t *testing.T, s *sched.Scheduler, class crash.Class) {
	t.Helper()
	err := s.Run()
	var cp *crash.Panic
	if !errors.As(err, &cp) {
		t.Fatalf("Run = %v, want a *crash.Panic", err)
	}
	if cp.Class != class {
		t.Fatalf("panic class = %s, want %s", cp.Class, class)
	}
	s.TakePanic()
	s.Shutdown()
}

var crashLockClass = &lock.Class{Name: "crash-test", Timeout: 50 * time.Millisecond}

func TestCrashMidUndoLeavesPartialStack(t *testing.T) {
	s, lm, tm := crashEnv(t, crash.SiteUndo, 2)
	l := lm.NewLock("db", crashLockClass)
	var undone []string
	s.Spawn("test", func(th *sched.Thread) {
		tx := tm.Begin(th)
		tx.AcquireLock(l, lock.Exclusive)
		for _, name := range []string{"a", "b", "c"} {
			name := name
			tx.PushUndo(name, func() { undone = append(undone, name) })
		}
		tx.Abort()
	})
	wantPanic(t, s, crash.UndoEscape)
	// LIFO: "c" ran (first undo-site hit), the crash fired before "b" —
	// the partially unwound stack is exactly the corruption a restore
	// must repair. The deferred lock release still ran on the way out.
	if len(undone) != 1 || undone[0] != "c" {
		t.Errorf("undone = %v, want [c]", undone)
	}
	if out := lm.Outstanding(); len(out) != 0 {
		t.Errorf("locks leaked through crashed abort: %v", out)
	}
}

func TestCrashAtAbortEntryKeepsLocksHeld(t *testing.T) {
	// The worst case: the crash fires at the abort entry point, before
	// the deferred lock release is armed and before any undo runs. The
	// transaction's locks stay wedged and its undo stack never runs —
	// nothing short of a checkpoint restore can repair this.
	s, lm, tm := crashEnv(t, crash.SiteAbort, 1)
	l := lm.NewLock("db", crashLockClass)
	undone := false
	s.Spawn("test", func(th *sched.Thread) {
		tx := tm.Begin(th)
		tx.AcquireLock(l, lock.Exclusive)
		tx.PushUndo("a", func() { undone = true })
		tx.Abort()
	})
	wantPanic(t, s, crash.AbortCorruption)
	if undone {
		t.Error("undo ran despite the crash at abort entry")
	}
	if out := lm.Outstanding(); len(out) != 1 || out[0] != "db" {
		t.Errorf("Outstanding = %v, want the wedged [db]", out)
	}
}

func TestCrashAtCommit(t *testing.T) {
	s, lm, tm := crashEnv(t, crash.SiteCommit, 1)
	l := lm.NewLock("db", crashLockClass)
	s.Spawn("test", func(th *sched.Thread) {
		tx := tm.Begin(th)
		tx.AcquireLock(l, lock.Exclusive)
		tx.Commit()
	})
	wantPanic(t, s, crash.CommitCorruption)
	// The crash fired before the commit took effect: the transaction is
	// still accounted open and its lock is still held.
	if st := tm.Stats(); st.Commits != 0 || st.Begins != 1 {
		t.Errorf("stats = %+v, want the begin without the commit", st)
	}
	if out := lm.Outstanding(); len(out) != 1 {
		t.Errorf("Outstanding = %v, want the wedged lock", out)
	}
}

func TestCrashMidUndoOfMergedNestedTxn(t *testing.T) {
	// A nested commit merges the child's undo records into the parent;
	// a crash during the parent's abort then loses undos from *both*
	// transactions. Third undo-site hit: "c" and "b" (the child's,
	// unwound first) ran, the parent's own "a" is lost.
	s, _, tm := crashEnv(t, crash.SiteUndo, 3)
	var undone []string
	s.Spawn("test", func(th *sched.Thread) {
		parent := tm.Begin(th)
		parent.PushUndo("a", func() { undone = append(undone, "a") })
		child := tm.Begin(th)
		child.PushUndo("b", func() { undone = append(undone, "b") })
		child.PushUndo("c", func() { undone = append(undone, "c") })
		child.Commit()
		parent.Abort()
	})
	wantPanic(t, s, crash.UndoEscape)
	if len(undone) != 2 || undone[0] != "c" || undone[1] != "b" {
		t.Errorf("undone = %v, want [c b]", undone)
	}
}

func TestCrashInReentrantAbort(t *testing.T) {
	// An undo handler that runs its own transaction — and aborts it —
	// re-enters the abort path while the outer abort is mid-unwind. The
	// second abort-site hit crashes the inner abort; the classified
	// panic must escape the undo-panic absorber (a swallowed kernel
	// panic would hide the crash from the containment boundary), and the
	// outer abort's deferred lock release must still run.
	s, lm, tm := crashEnv(t, crash.SiteAbort, 2)
	l := lm.NewLock("outer", crashLockClass)
	innerUndone := false
	s.Spawn("test", func(th *sched.Thread) {
		tx := tm.Begin(th)
		tx.AcquireLock(l, lock.Exclusive)
		tx.PushUndo("reenter", func() {
			inner := tm.Begin(th)
			inner.PushUndo("inner", func() { innerUndone = true })
			inner.Abort() // second abort-site hit: kernel panic
		})
		tx.Abort() // first abort-site hit: survives
	})
	wantPanic(t, s, crash.AbortCorruption)
	if innerUndone {
		t.Error("inner undo ran despite the crash at its abort entry")
	}
	if st := tm.Stats(); st.UndoPanics != 0 {
		t.Errorf("UndoPanics = %d: the kernel panic was swallowed as an undo panic", st.UndoPanics)
	}
	if out := lm.Outstanding(); len(out) != 0 {
		t.Errorf("outer lock leaked: %v", out)
	}
}

func TestClassifyPanicCause(t *testing.T) {
	for _, c := range crash.Classes() {
		want := CauseCrash
		if c == crash.SFIViolation {
			// Escalated compartment traps keep their SFI identity in
			// the health ledger.
			want = CauseSFITrap
		}
		if got := ClassifyPanicCause(c); got != want {
			t.Errorf("ClassifyPanicCause(%s) = %v, want %v", c, got, want)
		}
	}
}
