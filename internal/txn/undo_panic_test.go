package txn

import (
	"errors"
	"testing"
	"time"

	"vino/internal/lock"
	"vino/internal/sched"
)

var errForcedAbort = errors.New("forced abort")

// TestAbortReleasesLocksDespiteUndoPanic is the wedge regression: a
// fault fired inside an undo handler must not prevent lock release.
// Before lock release was deferred, a panicking undo skipped
// releaseLocks and the lock stayed held forever.
func TestAbortReleasesLocksDespiteUndoPanic(t *testing.T) {
	s, lm, tm := newEnv()
	cls := &lock.Class{Name: "c", Timeout: time.Second}
	l := lm.NewLock("resourceA", cls)
	var ranAfter bool
	run(t, s, func(th *sched.Thread) {
		tx := tm.Begin(th)
		tx.AcquireLock(l, lock.Exclusive)
		tx.PushUndo("after-poison", func() { ranAfter = true })
		tx.PushUndo("poison", func() { panic("undo handler fault") })
		tx.Abort()
		if l.HeldBy(th) {
			t.Error("lock still held after abort with panicking undo")
		}
		if !l.TryAcquire(th, lock.Exclusive) {
			t.Error("lock not reacquirable after abort")
		} else {
			_ = l.Release(th)
		}
	})
	if !ranAfter {
		t.Fatal("undo records below the panicking one did not run")
	}
	st := tm.Stats()
	if st.UndoPanics != 1 {
		t.Fatalf("UndoPanics = %d, want 1", st.UndoPanics)
	}
	if st.UndosRun != 2 {
		t.Fatalf("UndosRun = %d, want 2", st.UndosRun)
	}
	if !lm.Idle() {
		t.Fatalf("lock manager not idle: %v", lm.Outstanding())
	}
}

// TestAbortMultiplePoisonedUndos: every poisoned undo is contained, the
// healthy ones all run, every lock is released.
func TestAbortMultiplePoisonedUndos(t *testing.T) {
	s, lm, tm := newEnv()
	cls := &lock.Class{Name: "c", Timeout: time.Second}
	locks := []*lock.Lock{
		lm.NewLock("a", cls), lm.NewLock("b", cls), lm.NewLock("c", cls),
	}
	healthy := 0
	run(t, s, func(th *sched.Thread) {
		tx := tm.Begin(th)
		for _, l := range locks {
			tx.AcquireLock(l, lock.Exclusive)
		}
		for i := 0; i < 3; i++ {
			tx.PushUndo("ok", func() { healthy++ })
			tx.PushUndo("poison", func() { panic("boom") })
		}
		tx.Abort()
	})
	if healthy != 3 {
		t.Fatalf("healthy undos run = %d, want 3", healthy)
	}
	if st := tm.Stats(); st.UndoPanics != 3 {
		t.Fatalf("UndoPanics = %d, want 3", st.UndoPanics)
	}
	if !lm.Idle() {
		t.Fatalf("lock manager not idle: %v", lm.Outstanding())
	}
}

// TestRunSurvivesPoisonedUndo: the graft-wrapper path (Run -> error ->
// Abort) with a poisoned undo still returns AbortedError and leaves the
// thread usable.
func TestRunSurvivesPoisonedUndo(t *testing.T) {
	s, lm, tm := newEnv()
	cls := &lock.Class{Name: "c", Timeout: time.Second}
	l := lm.NewLock("resourceA", cls)
	run(t, s, func(th *sched.Thread) {
		err := tm.Run(th, func(tx *Txn) error {
			tx.AcquireLock(l, lock.Exclusive)
			tx.PushUndo("poison", func() { panic("undo fault") })
			return errForcedAbort
		})
		if err == nil {
			t.Error("Run returned nil, want AbortedError")
		}
		// The same thread immediately runs a clean transaction.
		if err := tm.Run(th, func(tx *Txn) error {
			tx.AcquireLock(l, lock.Exclusive)
			return nil
		}); err != nil {
			t.Errorf("follow-up transaction failed: %v", err)
		}
	})
	if !lm.Idle() {
		t.Fatalf("lock manager not idle: %v", lm.Outstanding())
	}
}
