// Package txn implements VINO's lightweight kernel transaction system
// (§3.1 of the paper).
//
// Every graft invocation is encapsulated in a transaction so the kernel
// can spontaneously abort the graft and clean up its state. The system is
// intentionally simpler than a database transaction manager: state is
// volatile, so there is no durability and no redo — only an in-memory
// *undo call stack*. Of the ACID properties it provides atomicity,
// consistency and isolation only.
//
// Isolation comes from two-phase locking: locks acquired under a
// transaction are not released when the accessor finishes but held until
// commit or abort. Atomicity comes from the undo stack: every accessor
// function that mutates graft-visible kernel state pushes its inverse
// operation; abort runs the stack LIFO.
//
// Because grafts may invoke other grafts, transactions nest: a nested
// commit merges its undo stack and lock set into its parent; a nested
// abort unwinds only its own effects, letting the calling graft continue.
package txn

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"time"

	"vino/internal/crash"
	"vino/internal/fault"
	"vino/internal/lock"
	"vino/internal/sched"
)

// Default CPU costs for transaction operations, taken from the paper's
// measured decomposition (Tables 3–6: begin 32–52 us, commit 28–34 us,
// abort overhead 32–38 us on the 120 MHz Pentium). They are charged to
// the executing thread in virtual time so the simulated tables decompose
// the way the paper's do; the wall-clock benchmarks measure our real
// implementation costs independently.
const (
	DefaultBeginCost       = 36 * time.Microsecond
	DefaultCommitCost      = 28 * time.Microsecond
	DefaultAbortCost       = 35 * time.Microsecond
	DefaultPerLockUnlock   = 10 * time.Microsecond // §4.5: "10 us per lock"
	DefaultPerUndoOverhead = 2 * time.Microsecond
)

// State is a transaction's lifecycle state.
type State int

const (
	// Active means the transaction may still accrue undo records.
	Active State = iota
	// Committed means the transaction completed and (if top-level)
	// released its locks.
	Committed
	// Aborted means the undo stack ran and locks were released.
	Aborted
)

func (s State) String() string {
	switch s {
	case Active:
		return "active"
	case Committed:
		return "committed"
	case Aborted:
		return "aborted"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// ErrNotActive reports an operation on a finished transaction.
var ErrNotActive = errors.New("txn: transaction not active")

// AbortedError is returned by Run when the supplied function was undone.
type AbortedError struct {
	Reason error
}

func (e *AbortedError) Error() string { return "txn: aborted: " + e.Reason.Error() }

func (e *AbortedError) Unwrap() error { return e.Reason }

// Undo is one entry on the undo call stack: the inverse of an accessor
// call, with a diagnostic name.
type Undo struct {
	Name string
	Fn   func()
}

// Stats counts transaction events.
type Stats struct {
	Begins     int64
	Commits    int64
	Aborts     int64
	NestedMax  int
	UndosRun   int64
	UndoPanics int64
	LocksFreed int64
}

// Costs is the virtual-CPU cost model for transaction operations.
type Costs struct {
	Begin       time.Duration
	Commit      time.Duration
	Abort       time.Duration
	PerLockFree time.Duration
	PerUndoPush time.Duration
}

// DefaultCosts returns the paper-calibrated cost model.
func DefaultCosts() Costs {
	return Costs{
		Begin:       DefaultBeginCost,
		Commit:      DefaultCommitCost,
		Abort:       DefaultAbortCost,
		PerLockFree: DefaultPerLockUnlock,
		PerUndoPush: DefaultPerUndoOverhead,
	}
}

// ZeroCosts returns a cost model that charges nothing, for tests that
// want pure logical behaviour.
func ZeroCosts() Costs { return Costs{} }

// Manager is the default VINO transaction manager. One per kernel.
type Manager struct {
	Costs Costs
	// Faults, when set, is consulted at the crash sites inside commit,
	// abort and undo processing — the escape routes §6 admits the
	// transaction system cannot itself survive. All consultations are
	// nil-safe and free unless the injector's crash gate is armed.
	Faults    *fault.Injector
	stats     Stats
	lastAbort time.Duration
}

// crashPoint consults the crash plane at one transaction-processing
// site. A due Panic rule escapes by panic; the transaction is left
// corrupted mid-operation on purpose — containment and repair are the
// kernel recovery path's job, not this package's.
func (m *Manager) crashPoint(site crash.Site) {
	m.Faults.MaybeCrash(site, "")
}

// LastAbortDuration returns the virtual time consumed by the most
// recent Abort — its fixed overhead plus lock releases plus undo
// processing. The Table 7 harness reads it to report abort costs the
// way the paper does.
func (m *Manager) LastAbortDuration() time.Duration { return m.lastAbort }

// NewManager creates a transaction manager with the paper-calibrated
// cost model.
func NewManager() *Manager {
	return &Manager{Costs: DefaultCosts()}
}

// Stats returns a copy of the manager's counters.
func (m *Manager) Stats() Stats { return m.stats }

// txnSnap is the manager's checkpointable state. Live transactions are
// thread-local and die with their threads at a crash; the counters are
// restored so the books stay balanced — a transaction destroyed by a
// contained panic neither committed nor aborted, and rewinding Begins
// with the rest of the kernel keeps Begins == Commits+Aborts at every
// quiescent point.
type txnSnap struct {
	stats     Stats
	lastAbort time.Duration
}

// CrashName implements crash.Snapshotter.
func (m *Manager) CrashName() string { return "txns" }

// CrashSnapshot implements crash.Snapshotter.
func (m *Manager) CrashSnapshot() any { return &txnSnap{stats: m.stats, lastAbort: m.lastAbort} }

// CrashRestore implements crash.Snapshotter.
func (m *Manager) CrashRestore(snap any) {
	s := snap.(*txnSnap)
	m.stats = s.stats
	m.lastAbort = s.lastAbort
}

// txnExport is the durable (on-disk) image: the counters and the last
// abort instant, gob-encoded.
type txnExport struct {
	Stats     Stats
	LastAbort time.Duration
}

// CrashExport implements crash.Exporter.
func (m *Manager) CrashExport() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(&txnExport{Stats: m.stats, LastAbort: m.lastAbort})
	return buf.Bytes(), err
}

// CrashImport implements crash.Exporter.
func (m *Manager) CrashImport(data []byte) error {
	var e txnExport
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&e); err != nil {
		return err
	}
	m.stats = e.Stats
	m.lastAbort = e.LastAbort
	return nil
}

// CrashDelta implements crash.DeltaSnapshotter as the sanctioned
// full-copy fallback: the manager's checkpointable state is a handful
// of counters, cheaper to copy than to dirty-track.
func (m *Manager) CrashDelta(sinceGen uint64) any { return m.CrashSnapshot() }

// CrashMerge implements crash.DeltaSnapshotter: the delta is a full
// image, so it simply replaces the base.
func (m *Manager) CrashMerge(base, delta any) any { return delta }

const localKey = "txn.current"

// Current returns the innermost active transaction associated with the
// thread, or nil.
func (m *Manager) Current(t *sched.Thread) *Txn {
	tx, _ := t.Local(localKey).(*Txn)
	return tx
}

// InTxn reports whether the thread is executing a transaction. It is the
// predicate the lock manager consults before aborting a holder on
// time-out; wire it as lockManager.HolderInTxn.
func (m *Manager) InTxn(t *sched.Thread) bool { return m.Current(t) != nil }

// Txn is one (possibly nested) transaction, associated with the thread
// that invoked the graft.
type Txn struct {
	m      *Manager
	thread *sched.Thread
	parent *Txn
	state  State
	depth  int

	undo     []Undo
	locks    []*lock.Lock // in acquisition order; released in reverse
	onCommit []func()
}

// Begin starts a transaction on t, nesting inside any current one. The
// begin cost is charged to the thread.
func (m *Manager) Begin(t *sched.Thread) *Txn {
	parent := m.Current(t)
	tx := &Txn{m: m, thread: t, parent: parent, state: Active}
	if parent != nil {
		tx.depth = parent.depth + 1
	}
	if tx.depth+1 > m.stats.NestedMax {
		m.stats.NestedMax = tx.depth + 1
	}
	m.stats.Begins++
	t.SetLocal(localKey, tx)
	if c := m.Costs.Begin; c > 0 {
		t.Charge(c)
	}
	return tx
}

// Thread returns the transaction's owning thread.
func (tx *Txn) Thread() *sched.Thread { return tx.thread }

// Parent returns the enclosing transaction, or nil at top level.
func (tx *Txn) Parent() *Txn { return tx.parent }

// State returns the transaction's lifecycle state.
func (tx *Txn) State() State { return tx.state }

// Depth returns the nesting depth (0 for top level).
func (tx *Txn) Depth() int { return tx.depth }

// UndoDepth returns the number of pending undo records.
func (tx *Txn) UndoDepth() int { return len(tx.undo) }

// LockCount returns the number of lock registrations held by this
// transaction (not counting the parent's).
func (tx *Txn) LockCount() int { return len(tx.locks) }

// PushUndo records the inverse of an accessor-function call. Accessor
// functions that mutate permanent kernel state call this whenever a
// transaction is associated with the running thread.
func (tx *Txn) PushUndo(name string, fn func()) {
	if tx.state != Active {
		panic(fmt.Sprintf("txn: PushUndo(%s) on %s transaction", name, tx.state))
	}
	tx.undo = append(tx.undo, Undo{Name: name, Fn: fn})
	if c := tx.m.Costs.PerUndoPush; c > 0 && tx.thread.Scheduler().Current() == tx.thread {
		tx.thread.Charge(c)
	}
}

// OnCommit defers fn until the *top-level* commit; an abort anywhere up
// the chain discards it. This is the mechanism the paper wished for in
// §6: "we could have avoided work-arounds such as delaying deletes
// until transaction abort" — a graft that logically deletes a kernel
// object must keep it alive until the transaction is durable-in-memory,
// because abort may need the object back. Register the physical delete
// here and mutate only logical state inside the transaction.
func (tx *Txn) OnCommit(name string, fn func()) {
	if tx.state != Active {
		panic(fmt.Sprintf("txn: OnCommit(%s) on %s transaction", name, tx.state))
	}
	tx.onCommit = append(tx.onCommit, fn)
}

// AcquireLock takes l in the given mode on the transaction's thread and
// registers it for two-phase release: the lock is held until the
// top-level commit or this transaction's abort.
func (tx *Txn) AcquireLock(l *lock.Lock, mode lock.Mode) {
	if tx.state != Active {
		panic("txn: AcquireLock on finished transaction")
	}
	l.Acquire(tx.thread, mode)
	tx.locks = append(tx.locks, l)
}

// mustBeCurrentInnermost guards against committing or aborting out of
// order.
func (tx *Txn) mustBeCurrentInnermost(op string) {
	if tx.state != Active {
		panic(fmt.Sprintf("txn: %s on %s transaction", op, tx.state))
	}
	if cur := tx.m.Current(tx.thread); cur != tx {
		panic(fmt.Sprintf("txn: %s on non-innermost transaction (depth %d, current %v)", op, tx.depth, cur))
	}
}

// Commit ends the transaction successfully. A nested commit merges the
// undo call stack and lock registrations into the parent; a top-level
// commit discards the undo stack and releases all registered locks.
// A pending asynchronous abort request is honoured *before* the commit
// takes effect — a transaction that was ordered dead must not slip its
// changes in at the commit point.
func (tx *Txn) Commit() {
	tx.mustBeCurrentInnermost("Commit")
	tx.thread.CheckAbort() // may panic; wrapper will call Abort
	tx.m.crashPoint(crash.SiteCommit)
	if c := tx.m.Costs.Commit; c > 0 {
		tx.thread.Charge(c)
	}
	tx.m.stats.Commits++
	tx.state = Committed
	tx.m.setCurrent(tx.thread, tx.parent)
	if tx.parent != nil {
		// Nested: merge, keep locks held, undo stays live in the parent,
		// deferred actions wait for the top-level commit.
		tx.parent.undo = append(tx.parent.undo, tx.undo...)
		tx.parent.locks = append(tx.parent.locks, tx.locks...)
		tx.parent.onCommit = append(tx.parent.onCommit, tx.onCommit...)
		tx.undo, tx.locks, tx.onCommit = nil, nil, nil
		return
	}
	tx.releaseLocks()
	tx.undo = nil
	for _, fn := range tx.onCommit {
		fn()
	}
	tx.onCommit = nil
}

// Abort undoes everything the transaction did: the undo call stack runs
// in LIFO order, then registered locks are released in reverse
// acquisition order. Abort never unwinds the parent; the caller decides
// whether to propagate. Abort is safe against further asynchronous abort
// requests: they are held back while cleanup runs.
//
// Lock release is deferred and per-undo panics are contained, so a
// fault that fires *inside* an undo handler cannot leave the lock
// manager wedged: the remaining undos still run and every registered
// lock is still released. Kill signals are the one exception — they
// re-panic after cleanup so thread destruction keeps working.
func (tx *Txn) Abort() {
	tx.mustBeCurrentInnermost("Abort")
	// A crash here — before the deferred lock release is even armed —
	// is the worst case: the aborting transaction's locks stay held and
	// its undo stack never runs.
	tx.m.crashPoint(crash.SiteAbort)
	t := tx.thread
	t.PushNoAbort()
	start := t.Scheduler().Clock().Now()
	defer func() {
		tx.m.lastAbort = t.Scheduler().Clock().Now() - start
		t.PopNoAbort()
	}()
	// Deferred (not sequenced after the undo loop) so that locks are
	// released even if an undo handler panics its way out of Abort.
	defer tx.releaseLocks()
	if c := tx.m.Costs.Abort; c > 0 {
		t.Charge(c)
	}
	tx.m.stats.Aborts++
	tx.state = Aborted
	tx.m.setCurrent(t, tx.parent)
	var rekill any
	for i := len(tx.undo) - 1; i >= 0; i-- {
		tx.m.stats.UndosRun++
		// Crash-during-recovery: a fault striking between undo records
		// leaves the stack partially unwound. Deferred lock release
		// still runs on the way out; the lost undos are the corruption.
		tx.m.crashPoint(crash.SiteUndo)
		if r := tx.runUndo(tx.undo[i]); r != nil {
			rekill = r
			break
		}
	}
	tx.undo = nil
	tx.onCommit = nil // deferred deletes die with the transaction
	if rekill != nil {
		panic(rekill) // deferred releaseLocks still runs first
	}
}

// runUndo executes one undo record, absorbing any panic it raises. A
// scheduler kill signal — or a classified kernel panic, which must
// escape abort processing so the crash-containment boundary sees it —
// is returned (non-nil) so Abort can re-panic it after releasing
// locks; every other panic is counted and swallowed — a broken undo
// handler must not stop the rest of the stack from unwinding.
func (tx *Txn) runUndo(u Undo) (kill any) {
	defer func() {
		if r := recover(); r != nil {
			if sched.IsKill(r) {
				kill = r
				return
			}
			if _, ok := crash.IsPanic(r); ok {
				kill = r
				return
			}
			tx.m.stats.UndoPanics++
		}
	}()
	u.Fn()
	return nil
}

func (tx *Txn) releaseLocks() {
	for i := len(tx.locks) - 1; i >= 0; i-- {
		l := tx.locks[i]
		if c := tx.m.Costs.PerLockFree; c > 0 {
			tx.thread.Charge(c)
		}
		tx.m.stats.LocksFreed++
		_ = l.Release(tx.thread)
	}
	tx.locks = nil
}

// AbortOrphan rolls back the chain of transactions left Active on a
// thread that died in a contained kernel panic, innermost first.
// Domain-scoped crash recovery calls it instead of restoring a
// whole-kernel checkpoint: the undo stacks revert exactly the
// offender's uncommitted kernel mutations, registered locks are
// released, and the books stay balanced (one Abort per orphaned
// Begin). Unlike Txn.Abort it runs on the scheduler side against a
// dead thread, so it charges no CPU, arms no crash sites, and releases
// locks directly (Release's charge path is current-thread-gated).
// Per-undo panics are contained exactly as in Abort. Returns the
// number of transaction levels aborted.
func (m *Manager) AbortOrphan(t *sched.Thread) int {
	n := 0
	for tx := m.Current(t); tx != nil; tx = tx.parent {
		if tx.state != Active {
			continue
		}
		n++
		m.stats.Aborts++
		tx.state = Aborted
		for i := len(tx.undo) - 1; i >= 0; i-- {
			m.stats.UndosRun++
			// Kill and crash values cannot unwind anything here — the
			// thread is already dead and the crash gate is closed during
			// recovery — so whatever runUndo hands back is dropped.
			_ = tx.runUndo(tx.undo[i])
		}
		tx.undo = nil
		tx.onCommit = nil
		for i := len(tx.locks) - 1; i >= 0; i-- {
			m.stats.LocksFreed++
			_ = tx.locks[i].Release(t)
		}
		tx.locks = nil
	}
	t.SetLocal(localKey, nil)
	return n
}

func (m *Manager) setCurrent(t *sched.Thread, tx *Txn) {
	if tx == nil {
		t.SetLocal(localKey, nil)
		return
	}
	t.SetLocal(localKey, tx)
}

// Run executes fn inside a fresh transaction on t and is the core of the
// graft wrapper: begin, call, commit — with any failure (an error return,
// an asynchronous abort delivered as a *sched.Abort panic, or a runtime
// panic inside the graft such as an SFI violation) converted into an
// abort whose undo stack runs before Run returns *AbortedError.
//
// Run recovers graft panics but re-panics kill signals so thread
// destruction still works.
func (m *Manager) Run(t *sched.Thread, fn func(tx *Txn) error) (err error) {
	tx := m.Begin(t)
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		reason := panicReason(r)
		if reason == nil {
			panic(r) // kill signal or foreign panic type we must not eat
		}
		if tx.state == Active {
			tx.Abort()
		}
		t.ClearAbort()
		err = &AbortedError{Reason: reason}
	}()
	if err := fn(tx); err != nil {
		tx.Abort()
		return &AbortedError{Reason: err}
	}
	tx.Commit()
	return nil
}

// panicReason classifies a recovered panic value: asynchronous aborts and
// graft panics of any type become abort reasons; the scheduler's kill
// signal and classified kernel panics return nil and must be re-panicked
// — a crash is not an abort reason, it is the containment boundary's
// problem.
func panicReason(r any) error {
	if sched.IsKill(r) {
		return nil
	}
	if _, ok := crash.IsPanic(r); ok {
		return nil
	}
	switch v := r.(type) {
	case *sched.Abort:
		return v.Reason
	case error:
		return fmt.Errorf("graft panic: %w", v)
	default:
		return fmt.Errorf("graft panic: %v", v)
	}
}
