package txn

import (
	"errors"

	"vino/internal/crash"
	"vino/internal/lock"
	"vino/internal/resource"
	"vino/internal/sfi"
)

// AbortCause buckets an abort by the survival mechanism that pulled the
// trigger. The graft supervisor's health ledger accounts per cause so a
// policy (or a human reading the health table) can tell a graft that
// loops from one that hoards locks from one whose undo handlers are
// broken.
type AbortCause int

const (
	// CauseOther covers aborts no classifier recognises (validation
	// failures, explicit graft errors, injected environment faults).
	CauseOther AbortCause = iota
	// CauseWatchdog is the forward-progress watchdog (§2.5).
	CauseWatchdog
	// CauseLockTimeout is a two-phase-locking contention time-out.
	CauseLockTimeout
	// CauseResourceLimit is a denied resource-account charge (§3.2).
	CauseResourceLimit
	// CauseSFITrap is a sandbox trap: an SFI violation, a VM crash
	// (division by zero and friends), or the cycle-limit backstop.
	CauseSFITrap
	// CauseUndo marks an abort during which an undo handler panicked.
	CauseUndo
	// CauseCrash is a contained kernel panic attributed to the graft
	// whose dispatch was active when it struck: crash recovery feeds
	// one abort of this cause into the health ledger per recovery.
	CauseCrash
)

func (c AbortCause) String() string {
	switch c {
	case CauseOther:
		return "other"
	case CauseWatchdog:
		return "watchdog"
	case CauseLockTimeout:
		return "lock-timeout"
	case CauseResourceLimit:
		return "resource-limit"
	case CauseSFITrap:
		return "sfi-trap"
	case CauseUndo:
		return "undo"
	case CauseCrash:
		return "crash"
	}
	return "cause(?)"
}

// Causes lists every bucket in canonical rendering order.
func Causes() []AbortCause {
	return []AbortCause{CauseWatchdog, CauseLockTimeout, CauseResourceLimit, CauseSFITrap, CauseUndo, CauseCrash, CauseOther}
}

// ClassifyPanicCause maps a classified kernel panic onto the cause fed
// into the guard health ledger. Compartment violations keep their SFI
// identity in the ledger (they are sandbox traps, escalated); every
// other class bills as CauseCrash.
func ClassifyPanicCause(class crash.Class) AbortCause {
	if class == crash.SFIViolation {
		return CauseSFITrap
	}
	return CauseCrash
}

// ClassifyAbort maps an abort reason (typically the *AbortedError
// returned by Run, or its unwrapped Reason) onto a cause bucket by
// walking the error chain. Two causes cannot be recognised from the
// chain alone: the watchdog sentinel lives in the graft layer, and undo
// panics are absorbed by Abort rather than surfaced as errors — callers
// that can see those signals classify them before falling back here.
func ClassifyAbort(err error) AbortCause {
	var lt *lock.TimeoutError
	if errors.As(err, &lt) {
		return CauseLockTimeout
	}
	var rl *resource.LimitError
	if errors.As(err, &rl) {
		return CauseResourceLimit
	}
	var sv *sfi.Violation
	var sc *sfi.CrashError
	if errors.As(err, &sv) || errors.As(err, &sc) || errors.Is(err, sfi.ErrCycleLimit) {
		return CauseSFITrap
	}
	return CauseOther
}
