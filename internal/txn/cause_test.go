package txn

import (
	"fmt"
	"testing"
	"time"

	"vino/internal/lock"
	"vino/internal/resource"
	"vino/internal/sfi"
)

func TestClassifyAbort(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want AbortCause
	}{
		{"lock timeout", &lock.TimeoutError{LockName: "x"}, CauseLockTimeout},
		{"wrapped lock timeout", &AbortedError{Reason: &lock.TimeoutError{LockName: "x"}}, CauseLockTimeout},
		{"resource limit", &resource.LimitError{Kind: resource.KernelHeap}, CauseResourceLimit},
		{"wrapped resource limit", fmt.Errorf("kheap_alloc: %w", &resource.LimitError{}), CauseResourceLimit},
		{"sfi violation", &sfi.Violation{}, CauseSFITrap},
		{"sfi crash", &sfi.CrashError{}, CauseSFITrap},
		{"cycle limit", fmt.Errorf("vm: %w", sfi.ErrCycleLimit), CauseSFITrap},
		{"plain error", fmt.Errorf("graft said no"), CauseOther},
		{"nil", nil, CauseOther},
	}
	for _, tc := range cases {
		if got := ClassifyAbort(tc.err); got != tc.want {
			t.Errorf("%s: ClassifyAbort = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestCauseStringsAndOrder(t *testing.T) {
	want := map[AbortCause]string{
		CauseOther:         "other",
		CauseWatchdog:      "watchdog",
		CauseLockTimeout:   "lock-timeout",
		CauseResourceLimit: "resource-limit",
		CauseSFITrap:       "sfi-trap",
		CauseUndo:          "undo",
		CauseCrash:         "crash",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), s)
		}
	}
	cs := Causes()
	if len(cs) != len(want) {
		t.Fatalf("Causes() has %d entries, want %d", len(cs), len(want))
	}
	seen := make(map[AbortCause]bool)
	for _, c := range cs {
		if seen[c] {
			t.Fatalf("Causes() lists %v twice", c)
		}
		seen[c] = true
	}
	// lock.TimeoutError carries a timeout; make sure classification does
	// not depend on its fields.
	if got := ClassifyAbort(&lock.TimeoutError{Timeout: 20 * time.Millisecond}); got != CauseLockTimeout {
		t.Fatalf("timeout with fields: %v", got)
	}
}
