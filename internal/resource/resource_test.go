package resource

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestChargeWithinLimit(t *testing.T) {
	a := NewAccount("proc")
	a.SetLimit(Memory, 100)
	if err := a.Charge(Memory, 60); err != nil {
		t.Fatalf("Charge: %v", err)
	}
	if err := a.Charge(Memory, 40); err != nil {
		t.Fatalf("Charge to exactly the limit: %v", err)
	}
	if a.Used(Memory) != 100 || a.Available(Memory) != 0 {
		t.Fatalf("used=%d avail=%d", a.Used(Memory), a.Available(Memory))
	}
}

func TestChargeOverLimitFailsCleanly(t *testing.T) {
	a := NewAccount("proc")
	a.SetLimit(Memory, 100)
	if err := a.Charge(Memory, 50); err != nil {
		t.Fatal(err)
	}
	err := a.Charge(Memory, 51)
	var le *LimitError
	if !errors.As(err, &le) {
		t.Fatalf("err = %v, want LimitError", err)
	}
	if le.Kind != Memory || le.Request != 51 || le.Used != 50 || le.Limit != 100 {
		t.Fatalf("LimitError fields: %+v", le)
	}
	if a.Used(Memory) != 50 {
		t.Fatalf("failed charge mutated usage: %d", a.Used(Memory))
	}
	if a.Denials() != 1 {
		t.Fatalf("denials = %d, want 1", a.Denials())
	}
}

func TestFreshGraftAccountHasZeroLimits(t *testing.T) {
	g := NewAccount("graft")
	err := g.Charge(Memory, 1)
	if err == nil {
		t.Fatal("zero-limit account allowed an allocation")
	}
}

func TestReleaseClampsAtZero(t *testing.T) {
	a := NewAccount("proc")
	a.SetLimit(Memory, 10)
	if err := a.Charge(Memory, 5); err != nil {
		t.Fatal(err)
	}
	a.Release(Memory, 100)
	if a.Used(Memory) != 0 {
		t.Fatalf("used = %d, want 0", a.Used(Memory))
	}
}

func TestTransferMovesLimit(t *testing.T) {
	proc := NewAccount("proc")
	graft := NewAccount("graft")
	proc.SetLimit(Memory, 100)
	if err := proc.Transfer(graft, Memory, 30); err != nil {
		t.Fatalf("Transfer: %v", err)
	}
	if proc.Limit(Memory) != 70 || graft.Limit(Memory) != 30 {
		t.Fatalf("limits proc=%d graft=%d", proc.Limit(Memory), graft.Limit(Memory))
	}
	if err := graft.Charge(Memory, 30); err != nil {
		t.Fatalf("graft charge after transfer: %v", err)
	}
	if err := graft.Charge(Memory, 1); err == nil {
		t.Fatal("graft exceeded transferred limit")
	}
}

func TestTransferRespectsOwnUsage(t *testing.T) {
	proc := NewAccount("proc")
	graft := NewAccount("graft")
	proc.SetLimit(Memory, 100)
	if err := proc.Charge(Memory, 80); err != nil {
		t.Fatal(err)
	}
	if err := proc.Transfer(graft, Memory, 30); err == nil {
		t.Fatal("transfer of limit backing live usage succeeded")
	}
	if err := proc.Transfer(graft, Memory, 20); err != nil {
		t.Fatalf("legal transfer failed: %v", err)
	}
}

func TestBilling(t *testing.T) {
	proc := NewAccount("proc")
	graft := NewAccount("graft")
	proc.SetLimit(Memory, 100)
	if err := graft.BillTo(proc); err != nil {
		t.Fatal(err)
	}
	if err := graft.Charge(Memory, 60); err != nil {
		t.Fatalf("billed charge: %v", err)
	}
	if proc.Used(Memory) != 60 {
		t.Fatalf("proc used = %d, want 60 (charge lands on biller)", proc.Used(Memory))
	}
	if graft.Used(Memory) != 0 {
		t.Fatalf("graft used = %d, want 0", graft.Used(Memory))
	}
	// The graft's failure mode is the process's failure mode.
	if err := graft.Charge(Memory, 41); err == nil {
		t.Fatal("billed charge exceeded installer's limit")
	}
	graft.Release(Memory, 60)
	if proc.Used(Memory) != 0 {
		t.Fatalf("release did not land on biller: %d", proc.Used(Memory))
	}
}

func TestBillingChain(t *testing.T) {
	a := NewAccount("a")
	b := NewAccount("b")
	c := NewAccount("c")
	a.SetLimit(Memory, 10)
	if err := b.BillTo(a); err != nil {
		t.Fatal(err)
	}
	if err := c.BillTo(b); err != nil {
		t.Fatal(err)
	}
	if err := c.Charge(Memory, 10); err != nil {
		t.Fatalf("chained billing: %v", err)
	}
	if a.Used(Memory) != 10 {
		t.Fatalf("root used = %d", a.Used(Memory))
	}
}

func TestBillingCycleRejected(t *testing.T) {
	a := NewAccount("a")
	b := NewAccount("b")
	if err := a.BillTo(b); err != nil {
		t.Fatal(err)
	}
	if err := b.BillTo(a); err == nil {
		t.Fatal("billing cycle accepted")
	}
	if err := a.BillTo(a); err == nil {
		t.Fatal("self-billing cycle accepted")
	}
}

func TestPooledDelegation(t *testing.T) {
	// A collection of database clients pooling wired memory for a shared
	// buffer-pool graft (paper §3.2).
	graft := NewAccount("bufpool-graft")
	for i := 0; i < 4; i++ {
		client := NewAccount("client")
		client.SetLimit(WiredMemory, 25)
		if err := client.Transfer(graft, WiredMemory, 25); err != nil {
			t.Fatal(err)
		}
	}
	if err := graft.Charge(WiredMemory, 100); err != nil {
		t.Fatalf("pooled charge: %v", err)
	}
	if err := graft.Charge(WiredMemory, 1); err == nil {
		t.Fatal("pool exceeded")
	}
}

func TestHighWater(t *testing.T) {
	a := NewAccount("a")
	a.SetLimit(Memory, 100)
	_ = a.Charge(Memory, 70)
	a.Release(Memory, 50)
	_ = a.Charge(Memory, 30)
	if a.HighWater(Memory) != 70 {
		t.Fatalf("high water = %d, want 70", a.HighWater(Memory))
	}
}

func TestStringIncludesKinds(t *testing.T) {
	a := NewAccount("a")
	a.SetLimit(Memory, 5)
	_ = a.Charge(Memory, 2)
	s := a.String()
	if !strings.Contains(s, "memory=2/5") {
		t.Fatalf("String() = %q", s)
	}
}

// Property: usage never exceeds limit, regardless of the operation
// sequence, and charge/release bookkeeping balances.
func TestPropertyUsageNeverExceedsLimit(t *testing.T) {
	f := func(ops []uint16, limitRaw uint16) bool {
		limit := int64(limitRaw % 1000)
		a := NewAccount("p")
		a.SetLimit(Memory, limit)
		for _, op := range ops {
			n := int64(op % 97)
			if op%2 == 0 {
				_ = a.Charge(Memory, n)
			} else {
				a.Release(Memory, n)
			}
			if a.Used(Memory) > limit || a.Used(Memory) < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: transfers conserve total limit across a set of accounts.
func TestPropertyTransferConservesLimit(t *testing.T) {
	f := func(moves []uint16) bool {
		accts := []*Account{NewAccount("a"), NewAccount("b"), NewAccount("c")}
		accts[0].SetLimit(Memory, 300)
		total := func() int64 {
			var s int64
			for _, a := range accts {
				s += a.Limit(Memory)
			}
			return s
		}
		want := total()
		for _, m := range moves {
			from := accts[int(m)%3]
			to := accts[int(m/3)%3]
			_ = from.Transfer(to, Memory, int64(m%50))
			if total() != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkChargeRelease(b *testing.B) {
	a := NewAccount("p")
	a.SetLimit(Memory, 1<<40)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.Charge(Memory, 4096); err != nil {
			b.Fatal(err)
		}
		a.Release(Memory, 4096)
	}
}

func BenchmarkBilledCharge(b *testing.B) {
	p := NewAccount("p")
	p.SetLimit(Memory, 1<<40)
	g := NewAccount("g")
	if err := g.BillTo(p); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := g.Charge(Memory, 4096); err != nil {
			b.Fatal(err)
		}
		g.Release(Memory, 4096)
	}
}
