// Package resource implements VINO's accounting for quantity-constrained
// resources (§3.2 of the paper).
//
// Every thread has a resource account holding limits for each resource
// kind (physical memory, wired memory, network buffers, ...). A freshly
// installed graft has limits of zero; the installing thread may either
// transfer part of its own limits to the graft's account or direct that
// the graft's allocations be billed against the installer's account.
// Several processes can pool rights by each transferring limit into the
// same graft account — the paper's analogy to ticket delegation in
// lottery scheduling.
//
// When a thread invokes a grafted function, the kernel swaps the thread's
// account for the graft's, so the same mechanism that stops a process
// from exceeding its limits automatically applies to the graft.
package resource

import (
	"fmt"
	"sort"
)

// Kind names a quantity-constrained resource.
type Kind string

// Resource kinds used by the simulated kernel. Users may define their own.
const (
	Memory      Kind = "memory"       // heap pages, bytes
	WiredMemory Kind = "wired-memory" // unevictable pages, bytes
	KernelHeap  Kind = "kernel-heap"  // graft heap allocations, bytes
	Threads     Kind = "threads"      // spawned worker threads
	Sockets     Kind = "sockets"      // open network endpoints
	DiskBuffers Kind = "disk-buffers" // prefetch queue slots
)

// LimitError reports an allocation denied because it would exceed the
// account's limit — the graft's request fails exactly as the process's
// would (paper §3.2).
type LimitError struct {
	Account string
	Kind    Kind
	Request int64
	Used    int64
	Limit   int64
}

func (e *LimitError) Error() string {
	return fmt.Sprintf("resource: account %q over limit for %s: request %d with %d/%d used",
		e.Account, e.Kind, e.Request, e.Used, e.Limit)
}

// Account tracks limits and usage for one principal (a process thread or a
// graft). Accounts are not safe for concurrent use; the simulated kernel
// is single-threaded by construction.
type Account struct {
	name   string
	limit  map[Kind]int64
	used   map[Kind]int64
	high   map[Kind]int64
	billTo *Account
	denied int64
}

// NewAccount creates an empty account: every limit is zero, so every
// allocation fails until limits are granted. This is the paper's "when a
// graft is installed, it initially has limits of zero".
func NewAccount(name string) *Account {
	return &Account{
		name:  name,
		limit: make(map[Kind]int64),
		used:  make(map[Kind]int64),
		high:  make(map[Kind]int64),
	}
}

// Name returns the account's diagnostic name.
func (a *Account) Name() string { return a.name }

// BillTo directs all of this account's charges to parent. Passing nil
// restores self-billing. Billing loops are rejected.
func (a *Account) BillTo(parent *Account) error {
	for p := parent; p != nil; p = p.billTo {
		if p == a {
			return fmt.Errorf("resource: billing cycle through account %q", a.name)
		}
	}
	a.billTo = parent
	return nil
}

// Billed returns the account that actually pays for this account's
// charges (itself if not redirected).
func (a *Account) Billed() *Account {
	b := a
	for b.billTo != nil {
		b = b.billTo
	}
	return b
}

// SetLimit assigns an absolute limit for kind. It is intended for root
// process accounts; grafts receive limits via Transfer.
func (a *Account) SetLimit(kind Kind, n int64) {
	if n < 0 {
		panic("resource: negative limit")
	}
	a.limit[kind] = n
}

// Limit returns the account's limit for kind (zero if never granted).
func (a *Account) Limit(kind Kind) int64 { return a.limit[kind] }

// Used returns the account's current usage of kind.
func (a *Account) Used(kind Kind) int64 { return a.used[kind] }

// HighWater returns the account's peak usage of kind.
func (a *Account) HighWater(kind Kind) int64 { return a.high[kind] }

// Available returns limit minus usage for kind on the paying account.
func (a *Account) Available(kind Kind) int64 {
	b := a.Billed()
	return b.limit[kind] - b.used[kind]
}

// Denials returns how many charges this account has had refused.
func (a *Account) Denials() int64 { return a.Billed().denied }

// Charge requests n units of kind. The charge lands on the paying account
// (this one, or the billing target). It returns a *LimitError, leaving
// usage unchanged, if the allocation would exceed the limit.
func (a *Account) Charge(kind Kind, n int64) error {
	if n < 0 {
		panic("resource: negative charge; use Release")
	}
	b := a.Billed()
	if b.used[kind]+n > b.limit[kind] {
		b.denied++
		return &LimitError{Account: b.name, Kind: kind, Request: n, Used: b.used[kind], Limit: b.limit[kind]}
	}
	b.used[kind] += n
	if b.used[kind] > b.high[kind] {
		b.high[kind] = b.used[kind]
	}
	return nil
}

// Release returns n units of kind to the paying account. Releasing more
// than is used clamps to zero (the kernel may release on behalf of an
// aborted graft whose partial state was already undone).
func (a *Account) Release(kind Kind, n int64) {
	if n < 0 {
		panic("resource: negative release; use Charge")
	}
	b := a.Billed()
	b.used[kind] -= n
	if b.used[kind] < 0 {
		b.used[kind] = 0
	}
}

// Transfer moves limit (not usage) from this account to another: the
// paper's "the installing thread may transfer arbitrary amounts from its
// own limits to the newly installed graft". The source must have the
// headroom: you cannot transfer limit that your own usage still needs.
func (a *Account) Transfer(to *Account, kind Kind, n int64) error {
	if n < 0 {
		panic("resource: negative transfer")
	}
	if to == a {
		return nil
	}
	if a.limit[kind]-a.used[kind] < n {
		return &LimitError{Account: a.name, Kind: kind, Request: n, Used: a.used[kind], Limit: a.limit[kind]}
	}
	a.limit[kind] -= n
	to.limit[kind] += n
	return nil
}

// AccountSnap is a deep copy of an account's balances, taken by the
// crash checkpointer. The billing redirection is identity, not balance,
// and is left alone by restores.
type AccountSnap struct {
	limit, used, high map[Kind]int64
	denied            int64
}

func copyKinds(m map[Kind]int64) map[Kind]int64 {
	out := make(map[Kind]int64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// Snapshot deep-copies the account's limits, usage, high-water marks
// and denial count.
func (a *Account) Snapshot() *AccountSnap {
	return &AccountSnap{
		limit:  copyKinds(a.limit),
		used:   copyKinds(a.used),
		high:   copyKinds(a.high),
		denied: a.denied,
	}
}

// RestoreSnapshot replaces the account's balances with a snapshot's.
// The snapshot is copied, not aliased: restoring from the same snapshot
// repeatedly always yields the same state.
func (a *Account) RestoreSnapshot(s *AccountSnap) {
	a.limit = copyKinds(s.limit)
	a.used = copyKinds(s.used)
	a.high = copyKinds(s.high)
	a.denied = s.denied
}

// Kinds returns the kinds with a nonzero limit or usage, sorted.
func (a *Account) Kinds() []Kind {
	seen := make(map[Kind]bool)
	for k, v := range a.limit {
		if v != 0 {
			seen[k] = true
		}
	}
	for k, v := range a.used {
		if v != 0 {
			seen[k] = true
		}
	}
	out := make([]Kind, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// String summarises the account for diagnostics.
func (a *Account) String() string {
	s := fmt.Sprintf("account %q", a.name)
	if a.billTo != nil {
		s += fmt.Sprintf(" (billed to %q)", a.billTo.name)
	}
	for _, k := range a.Kinds() {
		s += fmt.Sprintf(" %s=%d/%d", k, a.used[k], a.limit[k])
	}
	return s
}
