package fault

import (
	"fmt"
	"math/rand"
	"time"

	"vino/internal/crash"
)

// Plan mutation: the campaign driver's genome operators. A fault plan's
// Encode/Decode text form is the genome — every mutant must re-encode
// and re-decode losslessly, so anything the mutator produces can be
// saved as a -faultfile, hand-edited, and replayed. MutatePlan therefore
// round-trips each offspring through Encode/Decode before returning it:
// an operator that produced an inexpressible rule would be caught
// immediately, not after a campaign checked a broken reproducer into
// its corpus.
//
// The operators mirror how a human would probe a reproducer by hand:
// drop a rule, duplicate-and-perturb one, jitter a magnitude or
// cadence, re-aim a crash rule at a different site, graft a fresh crash
// rule in, flip a read rule to the write path, swap the misbehaving
// graft, or re-seed the workload-coupled decisions. All randomness
// comes from the caller's rng, drawn in a fixed order, so a campaign
// replays its whole mutation history from one master seed.

// mutationOps is the number of distinct operators MutatePlan draws
// from; exported indirectly through MutateOpNames for reporting.
const mutationOps = 8

// MutateOpNames names the operators in draw order (coverage reporting).
func MutateOpNames() []string {
	return []string{"drop", "splice", "perturb", "retime", "site-hop", "crash-graft", "add-rule", "reseed"}
}

// MutatePlan derives one offspring from p using 1–3 operator
// applications drawn from rng. The parent is never modified. The
// offspring is guaranteed to Validate and to round-trip through
// Encode/Decode; if every applied operator degenerates (e.g. dropping
// from a one-rule plan), the offspring may equal the parent.
func MutatePlan(p *Plan, rng *rand.Rand) *Plan {
	m := clonePlan(p)
	n := 1 + rng.Intn(3)
	for i := 0; i < n; i++ {
		applyOp(m, rng)
	}
	// The genome is the text form: canonicalize through it. A failed
	// round-trip means an operator bug; fall back to the parent clone
	// rather than poisoning the campaign.
	out, err := Decode(m.Encode())
	if err != nil {
		return clonePlan(p)
	}
	return out
}

func clonePlan(p *Plan) *Plan {
	return &Plan{Seed: p.Seed, Rules: append([]Rule(nil), p.Rules...)}
}

// applyOp applies one randomly drawn operator in place.
func applyOp(m *Plan, rng *rand.Rand) {
	switch rng.Intn(mutationOps) {
	case 0: // drop: remove one rule (never the last — an empty plan injects nothing)
		if len(m.Rules) > 1 {
			i := rng.Intn(len(m.Rules))
			m.Rules = append(m.Rules[:i], m.Rules[i+1:]...)
		}
	case 1: // splice: duplicate a rule with a perturbed trigger at a random position
		if len(m.Rules) > 0 {
			r := m.Rules[rng.Intn(len(m.Rules))]
			perturbTrigger(&r, rng)
			at := rng.Intn(len(m.Rules) + 1)
			m.Rules = append(m.Rules[:at], append([]Rule{r}, m.Rules[at:]...)...)
		}
	case 2: // perturb: jitter one rule's magnitudes
		if len(m.Rules) > 0 {
			perturbMagnitude(&m.Rules[rng.Intn(len(m.Rules))], rng)
		}
	case 3: // retime: jitter one rule's trigger (cadence or instant)
		if len(m.Rules) > 0 {
			perturbTrigger(&m.Rules[rng.Intn(len(m.Rules))], rng)
		}
	case 4: // site-hop: re-aim a crash rule at a different site
		if idx := pickClass(m, rng, Panic); idx >= 0 {
			sites := crash.Sites()
			m.Rules[idx].Site = sites[rng.Intn(len(sites))]
		}
	case 5: // crash-graft: graft a fresh panic rule at a random site
		sites := crash.Sites()
		s := sites[rng.Intn(len(sites))]
		m.Rules = append(m.Rules, Rule{Class: Panic, Site: s, EveryN: crashEveryN(rng, s)})
	case 6: // add-rule: a fresh generated rule of a random known class
		all := AllClasses()
		m.Rules = append(m.Rules, genRule(rng, all[rng.Intn(len(all))]))
	case 7: // reseed: new workload-coupled seed (install variation, kernel rng)
		m.Seed = rng.Int63()
	}
}

// pickClass returns the index of a random rule of class c, or -1.
func pickClass(m *Plan, rng *rand.Rand, c Class) int {
	var idxs []int
	for i, r := range m.Rules {
		if r.Class == c {
			idxs = append(idxs, i)
		}
	}
	if len(idxs) == 0 {
		return -1
	}
	return idxs[rng.Intn(len(idxs))]
}

// perturbTrigger jitters when a rule fires, preserving its trigger
// style (EveryN stays a cadence, At stays an instant). Cadence floors
// are class-aware: a net rule firing on *every* connection would fail
// the workload itself (nothing ever served) rather than probe the
// kernel, so churn classes keep a minimum survivable cadence.
func perturbTrigger(r *Rule, rng *rand.Rand) {
	if r.EveryN > 0 {
		r.EveryN = jitter(r.EveryN, rng, cadenceFloor(r.Class))
		return
	}
	r.At = time.Duration(jitter(int64(r.At/time.Millisecond), rng, 1)) * time.Millisecond
	if r.At > maxInstant {
		r.At = maxInstant
	}
	if r.Window > 0 {
		r.Window = time.Duration(jitter(int64(r.Window/time.Millisecond), rng, 1)) * time.Millisecond
		if r.Window > maxWindow {
			r.Window = maxWindow
		}
	}
}

// Mutation clamps: repeated jitter is multiplicative, so magnitudes and
// horizons need ceilings or a long lineage drifts into plans that stall
// the simulation (a pressure spike wider than the frame pool) or fire
// after the workload ended (an instant past the virtual horizon).
const (
	maxInstant       = 500 * time.Millisecond
	maxWindow        = 500 * time.Millisecond
	maxLatencyFactor = 32
	maxPressure      = 72 // below the smallest chaos frame pool (96)
)

// cadenceFloor is the smallest EveryN that still leaves the workload
// able to make progress for cadence-sensitive classes.
func cadenceFloor(c Class) int64 {
	switch c {
	case Net:
		return 2 // dropping every connection fails the echo workload outright
	case NetIO:
		return 3 // a handler needs a read and a write to serve at all
	default:
		return 1
	}
}

// perturbMagnitude jitters a rule's class-specific magnitudes.
func perturbMagnitude(r *Rule, rng *rand.Rand) {
	switch r.Class {
	case Disk, NetIO:
		r.Write = !r.Write
	case Latency:
		switch rng.Intn(3) {
		case 0:
			r.Factor = clamp(jitter(max64(r.Factor, 2), rng, 2), maxLatencyFactor)
		case 1:
			r.SeekFactor = clamp(jitter(max64(r.SeekFactor, 2), rng, 2), maxLatencyFactor)
		case 2:
			r.TransferFactor = clamp(jitter(max64(r.TransferFactor, 2), rng, 2), maxLatencyFactor)
		}
	case Pressure:
		r.Factor = clamp(jitter(max64(r.Factor, 8), rng, 1), maxPressure)
	case Graft, Lock:
		r.Graft = GraftKeys[rng.Intn(len(GraftKeys))]
	case Panic:
		r.EveryN = jitter(r.EveryN, rng, 1)
	}
}

// jitter scales v by a factor in [0.5, 1.5) and clamps to floor.
func jitter(v int64, rng *rand.Rand, floor int64) int64 {
	if v <= 0 {
		v = 1
	}
	out := v/2 + rng.Int63n(v+1)
	if out < floor {
		out = floor
	}
	return out
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func clamp(v, ceil int64) int64 {
	if v > ceil {
		return ceil
	}
	return v
}

// Validate checks that every rule in the plan satisfies the decoder's
// constraints — exactly one trigger, a site on every panic rule, a
// graft key on every graft/lock rule — i.e. that the plan is
// expressible in the Encode/Decode genome form. The campaign validates
// every mutant; tests validate every operator's output.
func (p *Plan) Validate() error {
	known := make(map[Class]bool)
	for _, c := range AllClasses() {
		known[c] = true
	}
	for i, r := range p.Rules {
		if !known[r.Class] {
			return fmt.Errorf("fault: rule %d: unknown class %q", i, r.Class)
		}
		if r.EveryN > 0 && r.At > 0 {
			return fmt.Errorf("fault: rule %d: both at= and every= set", i)
		}
		if r.EveryN <= 0 && r.At <= 0 {
			return fmt.Errorf("fault: rule %d (%s): no trigger", i, r.Class)
		}
		if r.Class == Panic && r.Site == "" {
			return fmt.Errorf("fault: rule %d: panic rule without site", i)
		}
		if (r.Class == Graft || r.Class == Lock) && r.Graft == "" {
			return fmt.Errorf("fault: rule %d: %s rule without graft key", i, r.Class)
		}
	}
	return nil
}
