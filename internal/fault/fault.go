// Package fault is the simulated kernel's deterministic fault plane: a
// seed-driven schedule of environment faults (disk I/O errors, latency
// degradation, memory-frame pressure, connection churn) and graft faults
// (a library of misbehaving GIR sources) that the chaos harness injects
// into a running kernel and then proves the survival machinery — SFI,
// transactions, lock time-outs, resource accounts, watchdogs — restores
// every invariant.
//
// The paper's thesis is that a VINO kernel *survives* misbehaved
// extensions; this package exists to manufacture misbehavior on demand.
// Everything is driven by a PRNG seeded from kernel configuration, so
// the same seed reproduces the identical injection sequence — and, on
// the simulator's virtual clock, a byte-identical flight-recorder dump.
//
// Architecture: a Plan is a pure description (a list of Rules, each
// saying *what* fires and *when*); an Injector interprets the plan at
// run time. Subsystems consult the injector at hook sites — the disk
// read path, the frame allocator, the connection dispatcher — through
// nil-safe methods, so an unconfigured kernel pays one nil check per
// site. Graft-class rules are not interpreted by the injector at all:
// the chaos harness reads them from the plan and installs the
// corresponding misbehaving graft itself, reporting each installation
// back through Note so the trace stays the single source of truth.
package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"vino/internal/crash"
	"vino/internal/simclock"
	"vino/internal/trace"
)

// Class names one category of injected fault.
type Class string

// The fault classes understood by the plan generator and the hook sites.
const (
	// Disk injects read/write I/O errors on the simulated disk.
	Disk Class = "disk"
	// Latency multiplies disk service time, either for one access
	// (every-Nth) or for a virtual-time window.
	Latency Class = "latency"
	// Pressure steals physical frames from the VM system for a window,
	// forcing evictions exactly as a memory spike would.
	Pressure Class = "pressure"
	// Net resets incoming connections before their handlers run
	// (connection churn): event grafts see dead sockets.
	Net Class = "net"
	// Graft installs a misbehaving graft from the library (infinite
	// loop, wild store, resource blowout, poisoned undo) at a graft
	// point chosen by the harness.
	Graft Class = "graft"
	// Lock installs the lock-hoarding graft: lock(resourceA); while(1).
	Lock Class = "lock"
	// NetIO fails reads or writes on established connections mid-stream,
	// inside running event-graft handlers — unlike Net, which only
	// resets connections before their handlers start. Extended class:
	// selected explicitly or via ExtendedClasses, never by default.
	NetIO Class = "netio"
	// Panic injects a kernel crash at a seed-derived hook site —
	// including *inside* commit, abort, and undo processing, the escape
	// routes §6 admits the transaction system cannot survive. Rules of
	// this class carry a Site; the injector panics with a classified
	// *crash.Panic that the kernel boundary contains and recovers from.
	// Crash class: fires only while the injector's crash gate is armed
	// (EnableCrash), so classic chaos phases never see it.
	Panic Class = "panic"
)

// Classes returns every classic class, in canonical order. This set is
// frozen: generated plans for a given seed must stay stable across
// releases so recorded chaos dumps remain reproducible.
func Classes() []Class {
	return []Class{Disk, Latency, Pressure, Net, Graft, Lock}
}

// ExtendedClasses returns the classic classes plus the extended ones
// (mid-stream connection faults).
func ExtendedClasses() []Class {
	return append(Classes(), NetIO)
}

// AllClasses returns every class the decoder accepts: the extended set
// plus the crash class (panic). The crash class never joins
// ExtendedClasses — `-extended` widens the environment-fault surface,
// while crashes are armed separately (`-crash`) because they need the
// recovery machinery to be survivable.
func AllClasses() []Class {
	return append(ExtendedClasses(), Panic)
}

// ParseClasses parses a comma-separated class list ("disk,graft,lock").
// The empty string means every class.
func ParseClasses(s string) ([]Class, error) {
	if strings.TrimSpace(s) == "" {
		return Classes(), nil
	}
	known := make(map[Class]bool)
	for _, c := range AllClasses() {
		known[c] = true
	}
	var out []Class
	seen := make(map[Class]bool)
	for _, part := range strings.Split(s, ",") {
		c := Class(strings.TrimSpace(part))
		if c == "" {
			continue
		}
		if !known[c] {
			return nil, fmt.Errorf("fault: unknown class %q (known: %v)", c, Classes())
		}
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	if len(out) == 0 {
		return Classes(), nil
	}
	return out, nil
}

// ErrInjected is the sentinel wrapped by every injected I/O error, so
// subsystems and tests can distinguish manufactured failures from real
// bugs with errors.Is.
var ErrInjected = errors.New("fault: injected")

// Rule is one scheduled injection. Exactly one trigger is set: At (a
// virtual-clock instant; for windowed classes the window start) or
// EveryN (every Nth consultation of the hook site).
type Rule struct {
	Class Class
	// At is the virtual instant the rule arms: one-shot classes fire
	// once at the first consultation at or after At; windowed classes
	// open a Window-long active window at that first consultation.
	At time.Duration
	// EveryN fires on every Nth consultation of the rule's hook site.
	EveryN int64
	// Window is the active duration for Latency and Pressure rules
	// triggered by At.
	Window time.Duration
	// Factor is the class-specific magnitude: latency multiplier,
	// frames stolen.
	Factor int64
	// SeekFactor and TransferFactor, when > 0, scale the seek and
	// transfer components of disk service time separately (a Latency
	// rule with only Factor scales both uniformly). A worn actuator and
	// a saturated bus degrade differently; sequential workloads only
	// feel the latter.
	SeekFactor     int64
	TransferFactor int64
	// Write selects the write path for Disk and NetIO rules.
	Write bool
	// Graft is the graft-library key for Graft and Lock rules.
	Graft string
	// Site aims a Panic rule at one crash site (dispatch, commit,
	// abort, undo, lock, resource).
	Site crash.Site
}

// String renders the rule for plan inspection.
func (r Rule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s", r.Class)
	switch {
	case r.EveryN > 0:
		fmt.Fprintf(&b, " every %d", r.EveryN)
	default:
		fmt.Fprintf(&b, " at %v", r.At)
	}
	if r.Window > 0 {
		fmt.Fprintf(&b, " for %v", r.Window)
	}
	if r.Factor > 0 {
		fmt.Fprintf(&b, " x%d", r.Factor)
	}
	if r.SeekFactor > 0 {
		fmt.Fprintf(&b, " seek-x%d", r.SeekFactor)
	}
	if r.TransferFactor > 0 {
		fmt.Fprintf(&b, " xfer-x%d", r.TransferFactor)
	}
	if r.Write {
		b.WriteString(" (write)")
	}
	if r.Graft != "" {
		fmt.Fprintf(&b, " graft=%s", r.Graft)
	}
	if r.Site != "" {
		fmt.Fprintf(&b, " site=%s", r.Site)
	}
	return b.String()
}

// Plan is a deterministic injection schedule: the seed it was derived
// from plus the concrete rules. Plans are pure data; hand-built plans
// (tests) and generated plans (NewPlan) are interpreted identically.
type Plan struct {
	Seed  int64
	Rules []Rule
}

// NewPlan derives rulesPerClass rules for each requested class from a
// PRNG seeded with seed. The same (seed, classes, rulesPerClass) always
// yields the identical plan.
func NewPlan(seed int64, classes []Class, rulesPerClass int) *Plan {
	if rulesPerClass <= 0 {
		rulesPerClass = 3
	}
	rng := rand.New(rand.NewSource(seed))
	p := &Plan{Seed: seed}
	for _, c := range classes {
		for i := 0; i < rulesPerClass; i++ {
			p.Rules = append(p.Rules, genRule(rng, c))
		}
	}
	return p
}

// genRule draws one rule for class c. All draws come from rng in a
// fixed order so the stream is reproducible.
func genRule(rng *rand.Rand, c Class) Rule {
	r := Rule{Class: c}
	switch c {
	case Disk:
		r.EveryN = 5 + rng.Int63n(36) // every 5th..40th access
		r.Write = rng.Intn(10) < 3    // ~30% hit the write path
	case Latency:
		if rng.Intn(2) == 0 {
			r.EveryN = 4 + rng.Int63n(20) // one slow access every N
		} else {
			r.At = time.Duration(5+rng.Int63n(200)) * time.Millisecond
			r.Window = time.Duration(20+rng.Int63n(60)) * time.Millisecond
		}
		r.Factor = 2 + rng.Int63n(7) // 2x..8x service time
	case Pressure:
		r.At = time.Duration(10+rng.Int63n(290)) * time.Millisecond
		r.Window = time.Duration(30+rng.Int63n(70)) * time.Millisecond
		r.Factor = 8 + rng.Int63n(57) // 8..64 frames stolen
	case Net:
		r.EveryN = 2 + rng.Int63n(4) // reset every 2nd..5th connection
	case Graft:
		r.EveryN = 3 + rng.Int63n(13) // at workload iteration 3..15
		r.Graft = GraftKeys[rng.Intn(len(GraftKeys))]
	case Lock:
		r.EveryN = 4 + rng.Int63n(9)
		r.Graft = GraftHoard
	case NetIO:
		r.EveryN = 3 + rng.Int63n(6) // fail every 3rd..8th stream op
		r.Write = rng.Intn(2) == 0
	case Panic:
		sites := crash.Sites()
		r.Site = sites[rng.Intn(len(sites))]
		r.EveryN = crashEveryN(rng, r.Site)
	}
	return r
}

// crashEveryN draws a Panic rule's cadence. Sites nearer the front of a
// graft invocation (dispatch) would otherwise shadow the deeper ones —
// a dispatch crash ends the round before commit/abort/undo processing
// is ever reached — so the shallow sites fire sparsely and the deep
// ones densely.
func crashEveryN(rng *rand.Rand, s crash.Site) int64 {
	switch s {
	case crash.SiteDispatch:
		return 9 + rng.Int63n(6)
	case crash.SiteLock:
		return 6 + rng.Int63n(5)
	case crash.SiteResource:
		return 5 + rng.Int63n(4)
	case crash.SitePager:
		// Evictions only start once the frame pool fills, so the
		// mid-eviction site needs a moderate cadence to fire at all.
		return 7 + rng.Int63n(5)
	case crash.SiteAccept:
		// Accepts are the sparsest traffic in the crash phase — one
		// connection per surviving round — so mid-accept crashes need a
		// short cadence to strike at all.
		return 4 + rng.Int63n(3)
	default: // commit, abort, undo: the paper's uncovered escape routes
		return 4 + rng.Int63n(4)
	}
}

// NewCrashRules derives perSite Panic rules for every crash site from a
// PRNG seeded with seed. The chaos harness appends them to its plan
// when the crash phase is requested; equal arguments yield equal rules.
func NewCrashRules(seed int64, perSite int) []Rule {
	if perSite <= 0 {
		perSite = 1
	}
	rng := rand.New(rand.NewSource(seed ^ 0x637261736865732e)) // distinct stream from NewPlan
	var out []Rule
	for _, s := range crash.Sites() {
		for i := 0; i < perSite; i++ {
			out = append(out, Rule{Class: Panic, Site: s, EveryN: crashEveryN(rng, s)})
		}
	}
	return out
}

// RulesFor returns the plan's rules of one class, in plan order.
func (p *Plan) RulesFor(c Class) []Rule {
	var out []Rule
	for _, r := range p.Rules {
		if r.Class == c {
			out = append(out, r)
		}
	}
	return out
}

// Classes returns the distinct classes present in the plan, sorted.
func (p *Plan) Classes() []Class {
	seen := make(map[Class]bool)
	for _, r := range p.Rules {
		seen[r.Class] = true
	}
	out := make([]Class, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// String renders the plan for inspection (`vinosim -chaos` prints it).
func (p *Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fault plan (seed %d, %d rules)\n", p.Seed, len(p.Rules))
	for i, r := range p.Rules {
		fmt.Fprintf(&b, "  [%2d] %s\n", i, r)
	}
	return b.String()
}

// Injector interprets a plan against the virtual clock. One per kernel;
// nil injectors are inert, so hook sites call unconditionally.
type Injector struct {
	plan     *Plan
	clock    *simclock.Clock
	tr       *trace.Buffer
	disarmed bool

	fired     int64
	firedBy   map[Class]int64
	reads     int64
	writes    int64
	conns     int64
	netReads  int64
	netWrites int64

	// Crash plane: gated separately from Armed so classic phases of a
	// crash-mode run never panic. siteHits counts consultations per
	// site only while the gate is open; crashed counts fired panics.
	crashEnabled bool
	siteHits     map[crash.Site]int64
	crashed      map[crash.Site]int64

	// SyntheticTaint re-enables the legacy delayed-detection schedule
	// (every third crash at a site backdates the damage by 25 ms).
	// Superseded by audit-derived taint — the kernel now backdates a
	// panic when a checkpoint captured an already-inconsistent image —
	// and kept only as a test hook so the ring-recovery regressions can
	// exercise RestoreBefore deterministically.
	SyntheticTaint bool

	oneShot   map[int]bool          // rule index -> already fired (At one-shots)
	windowEnd map[int]time.Duration // windowed rule index -> armed window close
}

// NewInjector builds an injector for plan over clock, emitting
// fault-inject events to tr.
func NewInjector(p *Plan, clock *simclock.Clock, tr *trace.Buffer) *Injector {
	return &Injector{
		plan:      p,
		clock:     clock,
		tr:        tr,
		firedBy:   make(map[Class]int64),
		oneShot:   make(map[int]bool),
		windowEnd: make(map[int]time.Duration),
		siteHits:  make(map[crash.Site]int64),
		crashed:   make(map[crash.Site]int64),
	}
}

// Plan returns the schedule the injector interprets (nil-safe).
func (in *Injector) Plan() *Plan {
	if in == nil {
		return nil
	}
	return in.plan
}

// Fired reports how many injections have fired so far (nil-safe).
func (in *Injector) Fired() int64 {
	if in == nil {
		return 0
	}
	return in.fired
}

// FiredByClass reports injections fired so far, bucketed by class
// (nil-safe; the returned map is a copy).
func (in *Injector) FiredByClass() map[Class]int64 {
	out := make(map[Class]int64)
	if in == nil {
		return out
	}
	for c, n := range in.firedBy {
		out[c] = n
	}
	return out
}

// Disarm silences the injector: every hook site reports "no fault"
// until Rearm. The chaos harness disarms before its clean follow-up
// workload.
func (in *Injector) Disarm() {
	if in != nil {
		in.disarmed = true
	}
}

// Rearm re-enables a disarmed injector.
func (in *Injector) Rearm() {
	if in != nil {
		in.disarmed = false
	}
}

// Armed reports whether the injector is live (nil-safe).
func (in *Injector) Armed() bool { return in != nil && !in.disarmed }

// fire records one injection in the flight recorder.
func (in *Injector) fire(c Class, subject, detail string) {
	in.fired++
	in.firedBy[c]++
	in.tr.Emit(in.clock.Now(), trace.FaultInject, fmt.Sprintf("%s:%s", c, subject), detail)
}

// due evaluates a counter- or instant-triggered rule. count is the hook
// site's consultation counter (1-based).
func (in *Injector) due(idx int, r Rule, count int64) bool {
	if r.EveryN > 0 {
		return count%r.EveryN == 0
	}
	if in.clock.Now() >= r.At && !in.oneShot[idx] {
		in.oneShot[idx] = true
		return true
	}
	return false
}

// windowActive evaluates a windowed rule. The window arms at the first
// consultation at or after the rule's instant and stays active for the
// rule's duration from that point — so a subsystem that only starts
// consulting late in the timeline still feels every scheduled window.
// The first consultation inside the window is traced.
func (in *Injector) windowActive(idx int, r Rule) bool {
	now := in.clock.Now()
	end, armed := in.windowEnd[idx]
	if !armed {
		if now < r.At {
			return false
		}
		in.windowEnd[idx] = now + r.Window
		in.fire(r.Class, "window", r.String())
		return true
	}
	return now < end
}

// DiskRead is consulted once per synchronous or prefetch block read. It
// returns separate scale factors (>= 1) for the seek and transfer
// components of the access's service time and, when an error rule
// fires, the injected I/O error. A Latency rule carrying only Factor
// scales both components uniformly — by integer distributivity this is
// exactly the old single-multiplier behaviour; rules with SeekFactor or
// TransferFactor degrade the components independently. Nil-safe.
func (in *Injector) DiskRead(lba int64) (seekScale, xferScale int64, err error) {
	if !in.Armed() {
		return 1, 1, nil
	}
	in.reads++
	seekScale, xferScale = 1, 1
	for i, r := range in.plan.Rules {
		switch r.Class {
		case Disk:
			if r.Write {
				continue
			}
			if in.due(i, r, in.reads) {
				in.fire(Disk, fmt.Sprintf("lba %d", lba), "injected read error")
				err = fmt.Errorf("%w: disk read error at lba %d", ErrInjected, lba)
			}
		case Latency:
			active := false
			if r.EveryN > 0 {
				if in.reads%r.EveryN == 0 {
					in.fire(Latency, fmt.Sprintf("lba %d", lba), latencyDetail(r))
					active = true
				}
			} else if in.windowActive(i, r) {
				active = true
			}
			if active {
				if r.Factor > 0 {
					seekScale *= r.Factor
					xferScale *= r.Factor
				}
				if r.SeekFactor > 0 {
					seekScale *= r.SeekFactor
				}
				if r.TransferFactor > 0 {
					xferScale *= r.TransferFactor
				}
			}
		}
	}
	return seekScale, xferScale, err
}

// latencyDetail renders the trace detail for a firing latency rule,
// preserving the classic "xN service time" form for uniform rules.
func latencyDetail(r Rule) string {
	if r.SeekFactor == 0 && r.TransferFactor == 0 {
		return fmt.Sprintf("x%d service time", r.Factor)
	}
	var parts []string
	if r.Factor > 0 {
		parts = append(parts, fmt.Sprintf("x%d service time", r.Factor))
	}
	if r.SeekFactor > 0 {
		parts = append(parts, fmt.Sprintf("x%d seek", r.SeekFactor))
	}
	if r.TransferFactor > 0 {
		parts = append(parts, fmt.Sprintf("x%d transfer", r.TransferFactor))
	}
	return strings.Join(parts, ", ")
}

// DiskWrite is consulted once per written block; it returns the
// injected I/O error when a write rule fires. Nil-safe.
func (in *Injector) DiskWrite(lba int64) error {
	if !in.Armed() {
		return nil
	}
	in.writes++
	var err error
	for i, r := range in.plan.Rules {
		if r.Class != Disk || !r.Write {
			continue
		}
		if in.due(i, r, in.writes) {
			in.fire(Disk, fmt.Sprintf("lba %d", lba), "injected write error")
			err = fmt.Errorf("%w: disk write error at lba %d", ErrInjected, lba)
		}
	}
	return err
}

// StolenFrames reports how many physical frames pressure rules are
// currently holding hostage. The VM system subtracts it from its free
// pool; the spike ends when the window closes. Nil-safe.
func (in *Injector) StolenFrames() int {
	if !in.Armed() {
		return 0
	}
	stolen := 0
	for i, r := range in.plan.Rules {
		if r.Class != Pressure {
			continue
		}
		if in.windowActive(i, r) {
			stolen += int(r.Factor)
		}
	}
	return stolen
}

// DropConnection is consulted once per accepted connection; true means
// the connection is reset before any handler runs. Nil-safe.
func (in *Injector) DropConnection(id int64) bool {
	if !in.Armed() {
		return false
	}
	in.conns++
	drop := false
	for i, r := range in.plan.Rules {
		if r.Class != Net {
			continue
		}
		if in.due(i, r, in.conns) {
			in.fire(Net, fmt.Sprintf("conn %d", id), "connection reset")
			drop = true
		}
	}
	return drop
}

// NetRead is consulted once per read on an established connection
// (inside a running handler, not at accept). When a NetIO read rule
// fires it returns the injected stream error; the network layer is
// expected to tear the connection down. Nil-safe.
func (in *Injector) NetRead(conn int64) error {
	if !in.Armed() {
		return nil
	}
	in.netReads++
	var err error
	for i, r := range in.plan.Rules {
		if r.Class != NetIO || r.Write {
			continue
		}
		if in.due(i, r, in.netReads) {
			in.fire(NetIO, fmt.Sprintf("conn %d", conn), "injected mid-stream read failure")
			err = fmt.Errorf("%w: mid-stream read failure on conn %d", ErrInjected, conn)
		}
	}
	return err
}

// NetWrite is the write-path twin of NetRead. Nil-safe.
func (in *Injector) NetWrite(conn int64) error {
	if !in.Armed() {
		return nil
	}
	in.netWrites++
	var err error
	for i, r := range in.plan.Rules {
		if r.Class != NetIO || !r.Write {
			continue
		}
		if in.due(i, r, in.netWrites) {
			in.fire(NetIO, fmt.Sprintf("conn %d", conn), "injected mid-stream write failure")
			err = fmt.Errorf("%w: mid-stream write failure on conn %d", ErrInjected, conn)
		}
	}
	return err
}

// Note records a harness-driven injection (a misbehaving graft
// installed from the library) so graft faults appear in the same trace
// stream as environment faults. Nil-safe.
func (in *Injector) Note(c Class, subject, detail string) {
	if !in.Armed() {
		return
	}
	in.fire(c, subject, detail)
}

// EnableCrash opens the crash gate: Panic rules may fire at their
// sites. The chaos harness opens it only for the crash phase; the
// kernel closes it while a recovery is in progress. Nil-safe.
func (in *Injector) EnableCrash() {
	if in != nil {
		in.crashEnabled = true
	}
}

// DisableCrash closes the crash gate. Nil-safe.
func (in *Injector) DisableCrash() {
	if in != nil {
		in.crashEnabled = false
	}
}

// CrashArmed reports whether injected crashes can fire (nil-safe).
func (in *Injector) CrashArmed() bool { return in != nil && in.crashEnabled && !in.disarmed }

// CrashedBySite reports fired panics per crash site (nil-safe copy).
func (in *Injector) CrashedBySite() map[crash.Site]int64 {
	out := make(map[crash.Site]int64)
	if in == nil {
		return out
	}
	for s, n := range in.crashed {
		out[s] = n
	}
	return out
}

// MaybeCrash is the crash-site hook: consulted at each instrumented
// point in the kernel (graft dispatch, txn commit/abort/undo, lock
// release, resource release). When a Panic rule aimed at this site is
// due, the hook records the injection and panics with a classified
// *crash.Panic carrying the guard key of the graft whose dispatch is
// active (crash attribution for the health ledger). Nil-safe and free
// while the crash gate is closed.
func (in *Injector) MaybeCrash(site crash.Site, graftKey string) {
	if !in.CrashArmed() {
		return
	}
	in.siteHits[site]++
	for i, r := range in.plan.Rules {
		if r.Class != Panic || r.Site != site {
			continue
		}
		if in.due(i, r, in.siteHits[site]) {
			in.fire(Panic, string(site), fmt.Sprintf("injected kernel panic (%s)", crash.SiteClass(site)))
			in.crashed[site]++
			p := &crash.Panic{
				Class:  crash.SiteClass(site),
				Site:   site,
				Graft:  graftKey,
				Reason: "injected crash",
			}
			// Legacy synthetic delayed detection (test hook only): every
			// third crash at a site backdates the corruption by 25 ms of
			// virtual time, so checkpoints younger than the taint are
			// suspect. Production taint now comes from audit evidence —
			// a checkpoint whose capture-time audit found inconsistent
			// state marks the damage as predating it (crash.EvidenceTaint).
			// Derived from the injection sequence, not the rng stream, so
			// enabling it changes no plan and no single-checkpoint trace.
			if in.SyntheticTaint && in.crashed[site]%3 == 0 {
				if t := in.clock.Now() - 25*time.Millisecond; t > 0 {
					p.TaintedAt = t
				}
			}
			panic(p)
		}
	}
}
