package fault

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"vino/internal/crash"
)

// planMagic is the first line of every serialized plan. The trailing
// version lets the format grow without breaking old reproducers.
const planMagic = "vino-fault-plan v1"

// Encode renders the plan in a stable, line-oriented text form that
// Decode reads back verbatim: a failing chaos seed can be captured to a
// file, minimized by deleting rule lines, and replayed as a standalone
// reproducer (vinosim -faultfile). Encode(Decode(s)) is the identity on
// well-formed input modulo comments and blank lines.
//
//	vino-fault-plan v1
//	seed 42
//	rule disk every=17 write
//	rule latency at=55ms window=40ms factor=3
//	rule latency every=9 seek=4 transfer=2
//	rule graft every=7 graft=wild_store
func (p *Plan) Encode() string {
	var b strings.Builder
	b.WriteString(planMagic + "\n")
	fmt.Fprintf(&b, "seed %d\n", p.Seed)
	for _, r := range p.Rules {
		b.WriteString(encodeRule(r) + "\n")
	}
	return b.String()
}

func encodeRule(r Rule) string {
	parts := []string{"rule", string(r.Class)}
	if r.EveryN > 0 {
		parts = append(parts, fmt.Sprintf("every=%d", r.EveryN))
	} else {
		parts = append(parts, fmt.Sprintf("at=%s", r.At))
	}
	if r.Window > 0 {
		parts = append(parts, fmt.Sprintf("window=%s", r.Window))
	}
	if r.Factor > 0 {
		parts = append(parts, fmt.Sprintf("factor=%d", r.Factor))
	}
	if r.SeekFactor > 0 {
		parts = append(parts, fmt.Sprintf("seek=%d", r.SeekFactor))
	}
	if r.TransferFactor > 0 {
		parts = append(parts, fmt.Sprintf("transfer=%d", r.TransferFactor))
	}
	if r.Write {
		parts = append(parts, "write")
	}
	if r.Graft != "" {
		parts = append(parts, "graft="+r.Graft)
	}
	if r.Site != "" {
		parts = append(parts, "site="+string(r.Site))
	}
	return strings.Join(parts, " ")
}

// Decode parses a plan serialized by Encode (or written by hand).
// Blank lines and lines starting with '#' are ignored.
func Decode(s string) (*Plan, error) {
	lines := strings.Split(s, "\n")
	p := &Plan{}
	sawMagic, sawSeed := false, false
	for i, raw := range lines {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !sawMagic {
			if line != planMagic {
				return nil, fmt.Errorf("fault: line %d: expected %q header, got %q", i+1, planMagic, line)
			}
			sawMagic = true
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "seed":
			if len(fields) != 2 {
				return nil, fmt.Errorf("fault: line %d: seed wants one argument", i+1)
			}
			n, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("fault: line %d: bad seed: %v", i+1, err)
			}
			p.Seed = n
			sawSeed = true
		case "rule":
			r, err := decodeRule(fields[1:])
			if err != nil {
				return nil, fmt.Errorf("fault: line %d: %v", i+1, err)
			}
			p.Rules = append(p.Rules, r)
		default:
			return nil, fmt.Errorf("fault: line %d: unknown directive %q", i+1, fields[0])
		}
	}
	if !sawMagic {
		return nil, fmt.Errorf("fault: missing %q header", planMagic)
	}
	if !sawSeed {
		return nil, fmt.Errorf("fault: missing seed line")
	}
	return p, nil
}

func decodeRule(fields []string) (Rule, error) {
	var r Rule
	if len(fields) == 0 {
		return r, fmt.Errorf("rule wants a class")
	}
	known := make(map[Class]bool)
	for _, c := range AllClasses() {
		known[c] = true
	}
	r.Class = Class(fields[0])
	if !known[r.Class] {
		return r, fmt.Errorf("unknown class %q (known: %v)", fields[0], AllClasses())
	}
	sawTrigger := false
	for _, f := range fields[1:] {
		key, val, hasVal := strings.Cut(f, "=")
		switch key {
		case "write":
			if hasVal {
				return r, fmt.Errorf("write takes no value")
			}
			r.Write = true
			continue
		}
		if !hasVal {
			return r, fmt.Errorf("malformed field %q", f)
		}
		switch key {
		case "at":
			d, err := time.ParseDuration(val)
			if err != nil || d < 0 {
				return r, fmt.Errorf("bad at=%q", val)
			}
			r.At = d
			sawTrigger = true
		case "every":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil || n <= 0 {
				return r, fmt.Errorf("bad every=%q", val)
			}
			r.EveryN = n
			sawTrigger = true
		case "window":
			d, err := time.ParseDuration(val)
			if err != nil || d <= 0 {
				return r, fmt.Errorf("bad window=%q", val)
			}
			r.Window = d
		case "factor":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil || n <= 0 {
				return r, fmt.Errorf("bad factor=%q", val)
			}
			r.Factor = n
		case "seek":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil || n <= 0 {
				return r, fmt.Errorf("bad seek=%q", val)
			}
			r.SeekFactor = n
		case "transfer":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil || n <= 0 {
				return r, fmt.Errorf("bad transfer=%q", val)
			}
			r.TransferFactor = n
		case "graft":
			if val == "" {
				return r, fmt.Errorf("empty graft key")
			}
			r.Graft = val
		case "site":
			site, err := crash.ParseSite(val)
			if err != nil {
				return r, fmt.Errorf("bad site=%q", val)
			}
			r.Site = site
		default:
			return r, fmt.Errorf("unknown field %q", key)
		}
	}
	if !sawTrigger {
		return r, fmt.Errorf("rule %s needs at= or every=", r.Class)
	}
	if r.EveryN > 0 && r.At > 0 {
		return r, fmt.Errorf("rule %s sets both at= and every=", r.Class)
	}
	if r.Class == Panic && r.Site == "" {
		return r, fmt.Errorf("rule panic needs site=")
	}
	return r, nil
}
