package fault

import (
	"math/rand"
	"reflect"
	"testing"
)

// Every mutant must be expressible in the Encode/Decode genome form:
// re-encoding and re-decoding is lossless, and the plan validates. This
// is the campaign's contract — anything the mutator produces can be
// checked into the corpus as a replayable faultfile.
func TestMutantsRoundTripLosslessly(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	p := NewPlan(7, AllClasses(), 3)
	p.Rules = append(p.Rules, NewCrashRules(7, 2)...)
	for i := 0; i < 500; i++ {
		p = MutatePlan(p, rng)
		if err := p.Validate(); err != nil {
			t.Fatalf("mutant %d does not validate: %v\n%s", i, err, p.Encode())
		}
		enc := p.Encode()
		back, err := Decode(enc)
		if err != nil {
			t.Fatalf("mutant %d does not decode: %v\n%s", i, err, enc)
		}
		if !reflect.DeepEqual(p, back) {
			t.Fatalf("mutant %d round-trip lossy:\nhave %#v\nback %#v", i, p, back)
		}
		if back.Encode() != enc {
			t.Fatalf("mutant %d re-encode differs:\n%s\nvs\n%s", i, enc, back.Encode())
		}
		if len(p.Rules) == 0 {
			t.Fatalf("mutant %d lost every rule", i)
		}
	}
}

// The mutator is the campaign's deterministic genome engine: the same
// parent and the same rng stream produce the identical offspring.
func TestMutateDeterministic(t *testing.T) {
	parent := NewPlan(3, nil, 3)
	parent.Rules = append(parent.Rules, NewCrashRules(3, 1)...)
	a := MutatePlan(parent, rand.New(rand.NewSource(99)))
	b := MutatePlan(parent, rand.New(rand.NewSource(99)))
	if a.Encode() != b.Encode() {
		t.Fatalf("same rng stream, different offspring:\n%s\nvs\n%s", a.Encode(), b.Encode())
	}
	if c := MutatePlan(parent, rand.New(rand.NewSource(100))); c.Encode() == a.Encode() {
		t.Logf("note: adjacent seeds produced equal offspring (legal but unusual)")
	}
}

// The parent plan is genome input, never mutated in place.
func TestMutateLeavesParentIntact(t *testing.T) {
	parent := NewPlan(5, nil, 3)
	parent.Rules = append(parent.Rules, NewCrashRules(5, 2)...)
	before := parent.Encode()
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 100; i++ {
		MutatePlan(parent, rng)
	}
	if parent.Encode() != before {
		t.Fatalf("parent mutated in place:\nbefore %s\nafter %s", before, parent.Encode())
	}
}

// Over enough draws the mutator must actually explore: offspring differ
// from the parent most of the time, rule counts move both directions,
// and panic rules change sites.
func TestMutateExplores(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	parent := NewPlan(7, nil, 3)
	parent.Rules = append(parent.Rules, NewCrashRules(7, 1)...)
	changed, grew, shrank, siteMoved := 0, 0, 0, 0
	parentSites := make(map[string]bool)
	for _, r := range parent.RulesFor(Panic) {
		parentSites[string(r.Site)+r.String()] = true
	}
	for i := 0; i < 300; i++ {
		m := MutatePlan(parent, rng)
		if m.Encode() != parent.Encode() {
			changed++
		}
		if len(m.Rules) > len(parent.Rules) {
			grew++
		}
		if len(m.Rules) < len(parent.Rules) {
			shrank++
		}
		for _, r := range m.RulesFor(Panic) {
			if !parentSites[string(r.Site)+r.String()] {
				siteMoved++
				break
			}
		}
	}
	if changed < 250 {
		t.Errorf("only %d/300 offspring differ from the parent", changed)
	}
	if grew == 0 || shrank == 0 {
		t.Errorf("rule counts never moved both ways (grew %d, shrank %d)", grew, shrank)
	}
	if siteMoved == 0 {
		t.Errorf("no offspring ever changed a panic rule")
	}
}

// Validate rejects the malformed shapes the decoder would refuse.
func TestValidateRejectsMalformedRules(t *testing.T) {
	cases := []struct {
		name string
		rule Rule
	}{
		{"no trigger", Rule{Class: Disk}},
		{"both triggers", Rule{Class: Disk, EveryN: 3, At: 1}},
		{"panic without site", Rule{Class: Panic, EveryN: 3}},
		{"graft without key", Rule{Class: Graft, EveryN: 3}},
		{"unknown class", Rule{Class: "cosmic-rays", EveryN: 3}},
	}
	for _, c := range cases {
		p := &Plan{Seed: 1, Rules: []Rule{c.rule}}
		if err := p.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", c.name, c.rule)
		}
	}
	good := NewPlan(7, AllClasses(), 2)
	good.Rules = append(good.Rules, NewCrashRules(7, 1)...)
	if err := good.Validate(); err != nil {
		t.Errorf("generated plan does not validate: %v", err)
	}
}
