package fault

// The graft fault library: misbehaving GIR sources covering the
// paper's §2 taxonomy, ready to assemble with the SFI toolchain and
// install at any graft point. Each exercises a different layer of the
// survival machinery:
//
//	loop       forward-progress watchdog → abort → forcible removal
//	wildstore  SFI address masking (kernel memory stays untouched)
//	hoard      lock time-out aborts the holder's transaction
//	blowout    resource-limit denial + undo of prior allocations
//	abortundo  a fault *inside* an undo handler during abort — the
//	           lock manager must still be released
//
// The hoard and abortundo sources import fault.* kernel callables that
// the kernel registers only when a fault plan is configured.

// Graft-library keys.
const (
	GraftLoop      = "loop"
	GraftWildStore = "wildstore"
	GraftHoard     = "hoard"
	GraftBlowout   = "blowout"
	GraftAbortUndo = "abortundo"
)

// GraftKeys lists the library in canonical order (plan generation
// indexes into this slice, so the order is part of determinism).
var GraftKeys = []string{GraftLoop, GraftWildStore, GraftHoard, GraftBlowout, GraftAbortUndo}

// GraftAllocFree is a *well-behaved* graft: allocate kernel heap, free
// it, commit. The crash phase uses it to drive the commit and
// kheap-free (resource) crash sites with committing transactions.
// Deliberately NOT in GraftKeys — classic plan generation indexes that
// slice, so its length is frozen.
const GraftAllocFree = "allocfree"

// graftSources maps each key to its GIR source.
var graftSources = map[string]string{
	// The §2.2 infinite loop: never yields, never returns. The
	// scheduler preempts it, the watchdog aborts it, the registry
	// removes it.
	GraftLoop: `
.name fault-loop
.func main
main:
    jmp main
`,

	// The §2.1 wild pointer: walk a 512-byte stride of stores starting
	// at an address the graft has no business writing. Under SFI every
	// store is masked into the graft's own segment; the invariant is
	// that kernel memory is bit-identical afterwards.
	GraftWildStore: `
.name fault-wildstore
.func main
main:
    movi r1, 64
    movi r2, 0x5A
    movi r3, 512
loop:
    stb [r1+0], r2
    addi r1, r1, 7
    addi r3, r3, -1
    jnz r3, loop
    movi r0, 0
    ret
`,

	// The §2.2 lock hoard: lock(resourceA); while(1). The kernel-side
	// fault.lock_hoard callable acquires the kernel-owned hoard lock
	// under the graft's transaction; the spin holds it until the lock
	// class time-out aborts the transaction and releases it.
	GraftHoard: `
.name fault-hoard
.import fault.lock_hoard
.func main
main:
    callk fault.lock_hoard
spin:
    jmp spin
`,

	// The §2.2 resource gobbler: allocate kernel heap until the
	// graft's account hits its limit. The denial aborts the
	// transaction, and the undo log returns every prior allocation.
	GraftBlowout: `
.name fault-blowout
.import vino.kheap_alloc
.func main
main:
    movi r1, 4096
loop:
    callk vino.kheap_alloc
    jmp loop
`,

	// The well-behaved allocator: one page in, one page out, clean
	// return. Its commit exercises the deep crash sites without any
	// misbehavior of its own.
	GraftAllocFree: `
.name fault-allocfree
.import vino.kheap_alloc
.import vino.kheap_free
.func main
main:
    movi r1, 4096
    callk vino.kheap_alloc
    movi r1, 4096
    callk vino.kheap_free
    movi r0, 0
    ret
`,

	// The nastiest case: take the hoard lock, push an undo record that
	// itself fails, then trap. The abort path must survive its own
	// undo handler blowing up and still release every lock — the
	// regression the txn manager's deferred lock release exists for.
	GraftAbortUndo: `
.name fault-abortundo
.import fault.lock_hoard
.import fault.poison_undo
.func main
main:
    callk fault.lock_hoard
    callk fault.poison_undo
    movi r9, 0
    div r0, r0, r9
    ret
`,
}

// GraftSource returns the GIR source for a library key ("" if unknown).
func GraftSource(key string) string {
	return graftSources[key]
}
