package fault

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"vino/internal/simclock"
	"vino/internal/trace"
)

// TestNewPlanDeterministic: same (seed, classes, k) => identical plan;
// different seeds => different plans.
func TestNewPlanDeterministic(t *testing.T) {
	for _, tc := range []struct {
		seed    int64
		classes []Class
		k       int
	}{
		{1, Classes(), 3},
		{7, []Class{Disk, Graft}, 5},
		{42, []Class{Latency}, 1},
	} {
		a := NewPlan(tc.seed, tc.classes, tc.k)
		b := NewPlan(tc.seed, tc.classes, tc.k)
		if a.String() != b.String() {
			t.Fatalf("seed %d: plans differ:\n%s\n%s", tc.seed, a, b)
		}
		if want := len(tc.classes) * tc.k; len(a.Rules) != want {
			t.Fatalf("seed %d: %d rules, want %d", tc.seed, len(a.Rules), want)
		}
	}
	if NewPlan(1, Classes(), 3).String() == NewPlan(2, Classes(), 3).String() {
		t.Fatal("seeds 1 and 2 generated identical plans")
	}
}

func TestParseClasses(t *testing.T) {
	for _, tc := range []struct {
		in      string
		want    int
		wantErr bool
	}{
		{"", len(Classes()), false},
		{"disk", 1, false},
		{"disk,graft,lock", 3, false},
		{" disk , net ", 2, false},
		{"disk,disk", 1, false},
		{"bogus", 0, true},
	} {
		got, err := ParseClasses(tc.in)
		if tc.wantErr != (err != nil) {
			t.Fatalf("ParseClasses(%q) err = %v, wantErr %v", tc.in, err, tc.wantErr)
		}
		if err == nil && len(got) != tc.want {
			t.Fatalf("ParseClasses(%q) = %v, want %d classes", tc.in, got, tc.want)
		}
	}
}

// TestInjectorNilSafe: every hook on a nil injector is inert.
func TestInjectorNilSafe(t *testing.T) {
	var in *Injector
	if seek, xfer, err := in.DiskRead(5); seek != 1 || xfer != 1 || err != nil {
		t.Fatalf("nil DiskRead = (%d, %d, %v)", seek, xfer, err)
	}
	if err := in.DiskWrite(5); err != nil {
		t.Fatalf("nil DiskWrite = %v", err)
	}
	if n := in.StolenFrames(); n != 0 {
		t.Fatalf("nil StolenFrames = %d", n)
	}
	if in.DropConnection(1) {
		t.Fatal("nil DropConnection = true")
	}
	in.Note(Disk, "x", "y") // must not panic
	in.Disarm()
	in.Rearm()
	if in.Armed() {
		t.Fatal("nil injector reports armed")
	}
	if in.Fired() != 0 || in.Plan() != nil {
		t.Fatal("nil injector reports state")
	}
}

// TestEveryNTrigger: an every-Nth disk rule fires exactly on multiples
// of N, and the firings land in the trace.
func TestEveryNTrigger(t *testing.T) {
	clock := simclock.New(0)
	tr := trace.New(128)
	plan := &Plan{Seed: 0, Rules: []Rule{{Class: Disk, EveryN: 3}}}
	in := NewInjector(plan, clock, tr)
	var fired []int
	for i := 1; i <= 9; i++ {
		if _, _, err := in.DiskRead(int64(i)); err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("read %d: error not wrapped in ErrInjected: %v", i, err)
			}
			fired = append(fired, i)
		}
	}
	if fmt.Sprint(fired) != "[3 6 9]" {
		t.Fatalf("fired on %v, want [3 6 9]", fired)
	}
	if got := len(tr.Filter(trace.FaultInject)); got != 3 {
		t.Fatalf("%d fault-inject events, want 3", got)
	}
	if in.Fired() != 3 {
		t.Fatalf("Fired() = %d, want 3", in.Fired())
	}
}

// TestWriteRuleSelectsWritePath: a write rule never hits reads.
func TestWriteRuleSelectsWritePath(t *testing.T) {
	clock := simclock.New(0)
	plan := &Plan{Rules: []Rule{{Class: Disk, EveryN: 2, Write: true}}}
	in := NewInjector(plan, clock, trace.New(16))
	for i := 0; i < 10; i++ {
		if _, _, err := in.DiskRead(int64(i)); err != nil {
			t.Fatalf("read path hit by write rule: %v", err)
		}
	}
	errs := 0
	for i := 0; i < 10; i++ {
		if err := in.DiskWrite(int64(i)); err != nil {
			errs++
		}
	}
	if errs != 5 {
		t.Fatalf("write errors = %d, want 5", errs)
	}
}

// TestWindowArming: a pressure window arms at the first consultation at
// or after At and closes after Window.
func TestWindowArming(t *testing.T) {
	clock := simclock.New(0)
	plan := &Plan{Rules: []Rule{{Class: Pressure, At: 10 * time.Millisecond, Window: 5 * time.Millisecond, Factor: 4}}}
	in := NewInjector(plan, clock, trace.New(16))
	if n := in.StolenFrames(); n != 0 {
		t.Fatalf("stolen before At: %d", n)
	}
	advance(clock, 30*time.Millisecond) // consult late: window arms now
	if n := in.StolenFrames(); n != 4 {
		t.Fatalf("stolen at arming: %d, want 4", n)
	}
	advance(clock, 3*time.Millisecond)
	if n := in.StolenFrames(); n != 4 {
		t.Fatalf("stolen inside window: %d, want 4", n)
	}
	advance(clock, 10*time.Millisecond)
	if n := in.StolenFrames(); n != 0 {
		t.Fatalf("stolen after close: %d, want 0", n)
	}
}

// TestLatencyScaleCompounds: overlapping latency rules multiply.
func TestLatencyScaleCompounds(t *testing.T) {
	clock := simclock.New(0)
	plan := &Plan{Rules: []Rule{
		{Class: Latency, EveryN: 1, Factor: 2},
		{Class: Latency, EveryN: 1, Factor: 3},
	}}
	in := NewInjector(plan, clock, trace.New(16))
	seek, xfer, err := in.DiskRead(0)
	if err != nil {
		t.Fatal(err)
	}
	if seek != 6 || xfer != 6 {
		t.Fatalf("scales = (%d, %d), want (6, 6)", seek, xfer)
	}
}

// TestDisarm: a disarmed injector is inert and Rearm restores it.
func TestDisarm(t *testing.T) {
	clock := simclock.New(0)
	plan := &Plan{Rules: []Rule{{Class: Net, EveryN: 1}}}
	in := NewInjector(plan, clock, trace.New(16))
	if !in.DropConnection(1) {
		t.Fatal("armed rule did not fire")
	}
	in.Disarm()
	if in.DropConnection(2) {
		t.Fatal("disarmed injector fired")
	}
	in.Rearm()
	if !in.DropConnection(3) {
		t.Fatal("rearmed injector did not fire")
	}
}

// TestGraftLibraryComplete: every key has source, every generated graft
// rule names a library key.
func TestGraftLibraryComplete(t *testing.T) {
	for _, key := range GraftKeys {
		if GraftSource(key) == "" {
			t.Fatalf("no source for %q", key)
		}
	}
	if GraftSource("nope") != "" {
		t.Fatal("unknown key returned source")
	}
	p := NewPlan(9, []Class{Graft, Lock}, 10)
	for _, r := range p.Rules {
		if GraftSource(r.Graft) == "" {
			t.Fatalf("rule %s names unknown graft %q", r, r.Graft)
		}
	}
}

// advance drains the clock forward by d using a timer event.
func advance(c *simclock.Clock, d time.Duration) {
	target := c.Now() + d
	c.After(d, func() {})
	for c.Now() < target && c.AdvanceToNext() {
	}
}
