package fault

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"vino/internal/simclock"
	"vino/internal/trace"
)

func TestPlanEncodeDecodeRoundTrip(t *testing.T) {
	p := NewPlan(42, ExtendedClasses(), 3)
	p.Rules = append(p.Rules,
		Rule{Class: Latency, EveryN: 9, SeekFactor: 4, TransferFactor: 2},
		Rule{Class: Latency, At: 55 * time.Millisecond, Window: 40 * time.Millisecond, Factor: 3},
	)
	enc := p.Encode()
	got, err := Decode(enc)
	if err != nil {
		t.Fatalf("Decode: %v\n%s", err, enc)
	}
	if got.Seed != p.Seed {
		t.Fatalf("seed %d, want %d", got.Seed, p.Seed)
	}
	if len(got.Rules) != len(p.Rules) {
		t.Fatalf("%d rules, want %d", len(got.Rules), len(p.Rules))
	}
	for i := range p.Rules {
		if got.Rules[i] != p.Rules[i] {
			t.Errorf("rule %d: %+v != %+v", i, got.Rules[i], p.Rules[i])
		}
	}
	// Encoding is stable: a second round trip is byte-identical.
	if got.Encode() != enc {
		t.Fatal("re-encoding is not byte-identical")
	}
}

func TestDecodeHandWritten(t *testing.T) {
	src := `
# minimized reproducer for seed 77
vino-fault-plan v1
seed 77
rule disk every=17 write
rule netio every=3
rule latency at=5ms window=20ms seek=6
`
	p, err := Decode(src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 77 || len(p.Rules) != 3 {
		t.Fatalf("got seed %d, %d rules", p.Seed, len(p.Rules))
	}
	if p.Rules[1].Class != NetIO || p.Rules[1].EveryN != 3 {
		t.Fatalf("netio rule mangled: %+v", p.Rules[1])
	}
	if p.Rules[2].SeekFactor != 6 || p.Rules[2].Window != 20*time.Millisecond {
		t.Fatalf("latency rule mangled: %+v", p.Rules[2])
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	cases := []string{
		"seed 1",                     // missing header
		"vino-fault-plan v2\nseed 1", // wrong version
		"vino-fault-plan v1",         // missing seed
		"vino-fault-plan v1\nseed 1\nrule bogus every=2",       // unknown class
		"vino-fault-plan v1\nseed 1\nrule disk",                // no trigger
		"vino-fault-plan v1\nseed 1\nrule disk every=2 at=5ms", // both triggers
		"vino-fault-plan v1\nseed 1\nrule disk every=x",        // bad int
		"vino-fault-plan v1\nseed 1\nfrob disk",                // unknown directive
	}
	for _, src := range cases {
		if _, err := Decode(src); err == nil {
			t.Errorf("Decode accepted malformed input %q", src)
		}
	}
}

func TestSplitLatencyFactors(t *testing.T) {
	clock := simclock.New(0)
	plan := &Plan{Rules: []Rule{
		{Class: Latency, EveryN: 1, SeekFactor: 5},
		{Class: Latency, EveryN: 1, TransferFactor: 3},
	}}
	in := NewInjector(plan, clock, trace.New(16))
	seek, xfer, err := in.DiskRead(0)
	if err != nil {
		t.Fatal(err)
	}
	if seek != 5 || xfer != 3 {
		t.Fatalf("scales = (%d, %d), want (5, 3)", seek, xfer)
	}
}

func TestUniformFactorScalesBothParts(t *testing.T) {
	clock := simclock.New(0)
	plan := &Plan{Rules: []Rule{{Class: Latency, EveryN: 1, Factor: 4}}}
	in := NewInjector(plan, clock, trace.New(16))
	seek, xfer, err := in.DiskRead(0)
	if err != nil {
		t.Fatal(err)
	}
	if seek != 4 || xfer != 4 {
		t.Fatalf("scales = (%d, %d), want (4, 4)", seek, xfer)
	}
}

func TestNetIOMidstreamHooks(t *testing.T) {
	clock := simclock.New(0)
	tr := trace.New(64)
	plan := &Plan{Rules: []Rule{
		{Class: NetIO, EveryN: 2},              // read path
		{Class: NetIO, EveryN: 3, Write: true}, // write path
	}}
	in := NewInjector(plan, clock, tr)
	readErrs, writeErrs := 0, 0
	for i := 0; i < 6; i++ {
		if err := in.NetRead(int64(i)); err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("NetRead error not ErrInjected: %v", err)
			}
			readErrs++
		}
		if err := in.NetWrite(int64(i)); err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("NetWrite error not ErrInjected: %v", err)
			}
			writeErrs++
		}
	}
	if readErrs != 3 || writeErrs != 2 {
		t.Fatalf("errs = (%d read, %d write), want (3, 2)", readErrs, writeErrs)
	}
	var nilIn *Injector
	if nilIn.NetRead(1) != nil || nilIn.NetWrite(1) != nil {
		t.Fatal("nil injector net hooks not inert")
	}
}

func TestNetIONotInClassicClasses(t *testing.T) {
	for _, c := range Classes() {
		if c == NetIO {
			t.Fatal("NetIO leaked into the frozen classic class set")
		}
	}
	got, err := ParseClasses("netio,disk")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != NetIO {
		t.Fatalf("ParseClasses(netio,disk) = %v", got)
	}
	if def, _ := ParseClasses(""); len(def) != len(Classes()) {
		t.Fatalf("default class set changed: %v", def)
	}
	if !strings.Contains(NewPlan(1, []Class{NetIO}, 2).Encode(), "rule netio") {
		t.Fatal("generated netio rules did not encode")
	}
}

// TestDecodeTruncated covers the -faultfile failure mode the CLI hits
// most: a reproducer file cut off mid-write. Every prefix must produce
// a decode error, never a silently-shorter plan.
func TestDecodeTruncated(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"empty file", ""},
		{"magic cut mid-token", "vino-fault-pla"},
		{"seed line cut mid-token", "vino-fault-plan v1\nseed"},
		{"seed value cut", "vino-fault-plan v1\nseed 4x"},
		{"rule field cut before value", "vino-fault-plan v1\nseed 4\nrule latency at="},
		{"rule field cut before equals", "vino-fault-plan v1\nseed 4\nrule disk every"},
		{"graft key cut", "vino-fault-plan v1\nseed 4\nrule graft every=7 graft="},
	}
	for _, tc := range cases {
		if p, err := Decode(tc.src); err == nil {
			t.Errorf("%s: Decode accepted truncated input (got %d rules)", tc.name, len(p.Rules))
		}
	}
}

// TestDecodeUnknownClassNamesKnownSet checks that a typo'd class token
// fails with a diagnostic listing the accepted (extended) class set, so
// a hand-edited reproducer is fixable without reading the source.
func TestDecodeUnknownClassNamesKnownSet(t *testing.T) {
	_, err := Decode("vino-fault-plan v1\nseed 4\nrule gravt every=2")
	if err == nil {
		t.Fatal("unknown class token accepted")
	}
	for _, c := range ExtendedClasses() {
		if !strings.Contains(err.Error(), string(c)) {
			t.Errorf("error %q does not list known class %q", err, c)
		}
	}
}

// TestExtendedPlanFaultFileRoundTrip exercises the exact path vinosim
// -faultfile takes: an extended-class plan is encoded, written to disk,
// read back, and decoded — and the decoded plan is rule-for-rule equal
// with a byte-stable re-encoding.
func TestExtendedPlanFaultFileRoundTrip(t *testing.T) {
	p := NewPlan(11, ExtendedClasses(), 2)
	path := filepath.Join(t.TempDir(), "plan.txt")
	if err := os.WriteFile(path, []byte(p.Encode()), 0o644); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(string(data))
	if err != nil {
		t.Fatalf("Decode of written plan file: %v", err)
	}
	if got.Seed != p.Seed || len(got.Rules) != len(p.Rules) {
		t.Fatalf("round trip mangled the plan: seed %d/%d, %d/%d rules",
			got.Seed, p.Seed, len(got.Rules), len(p.Rules))
	}
	for i := range p.Rules {
		if got.Rules[i] != p.Rules[i] {
			t.Errorf("rule %d: %+v != %+v", i, got.Rules[i], p.Rules[i])
		}
	}
	if got.Encode() != p.Encode() {
		t.Fatal("re-encoding of the decoded file is not byte-identical")
	}
	hasExtended := false
	for _, r := range got.Rules {
		if r.Class == NetIO {
			hasExtended = true
		}
	}
	if !hasExtended {
		t.Fatal("extended plan generated no netio rules; round trip untested for extended classes")
	}
}

// TestFiredByClass checks the per-class injection counters surfaced in
// the chaos end-of-run summary.
func TestFiredByClass(t *testing.T) {
	clock := simclock.New(0)
	plan := &Plan{Rules: []Rule{
		{Class: Disk, EveryN: 2},
		{Class: NetIO, EveryN: 3},
	}}
	in := NewInjector(plan, clock, trace.New(64))
	for i := 0; i < 6; i++ {
		in.DiskRead(int64(i))
		in.NetRead(int64(i))
	}
	got := in.FiredByClass()
	if got[Disk] != 3 || got[NetIO] != 2 {
		t.Fatalf("FiredByClass = %v, want disk=3 netio=2", got)
	}
	// The returned map is a copy: mutating it must not corrupt the
	// injector's ledger.
	got[Disk] = 99
	if in.FiredByClass()[Disk] != 3 {
		t.Fatal("FiredByClass returned the live map")
	}
	var nilIn *Injector
	if m := nilIn.FiredByClass(); len(m) != 0 {
		t.Fatalf("nil injector FiredByClass = %v", m)
	}
}
