package fault

import (
	"testing"
	"time"

	"vino/internal/crash"
	"vino/internal/simclock"
	"vino/internal/trace"
)

// crashAt fires one MaybeCrash at site and returns the injected panic.
func crashAt(t *testing.T, in *Injector, site crash.Site) *crash.Panic {
	t.Helper()
	var got *crash.Panic
	func() {
		defer func() {
			r := recover()
			cp, ok := crash.IsPanic(r)
			if !ok {
				t.Fatalf("MaybeCrash recovered %v, want *crash.Panic", r)
			}
			got = cp
		}()
		in.MaybeCrash(site, "g#img")
	}()
	return got
}

// TestSyntheticTaintHook: the legacy every-third-crash backdating
// schedule is off by default — production taint comes from audit
// evidence (crash.EvidenceTaint) — and only the SyntheticTaint test
// hook re-enables it.
func TestSyntheticTaintHook(t *testing.T) {
	plan := &Plan{Seed: 1, Rules: []Rule{
		{Class: Panic, Site: crash.SiteDispatch, EveryN: 1},
	}}
	mk := func(synthetic bool) *Injector {
		clk := simclock.New(1_000_000_000)
		clk.Advance(100 * time.Millisecond)
		in := NewInjector(plan, clk, trace.New(64))
		in.SyntheticTaint = synthetic
		in.EnableCrash()
		return in
	}

	in := mk(false) // default: no synthetic schedule
	for i := 1; i <= 3; i++ {
		if p := crashAt(t, in, crash.SiteDispatch); p.TaintedAt != 0 {
			t.Errorf("crash %d: TaintedAt = %v, want 0 with the hook off", i, p.TaintedAt)
		}
	}

	in = mk(true) // hook on: every third crash backdates by 25ms
	want := []time.Duration{0, 0, 75 * time.Millisecond}
	for i := 1; i <= 3; i++ {
		if p := crashAt(t, in, crash.SiteDispatch); p.TaintedAt != want[i-1] {
			t.Errorf("crash %d: TaintedAt = %v, want %v", i, p.TaintedAt, want[i-1])
		}
	}
}
