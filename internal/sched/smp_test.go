package sched

import (
	"fmt"
	"testing"
	"time"

	"vino/internal/simclock"
)

// runSMPWorkload spawns n compute-bound threads on an ncpu scheduler and
// returns the final virtual time plus a deterministic execution log.
func runSMPWorkload(t *testing.T, ncpu, n int, work time.Duration) (time.Duration, []string) {
	t.Helper()
	clk := simclock.New(0)
	s := New(clk)
	s.SetNumCPUs(ncpu)
	var log []string
	for i := 0; i < n; i++ {
		i := i
		s.Spawn(fmt.Sprintf("w%d", i), func(th *Thread) {
			for step := 0; step < 4; step++ {
				th.Charge(work)
				log = append(log, fmt.Sprintf("w%d.%d@%v cpu%d", i, step, clk.Now(), th.CPU()))
			}
		})
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	var horizon time.Duration
	for _, c := range s.CPUStats() {
		end := c.Busy + c.Idle
		if end > horizon {
			horizon = end
		}
	}
	return horizon, log
}

func TestSMPThroughputScales(t *testing.T) {
	// 8 independent compute-bound threads, 4x2ms each: one CPU needs
	// ~64ms of serial time; four CPUs should overlap their frontiers and
	// finish in far less virtual time.
	h1, _ := runSMPWorkload(t, 1, 8, 2*time.Millisecond)
	h4, _ := runSMPWorkload(t, 4, 8, 2*time.Millisecond)
	if h4 >= h1 {
		t.Fatalf("4-CPU horizon %v not better than 1-CPU %v", h4, h1)
	}
	if h4 > h1/2 {
		t.Fatalf("4-CPU horizon %v shows < 2x scaling over %v", h4, h1)
	}
}

func TestSMPDeterministicReplay(t *testing.T) {
	for _, ncpu := range []int{1, 2, 4} {
		_, a := runSMPWorkload(t, ncpu, 6, 3*time.Millisecond)
		_, b := runSMPWorkload(t, ncpu, 6, 3*time.Millisecond)
		if len(a) != len(b) {
			t.Fatalf("ncpu=%d: replay lengths differ: %d vs %d", ncpu, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("ncpu=%d: replay diverges at %d: %q vs %q", ncpu, i, a[i], b[i])
			}
		}
	}
}

func TestSMPRoundRobinPlacement(t *testing.T) {
	clk := simclock.New(0)
	s := New(clk)
	s.SetNumCPUs(3)
	var ts []*Thread
	for i := 0; i < 7; i++ {
		ts = append(ts, s.Spawn(fmt.Sprintf("t%d", i), func(th *Thread) {}))
	}
	want := []int{0, 1, 2, 0, 1, 2, 0}
	for i, th := range ts {
		if th.CPU() != want[i] {
			t.Errorf("thread %d placed on cpu %d, want %d", i, th.CPU(), want[i])
		}
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestSMPPinnedNeverStolen(t *testing.T) {
	clk := simclock.New(0)
	s := New(clk)
	s.SetNumCPUs(2)
	pinned := s.SpawnOn("wired", 0, func(th *Thread) {
		for i := 0; i < 8; i++ {
			th.Charge(time.Millisecond)
			if th.CPU() != 0 {
				t.Errorf("pinned thread migrated to cpu %d", th.CPU())
			}
		}
	})
	if !pinned.Pinned() {
		t.Fatal("SpawnOn did not pin")
	}
	// Load CPU 0 with extra work so an idle CPU 1 has a reason to steal.
	for i := 0; i < 3; i++ {
		s.SpawnOn(fmt.Sprintf("extra%d", i), 0, func(th *Thread) {
			th.Charge(4 * time.Millisecond)
		})
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestSMPIdleSteal(t *testing.T) {
	clk := simclock.New(0)
	s := New(clk)
	s.SetNumCPUs(2)
	migrated := false
	// Both spawns round-robin to CPUs 0 and 1; bias by spawning pairs so
	// CPU 0 ends up with a deep queue of unpinned work.
	for i := 0; i < 6; i++ {
		s.spawn(fmt.Sprintf("w%d", i), 0, false, func(th *Thread) {
			th.Charge(2 * time.Millisecond)
			if th.CPU() == 1 {
				migrated = true
			}
		})
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !migrated {
		t.Fatal("idle CPU 1 never stole work from CPU 0's queue")
	}
	stats := s.CPUStats()
	if stats[1].Dispatches == 0 {
		t.Fatal("CPU 1 recorded no dispatches")
	}
}

func TestSetNumCPUsAfterSpawnPanics(t *testing.T) {
	s := New(simclock.New(0))
	s.Spawn("x", func(th *Thread) {})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
		s.Shutdown()
	}()
	s.SetNumCPUs(2)
}
