// Package sched implements the simulated VINO kernel's thread system: a
// preemptible scheduler multiplexing coroutine threads over the virtual
// clock.
//
// The concurrency model is deliberate: exactly one thread "owns the CPU"
// at any instant, and control is handed between the scheduler goroutine
// and thread goroutines over unbuffered channels. This makes every
// interleaving deterministic — a requirement for reproducing the paper's
// experiments — while still letting thread bodies be written as ordinary
// sequential Go code.
//
// Threads consume virtual CPU explicitly via Charge. Charging advances the
// clock, fires due timer events (lock time-outs, wake-ups), honours
// asynchronous abort requests, and preempts the thread when its timeslice
// expires. This is how the paper's Rule 1 ("grafts must be preemptible")
// is realised: a graft that loops forever still charges cycles per
// bytecode instruction, so the scheduler takes the CPU back at every
// timeslice boundary, and a pending transaction abort lands at the next
// charge point.
package sched

import (
	"errors"
	"fmt"
	"time"

	"vino/internal/simclock"
)

// DefaultTimeslice is the scheduling quantum: 10 ms, as in the paper
// ("roughly 2% of a typical timeslice of 10 ms", §4.3).
const DefaultTimeslice = 10 * time.Millisecond

// DefaultSwitchCost is the CPU cost charged per context switch. The
// paper's base path measures two process switches (including two VM
// context switches) at 54 us total on the 120 MHz Pentium; a bare kernel
// thread switch is a fraction of that. We charge 2 us per dispatch by
// default; the Table 5 harness configures the full process-switch cost.
const DefaultSwitchCost = 2 * time.Microsecond

// State is a thread's scheduling state.
type State int

const (
	// StateNew is a spawned thread that has not yet been dispatched.
	StateNew State = iota
	// StateRunnable means the thread is on the run queue.
	StateRunnable
	// StateRunning means the thread currently owns the CPU.
	StateRunning
	// StateSleeping means the thread waits for a timer.
	StateSleeping
	// StateBlocked means the thread waits for an explicit Wake (lock,
	// condition, I/O completion).
	StateBlocked
	// StateDead means the thread body returned or the thread was killed.
	StateDead
)

func (s State) String() string {
	switch s {
	case StateNew:
		return "new"
	case StateRunnable:
		return "runnable"
	case StateRunning:
		return "running"
	case StateSleeping:
		return "sleeping"
	case StateBlocked:
		return "blocked"
	case StateDead:
		return "dead"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// ThreadID identifies a thread for its lifetime.
type ThreadID int

// ErrKilled is the panic payload delivered to a thread destroyed by Kill
// or Shutdown.
var ErrKilled = errors.New("sched: thread killed")

// ErrDeadlock is returned by Run when no thread can ever run again.
var ErrDeadlock = errors.New("sched: all remaining threads blocked with no pending events")

// AbortRequest is delivered to a thread via RequestAbort and surfaces as a
// panic of type *Abort at the thread's next abort check. The transaction
// layer recovers it at the graft wrapper.
type AbortRequest struct {
	Reason error
}

// Abort is the panic payload used to unwind an aborted thread back to the
// nearest recovery point (the graft transaction wrapper).
type Abort struct {
	Reason error
}

func (a *Abort) Error() string { return "sched: async abort: " + a.Reason.Error() }

type killSignal struct{}

// IsKill reports whether a recovered panic value is the scheduler's
// thread-destruction signal. Recovery wrappers (the transaction layer)
// must re-panic it so Kill and Shutdown keep working.
func IsKill(r any) bool {
	_, ok := r.(killSignal)
	return ok
}

// Thread is a simulated kernel thread. All methods must be called from the
// thread's own body (they operate on "the current thread") except Wake,
// RequestAbort and Kill, which may be called from any thread or from timer
// callbacks.
type Thread struct {
	id   ThreadID
	name string
	s    *Scheduler

	state     State
	resume    chan struct{}
	kill      bool
	sliceUsed time.Duration
	cpuTime   time.Duration
	switches  int64
	inHook    bool
	wakeEvent simclock.EventID
	hasWake   bool
	blockedOn string
	cpu       int           // home CPU: the run queue this thread enqueues on
	pinned    bool          // wired to its home CPU; the balancer may not steal it
	readyAt   time.Duration // virtual time the thread last became runnable

	abortPending *AbortRequest
	noAbort      int

	// locals carries per-thread state owned by upper layers (current
	// transaction, resource account, address space) without creating
	// package dependencies from sched upward.
	locals map[string]any
}

// ID returns the thread's identifier.
func (t *Thread) ID() ThreadID { return t.id }

// Name returns the thread's name.
func (t *Thread) Name() string { return t.name }

// State returns the thread's scheduling state.
func (t *Thread) State() State { return t.state }

// CPUTime returns the total virtual CPU consumed by the thread.
func (t *Thread) CPUTime() time.Duration { return t.cpuTime }

// Switches returns how many times the thread has been dispatched.
func (t *Thread) Switches() int64 { return t.switches }

// BlockedOn describes what a blocked thread is waiting for.
func (t *Thread) BlockedOn() string { return t.blockedOn }

// CPU returns the index of the thread's home CPU.
func (t *Thread) CPU() int { return t.cpu }

// Pinned reports whether the thread is wired to its home CPU.
func (t *Thread) Pinned() bool { return t.pinned }

// SetLocal stores per-thread data for an upper layer under key.
func (t *Thread) SetLocal(key string, v any) {
	if t.locals == nil {
		t.locals = make(map[string]any)
	}
	if v == nil {
		delete(t.locals, key)
		return
	}
	t.locals[key] = v
}

// Local retrieves per-thread data stored by SetLocal.
func (t *Thread) Local(key string) any {
	return t.locals[key]
}

// Scheduler returns the owning scheduler.
func (t *Thread) Scheduler() *Scheduler { return t.s }

// Scheduler multiplexes threads over a virtual clock. Create one with New,
// spawn threads, then call Run from the host goroutine.
type Scheduler struct {
	clock     *simclock.Clock
	timeslice time.Duration
	// SwitchCost is charged to the clock each time a thread is dispatched.
	SwitchCost time.Duration
	// PickDelegate, if set, is consulted after the default round-robin
	// choice; it may return a different runnable thread to dispatch. It
	// runs in scheduler context and must not block or charge CPU.
	// Returning nil or a non-runnable thread keeps the default.
	PickDelegate func(chosen *Thread) *Thread
	// DispatchHook, if set, runs *on the dispatched thread* at the top
	// of each timeslice, before user code resumes. Unlike PickDelegate
	// it may charge CPU, take locks and run graft code in a transaction
	// — it is the execution vehicle for the paper's schedule-delegate
	// graft (§4.3). If it returns a different runnable thread, the
	// current thread donates the remainder of its slice: the target is
	// promoted to the front of the run queue and the current thread
	// yields.
	DispatchHook func(current *Thread) *Thread

	threads map[ThreadID]*Thread
	cpus    []*cpuState
	current *Thread
	nextID  ThreadID
	place   int // round-robin spawn placement cursor
	toSched chan struct{}
	running bool

	contextSwitches int64
	preemptions     int64
	threadPanic     error
	panicThread     *Thread
}

// cpuState is one simulated CPU: a FIFO run queue plus a local notion of
// virtual time. Under SMP simulation CPUs execute one at a time (the model
// stays sequential and deterministic), but each keeps its own frontier, so
// two CPUs can occupy overlapping spans of virtual time — that overlap is
// what makes aggregate throughput scale. The shared clock is repositioned
// to a CPU's frontier whenever it dispatches. With one CPU the frontier
// and the clock are always equal, preserving pre-SMP behaviour exactly.
type cpuState struct {
	index      int
	runq       []*Thread
	now        time.Duration // local virtual time frontier
	busy       time.Duration // time spent executing threads (incl. switch cost)
	idle       time.Duration // time spent waiting for runnable work
	dispatches int64
}

// peek returns the first runnable thread on the queue without removing it,
// discarding stale entries (threads that blocked or died while queued —
// the same lazy cleanup the dequeue path has always done).
func (c *cpuState) peek() *Thread {
	for len(c.runq) > 0 {
		if t := c.runq[0]; t.state == StateRunnable {
			return t
		}
		copy(c.runq, c.runq[1:])
		c.runq = c.runq[:len(c.runq)-1]
	}
	return nil
}

// pop removes and returns the first runnable thread, or nil.
func (c *cpuState) pop() *Thread {
	t := c.peek()
	if t != nil {
		copy(c.runq, c.runq[1:])
		c.runq = c.runq[:len(c.runq)-1]
	}
	return t
}

// runnable counts dispatchable entries on the queue.
func (c *cpuState) runnable() int {
	n := 0
	for _, t := range c.runq {
		if t.state == StateRunnable {
			n++
		}
	}
	return n
}

// CPUStat is a snapshot of one simulated CPU's accounting.
type CPUStat struct {
	Index      int
	Busy       time.Duration // virtual time spent running threads
	Idle       time.Duration // virtual time spent waiting for work
	Dispatches int64
	Runnable   int // threads currently queued and dispatchable
}

// New creates a scheduler over clock. A nil clock gets a fresh default one.
func New(clock *simclock.Clock) *Scheduler {
	if clock == nil {
		clock = simclock.New(0)
	}
	return &Scheduler{
		clock:      clock,
		timeslice:  DefaultTimeslice,
		SwitchCost: DefaultSwitchCost,
		threads:    make(map[ThreadID]*Thread),
		cpus:       []*cpuState{{}},
		toSched:    make(chan struct{}),
	}
}

// SetNumCPUs configures the simulated CPU topology. It must be called
// before any thread is spawned: placement is decided at spawn time and
// re-homing live threads would break determinism.
func (s *Scheduler) SetNumCPUs(n int) {
	if n <= 0 {
		panic("sched: non-positive CPU count")
	}
	if s.running {
		panic("sched: SetNumCPUs during Run")
	}
	if len(s.threads) > 0 {
		panic("sched: SetNumCPUs after threads were spawned")
	}
	s.cpus = make([]*cpuState, n)
	for i := range s.cpus {
		s.cpus[i] = &cpuState{index: i}
	}
	s.place = 0
}

// NumCPUs returns the number of simulated CPUs.
func (s *Scheduler) NumCPUs() int { return len(s.cpus) }

// CPUStats returns a per-CPU accounting snapshot, indexed by CPU.
func (s *Scheduler) CPUStats() []CPUStat {
	out := make([]CPUStat, len(s.cpus))
	for i, c := range s.cpus {
		out[i] = CPUStat{
			Index:      c.index,
			Busy:       c.busy,
			Idle:       c.idle,
			Dispatches: c.dispatches,
			Runnable:   c.runnable(),
		}
	}
	return out
}

// Clock returns the scheduler's virtual clock.
func (s *Scheduler) Clock() *simclock.Clock { return s.clock }

// Timeslice returns the scheduling quantum.
func (s *Scheduler) Timeslice() time.Duration { return s.timeslice }

// SetTimeslice changes the scheduling quantum.
func (s *Scheduler) SetTimeslice(d time.Duration) {
	if d <= 0 {
		panic("sched: non-positive timeslice")
	}
	s.timeslice = d
}

// Current returns the thread owning the CPU, or nil when the scheduler
// itself is running.
func (s *Scheduler) Current() *Thread { return s.current }

// ContextSwitches returns the number of dispatches performed.
func (s *Scheduler) ContextSwitches() int64 { return s.contextSwitches }

// Preemptions returns the number of timeslice preemptions.
func (s *Scheduler) Preemptions() int64 { return s.preemptions }

// Lookup returns the thread with the given ID, or nil. Dead threads are
// forgotten.
func (s *Scheduler) Lookup(id ThreadID) *Thread { return s.threads[id] }

// Threads returns a snapshot of all live threads.
func (s *Scheduler) Threads() []*Thread {
	out := make([]*Thread, 0, len(s.threads))
	for _, t := range s.threads {
		out = append(out, t)
	}
	return out
}

// Spawn creates a thread that will execute body when first dispatched. It
// may be called before Run or from inside a running thread. Placement is
// deterministic round-robin across the simulated CPUs.
func (s *Scheduler) Spawn(name string, body func(*Thread)) *Thread {
	cpu := s.place % len(s.cpus)
	s.place++
	return s.spawn(name, cpu, false, body)
}

// SpawnOn creates a thread wired to a specific CPU: it always enqueues
// there and the load balancer never steals it. Kernel daemons that must
// observe a stable frontier (the pagedaemon) are wired to CPU 0.
func (s *Scheduler) SpawnOn(name string, cpu int, body func(*Thread)) *Thread {
	if cpu < 0 || cpu >= len(s.cpus) {
		panic(fmt.Sprintf("sched: SpawnOn cpu %d out of range [0,%d)", cpu, len(s.cpus)))
	}
	return s.spawn(name, cpu, true, body)
}

func (s *Scheduler) spawn(name string, cpu int, pinned bool, body func(*Thread)) *Thread {
	s.nextID++
	t := &Thread{
		id:     s.nextID,
		name:   name,
		s:      s,
		state:  StateNew,
		resume: make(chan struct{}),
		cpu:    cpu,
		pinned: pinned,
	}
	s.threads[t.id] = t
	go func() {
		<-t.resume
		defer func() {
			r := recover()
			if r != nil {
				if _, ok := r.(killSignal); !ok && t.s.threadPanic == nil {
					// Re-panicking here would crash the whole process from
					// a foreign goroutine with a confusing trace; instead
					// record and deliver on the scheduler side. Error
					// payloads are wrapped, not flattened, so the kernel
					// boundary can recover typed panics with errors.As.
					if err, isErr := r.(error); isErr {
						t.s.threadPanic = fmt.Errorf("thread %q panicked: %w", t.name, err)
					} else {
						t.s.threadPanic = fmt.Errorf("thread %q panicked: %v", t.name, r)
					}
					t.s.panicThread = t
				}
			}
			t.state = StateDead
			delete(t.s.threads, t.id)
			t.s.toSched <- struct{}{}
		}()
		if t.kill {
			return
		}
		t.runDispatchHook()
		body(t)
	}()
	s.enqueue(t)
	return t
}

func (s *Scheduler) enqueue(t *Thread) {
	if t.state == StateRunnable {
		return
	}
	t.state = StateRunnable
	t.readyAt = s.clock.EventTime()
	s.cpus[t.cpu].runq = append(s.cpus[t.cpu].runq, t)
}

func (s *Scheduler) removeFromRunq(t *Thread) {
	q := s.cpus[t.cpu].runq
	for i, x := range q {
		if x == t {
			s.cpus[t.cpu].runq = append(q[:i], q[i+1:]...)
			return
		}
	}
}

// pickNext chooses the CPU whose first runnable thread can start earliest
// — the maximum of the CPU's local frontier and the thread's ready time —
// with ties broken by CPU index, and removes that thread from its queue.
// With one CPU this is exactly the old FIFO dequeue.
func (s *Scheduler) pickNext() *Thread {
	var best *cpuState
	var bestAt time.Duration
	for _, c := range s.cpus {
		t := c.peek()
		if t == nil {
			continue
		}
		at := c.now
		if t.readyAt > at {
			at = t.readyAt
		}
		if best == nil || at < bestAt {
			best, bestAt = c, at
		}
	}
	if best == nil {
		return nil
	}
	return best.pop()
}

// rebalance lets each CPU with no runnable work steal one thread from the
// tail of the most loaded queue. A donor must keep at least one runnable
// thread, and pinned threads are never stolen. All choices are tie-broken
// by index, so rebalancing is deterministic; with one CPU it is a no-op.
func (s *Scheduler) rebalance() {
	if len(s.cpus) == 1 {
		return
	}
	for _, thief := range s.cpus {
		if thief.peek() != nil {
			continue
		}
		var donor *cpuState
		for _, c := range s.cpus {
			if c == thief || c.runnable() < 2 {
				continue
			}
			if donor == nil || c.runnable() > donor.runnable() {
				donor = c
			}
		}
		if donor == nil {
			continue
		}
		for i := len(donor.runq) - 1; i >= 0; i-- {
			t := donor.runq[i]
			if t.state != StateRunnable || t.pinned {
				continue
			}
			donor.runq = append(donor.runq[:i], donor.runq[i+1:]...)
			t.cpu = thief.index
			thief.runq = append(thief.runq, t)
			break
		}
	}
}

// runnableCount reports how many threads are dispatchable.
func (s *Scheduler) runnableCount() int {
	n := 0
	for _, c := range s.cpus {
		n += c.runnable()
	}
	return n
}

// Run dispatches threads until none remain, returning nil on a clean
// drain. If live threads remain but none can ever run (no runnable
// threads, no pending timer events) Run returns ErrDeadlock wrapped with
// the stuck threads' names. If a thread body panicked with anything other
// than a kill/abort signal, Run returns that panic as an error.
func (s *Scheduler) Run() error {
	if s.running {
		panic("sched: Run re-entered")
	}
	s.running = true
	defer func() { s.running = false }()
	for {
		if s.threadPanicErr() != nil {
			return s.threadPanicErr()
		}
		if len(s.threads) == 0 {
			return nil
		}
		s.rebalance()
		t := s.pickNext()
		if t == nil {
			// Nothing runnable on any CPU: leap to the next timer event,
			// which may wake somebody.
			if s.clock.AdvanceToNext() {
				continue
			}
			return fmt.Errorf("%w: %s", ErrDeadlock, s.describeStuck())
		}
		if s.PickDelegate != nil {
			// Donation stays on the chosen thread's CPU: cross-CPU
			// delegation would teleport the delegate to another frontier.
			if alt := s.PickDelegate(t); alt != nil && alt != t && alt.state == StateRunnable && s.threads[alt.id] == alt && alt.cpu == t.cpu {
				// Dispatch the delegate instead; the default choice goes to
				// the back of the queue (it donated its turn, not its
				// existence — paper §4.3).
				s.removeFromRunq(alt)
				s.cpus[t.cpu].runq = append(s.cpus[t.cpu].runq, t)
				// t keeps StateRunnable; the appended entry re-dispatches it.
				t = alt
			}
		}
		s.dispatch(t)
	}
}

func (s *Scheduler) describeStuck() string {
	desc := ""
	for _, t := range s.threads {
		if desc != "" {
			desc += ", "
		}
		desc += fmt.Sprintf("%s(%s on %s)", t.name, t.state, t.blockedOn)
	}
	return desc
}

func (s *Scheduler) threadPanicErr() error { return s.threadPanic }

func (s *Scheduler) dispatch(t *Thread) {
	c := s.cpus[t.cpu]
	if len(s.cpus) == 1 && c.now < s.clock.Now() {
		// Single CPU: the shared clock is authoritative. Host code may
		// advance it between Run calls; that elapsed time was idle.
		c.idle += s.clock.Now() - c.now
		c.now = s.clock.Now()
	}
	// Reposition the clock to this CPU's frontier, no earlier than the
	// instant the thread became runnable. The wait for work is idle time.
	local := c.now
	if t.readyAt > local {
		c.idle += t.readyAt - local
		local = t.readyAt
	}
	s.clock.SetCPU(c.index)
	s.clock.SetNow(local)
	t.state = StateRunning
	t.sliceUsed = 0
	t.switches++
	s.contextSwitches++
	c.dispatches++
	s.current = t
	if s.SwitchCost > 0 {
		s.clock.Advance(s.SwitchCost)
		s.clock.RunDue()
	}
	t.resume <- struct{}{}
	<-s.toSched
	c.busy += s.clock.Now() - local
	c.now = s.clock.Now()
	s.current = nil
}

// yield parks the current thread in newState and returns control to the
// scheduler. When the scheduler dispatches the thread again, yield
// returns.
func (t *Thread) yield(newState State) {
	t.state = newState
	if newState == StateRunnable {
		t.readyAt = t.s.clock.Now()
		t.s.cpus[t.cpu].runq = append(t.s.cpus[t.cpu].runq, t)
	}
	t.s.toSched <- struct{}{}
	<-t.resume
	if t.kill {
		panic(killSignal{})
	}
	t.state = StateRunning
	t.runDispatchHook()
}

// runDispatchHook executes the scheduler's DispatchHook on this thread at
// the top of a timeslice and performs slice donation if the hook names
// another runnable thread.
func (t *Thread) runDispatchHook() {
	for t.s.DispatchHook != nil && !t.inHook {
		t.inHook = true
		target := t.s.DispatchHook(t)
		t.inHook = false
		if target == nil || target == t || target.state != StateRunnable || t.s.threads[target.id] != target || target.cpu != t.cpu {
			return
		}
		// Donate: put the target at the front of this CPU's queue and give
		// up the CPU. Donation never crosses CPUs — the donated slice is
		// this CPU's time. The loop re-runs the hook when this thread is
		// next dispatched.
		q := t.s.cpus[t.cpu]
		t.s.removeFromRunq(target)
		q.runq = append([]*Thread{target}, q.runq...)
		t.state = StateRunnable
		t.readyAt = t.s.clock.Now()
		q.runq = append(q.runq, t)
		t.s.toSched <- struct{}{}
		<-t.resume
		if t.kill {
			panic(killSignal{})
		}
		t.state = StateRunning
	}
}

// Charge consumes d of virtual CPU on the current thread. It advances the
// clock, fires due timer events, delivers any pending abort (as an *Abort
// panic), and preempts the thread if its timeslice is exhausted.
func (t *Thread) Charge(d time.Duration) {
	t.mustBeCurrent("Charge")
	if d < 0 {
		panic("sched: negative charge")
	}
	t.cpuTime += d
	t.sliceUsed += d
	t.s.clock.Advance(d)
	t.s.clock.RunDue()
	t.CheckAbort()
	if t.sliceUsed >= t.s.timeslice {
		t.s.preemptions++
		t.yield(StateRunnable)
		t.CheckAbort()
	}
}

// ChargeCycles consumes CPU measured in cycles at the clock's frequency.
func (t *Thread) ChargeCycles(cycles int64) {
	t.Charge(t.s.clock.CycleDuration(cycles))
}

// Yield gives up the CPU voluntarily; the thread remains runnable.
func (t *Thread) Yield() {
	t.mustBeCurrent("Yield")
	t.yield(StateRunnable)
	t.CheckAbort()
}

// Sleep blocks the thread for d of virtual time.
func (t *Thread) Sleep(d time.Duration) {
	t.mustBeCurrent("Sleep")
	if d <= 0 {
		t.Yield()
		return
	}
	t.blockedOn = "sleep"
	t.wakeEvent = t.s.clock.After(d, func() { t.wakeFromTimer() })
	t.hasWake = true
	t.yield(StateSleeping)
	if t.hasWake {
		t.s.clock.Cancel(t.wakeEvent)
		t.hasWake = false
	}
	t.blockedOn = ""
	t.CheckAbort()
}

func (t *Thread) wakeFromTimer() {
	t.hasWake = false
	if t.state == StateSleeping {
		t.enqueueSelf()
	}
}

func (t *Thread) enqueueSelf() {
	t.state = StateRunnable
	// EventTime, not Now: when a busy CPU processes a timer interrupt
	// late, the woken thread is accounted ready at the timer's deadline,
	// so an idle CPU can pick it up at the time it *should* have woken.
	t.readyAt = t.s.clock.EventTime()
	t.s.cpus[t.cpu].runq = append(t.s.cpus[t.cpu].runq, t)
}

// Block parks the thread until another thread (or a timer callback) calls
// Wake. The what string is diagnostic ("lock fsmap", "disk I/O", ...).
// Block returns normally on Wake; a pending abort request surfaces as an
// *Abort panic from the CheckAbort on the way out.
func (t *Thread) Block(what string) {
	t.mustBeCurrent("Block")
	t.blockedOn = what
	t.yield(StateBlocked)
	t.blockedOn = ""
	t.CheckAbort()
}

// BlockNoAbort is Block without the abort check on wake; used by cleanup
// paths that must finish (e.g. waiting for in-flight I/O during an abort).
func (t *Thread) BlockNoAbort(what string) {
	t.mustBeCurrent("BlockNoAbort")
	t.blockedOn = what
	t.yield(StateBlocked)
	t.blockedOn = ""
}

// Wake moves a blocked or sleeping thread back onto the run queue. Waking
// a runnable, running or dead thread is a no-op.
func (t *Thread) Wake() {
	switch t.state {
	case StateBlocked, StateSleeping:
		if t.hasWake {
			t.s.clock.Cancel(t.wakeEvent)
			t.hasWake = false
		}
		t.enqueueSelf()
	}
}

// RequestAbort asks the thread to abandon its current activity. The
// request is delivered as an *Abort panic at the thread's next abort
// check (Charge, Yield, Block return, or explicit CheckAbort). Blocked or
// sleeping threads are woken so the request lands promptly. A second
// request before delivery is ignored (first reason wins).
func (t *Thread) RequestAbort(reason error) {
	if t.state == StateDead {
		return
	}
	if t.abortPending == nil {
		t.abortPending = &AbortRequest{Reason: reason}
	}
	t.Wake()
}

// AbortPending reports whether an abort request is waiting.
func (t *Thread) AbortPending() bool { return t.abortPending != nil }

// ClearAbort drops a pending abort request without delivering it. The
// transaction layer uses it after an abort has been fully processed.
func (t *Thread) ClearAbort() { t.abortPending = nil }

// PushNoAbort enters a critical section in which pending aborts are held
// back rather than delivered. The transaction layer uses it around undo
// processing: an abort arriving while an abort is being processed must
// not unwind the cleanup itself.
func (t *Thread) PushNoAbort() { t.noAbort++ }

// PopNoAbort leaves the critical section opened by PushNoAbort.
func (t *Thread) PopNoAbort() {
	if t.noAbort == 0 {
		panic("sched: PopNoAbort without PushNoAbort")
	}
	t.noAbort--
}

// CheckAbort delivers a pending abort request by panicking with *Abort.
// The panic is expected to be recovered by the graft transaction wrapper.
func (t *Thread) CheckAbort() {
	if t.abortPending == nil || t.noAbort > 0 {
		return
	}
	req := t.abortPending
	t.abortPending = nil
	panic(&Abort{Reason: req.Reason})
}

// Kill destroys the thread the next time it would run. The thread's body
// is unwound via panic; deferred functions run.
func (t *Thread) Kill() {
	if t.state == StateDead {
		return
	}
	t.kill = true
	t.Wake()
}

// Exit terminates the current thread immediately.
func (t *Thread) Exit() {
	t.mustBeCurrent("Exit")
	panic(killSignal{})
}

func (t *Thread) mustBeCurrent(op string) {
	if t.s.current != t {
		panic(fmt.Sprintf("sched: %s called on thread %q which is not current (state %s)", op, t.name, t.state))
	}
}

// Shutdown kills every live thread and drains them. It must be called
// outside Run.
func (s *Scheduler) Shutdown() {
	if s.running {
		panic("sched: Shutdown during Run")
	}
	for _, t := range s.threads {
		t.Kill()
	}
	_ = s.Run()
}

// TakePanic returns and clears the recorded thread panic. Crash
// recovery must call it before Shutdown: Run returns immediately while
// a panic is recorded, so a Shutdown with one still set would never
// drain the surviving threads.
func (s *Scheduler) TakePanic() error {
	err := s.threadPanic
	s.threadPanic = nil
	s.panicThread = nil
	return err
}

// PanicThread returns the (dead) thread whose panic is currently
// recorded, or nil. Scoped crash recovery uses it to roll back only the
// offender's transactions and locks; TakePanic clears it alongside the
// panic itself, so callers must read it first.
func (s *Scheduler) PanicThread() *Thread { return s.panicThread }

// CrashReset rewinds the scheduler to a restored virtual-time frontier
// after crash recovery: run queues are cleared (their threads died in
// the Shutdown) and every CPU's local clock rejoins the checkpoint
// time. Lifetime counters (switches, busy/idle) are deliberately kept —
// the crash happened; its cost is real.
func (s *Scheduler) CrashReset(to time.Duration) {
	if s.running {
		panic("sched: CrashReset during Run")
	}
	if len(s.threads) != 0 {
		panic("sched: CrashReset with live threads (Shutdown first)")
	}
	for _, c := range s.cpus {
		c.runq = nil
		c.now = to
	}
	s.threadPanic = nil
	s.panicThread = nil
	s.current = nil
}
