package sched

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"vino/internal/simclock"
)

func newTestSched() *Scheduler {
	s := New(simclock.New(0))
	s.SwitchCost = 0 // most tests want pure logical behaviour
	return s
}

func TestSingleThreadRunsToCompletion(t *testing.T) {
	s := newTestSched()
	ran := false
	s.Spawn("t1", func(th *Thread) {
		th.Charge(time.Millisecond)
		ran = true
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !ran {
		t.Fatal("thread body did not run")
	}
	if got := s.Clock().Now(); got != time.Millisecond {
		t.Fatalf("clock at %v, want 1ms", got)
	}
}

func TestRoundRobinFairness(t *testing.T) {
	s := newTestSched()
	var order []string
	for _, name := range []string{"a", "b", "c"} {
		name := name
		s.Spawn(name, func(th *Thread) {
			for i := 0; i < 3; i++ {
				order = append(order, name)
				th.Yield()
			}
		})
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := "abcabcabc"
	if got := strings.Join(order, ""); got != want {
		t.Fatalf("order = %q, want %q", got, want)
	}
}

func TestTimeslicePreemption(t *testing.T) {
	s := newTestSched()
	s.SetTimeslice(5 * time.Millisecond)
	var order []string
	s.Spawn("hog", func(th *Thread) {
		for i := 0; i < 4; i++ {
			th.Charge(3 * time.Millisecond) // preempts at 6ms, 12ms
			order = append(order, "hog")
		}
	})
	s.Spawn("meek", func(th *Thread) {
		order = append(order, "meek")
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// The hog must not finish all four slices before meek runs once.
	if order[len(order)-1] == "meek" {
		t.Fatalf("meek starved until the end: %v", order)
	}
	if s.Preemptions() == 0 {
		t.Fatal("no preemptions recorded")
	}
}

func TestSleepOrdersByDeadline(t *testing.T) {
	s := newTestSched()
	var order []string
	s.Spawn("late", func(th *Thread) {
		th.Sleep(20 * time.Millisecond)
		order = append(order, "late")
	})
	s.Spawn("early", func(th *Thread) {
		th.Sleep(5 * time.Millisecond)
		order = append(order, "early")
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(order) != 2 || order[0] != "early" {
		t.Fatalf("order = %v", order)
	}
	if s.Clock().Now() < 20*time.Millisecond {
		t.Fatalf("clock = %v, want >= 20ms", s.Clock().Now())
	}
}

func TestBlockWake(t *testing.T) {
	s := newTestSched()
	var waiter *Thread
	var order []string
	waiter = s.Spawn("waiter", func(th *Thread) {
		order = append(order, "wait")
		th.Block("test condition")
		order = append(order, "woke")
	})
	s.Spawn("waker", func(th *Thread) {
		th.Charge(time.Millisecond)
		order = append(order, "wake")
		waiter.Wake()
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []string{"wait", "wake", "woke"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestDeadlockDetected(t *testing.T) {
	s := newTestSched()
	s.Spawn("stuck", func(th *Thread) {
		th.Block("nothing will wake me")
	})
	err := s.Run()
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("Run = %v, want ErrDeadlock", err)
	}
	if !strings.Contains(err.Error(), "stuck") {
		t.Fatalf("deadlock error does not name the thread: %v", err)
	}
	s.Shutdown()
}

func TestRequestAbortDeliveredAtCharge(t *testing.T) {
	s := newTestSched()
	reason := errors.New("resource hoarding")
	var got error
	victim := s.Spawn("victim", func(th *Thread) {
		defer func() {
			if a, ok := recover().(*Abort); ok {
				got = a.Reason
			}
		}()
		for {
			th.Charge(time.Millisecond) // infinite loop, like the paper's while(1)
		}
	})
	s.Spawn("police", func(th *Thread) {
		th.Charge(5 * time.Millisecond)
		victim.RequestAbort(reason)
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !errors.Is(got, reason) {
		t.Fatalf("abort reason = %v, want %v", got, reason)
	}
}

func TestRequestAbortWakesBlockedThread(t *testing.T) {
	s := newTestSched()
	var aborted bool
	victim := s.Spawn("victim", func(th *Thread) {
		defer func() {
			if _, ok := recover().(*Abort); ok {
				aborted = true
			}
		}()
		th.Block("a lock that never comes")
	})
	s.Spawn("police", func(th *Thread) {
		th.Charge(time.Millisecond)
		victim.RequestAbort(errors.New("timeout"))
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !aborted {
		t.Fatal("blocked thread did not observe the abort")
	}
}

func TestFirstAbortReasonWins(t *testing.T) {
	s := newTestSched()
	first := errors.New("first")
	var got error
	victim := s.Spawn("victim", func(th *Thread) {
		defer func() {
			if a, ok := recover().(*Abort); ok {
				got = a.Reason
			}
		}()
		for i := 0; i < 100; i++ {
			th.Charge(time.Millisecond)
		}
	})
	s.Spawn("police", func(th *Thread) {
		victim.RequestAbort(first)
		victim.RequestAbort(errors.New("second"))
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got != first {
		t.Fatalf("reason = %v, want first", got)
	}
}

func TestKillRunsDefers(t *testing.T) {
	s := newTestSched()
	cleaned := false
	victim := s.Spawn("victim", func(th *Thread) {
		defer func() { cleaned = true }()
		th.Block("forever")
	})
	s.Spawn("killer", func(th *Thread) {
		th.Charge(time.Millisecond)
		victim.Kill()
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !cleaned {
		t.Fatal("deferred cleanup did not run on Kill")
	}
}

func TestKillBeforeFirstDispatch(t *testing.T) {
	s := newTestSched()
	ran := false
	victim := s.Spawn("victim", func(th *Thread) { ran = true })
	victim.Kill()
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if ran {
		t.Fatal("killed thread body ran")
	}
}

func TestThreadPanicSurfacesFromRun(t *testing.T) {
	s := newTestSched()
	s.Spawn("buggy", func(th *Thread) {
		panic("kernel bug")
	})
	err := s.Run()
	if err == nil || !strings.Contains(err.Error(), "kernel bug") {
		t.Fatalf("Run = %v, want panic error", err)
	}
}

func TestSpawnFromThread(t *testing.T) {
	s := newTestSched()
	var order []string
	s.Spawn("parent", func(th *Thread) {
		order = append(order, "parent")
		th.Scheduler().Spawn("child", func(c *Thread) {
			order = append(order, "child")
		})
		th.Yield()
		order = append(order, "parent2")
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []string{"parent", "child", "parent2"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestPickDelegateHandsOffTimeslice(t *testing.T) {
	s := newTestSched()
	var server *Thread
	var order []string
	s.Spawn("client", func(th *Thread) {
		for i := 0; i < 3; i++ {
			order = append(order, "client")
			th.Yield()
		}
	})
	server = s.Spawn("server", func(th *Thread) {
		for i := 0; i < 3; i++ {
			order = append(order, "server")
			th.Yield()
		}
	})
	// Delegate: whenever the client is chosen, run the server instead —
	// the paper's database client donating its slice to the server.
	s.PickDelegate = func(chosen *Thread) *Thread {
		if chosen.Name() == "client" && server.State() == StateRunnable {
			return server
		}
		return nil
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Server must finish all three turns before the client's first.
	firstClient, lastServer := -1, -1
	for i, v := range order {
		if v == "client" && firstClient == -1 {
			firstClient = i
		}
		if v == "server" {
			lastServer = i
		}
	}
	if firstClient != -1 && lastServer > firstClient+3 {
		t.Fatalf("delegation did not prioritise server: %v", order)
	}
	if order[0] != "server" {
		t.Fatalf("first dispatch should be delegated to server: %v", order)
	}
}

func TestPickDelegateIgnoresInvalidChoice(t *testing.T) {
	s := newTestSched()
	var dead *Thread
	dead = s.Spawn("dead", func(th *Thread) {})
	var order []string
	s.PickDelegate = func(chosen *Thread) *Thread { return dead }
	s.Spawn("live", func(th *Thread) { order = append(order, "live") })
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(order) != 1 {
		t.Fatalf("live thread ran %d times, want 1", len(order))
	}
}

func TestLocals(t *testing.T) {
	s := newTestSched()
	s.Spawn("t", func(th *Thread) {
		if th.Local("txn") != nil {
			t.Error("unset local not nil")
		}
		th.SetLocal("txn", 42)
		if th.Local("txn") != 42 {
			t.Error("local round trip failed")
		}
		th.SetLocal("txn", nil)
		if th.Local("txn") != nil {
			t.Error("nil SetLocal did not delete")
		}
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestCPUAccounting(t *testing.T) {
	s := newTestSched()
	var th1 *Thread
	th1 = s.Spawn("t", func(th *Thread) {
		th.Charge(3 * time.Millisecond)
		th.Charge(4 * time.Millisecond)
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := th1.CPUTime(); got != 7*time.Millisecond {
		t.Fatalf("CPUTime = %v, want 7ms", got)
	}
}

func TestSwitchCostAdvancesClock(t *testing.T) {
	s := New(simclock.New(0))
	s.SwitchCost = 10 * time.Microsecond
	s.Spawn("a", func(th *Thread) { th.Yield() })
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Two dispatches (initial + after yield) at 10us each.
	if got := s.Clock().Now(); got != 20*time.Microsecond {
		t.Fatalf("clock = %v, want 20us", got)
	}
	if s.ContextSwitches() != 2 {
		t.Fatalf("switches = %d, want 2", s.ContextSwitches())
	}
}

// Property: an infinite-loop thread never gets more than its fair share:
// with n equal spinners, each thread's CPU time stays within one timeslice
// of the others. This is the paper's fairness claim for runaway grafts
// (§2.2): an infinite loop costs no more than a user process's infinite
// loop.
func TestPropertyFairShareUnderSpin(t *testing.T) {
	f := func(nRaw uint8) bool {
		n := int(nRaw%4) + 2
		s := newTestSched()
		s.SetTimeslice(10 * time.Millisecond)
		threads := make([]*Thread, n)
		stop := false
		for i := 0; i < n; i++ {
			threads[i] = s.Spawn("spin", func(th *Thread) {
				for !stop {
					th.Charge(time.Millisecond)
				}
			})
		}
		s.Spawn("stopper", func(th *Thread) {
			th.Sleep(500 * time.Millisecond)
			stop = true
		})
		if err := s.Run(); err != nil {
			return false
		}
		min, max := threads[0].CPUTime(), threads[0].CPUTime()
		for _, th := range threads[1:] {
			if th.CPUTime() < min {
				min = th.CPUTime()
			}
			if th.CPUTime() > max {
				max = th.CPUTime()
			}
		}
		return max-min <= s.Timeslice()+time.Millisecond
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDispatchYield(b *testing.B) {
	s := newTestSched()
	s.Spawn("y", func(th *Thread) {
		for i := 0; i < b.N; i++ {
			th.Yield()
		}
	})
	b.ResetTimer()
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
}

func TestDispatchHookRunsOnThreadAtSliceTop(t *testing.T) {
	s := newTestSched()
	var hookRuns int
	var hookThread *Thread
	s.DispatchHook = func(cur *Thread) *Thread {
		hookRuns++
		hookThread = cur
		// The hook runs ON the dispatched thread: charging must work.
		cur.Charge(time.Microsecond)
		return nil
	}
	var th *Thread
	th = s.Spawn("worker", func(tt *Thread) {
		tt.Yield()
		tt.Yield()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// Initial dispatch + two post-yield dispatches.
	if hookRuns != 3 {
		t.Fatalf("hook ran %d times, want 3", hookRuns)
	}
	if hookThread != th {
		t.Fatal("hook ran on the wrong thread")
	}
}

func TestDispatchHookDonation(t *testing.T) {
	s := newTestSched()
	var order []string
	var server *Thread
	server = s.Spawn("server", func(tt *Thread) {
		for i := 0; i < 2; i++ {
			order = append(order, "server")
			tt.Yield()
		}
	})
	donations := 0
	s.DispatchHook = func(cur *Thread) *Thread {
		if cur.Name() == "client" && server.State() == StateRunnable {
			donations++
			return server
		}
		return nil
	}
	s.Spawn("client", func(tt *Thread) {
		for i := 0; i < 2; i++ {
			order = append(order, "client")
			tt.Yield()
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if donations == 0 {
		t.Fatal("no donations happened")
	}
	// Every client turn is preceded by the server exhausting its runnable
	// turns: the server's entries must all come first.
	firstClient := -1
	lastServer := -1
	for i, v := range order {
		if v == "client" && firstClient < 0 {
			firstClient = i
		}
		if v == "server" {
			lastServer = i
		}
	}
	if lastServer > firstClient && firstClient >= 0 {
		t.Fatalf("donation did not prioritise server: %v", order)
	}
}

func TestDispatchHookNoRecursion(t *testing.T) {
	s := newTestSched()
	depth := map[*Thread]int{}
	maxDepth := 0
	s.DispatchHook = func(cur *Thread) *Thread {
		depth[cur]++
		if depth[cur] > maxDepth {
			maxDepth = depth[cur]
		}
		// Yield inside the hook: this thread's re-dispatch must NOT
		// re-enter its hook (other threads' hooks may run meanwhile).
		cur.Yield()
		depth[cur]--
		return nil
	}
	s.Spawn("a", func(tt *Thread) { tt.Yield() })
	s.Spawn("b", func(tt *Thread) {})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if maxDepth > 1 {
		t.Fatalf("hook re-entered: depth %d", maxDepth)
	}
}

func TestDispatchHookIgnoresDeadAndSelf(t *testing.T) {
	s := newTestSched()
	var dead *Thread
	dead = s.Spawn("dead", func(tt *Thread) {})
	turns := 0
	s.DispatchHook = func(cur *Thread) *Thread {
		if cur.Name() == "live" {
			if turns%2 == 0 {
				return cur // self: no donation
			}
			return dead // dead after first turn: ignored
		}
		return nil
	}
	s.Spawn("live", func(tt *Thread) {
		for i := 0; i < 4; i++ {
			turns++
			tt.Yield()
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if turns != 4 {
		t.Fatalf("live thread completed %d/4 turns", turns)
	}
}
