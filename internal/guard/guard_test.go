package guard

import (
	"strings"
	"testing"
	"time"

	"vino/internal/simclock"
	"vino/internal/trace"
	"vino/internal/txn"
)

func newSup(p Policy) (*Supervisor, *simclock.Clock, *trace.Buffer) {
	clock := simclock.New(0)
	tr := trace.New(256)
	return New(clock, tr, p), clock, tr
}

func TestEscalationAndProbationClear(t *testing.T) {
	s, clock, tr := newSup(Policy{})
	pol := s.Policy()
	const key = "pt#img"

	if d := s.Admit(key); d != Run {
		t.Fatalf("fresh graft not admitted: %v", d)
	}
	// Aborts up to (but not including) the quarantine budget.
	for i := 1; i < pol.QuarantineStreak; i++ {
		if v := s.RecordAbort(key, txn.CauseWatchdog, 45*time.Microsecond); v != VerdictKeep {
			t.Fatalf("abort %d: verdict %v, want keep", i, v)
		}
	}
	if st, _ := s.StateOf(key); st != Suspect {
		t.Fatalf("state after %d aborts: %v, want suspect", pol.QuarantineStreak-1, st)
	}
	// Budget reached: quarantine.
	if v := s.RecordAbort(key, txn.CauseWatchdog, 45*time.Microsecond); v != VerdictQuarantine {
		t.Fatalf("budget abort: verdict %v, want quarantine", v)
	}
	if st, _ := s.StateOf(key); st != Quarantined {
		t.Fatalf("state: %v, want quarantined", st)
	}
	if got := len(tr.Filter(trace.GraftQuarantine)); got != 1 {
		t.Fatalf("%d quarantine events, want 1", got)
	}
	// Blocked until the backoff expires.
	if d := s.Admit(key); d != Block {
		t.Fatalf("quarantined graft admitted: %v", d)
	}
	h, _ := s.Health(key)
	if h.ShortCircuits != 1 {
		t.Fatalf("short circuits = %d, want 1", h.ShortCircuits)
	}
	clock.Advance(pol.Backoff + time.Millisecond)
	if d := s.Admit(key); d != RunProbation {
		t.Fatalf("post-backoff admit: %v, want probation", d)
	}
	if got := len(tr.Filter(trace.GraftProbation)); got != 1 {
		t.Fatalf("%d probation events, want 1", got)
	}
	// Clean commits clear probation.
	for i := 0; i < pol.ProbationCommits; i++ {
		s.RecordCommit(key)
	}
	if st, _ := s.StateOf(key); st != Healthy {
		t.Fatalf("state after probation served: %v, want healthy", st)
	}
	evs := tr.Filter(trace.GraftProbation)
	if len(evs) != 2 || !strings.Contains(evs[1].Detail, "cleared") {
		t.Fatalf("probation-cleared event missing: %v", evs)
	}
	// The cost ledger accumulated every abort.
	h, _ = s.Health(key)
	if want := time.Duration(pol.QuarantineStreak) * 45 * time.Microsecond; h.AbortCost != want {
		t.Fatalf("abort cost %v, want %v", h.AbortCost, want)
	}
	if h.AbortsByCause[txn.CauseWatchdog] != int64(pol.QuarantineStreak) {
		t.Fatalf("watchdog bucket = %d, want %d", h.AbortsByCause[txn.CauseWatchdog], pol.QuarantineStreak)
	}
}

func TestProbationRelapseExpels(t *testing.T) {
	s, clock, tr := newSup(Policy{})
	pol := s.Policy()
	const key = "pt#img"
	for i := 0; i < pol.QuarantineStreak; i++ {
		s.Admit(key)
		s.RecordAbort(key, txn.CauseSFITrap, 0)
	}
	clock.Advance(pol.Backoff + time.Millisecond)
	if d := s.Admit(key); d != RunProbation {
		t.Fatalf("expected probation, got %v", d)
	}
	var v Verdict
	for i := 0; i < pol.ProbationStreak; i++ {
		v = s.RecordAbort(key, txn.CauseSFITrap, 0)
	}
	if v != VerdictExpel {
		t.Fatalf("relapse verdict %v, want expel", v)
	}
	if st, _ := s.StateOf(key); st != Expelled {
		t.Fatalf("state %v, want expelled", st)
	}
	if !s.Barred(key) {
		t.Fatal("expelled graft not barred")
	}
	if d := s.Admit(key); d != Block {
		t.Fatalf("expelled graft admitted: %v", d)
	}
	if got := len(tr.Filter(trace.GraftExpel)); got != 1 {
		t.Fatalf("%d expel events, want 1", got)
	}
	// Expulsion is terminal: even far in the future nothing reinstates.
	clock.Advance(time.Hour)
	if d := s.Admit(key); d != Block {
		t.Fatalf("expelled graft admitted after an hour: %v", d)
	}
}

func TestRateTriggerQuarantines(t *testing.T) {
	s, _, _ := newSup(Policy{
		QuarantineStreak: 100, // out of reach: only the rate can trigger
		QuarantinePct:    50,
		MinSample:        4,
	})
	const key = "pt#img"
	quarantined := false
	// Alternate commit/abort: 50% rate reaches the bar once MinSample
	// invocations have completed.
	for i := 0; i < 10 && !quarantined; i++ {
		s.Admit(key)
		if i%2 == 0 {
			s.RecordCommit(key)
		} else if s.RecordAbort(key, txn.CauseOther, 0) == VerdictQuarantine {
			quarantined = true
		}
	}
	if !quarantined {
		t.Fatal("50% abort rate never quarantined")
	}
	h, _ := s.Health(key)
	if completed := h.Commits + h.Aborts; completed < 4 {
		t.Fatalf("rate trigger fired below MinSample (%d completed)", completed)
	}
}

func TestBackoffDoublesAndCaps(t *testing.T) {
	s, clock, _ := newSup(Policy{
		Backoff:       10 * time.Millisecond,
		BackoffFactor: 2,
		MaxBackoff:    25 * time.Millisecond,
	})
	pol := s.Policy()
	const key = "pt#img"
	quarantine := func() time.Duration {
		for {
			s.Admit(key)
			if s.RecordAbort(key, txn.CauseWatchdog, 0) == VerdictQuarantine {
				break
			}
		}
		h, _ := s.Health(key)
		return h.QuarantineEnd - clock.Now()
	}
	serveProbation := func() {
		clock.Advance(pol.MaxBackoff + time.Millisecond)
		if d := s.Admit(key); d != RunProbation {
			t.Fatalf("expected probation, got %v", d)
		}
		for i := 0; i < pol.ProbationCommits; i++ {
			s.RecordCommit(key)
		}
	}
	if got := quarantine(); got != 10*time.Millisecond {
		t.Fatalf("first backoff %v, want 10ms", got)
	}
	serveProbation()
	if got := quarantine(); got != 20*time.Millisecond {
		t.Fatalf("second backoff %v, want 20ms", got)
	}
	serveProbation()
	if got := quarantine(); got != 25*time.Millisecond {
		t.Fatalf("third backoff %v, want the 25ms cap", got)
	}
}

func TestCommitResetsStreakAndRecoverySuspect(t *testing.T) {
	s, _, _ := newSup(Policy{})
	pol := s.Policy()
	const key = "pt#img"
	// One short of quarantine, then a commit: streak resets, suspect
	// recovers, and the budget starts over.
	for i := 1; i < pol.QuarantineStreak; i++ {
		s.Admit(key)
		s.RecordAbort(key, txn.CauseOther, 0)
	}
	if st, _ := s.StateOf(key); st != Suspect {
		t.Fatalf("state %v, want suspect", st)
	}
	s.Admit(key)
	s.RecordCommit(key)
	if st, _ := s.StateOf(key); st != Healthy {
		t.Fatalf("state after commit %v, want healthy", st)
	}
	s.Admit(key)
	if v := s.RecordAbort(key, txn.CauseOther, 0); v != VerdictKeep {
		t.Fatalf("fresh abort after reset quarantined immediately: %v", v)
	}
}

func TestReportDeterministicAndSorted(t *testing.T) {
	run := func() string {
		s, _, _ := newSup(Policy{})
		for _, key := range []string{"z.pt#b", "a.pt#a", "m.pt#c"} {
			s.Admit(key)
			s.RecordAbort(key, txn.CauseLockTimeout, 55*time.Microsecond)
			s.Admit(key)
			s.RecordCommit(key)
		}
		return s.Report().Table()
	}
	t1, t2 := run(), run()
	if t1 != t2 {
		t.Fatalf("Table not deterministic:\n%s\nvs\n%s", t1, t2)
	}
	if !strings.Contains(t1, "lock-timeout=1") {
		t.Fatalf("cause bucket missing from table:\n%s", t1)
	}
	r := Report{}
	s, _, _ := newSup(Policy{})
	s.Admit("z.pt#b")
	s.Admit("a.pt#a")
	r = s.Report()
	if len(r.Grafts) != 2 || r.Grafts[0].Key != "a.pt#a" {
		t.Fatalf("report not sorted by key: %+v", r.Grafts)
	}
	// Unknown keys are implicitly healthy, not materialised.
	if _, ok := s.Health("nope"); ok {
		t.Fatal("Health invented an entry")
	}
	if st, ok := s.StateOf("nope"); ok || st != Healthy {
		t.Fatalf("StateOf unknown = %v,%v", st, ok)
	}
}

// TestGrantAuditCounters: per-region grant-window usage accumulates in
// the health ledger, snapshots deep-copy it, and the table renders a
// GRANTS column in deterministic region order.
func TestGrantAuditCounters(t *testing.T) {
	s, _, _ := newSup(Policy{})
	const key = "pt#img"
	s.Admit(key)
	s.RecordGrantAudit(key, "share", 2, 3)
	s.RecordGrantAudit(key, "share", 1, 0)
	s.RecordGrantAudit(key, "buf", 0, 5)
	s.RecordCommit(key)

	h, ok := s.Health(key)
	if !ok {
		t.Fatal("no health entry")
	}
	if h.GrantReads["share"] != 3 || h.GrantWrites["share"] != 3 {
		t.Fatalf("share audit = %dr/%dw, want 3r/3w", h.GrantReads["share"], h.GrantWrites["share"])
	}
	if h.GrantReads["buf"] != 0 || h.GrantWrites["buf"] != 5 {
		t.Fatalf("buf audit = %dr/%dw, want 0r/5w", h.GrantReads["buf"], h.GrantWrites["buf"])
	}
	// The snapshot is a copy: mutating it must not touch the ledger.
	h.GrantReads["share"] = 99
	if h2, _ := s.Health(key); h2.GrantReads["share"] != 3 {
		t.Fatal("Health handed out the live grant-audit map")
	}

	tbl := s.Report().Table()
	if !strings.Contains(tbl, "GRANTS") {
		t.Fatalf("table missing GRANTS column:\n%s", tbl)
	}
	if !strings.Contains(tbl, "buf=0r/5w,share=3r/3w") {
		t.Fatalf("grants cell wrong or unsorted:\n%s", tbl)
	}

	// Grafts without grant traffic render the empty marker.
	s.Admit("quiet#g")
	s.RecordCommit("quiet#g")
	if h3, _ := s.Health("quiet#g"); len(h3.GrantReads) != 0 || len(h3.GrantWrites) != 0 {
		t.Fatalf("quiet graft has audit entries: %+v %+v", h3.GrantReads, h3.GrantWrites)
	}
}
