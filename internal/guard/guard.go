// Package guard is the graft supervisor: the layer that notices an
// extension *repeatedly* misbehaving and stops running it, instead of
// letting the dispatch path re-invoke a broken graft forever.
//
// The paper's abort machinery (transactions, watchdogs, lock time-outs,
// resource accounts, SFI) makes each bad invocation survivable; the
// supervisor adds the escalation policy on top, in the spirit of the
// compromise-response policies of Unlimited Lives and the online fault
// recovery of Quest-V. Per graft it keeps a health ledger — invocation,
// commit and abort counts, aborts bucketed by cause, and the cumulative
// abort cost under the paper's 35us + 10L + cG model — and drives a
// deterministic state machine:
//
//	healthy -> suspect -> quarantined -> probation -> (healthy | expelled)
//
// A graft whose abort streak or abort rate crosses the policy budget is
// quarantined: it stays installed, but invocations short-circuit to the
// base-path default so service continues. After an exponential backoff
// in virtual time it is reinstated on probation with a tightened
// watchdog; enough clean commits restore it to healthy, while a relapse
// expels it permanently (reinstalling the same image at the same point
// is refused).
//
// Every decision is a pure function of the ledger and the virtual
// clock, so equal seeds produce byte-identical quarantine schedules and
// trace dumps.
package guard

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"vino/internal/simclock"
	"vino/internal/trace"
	"vino/internal/txn"
)

// State is a graft's position on the escalation ladder.
type State int

const (
	// Healthy grafts run normally.
	Healthy State = iota
	// Suspect grafts have a short abort streak; they still run, but the
	// ledger is watching.
	Suspect
	// Quarantined grafts are not invoked: dispatch short-circuits to the
	// base-path default until the backoff expires.
	Quarantined
	// Probation grafts run again after backoff, under a tightened
	// watchdog, and must string together clean commits to clear.
	Probation
	// Expelled grafts are removed permanently; reinstalling the same
	// image at the same point is refused.
	Expelled
)

func (s State) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Suspect:
		return "suspect"
	case Quarantined:
		return "quarantined"
	case Probation:
		return "probation"
	case Expelled:
		return "expelled"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Decision is the supervisor's answer to an admission check.
type Decision int

const (
	// Run admits the invocation normally.
	Run Decision = iota
	// RunProbation admits it under the probation regime (the dispatch
	// path tightens the watchdog by Policy.WatchdogTighten).
	RunProbation
	// Block short-circuits the invocation to the base-path fallback.
	Block
)

// Verdict is the supervisor's reaction to a reported abort.
type Verdict int

const (
	// VerdictKeep leaves the graft installed and runnable.
	VerdictKeep Verdict = iota
	// VerdictQuarantine blocks the graft until its backoff expires; it
	// stays installed so probation can reinstate it.
	VerdictQuarantine
	// VerdictExpel removes the graft permanently.
	VerdictExpel
)

// Policy is the escalation engine's knob set. Every field is an integer
// or a virtual duration, so decisions are seed-stable under simclock.
// Zero fields take the DefaultPolicy value.
type Policy struct {
	// SuspectStreak consecutive aborts mark a healthy graft suspect.
	SuspectStreak int
	// QuarantineStreak consecutive aborts quarantine the graft — the
	// "abort budget" of the chaos invariant.
	QuarantineStreak int
	// QuarantinePct quarantines on abort *rate*: a graft whose aborts
	// reach this percentage of completed invocations (once MinSample
	// have completed) is quarantined even without a streak. Values over
	// 100 disable the rate trigger.
	QuarantinePct int
	// MinSample is the completed-invocation floor below which the rate
	// trigger stays quiet.
	MinSample int
	// Backoff is the first quarantine's duration in virtual time; each
	// subsequent quarantine multiplies it by BackoffFactor, capped at
	// MaxBackoff.
	Backoff       time.Duration
	BackoffFactor int
	MaxBackoff    time.Duration
	// ProbationCommits clean commits restore a probation graft to
	// healthy.
	ProbationCommits int
	// ProbationStreak consecutive aborts on probation expel the graft
	// permanently.
	ProbationStreak int
	// WatchdogTighten divides the point's watchdog while a graft runs on
	// probation (floor 1 ms in the dispatch path).
	WatchdogTighten int
}

// DefaultPolicy returns the stock escalation policy.
func DefaultPolicy() Policy {
	return Policy{
		SuspectStreak:    2,
		QuarantineStreak: 3,
		QuarantinePct:    60,
		MinSample:        8,
		Backoff:          50 * time.Millisecond,
		BackoffFactor:    2,
		MaxBackoff:       2 * time.Second,
		ProbationCommits: 4,
		ProbationStreak:  2,
		WatchdogTighten:  4,
	}
}

func (p Policy) withDefaults() Policy {
	d := DefaultPolicy()
	if p.SuspectStreak <= 0 {
		p.SuspectStreak = d.SuspectStreak
	}
	if p.QuarantineStreak <= 0 {
		p.QuarantineStreak = d.QuarantineStreak
	}
	if p.QuarantinePct <= 0 {
		p.QuarantinePct = d.QuarantinePct
	}
	if p.MinSample <= 0 {
		p.MinSample = d.MinSample
	}
	if p.Backoff <= 0 {
		p.Backoff = d.Backoff
	}
	if p.BackoffFactor <= 1 {
		p.BackoffFactor = d.BackoffFactor
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = d.MaxBackoff
	}
	if p.MaxBackoff < p.Backoff {
		p.MaxBackoff = p.Backoff
	}
	if p.ProbationCommits <= 0 {
		p.ProbationCommits = d.ProbationCommits
	}
	if p.ProbationStreak <= 0 {
		p.ProbationStreak = d.ProbationStreak
	}
	if p.WatchdogTighten <= 0 {
		p.WatchdogTighten = d.WatchdogTighten
	}
	return p
}

// GraftHealth is one ledger row: the per-graft counters the policy
// engine decides from, snapshotted for Report.
type GraftHealth struct {
	// Key identifies the graft as "<point>#<image>"; the ledger entry
	// survives removal and reinstall of the same image, deliberately —
	// misbehavior history must not reset on re-graft.
	Key   string
	State State
	// Invocations counts admission checks: runs plus short-circuits.
	Invocations int64
	Commits     int64
	Aborts      int64
	// ShortCircuits counts invocations the quarantine blocked (each one
	// served by the base-path default instead).
	ShortCircuits int64
	// Streak is the current consecutive-abort run.
	Streak int
	// Quarantines counts how many times the graft was quarantined.
	Quarantines int
	// AbortCost accumulates the virtual time the abort path consumed on
	// this graft's behalf (the paper's 35us + 10L + cG per abort).
	AbortCost     time.Duration
	AbortsByCause map[txn.AbortCause]int64
	// Recoveries counts kernel-panic recoveries this graft caused, and
	// RecoveryCost accumulates the virtual time each one destroyed (the
	// rewind from crash instant back to the restored checkpoint) —
	// billed like abort costs, but on its own axis: a graft can be
	// cheap to abort yet ruinous to recover from.
	Recoveries   int64
	RecoveryCost time.Duration
	// RolledBackBytes is the state payload reverted by domain-scoped
	// recoveries billed to this graft (zero under whole-kernel scope,
	// where the rewind is global and unattributable). Not rendered in
	// Table — the recovery sweep reports it.
	RolledBackBytes int64
	// QuarantineEnd is the virtual instant the current quarantine
	// expires (meaningful while State is Quarantined).
	QuarantineEnd time.Duration
	// ProbationLeft is the number of clean commits still required to
	// clear probation.
	ProbationLeft int
	// GrantReads and GrantWrites audit the graft's use of per-dispatch
	// shared-buffer grant windows, keyed by compartment region name:
	// accesses its static layout denies that only a live grant allowed.
	// A graft that hammers its grant windows is leaning on kernel-opened
	// shared state rather than its own compartment — worth seeing next
	// to its abort history.
	GrantReads  map[string]int64
	GrantWrites map[string]int64
}

type entry struct {
	GraftHealth
	backoff time.Duration
}

func (e *entry) snapshot() GraftHealth {
	h := e.GraftHealth
	h.AbortsByCause = make(map[txn.AbortCause]int64, len(e.AbortsByCause))
	for c, n := range e.AbortsByCause {
		h.AbortsByCause[c] = n
	}
	h.GrantReads = make(map[string]int64, len(e.GrantReads))
	for r, n := range e.GrantReads {
		h.GrantReads[r] = n
	}
	h.GrantWrites = make(map[string]int64, len(e.GrantWrites))
	for r, n := range e.GrantWrites {
		h.GrantWrites[r] = n
	}
	return h
}

// Supervisor owns the health ledger and applies one Policy. One per
// kernel; the graft registry consults it on every dispatch.
type Supervisor struct {
	clock   *simclock.Clock
	tr      *trace.Buffer
	policy  Policy
	entries map[string]*entry
	keys    []string // insertion order, for deterministic iteration
}

// New builds a supervisor over the kernel's clock and flight recorder.
func New(clock *simclock.Clock, tr *trace.Buffer, p Policy) *Supervisor {
	return &Supervisor{
		clock:   clock,
		tr:      tr,
		policy:  p.withDefaults(),
		entries: make(map[string]*entry),
	}
}

// Policy returns the (defaulted) policy in force.
func (s *Supervisor) Policy() Policy { return s.policy }

func (s *Supervisor) get(key string) *entry {
	e := s.entries[key]
	if e == nil {
		e = &entry{GraftHealth: GraftHealth{
			Key:           key,
			AbortsByCause: make(map[txn.AbortCause]int64),
			GrantReads:    make(map[string]int64),
			GrantWrites:   make(map[string]int64),
		}}
		e.backoff = s.policy.Backoff
		s.entries[key] = e
		s.keys = append(s.keys, key)
	}
	return e
}

func (s *Supervisor) emit(kind trace.Kind, key, detail string) {
	s.tr.Emit(s.clock.Now(), kind, key, detail)
}

// Admit is the dispatch-path gate, called before every invocation of a
// supervised graft. Quarantined grafts whose backoff has expired are
// lazily reinstated on probation here.
func (s *Supervisor) Admit(key string) Decision {
	e := s.get(key)
	e.Invocations++
	switch e.State {
	case Expelled:
		e.ShortCircuits++
		return Block
	case Quarantined:
		if s.clock.Now() >= e.QuarantineEnd {
			e.State = Probation
			e.Streak = 0
			e.ProbationLeft = s.policy.ProbationCommits
			s.emit(trace.GraftProbation, e.Key, fmt.Sprintf(
				"reinstated after backoff; %d clean commits to clear, watchdog /%d",
				e.ProbationLeft, s.policy.WatchdogTighten))
			return RunProbation
		}
		e.ShortCircuits++
		return Block
	case Probation:
		return RunProbation
	}
	return Run
}

// RecordCommit reports a clean invocation: the streak resets, suspects
// recover, and probation counts down toward healthy.
func (s *Supervisor) RecordCommit(key string) {
	e := s.get(key)
	e.Commits++
	e.Streak = 0
	switch e.State {
	case Suspect:
		e.State = Healthy
	case Probation:
		e.ProbationLeft--
		if e.ProbationLeft <= 0 {
			e.State = Healthy
			s.emit(trace.GraftProbation, e.Key, "cleared: probation served, graft healthy")
		}
	}
}

// RecordAbort reports an aborted invocation with its classified cause
// and the virtual time the abort path consumed, and returns the policy
// verdict: keep running, quarantine, or (on a probation relapse) expel.
func (s *Supervisor) RecordAbort(key string, cause txn.AbortCause, cost time.Duration) Verdict {
	e := s.get(key)
	e.Aborts++
	e.Streak++
	e.AbortsByCause[cause]++
	e.AbortCost += cost
	p := s.policy
	if e.State == Probation {
		if e.Streak >= p.ProbationStreak {
			e.State = Expelled
			s.emit(trace.GraftExpel, e.Key, fmt.Sprintf(
				"relapse on probation (%s, streak %d): permanently removed", cause, e.Streak))
			return VerdictExpel
		}
		return VerdictKeep
	}
	if e.State == Healthy && e.Streak >= p.SuspectStreak {
		e.State = Suspect
	}
	completed := e.Commits + e.Aborts
	rateHit := completed >= int64(p.MinSample) &&
		e.Aborts*100 >= int64(p.QuarantinePct)*completed
	if e.Streak >= p.QuarantineStreak || rateHit {
		e.State = Quarantined
		e.Quarantines++
		e.QuarantineEnd = s.clock.Now() + e.backoff
		s.emit(trace.GraftQuarantine, e.Key, fmt.Sprintf(
			"%s, streak %d, %d/%d invocations aborted; backoff %v",
			cause, e.Streak, e.Aborts, completed, e.backoff))
		e.backoff *= time.Duration(p.BackoffFactor)
		if e.backoff > p.MaxBackoff {
			e.backoff = p.MaxBackoff
		}
		return VerdictQuarantine
	}
	return VerdictKeep
}

// RecordGrantAudit adds one dispatch's grant-window access deltas for a
// compartment region to the graft's ledger row (PR 9 follow-up: the
// audit trail of who actually used their per-dispatch grants).
func (s *Supervisor) RecordGrantAudit(key, region string, reads, writes int64) {
	e := s.get(key)
	if reads > 0 {
		e.GrantReads[region] += reads
	}
	if writes > 0 {
		e.GrantWrites[region] += writes
	}
}

// RecordRecovery bills a kernel-panic recovery to the offending graft:
// rewound is the virtual time between the crash instant and the restored
// checkpoint, i.e. the work the crash destroyed. Kept apart from abort
// costs so the ledger distinguishes contained-abort overhead from
// whole-kernel rewinds.
func (s *Supervisor) RecordRecovery(key string, rewound time.Duration) {
	e := s.get(key)
	e.Recoveries++
	e.RecoveryCost += rewound
}

// RecordDomainRecovery bills a domain-scoped recovery: the rewound time
// lands on the same REC axis as a whole-kernel recovery (it is the same
// kind of damage, just contained), and the reverted payload is tracked
// so the ledger shows how much state the graft's crash actually cost.
func (s *Supervisor) RecordDomainRecovery(key string, rewound time.Duration, bytes int64) {
	e := s.get(key)
	e.Recoveries++
	e.RecoveryCost += rewound
	e.RolledBackBytes += bytes
}

// StateOf returns the ledger state for key; ok is false for grafts the
// supervisor has never seen (implicitly Healthy).
func (s *Supervisor) StateOf(key string) (st State, ok bool) {
	e := s.entries[key]
	if e == nil {
		return Healthy, false
	}
	return e.State, true
}

// Barred reports whether the key has been permanently expelled; the
// loader refuses installs of barred grafts.
func (s *Supervisor) Barred(key string) bool {
	e := s.entries[key]
	return e != nil && e.State == Expelled
}

// Health returns a snapshot of one ledger row.
func (s *Supervisor) Health(key string) (GraftHealth, bool) {
	e := s.entries[key]
	if e == nil {
		return GraftHealth{}, false
	}
	return e.snapshot(), true
}

// Report is a full snapshot of the supervisor's ledger.
type Report struct {
	Policy Policy
	// Grafts holds one row per supervised graft, sorted by key.
	Grafts []GraftHealth
}

// Report snapshots the ledger (nil-safe: a kernel without a supervisor
// yields an empty report through the API layer).
func (s *Supervisor) Report() Report {
	r := Report{Policy: s.policy}
	keys := append([]string(nil), s.keys...)
	sort.Strings(keys)
	for _, k := range keys {
		r.Grafts = append(r.Grafts, s.entries[k].snapshot())
	}
	return r
}

// Quarantines totals quarantine episodes across the ledger.
func (r Report) Quarantines() int {
	n := 0
	for _, g := range r.Grafts {
		n += g.Quarantines
	}
	return n
}

// Expulsions counts permanently expelled grafts.
func (r Report) Expulsions() int {
	n := 0
	for _, g := range r.Grafts {
		if g.State == Expelled {
			n++
		}
	}
	return n
}

// Table renders the health ledger for end-of-run display.
func (r Report) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "graft health ledger (%d grafts, %d quarantines, %d expelled):\n",
		len(r.Grafts), r.Quarantines(), r.Expulsions())
	fmt.Fprintf(&b, "  %-34s %-11s %5s %6s %5s %5s %4s %11s %4s %11s %-14s  %s\n",
		"GRAFT", "STATE", "INV", "COMMIT", "ABORT", "BLOCK", "QUAR", "ABORTCOST", "REC", "RECCOST", "GRANTS", "CAUSES")
	for _, g := range r.Grafts {
		fmt.Fprintf(&b, "  %-34s %-11s %5d %6d %5d %5d %4d %11s %4d %11s %-14s  %s\n",
			g.Key, g.State, g.Invocations, g.Commits, g.Aborts, g.ShortCircuits,
			g.Quarantines, fmtCost(g.AbortCost), g.Recoveries, fmtCost(g.RecoveryCost),
			grantsString(g.GrantReads, g.GrantWrites), causesString(g.AbortsByCause))
	}
	return b.String()
}

// grantsString renders per-region grant-window usage as
// "region=<reads>r/<writes>w", regions sorted for determinism.
func grantsString(reads, writes map[string]int64) string {
	regions := make(map[string]bool, len(reads)+len(writes))
	for r := range reads {
		regions[r] = true
	}
	for r := range writes {
		regions[r] = true
	}
	if len(regions) == 0 {
		return "-"
	}
	names := make([]string, 0, len(regions))
	for r := range regions {
		names = append(names, r)
	}
	sort.Strings(names)
	parts := make([]string, 0, len(names))
	for _, r := range names {
		parts = append(parts, fmt.Sprintf("%s=%dr/%dw", r, reads[r], writes[r]))
	}
	return strings.Join(parts, ",")
}

func fmtCost(d time.Duration) string {
	return fmt.Sprintf("%.1fus", float64(d)/float64(time.Microsecond))
}

func causesString(m map[txn.AbortCause]int64) string {
	var parts []string
	for _, c := range txn.Causes() {
		if n := m[c]; n > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", c, n))
		}
	}
	if len(parts) == 0 {
		return "-"
	}
	return strings.Join(parts, " ")
}
