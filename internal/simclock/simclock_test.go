package simclock

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestAdvance(t *testing.T) {
	c := New(0)
	if c.Now() != 0 {
		t.Fatalf("new clock at %v, want 0", c.Now())
	}
	c.Advance(5 * time.Millisecond)
	c.Advance(7 * time.Millisecond)
	if got := c.Now(); got != 12*time.Millisecond {
		t.Fatalf("Now() = %v, want 12ms", got)
	}
}

func TestNegativeAdvancePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Advance(-1) did not panic")
		}
	}()
	New(0).Advance(-1)
}

func TestCycleConversionRoundTrip(t *testing.T) {
	c := New(DefaultHz)
	for _, cycles := range []int64{0, 1, 120, 4320, 120_000_000} {
		d := c.CycleDuration(cycles)
		if got := c.Cycles(d); got != cycles {
			t.Errorf("Cycles(CycleDuration(%d)) = %d", cycles, got)
		}
	}
	// 120 cycles at 120 MHz is exactly one microsecond.
	if d := c.CycleDuration(120); d != time.Microsecond {
		t.Errorf("120 cycles = %v, want 1us", d)
	}
}

func TestEventsFireInDeadlineOrder(t *testing.T) {
	c := New(0)
	var order []int
	c.After(30*time.Millisecond, func() { order = append(order, 3) })
	c.After(10*time.Millisecond, func() { order = append(order, 1) })
	c.After(20*time.Millisecond, func() { order = append(order, 2) })
	c.Advance(100 * time.Millisecond)
	if n := c.RunDue(); n != 3 {
		t.Fatalf("RunDue ran %d events, want 3", n)
	}
	for i, v := range order {
		if v != i+1 {
			t.Fatalf("order = %v, want [1 2 3]", order)
		}
	}
}

func TestEqualDeadlinesFIFO(t *testing.T) {
	c := New(0)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		c.At(time.Millisecond, func() { order = append(order, i) })
	}
	c.Advance(time.Millisecond)
	c.RunDue()
	if !sort.IntsAreSorted(order) {
		t.Fatalf("same-deadline events ran out of FIFO order: %v", order)
	}
}

func TestCancel(t *testing.T) {
	c := New(0)
	fired := false
	id := c.After(time.Millisecond, func() { fired = true })
	if !c.Cancel(id) {
		t.Fatal("Cancel reported event missing")
	}
	if c.Cancel(id) {
		t.Fatal("double Cancel reported success")
	}
	c.Advance(time.Second)
	c.RunDue()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestCancelAfterFire(t *testing.T) {
	c := New(0)
	id := c.After(time.Millisecond, func() {})
	c.Advance(time.Millisecond)
	c.RunDue()
	if c.Cancel(id) {
		t.Fatal("Cancel of fired event reported success")
	}
}

func TestAdvanceToNext(t *testing.T) {
	c := New(0)
	fired := 0
	c.After(5*time.Millisecond, func() { fired++ })
	c.After(5*time.Millisecond, func() { fired++ })
	c.After(9*time.Millisecond, func() { fired++ })
	if !c.AdvanceToNext() {
		t.Fatal("AdvanceToNext found no event")
	}
	if c.Now() != 5*time.Millisecond {
		t.Fatalf("Now() = %v, want 5ms", c.Now())
	}
	if fired != 2 {
		t.Fatalf("fired = %d, want both events at t=5ms", fired)
	}
	c.AdvanceToNext()
	if fired != 3 || c.Now() != 9*time.Millisecond {
		t.Fatalf("fired=%d now=%v, want 3 at 9ms", fired, c.Now())
	}
	if c.AdvanceToNext() {
		t.Fatal("AdvanceToNext on empty queue reported an event")
	}
}

func TestEventScheduledByCallbackRunsIfDue(t *testing.T) {
	c := New(0)
	var order []string
	c.After(time.Millisecond, func() {
		order = append(order, "a")
		c.At(c.Now(), func() { order = append(order, "b") })
	})
	c.Advance(time.Millisecond)
	c.RunDue()
	if len(order) != 2 || order[1] != "b" {
		t.Fatalf("order = %v, want [a b]", order)
	}
}

// TestTickQuantisation reproduces the paper's §4.5 claim: time-outs land on
// 10 ms boundaries, so a time-out requested for duration d fires between
// one tick and d rounded up to the next tick — for a sub-tick request,
// between 10 and 20 ms of the request time.
func TestTickQuantisation(t *testing.T) {
	c := New(0)
	c.Advance(3 * time.Millisecond) // arbitrary unaligned start
	var firedAt time.Duration
	c.AtNextTick(8*time.Millisecond, func() { firedAt = c.Now() })
	for c.AdvanceToNext() {
	}
	if firedAt != 20*time.Millisecond {
		t.Fatalf("tick-quantised timeout fired at %v, want 20ms", firedAt)
	}
	if firedAt%TickInterval != 0 {
		t.Fatalf("timeout not on a tick boundary: %v", firedAt)
	}
}

func TestAtNextTickAlwaysFuture(t *testing.T) {
	c := New(0)
	c.Advance(10 * time.Millisecond) // exactly on a boundary
	var firedAt time.Duration
	c.AtNextTick(0, func() { firedAt = c.Now() })
	c.AdvanceToNext()
	if firedAt <= 10*time.Millisecond {
		t.Fatalf("AtNextTick fired at/before now: %v", firedAt)
	}
}

func TestAtClampsPast(t *testing.T) {
	c := New(0)
	c.Advance(time.Second)
	fired := false
	c.At(0, func() { fired = true })
	c.RunDue()
	if !fired {
		t.Fatal("event scheduled in the past did not fire immediately on RunDue")
	}
}

// Property: for any batch of events with random deadlines, firing order is
// sorted by deadline, ties in insertion order, and every event fires
// exactly once.
func TestPropertyEventOrdering(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		c := New(0)
		count := int(n%64) + 1
		type rec struct{ deadline, seq int }
		var fired []rec
		deadlines := make([]int, count)
		for i := 0; i < count; i++ {
			d := rng.Intn(20)
			deadlines[i] = d
			i := i
			c.After(time.Duration(d)*time.Millisecond, func() {
				fired = append(fired, rec{d, i})
			})
		}
		for c.AdvanceToNext() {
		}
		if len(fired) != count {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i-1].deadline > fired[i].deadline {
				return false
			}
			if fired[i-1].deadline == fired[i].deadline && fired[i-1].seq > fired[i].seq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: cancelling a random subset leaves exactly the complement to fire.
func TestPropertyCancelSubset(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		c := New(0)
		count := int(n%32) + 1
		firedSet := make(map[int]bool)
		ids := make([]EventID, count)
		for i := 0; i < count; i++ {
			i := i
			ids[i] = c.After(time.Duration(rng.Intn(10))*time.Millisecond, func() {
				firedSet[i] = true
			})
		}
		cancelled := make(map[int]bool)
		for i := 0; i < count; i++ {
			if rng.Intn(2) == 0 {
				if !c.Cancel(ids[i]) {
					return false
				}
				cancelled[i] = true
			}
		}
		for c.AdvanceToNext() {
		}
		for i := 0; i < count; i++ {
			if firedSet[i] == cancelled[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkScheduleAndFire(b *testing.B) {
	c := New(0)
	for i := 0; i < b.N; i++ {
		c.After(time.Microsecond, func() {})
		c.Advance(time.Microsecond)
		c.RunDue()
	}
}
