// Package simclock provides the virtual time base for the simulated VINO
// kernel: a monotonically advancing clock measured in nanoseconds and CPU
// cycles, plus a pending-event queue (a binary heap keyed by deadline).
//
// All kernel components — the scheduler's timeslices, lock contention
// time-outs, disk latency, and the pageout daemon — run against this clock
// rather than wall time, so every experiment in the paper reproduces
// deterministically. The paper's test machine is a 120 MHz Pentium; the
// default cycle rate matches it so that "cycles" and "microseconds" relate
// the way they do in the paper's tables.
package simclock

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// DefaultHz is the simulated CPU frequency: 120 MHz, the paper's Pentium.
const DefaultHz = 120_000_000

// TickInterval is the system clock tick. The paper schedules time-outs on
// system-clock boundaries that occur every 10 ms (§4.5).
const TickInterval = 10 * time.Millisecond

// EventID names a scheduled event so it can be cancelled.
type EventID uint64

// Event is a callback scheduled to run at a virtual deadline.
type event struct {
	id       EventID
	deadline time.Duration // virtual time since boot
	cpu      int           // CPU that scheduled the event
	seq      uint64        // FIFO order among equal deadlines
	fn       func()
	index    int // heap index, -1 once popped or cancelled
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].deadline != h[j].deadline {
		return h[i].deadline < h[j].deadline
	}
	if h[i].cpu != h[j].cpu {
		return h[i].cpu < h[j].cpu
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Clock is the virtual time source. It is not safe for concurrent use; the
// simulated kernel is single-threaded by construction (one runnable thread
// at a time, handed off through the scheduler).
type Clock struct {
	now     time.Duration
	hz      int64
	events  eventHeap
	nextID  EventID
	nextSeq uint64
	byID    map[EventID]*event
	cpu     int    // CPU currently executing (stamped onto new events)
	firing  *event // event whose callback is running, nil outside RunDue
}

// Stamp is a point in the global event order: virtual time, then the CPU
// that produced it, then a monotone sequence number. Stamps from the same
// clock are totally ordered and, on a single CPU, reduce to arrival order.
// The lock manager uses stamps to keep wait-queue ordering replayable
// across CPUs.
type Stamp struct {
	T   time.Duration
	CPU int
	Seq uint64
}

// Less reports whether s precedes o in the global event order.
func (s Stamp) Less(o Stamp) bool {
	if s.T != o.T {
		return s.T < o.T
	}
	if s.CPU != o.CPU {
		return s.CPU < o.CPU
	}
	return s.Seq < o.Seq
}

// New returns a clock at virtual time zero running at hz cycles per second.
// If hz <= 0, DefaultHz is used.
func New(hz int64) *Clock {
	if hz <= 0 {
		hz = DefaultHz
	}
	return &Clock{hz: hz, byID: make(map[EventID]*event)}
}

// Now returns the current virtual time since boot.
func (c *Clock) Now() time.Duration { return c.now }

// SetNow repositions the clock's frontier. Unlike Advance it may move time
// backward: under SMP simulation each CPU has a local notion of "now", and
// the scheduler repositions the shared clock to the local time of whichever
// CPU it dispatches next. Events already past the restored frontier simply
// stay pending until time reaches them again; an event is never scheduled
// before its creating CPU's local time, so no event can be observed firing
// twice or out of order.
func (c *Clock) SetNow(t time.Duration) {
	if t < 0 {
		panic(fmt.Sprintf("simclock: negative time %v", t))
	}
	c.now = t
}

// SetCPU records which simulated CPU is executing. New events and stamps
// are tagged with this index, which is the middle key of the global event
// order. The default (0) preserves the original single-CPU behaviour.
func (c *Clock) SetCPU(cpu int) { c.cpu = cpu }

// CPU returns the index of the simulated CPU currently executing.
func (c *Clock) CPU() int { return c.cpu }

// Stamp returns the next point in the global event order. Stamps share the
// event sequence counter, so the relative order of events and stamps is a
// single total order.
func (c *Clock) Stamp() Stamp {
	c.nextSeq++
	return Stamp{T: c.now, CPU: c.cpu, Seq: c.nextSeq}
}

// EventTime returns the deadline of the event whose callback is currently
// running, or the present time when called outside RunDue. Timer callbacks
// use it to learn the *scheduled* time of their firing even when a busy CPU
// processed the interrupt late — the woken thread is accounted ready at the
// deadline, not at the (possibly later) processing time.
func (c *Clock) EventTime() time.Duration {
	if c.firing != nil {
		return c.firing.deadline
	}
	return c.now
}

// Hz returns the simulated CPU frequency.
func (c *Clock) Hz() int64 { return c.hz }

// Cycles converts a duration at the clock's frequency into CPU cycles.
func (c *Clock) Cycles(d time.Duration) int64 {
	return int64(math.Round(d.Seconds() * float64(c.hz)))
}

// CycleDuration converts a cycle count into virtual time.
func (c *Clock) CycleDuration(cycles int64) time.Duration {
	return time.Duration(float64(cycles) / float64(c.hz) * float64(time.Second))
}

// Advance moves virtual time forward by d without running events. It is the
// primitive used by the scheduler when a thread consumes CPU. Advancing
// past a pending event deadline is allowed; the event fires (late) on the
// next RunDue call, which matches real kernels where a busy CPU delays
// softclock processing.
func (c *Clock) Advance(d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("simclock: negative advance %v", d))
	}
	c.now += d
}

// AdvanceCycles moves time forward by a cycle count.
func (c *Clock) AdvanceCycles(cycles int64) { c.Advance(c.CycleDuration(cycles)) }

// At schedules fn to run at absolute virtual time t (clamped to now).
func (c *Clock) At(t time.Duration, fn func()) EventID {
	if t < c.now {
		t = c.now
	}
	c.nextID++
	c.nextSeq++
	e := &event{id: c.nextID, deadline: t, cpu: c.cpu, seq: c.nextSeq, fn: fn}
	heap.Push(&c.events, e)
	c.byID[e.id] = e
	return e.id
}

// After schedules fn to run d from now.
func (c *Clock) After(d time.Duration, fn func()) EventID {
	return c.At(c.now+d, fn)
}

// AtNextTick schedules fn on the next system-clock tick boundary at or
// after now+d. This reproduces the paper's coarse-grained time-outs: "we
// currently schedule time-outs on system-clock boundaries, which occur
// every 10 ms. Therefore, the delay for timing out a transaction will be
// between 10 and 20 ms" (§4.5).
func (c *Clock) AtNextTick(d time.Duration, fn func()) EventID {
	deadline := c.now + d
	ticks := (deadline + TickInterval - 1) / TickInterval
	aligned := ticks * TickInterval
	if aligned <= c.now {
		aligned += TickInterval
	}
	return c.At(aligned, fn)
}

// Cancel removes a pending event. It reports whether the event was still
// pending (false if already fired or cancelled).
func (c *Clock) Cancel(id EventID) bool {
	e, ok := c.byID[id]
	if !ok {
		return false
	}
	delete(c.byID, id)
	if e.index >= 0 {
		heap.Remove(&c.events, e.index)
	}
	return true
}

// NextDeadline returns the deadline of the earliest pending event, and
// false if none is pending.
func (c *Clock) NextDeadline() (time.Duration, bool) {
	if len(c.events) == 0 {
		return 0, false
	}
	return c.events[0].deadline, true
}

// RunDue fires every event whose deadline is <= now, in deadline order. It
// returns the number of events run. Events scheduled by callbacks are
// honoured if they are also due.
func (c *Clock) RunDue() int {
	n := 0
	for len(c.events) > 0 && c.events[0].deadline <= c.now {
		e := heap.Pop(&c.events).(*event)
		delete(c.byID, e.id)
		n++
		prev := c.firing
		c.firing = e
		e.fn()
		c.firing = prev
	}
	return n
}

// AdvanceToNext jumps time to the earliest pending deadline and fires all
// events due at that instant. It reports whether any event existed. This is
// the idle path: no thread is runnable, so time leaps to the next interrupt.
func (c *Clock) AdvanceToNext() bool {
	if len(c.events) == 0 {
		return false
	}
	d := c.events[0].deadline
	if d > c.now {
		c.now = d
	}
	c.RunDue()
	return true
}

// Pending returns the number of scheduled events.
func (c *Clock) Pending() int { return len(c.events) }

// Reset discards every pending event and repositions the clock at t —
// crash recovery's reboot: timers armed by threads that died with the
// crash must not fire into the restored image. The id and sequence
// counters are NOT reset, so stamps taken after a recovery still sort
// after stamps taken before it (the global event order stays a total
// order across the crash).
func (c *Clock) Reset(t time.Duration) {
	if t < 0 {
		panic(fmt.Sprintf("simclock: negative time %v", t))
	}
	if c.firing != nil {
		panic("simclock: Reset during event callback")
	}
	c.events = nil
	c.byID = make(map[EventID]*event)
	c.now = t
}
