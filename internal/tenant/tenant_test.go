package tenant

import (
	"testing"
	"time"

	"vino/internal/guard"
	"vino/internal/resource"
)

func expelled(key string, aborts int64, cost time.Duration) guard.GraftHealth {
	return guard.GraftHealth{Key: key, State: guard.Expelled, Aborts: aborts, AbortCost: cost}
}

// TestEscalationLadder: one expulsion throttles, a second bans, and
// admission shed follows the state deterministically.
func TestEscalationLadder(t *testing.T) {
	r := New(nil, nil, DefaultPolicy())
	r.Register("acme")
	r.BindGraft("acme", "tcp/80.connection#wild")
	r.BindGraft("acme", "tcp/81.connection#wild2")

	if got := r.Lookup("acme").State(); got != Active {
		t.Fatalf("initial state = %v", got)
	}
	for i := int64(0); i < 4; i++ {
		if !r.Admit("acme", i) {
			t.Fatalf("active tenant shed request %d", i)
		}
	}

	r.Observe(guard.Report{Grafts: []guard.GraftHealth{
		expelled("tcp/80.connection#wild", 3, 90*time.Microsecond),
	}})
	if got := r.Lookup("acme").State(); got != Throttled {
		t.Fatalf("after one expulsion state = %v, want throttled", got)
	}
	var admits []bool
	for i := int64(0); i < 4; i++ {
		admits = append(admits, r.Admit("acme", i))
	}
	want := []bool{true, false, true, false}
	for i := range want {
		if admits[i] != want[i] {
			t.Fatalf("throttled admits = %v, want %v", admits, want)
		}
	}

	r.Observe(guard.Report{Grafts: []guard.GraftHealth{
		expelled("tcp/80.connection#wild", 3, 90*time.Microsecond),
		expelled("tcp/81.connection#wild2", 2, 60*time.Microsecond),
	}})
	if got := r.Lookup("acme").State(); got != Banned {
		t.Fatalf("after two expulsions state = %v, want banned", got)
	}
	if r.Admit("acme", 0) {
		t.Fatal("banned tenant admitted")
	}
	if r.CanInstall("acme") {
		t.Fatal("banned tenant may still install")
	}

	h := r.Report()[0]
	if h.Expulsions != 2 || h.Aborts != 5 || h.AbortCost != 150*time.Microsecond {
		t.Fatalf("health = %+v", h)
	}
	if h.Shed != 3 { // 2 throttled odd seqs + 1 banned
		t.Fatalf("shed = %d, want 3", h.Shed)
	}
}

// TestObserveDeltas: re-observing an unchanged ledger accumulates
// nothing, and an expulsion transition counts exactly once.
func TestObserveDeltas(t *testing.T) {
	r := New(nil, nil, Policy{ThrottleExpulsions: 1, BanExpulsions: 5})
	r.BindGraft("acme", "p#g")
	row := expelled("p#g", 7, 210*time.Microsecond)
	for i := 0; i < 3; i++ {
		r.Observe(guard.Report{Grafts: []guard.GraftHealth{row}})
	}
	h := r.Report()[0]
	if h.Expulsions != 1 {
		t.Fatalf("expulsions = %d, want 1 (no re-count)", h.Expulsions)
	}
	if h.Aborts != 7 || h.AbortCost != 210*time.Microsecond {
		t.Fatalf("billing = %+v, want one copy of the deltas", h)
	}
	if got := r.Lookup("acme").State(); got != Throttled {
		t.Fatalf("state = %v", got)
	}

	// A later row with more aborts bills only the increment.
	row.Aborts, row.AbortCost = 9, 270*time.Microsecond
	r.Observe(guard.Report{Grafts: []guard.GraftHealth{row}})
	if h := r.Report()[0]; h.Aborts != 9 {
		t.Fatalf("aborts after increment = %d, want 9", h.Aborts)
	}
}

// TestEpochReset: after an instance replacement the fresh supervisor's
// ledger restarts empty; the baseline resets but standing and billing
// survive, and a re-expulsion after the reboot counts as new.
func TestEpochReset(t *testing.T) {
	r := New(nil, nil, DefaultPolicy())
	r.BindGraft("acme", "p#g")
	r.Observe(guard.Report{Grafts: []guard.GraftHealth{expelled("p#g", 3, 0)}})
	if got := r.Lookup("acme").State(); got != Throttled {
		t.Fatalf("state = %v", got)
	}
	r.EpochReset()
	if got := r.Lookup("acme").State(); got != Throttled {
		t.Fatalf("state after reset = %v, want throttled (ladder survives reboot)", got)
	}
	if h := r.Report()[0]; h.Aborts != 3 {
		t.Fatalf("billing after reset = %+v, want preserved", h)
	}
	// The rebooted instance reinstalls and the graft misbehaves again:
	// a fresh expulsion, counted, walks the tenant to banned.
	r.Observe(guard.Report{Grafts: []guard.GraftHealth{expelled("p#g", 2, 0)}})
	if got := r.Lookup("acme").State(); got != Banned {
		t.Fatalf("state after re-expulsion = %v, want banned", got)
	}
}

// TestTenantAccountsIsolated: each tenant's account is its own meter —
// limits granted by policy, charges on one tenant invisible to another.
func TestTenantAccountsIsolated(t *testing.T) {
	r := New(nil, nil, Policy{Limits: map[resource.Kind]int64{resource.Sockets: 2}})
	a := r.Register("a")
	b := r.Register("b")
	if err := a.Account.Charge(resource.Sockets, 2); err != nil {
		t.Fatalf("charge within limit: %v", err)
	}
	if err := a.Account.Charge(resource.Sockets, 1); err == nil {
		t.Fatal("charge past limit succeeded")
	}
	if used := b.Account.Used(resource.Sockets); used != 0 {
		t.Fatalf("tenant b used = %d, want 0 (no cross-tenant leakage)", used)
	}
	if err := b.Account.Charge(resource.Sockets, 1); err != nil {
		t.Fatalf("tenant b charge: %v", err)
	}
}
