// Package tenant adds the multi-tenant layer over the grafting
// machinery: the paper's §3 claim is that resource accounting plus
// transactional containment lets a kernel host mutually distrusting
// extension authors, and this package makes the authors explicit. Every
// graft install is bound to a tenant identity; each tenant has its own
// resource.Account (swapped in on dispatch, so one tenant exhausting
// Sockets or KernelHeap cannot starve another), a tenant-scoped view of
// the guard ledger, and an escalation ladder of its own: a tenant whose
// grafts keep getting expelled is first throttled (a deterministic
// share of its traffic shed at admission), then banned outright
// (BULKHEAD-style per-compartment enforcement, lifted from the graft to
// the author).
//
// The registry is deliberately per-kernel-instance: a fleet of
// instances keeps one registry per instance, fed from that instance's
// own supervisor ledger, so escalation is deterministic within an
// instance regardless of how the fleet schedules instances onto
// workers.
package tenant

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"vino/internal/graft"
	"vino/internal/guard"
	"vino/internal/resource"
	"vino/internal/simclock"
	"vino/internal/trace"
)

// State is a tenant's standing on the escalation ladder.
type State int

const (
	// Active tenants serve all their traffic.
	Active State = iota
	// Throttled tenants have every other request shed at admission.
	Throttled
	// Banned tenants serve nothing; new installs are refused.
	Banned
)

func (s State) String() string {
	switch s {
	case Active:
		return "active"
	case Throttled:
		return "throttled"
	case Banned:
		return "banned"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Policy sets the escalation thresholds and the resource grant every
// tenant account starts with.
type Policy struct {
	// ThrottleExpulsions is the number of graft expulsions at which a
	// tenant is throttled. Zero means the default (1).
	ThrottleExpulsions int
	// BanExpulsions is the number of graft expulsions at which a tenant
	// is banned. Zero means the default (2).
	BanExpulsions int
	// Limits is the resource grant installed on each tenant's account
	// at registration.
	Limits map[resource.Kind]int64
}

// DefaultPolicy throttles on the first expulsion and bans on the
// second.
func DefaultPolicy() Policy {
	return Policy{ThrottleExpulsions: 1, BanExpulsions: 2}
}

func (p Policy) withDefaults() Policy {
	if p.ThrottleExpulsions <= 0 {
		p.ThrottleExpulsions = 1
	}
	if p.BanExpulsions <= p.ThrottleExpulsions {
		p.BanExpulsions = p.ThrottleExpulsions + 1
	}
	return p
}

// Tenant is one extension author: an identity, a resource account all
// its grafts share, and its standing.
type Tenant struct {
	Name    string
	Account *resource.Account

	state      State
	expulsions int

	// Tenant-scoped guard billing, accumulated from ledger deltas.
	aborts       int64
	abortCost    time.Duration
	recoveries   int64
	recoveryCost time.Duration

	// Admission accounting.
	admitted int64
	shed     int64

	grafts map[string]bool // guard keys bound to this tenant
}

// State returns the tenant's standing.
func (t *Tenant) State() State { return t.state }

// Expulsions returns how many of the tenant's grafts have been
// expelled.
func (t *Tenant) Expulsions() int { return t.expulsions }

// Registry binds graft installs to tenant identities and walks the
// escalation ladder. One per kernel instance.
type Registry struct {
	clock  *simclock.Clock
	tr     *trace.Buffer
	policy Policy

	tenants map[string]*Tenant
	names   []string // registration order, for deterministic iteration

	owner map[string]string // guard key -> tenant name
	// last remembers each guard key's ledger row at the previous
	// Observe, so billing deltas and expulsion transitions are counted
	// exactly once.
	last map[string]guard.GraftHealth
}

// New creates a tenant registry.
func New(clock *simclock.Clock, tr *trace.Buffer, p Policy) *Registry {
	return &Registry{
		clock:   clock,
		tr:      tr,
		policy:  p.withDefaults(),
		tenants: make(map[string]*Tenant),
		owner:   make(map[string]string),
		last:    make(map[string]guard.GraftHealth),
	}
}

// Policy returns the registry's policy.
func (r *Registry) Policy() Policy { return r.policy }

func (r *Registry) emit(kind trace.Kind, subject, detail string) {
	if r.tr != nil {
		r.tr.Emit(r.clock.Now(), kind, subject, detail)
	}
}

// Register creates (or returns) the tenant, granting its account the
// policy's limits. The account's name is "tenant:<name>", the identity
// the durable-checkpoint importer and Reattach match on.
func (r *Registry) Register(name string) *Tenant {
	if t, ok := r.tenants[name]; ok {
		return t
	}
	t := &Tenant{
		Name:    name,
		Account: resource.NewAccount("tenant:" + name),
		grafts:  make(map[string]bool),
	}
	for kind, n := range r.policy.Limits {
		t.Account.SetLimit(kind, n)
	}
	r.tenants[name] = t
	r.names = append(r.names, name)
	return t
}

// Lookup returns the tenant, or nil.
func (r *Registry) Lookup(name string) *Tenant { return r.tenants[name] }

// Tenants returns the tenants in registration order.
func (r *Registry) Tenants() []*Tenant {
	out := make([]*Tenant, 0, len(r.names))
	for _, n := range r.names {
		out = append(out, r.tenants[n])
	}
	return out
}

// InstallOptions returns install options binding a graft to the tenant:
// the graft's dispatch-time account swap charges the tenant's account
// directly. Event ordering and transfers can be set on the result.
func (r *Registry) InstallOptions(name string) graft.InstallOptions {
	t := r.Register(name)
	return graft.InstallOptions{Account: t.Account}
}

// CanInstall reports whether the tenant may install grafts (banned
// tenants may not).
func (r *Registry) CanInstall(name string) bool {
	t := r.tenants[name]
	return t == nil || t.state != Banned
}

// BindGraft records that a guard key belongs to a tenant, routing that
// graft's ledger rows into the tenant's billing.
func (r *Registry) BindGraft(name, guardKey string) {
	t := r.Register(name)
	t.grafts[guardKey] = true
	r.owner[guardKey] = name
}

// Owner returns the tenant name bound to a guard key ("" if unbound).
func (r *Registry) Owner(guardKey string) string { return r.owner[guardKey] }

// Admit decides whether a tenant's request is served, given a
// deterministic per-tenant sequence number. Active tenants serve
// everything; throttled tenants shed every other request; banned
// tenants shed everything. The decision depends only on (state, seq),
// so a fixed workload admits identically at any worker-pool size.
func (r *Registry) Admit(name string, seq int64) bool {
	t := r.Register(name)
	admit := true
	switch t.state {
	case Throttled:
		admit = seq%2 == 0
	case Banned:
		admit = false
	}
	if admit {
		t.admitted++
	} else {
		t.shed++
	}
	return admit
}

// Observe folds a guard ledger snapshot into the per-tenant view:
// abort and recovery billing is attributed to the owning tenant, and a
// graft's transition into the expelled state walks its tenant one rung
// up the escalation ladder. Deltas are computed against the previous
// Observe, so calling it every round double-counts nothing.
func (r *Registry) Observe(rep guard.Report) {
	for _, g := range rep.Grafts {
		name, ok := r.owner[g.Key]
		if !ok {
			continue
		}
		t := r.tenants[name]
		prev := r.last[g.Key]
		if d := g.Aborts - prev.Aborts; d > 0 {
			t.aborts += d
		}
		if d := g.AbortCost - prev.AbortCost; d > 0 {
			t.abortCost += d
		}
		if d := g.Recoveries - prev.Recoveries; d > 0 {
			t.recoveries += d
		}
		if d := g.RecoveryCost - prev.RecoveryCost; d > 0 {
			t.recoveryCost += d
		}
		if g.State == guard.Expelled && prev.State != guard.Expelled {
			t.expulsions++
			r.escalate(t)
		}
		r.last[g.Key] = g
	}
}

// escalate applies the ladder after an expulsion.
func (r *Registry) escalate(t *Tenant) {
	switch {
	case t.expulsions >= r.policy.BanExpulsions && t.state != Banned:
		t.state = Banned
		r.emit(trace.TenantBan, t.Name,
			fmt.Sprintf("%d grafts expelled (threshold %d)", t.expulsions, r.policy.BanExpulsions))
	case t.expulsions >= r.policy.ThrottleExpulsions && t.state == Active:
		t.state = Throttled
		r.emit(trace.TenantThrottle, t.Name,
			fmt.Sprintf("%d grafts expelled (threshold %d)", t.expulsions, r.policy.ThrottleExpulsions))
	}
}

// EpochReset clears the ledger-delta baseline. An instance replacement
// reboots the kernel with a fresh supervisor whose ledger restarts
// empty; without the reset, the first Observe after the reboot would
// miss transitions (old rows vanish) or re-count them (keys reappear
// healthy). Tenant standing and accumulated billing survive — the
// ladder does not forgive a reboot.
func (r *Registry) EpochReset() {
	r.last = make(map[string]guard.GraftHealth)
}

// Adopt rebinds the registry to a replacement kernel's clock and trace
// buffer, so escalation events after an instance reboot land in the
// rebooted instance's flight recorder instead of the dead one's.
func (r *Registry) Adopt(clock *simclock.Clock, tr *trace.Buffer) {
	r.clock, r.tr = clock, tr
}

// Reattach splices each tenant's live account into the restored grafts
// of a rebooted instance: the durable importer recreates accounts by
// name, and this replaces those copies with the tenant's own object so
// enforcement and auditing keep a single meter per tenant. Returns the
// number of grafts rebound.
func (r *Registry) Reattach(reg *graft.Registry) int {
	n := 0
	for _, name := range r.names {
		t := r.tenants[name]
		n += reg.RebindAccount(t.Account.Name(), t.Account)
	}
	return n
}

// Health is one row of the per-tenant health table.
type Health struct {
	Name       string
	State      State
	Grafts     int
	Expulsions int
	Aborts     int64
	AbortCost  time.Duration
	Recoveries int64
	RecCost    time.Duration
	Admitted   int64
	Shed       int64
}

// Report snapshots every tenant's standing and billing, sorted by
// tenant name.
func (r *Registry) Report() []Health {
	names := append([]string(nil), r.names...)
	sort.Strings(names)
	out := make([]Health, 0, len(names))
	for _, n := range names {
		t := r.tenants[n]
		out = append(out, Health{
			Name:       t.Name,
			State:      t.state,
			Grafts:     len(t.grafts),
			Expulsions: t.expulsions,
			Aborts:     t.aborts,
			AbortCost:  t.abortCost,
			Recoveries: t.recoveries,
			RecCost:    t.recoveryCost,
			Admitted:   t.admitted,
			Shed:       t.shed,
		})
	}
	return out
}

// Table renders the per-tenant health table.
func Table(rows []Health) string {
	var b strings.Builder
	fmt.Fprintf(&b, "tenant ledger (%d tenants):\n", len(rows))
	fmt.Fprintf(&b, "  %-12s %-9s %6s %5s %6s %11s %4s %11s %7s %6s\n",
		"TENANT", "STATE", "GRAFTS", "EXPEL", "ABORT", "ABORTCOST", "REC", "RECCOST", "ADMIT", "SHED")
	for _, h := range rows {
		fmt.Fprintf(&b, "  %-12s %-9s %6d %5d %6d %11s %4d %11s %7d %6d\n",
			h.Name, h.State, h.Grafts, h.Expulsions, h.Aborts,
			fmtCost(h.AbortCost), h.Recoveries, fmtCost(h.RecCost), h.Admitted, h.Shed)
	}
	return b.String()
}

func fmtCost(d time.Duration) string {
	return fmt.Sprintf("%.1fus", float64(d)/float64(time.Microsecond))
}
