package vmm

import (
	"container/list"
	"fmt"
	"sort"
)

// Crash checkpoint/restore for the VM system. Page tables, residency,
// the global LRU order, mappings and counters are restored exactly;
// address spaces created after the checkpoint vanish (the graft
// registry's own restore drops their eviction points).

type pageFlags struct {
	resident, wired, referenced, dirty bool
}

type vasSnap struct {
	vas      *VAS
	pages    map[int64]*Page
	flags    map[int64]pageFlags
	mappings []mapping

	faults, evictions int64
}

type vmmSnap struct {
	spaces      map[int]*vasSnap
	queue       []*Page // front-to-back LRU order
	usedFrames  int
	nextVAS     int
	stats       Stats
	lastEvicted *Page
}

// vmmDelta is the incremental capture: spaces with stamped changes
// (carrying only their stamped pages), the set of live space ids (so a
// merge drops destroyed spaces), and the global scalars. The LRU queue
// order is copied wholesale in every delta — it reorders on nearly
// every access, but it is bounded by physical frames, not by the page
// population, and a copy is pointer-sized per entry.
type vmmDelta struct {
	spaces      map[int]*vasSnap
	live        map[int]bool
	queue       []*Page
	usedFrames  int
	nextVAS     int
	stats       Stats
	lastEvicted *Page
}

// CrashName implements crash.Snapshotter.
func (v *VMM) CrashName() string { return "vmm" }

// snapQueue copies the global LRU order front-to-back.
func (v *VMM) snapQueue() []*Page {
	q := make([]*Page, 0, v.globalQueue.Len())
	for e := v.globalQueue.Front(); e != nil; e = e.Next() {
		q = append(q, e.Value.(*Page))
	}
	return q
}

// CrashSnapshot implements crash.Snapshotter.
func (v *VMM) CrashSnapshot() any {
	s := &vmmSnap{
		spaces:      make(map[int]*vasSnap, len(v.spaces)),
		usedFrames:  v.usedFrames,
		nextVAS:     v.nextVAS,
		stats:       v.stats,
		lastEvicted: v.lastEvicted,
	}
	for id, vas := range v.spaces {
		vs := &vasSnap{
			vas:       vas,
			pages:     make(map[int64]*Page, len(vas.pages)),
			flags:     make(map[int64]pageFlags, len(vas.pages)),
			mappings:  append([]mapping(nil), vas.mappings...),
			faults:    vas.Faults,
			evictions: vas.Evictions,
		}
		for vpn, p := range vas.pages {
			vs.pages[vpn] = p
			vs.flags[vpn] = pageFlags{p.resident, p.wired, p.referenced, p.dirty}
		}
		s.spaces[id] = vs
	}
	s.queue = v.snapQueue()
	return s
}

// CrashDelta implements crash.DeltaSnapshotter: only spaces and pages
// stamped after sinceGen are captured, so the cost tracks what the VM
// system actually did since the last checkpoint.
func (v *VMM) CrashDelta(sinceGen uint64) any {
	d := &vmmDelta{
		spaces:      make(map[int]*vasSnap),
		live:        make(map[int]bool, len(v.spaces)),
		queue:       v.snapQueue(),
		usedFrames:  v.usedFrames,
		nextVAS:     v.nextVAS,
		stats:       v.stats,
		lastEvicted: v.lastEvicted,
	}
	for id, vas := range v.spaces {
		d.live[id] = true
		if vas.genCreated <= sinceGen && vas.modGen <= sinceGen {
			continue
		}
		vs := &vasSnap{
			vas:       vas,
			pages:     make(map[int64]*Page),
			flags:     make(map[int64]pageFlags),
			mappings:  append([]mapping(nil), vas.mappings...),
			faults:    vas.Faults,
			evictions: vas.Evictions,
		}
		fresh := vas.genCreated > sinceGen
		for vpn, p := range vas.pages {
			if !fresh && p.modGen <= sinceGen {
				continue
			}
			vs.pages[vpn] = p
			vs.flags[vpn] = pageFlags{p.resident, p.wired, p.referenced, p.dirty}
		}
		d.spaces[id] = vs
	}
	return d
}

// CrashMerge implements crash.DeltaSnapshotter. The base is mutated in
// place and returned: destroyed spaces drop out, changed pages graft
// onto their space's maps, and the wholesale-copied queue and scalars
// replace the base's.
func (v *VMM) CrashMerge(base, delta any) any {
	d := delta.(*vmmDelta)
	if base == nil {
		base = &vmmSnap{spaces: make(map[int]*vasSnap, len(d.spaces))}
	}
	s := base.(*vmmSnap)
	for id := range s.spaces {
		if !d.live[id] {
			delete(s.spaces, id)
		}
	}
	for id, vs := range d.spaces {
		bs, ok := s.spaces[id]
		if !ok || bs.vas != vs.vas {
			s.spaces[id] = vs
			continue
		}
		for vpn, p := range vs.pages {
			bs.pages[vpn] = p
			bs.flags[vpn] = vs.flags[vpn]
		}
		bs.mappings = vs.mappings
		bs.faults, bs.evictions = vs.faults, vs.evictions
	}
	s.queue = d.queue
	s.usedFrames = d.usedFrames
	s.nextVAS = d.nextVAS
	s.stats = d.stats
	s.lastEvicted = d.lastEvicted
	return s
}

// CrashRestore implements crash.Snapshotter.
func (v *VMM) CrashRestore(snap any) {
	s := snap.(*vmmSnap)
	v.spaces = make(map[int]*VAS, len(s.spaces))
	for id, vs := range s.spaces {
		vas := vs.vas
		vas.pages = make(map[int64]*Page, len(vs.pages))
		for vpn, p := range vs.pages {
			f := vs.flags[vpn]
			p.resident, p.wired, p.referenced, p.dirty = f.resident, f.wired, f.referenced, f.dirty
			p.elem = nil
			// Restored flags match the consolidated image: rewind the
			// dirty stamp so the next delta copies only fresh changes.
			p.modGen = 0
			vas.pages[vpn] = p
		}
		vas.mappings = append([]mapping(nil), vs.mappings...)
		vas.Faults, vas.Evictions = vs.faults, vs.evictions
		vas.modGen = 0
		v.spaces[id] = vas
	}
	v.globalQueue = list.New()
	for _, p := range s.queue {
		p.elem = v.globalQueue.PushBack(p)
	}
	v.usedFrames = s.usedFrames
	v.nextVAS = s.nextVAS
	v.stats = s.stats
	v.lastEvicted = s.lastEvicted
}

// Check audits the VM system's structural invariants (the VM half of
// the post-recovery audit). Empty means consistent.
func (v *VMM) Check() []string {
	var bad []string
	resident := 0
	ids := make([]int, 0, len(v.spaces))
	for id := range v.spaces {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		vas := v.spaces[id]
		vpns := make([]int64, 0, len(vas.pages))
		for vpn := range vas.pages {
			vpns = append(vpns, vpn)
		}
		sort.Slice(vpns, func(i, j int) bool { return vpns[i] < vpns[j] })
		for _, vpn := range vpns {
			p := vas.pages[vpn]
			if p.vas != vas || p.vpn != vpn {
				bad = append(bad, fmt.Sprintf("vas/%d vpn %d: page identity mismatch", id, vpn))
			}
			if p.resident {
				resident++
				if p.elem == nil {
					bad = append(bad, fmt.Sprintf("vas/%d vpn %d: resident but not on the global queue", id, vpn))
				} else if p.elem.Value.(*Page) != p {
					bad = append(bad, fmt.Sprintf("vas/%d vpn %d: queue element points elsewhere", id, vpn))
				}
			} else {
				if p.elem != nil {
					bad = append(bad, fmt.Sprintf("vas/%d vpn %d: non-resident but queued", id, vpn))
				}
				if p.wired {
					bad = append(bad, fmt.Sprintf("vas/%d vpn %d: wired but not resident", id, vpn))
				}
			}
		}
	}
	if resident != v.usedFrames {
		bad = append(bad, fmt.Sprintf("%d resident pages but %d frames in use", resident, v.usedFrames))
	}
	if v.usedFrames > v.totalFrames {
		bad = append(bad, fmt.Sprintf("%d frames in use of %d physical", v.usedFrames, v.totalFrames))
	}
	if n := v.globalQueue.Len(); n != resident {
		bad = append(bad, fmt.Sprintf("global queue holds %d pages, %d resident", n, resident))
	}
	return bad
}
