package vmm

import (
	"bytes"
	"container/list"
	"encoding/gob"
	"fmt"
	"sort"

	"vino/internal/resource"
)

// Crash checkpoint/restore for the VM system. Page tables, residency,
// the global LRU order, mappings and counters are restored exactly;
// address spaces created after the checkpoint vanish (the graft
// registry's own restore drops their eviction points).

type pageFlags struct {
	resident, wired, referenced, dirty bool
}

type vasSnap struct {
	vas      *VAS
	pages    map[int64]*Page
	flags    map[int64]pageFlags
	mappings []mapping

	faults, evictions int64
}

type vmmSnap struct {
	spaces      map[int]*vasSnap
	queue       []*Page // front-to-back LRU order
	usedFrames  int
	nextVAS     int
	stats       Stats
	lastEvicted *Page
}

// vmmDelta is the incremental capture: spaces with stamped changes
// (carrying only their stamped pages), the set of live space ids (so a
// merge drops destroyed spaces), and the global scalars. The LRU queue
// order is copied wholesale in every delta — it reorders on nearly
// every access, but it is bounded by physical frames, not by the page
// population, and a copy is pointer-sized per entry.
type vmmDelta struct {
	spaces      map[int]*vasSnap
	live        map[int]bool
	queue       []*Page
	usedFrames  int
	nextVAS     int
	stats       Stats
	lastEvicted *Page
}

// CrashName implements crash.Snapshotter.
func (v *VMM) CrashName() string { return "vmm" }

// snapQueue copies the global LRU order front-to-back.
func (v *VMM) snapQueue() []*Page {
	q := make([]*Page, 0, v.globalQueue.Len())
	for e := v.globalQueue.Front(); e != nil; e = e.Next() {
		q = append(q, e.Value.(*Page))
	}
	return q
}

// CrashSnapshot implements crash.Snapshotter.
func (v *VMM) CrashSnapshot() any {
	s := &vmmSnap{
		spaces:      make(map[int]*vasSnap, len(v.spaces)),
		usedFrames:  v.usedFrames,
		nextVAS:     v.nextVAS,
		stats:       v.stats,
		lastEvicted: v.lastEvicted,
	}
	for id, vas := range v.spaces {
		vs := &vasSnap{
			vas:       vas,
			pages:     make(map[int64]*Page, len(vas.pages)),
			flags:     make(map[int64]pageFlags, len(vas.pages)),
			mappings:  append([]mapping(nil), vas.mappings...),
			faults:    vas.Faults,
			evictions: vas.Evictions,
		}
		for vpn, p := range vas.pages {
			vs.pages[vpn] = p
			vs.flags[vpn] = pageFlags{p.resident, p.wired, p.referenced, p.dirty}
		}
		s.spaces[id] = vs
	}
	s.queue = v.snapQueue()
	return s
}

// CrashDelta implements crash.DeltaSnapshotter: only spaces and pages
// stamped after sinceGen are captured, so the cost tracks what the VM
// system actually did since the last checkpoint.
func (v *VMM) CrashDelta(sinceGen uint64) any {
	d := &vmmDelta{
		spaces:      make(map[int]*vasSnap),
		live:        make(map[int]bool, len(v.spaces)),
		queue:       v.snapQueue(),
		usedFrames:  v.usedFrames,
		nextVAS:     v.nextVAS,
		stats:       v.stats,
		lastEvicted: v.lastEvicted,
	}
	for id, vas := range v.spaces {
		d.live[id] = true
		if vas.genCreated <= sinceGen && vas.modGen <= sinceGen {
			continue
		}
		vs := &vasSnap{
			vas:       vas,
			pages:     make(map[int64]*Page),
			flags:     make(map[int64]pageFlags),
			mappings:  append([]mapping(nil), vas.mappings...),
			faults:    vas.Faults,
			evictions: vas.Evictions,
		}
		fresh := vas.genCreated > sinceGen
		for vpn, p := range vas.pages {
			if !fresh && p.modGen <= sinceGen {
				continue
			}
			vs.pages[vpn] = p
			vs.flags[vpn] = pageFlags{p.resident, p.wired, p.referenced, p.dirty}
		}
		d.spaces[id] = vs
	}
	return d
}

// CrashMerge implements crash.DeltaSnapshotter. The base is mutated in
// place and returned: destroyed spaces drop out, changed pages graft
// onto their space's maps, and the wholesale-copied queue and scalars
// replace the base's.
func (v *VMM) CrashMerge(base, delta any) any {
	d := delta.(*vmmDelta)
	if base == nil {
		base = &vmmSnap{spaces: make(map[int]*vasSnap, len(d.spaces))}
	}
	s := base.(*vmmSnap)
	for id := range s.spaces {
		if !d.live[id] {
			delete(s.spaces, id)
		}
	}
	for id, vs := range d.spaces {
		bs, ok := s.spaces[id]
		if !ok || bs.vas != vs.vas {
			s.spaces[id] = vs
			continue
		}
		for vpn, p := range vs.pages {
			bs.pages[vpn] = p
			bs.flags[vpn] = vs.flags[vpn]
		}
		bs.mappings = vs.mappings
		bs.faults, bs.evictions = vs.faults, vs.evictions
	}
	s.queue = d.queue
	s.usedFrames = d.usedFrames
	s.nextVAS = d.nextVAS
	s.stats = d.stats
	s.lastEvicted = d.lastEvicted
	return s
}

// CrashRestore implements crash.Snapshotter.
func (v *VMM) CrashRestore(snap any) {
	s := snap.(*vmmSnap)
	v.spaces = make(map[int]*VAS, len(s.spaces))
	for id, vs := range s.spaces {
		vas := vs.vas
		vas.pages = make(map[int64]*Page, len(vs.pages))
		for vpn, p := range vs.pages {
			f := vs.flags[vpn]
			p.resident, p.wired, p.referenced, p.dirty = f.resident, f.wired, f.referenced, f.dirty
			p.elem = nil
			// Restored flags match the consolidated image: rewind the
			// dirty stamp so the next delta copies only fresh changes.
			// Owner stamps rewind too — every domain was reverted at once.
			p.modGen = 0
			p.owner, p.writeGen = "", 0
			vas.pages[vpn] = p
		}
		vas.mappings = append([]mapping(nil), vs.mappings...)
		vas.Faults, vas.Evictions = vs.faults, vs.evictions
		vas.modGen = 0
		v.spaces[id] = vas
	}
	v.globalQueue = list.New()
	for _, p := range s.queue {
		p.elem = v.globalQueue.PushBack(p)
	}
	v.usedFrames = s.usedFrames
	v.nextVAS = s.nextVAS
	v.stats = s.stats
	v.lastEvicted = s.lastEvicted
	v.ownerConflicts = nil
}

// vmmExport is the VM system's durable image. Address spaces are bound
// to the threads that own them and die with the machine, so only the
// lifetime counters and the VAS id frontier persist: a restored kernel
// starts with an empty frame pool (RAM after a reboot) but its paging
// history intact and its address-space ids never reused.
type vmmExport struct {
	Stats   Stats
	NextVAS int
}

// CrashExport implements crash.Exporter.
func (v *VMM) CrashExport() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(&vmmExport{Stats: v.stats, NextVAS: v.nextVAS})
	return buf.Bytes(), err
}

// CrashImport implements crash.Exporter.
func (v *VMM) CrashImport(data []byte) error {
	var e vmmExport
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&e); err != nil {
		return err
	}
	v.stats = e.Stats
	if e.NextVAS > v.nextVAS {
		v.nextVAS = e.NextVAS
	}
	return nil
}

func ownerName(o string) string {
	if o == "" {
		return "kernel"
	}
	return o
}

// CrashOwnerConflicts implements crash.DomainScoper: pages where owner
// and another domain both stored after sinceGen. Conflicts where either
// store predates the checkpoint are moot — the older store is already
// durable in the image.
func (v *VMM) CrashOwnerConflicts(sinceGen uint64, owner string) []string {
	var out []string
	for _, c := range v.ownerConflicts {
		if c.gen <= sinceGen || c.prevGen <= sinceGen {
			continue
		}
		if c.owner != owner && c.prevOwner != owner {
			continue
		}
		out = append(out, fmt.Sprintf("vas/%d vpn %d: %s overwrote %s",
			c.vasID, c.vpn, ownerName(c.owner), ownerName(c.prevOwner)))
	}
	return out
}

// dropPage removes a resident page from the frame pool without the
// eviction ceremony (no write-back charge, no eviction stats or trace):
// domain recovery is rewinding state, not simulating page-outs.
func (v *VMM) dropPage(p *Page) {
	if !p.resident {
		return
	}
	if p.elem != nil {
		v.globalQueue.Remove(p.elem)
		p.elem = nil
	}
	v.usedFrames--
	if p.vas.acct != nil {
		p.vas.acct.Release(resource.Memory, PageSize)
		if p.wired {
			p.vas.acct.Release(resource.WiredMemory, PageSize)
		}
	}
	p.resident = false
}

// CrashRestoreDomain implements crash.DomainScoper: pages the offender
// stored to after sinceGen revert to their flags in snap (queue and
// frame accounting adjusted to match); pages and address spaces the
// offender created after the checkpoint are removed. Other domains'
// pages — and spaces the base domain destroyed after the checkpoint,
// whose teardown is durable — stay exactly as they are.
func (v *VMM) CrashRestoreDomain(owner string, snap any, sinceGen uint64) int64 {
	s := snap.(*vmmSnap)
	var bytes int64
	ids := make([]int, 0, len(v.spaces))
	for id := range v.spaces {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		vas := v.spaces[id]
		if vas.crashOwner == owner && owner != "" && vas.genCreated > sinceGen {
			// Offender-created space: tear it down raw (frames freed,
			// graft point dropped) — it did not exist at the checkpoint.
			vpns := make([]int64, 0, len(vas.pages))
			for vpn := range vas.pages {
				vpns = append(vpns, vpn)
			}
			sort.Slice(vpns, func(i, j int) bool { return vpns[i] < vpns[j] })
			for _, vpn := range vpns {
				v.dropPage(vas.pages[vpn])
				bytes += PageSize
			}
			v.k.Grafts.UnregisterPoint(vas.evictPoint.Name)
			delete(v.spaces, id)
			continue
		}
		vs := s.spaces[id]
		vpns := make([]int64, 0, len(vas.pages))
		for vpn, p := range vas.pages {
			if p.owner == owner && p.writeGen > sinceGen {
				vpns = append(vpns, vpn)
			}
		}
		sort.Slice(vpns, func(i, j int) bool { return vpns[i] < vpns[j] })
		for _, vpn := range vpns {
			p := vas.pages[vpn]
			var f pageFlags
			inSnap := false
			if vs != nil {
				f, inSnap = vs.flags[vpn]
			}
			if !inSnap {
				// The offender's store created this page after the
				// checkpoint: it vanishes.
				v.dropPage(p)
				delete(vas.pages, vpn)
				bytes += PageSize
				continue
			}
			if p.resident && !f.resident {
				v.dropPage(p)
			} else if !p.resident && f.resident {
				// Re-admit at the cold end of the global queue; the exact
				// LRU position at checkpoint time is not part of the
				// domain image. The frame charge is forced (oversubscribe
				// rather than fail a rollback).
				p.resident = true
				p.elem = v.globalQueue.PushBack(p)
				v.usedFrames++
				if vas.acct != nil {
					_ = vas.acct.Charge(resource.Memory, PageSize)
					if f.wired {
						_ = vas.acct.Charge(resource.WiredMemory, PageSize)
					}
				}
			} else if vas.acct != nil && p.wired != f.wired {
				if f.wired {
					_ = vas.acct.Charge(resource.WiredMemory, PageSize)
				} else {
					vas.acct.Release(resource.WiredMemory, PageSize)
				}
			}
			p.resident, p.wired, p.referenced, p.dirty = f.resident, f.wired, f.referenced, f.dirty
			p.modGen = 0
			p.owner, p.writeGen = "", 0
			bytes += PageSize
		}
	}
	return bytes
}

// CrashAudit implements crash.Auditor. The VM system's structural
// invariants hold at any instant (residency, queue membership and frame
// accounting mutate atomically in virtual time), so the full Check
// doubles as the checkpoint-time audit.
func (v *VMM) CrashAudit() []string { return v.Check() }

// Check audits the VM system's structural invariants (the VM half of
// the post-recovery audit). Empty means consistent.
func (v *VMM) Check() []string {
	var bad []string
	resident := 0
	ids := make([]int, 0, len(v.spaces))
	for id := range v.spaces {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		vas := v.spaces[id]
		vpns := make([]int64, 0, len(vas.pages))
		for vpn := range vas.pages {
			vpns = append(vpns, vpn)
		}
		sort.Slice(vpns, func(i, j int) bool { return vpns[i] < vpns[j] })
		for _, vpn := range vpns {
			p := vas.pages[vpn]
			if p.vas != vas || p.vpn != vpn {
				bad = append(bad, fmt.Sprintf("vas/%d vpn %d: page identity mismatch", id, vpn))
			}
			if p.resident {
				resident++
				if p.elem == nil {
					bad = append(bad, fmt.Sprintf("vas/%d vpn %d: resident but not on the global queue", id, vpn))
				} else if p.elem.Value.(*Page) != p {
					bad = append(bad, fmt.Sprintf("vas/%d vpn %d: queue element points elsewhere", id, vpn))
				}
			} else {
				if p.elem != nil {
					bad = append(bad, fmt.Sprintf("vas/%d vpn %d: non-resident but queued", id, vpn))
				}
				if p.wired {
					bad = append(bad, fmt.Sprintf("vas/%d vpn %d: wired but not resident", id, vpn))
				}
			}
		}
	}
	if resident != v.usedFrames {
		bad = append(bad, fmt.Sprintf("%d resident pages but %d frames in use", resident, v.usedFrames))
	}
	if v.usedFrames > v.totalFrames {
		bad = append(bad, fmt.Sprintf("%d frames in use of %d physical", v.usedFrames, v.totalFrames))
	}
	if n := v.globalQueue.Len(); n != resident {
		bad = append(bad, fmt.Sprintf("global queue holds %d pages, %d resident", n, resident))
	}
	return bad
}
