package vmm

import (
	"testing"
	"time"

	"vino/internal/graft"
	"vino/internal/kernel"
	"vino/internal/resource"
)

func newTestVM(frames int) (*kernel.Kernel, *VMM) {
	k := kernel.New(kernel.Config{ZeroTxnCosts: true})
	return k, New(k, frames)
}

func runProc(t *testing.T, k *kernel.Kernel, body func(p *kernel.Process)) {
	t.Helper()
	k.SpawnProcess("app", 7, body)
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// evictGraftSrc is the §4.2.2 graft: the application lists its hot pages
// in the shared buffer (heap offset 0: count, then vpns); the kernel
// lists eviction candidates at offset 1024. If the global victim is hot,
// the graft returns the first non-hot candidate instead.
const evictGraftSrc = `
.name hot-pages
.func main
main:
    mov r5, r1        ; victim vpn
    mov r14, r1       ; saved for the keep path
    call is_hot
    jz r0, keep
    ; victim is performance-critical: scan candidates for a cold page
    movi r8, 0
    addi r6, r10, 1024
    ld r7, [r6+0]     ; candidate count
scan:
    cmplt r1, r8, r7
    jz r1, keep
    movi r1, 3
    shl r1, r8, r1
    add r1, r1, r6
    ld r5, [r1+8]
    call is_hot
    jz r0, found
    addi r8, r8, 1
    jmp scan
found:
    mov r0, r5
    ret
keep:
    mov r0, r14
    ret

; is_hot: r5 = vpn; returns r0 = 1 if vpn is in the hot list.
is_hot:
    ld r2, [r10+0]
    movi r3, 0
ih_loop:
    cmplt r4, r3, r2
    jz r4, ih_no
    movi r0, 3
    shl r0, r3, r0
    add r0, r0, r10
    ld r0, [r0+8]
    cmpeq r0, r0, r5
    jnz r0, ih_yes
    addi r3, r3, 1
    jmp ih_loop
ih_no:
    movi r0, 0
    ret
ih_yes:
    movi r0, 1
    ret
`

// installEvictGraft loads the graft and writes the hot list into its
// shared buffer.
func installEvictGraft(t *testing.T, p *kernel.Process, vas *VAS, hot []int64) *graft.Installed {
	t.Helper()
	g, err := p.BuildAndInstall(vas.EvictPoint().Name, evictGraftSrc, graft.InstallOptions{})
	if err != nil {
		t.Fatalf("install evict graft: %v", err)
	}
	heap := g.VM().Heap()
	poke64(heap, 0, int64(len(hot)))
	for i, h := range hot {
		poke64(heap, 8+8*i, h)
	}
	return g
}

func TestFaultAndResidency(t *testing.T) {
	k, v := newTestVM(16)
	runProc(t, k, func(p *kernel.Process) {
		vas := v.NewVAS(p.Thread)
		before := k.Clock.Now()
		vas.Touch(p.Thread, 0)
		if k.Clock.Now()-before < v.FaultLatency {
			t.Error("hard fault did not pay backing-store latency")
		}
		if !vas.Page(0).Resident() {
			t.Error("page not resident after touch")
		}
		before = k.Clock.Now()
		vas.Touch(p.Thread, 0)
		if k.Clock.Now() != before {
			t.Error("soft touch paid latency")
		}
		if vas.Faults != 1 {
			t.Errorf("faults = %d", vas.Faults)
		}
	})
}

func TestEvictionOnFrameExhaustion(t *testing.T) {
	k, v := newTestVM(8)
	runProc(t, k, func(p *kernel.Process) {
		vas := v.NewVAS(p.Thread)
		for i := int64(0); i < 12; i++ {
			vas.Touch(p.Thread, i)
		}
		if v.FreeFrames() < 0 {
			t.Error("over-committed frames")
		}
		if vas.Resident() > 8 {
			t.Errorf("resident = %d > frames", vas.Resident())
		}
		if v.Stats().Evictions < 4 {
			t.Errorf("evictions = %d", v.Stats().Evictions)
		}
	})
}

func TestSecondChanceReprievesReferenced(t *testing.T) {
	k, v := newTestVM(4)
	runProc(t, k, func(p *kernel.Process) {
		vas := v.NewVAS(p.Thread)
		for i := int64(0); i < 4; i++ {
			vas.Touch(p.Thread, i)
		}
		// First eviction clears everyone's reference bit and evicts the
		// oldest page (0).
		vas.Touch(p.Thread, 4)
		if vas.Page(0).Resident() {
			t.Error("oldest page survived full-pressure eviction")
		}
		// Re-reference 1; the next eviction must spare it and take 2.
		vas.Touch(p.Thread, 1)
		vas.Touch(p.Thread, 5)
		if !vas.Page(1).Resident() {
			t.Error("recently referenced page evicted")
		}
		if vas.Page(2).Resident() {
			t.Error("unreferenced page spared")
		}
	})
	if v.Stats().SecondChances == 0 {
		t.Fatal("no second chances recorded")
	}
}

func TestWiredPagesNeverEvicted(t *testing.T) {
	k, v := newTestVM(4)
	runProc(t, k, func(p *kernel.Process) {
		vas := v.NewVAS(p.Thread)
		vas.Touch(p.Thread, 0)
		if err := vas.Wire(p.Thread, 0); err != nil {
			t.Fatalf("Wire: %v", err)
		}
		for i := int64(1); i < 10; i++ {
			vas.Touch(p.Thread, i)
		}
		if !vas.Page(0).Resident() {
			t.Error("wired page evicted")
		}
		if got := p.Account.Used(resource.WiredMemory); got != PageSize {
			t.Errorf("wired quota used = %d", got)
		}
		vas.Unwire(0)
		if got := p.Account.Used(resource.WiredMemory); got != 0 {
			t.Errorf("wired quota after unwire = %d", got)
		}
	})
}

func TestWiredQuotaEnforced(t *testing.T) {
	k, v := newTestVM(1024)
	runProc(t, k, func(p *kernel.Process) {
		vas := v.NewVAS(p.Thread)
		limit := p.Account.Limit(resource.WiredMemory) / PageSize
		var failed bool
		for i := int64(0); i <= limit; i++ {
			if err := vas.Wire(p.Thread, i); err != nil {
				failed = true
				break
			}
		}
		if !failed {
			t.Error("wired past the quota")
		}
	})
}

// TestEvictionGraftProtectsHotPages is the §4.2.2 experiment: the app
// marks a few pages performance-critical; under pressure the graft
// steers eviction away from them.
func TestEvictionGraftProtectsHotPages(t *testing.T) {
	k, v := newTestVM(32)
	runProc(t, k, func(p *kernel.Process) {
		vas := v.NewVAS(p.Thread)
		hot := []int64{0, 1, 2} // oldest pages: natural LRU victims
		installEvictGraft(t, p, vas, hot)
		for i := int64(0); i < 32; i++ {
			vas.Touch(p.Thread, i)
		}
		// Pressure: four more pages force four evictions. Without the
		// graft the victims would be 0,1,2,3 (LRU order).
		for i := int64(32); i < 36; i++ {
			vas.Touch(p.Thread, i)
		}
		for _, h := range hot {
			if !vas.Page(h).Resident() {
				t.Errorf("hot page %d evicted despite graft", h)
			}
		}
	})
	st := v.Stats()
	if st.GraftConsulted == 0 || st.GraftOverruled < 3 {
		t.Fatalf("stats = %+v; graft never overruled", st)
	}
}

// TestEvictionGraftCannotSaveWiredOrForeignPages: a lying graft is
// overridden by the validator.
func TestEvictionGraftSuggestionVerified(t *testing.T) {
	k, v := newTestVM(8)
	runProc(t, k, func(p *kernel.Process) {
		vas := v.NewVAS(p.Thread)
		// A graft that always returns vpn 9999 (not a page of this VAS).
		if _, err := p.BuildAndInstall(vas.EvictPoint().Name, `
.name liar
.func main
main:
    movi r0, 9999
    ret
`, graft.InstallOptions{}); err != nil {
			t.Fatalf("install: %v", err)
		}
		for i := int64(0); i < 12; i++ {
			vas.Touch(p.Thread, i)
		}
		// Evictions proceeded using the original victims.
		if vas.Resident() > 8 {
			t.Error("residency exceeded frames")
		}
	})
	st := v.Stats()
	if st.GraftRejected == 0 {
		t.Fatalf("stats = %+v; invalid suggestion never rejected", st)
	}
	if st.GraftOverruled != 0 {
		t.Fatalf("stats = %+v; invalid suggestion took effect", st)
	}
}

// TestEvictionGraftCannotExpandFootprint: with or without the graft, the
// space's residency is identical — the graft chooses *which* page goes,
// never *whether* one goes (§4.2's third requirement).
func TestEvictionGraftCannotExpandFootprint(t *testing.T) {
	measure := func(withGraft bool) int {
		k, v := newTestVM(16)
		resident := 0
		runProc(t, k, func(p *kernel.Process) {
			vas := v.NewVAS(p.Thread)
			if withGraft {
				installEvictGraft(t, p, vas, []int64{0, 1})
			}
			for i := int64(0); i < 40; i++ {
				vas.Touch(p.Thread, i)
			}
			resident = vas.Resident()
		})
		return resident
	}
	with, without := measure(true), measure(false)
	if with != without {
		t.Fatalf("residency with graft %d != without %d", with, without)
	}
}

// TestMemoryQuotaBoundsResidency: a process whose Memory limit is
// smaller than physical memory keeps its own residency within quota.
func TestMemoryQuotaBoundsResidency(t *testing.T) {
	k, v := newTestVM(1024)
	k.SpawnProcess("small", 7, func(p *kernel.Process) {
		p.Account.SetLimit(resource.Memory, 8*PageSize)
		vas := v.NewVAS(p.Thread)
		for i := int64(0); i < 40; i++ {
			vas.Touch(p.Thread, i)
		}
		if got := vas.Resident(); got > 8 {
			t.Errorf("resident = %d, quota is 8 pages", got)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestPagedaemonKeepsWatermarks(t *testing.T) {
	k, v := newTestVM(32)
	stop := false
	v.StartPagedaemon(8, 12, &stop)
	k.SpawnProcess("app", 7, func(p *kernel.Process) {
		vas := v.NewVAS(p.Thread)
		for i := int64(0); i < 28; i++ {
			vas.Touch(p.Thread, i)
		}
		// Let the daemon catch up.
		p.Thread.Sleep(100 * time.Millisecond)
		if v.FreeFrames() < 8 {
			t.Errorf("free = %d, below low watermark", v.FreeFrames())
		}
		stop = true
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestThrottlingEvictionGraftWatchdogged: the covert-DoS pagedaemon
// scenario of §2.5 — a graft that never returns cannot stop page-out.
func TestThrottlingEvictionGraftWatchdogged(t *testing.T) {
	k, v := newTestVM(8)
	runProc(t, k, func(p *kernel.Process) {
		vas := v.NewVAS(p.Thread)
		g, err := p.BuildAndInstall(vas.EvictPoint().Name, `
.name throttle
.func main
main:
    jmp main
`, graft.InstallOptions{})
		if err != nil {
			t.Fatalf("install: %v", err)
		}
		for i := int64(0); i < 12; i++ {
			vas.Touch(p.Thread, i)
		}
		if vas.Resident() > 8 {
			t.Error("eviction stopped making progress")
		}
		if !g.Removed() {
			t.Error("throttling graft still installed")
		}
	})
}

func TestDestroyReleasesEverything(t *testing.T) {
	k, v := newTestVM(16)
	runProc(t, k, func(p *kernel.Process) {
		vas := v.NewVAS(p.Thread)
		for i := int64(0); i < 10; i++ {
			vas.Touch(p.Thread, i)
		}
		name := vas.EvictPoint().Name
		vas.Destroy()
		if v.FreeFrames() != 16 {
			t.Errorf("free = %d after destroy", v.FreeFrames())
		}
		if _, err := k.Grafts.Lookup(name); err == nil {
			t.Error("eviction point survived destroy")
		}
	})
}

func TestDirtyEvictionPaysWriteBack(t *testing.T) {
	k, v := newTestVM(4)
	runProc(t, k, func(p *kernel.Process) {
		vas := v.NewVAS(p.Thread)
		vas.TouchWrite(p.Thread, 0) // dirty
		vas.Touch(p.Thread, 1)      // clean
		if !vas.Page(0).Dirty() || vas.Page(1).Dirty() {
			t.Fatal("dirty bits wrong")
		}
		for i := int64(2); i < 4; i++ {
			vas.Touch(p.Thread, i)
		}
		// Evict the clean page first: no write-back.
		v.MakeVictimNext(vas, 1)
		before := k.Clock.Now()
		v.EvictOne(p.Thread)
		cleanCost := k.Clock.Now() - before
		// Then the dirty one: pays the write.
		v.MakeVictimNext(vas, 0)
		before = k.Clock.Now()
		v.EvictOne(p.Thread)
		dirtyCost := k.Clock.Now() - before
		if dirtyCost < cleanCost+v.WriteBackLatency {
			t.Errorf("dirty eviction %v not a write-back over clean %v", dirtyCost, cleanCost)
		}
	})
	st := v.Stats()
	if st.WriteBacks != 1 {
		t.Fatalf("write-backs = %d, want 1", st.WriteBacks)
	}
}

func TestDirtyBitClearedAfterWriteBack(t *testing.T) {
	k, v := newTestVM(4)
	runProc(t, k, func(p *kernel.Process) {
		vas := v.NewVAS(p.Thread)
		vas.TouchWrite(p.Thread, 0)
		v.MakeVictimNext(vas, 0)
		v.EvictOne(p.Thread)
		// Re-fault and evict again without writing: clean this time.
		vas.Touch(p.Thread, 0)
		v.MakeVictimNext(vas, 0)
		wb := v.Stats().WriteBacks
		v.EvictOne(p.Thread)
		if v.Stats().WriteBacks != wb {
			t.Error("clean re-eviction paid a write-back")
		}
	})
}

func TestDestroyCountsLostWrites(t *testing.T) {
	k, v := newTestVM(8)
	runProc(t, k, func(p *kernel.Process) {
		vas := v.NewVAS(p.Thread)
		vas.TouchWrite(p.Thread, 0)
		vas.TouchWrite(p.Thread, 1)
		vas.Touch(p.Thread, 2)
		vas.Destroy()
	})
	if got := v.Stats().LostWrites; got != 2 {
		t.Fatalf("lost writes = %d, want 2", got)
	}
}
