package vmm

import (
	"fmt"
	"time"

	"vino/internal/sched"
)

// Pager materialises pages for a range of an address space. The paper's
// VM system is "based loosely on the Mach VM system": a virtual address
// space is a collection of memory objects, each "backed by a variety of
// objects such as a device, a network connection, or a file. Once a
// memory object is associated with a particular object, the object
// becomes responsible for handling page faults... in a manner
// appropriate for the materialized item (e.g., read a file from disk)".
//
// FaultIn runs on the faulting thread and performs whatever simulated
// I/O the backing object requires (sleeping for disk latency, hitting a
// cache, ...). A file-backed implementation lives in package fs.
type Pager interface {
	// FaultIn materialises the page at index rel within the mapping.
	FaultIn(t *sched.Thread, rel int64) error
	// Name describes the backing object for diagnostics.
	Name() string
}

// anonymousPager is the default backing: untouched pages zero-fill from
// the swap device at the VM system's flat fault latency.
type anonymousPager struct {
	v *VMM
}

func (p anonymousPager) FaultIn(t *sched.Thread, rel int64) error {
	t.Sleep(p.v.FaultLatency)
	return nil
}

func (p anonymousPager) Name() string { return "anonymous" }

// mapping associates a vpn range with a pager.
type mapping struct {
	start, count int64
	pager        Pager
}

// Map installs pager as the backing object for pages [startVPN,
// startVPN+count). Overlapping mappings are rejected. Unmapped pages
// keep the anonymous (swap) backing.
func (vas *VAS) Map(startVPN, count int64, pager Pager) error {
	if count <= 0 {
		return fmt.Errorf("vmm: map of %d pages", count)
	}
	for _, m := range vas.mappings {
		if startVPN < m.start+m.count && m.start < startVPN+count {
			return fmt.Errorf("vmm: mapping [%d,%d) overlaps [%d,%d) (%s)",
				startVPN, startVPN+count, m.start, m.start+m.count, m.pager.Name())
		}
	}
	vas.mappings = append(vas.mappings, mapping{start: startVPN, count: count, pager: pager})
	if g := vas.vmm.crashGen(); g != 0 {
		vas.modGen = g
	}
	return nil
}

// Unmap removes the mapping starting at startVPN and evicts its
// resident pages (their contents go back to the backing object).
func (vas *VAS) Unmap(startVPN int64) {
	for i, m := range vas.mappings {
		if m.start == startVPN {
			if g := vas.vmm.crashGen(); g != 0 {
				vas.modGen = g
			}
			vas.mappings = append(vas.mappings[:i], vas.mappings[i+1:]...)
			for vpn := m.start; vpn < m.start+m.count; vpn++ {
				if p, ok := vas.pages[vpn]; ok && p.resident {
					vas.vmm.release(nil, p)
				}
			}
			return
		}
	}
}

// pagerFor returns the backing object and relative page index for vpn.
func (vas *VAS) pagerFor(vpn int64) (Pager, int64) {
	for _, m := range vas.mappings {
		if vpn >= m.start && vpn < m.start+m.count {
			return m.pager, vpn - m.start
		}
	}
	return anonymousPager{v: vas.vmm}, vpn
}

// MappingCount reports installed mappings (for tests).
func (vas *VAS) MappingCount() int { return len(vas.mappings) }

// FaultTime is a helper some pagers use: the flat backing-store latency.
func (v *VMM) FaultTime() time.Duration { return v.FaultLatency }
