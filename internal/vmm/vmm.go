// Package vmm is the simulated virtual memory system beneath the page
// eviction experiments (§4.2 of the paper), loosely modelled — like
// VINO's — on Mach: address spaces are collections of pages, a global
// frame pool feeds them, and page-out runs a two-level algorithm. The
// global policy (a second-chance LRU queue) selects a victim; if the
// owning address space has installed a page-eviction graft, the graft
// may substitute one of that space's own pages, Cao-style. The global
// algorithm then verifies the suggestion: the page must belong to the
// space and must not be wired, otherwise the original victim goes.
package vmm

import (
	"container/list"
	"fmt"
	"sort"
	"time"

	"vino/internal/crash"
	"vino/internal/graft"
	"vino/internal/kernel"
	"vino/internal/lock"
	"vino/internal/resource"
	"vino/internal/sched"
	"vino/internal/trace"
	"vino/internal/txn"
)

// PageSize is the machine page size (4 KB, as on the paper's Pentium).
const PageSize = 4096

// DefaultFaultLatency is the cost of materialising a page from backing
// store: "the benefit of avoiding a page fault is approximately 18 ms
// in our system" (§4.2.2).
const DefaultFaultLatency = 18 * time.Millisecond

// DefaultWriteBackLatency is the cost of cleaning a dirty page at
// eviction: one random write to the backing store (no read-back), a bit
// under the 18 ms fault.
const DefaultWriteBackLatency = 16 * time.Millisecond

// VMM is the machine-wide virtual memory state.
type VMM struct {
	k *kernel.Kernel
	// FaultLatency is charged (as virtual sleep) per hard fault.
	FaultLatency time.Duration
	// AlwaysConsultPoint routes eviction through the graft point even
	// when no graft is installed, so the harness can time the bare
	// indirection (Table 2's VINO path). Production kernels leave it
	// false and take the fast path.
	AlwaysConsultPoint bool
	// BaseEvictCost models the un-instrumented global victim selection
	// and queue manipulation — the paper's 39 us Table 4 base path.
	BaseEvictCost time.Duration
	// WriteBackLatency is paid by the evicting thread when the victim is
	// dirty: the page must reach backing store before its frame is
	// reused.
	WriteBackLatency time.Duration
	lastEvicted      *Page
	totalFrames      int
	usedFrames       int
	globalQueue      *list.List // front = most recently admitted/reprieved
	spaces           map[int]*VAS
	nextVAS          int
	stats            Stats

	// ownerConflicts records cross-owner page stores for the
	// rollback-domain widening check (see CrashOwnerConflicts). Cleared
	// on whole-kernel restore.
	ownerConflicts []ownerConflict
}

// ownerConflict is one cross-owner store to a page: owner wrote at gen
// over prevOwner's store at prevGen.
type ownerConflict struct {
	vasID            int
	vpn              int64
	prevGen, gen     uint64
	prevOwner, owner string
}

// Stats counts VM events machine-wide.
type Stats struct {
	Faults         int64
	Evictions      int64
	WriteBacks     int64 // dirty victims cleaned at eviction
	LostWrites     int64 // dirty pages dropped at teardown (no thread to pay)
	GraftConsulted int64
	GraftOverruled int64 // graft substituted a different page
	GraftAgreed    int64
	GraftRejected  int64 // suggestion failed verification
	SecondChances  int64
}

// New creates a VM system with the given number of physical frames and
// registers its graft-callable functions.
func New(k *kernel.Kernel, frames int) *VMM {
	v := &VMM{
		k:                k,
		FaultLatency:     DefaultFaultLatency,
		BaseEvictCost:    39 * time.Microsecond,
		WriteBackLatency: DefaultWriteBackLatency,
		totalFrames:      frames,
		globalQueue:      list.New(),
		spaces:           make(map[int]*VAS),
	}
	if k.Crash != nil {
		k.Crash.Register(v)
	}
	return v
}

// Stats returns a copy of the counters.
func (v *VMM) Stats() Stats { return v.stats }

// FreeFrames reports unallocated physical frames, net of any frames the
// fault plane is currently holding hostage (a pressure spike makes the
// pool look smaller, forcing evictions exactly as real memory pressure
// would; the frames return when the spike's window closes).
func (v *VMM) FreeFrames() int {
	return v.totalFrames - v.usedFrames - v.k.Faults.StolenFrames()
}

// Page is one virtual page of some address space.
type Page struct {
	vas        *VAS
	vpn        int64
	resident   bool
	wired      bool
	referenced bool
	dirty      bool
	elem       *list.Element

	// modGen is the crash-manager generation of the page's last flag
	// change, so an incremental checkpoint copies only touched pages.
	modGen uint64

	// Rollback-domain owner stamp: the domain whose store last dirtied
	// the page, and the generation of that store. Reads do not stamp —
	// domain recovery reverts only the offender's writes.
	owner    string
	writeGen uint64
}

// crashGen returns the crash manager's current generation for dirty
// stamping, or zero when checkpoints are off.
func (v *VMM) crashGen() uint64 {
	if v.k != nil && v.k.Crash != nil {
		return v.k.Crash.Gen()
	}
	return 0
}

// stamp marks a page (and its space) as modified in the current
// generation. Over-stamping is harmless — a stamped-but-unchanged page
// rides the next delta at its current, correct flags.
func (v *VMM) stamp(p *Page) {
	if g := v.crashGen(); g != 0 {
		p.modGen = g
		p.vas.modGen = g
	}
}

// Dirty reports whether the page has been written since it was last
// cleaned.
func (p *Page) Dirty() bool { return p.dirty }

// VPN returns the page's virtual page number.
func (p *Page) VPN() int64 { return p.vpn }

// Resident reports whether the page occupies a frame.
func (p *Page) Resident() bool { return p.resident }

// Wired reports whether the page is exempt from eviction.
func (p *Page) Wired() bool { return p.wired }

// VAS is one virtual address space.
type VAS struct {
	id    int
	owner graft.UID
	acct  *resource.Account
	vmm   *VMM
	pages map[int64]*Page

	evictPoint *graft.Point
	listLock   *lock.Lock
	mappings   []mapping

	// Checkpoint dirty tracking (see Page.modGen).
	genCreated uint64
	modGen     uint64

	// crashOwner is the rollback domain that created the space ("" for
	// the shared base domain).
	crashOwner string

	// Per-space stats.
	Faults    int64
	Evictions int64
}

var pageListClass = &lock.Class{
	Name:    "pagelist",
	Timeout: 20 * time.Millisecond,
	// Table 4's lock overhead row; the 10 us release is charged by the
	// transaction manager at commit/abort (two-phase release).
	AcquireCost: 34 * time.Microsecond,
}

// NewVAS creates an address space owned by the calling thread's user.
func (v *VMM) NewVAS(t *sched.Thread) *VAS {
	v.nextVAS++
	vas := &VAS{
		id:         v.nextVAS,
		owner:      graft.ThreadUID(t),
		acct:       graft.ThreadAccount(t),
		vmm:        v,
		pages:      make(map[int64]*Page),
		genCreated: v.crashGen(),
		crashOwner: crash.Owner(t),
	}
	vas.listLock = v.k.Locks.NewLock(fmt.Sprintf("vas/%d.pagelist", v.nextVAS), pageListClass)
	vas.evictPoint = v.k.Grafts.RegisterPoint(&graft.Point{
		Name:      fmt.Sprintf("vas/%d.pick-eviction", vas.id),
		Kind:      graft.Function,
		Privilege: graft.Local,
		// Default: accept the global victim unchanged.
		Default: func(t *sched.Thread, args []int64) (int64, error) {
			return args[0], nil
		},
		// §4.2's verification: "the global algorithm then verifies that
		// the selected page belongs to the specific VAS and is not
		// wired. If either of these checks fails the system ignores the
		// request and evicts the original victim."
		Validate: func(t *sched.Thread, args []int64, res int64) (int64, error) {
			p, ok := vas.pages[res]
			if !ok || !p.resident || p.wired {
				v.stats.GraftRejected++
				return args[0], nil
			}
			return res, nil
		},
		// PreGraft: under the graft's transaction, lock the space's page
		// list (held to commit — the Table 4 lock overhead) and publish
		// the candidate pages into the graft heap.
		PreGraft: func(t *sched.Thread, tx *txn.Txn, g *graft.Installed, args []int64) error {
			tx.AcquireLock(vas.listLock, lock.Shared)
			candidates := make([]int64, 0, len(vas.pages))
			for _, p := range vas.pages {
				if p.resident && !p.wired {
					candidates = append(candidates, p.vpn)
				}
			}
			sort.Slice(candidates, func(i, j int) bool { return candidates[i] < candidates[j] })
			writeCandidates(g, candidates)
			return nil
		},
		IndirectionCost: time.Microsecond,
		// The page eviction decision must be made in a timely fashion
		// (§4.2's first requirement): a tight watchdog.
		Watchdog: 50 * time.Millisecond,
	})
	v.spaces[vas.id] = vas
	return vas
}

// ID returns the address-space identifier.
func (vas *VAS) ID() int { return vas.id }

// EvictPoint returns the per-VAS page-eviction graft point.
func (vas *VAS) EvictPoint() *graft.Point { return vas.evictPoint }

// Destroy releases all frames and the graft point. Pages are released
// in vpn order so teardown is deterministic (map iteration is not).
func (vas *VAS) Destroy() {
	vpns := make([]int64, 0, len(vas.pages))
	for vpn := range vas.pages {
		vpns = append(vpns, vpn)
	}
	sort.Slice(vpns, func(i, j int) bool { return vpns[i] < vpns[j] })
	for _, vpn := range vpns {
		if p := vas.pages[vpn]; p.resident {
			vas.vmm.release(nil, p)
		}
	}
	vas.vmm.k.Grafts.UnregisterPoint(vas.evictPoint.Name)
	delete(vas.vmm.spaces, vas.id)
}

// Resident counts the space's resident pages.
func (vas *VAS) Resident() int {
	n := 0
	for _, p := range vas.pages {
		if p.resident {
			n++
		}
	}
	return n
}

// Page returns the page object for vpn, creating it on first use. The
// page is stamped into the current checkpoint generation: every flag
// mutation in the fault/wire paths flows through here first.
func (vas *VAS) Page(vpn int64) *Page {
	p, ok := vas.pages[vpn]
	if !ok {
		p = &Page{vas: vas, vpn: vpn}
		vas.pages[vpn] = p
	}
	vas.vmm.stamp(p)
	return p
}

// Touch simulates an access to vpn on thread t: a hard fault (with
// backing-object latency and possible eviction) if non-resident, a
// reference-bit update otherwise. A failing pager panics; use TouchErr
// when the mapping's backing object can legitimately fail.
func (vas *VAS) Touch(t *sched.Thread, vpn int64) {
	if err := vas.TouchErr(t, vpn); err != nil {
		panic(fmt.Sprintf("vmm: fault on vpn %d: %v", vpn, err))
	}
}

// TouchErr is Touch with pager errors surfaced (a file-backed mapping
// may fail on a read past EOF or a revoked permission); the frame is
// not consumed on failure.
func (vas *VAS) TouchErr(t *sched.Thread, vpn int64) error {
	p := vas.Page(vpn)
	if p.resident {
		p.referenced = true
		return nil
	}
	v := vas.vmm
	v.stats.Faults++
	vas.Faults++
	for v.FreeFrames() <= 0 {
		if !v.EvictOne(t) {
			if v.k.Faults.StolenFrames() > 0 {
				// An injected pressure spike has taken the pool below
				// what eviction can recover; proceed oversubscribed
				// rather than declare the (healthy) kernel broken.
				break
			}
			panic("vmm: out of frames with nothing evictable")
		}
	}
	// Charge the resource account (quantity constraint) if present.
	charged := false
	if vas.acct != nil {
		// Touch failures become faults the process must handle; in the
		// simulator a denial means the space cannot grow, so we evict
		// one of its own pages to stay within limits.
		for {
			if vas.acct.Charge(resource.Memory, PageSize) == nil {
				charged = true
				break
			}
			if !v.evictFromVAS(t, vas) {
				break // nothing of its own to evict; allow (soft limit)
			}
		}
	}
	// The backing object materialises the page: anonymous swap at the
	// flat fault latency, or a mapped memory object (e.g. a file read
	// through the buffer cache).
	pager, rel := vas.pagerFor(vpn)
	if err := pager.FaultIn(t, rel); err != nil {
		if charged {
			vas.acct.Release(resource.Memory, PageSize)
		}
		return fmt.Errorf("pager %s: %w", pager.Name(), err)
	}
	v.usedFrames++
	p.resident = true
	p.referenced = true
	p.elem = v.globalQueue.PushFront(p)
	return nil
}

// TouchWrite is Touch for a store: the page is additionally marked
// dirty, so its eventual eviction pays a write-back. Stores also carry
// the rollback-domain owner stamp; a store over another live domain's
// post-checkpoint store is recorded as a cross-owner conflict.
func (vas *VAS) TouchWrite(t *sched.Thread, vpn int64) {
	vas.Touch(t, vpn)
	p := vas.Page(vpn)
	p.dirty = true
	if g := vas.vmm.crashGen(); g != 0 {
		owner := crash.Owner(t)
		if p.writeGen != 0 && p.owner != owner {
			vas.vmm.ownerConflicts = append(vas.vmm.ownerConflicts, ownerConflict{
				vasID: vas.id, vpn: vpn,
				prevGen: p.writeGen, gen: g,
				prevOwner: p.owner, owner: owner,
			})
		}
		p.owner = owner
		p.writeGen = g
	}
}

// Wire pins a page in memory (it must be resident), charging the wired
// memory quota.
func (vas *VAS) Wire(t *sched.Thread, vpn int64) error {
	p := vas.Page(vpn)
	if !p.resident {
		vas.Touch(t, vpn)
	}
	if p.wired {
		return nil
	}
	if vas.acct != nil {
		if err := vas.acct.Charge(resource.WiredMemory, PageSize); err != nil {
			return err
		}
	}
	p.wired = true
	return nil
}

// Unwire releases a pin.
func (vas *VAS) Unwire(vpn int64) {
	p := vas.Page(vpn)
	if p.wired {
		p.wired = false
		if vas.acct != nil {
			vas.acct.Release(resource.WiredMemory, PageSize)
		}
	}
}

// release frees a resident page's frame. When the page is dirty and an
// evicting thread is present, that thread pays the write-back; teardown
// paths (Destroy, Unmap) pass nil and the write is counted as lost
// (volatile simulation — nothing to preserve).
func (v *VMM) release(t *sched.Thread, p *Page) {
	if !p.resident {
		return
	}
	v.stamp(p)
	if p.dirty {
		if t != nil {
			v.stats.WriteBacks++
			t.Sleep(v.WriteBackLatency)
		} else {
			v.stats.LostWrites++
		}
		p.dirty = false
	}
	// Mid-eviction crash site: the write-back is accounted but the
	// frame is still charged and queued — restore must reconcile the
	// in-flight page-out.
	v.k.Faults.MaybeCrash(crash.SitePager, "")
	p.resident = false
	if p.elem != nil {
		v.globalQueue.Remove(p.elem)
		p.elem = nil
	}
	v.usedFrames--
	if p.vas.acct != nil {
		p.vas.acct.Release(resource.Memory, PageSize)
	}
	v.stats.Evictions++
	p.vas.Evictions++
	v.lastEvicted = p
	v.k.Trace.Emit(v.k.Clock.Now(), trace.Eviction,
		fmt.Sprintf("vas/%d", p.vas.id), fmt.Sprintf("vpn %d", p.vpn))
}

// LastEvicted reports the most recently evicted page (vas id, vpn).
func (v *VMM) LastEvicted() (vasID int, vpn int64, ok bool) {
	if v.lastEvicted == nil {
		return 0, 0, false
	}
	return v.lastEvicted.vas.id, v.lastEvicted.vpn, true
}

// MakeVictimNext clears a page's reference bit and moves it to the back
// of the global queue so the next eviction selects it. Measurement
// harness use: Table 4 times the path where the graft *disagrees* with
// the global choice, which requires the global victim to be one of the
// application's hot pages on every iteration.
func (v *VMM) MakeVictimNext(vas *VAS, vpn int64) {
	p := vas.pages[vpn]
	if p == nil || !p.resident || p.elem == nil {
		return
	}
	v.stamp(p)
	p.referenced = false
	v.globalQueue.MoveToBack(p.elem)
}

// globalVictim runs the global second-chance policy: scan from the back
// of the queue; referenced pages get a second chance, wired pages are
// skipped.
func (v *VMM) globalVictim() *Page {
	for i := v.globalQueue.Len() * 2; i > 0; i-- {
		e := v.globalQueue.Back()
		if e == nil {
			return nil
		}
		p := e.Value.(*Page)
		if p.wired {
			v.globalQueue.MoveToFront(e)
			continue
		}
		if p.referenced {
			v.stamp(p)
			p.referenced = false
			v.globalQueue.MoveToFront(e)
			v.stats.SecondChances++
			continue
		}
		return p
	}
	return nil
}

// EvictOne runs the two-level eviction algorithm once. It returns false
// if nothing was evictable.
func (v *VMM) EvictOne(t *sched.Thread) bool {
	victim := v.globalVictim()
	if victim == nil {
		return false
	}
	if v.BaseEvictCost > 0 {
		t.Charge(v.BaseEvictCost)
	}
	vas := victim.vas
	chosen := victim
	if v.AlwaysConsultPoint && !vas.evictPoint.Grafted() {
		// Measurement harness: exercise the indirection + verification
		// path (the Table 2 "VINO path") even without a graft.
		if res, err := vas.evictPoint.Invoke(t, victim.vpn, 0); err == nil && res == victim.vpn {
			v.stats.GraftAgreed++
		}
	}
	if vas.evictPoint.Grafted() {
		v.stats.GraftConsulted++
		// The candidate list (the space's resident, unwired pages) is
		// published into the graft heap by the point's PreGraft hook,
		// inside the transaction and under the page-list lock; count at
		// +1024, vpns following. The application's hot list occupies
		// the low heap (its shared buffer), so candidates start high.
		g := vas.graftHandle()
		if g != nil {
			res, err := vas.evictPoint.Invoke(t, victim.vpn, 0)
			if err == nil && res != victim.vpn {
				if alt, ok := vas.pages[res]; ok && alt.resident && !alt.wired {
					v.stats.GraftOverruled++
					v.k.Trace.Emit(v.k.Clock.Now(), trace.GraftOverrule,
						vas.evictPoint.Name, fmt.Sprintf("victim %d -> %d", victim.vpn, res))
					// Cao placement: the reprieved victim takes the
					// replacement's position in the global LRU order.
					if victim.elem != nil && alt.elem != nil {
						v.globalQueue.MoveBefore(victim.elem, alt.elem)
					}
					chosen = alt
				}
			} else if err == nil {
				v.stats.GraftAgreed++
			}
		}
	}
	v.release(t, chosen)
	return true
}

// evictFromVAS forcibly evicts one resident unwired page of the given
// space (used to keep a space inside its memory quota).
func (v *VMM) evictFromVAS(t *sched.Thread, vas *VAS) bool {
	for e := v.globalQueue.Back(); e != nil; e = e.Prev() {
		p := e.Value.(*Page)
		if p.vas == vas && !p.wired {
			v.release(t, p)
			return true
		}
	}
	return false
}

// graftHandle returns the installed graft on the eviction point.
func (vas *VAS) graftHandle() *graft.Installed { return vas.evictPoint.Current() }

// writeCandidates serialises the candidate vpn list into the graft heap
// at the agreed offset.
const candidateOffset = 1024

func writeCandidates(g *graft.Installed, candidates []int64) {
	heap := g.VM().Heap()
	if candidateOffset+8+len(candidates)*8 > len(heap) {
		candidates = candidates[:(len(heap)-candidateOffset-8)/8]
	}
	poke64(heap, candidateOffset, int64(len(candidates)))
	for i, c := range candidates {
		poke64(heap, candidateOffset+8+8*i, c)
	}
}

func poke64(heap []byte, off int, v int64) {
	for i := 0; i < 8; i++ {
		heap[off+i] = byte(uint64(v) >> (8 * i))
	}
}

// StartPagedaemon spawns the background page-out thread: it keeps the
// free-frame pool between low and high watermarks, checking every tick.
func (v *VMM) StartPagedaemon(low, high int, stop *bool) *sched.Thread {
	// The pagedaemon is a wired kernel thread: it lives on CPU 0 so its
	// watermark checks observe one stable virtual-time frontier instead
	// of migrating between CPU-local clocks.
	return v.k.Sched.SpawnOn("pagedaemon", 0, func(t *sched.Thread) {
		for !*stop {
			for v.FreeFrames() < low {
				if !v.EvictOne(t) {
					break
				}
				t.Charge(50 * time.Microsecond)
				if v.FreeFrames() >= high {
					break
				}
			}
			t.Sleep(10 * time.Millisecond)
		}
	})
}
