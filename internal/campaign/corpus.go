package campaign

import (
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"vino/internal/fault"
	"vino/internal/harness"
)

// The corpus: every novel signature's minimal reproducer, serialized in
// a form that is simultaneously a campaign artifact and a plain
// vinosim faultfile. The header rides in '#' comments (which
// fault.Decode ignores), so a corpus entry replays directly with
// `vinosim chaos -faultfile=<entry>` plus the recorded knobs — and the
// corpus-golden CI step re-runs every entry and asserts its recorded
// signature still comes out.

// Entry is one corpus reproducer: a (usually minimized) plan plus the
// chaos knobs and normalized signature it reproduces.
type Entry struct {
	// Signature is the normalized signature the plan reproduces.
	Signature string
	// Removed counts rules the shrinker deleted from the discovering
	// plan (0 if minimization was skipped or degenerate).
	Removed int
	// Iterations, NCPU, Extended, Crash are the chaos knobs the
	// signature was recorded under.
	Iterations int
	NCPU       int
	Extended   bool
	Crash      bool
	// Plan is the reproducer.
	Plan *fault.Plan
}

func newEntry(cfg Config, sig string, plan *fault.Plan, removed int) *Entry {
	return &Entry{
		Signature:  sig,
		Removed:    removed,
		Iterations: cfg.Iterations,
		NCPU:       cfg.NCPU,
		Extended:   cfg.Extended,
		Crash:      cfg.Crash,
		Plan:       plan,
	}
}

// ChaosConfig returns the replay configuration for the entry.
func (e *Entry) ChaosConfig() harness.ChaosConfig {
	return harness.ChaosConfig{
		Plan:       e.Plan,
		Iterations: e.Iterations,
		NCPU:       e.NCPU,
		Extended:   e.Extended,
		Crash:      e.Crash,
	}
}

// Replay runs the entry and returns the normalized signature observed.
func (e *Entry) Replay() (string, error) {
	rep, err := harness.RunChaos(e.ChaosConfig())
	if err != nil {
		return "error " + harness.NormalizeShape(err.Error()), nil
	}
	return harness.NormalizedSignature(rep), nil
}

// Name returns the entry's stable corpus file stem: a slug of the
// signature plus a hash of its full text (slugs collide; hashes don't).
func (e *Entry) Name() string {
	h := fnv.New32a()
	h.Write([]byte(e.Signature))
	return fmt.Sprintf("%s-%08x", slug(e.Signature), h.Sum32())
}

// slug folds a signature into a short filesystem-safe stem.
func slug(s string) string {
	var b strings.Builder
	dash := false
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			b.WriteRune(r)
			dash = false
		case b.Len() > 0 && !dash:
			b.WriteByte('-')
			dash = true
		}
		if b.Len() >= 48 {
			break
		}
	}
	return strings.TrimRight(b.String(), "-")
}

// Encode renders the entry: a commented header over the plan text.
func (e *Entry) Encode() string {
	var b strings.Builder
	b.WriteString("# vino-campaign reproducer\n")
	fmt.Fprintf(&b, "# signature: %s\n", e.Signature)
	fmt.Fprintf(&b, "# chaos: iterations=%d ncpu=%d extended=%v crash=%v\n",
		e.Iterations, e.NCPU, e.Extended, e.Crash)
	fmt.Fprintf(&b, "# shrunk: %d rules removed\n", e.Removed)
	b.WriteString(e.Plan.Encode())
	return b.String()
}

// DecodeEntry parses an Encode'd corpus entry (header + plan).
func DecodeEntry(s string) (*Entry, error) {
	e := &Entry{Iterations: 16, NCPU: 1}
	sawSig := false
	for _, raw := range strings.Split(s, "\n") {
		line := strings.TrimSpace(raw)
		switch {
		case strings.HasPrefix(line, "# signature: "):
			e.Signature = strings.TrimPrefix(line, "# signature: ")
			sawSig = true
		case strings.HasPrefix(line, "# chaos: "):
			for _, f := range strings.Fields(strings.TrimPrefix(line, "# chaos: ")) {
				key, val, ok := strings.Cut(f, "=")
				if !ok {
					return nil, fmt.Errorf("campaign: malformed chaos field %q", f)
				}
				switch key {
				case "iterations":
					n, err := strconv.Atoi(val)
					if err != nil || n <= 0 {
						return nil, fmt.Errorf("campaign: bad iterations=%q", val)
					}
					e.Iterations = n
				case "ncpu":
					n, err := strconv.Atoi(val)
					if err != nil || n <= 0 {
						return nil, fmt.Errorf("campaign: bad ncpu=%q", val)
					}
					e.NCPU = n
				case "extended":
					e.Extended = val == "true"
				case "crash":
					e.Crash = val == "true"
				}
			}
		case strings.HasPrefix(line, "# shrunk: "):
			fmt.Sscanf(line, "# shrunk: %d rules removed", &e.Removed)
		}
	}
	if !sawSig {
		return nil, fmt.Errorf("campaign: entry missing '# signature:' header")
	}
	plan, err := fault.Decode(s)
	if err != nil {
		return nil, fmt.Errorf("campaign: entry plan: %w", err)
	}
	e.Plan = plan
	return e, nil
}

// WriteCorpus writes every entry to dir as <name>.plan, creating dir if
// needed, and removes stale .plan files from earlier campaigns so the
// directory always mirrors exactly this report's corpus.
func (r *Report) WriteCorpus(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	keep := make(map[string]bool)
	for _, e := range r.Corpus {
		name := e.Name() + ".plan"
		keep[name] = true
		if err := os.WriteFile(filepath.Join(dir, name), []byte(e.Encode()), 0o644); err != nil {
			return err
		}
	}
	old, err := filepath.Glob(filepath.Join(dir, "*.plan"))
	if err != nil {
		return err
	}
	for _, path := range old {
		if !keep[filepath.Base(path)] {
			if err := os.Remove(path); err != nil {
				return err
			}
		}
	}
	return nil
}

// LoadCorpus reads every .plan entry in dir, sorted by file name.
func LoadCorpus(dir string) ([]*Entry, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.plan"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	var out []*Entry
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		e, err := DecodeEntry(string(data))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		out = append(out, e)
	}
	return out, nil
}

// CorpusDump renders the corpus deterministically for comparison: each
// entry's name, signature and encoded form.
func (r *Report) CorpusDump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "campaign corpus: %d entries\n", len(r.Corpus))
	for _, e := range r.Corpus {
		fmt.Fprintf(&b, "--- %s\n%s", e.Name(), e.Encode())
	}
	return b.String()
}
