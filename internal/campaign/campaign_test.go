package campaign

import (
	"strings"
	"testing"

	"vino/internal/fault"
)

// testConfig is the shared small-campaign shape: big enough to cross
// several generations and discover multiple signatures, small enough
// for tier-1 on a single core.
func testConfig(workers int) Config {
	return Config{
		Seed:       5,
		Runs:       24,
		Shards:     8,
		Workers:    workers,
		Iterations: 10,
		Extended:   true,
		Crash:      true,
		MaxCorpus:  3,
	}
}

// The campaign's core contract: for a fixed (Seed, Shards) the outcome
// is a pure function of the config — the worker-pool size affects only
// wall-clock. Both determinism artifacts (the coverage map and the
// minimized corpus) must come out byte-identical at workers=1 and
// workers=8.
func TestCampaignDeterministicAcrossWorkers(t *testing.T) {
	serial, err := Run(testConfig(1))
	if err != nil {
		t.Fatalf("workers=1 campaign: %v", err)
	}
	pooled, err := Run(testConfig(8))
	if err != nil {
		t.Fatalf("workers=8 campaign: %v", err)
	}
	if a, b := serial.CoverageDump(), pooled.CoverageDump(); a != b {
		t.Errorf("coverage dumps differ across worker counts:\n--- workers=1\n%s--- workers=8\n%s", a, b)
	}
	if a, b := serial.CorpusDump(), pooled.CorpusDump(); a != b {
		t.Errorf("corpus dumps differ across worker counts:\n--- workers=1\n%s--- workers=8\n%s", a, b)
	}
}

// A same-config rerun is byte-identical too (determinism is not just
// worker-independence but full reproducibility), and the report's
// bookkeeping adds up: every run lands in the coverage map, novelty
// tracks the map's cardinality, and the survival audit is clean.
func TestCampaignReportInvariants(t *testing.T) {
	rep, err := Run(testConfig(2))
	if err != nil {
		t.Fatalf("campaign: %v", err)
	}
	again, err := Run(testConfig(2))
	if err != nil {
		t.Fatalf("rerun: %v", err)
	}
	if rep.CoverageDump() != again.CoverageDump() {
		t.Errorf("same config, different coverage:\n%s\nvs\n%s", rep.CoverageDump(), again.CoverageDump())
	}

	if rep.Runs != 24 {
		t.Errorf("Runs = %d, want 24", rep.Runs)
	}
	if rep.Generations != 3 {
		t.Errorf("Generations = %d, want 3 (24 runs / 8 shards)", rep.Generations)
	}
	total := 0
	for _, st := range rep.Coverage {
		total += st.Count
	}
	if total != rep.Runs {
		t.Errorf("coverage counts sum to %d, want %d", total, rep.Runs)
	}
	if len(rep.Novel) != len(rep.Coverage) {
		t.Errorf("%d novel signatures vs %d coverage rows", len(rep.Novel), len(rep.Coverage))
	}
	if len(rep.Novel) < 3 {
		t.Errorf("only %d distinct signatures in 24 extended+crash runs:\n%s", len(rep.Novel), rep.CoverageDump())
	}
	if rep.DirtyRuns != 0 {
		t.Errorf("survival audit dirty (%d runs):\n%s", rep.DirtyRuns, strings.Join(rep.Dirty, "\n"))
	}
	if len(rep.Corpus) != 3 {
		t.Errorf("corpus has %d entries, want MaxCorpus=3", len(rep.Corpus))
	}
}

// Every corpus entry must replay to the signature it records — the
// minimizer shrinks under the normalized signature, so the reproducer
// and its discoverer fingerprint identically.
func TestCampaignCorpusReplays(t *testing.T) {
	rep, err := Run(testConfig(4))
	if err != nil {
		t.Fatalf("campaign: %v", err)
	}
	if len(rep.Corpus) == 0 {
		t.Fatal("campaign produced no corpus entries")
	}
	for _, e := range rep.Corpus {
		sig, err := e.Replay()
		if err != nil {
			t.Errorf("%s: replay: %v", e.Name(), err)
			continue
		}
		if sig != e.Signature {
			t.Errorf("%s replays to\n  %s\nwant\n  %s\nplan:\n%s", e.Name(), sig, e.Signature, e.Plan.Encode())
		}
	}
}

// A run budget that does not divide the shard width truncates the last
// generation instead of overshooting.
func TestCampaignTruncatesLastGeneration(t *testing.T) {
	rep, err := Run(Config{Seed: 9, Runs: 10, Shards: 8, Workers: 2, Iterations: 4, MaxCorpus: -1})
	if err != nil {
		t.Fatalf("campaign: %v", err)
	}
	if rep.Runs != 10 {
		t.Errorf("Runs = %d, want exactly the 10-run budget", rep.Runs)
	}
	if rep.Generations != 2 {
		t.Errorf("Generations = %d, want 2", rep.Generations)
	}
	if rep.Corpus != nil {
		t.Errorf("MaxCorpus<0 still distilled %d entries", len(rep.Corpus))
	}
}

// Corpus entries round-trip: the commented header and the plan text
// both survive Encode → DecodeEntry.
func TestEntryRoundTrip(t *testing.T) {
	plan := fault.NewPlan(7, fault.ExtendedClasses(), 2)
	plan.Rules = append(plan.Rules, fault.NewCrashRules(7, 1)...)
	e := &Entry{
		Signature:  "ok sites=dispatch,commit panics=undo-escape",
		Removed:    12,
		Iterations: 16,
		NCPU:       2,
		Extended:   true,
		Crash:      true,
		Plan:       plan,
	}
	back, err := DecodeEntry(e.Encode())
	if err != nil {
		t.Fatalf("DecodeEntry: %v\n%s", err, e.Encode())
	}
	if back.Signature != e.Signature || back.Removed != e.Removed ||
		back.Iterations != e.Iterations || back.NCPU != e.NCPU ||
		back.Extended != e.Extended || back.Crash != e.Crash {
		t.Errorf("header fields lost: %+v vs %+v", back, e)
	}
	if back.Plan.Encode() != plan.Encode() {
		t.Errorf("plan lost in round-trip:\n%s\nvs\n%s", back.Plan.Encode(), plan.Encode())
	}
	if back.Encode() != e.Encode() {
		t.Errorf("re-encode differs:\n%s\nvs\n%s", back.Encode(), e.Encode())
	}

	// A corpus entry is also a plain faultfile: the decoder must accept
	// it with the header intact.
	if _, err := fault.Decode(e.Encode()); err != nil {
		t.Errorf("corpus entry is not a valid faultfile: %v", err)
	}

	if _, err := DecodeEntry(plan.Encode()); err == nil {
		t.Error("DecodeEntry accepted a bare plan without a signature header")
	}
}
