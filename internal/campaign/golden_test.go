package campaign

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// The checked-in corpus under testdata/corpus/ is the reference
// campaign's yield: one minimized reproducer per novel signature from
// the pinned 256-run campaign below, plus its coverage map in
// testdata/coverage.txt. CI replays every entry and asserts its
// recorded signature still comes out — a graft-containment or
// crash-recovery regression shows up as a reproducer that stops
// reproducing (or starts failing the survival audit).
//
// Regenerate (only when intentionally changing campaign or kernel
// behaviour) with:
//
//	go test ./internal/campaign -run Golden -update
var updateCorpus = flag.Bool("update", false, "regenerate testdata/corpus from the pinned reference campaign")

// goldenConfig is the pinned reference campaign. Workers is left unset
// on purpose: determinism must not depend on it.
func goldenConfig() Config {
	return Config{
		Seed:       1,
		Runs:       256,
		Shards:     8,
		Iterations: 16,
		Extended:   true,
		Crash:      true,
		MaxCorpus:  16,
	}
}

func TestGoldenCorpusReplays(t *testing.T) {
	dir := filepath.Join("testdata", "corpus")
	if *updateCorpus {
		rep, err := Run(goldenConfig())
		if err != nil {
			t.Fatalf("reference campaign: %v", err)
		}
		if rep.DirtyRuns != 0 {
			t.Fatalf("reference campaign audit dirty:\n%s", rep.Summary())
		}
		if len(rep.Novel) < 10 {
			t.Fatalf("reference campaign found only %d distinct signatures, want >= 10", len(rep.Novel))
		}
		if len(rep.Corpus) < 5 {
			t.Fatalf("reference campaign distilled only %d reproducers, want >= 5", len(rep.Corpus))
		}
		if err := rep.WriteCorpus(dir); err != nil {
			t.Fatalf("WriteCorpus: %v", err)
		}
		if err := os.WriteFile(filepath.Join("testdata", "coverage.txt"), []byte(rep.CoverageDump()), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %d corpus entries\n%s", len(rep.Corpus), rep.Summary())
	}

	entries, err := LoadCorpus(dir)
	if err != nil {
		t.Fatalf("LoadCorpus: %v", err)
	}
	if len(entries) < 5 {
		t.Fatalf("corpus has %d entries, want >= 5 (run with -update to regenerate)", len(entries))
	}
	for _, e := range entries {
		sig, err := e.Replay()
		if err != nil {
			t.Errorf("%s: replay: %v", e.Name(), err)
			continue
		}
		if sig != e.Signature {
			t.Errorf("%s no longer reproduces:\n  replayed %s\n  recorded %s", e.Name(), sig, e.Signature)
		}
	}
}
