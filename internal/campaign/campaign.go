// Package campaign is the coverage-guided chaos fuzzer for kernel
// survival: fleet-scale sweeps over the fault-injection configuration
// space, in the spirit of SystemTap-style failure-injection campaigns
// (systematic sweeps + result classification) and Quest-V's fleet
// framing — confidence comes from surviving many independent failing
// instances, not one lucky run.
//
// The genome is the fault plan's Encode/Decode text form. A campaign
// runs in generations: each generation carries one plan per shard, the
// shards execute as isolated kernel instances (harness.RunChaos) on a
// bounded worker pool, and every run is fingerprinted by its normalized
// trace/panic/abort signature (harness.NormalizedSignature). The
// coverage map records every signature seen; plans that produce a
// signature never seen before are "novel", join the parent pool that
// the next generation's mutations are biased toward, and are distilled
// through the ddmin minimizer into minimal reproducers for the corpus.
//
// Determinism: for a fixed (Seed, Shards) the campaign is a pure
// function of its config, regardless of worker-pool size. Workers race
// only on wall-clock — results land in a slice indexed by shard and are
// merged in shard order, and every random draw (plan generation,
// parent selection, mutation) happens on the sequential merge path from
// rngs seeded by (Seed, generation). Two runs at workers=1 and
// workers=16 produce byte-identical coverage maps and corpora.
package campaign

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"vino/internal/fault"
	"vino/internal/harness"
)

// Config parameterises one campaign.
type Config struct {
	// Seed is the campaign master seed: it drives initial plan
	// derivation, parent selection and mutation. Together with Shards it
	// fully determines the campaign's outcome.
	Seed int64
	// Runs is the total run budget (default 256). The campaign executes
	// ceil(Runs/Shards) generations, truncating the last.
	Runs int
	// Shards is the population width: each generation carries one plan
	// per shard, and initial seeds derive per shard index. A determinism
	// parameter — changing it changes the campaign; changing Workers
	// does not (default 8).
	Shards int
	// Workers bounds the parallel worker pool (wall-clock only; default
	// min(Shards, GOMAXPROCS)).
	Workers int
	// Iterations sizes each chaos run's workload phases (default 16,
	// the -quick size, so a 256-run campaign finishes in seconds).
	Iterations int
	// NCPU is the simulated CPU count per kernel instance (default 1).
	NCPU int
	// Extended widens each run's fault surface (netio class, pager
	// phase).
	Extended bool
	// Crash arms each run's crash phase: plans carry panic rules and
	// injected kernel panics are contained and recovered. This is where
	// most signature diversity lives.
	Crash bool
	// RulesPerClass sizes freshly generated plans (default 3).
	RulesPerClass int
	// CrashRulesPerSite sizes fresh plans' panic-rule complement when
	// Crash is set (default 2).
	CrashRulesPerSite int
	// MaxCorpus caps how many novel-signature plans are distilled into
	// minimized reproducers (default 16; 0 keeps the default, negative
	// disables minimization entirely).
	MaxCorpus int
	// RedTeam arms each run's red-team phase: the adversarial SFI
	// escape corpus plus an in-kernel compartment-violation probe. An
	// escape surfaces as an invariant violation in that run's
	// signature. Off by default, keeping existing campaign artifacts
	// byte-identical.
	RedTeam bool
}

func (cfg Config) withDefaults() Config {
	if cfg.Runs <= 0 {
		cfg.Runs = 256
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 8
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Workers > cfg.Shards {
		cfg.Workers = cfg.Shards
	}
	if cfg.Iterations <= 0 {
		cfg.Iterations = 16
	}
	if cfg.NCPU <= 0 {
		cfg.NCPU = 1
	}
	if cfg.RulesPerClass <= 0 {
		cfg.RulesPerClass = 3
	}
	if cfg.CrashRulesPerSite <= 0 {
		cfg.CrashRulesPerSite = 2
	}
	if cfg.MaxCorpus == 0 {
		cfg.MaxCorpus = 16
	}
	return cfg
}

// SigStat is one coverage-map row: how often a signature was seen and
// where it was first discovered.
type SigStat struct {
	Count      int
	FirstGen   int
	FirstShard int
}

// Report is a campaign's outcome. Every field except Wall is a pure
// function of (Config.Seed, Config.Shards) and the chaos knobs;
// CoverageDump and the corpus entries are the byte-stable determinism
// artifacts.
type Report struct {
	// Config echoes the resolved configuration the campaign ran with.
	Config Config
	// Runs counts chaos runs executed (excluding minimizer replays).
	Runs int
	// Generations counts evolution steps taken.
	Generations int
	// Coverage maps every normalized signature seen to its stats.
	Coverage map[string]*SigStat
	// Novel lists signatures in discovery order (generation, then shard).
	Novel []string
	// Corpus holds the minimized reproducers, in discovery order of
	// their signatures (capped at Config.MaxCorpus).
	Corpus []*Entry
	// MinimizeRuns counts the extra chaos replays the shrinker spent.
	MinimizeRuns int
	// DirtyRuns counts runs that failed the survival audit (violations,
	// failed follow-up, fatal panic) or errored in the harness itself —
	// a campaign over a correct kernel keeps this at zero, which is what
	// the CI smoke asserts.
	DirtyRuns int
	// Dirty holds one exemplar line per distinct dirty signature.
	Dirty []string
	// Wall is the campaign's wall-clock time (not deterministic; never
	// part of the dumps).
	Wall time.Duration
}

// outcome is one run's merged result.
type outcome struct {
	sig      string
	survived bool
	err      string
}

// Run executes the campaign.
func Run(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	start := time.Now()
	rep := &Report{Config: cfg, Coverage: make(map[string]*SigStat)}

	shards := cfg.Shards
	prev := make([]*fault.Plan, shards)   // previous generation, by shard
	lineage := make([]*fault.Plan, shards) // current generation's parents (nil = fresh)
	var parents []*fault.Plan             // plans credited with novel signatures
	novelPlan := make(map[string]*fault.Plan)
	dirtySeen := make(map[string]bool)

	for gen := 0; rep.Runs < cfg.Runs; gen++ {
		count := shards
		if rem := cfg.Runs - rep.Runs; rem < count {
			count = rem
		}
		plans := nextGeneration(cfg, gen, count, prev, parents, lineage)
		outs := runGeneration(cfg, plans)

		// Merge strictly in shard order: coverage, novelty, parent
		// credit. This loop is the only place campaign state advances,
		// so worker scheduling cannot influence it.
		for s := 0; s < count; s++ {
			o := outs[s]
			rep.Runs++
			st := rep.Coverage[o.sig]
			if st == nil {
				st = &SigStat{FirstGen: gen, FirstShard: s}
				rep.Coverage[o.sig] = st
				rep.Novel = append(rep.Novel, o.sig)
				novelPlan[o.sig] = plans[s]
				parents = append(parents, plans[s])
				if lineage[s] != nil {
					parents = append(parents, lineage[s])
				}
				if len(parents) > parentPool {
					parents = parents[len(parents)-parentPool:]
				}
			}
			st.Count++
			if o.err != "" || !o.survived {
				rep.DirtyRuns++
				if !dirtySeen[o.sig] {
					dirtySeen[o.sig] = true
					line := o.sig
					if o.err != "" {
						line = "harness error: " + o.err
					}
					rep.Dirty = append(rep.Dirty, fmt.Sprintf("g%d/s%d %s", gen, s, line))
				}
			}
		}
		copy(prev, plans)
		rep.Generations = gen + 1
	}

	if cfg.MaxCorpus > 0 {
		rep.Corpus, rep.MinimizeRuns = distillCorpus(cfg, rep.Novel, novelPlan)
	}
	rep.Wall = time.Since(start)
	return rep, nil
}

// parentPool caps the novelty-credited parent pool so mutation pressure
// favours recent discoveries.
const parentPool = 64

// nextGeneration builds the generation's plans sequentially in shard
// order from a (Seed, gen)-derived rng — the deterministic heart of the
// campaign. Generation zero is all fresh seed-derived plans; later
// generations mutate the novelty parent pool (45%), hill-climb their
// own shard's previous plan (40%), or inject a fresh plan (15%).
func nextGeneration(cfg Config, gen, count int, prev, parents []*fault.Plan, lineage []*fault.Plan) []*fault.Plan {
	rng := rand.New(rand.NewSource(mix(cfg.Seed, int64(gen))))
	plans := make([]*fault.Plan, count)
	for s := 0; s < count; s++ {
		lineage[s] = nil
		if gen == 0 {
			plans[s] = freshPlan(cfg, rng.Int63())
			continue
		}
		switch p := rng.Float64(); {
		case len(parents) > 0 && p < 0.45:
			parent := parents[rng.Intn(len(parents))]
			lineage[s] = parent
			plans[s] = fault.MutatePlan(parent, rng)
		case prev[s] != nil && p < 0.85:
			lineage[s] = prev[s]
			plans[s] = fault.MutatePlan(prev[s], rng)
		default:
			plans[s] = freshPlan(cfg, rng.Int63())
		}
	}
	return plans
}

// freshPlan derives a new-blood plan from one seed draw.
func freshPlan(cfg Config, seed int64) *fault.Plan {
	classes := fault.Classes()
	if cfg.Extended {
		classes = fault.ExtendedClasses()
	}
	p := fault.NewPlan(seed, classes, cfg.RulesPerClass)
	if cfg.Crash {
		p.Rules = append(p.Rules, fault.NewCrashRules(seed, cfg.CrashRulesPerSite)...)
	}
	return p
}

// runGeneration executes one generation's plans on the bounded worker
// pool. Results land in a slice indexed by shard; nothing here mutates
// campaign state.
func runGeneration(cfg Config, plans []*fault.Plan) []outcome {
	outs := make([]outcome, len(plans))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				outs[i] = runOne(cfg, plans[i])
			}
		}()
	}
	for i := range plans {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return outs
}

// runOne executes a single isolated kernel instance under plan.
func runOne(cfg Config, plan *fault.Plan) outcome {
	rep, err := harness.RunChaos(chaosConfig(cfg, plan))
	if err != nil {
		return outcome{sig: "error " + harness.NormalizeShape(err.Error())}
	}
	return outcome{sig: harness.NormalizedSignature(rep), survived: rep.Survived()}
}

// chaosConfig maps campaign knobs onto one run's chaos config.
func chaosConfig(cfg Config, plan *fault.Plan) harness.ChaosConfig {
	return harness.ChaosConfig{
		Plan:       plan,
		Iterations: cfg.Iterations,
		NCPU:       cfg.NCPU,
		Extended:   cfg.Extended,
		Crash:      cfg.Crash,
		RedTeam:    cfg.RedTeam,
	}
}

// distillCorpus shrinks each novel signature's discovering plan into a
// minimal reproducer. Signatures are processed in discovery order with
// results merged by index, and each ddmin reduction is itself
// deterministic, so the corpus is part of the determinism artifact;
// minimizations of different signatures run concurrently.
func distillCorpus(cfg Config, novel []string, novelPlan map[string]*fault.Plan) ([]*Entry, int) {
	n := len(novel)
	if n > cfg.MaxCorpus {
		n = cfg.MaxCorpus
	}
	entries := make([]*Entry, n)
	runs := make([]int, n)
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				sig := novel[i]
				plan := novelPlan[sig]
				ccfg := chaosConfig(cfg, plan)
				res, err := harness.MinimizeTo(ccfg, harness.NormalizedSignature)
				if err != nil {
					// The baseline errored (a harness-error signature):
					// keep the un-shrunk plan as the reproducer.
					entries[i] = newEntry(cfg, sig, plan, 0)
					continue
				}
				runs[i] = res.Runs
				entries[i] = newEntry(cfg, sig, res.Plan, res.Removed)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	total := 0
	for _, r := range runs {
		total += r
	}
	return entries, total
}

// CoverageDump renders the coverage map in a byte-stable form: one line
// per signature, sorted lexicographically, with count and first-seen
// coordinates. Two campaigns with equal (Seed, Shards) produce equal
// dumps at any worker count.
func (r *Report) CoverageDump() string {
	sigs := make([]string, 0, len(r.Coverage))
	for s := range r.Coverage {
		sigs = append(sigs, s)
	}
	sort.Strings(sigs)
	var b strings.Builder
	fmt.Fprintf(&b, "campaign coverage: seed %d, %d shards, %d runs, %d signatures\n",
		r.Config.Seed, r.Config.Shards, r.Runs, len(sigs))
	for _, s := range sigs {
		st := r.Coverage[s]
		fmt.Fprintf(&b, "%5dx g%02d/s%02d %s\n", st.Count, st.FirstGen, st.FirstShard, s)
	}
	return b.String()
}

// Summary renders the human-readable result (deterministic apart from
// the trailing wall-clock line).
func (r *Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "campaign: seed %d, %d runs in %d generations (%d shards, %d workers)\n",
		r.Config.Seed, r.Runs, r.Generations, r.Config.Shards, r.Config.Workers)
	fmt.Fprintf(&b, "campaign: %d distinct signatures, %d corpus reproducers (%d shrink replays)\n",
		len(r.Coverage), len(r.Corpus), r.MinimizeRuns)
	if r.DirtyRuns > 0 {
		fmt.Fprintf(&b, "campaign: AUDIT DIRTY: %d runs failed the survival audit\n", r.DirtyRuns)
		for _, d := range r.Dirty {
			fmt.Fprintf(&b, "campaign: dirty: %s\n", d)
		}
	} else {
		fmt.Fprintf(&b, "campaign: survival audit clean: every run survived its plan\n")
	}
	secs := r.Wall.Seconds()
	if secs > 0 {
		fmt.Fprintf(&b, "campaign: wall %.1fs, %.1f runs/sec\n", secs, float64(r.Runs)/secs)
	}
	return b.String()
}

// mix hashes two seeds into one rng stream id (splitmix64 finalizer).
func mix(a, b int64) int64 {
	z := uint64(a)*0x9E3779B97F4A7C15 + uint64(b)*0xBF58476D1CE4E5B9 + 0xD1B54A32D192ED03
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z & 0x7FFFFFFFFFFFFFFF)
}
