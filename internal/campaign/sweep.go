package campaign

import (
	"fmt"
	"strings"
	"time"
)

// Throughput sweep: the vinobench-facing measurement of the campaign
// driver itself. The determinism artifacts must come out identical at
// every worker count; the sweep measures the one thing that is allowed
// to vary — wall-clock — and cross-checks the dumps while it is at it.

// SweepPoint is one worker-count measurement.
type SweepPoint struct {
	Workers    int
	Runs       int
	Wall       time.Duration
	RunsPerSec float64
	// Identical reports whether this point's coverage dump matched the
	// workers=1 baseline byte-for-byte.
	Identical bool
}

// ThroughputSweep runs the same small campaign at each worker count and
// measures runs/sec. The first point is the serial baseline; every
// later point's coverage dump is compared against it, so the sweep
// doubles as a determinism cross-check on real hardware.
func ThroughputSweep(seed int64, runs int, workerCounts []int) ([]SweepPoint, error) {
	if len(workerCounts) == 0 {
		workerCounts = []int{1, 2, 4, 8}
	}
	base := ""
	pts := make([]SweepPoint, 0, len(workerCounts))
	for i, w := range workerCounts {
		cfg := Config{
			Seed:       seed,
			Runs:       runs,
			Shards:     8,
			Workers:    w,
			Iterations: 10,
			Extended:   true,
			Crash:      true,
			MaxCorpus:  -1, // measure the driver, not the shrinker
		}
		rep, err := Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("campaign sweep workers=%d: %w", w, err)
		}
		dump := rep.CoverageDump()
		if i == 0 {
			base = dump
		}
		p := SweepPoint{
			Workers:   w,
			Runs:      rep.Runs,
			Wall:      rep.Wall,
			Identical: dump == base,
		}
		if s := rep.Wall.Seconds(); s > 0 {
			p.RunsPerSec = float64(rep.Runs) / s
		}
		pts = append(pts, p)
	}
	return pts, nil
}

// FormatThroughputSweep renders the sweep as a vinobench table.
func FormatThroughputSweep(pts []SweepPoint) string {
	var b strings.Builder
	b.WriteString("Campaign throughput vs worker-pool size (identical = coverage map matches workers-baseline)\n")
	fmt.Fprintf(&b, "%8s %6s %10s %10s %10s\n", "workers", "runs", "wall (s)", "runs/sec", "identical")
	for _, p := range pts {
		fmt.Fprintf(&b, "%8d %6d %10.2f %10.1f %10v\n", p.Workers, p.Runs, p.Wall.Seconds(), p.RunsPerSec, p.Identical)
	}
	return b.String()
}
