// Package trace is the simulated kernel's flight recorder: a fixed-size
// ring of timestamped events emitted by the graft registry (installs,
// commits, aborts, removals, watchdog fires), the lock manager
// (contention time-outs), and the VM system (evictions, graft
// overrules). Production kernels grow exactly this kind of facility the
// first time a misbehaving extension has to be diagnosed after the
// fact; the simulator's deterministic clock makes its output exactly
// reproducible.
package trace

import (
	"fmt"
	"strings"
	"time"
)

// Kind classifies an event.
type Kind string

// Event kinds emitted by the kernel's subsystems.
const (
	GraftInstall  Kind = "graft-install"
	GraftReject   Kind = "graft-reject"
	GraftCommit   Kind = "graft-commit"
	GraftAbort    Kind = "graft-abort"
	GraftRemove   Kind = "graft-remove"
	WatchdogFire  Kind = "watchdog-fire"
	LockTimeout   Kind = "lock-timeout"
	Eviction      Kind = "eviction"
	GraftOverrule Kind = "graft-overrule"
	FaultInject   Kind = "fault-inject"
	// Graft-supervisor lifecycle: a graft crossing its abort budget is
	// quarantined (invocations short-circuit to the base path), later
	// reinstated on probation after a virtual-time backoff, and expelled
	// permanently if it relapses while on probation.
	GraftQuarantine Kind = "graft-quarantine"
	GraftProbation  Kind = "graft-probation"
	GraftExpel      Kind = "graft-expel"
	// Crash containment: a classified panic caught at the kernel
	// boundary, a checkpoint of kernel state, a completed restore, and
	// a wait-for-graph snapshot taken when a deadlock is broken.
	KernelPanic Kind = "kernel-panic"
	Checkpoint  Kind = "checkpoint"
	Recovery    Kind = "recovery"
	Deadlock    Kind = "deadlock"
	// Per-graft rollback domains: a scoped recovery consolidates the
	// checkpoint ring into a domain-restore base (domain-checkpoint),
	// reverts only the offender's owner-stamped state (domain-restore),
	// or detects cross-domain entanglement and falls back to the
	// whole-kernel restore (recovery-widened).
	DomainCheckpoint Kind = "domain-checkpoint"
	DomainRestore    Kind = "domain-restore"
	RecoveryWidened  Kind = "recovery-widened"

	// Multi-tenant escalation: a tenant whose grafts keep getting
	// expelled is throttled (a deterministic share of its traffic shed),
	// then banned (all of it shed, further installs refused).
	TenantThrottle Kind = "tenant-throttle"
	TenantBan      Kind = "tenant-ban"
)

// Event is one recorded occurrence.
type Event struct {
	// At is the virtual time of the event.
	At time.Duration
	// Kind classifies it.
	Kind Kind
	// Subject names the object involved (graft point, lock, page).
	Subject string
	// Detail carries free-form context (abort reason, victim page).
	Detail string
}

// String renders one event line.
func (e Event) String() string {
	return fmt.Sprintf("[%10.3fms] %-14s %-30s %s",
		float64(e.At)/float64(time.Millisecond), e.Kind, e.Subject, e.Detail)
}

// Buffer is a fixed-capacity event ring. Not safe for concurrent use;
// the simulated kernel is single-threaded by construction.
type Buffer struct {
	ring  []Event
	next  int
	total int64
	// Enabled gates recording; disabled buffers drop events at ~zero
	// cost so tracing can stay wired in benchmarks.
	Enabled bool
}

// New creates a ring holding the most recent capacity events, enabled.
func New(capacity int) *Buffer {
	if capacity <= 0 {
		capacity = 256
	}
	return &Buffer{ring: make([]Event, 0, capacity), Enabled: true}
}

// Emit records an event.
func (b *Buffer) Emit(at time.Duration, kind Kind, subject, detail string) {
	if b == nil || !b.Enabled {
		return
	}
	b.total++
	e := Event{At: at, Kind: kind, Subject: subject, Detail: detail}
	if len(b.ring) < cap(b.ring) {
		b.ring = append(b.ring, e)
		return
	}
	b.ring[b.next] = e
	b.next = (b.next + 1) % cap(b.ring)
}

// Total reports how many events were ever emitted (including dropped).
func (b *Buffer) Total() int64 { return b.total }

// Events returns the retained events in chronological order.
func (b *Buffer) Events() []Event {
	if len(b.ring) < cap(b.ring) {
		return append([]Event(nil), b.ring...)
	}
	out := make([]Event, 0, cap(b.ring))
	out = append(out, b.ring[b.next:]...)
	out = append(out, b.ring[:b.next]...)
	return out
}

// Filter returns retained events of one kind, in order.
func (b *Buffer) Filter(kind Kind) []Event {
	var out []Event
	for _, e := range b.Events() {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

// Dump renders the retained events, newest last.
func (b *Buffer) Dump() string {
	var s strings.Builder
	for _, e := range b.Events() {
		s.WriteString(e.String())
		s.WriteByte('\n')
	}
	if dropped := b.total - int64(len(b.ring)); dropped > 0 {
		fmt.Fprintf(&s, "(%d older events dropped)\n", dropped)
	}
	return s.String()
}
