package trace

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestRingKeepsMostRecent(t *testing.T) {
	b := New(3)
	for i := 0; i < 5; i++ {
		b.Emit(time.Duration(i)*time.Millisecond, GraftCommit, "p", "")
	}
	evs := b.Events()
	if len(evs) != 3 {
		t.Fatalf("retained %d", len(evs))
	}
	if evs[0].At != 2*time.Millisecond || evs[2].At != 4*time.Millisecond {
		t.Fatalf("wrong window: %v", evs)
	}
	if b.Total() != 5 {
		t.Fatalf("total = %d", b.Total())
	}
}

func TestFilterAndDump(t *testing.T) {
	b := New(10)
	b.Emit(time.Millisecond, GraftAbort, "file/1.compute-ra", "timeout")
	b.Emit(2*time.Millisecond, LockTimeout, "resourceA", "class res")
	b.Emit(3*time.Millisecond, GraftAbort, "file/2.compute-ra", "trap")
	aborts := b.Filter(GraftAbort)
	if len(aborts) != 2 {
		t.Fatalf("aborts = %v", aborts)
	}
	d := b.Dump()
	for _, want := range []string{"graft-abort", "lock-timeout", "resourceA", "timeout"} {
		if !strings.Contains(d, want) {
			t.Errorf("dump missing %q:\n%s", want, d)
		}
	}
}

func TestDumpReportsDropped(t *testing.T) {
	b := New(2)
	for i := 0; i < 5; i++ {
		b.Emit(0, GraftCommit, "p", "")
	}
	if !strings.Contains(b.Dump(), "3 older events dropped") {
		t.Fatalf("dump = %q", b.Dump())
	}
}

func TestNilAndDisabledSafe(t *testing.T) {
	var b *Buffer
	b.Emit(0, GraftCommit, "p", "") // must not panic
	b2 := New(4)
	b2.Enabled = false
	b2.Emit(0, GraftCommit, "p", "")
	if b2.Total() != 0 || len(b2.Events()) != 0 {
		t.Fatal("disabled buffer recorded")
	}
}

// Property: after any emission sequence, Events() is chronologically
// ordered (emissions are monotonic) and at most capacity long, and the
// newest event is always retained.
func TestPropertyRingWindow(t *testing.T) {
	f := func(n uint16, capRaw uint8) bool {
		capacity := int(capRaw%32) + 1
		b := New(capacity)
		count := int(n % 200)
		for i := 0; i < count; i++ {
			b.Emit(time.Duration(i), GraftCommit, "s", "")
		}
		evs := b.Events()
		if count == 0 {
			return len(evs) == 0
		}
		if len(evs) > capacity || len(evs) == 0 {
			return false
		}
		for i := 1; i < len(evs); i++ {
			if evs[i-1].At > evs[i].At {
				return false
			}
		}
		return evs[len(evs)-1].At == time.Duration(count-1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
