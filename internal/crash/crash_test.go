package crash

import (
	"strings"
	"testing"
	"time"

	"vino/internal/simclock"
	"vino/internal/trace"
)

func TestSiteClassMapping(t *testing.T) {
	want := map[Site]Class{
		SiteDispatch: SFIBreach,
		SiteCommit:   CommitCorruption,
		SiteAbort:    AbortCorruption,
		SiteUndo:     UndoEscape,
		SiteLock:     LockInvariant,
		SiteResource: ResourceInvariant,
		SitePager:    ResourceInvariant,
		SiteAccept:   SFIBreach,
	}
	if len(Sites()) != len(want) {
		t.Fatalf("Sites() has %d entries, want %d", len(Sites()), len(want))
	}
	for s, c := range want {
		if got := SiteClass(s); got != c {
			t.Errorf("SiteClass(%s) = %s, want %s", s, got, c)
		}
	}
	if len(Classes()) != 8 { // six site classes + stall + sfi-violation
		t.Fatalf("Classes() has %d entries, want 8", len(Classes()))
	}
}

func TestParseSite(t *testing.T) {
	for _, s := range Sites() {
		got, err := ParseSite(string(s))
		if err != nil || got != s {
			t.Errorf("ParseSite(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseSite("bogus"); err == nil {
		t.Error("ParseSite accepted an unknown site")
	}
}

func TestPanicErrorFormat(t *testing.T) {
	p := &Panic{Class: CommitCorruption, Site: SiteCommit, Graft: "obj.fn#img", Reason: "injected crash"}
	got := p.Error()
	for _, part := range []string{"kernel panic", "commit-corruption", "at commit", "graft obj.fn#img", "injected crash"} {
		if !strings.Contains(got, part) {
			t.Errorf("Error() = %q, missing %q", got, part)
		}
	}
	if _, ok := IsPanic(p); !ok {
		t.Error("IsPanic rejected a *Panic")
	}
	if _, ok := IsPanic("boom"); ok {
		t.Error("IsPanic accepted a non-Panic value")
	}
}

// fakeSub is a Snapshotter over a single int.
type fakeSub struct {
	name string
	val  int
}

func (f *fakeSub) CrashName() string     { return f.name }
func (f *fakeSub) CrashSnapshot() any    { v := f.val; return &v }
func (f *fakeSub) CrashRestore(snap any) { f.val = *(snap.(*int)) }

func TestManagerCheckpointRestore(t *testing.T) {
	clock := simclock.New(0)
	tr := trace.New(64)
	m := NewManager(clock, tr, 10*time.Millisecond)
	a, b := &fakeSub{name: "a", val: 1}, &fakeSub{name: "b", val: 2}
	m.Register(a)
	m.Register(b)

	if m.HasCheckpoint() {
		t.Fatal("checkpoint before any was taken")
	}
	if !m.CheckpointDue() {
		t.Fatal("first checkpoint not due")
	}
	m.TakeCheckpoint()
	if m.CheckpointDue() {
		t.Fatal("checkpoint due immediately after taking one")
	}
	at, ok := m.CheckpointTime()
	if !ok || at != 0 {
		t.Fatalf("CheckpointTime = %v, %v", at, ok)
	}

	// Mutate, restore twice: the snapshot must not be consumed.
	a.val, b.val = 10, 20
	if got, ok := m.Restore(); !ok || got != 0 {
		t.Fatalf("Restore = %v, %v", got, ok)
	}
	if a.val != 1 || b.val != 2 {
		t.Fatalf("restored vals = %d, %d", a.val, b.val)
	}
	a.val = 99
	m.Restore()
	if a.val != 1 {
		t.Fatalf("second restore gave %d", a.val)
	}

	if evs := tr.Filter(trace.Checkpoint); len(evs) != 1 {
		t.Fatalf("checkpoint trace events = %d, want 1", len(evs))
	}
}

func TestManagerCadence(t *testing.T) {
	clock := simclock.New(0)
	m := NewManager(clock, nil, 10*time.Millisecond)
	m.TakeCheckpoint()
	clock.Advance(9 * time.Millisecond)
	if m.CheckpointIfDue() {
		t.Fatal("checkpoint taken before cadence elapsed")
	}
	clock.Advance(time.Millisecond)
	if !m.CheckpointIfDue() {
		t.Fatal("checkpoint not taken at cadence")
	}
	// Disabled cadence: due-based checkpointing off, explicit still works.
	off := NewManager(clock, nil, 0)
	if off.CheckpointDue() {
		t.Fatal("zero-cadence manager reported due")
	}
	off.TakeCheckpoint()
	if !off.HasCheckpoint() {
		t.Fatal("explicit checkpoint ignored")
	}
}

// deltaSub is a DeltaSnapshotter over a keyed int store with per-key
// generation stamps, counting full vs delta captures.
type deltaSub struct {
	name   string
	gen    func() uint64
	vals   map[int]int
	stamp  map[int]uint64
	fulls  int
	deltas int
}

func newDeltaSub(name string, gen func() uint64) *deltaSub {
	return &deltaSub{name: name, gen: gen, vals: map[int]int{}, stamp: map[int]uint64{}}
}

func (f *deltaSub) set(k, v int) {
	f.vals[k] = v
	f.stamp[k] = f.gen()
}

func (f *deltaSub) CrashName() string { return f.name }

func (f *deltaSub) CrashSnapshot() any {
	f.fulls++
	s := make(map[int]int, len(f.vals))
	for k, v := range f.vals {
		s[k] = v
	}
	return s
}

func (f *deltaSub) CrashDelta(since uint64) any {
	f.deltas++
	d := make(map[int]int)
	for k, v := range f.vals {
		if f.stamp[k] > since {
			d[k] = v
		}
	}
	if len(d) == 0 {
		return nil
	}
	return d
}

func (f *deltaSub) CrashMerge(base, delta any) any {
	d := delta.(map[int]int)
	if base == nil {
		return d
	}
	b := base.(map[int]int)
	for k, v := range d {
		b[k] = v
	}
	return b
}

func (f *deltaSub) CrashRestore(snap any) {
	s := snap.(map[int]int)
	f.vals = make(map[int]int, len(s))
	for k, v := range s {
		f.vals[k] = v
	}
	f.stamp = map[int]uint64{}
}

func TestIncrementalDeltaCapture(t *testing.T) {
	clock := simclock.New(0)
	m := NewManager(clock, nil, time.Millisecond)
	f := newDeltaSub("d", m.Gen)
	m.Register(f)

	f.set(1, 10)
	f.set(2, 20)
	m.TakeCheckpoint() // base: full capture
	if f.fulls != 1 || f.deltas != 0 {
		t.Fatalf("base capture: fulls=%d deltas=%d", f.fulls, f.deltas)
	}

	f.set(2, 22)
	clock.Advance(time.Millisecond)
	m.TakeCheckpoint() // delta capture: only key 2
	if f.deltas != 1 {
		t.Fatalf("delta capture: deltas=%d", f.deltas)
	}

	// Mutate past the checkpoint, restore, and check both keys.
	f.set(1, 99)
	f.set(3, 30)
	if at, ok := m.Restore(); !ok || at != time.Millisecond {
		t.Fatalf("Restore = %v, %v", at, ok)
	}
	if f.vals[1] != 10 || f.vals[2] != 22 || len(f.vals) != 2 {
		t.Fatalf("restored vals = %v", f.vals)
	}

	// Restore again from the same consolidated entry: not consumed.
	f.set(1, 77)
	m.Restore()
	if f.vals[1] != 10 || f.vals[2] != 22 {
		t.Fatalf("second restore gave %v", f.vals)
	}

	// Post-restore writes chain incrementally onto the consolidated
	// base: a nil delta for an untouched sub keeps the base image.
	f.set(3, 33)
	clock.Advance(time.Millisecond)
	m.TakeCheckpoint()
	m.Restore()
	if f.vals[1] != 10 || f.vals[2] != 22 || f.vals[3] != 33 {
		t.Fatalf("post-restore chain restored %v", f.vals)
	}
}

func TestNilDeltaKeepsPredecessorImage(t *testing.T) {
	clock := simclock.New(0)
	m := NewManager(clock, nil, time.Millisecond)
	f := newDeltaSub("d", m.Gen)
	m.Register(f)

	f.set(1, 1)
	m.TakeCheckpoint()
	clock.Advance(time.Millisecond)
	m.TakeCheckpoint() // nothing changed: delta is nil
	f.set(1, 5)
	if at, _ := m.Restore(); at != time.Millisecond {
		t.Fatalf("restored at %v", at)
	}
	if f.vals[1] != 1 {
		t.Fatalf("nil-delta restore gave %v", f.vals)
	}
}

func TestRingRotationAndConsolidation(t *testing.T) {
	clock := simclock.New(0)
	m := NewManager(clock, nil, time.Millisecond)
	m.SetRing(3)
	f := newDeltaSub("d", m.Gen)
	m.Register(f)

	for i := 1; i <= 5; i++ {
		f.set(i, i*10)
		m.TakeCheckpoint()
		clock.Advance(time.Millisecond)
	}
	if m.Checkpoints() != 3 {
		t.Fatalf("ring holds %d entries, want 3", m.Checkpoints())
	}
	if m.Stats().Consolidations == 0 {
		t.Fatal("ring eviction did not consolidate")
	}
	// The oldest surviving entry (t=2ms, keys 1..3) must have absorbed
	// the evicted bases.
	if at, ok := m.RestoreBefore(2500 * time.Microsecond); !ok || at != 2*time.Millisecond {
		t.Fatalf("RestoreBefore = %v, %v", at, ok)
	}
	if len(f.vals) != 3 || f.vals[1] != 10 || f.vals[3] != 30 {
		t.Fatalf("restored vals = %v", f.vals)
	}
	// Entries newer than the restore target are discarded.
	if m.Checkpoints() != 1 {
		t.Fatalf("after RestoreBefore ring holds %d entries", m.Checkpoints())
	}
}

func TestRestoreBeforeFallsBackToOldest(t *testing.T) {
	clock := simclock.New(0)
	m := NewManager(clock, nil, time.Millisecond)
	m.SetRing(2)
	f := newDeltaSub("d", m.Gen)
	m.Register(f)
	clock.Advance(time.Millisecond)
	f.set(1, 1)
	m.TakeCheckpoint()
	clock.Advance(time.Millisecond)
	f.set(1, 2)
	m.TakeCheckpoint()
	// Taint predates every checkpoint: the oldest is the best rewind.
	if at, ok := m.RestoreBefore(0); !ok || at != time.Millisecond {
		t.Fatalf("RestoreBefore(0) = %v, %v", at, ok)
	}
	if f.vals[1] != 1 {
		t.Fatalf("restored vals = %v", f.vals)
	}
}

func TestChainThresholdConsolidates(t *testing.T) {
	clock := simclock.New(0)
	m := NewManager(clock, nil, time.Millisecond)
	m.SetRing(100)
	m.SetMaxChain(2)
	f := newDeltaSub("d", m.Gen)
	m.Register(f)
	for i := 0; i < 6; i++ {
		f.set(i, i)
		m.TakeCheckpoint()
		clock.Advance(time.Millisecond)
	}
	// Ring is bounded by maxChain+1, not the large ring setting.
	if m.Checkpoints() != 3 {
		t.Fatalf("ring holds %d entries, want 3", m.Checkpoints())
	}
	m.Restore()
	if len(f.vals) != 6 {
		t.Fatalf("restored vals = %v", f.vals)
	}
}

// TestFullIncrementalEquivalence runs the same mutation script under
// full-copy and incremental capture and demands identical restores.
func TestFullIncrementalEquivalence(t *testing.T) {
	run := func(incremental bool) map[int]int {
		clock := simclock.New(0)
		m := NewManager(clock, nil, time.Millisecond)
		m.SetIncremental(incremental)
		m.SetRing(3)
		f := newDeltaSub("d", m.Gen)
		m.Register(f)
		for i := 0; i < 10; i++ {
			f.set(i%4, i*100)
			m.TakeCheckpoint()
			clock.Advance(time.Millisecond)
			if i == 6 {
				m.Restore()
			}
		}
		m.RestoreBefore(8500 * time.Microsecond)
		return f.vals
	}
	full, incr := run(false), run(true)
	if len(full) != len(incr) {
		t.Fatalf("full=%v incremental=%v", full, incr)
	}
	for k, v := range full {
		if incr[k] != v {
			t.Fatalf("key %d: full=%d incremental=%d", k, v, incr[k])
		}
	}
}

// TestLateRegistrationFallsBackToFull covers a subsystem registered
// after checkpoints already exist: the next capture must be full.
func TestLateRegistrationFallsBackToFull(t *testing.T) {
	clock := simclock.New(0)
	m := NewManager(clock, nil, time.Millisecond)
	a := newDeltaSub("a", m.Gen)
	m.Register(a)
	a.set(1, 1)
	m.TakeCheckpoint()

	b := newDeltaSub("b", m.Gen)
	m.Register(b)
	b.set(7, 70)
	clock.Advance(time.Millisecond)
	m.TakeCheckpoint()
	if a.deltas != 0 {
		t.Fatalf("post-registration capture used deltas (%d)", a.deltas)
	}
	a.set(1, 9)
	b.set(7, 99)
	m.Restore()
	if a.vals[1] != 1 || b.vals[7] != 70 {
		t.Fatalf("restored a=%v b=%v", a.vals, b.vals)
	}
}

func TestStatsAndSummary(t *testing.T) {
	clock := simclock.New(0)
	m := NewManager(clock, nil, time.Millisecond)
	m.TakeCheckpoint()
	m.RecordPanic(UndoEscape)
	m.RecordPanic(UndoEscape)
	m.RecordPanic(Stall)
	m.RecordRecovery()
	st := m.Stats()
	if st.Checkpoints != 1 || st.Panics != 3 || st.Recoveries != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.ByClass[UndoEscape] != 2 || st.ByClass[Stall] != 1 {
		t.Fatalf("ByClass = %v", st.ByClass)
	}
	sum := st.Summary()
	if !strings.Contains(sum, "panics 3") || !strings.Contains(sum, "undo-escape:2") {
		t.Fatalf("Summary = %q", sum)
	}
	// The copy must not alias the live map.
	st.ByClass[UndoEscape] = 99
	if m.Stats().ByClass[UndoEscape] != 2 {
		t.Fatal("Stats() aliased the live ByClass map")
	}
}
