package crash

import (
	"strings"
	"testing"
	"time"

	"vino/internal/simclock"
	"vino/internal/trace"
)

func TestSiteClassMapping(t *testing.T) {
	want := map[Site]Class{
		SiteDispatch: SFIBreach,
		SiteCommit:   CommitCorruption,
		SiteAbort:    AbortCorruption,
		SiteUndo:     UndoEscape,
		SiteLock:     LockInvariant,
		SiteResource: ResourceInvariant,
	}
	if len(Sites()) != len(want) {
		t.Fatalf("Sites() has %d entries, want %d", len(Sites()), len(want))
	}
	for s, c := range want {
		if got := SiteClass(s); got != c {
			t.Errorf("SiteClass(%s) = %s, want %s", s, got, c)
		}
	}
	if len(Classes()) != 7 { // the six site classes + stall
		t.Fatalf("Classes() has %d entries, want 7", len(Classes()))
	}
}

func TestParseSite(t *testing.T) {
	for _, s := range Sites() {
		got, err := ParseSite(string(s))
		if err != nil || got != s {
			t.Errorf("ParseSite(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseSite("bogus"); err == nil {
		t.Error("ParseSite accepted an unknown site")
	}
}

func TestPanicErrorFormat(t *testing.T) {
	p := &Panic{Class: CommitCorruption, Site: SiteCommit, Graft: "obj.fn#img", Reason: "injected crash"}
	got := p.Error()
	for _, part := range []string{"kernel panic", "commit-corruption", "at commit", "graft obj.fn#img", "injected crash"} {
		if !strings.Contains(got, part) {
			t.Errorf("Error() = %q, missing %q", got, part)
		}
	}
	if _, ok := IsPanic(p); !ok {
		t.Error("IsPanic rejected a *Panic")
	}
	if _, ok := IsPanic("boom"); ok {
		t.Error("IsPanic accepted a non-Panic value")
	}
}

// fakeSub is a Snapshotter over a single int.
type fakeSub struct {
	name string
	val  int
}

func (f *fakeSub) CrashName() string     { return f.name }
func (f *fakeSub) CrashSnapshot() any    { v := f.val; return &v }
func (f *fakeSub) CrashRestore(snap any) { f.val = *(snap.(*int)) }

func TestManagerCheckpointRestore(t *testing.T) {
	clock := simclock.New(0)
	tr := trace.New(64)
	m := NewManager(clock, tr, 10*time.Millisecond)
	a, b := &fakeSub{name: "a", val: 1}, &fakeSub{name: "b", val: 2}
	m.Register(a)
	m.Register(b)

	if m.HasCheckpoint() {
		t.Fatal("checkpoint before any was taken")
	}
	if !m.CheckpointDue() {
		t.Fatal("first checkpoint not due")
	}
	m.TakeCheckpoint()
	if m.CheckpointDue() {
		t.Fatal("checkpoint due immediately after taking one")
	}
	at, ok := m.CheckpointTime()
	if !ok || at != 0 {
		t.Fatalf("CheckpointTime = %v, %v", at, ok)
	}

	// Mutate, restore twice: the snapshot must not be consumed.
	a.val, b.val = 10, 20
	if got, ok := m.Restore(); !ok || got != 0 {
		t.Fatalf("Restore = %v, %v", got, ok)
	}
	if a.val != 1 || b.val != 2 {
		t.Fatalf("restored vals = %d, %d", a.val, b.val)
	}
	a.val = 99
	m.Restore()
	if a.val != 1 {
		t.Fatalf("second restore gave %d", a.val)
	}

	if evs := tr.Filter(trace.Checkpoint); len(evs) != 1 {
		t.Fatalf("checkpoint trace events = %d, want 1", len(evs))
	}
}

func TestManagerCadence(t *testing.T) {
	clock := simclock.New(0)
	m := NewManager(clock, nil, 10*time.Millisecond)
	m.TakeCheckpoint()
	clock.Advance(9 * time.Millisecond)
	if m.CheckpointIfDue() {
		t.Fatal("checkpoint taken before cadence elapsed")
	}
	clock.Advance(time.Millisecond)
	if !m.CheckpointIfDue() {
		t.Fatal("checkpoint not taken at cadence")
	}
	// Disabled cadence: due-based checkpointing off, explicit still works.
	off := NewManager(clock, nil, 0)
	if off.CheckpointDue() {
		t.Fatal("zero-cadence manager reported due")
	}
	off.TakeCheckpoint()
	if !off.HasCheckpoint() {
		t.Fatal("explicit checkpoint ignored")
	}
}

func TestStatsAndSummary(t *testing.T) {
	clock := simclock.New(0)
	m := NewManager(clock, nil, time.Millisecond)
	m.TakeCheckpoint()
	m.RecordPanic(UndoEscape)
	m.RecordPanic(UndoEscape)
	m.RecordPanic(Stall)
	m.RecordRecovery()
	st := m.Stats()
	if st.Checkpoints != 1 || st.Panics != 3 || st.Recoveries != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.ByClass[UndoEscape] != 2 || st.ByClass[Stall] != 1 {
		t.Fatalf("ByClass = %v", st.ByClass)
	}
	sum := st.Summary()
	if !strings.Contains(sum, "panics 3") || !strings.Contains(sum, "undo-escape:2") {
		t.Fatalf("Summary = %q", sum)
	}
	// The copy must not alias the live map.
	st.ByClass[UndoEscape] = 99
	if m.Stats().ByClass[UndoEscape] != 2 {
		t.Fatal("Stats() aliased the live ByClass map")
	}
}
