// Package crash is the kernel-panic containment and recovery subsystem.
// The paper's transaction system survives graft misbehaviour, but a
// fault that escapes the sandbox — corruption inside commit or abort
// processing itself — still takes the kernel down (§6). This package
// closes that hole for the simulated kernel: panics are classified at
// the dispatcher boundary instead of crashing the process, kernel state
// is checkpointed at a configurable virtual-time cadence, and recovery
// restores the last checkpoint and resumes at its time frontier.
//
// The package owns only the taxonomy and the checkpoint store; the
// recovery orchestration (drain threads, restore snapshots, feed the
// guard ledger, reset clocks) lives in the kernel, which knows the
// subsystems. Everything here is deterministic: checkpoints are taken
// at quiescent points in virtual time, snapshots are deep copies of
// simulation state, and no wall-clock or randomness is consulted.
package crash

import (
	"fmt"
	"time"

	"vino/internal/simclock"
	"vino/internal/trace"
)

// Class buckets a kernel panic by what went wrong. The taxonomy mirrors
// the escape routes §6 admits: corruption inside commit/abort/undo
// processing, a sandbox breach outside any transaction, a broken
// invariant in the lock or resource manager, and an event-loop stall.
type Class string

// Panic classes, in canonical order (see Classes).
const (
	// UndoEscape is a panic that escaped an undo handler during abort
	// processing — the transaction system's own recovery path failed.
	UndoEscape Class = "undo-escape"
	// CommitCorruption is a fault inside commit processing.
	CommitCorruption Class = "commit-corruption"
	// AbortCorruption is a fault inside abort processing, outside the
	// undo handlers themselves.
	AbortCorruption Class = "abort-corruption"
	// SFIBreach is a sandbox trap outside any transaction — the graft
	// dispatcher had no transaction to abort into.
	SFIBreach Class = "sfi-breach"
	// LockInvariant is a broken lock-manager invariant (e.g. a release
	// that corrupts the wait queue).
	LockInvariant Class = "lock-invariant"
	// ResourceInvariant is a broken resource-account invariant.
	ResourceInvariant Class = "resource-invariant"
	// Stall is an event-loop deadlock: every thread blocked with no
	// timer pending, detected by the scheduler.
	Stall Class = "stall"
)

// Classes returns every panic class in canonical order.
func Classes() []Class {
	return []Class{UndoEscape, CommitCorruption, AbortCorruption, SFIBreach, LockInvariant, ResourceInvariant, Stall}
}

// Site names a code location where an injected crash can strike. Sites
// are referenced by fault rules (`site=commit`) so a plan can aim a
// crash inside commit, abort, or undo processing specifically.
type Site string

// Crash sites, in canonical order (see Sites).
const (
	// SiteDispatch crashes in the graft dispatcher, outside any
	// transaction (classified as an SFI breach).
	SiteDispatch Site = "dispatch"
	// SiteCommit crashes inside transaction commit processing.
	SiteCommit Site = "commit"
	// SiteAbort crashes inside abort processing, before the undo loop.
	SiteAbort Site = "abort"
	// SiteUndo crashes inside an undo handler during abort processing.
	SiteUndo Site = "undo"
	// SiteLock crashes inside the lock manager's release path.
	SiteLock Site = "lock"
	// SiteResource crashes inside resource-account release processing.
	SiteResource Site = "resource"
)

// Sites returns every crash site in canonical order. The order is
// frozen: fault plans index it when deriving per-site rules.
func Sites() []Site {
	return []Site{SiteDispatch, SiteCommit, SiteAbort, SiteUndo, SiteLock, SiteResource}
}

// SiteClass maps a crash site to the panic class a crash there
// manifests as.
func SiteClass(s Site) Class {
	switch s {
	case SiteCommit:
		return CommitCorruption
	case SiteAbort:
		return AbortCorruption
	case SiteUndo:
		return UndoEscape
	case SiteLock:
		return LockInvariant
	case SiteResource:
		return ResourceInvariant
	default:
		return SFIBreach
	}
}

// ParseSite validates a site token from a fault-plan file.
func ParseSite(s string) (Site, error) {
	for _, site := range Sites() {
		if string(site) == s {
			return site, nil
		}
	}
	return "", fmt.Errorf("crash: unknown site %q", s)
}

// Panic is a classified kernel panic: the typed payload that rides the
// Go panic from the crash site to the kernel boundary. It implements
// error so it survives the scheduler's thread-panic wrapping and can be
// recovered with errors.As.
type Panic struct {
	// Class is the taxonomy bucket.
	Class Class
	// Site is where the crash struck ("" for panics not raised at a
	// known site, e.g. a synthesized stall).
	Site Site
	// Graft is the guard key of the graft whose dispatch was active
	// when the panic struck ("" if none) — recovery feeds its abort
	// into the health ledger so repeat offenders still escalate.
	Graft string
	// Reason is the human-readable cause.
	Reason string
}

// Error implements error.
func (p *Panic) Error() string {
	s := fmt.Sprintf("kernel panic [%s]", p.Class)
	if p.Site != "" {
		s += fmt.Sprintf(" at %s", p.Site)
	}
	if p.Graft != "" {
		s += fmt.Sprintf(" graft %s", p.Graft)
	}
	if p.Reason != "" {
		s += ": " + p.Reason
	}
	return s
}

// IsPanic reports whether a recovered panic value is a classified
// kernel panic. It sees through nothing: crash panics travel as the
// *Panic itself so transaction recover sites can re-throw them without
// absorbing them into an abort.
func IsPanic(r any) (*Panic, bool) {
	p, ok := r.(*Panic)
	return p, ok
}

// Snapshotter is implemented by each subsystem whose state a checkpoint
// captures. CrashSnapshot returns an opaque deep copy; CrashRestore
// replaces live state with the copy's content. Both run at quiescent
// points (no simulated thread mid-operation), so implementations need
// no locking and may rebuild volatile state (wait queues, fd tables)
// empty, as a reboot would.
type Snapshotter interface {
	// CrashName identifies the subsystem in checkpoint traces.
	CrashName() string
	// CrashSnapshot deep-copies restorable state.
	CrashSnapshot() any
	// CrashRestore replaces live state with a snapshot previously
	// returned by CrashSnapshot. Restore may run more than once from
	// the same snapshot (repeated crashes in one checkpoint window),
	// so it must not consume or alias the snapshot's internals.
	CrashRestore(snap any)
}

// Stats counts containment events.
type Stats struct {
	// Checkpoints taken.
	Checkpoints int64
	// Panics contained (classified at the kernel boundary).
	Panics int64
	// Recoveries completed (always ≤ Panics; a panic with no
	// checkpoint available is fatal and not recovered).
	Recoveries int64
	// ByClass buckets contained panics by taxonomy class.
	ByClass map[Class]int64
}

// checkpoint is one captured kernel image.
type checkpoint struct {
	seq  int64
	at   time.Duration
	snap []any // parallel to Manager.subs
}

// Manager owns the checkpoint store: registered subsystem snapshotters,
// the cadence, and the most recent image. It is passive — the kernel
// decides when CheckpointIfDue and Restore run (only at quiescent
// points between scheduler rounds; goroutine stacks cannot be
// snapshotted, so a checkpoint never captures a mid-flight thread).
type Manager struct {
	clock *simclock.Clock
	tr    *trace.Buffer
	every time.Duration
	subs  []Snapshotter
	last  *checkpoint
	seq   int64
	stats Stats
}

// NewManager creates a checkpoint manager with the given cadence. A
// zero or negative cadence disables due-based checkpointing (explicit
// TakeCheckpoint calls still work).
func NewManager(clock *simclock.Clock, tr *trace.Buffer, every time.Duration) *Manager {
	return &Manager{clock: clock, tr: tr, every: every, stats: Stats{ByClass: make(map[Class]int64)}}
}

// Register adds a subsystem to the checkpoint set. Registration order
// is restore order; register dependencies first.
func (m *Manager) Register(s Snapshotter) { m.subs = append(m.subs, s) }

// Every returns the configured cadence.
func (m *Manager) Every() time.Duration { return m.every }

// CheckpointDue reports whether the cadence has elapsed since the last
// checkpoint (or since time zero if none has been taken).
func (m *Manager) CheckpointDue() bool {
	if m.every <= 0 {
		return false
	}
	if m.last == nil {
		return true
	}
	return m.clock.Now()-m.last.at >= m.every
}

// TakeCheckpoint captures a new kernel image at the current virtual
// time, replacing the previous one, and emits a checkpoint trace event.
func (m *Manager) TakeCheckpoint() {
	m.seq++
	cp := &checkpoint{seq: m.seq, at: m.clock.Now(), snap: make([]any, len(m.subs))}
	for i, s := range m.subs {
		cp.snap[i] = s.CrashSnapshot()
	}
	m.last = cp
	m.stats.Checkpoints++
	if m.tr != nil {
		m.tr.Emit(cp.at, trace.Checkpoint, "kernel",
			fmt.Sprintf("checkpoint %d (%d subsystems)", cp.seq, len(m.subs)))
	}
}

// CheckpointIfDue takes a checkpoint when the cadence has elapsed.
// Returns whether one was taken.
func (m *Manager) CheckpointIfDue() bool {
	if !m.CheckpointDue() {
		return false
	}
	m.TakeCheckpoint()
	return true
}

// HasCheckpoint reports whether a restore target exists.
func (m *Manager) HasCheckpoint() bool { return m.last != nil }

// CheckpointTime returns the virtual time of the last checkpoint.
func (m *Manager) CheckpointTime() (time.Duration, bool) {
	if m.last == nil {
		return 0, false
	}
	return m.last.at, true
}

// Restore replays the last checkpoint into every registered subsystem,
// in registration order, and returns its virtual time. The caller (the
// kernel) is responsible for draining dead threads first and resetting
// clocks after.
func (m *Manager) Restore() (time.Duration, bool) {
	if m.last == nil {
		return 0, false
	}
	for i, s := range m.subs {
		s.CrashRestore(m.last.snap[i])
	}
	return m.last.at, true
}

// RecordPanic accounts one contained panic.
func (m *Manager) RecordPanic(c Class) {
	m.stats.Panics++
	m.stats.ByClass[c]++
}

// RecordRecovery accounts one completed recovery.
func (m *Manager) RecordRecovery() { m.stats.Recoveries++ }

// Stats returns a copy of the counters (ByClass is copied too).
func (m *Manager) Stats() Stats {
	s := m.stats
	s.ByClass = make(map[Class]int64, len(m.stats.ByClass))
	for k, v := range m.stats.ByClass {
		s.ByClass[k] = v
	}
	return s
}

// Summary renders the containment counters, classes in canonical
// order, zero-count classes omitted.
func (s Stats) Summary() string {
	out := fmt.Sprintf("checkpoints %d, panics %d, recoveries %d", s.Checkpoints, s.Panics, s.Recoveries)
	detail := ""
	for _, c := range Classes() {
		if n := s.ByClass[c]; n > 0 {
			if detail != "" {
				detail += ", "
			}
			detail += fmt.Sprintf("%s:%d", c, n)
		}
	}
	if detail != "" {
		out += " (" + detail + ")"
	}
	return out
}
