// Package crash is the kernel-panic containment and recovery subsystem.
// The paper's transaction system survives graft misbehaviour, but a
// fault that escapes the sandbox — corruption inside commit or abort
// processing itself — still takes the kernel down (§6). This package
// closes that hole for the simulated kernel: panics are classified at
// the dispatcher boundary instead of crashing the process, kernel state
// is checkpointed at a configurable virtual-time cadence, and recovery
// restores a checkpoint and resumes at its time frontier.
//
// The package owns only the taxonomy and the checkpoint store; the
// recovery orchestration (drain threads, restore snapshots, feed the
// guard ledger, reset clocks) lives in the kernel, which knows the
// subsystems. Everything here is deterministic: checkpoints are taken
// at quiescent points in virtual time, snapshots are deep copies of
// simulation state, and no wall-clock or randomness is consulted.
//
// Checkpoints are incremental by default. The store is a bounded ring
// of entries forming one chain: the oldest entry holds full per-
// subsystem snapshots (the base) and each later entry holds only the
// state changed since its predecessor, as reported by subsystems that
// implement DeltaSnapshotter. Chains are consolidated — deltas folded
// into the base — on restore, on ring eviction, and past a length
// threshold, so both checkpoint capture and repeated restores cost
// O(state changed) rather than O(total kernel state).
package crash

import (
	"fmt"
	"time"

	"vino/internal/simclock"
	"vino/internal/trace"
)

// Class buckets a kernel panic by what went wrong. The taxonomy mirrors
// the escape routes §6 admits: corruption inside commit/abort/undo
// processing, a sandbox breach outside any transaction, a broken
// invariant in the lock or resource manager, and an event-loop stall.
type Class string

// Panic classes, in canonical order (see Classes).
const (
	// UndoEscape is a panic that escaped an undo handler during abort
	// processing — the transaction system's own recovery path failed.
	UndoEscape Class = "undo-escape"
	// CommitCorruption is a fault inside commit processing.
	CommitCorruption Class = "commit-corruption"
	// AbortCorruption is a fault inside abort processing, outside the
	// undo handlers themselves.
	AbortCorruption Class = "abort-corruption"
	// SFIBreach is a sandbox trap outside any transaction — the graft
	// dispatcher had no transaction to abort into.
	SFIBreach Class = "sfi-breach"
	// LockInvariant is a broken lock-manager invariant (e.g. a release
	// that corrupts the wait queue).
	LockInvariant Class = "lock-invariant"
	// ResourceInvariant is a broken resource-account invariant.
	ResourceInvariant Class = "resource-invariant"
	// Stall is an event-loop deadlock: every thread blocked with no
	// timer pending, detected by the scheduler.
	Stall Class = "stall"
	// SFIViolation is a compartment region-check trap escalated by the
	// dispatcher: a graft tried to read or write memory its per-region
	// layout denies (OOB into kernel-exported data, a stack pivot, a
	// write through a revoked grant). The transaction has already
	// aborted; the panic routes the offender through checkpointed
	// recovery and the guard ledger. Appended after Stall so the frozen
	// fault-plan site/class derivations are untouched.
	SFIViolation Class = "sfi-violation"
)

// Classes returns every panic class in canonical order.
func Classes() []Class {
	return []Class{UndoEscape, CommitCorruption, AbortCorruption, SFIBreach, LockInvariant, ResourceInvariant, Stall, SFIViolation}
}

// Site names a code location where an injected crash can strike. Sites
// are referenced by fault rules (`site=commit`) so a plan can aim a
// crash inside commit, abort, or undo processing specifically.
type Site string

// Crash sites, in canonical order (see Sites).
const (
	// SiteDispatch crashes in the graft dispatcher, outside any
	// transaction (classified as an SFI breach).
	SiteDispatch Site = "dispatch"
	// SiteCommit crashes inside transaction commit processing.
	SiteCommit Site = "commit"
	// SiteAbort crashes inside abort processing, before the undo loop.
	SiteAbort Site = "abort"
	// SiteUndo crashes inside an undo handler during abort processing.
	SiteUndo Site = "undo"
	// SiteLock crashes inside the lock manager's release path.
	SiteLock Site = "lock"
	// SiteResource crashes inside resource-account release processing.
	SiteResource Site = "resource"
	// SitePager crashes inside the pager mid-eviction: the victim is
	// chosen and any write-back accounted, but its frame has not been
	// released — restore runs against in-flight page-out state.
	SitePager Site = "pager"
	// SiteAccept crashes in the network stack mid-accept: the
	// connection object exists and churn faults have run, but the
	// accept graft has not yet been consulted.
	SiteAccept Site = "accept"
)

// Sites returns every crash site in canonical order. The order is
// frozen: fault plans index it. New sites are appended, never
// reordered.
func Sites() []Site {
	return []Site{SiteDispatch, SiteCommit, SiteAbort, SiteUndo, SiteLock, SiteResource, SitePager, SiteAccept}
}

// SiteClass maps a crash site to the panic class a crash there
// manifests as.
func SiteClass(s Site) Class {
	switch s {
	case SiteCommit:
		return CommitCorruption
	case SiteAbort:
		return AbortCorruption
	case SiteUndo:
		return UndoEscape
	case SiteLock:
		return LockInvariant
	case SitePager, SiteResource:
		// A pager crash strikes inside frame accounting: the victim's
		// residency, queue linkage and account charge are mid-update.
		return ResourceInvariant
	default:
		return SFIBreach
	}
}

// ParseSite validates a site token from a fault-plan file.
func ParseSite(s string) (Site, error) {
	for _, site := range Sites() {
		if string(site) == s {
			return site, nil
		}
	}
	return "", fmt.Errorf("crash: unknown site %q", s)
}

// Panic is a classified kernel panic: the typed payload that rides the
// Go panic from the crash site to the kernel boundary. It implements
// error so it survives the scheduler's thread-panic wrapping and can be
// recovered with errors.As.
type Panic struct {
	// Class is the taxonomy bucket.
	Class Class
	// Site is where the crash struck ("" for panics not raised at a
	// known site, e.g. a synthesized stall).
	Site Site
	// Graft is the guard key of the graft whose dispatch was active
	// when the panic struck ("" if none) — recovery feeds its abort
	// into the health ledger so repeat offenders still escalate.
	Graft string
	// Reason is the human-readable cause.
	Reason string
	// TaintedAt, when non-zero, is the virtual time at which the
	// damage is believed to have begun (delayed detection): recovery
	// restores the newest checkpoint predating it rather than the
	// newest checkpoint overall. Zero means detection was immediate.
	TaintedAt time.Duration
}

// Error implements error.
func (p *Panic) Error() string {
	s := fmt.Sprintf("kernel panic [%s]", p.Class)
	if p.Site != "" {
		s += fmt.Sprintf(" at %s", p.Site)
	}
	if p.Graft != "" {
		s += fmt.Sprintf(" graft %s", p.Graft)
	}
	if p.Reason != "" {
		s += ": " + p.Reason
	}
	return s
}

// IsPanic reports whether a recovered panic value is a classified
// kernel panic. It sees through nothing: crash panics travel as the
// *Panic itself so transaction recover sites can re-throw them without
// absorbing them into an abort.
func IsPanic(r any) (*Panic, bool) {
	p, ok := r.(*Panic)
	return p, ok
}

// Snapshotter is implemented by each subsystem whose state a checkpoint
// captures. CrashSnapshot returns an opaque deep copy; CrashRestore
// replaces live state with the copy's content. Both run at quiescent
// points (no simulated thread mid-operation), so implementations need
// no locking and may rebuild volatile state (wait queues, fd tables)
// empty, as a reboot would.
type Snapshotter interface {
	// CrashName identifies the subsystem in checkpoint traces.
	CrashName() string
	// CrashSnapshot deep-copies restorable state.
	CrashSnapshot() any
	// CrashRestore replaces live state with a snapshot previously
	// returned by CrashSnapshot. Restore may run more than once from
	// the same snapshot (repeated crashes in one checkpoint window),
	// so it must not consume or alias the snapshot's internals.
	CrashRestore(snap any)
}

// DeltaSnapshotter is the incremental extension of Snapshotter. The
// Manager issues generation numbers: every checkpoint capture is
// stamped with the generation current at capture time (see Gen), and
// subsystems stamp their mutations with Gen() so a later CrashDelta can
// report exactly the state touched since a previous capture.
//
// The contract mirrors CrashSnapshot's: deltas are deep copies taken at
// quiescent points. Over-reporting (including an unchanged item at its
// current value) is harmless; under-reporting corrupts restores.
type DeltaSnapshotter interface {
	Snapshotter
	// CrashDelta deep-copies the state modified in generations strictly
	// after sinceGen (i.e. items whose modification stamp exceeds
	// sinceGen, plus anything too cheap or too volatile to track
	// per-item). A nil return reports "nothing changed" and the
	// Manager keeps the predecessor's image for this subsystem.
	CrashDelta(sinceGen uint64) any
	// CrashMerge folds delta (a CrashDelta result) into base (a
	// CrashSnapshot result or prior merge), returning a full snapshot
	// equivalent to a CrashSnapshot taken at the delta's generation.
	// base may be mutated and returned; delta must be left usable by
	// the merged result (its internals may be adopted, not copied).
	// A nil base converts the delta of a subsystem registered after
	// the base checkpoint — whose delta therefore covers its whole
	// lifetime — into a full snapshot.
	CrashMerge(base, delta any) any
}

// Stats counts containment events.
type Stats struct {
	// Checkpoints taken.
	Checkpoints int64
	// Panics contained (classified at the kernel boundary).
	Panics int64
	// Recoveries completed (always ≤ Panics; a panic with no
	// checkpoint available is fatal and not recovered).
	Recoveries int64
	// Consolidations counts delta-chain folds (ring eviction, chain
	// threshold, and restore-time consolidation).
	Consolidations int64
	// ScopedRecoveries counts recoveries that restored only the
	// offending graft's rollback domain (included in Recoveries).
	ScopedRecoveries int64
	// WidenedRecoveries counts scoped-recovery attempts that detected
	// cross-domain entanglement and fell back to a whole-kernel restore.
	WidenedRecoveries int64
	// RolledBackBytes accumulates the state payload reverted by scoped
	// (domain) restores.
	RolledBackBytes int64
	// ByClass buckets contained panics by taxonomy class.
	ByClass map[Class]int64
}

// checkpoint is one entry of the checkpoint ring. The oldest entry
// holds full per-subsystem snapshots; later entries hold per-subsystem
// deltas since their predecessor (delta=true), except that subsystems
// without delta support store a fresh full copy in every entry.
type checkpoint struct {
	seq   int64
	gen   uint64
	at    time.Duration
	snap  []any // parallel to Manager.subs at capture time
	delta bool
	// tainted records that a subsystem audit reported an invariant
	// inconsistency in the live state this entry captured — evidence
	// that the damage predates the capture (see EvidenceTaint).
	tainted bool
}

// DefaultMaxChain bounds the number of delta entries chained onto a
// base before the oldest delta is folded in, independent of ring size.
const DefaultMaxChain = 8

// Manager owns the checkpoint store: registered subsystem snapshotters,
// the cadence, and the checkpoint ring. It is passive — the kernel
// decides when CheckpointIfDue and Restore run (only at quiescent
// points between scheduler rounds; goroutine stacks cannot be
// snapshotted, so a checkpoint never captures a mid-flight thread).
type Manager struct {
	clock       *simclock.Clock
	tr          *trace.Buffer
	every       time.Duration
	subs        []Snapshotter
	entries     []*checkpoint // entries[0] is the full base; invariant: !entries[0].delta
	ring        int
	maxChain    int
	incremental bool
	seq         int64
	gen         uint64
	stats       Stats
	persistDir  string
	persistErr  error
}

// NewManager creates a checkpoint manager with the given cadence. A
// zero or negative cadence disables due-based checkpointing (explicit
// TakeCheckpoint calls still work). The manager starts in incremental
// mode with a ring of one.
func NewManager(clock *simclock.Clock, tr *trace.Buffer, every time.Duration) *Manager {
	return &Manager{
		clock:       clock,
		tr:          tr,
		every:       every,
		ring:        1,
		maxChain:    DefaultMaxChain,
		incremental: true,
		gen:         1,
		stats:       Stats{ByClass: make(map[Class]int64)},
	}
}

// Register adds a subsystem to the checkpoint set. Registration order
// is restore order; register dependencies first.
func (m *Manager) Register(s Snapshotter) { m.subs = append(m.subs, s) }

// Every returns the configured cadence.
func (m *Manager) Every() time.Duration { return m.every }

// SetRing bounds the checkpoint ring at n entries (restore targets);
// values below one are clamped to one.
func (m *Manager) SetRing(n int) {
	if n < 1 {
		n = 1
	}
	m.ring = n
	m.trim()
}

// Ring returns the configured ring size.
func (m *Manager) Ring() int { return m.ring }

// SetIncremental switches between incremental (base + delta chain) and
// full-copy capture. Restored state is byte-identical either way; only
// the capture cost differs.
func (m *Manager) SetIncremental(on bool) { m.incremental = on }

// Incremental reports whether captures are incremental.
func (m *Manager) Incremental() bool { return m.incremental }

// SetMaxChain sets the delta-chain length threshold; values below one
// are clamped to one.
func (m *Manager) SetMaxChain(n int) {
	if n < 1 {
		n = 1
	}
	m.maxChain = n
	m.trim()
}

// Gen returns the current generation. Subsystems stamp mutations with
// it; a capture records the generation current at capture time and the
// generation then advances, so "modified at a stamp greater than a
// capture's generation" means "modified after that capture".
func (m *Manager) Gen() uint64 { return m.gen }

// Checkpoints reports the current number of ring entries.
func (m *Manager) Checkpoints() int { return len(m.entries) }

// CheckpointDue reports whether the cadence has elapsed since the last
// checkpoint (or since time zero if none has been taken).
func (m *Manager) CheckpointDue() bool {
	if m.every <= 0 {
		return false
	}
	if len(m.entries) == 0 {
		return true
	}
	return m.clock.Now()-m.entries[len(m.entries)-1].at >= m.every
}

// TakeCheckpoint captures a new kernel image at the current virtual
// time and appends it to the ring, evicting (folding) the oldest entry
// when the ring or chain bound is exceeded, and emits a checkpoint
// trace event. In incremental mode the capture asks each subsystem
// only for state changed since the previous entry's generation.
func (m *Manager) TakeCheckpoint() {
	m.seq++
	cp := &checkpoint{seq: m.seq, gen: m.gen, at: m.clock.Now(), snap: make([]any, len(m.subs))}
	var prev *checkpoint
	if len(m.entries) > 0 {
		prev = m.entries[len(m.entries)-1]
	}
	// A subsystem registered after the previous entry leaves the snap
	// arrays unaligned; fall back to a full capture for that entry.
	if m.incremental && prev != nil && len(prev.snap) == len(m.subs) {
		cp.delta = true
		for i, s := range m.subs {
			if d, ok := s.(DeltaSnapshotter); ok {
				cp.snap[i] = d.CrashDelta(prev.gen)
			} else {
				cp.snap[i] = s.CrashSnapshot()
			}
		}
	} else {
		for i, s := range m.subs {
			cp.snap[i] = s.CrashSnapshot()
		}
	}
	m.gen++
	for _, s := range m.subs {
		if a, ok := s.(Auditor); ok && len(a.CrashAudit()) > 0 {
			cp.tainted = true
			break
		}
	}
	m.entries = append(m.entries, cp)
	m.trim()
	m.stats.Checkpoints++
	if m.tr != nil {
		m.tr.Emit(cp.at, trace.Checkpoint, "kernel",
			fmt.Sprintf("checkpoint %d (%d subsystems)", cp.seq, len(m.subs)))
	}
	m.persist(cp)
}

// trim folds the oldest entries until the ring and chain bounds hold.
func (m *Manager) trim() {
	limit := m.ring
	if limit > m.maxChain+1 {
		limit = m.maxChain + 1
	}
	if limit < 1 {
		limit = 1
	}
	for len(m.entries) > limit {
		m.foldOldest()
	}
}

// foldOldest consolidates the base entry into its successor, which
// becomes the new base. Cost is O(successor's delta), not O(base):
// merges adopt the base's structures and graft the delta on.
func (m *Manager) foldOldest() {
	base, next := m.entries[0], m.entries[1]
	if next.delta {
		merged := make([]any, len(next.snap))
		for i, s := range m.subs {
			if i >= len(next.snap) {
				break
			}
			var bs any
			if i < len(base.snap) {
				bs = base.snap[i]
			}
			if d, ok := s.(DeltaSnapshotter); ok {
				if next.snap[i] == nil {
					merged[i] = bs
				} else {
					merged[i] = d.CrashMerge(bs, next.snap[i])
				}
			} else {
				merged[i] = next.snap[i]
			}
		}
		next.snap = merged
		next.delta = false
		m.stats.Consolidations++
	}
	m.entries = m.entries[1:]
}

// CheckpointIfDue takes a checkpoint when the cadence has elapsed.
// Returns whether one was taken.
func (m *Manager) CheckpointIfDue() bool {
	if !m.CheckpointDue() {
		return false
	}
	m.TakeCheckpoint()
	return true
}

// HasCheckpoint reports whether a restore target exists.
func (m *Manager) HasCheckpoint() bool { return len(m.entries) > 0 }

// CheckpointTime returns the virtual time of the newest checkpoint.
func (m *Manager) CheckpointTime() (time.Duration, bool) {
	if len(m.entries) == 0 {
		return 0, false
	}
	return m.entries[len(m.entries)-1].at, true
}

// Restore replays the newest checkpoint into every registered
// subsystem, in registration order, and returns its virtual time. The
// caller (the kernel) is responsible for draining dead threads first
// and resetting clocks after.
func (m *Manager) Restore() (time.Duration, bool) {
	return m.restoreIndex(len(m.entries) - 1)
}

// RestoreBefore replays the newest checkpoint whose virtual time
// strictly predates cutoff — the delayed-detection case, where damage
// is believed to have begun at cutoff and the newest image may already
// be tainted. When every entry is at or after the cutoff the oldest
// entry is restored (the best available rewind). Entries newer than
// the restored one are discarded: their images postdate the taint.
func (m *Manager) RestoreBefore(cutoff time.Duration) (time.Duration, bool) {
	idx := 0
	for i, cp := range m.entries {
		if cp.at < cutoff {
			idx = i
		}
	}
	return m.restoreIndex(idx)
}

// restoreIndex consolidates entries[0..k] into a single full image,
// drops newer entries, and applies it. The consolidated entry remains
// in the ring: restore does not consume the checkpoint, so repeated
// restores from one window replay the same image, and the next
// incremental capture chains onto it.
func (m *Manager) restoreIndex(k int) (time.Duration, bool) {
	if k < 0 || len(m.entries) == 0 {
		return 0, false
	}
	m.entries = m.entries[:k+1]
	for len(m.entries) > 1 {
		m.foldOldest()
	}
	cp := m.entries[0]
	if cp.delta {
		// Unreachable (entries[0] is always a full base), kept as a
		// guard against a corrupted ring.
		panic("crash: restore target is an unconsolidated delta")
	}
	for i, s := range m.subs {
		if i < len(cp.snap) {
			s.CrashRestore(cp.snap[i])
		}
	}
	return cp.at, true
}

// RecordPanic accounts one contained panic.
func (m *Manager) RecordPanic(c Class) {
	m.stats.Panics++
	m.stats.ByClass[c]++
}

// RecordRecovery accounts one completed recovery.
func (m *Manager) RecordRecovery() { m.stats.Recoveries++ }

// Stats returns a copy of the counters (ByClass is copied too).
func (m *Manager) Stats() Stats {
	s := m.stats
	s.ByClass = make(map[Class]int64, len(m.stats.ByClass))
	for k, v := range m.stats.ByClass {
		s.ByClass[k] = v
	}
	return s
}

// Summary renders the containment counters, classes in canonical
// order, zero-count classes omitted.
func (s Stats) Summary() string {
	out := fmt.Sprintf("checkpoints %d, panics %d, recoveries %d", s.Checkpoints, s.Panics, s.Recoveries)
	detail := ""
	for _, c := range Classes() {
		if n := s.ByClass[c]; n > 0 {
			if detail != "" {
				detail += ", "
			}
			detail += fmt.Sprintf("%s:%d", c, n)
		}
	}
	if detail != "" {
		out += " (" + detail + ")"
	}
	return out
}
