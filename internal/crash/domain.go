package crash

import (
	"time"

	"vino/internal/sched"
)

// Per-graft rollback domains. A domain is the slice of checkpointed
// state owned by one graft: the fs blocks and vmm pages it dirtied
// (stamped with its guard key at write time), its in-flight transaction
// undo stacks and held locks. Kernel-global state — scheduler, clock,
// log, listeners, every write made outside a graft dispatch — belongs
// to the shared base domain (owner "") and is never reverted by a
// scoped restore: completed shared writes are durable across a
// domain-scoped recovery, which is exactly what lets non-offender
// transactions survive.
//
// A scoped restore does not keep separate per-domain snapshot chains.
// It consolidates the existing ring to its newest full image and asks
// each DomainScoper subsystem to revert only the offender's
// owner-stamped state to that image, leaving everything else live. The
// kernel widens to a whole-kernel restore when cross-domain writes are
// detected (see Manager.DomainConflicts and the kernel's lock
// entanglement check).

// ownerLocal is the thread-local slot carrying the current rollback
// domain owner (a graft guard key, or "" for the shared base domain).
const ownerLocal = "crash.owner"

// SetOwner stamps t's subsequent kernel-state writes with the given
// rollback-domain owner and returns the previous owner so callers can
// restore it (graft dispatch nests). An empty owner reverts the thread
// to the shared base domain. Nil threads are tolerated (no-op).
func SetOwner(t *sched.Thread, owner string) (prev string) {
	if t == nil {
		return ""
	}
	prev, _ = t.Local(ownerLocal).(string)
	if owner == "" {
		t.SetLocal(ownerLocal, nil)
	} else {
		t.SetLocal(ownerLocal, owner)
	}
	return prev
}

// Owner returns the rollback-domain owner currently stamped on t (""
// for the shared base domain, and for nil threads).
func Owner(t *sched.Thread) string {
	if t == nil {
		return ""
	}
	o, _ := t.Local(ownerLocal).(string)
	return o
}

// DomainScoper is implemented by subsystems whose dirty tracking
// carries owner stamps (fs blocks, vmm pages) and that can therefore
// revert a single owner's post-checkpoint writes without disturbing
// anyone else's.
type DomainScoper interface {
	Snapshotter
	// CrashOwnerConflicts reports cross-owner overwrites involving
	// owner where both writes postdate sinceGen: reverting the
	// offender's copy of such state would also rewind another owner's
	// completed write, so recovery must widen. Descriptions are
	// human-readable, for the recovery-widened trace event.
	CrashOwnerConflicts(sinceGen uint64, owner string) []string
	// CrashRestoreDomain reverts every item stamped with owner and
	// modified after sinceGen back to its content in snap (a full
	// consolidated snapshot at generation sinceGen); items the owner
	// created after the checkpoint are removed. Returns the number of
	// state bytes reverted.
	CrashRestoreDomain(owner string, snap any, sinceGen uint64) int64
}

// Auditor is implemented by subsystems with a cheap structural
// invariant check. TakeCheckpoint runs the audits and marks an entry
// tainted when any reports findings: evidence that the damage predates
// the capture, consumed by EvidenceTaint.
type Auditor interface {
	Snapshotter
	// CrashAudit returns invariant inconsistencies in the live state;
	// empty means consistent. It must be read-only and restricted to
	// invariants that hold at any instant (not quiescence-only checks),
	// since checkpoints may be taken with I/O logically in flight.
	CrashAudit() []string
}

// EvidenceTaint returns the virtual time of the oldest ring entry whose
// capture-time audit found an invariant inconsistency. Recovery uses it
// as Panic.TaintedAt when the panic itself carries none: the corruption
// was already visible at that checkpoint, so RestoreBefore must roll
// past it.
func (m *Manager) EvidenceTaint() (time.Duration, bool) {
	for _, cp := range m.entries {
		if cp.tainted {
			return cp.at, true
		}
	}
	return 0, false
}

// DomainConflicts gathers cross-owner write conflicts involving owner
// since the newest checkpoint, across every DomainScoper subsystem.
// Non-empty means a scoped restore would be unsound and recovery must
// widen to the whole kernel.
func (m *Manager) DomainConflicts(owner string) []string {
	if len(m.entries) == 0 {
		return nil
	}
	sinceGen := m.entries[len(m.entries)-1].gen
	var out []string
	for _, s := range m.subs {
		if d, ok := s.(DomainScoper); ok {
			out = append(out, d.CrashOwnerConflicts(sinceGen, owner)...)
		}
	}
	return out
}

// RestoreDomain consolidates the ring to its newest full image and
// reverts only owner's post-checkpoint state to it, via each
// DomainScoper subsystem. Subsystems without domain scoping are left
// untouched — their live state survives, which is the point. Returns
// the checkpoint's virtual time and the bytes reverted. The entry
// remains in the ring, so a later whole-kernel restore (or another
// scoped one) replays the same image.
func (m *Manager) RestoreDomain(owner string) (time.Duration, int64, bool) {
	if len(m.entries) == 0 {
		return 0, 0, false
	}
	for len(m.entries) > 1 {
		m.foldOldest()
	}
	cp := m.entries[0]
	if cp.delta {
		panic("crash: domain restore target is an unconsolidated delta")
	}
	var bytes int64
	for i, s := range m.subs {
		if i >= len(cp.snap) {
			continue
		}
		if d, ok := s.(DomainScoper); ok {
			bytes += d.CrashRestoreDomain(owner, cp.snap[i], cp.gen)
		}
	}
	return cp.at, bytes, true
}

// RecordScopedRecovery accounts one completed domain-scoped recovery
// and its reverted payload.
func (m *Manager) RecordScopedRecovery(bytes int64) {
	m.stats.Recoveries++
	m.stats.ScopedRecoveries++
	m.stats.RolledBackBytes += bytes
}

// RecordWidened accounts one scoped-recovery attempt that fell back to
// a whole-kernel restore.
func (m *Manager) RecordWidened() { m.stats.WidenedRecoveries++ }
