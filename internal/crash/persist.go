package crash

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Durable checkpoints. When a persist directory is configured, every
// TakeCheckpoint also writes a gob-encoded manifest (cp-<seq>.gob) with
// each Exporter subsystem's portable state, so a crashed run can be
// restored across process restarts — the simulated analogue of
// checkpointing to stable storage instead of RAM.
//
// Persistence is deliberately coarser than the in-memory ring: only
// subsystems implementing Exporter contribute (the kernel log and
// process table, transaction counters, file contents); purely volatile
// machinery — the VM frame pool, lock tables, installed grafts, open
// connections — is rebuilt by re-initialisation after import, exactly
// as RAM-resident state is rebuilt after a reboot.
//
// The directory is compacted with an exponential-age policy: the newest
// manifest is always kept, and one survivor is kept per power-of-two
// band of seq-distance behind it, so N checkpoints leave O(log N) files
// whose density thins with age.

// Exporter is implemented by subsystems whose checkpoint state can be
// serialised to stable storage. CrashExport runs at checkpoint time (a
// quiescent instant, so live state equals checkpointed state);
// CrashImport replaces live state with a previously exported image.
type Exporter interface {
	Snapshotter
	// CrashExport serialises the subsystem's durable state.
	CrashExport() ([]byte, error)
	// CrashImport replaces live state with an exported image.
	CrashImport(data []byte) error
}

// diskManifest is the on-disk image of one checkpoint.
type diskManifest struct {
	Seq  int64
	Gen  uint64
	At   time.Duration
	Subs map[string][]byte // CrashName -> CrashExport payload
}

// SetPersistDir enables durable checkpoints under dir (created if
// missing). Persistence failures do not disturb the in-memory ring;
// the last error is retained for PersistErr.
func (m *Manager) SetPersistDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	m.persistDir = dir
	return nil
}

// PersistDir returns the durable-checkpoint directory ("" when
// persistence is off).
func (m *Manager) PersistDir() string { return m.persistDir }

// PersistErr returns the most recent persistence failure, if any.
func (m *Manager) PersistErr() error { return m.persistErr }

func (m *Manager) manifestPath(seq int64) string {
	return filepath.Join(m.persistDir, fmt.Sprintf("cp-%d.gob", seq))
}

// persist writes cp's manifest (tmp + rename, so readers never see a
// torn file) and compacts the directory.
func (m *Manager) persist(cp *checkpoint) {
	if m.persistDir == "" {
		return
	}
	man := &diskManifest{Seq: cp.seq, Gen: cp.gen, At: cp.at, Subs: make(map[string][]byte)}
	for _, s := range m.subs {
		e, ok := s.(Exporter)
		if !ok {
			continue
		}
		data, err := e.CrashExport()
		if err != nil {
			m.persistErr = fmt.Errorf("crash: export %s: %w", e.CrashName(), err)
			return
		}
		man.Subs[e.CrashName()] = data
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(man); err != nil {
		m.persistErr = fmt.Errorf("crash: encode checkpoint %d: %w", cp.seq, err)
		return
	}
	tmp := m.manifestPath(cp.seq) + ".tmp"
	if err := os.WriteFile(tmp, buf.Bytes(), 0o644); err != nil {
		m.persistErr = err
		return
	}
	if err := os.Rename(tmp, m.manifestPath(cp.seq)); err != nil {
		m.persistErr = err
		return
	}
	m.compactDisk(cp.seq)
}

// diskSeqs lists persisted checkpoint seqs, ascending.
func (m *Manager) diskSeqs() ([]int64, error) {
	ents, err := os.ReadDir(m.persistDir)
	if err != nil {
		return nil, err
	}
	var seqs []int64
	for _, e := range ents {
		name := e.Name()
		if !strings.HasPrefix(name, "cp-") || !strings.HasSuffix(name, ".gob") {
			continue
		}
		n, err := strconv.ParseInt(strings.TrimSuffix(strings.TrimPrefix(name, "cp-"), ".gob"), 10, 64)
		if err != nil {
			continue
		}
		seqs = append(seqs, n)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// compactDisk applies the exponential-age policy: keep the newest
// manifest, plus the newest survivor in each power-of-two band of
// seq-distance ([1,2), [2,4), [4,8), ...) behind it.
func (m *Manager) compactDisk(newest int64) {
	seqs, err := m.diskSeqs()
	if err != nil {
		m.persistErr = err
		return
	}
	kept := make(map[int]bool) // band exponent -> occupied
	for i := len(seqs) - 1; i >= 0; i-- {
		seq := seqs[i]
		if seq >= newest {
			continue // the newest (or a straggler beyond it) always stays
		}
		band := 0
		for d := newest - seq; d > 1; d >>= 1 {
			band++
		}
		if kept[band] {
			if err := os.Remove(m.manifestPath(seq)); err != nil {
				m.persistErr = err
			}
			continue
		}
		kept[band] = true
	}
}

// RestoreFromDisk imports the newest persisted checkpoint into every
// Exporter subsystem and returns its virtual time. The in-memory ring
// is cleared — the caller (the kernel) resets the clock to the returned
// time and takes a fresh checkpoint of the imported state, which
// becomes the new ring base. Subsystems without an Exporter keep their
// freshly initialised state, as after a reboot.
func (m *Manager) RestoreFromDisk() (time.Duration, error) {
	if m.persistDir == "" {
		return 0, fmt.Errorf("crash: no persist directory configured")
	}
	seqs, err := m.diskSeqs()
	if err != nil {
		return 0, err
	}
	if len(seqs) == 0 {
		return 0, fmt.Errorf("crash: no persisted checkpoints in %s", m.persistDir)
	}
	data, err := os.ReadFile(m.manifestPath(seqs[len(seqs)-1]))
	if err != nil {
		return 0, err
	}
	var man diskManifest
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&man); err != nil {
		return 0, fmt.Errorf("crash: decode checkpoint %d: %w", seqs[len(seqs)-1], err)
	}
	for _, s := range m.subs {
		e, ok := s.(Exporter)
		if !ok {
			continue
		}
		sub, ok := man.Subs[e.CrashName()]
		if !ok {
			continue
		}
		if err := e.CrashImport(sub); err != nil {
			return 0, fmt.Errorf("crash: import %s: %w", e.CrashName(), err)
		}
	}
	m.entries = nil
	m.seq = man.Seq
	m.gen = man.Gen + 1
	return man.At, nil
}
