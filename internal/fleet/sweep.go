package fleet

import (
	"fmt"
	"strings"
	"time"
)

// SweepPoint is one fleet-throughput measurement: the configuration
// axis values, the request partition, and the wall-clock rate. Served
// counts only requests a handler committed a response for, so the
// abusive rows show the cost of carrying a misbehaving tenant — its
// arrivals inflate the denominator while shed and failed absorb them.
type SweepPoint struct {
	Instances, Tenants int
	Abusive            bool
	Arrivals           int64
	Served, Shed       int64
	Failed             int64
	Wall               time.Duration
	ReqPerSec          float64
	ServedPerSec       float64
	Clean              bool
}

// ThroughputSweep measures fleet requests/sec along two axes — instance
// count (tenants fixed at 2) and tenant count (instances fixed at 2) —
// each with and without the abusive tenant. The simulated clock makes
// the per-point reports deterministic; only the wall-clock rates vary
// between hosts. Crash faults stay armed so the rates include the cost
// of containment, recovery, and instance replacement.
func ThroughputSweep(seed int64, instanceCounts, tenantCounts []int) ([]SweepPoint, error) {
	if len(instanceCounts) == 0 {
		instanceCounts = []int{1, 2, 4}
	}
	if len(tenantCounts) == 0 {
		tenantCounts = []int{1, 2, 4}
	}
	var pts []SweepPoint
	measure := func(instances, tenants int, abusive bool) error {
		start := time.Now()
		res, err := Run(Config{
			Seed:        seed,
			Instances:   instances,
			Tenants:     tenants,
			Abusive:     abusive,
			CrashFaults: true,
			Workers:     instances, // rates, not determinism: let the pool rip
		})
		if err != nil {
			return fmt.Errorf("fleet sweep instances=%d tenants=%d abusive=%v: %w",
				instances, tenants, abusive, err)
		}
		p := SweepPoint{
			Instances: instances,
			Tenants:   tenants,
			Abusive:   abusive,
			Arrivals:  res.Arrivals,
			Served:    res.Served,
			Shed:      res.Shed,
			Failed:    res.Failed,
			Wall:      time.Since(start),
			Clean:     res.Clean(),
		}
		if s := p.Wall.Seconds(); s > 0 {
			p.ReqPerSec = float64(p.Arrivals) / s
			p.ServedPerSec = float64(p.Served) / s
		}
		pts = append(pts, p)
		return nil
	}
	for _, n := range instanceCounts {
		for _, abusive := range []bool{false, true} {
			if err := measure(n, 2, abusive); err != nil {
				return nil, err
			}
		}
	}
	for _, n := range tenantCounts {
		for _, abusive := range []bool{false, true} {
			if err := measure(2, n, abusive); err != nil {
				return nil, err
			}
		}
	}
	return pts, nil
}

// FormatThroughputSweep renders the sweep as a vinobench table.
func FormatThroughputSweep(pts []SweepPoint) string {
	var b strings.Builder
	b.WriteString("Fleet throughput vs instance count and tenant count (crash faults armed)\n")
	fmt.Fprintf(&b, "%5s %7s %7s %8s %6s %6s %6s %9s %10s %6s\n",
		"inst", "tenants", "abusive", "arrivals", "served", "shed", "failed", "req/sec", "served/sec", "audit")
	for _, p := range pts {
		audit := "clean"
		if !p.Clean {
			audit = "FAIL"
		}
		fmt.Fprintf(&b, "%5d %7d %7v %8d %6d %6d %6d %9.0f %10.0f %6s\n",
			p.Instances, p.Tenants, p.Abusive, p.Arrivals, p.Served, p.Shed, p.Failed,
			p.ReqPerSec, p.ServedPerSec, audit)
	}
	return b.String()
}
